// Quickstart: predict the performance of an entire microprocessor design
// space from a 5 % sample.
//
// The program simulates a systematic slice of the paper's 4608-point
// Table 1 design space for the mcf workload, trains the three headline
// models (LR-B, NN-E, NN-S) on a small random sample, picks the best model
// by cross-validated estimate alone, and reports how well it predicts
// every configuration it never saw.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"perfpred"
)

func main() {
	log.SetFlags(0)

	// 1. Ground truth: simulate a slice of the design space (stride 11
	// keeps the demo fast; drop Stride for the full 4608 points).
	fmt.Println("simulating design space for mcf (this is the expensive step the models avoid)...")
	full, err := perfpred.SimulateDesignSpace(context.Background(), "mcf", perfpred.SimOptions{
		TraceLen: 300_000,
		Stride:   11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d configurations simulated\n\n", full.Len())

	// 2. Sampled design-space exploration: 5 % of the space is "built or
	// simulated", the rest is predicted.
	res, err := perfpred.RunSampledDSE(context.Background(), full, 0.05, perfpred.SampledModels(), perfpred.TrainConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trained on %d of %d points (5%%):\n\n", res.SampleSize, full.Len())
	fmt.Printf("  %-6s %12s %12s\n", "model", "estimated%", "true%")
	for _, rep := range res.Reports {
		fmt.Printf("  %-6v %12.2f %12.2f\n", rep.Kind, rep.Estimate.Max, rep.TrueMAPE)
	}
	fmt.Printf("\nselected by estimate alone: %v → %.2f%% error over the whole space\n",
		res.Selected, res.SelectedTrueMAPE)

	// 3. Use the winning model as a surrogate: score a configuration that
	// was never simulated.
	var winner *perfpred.Predictor
	for _, rep := range res.Reports {
		if rep.Kind == res.Selected {
			winner = rep.Predictor
		}
	}
	cfg := perfpred.MicroDesignSpace()[1234]
	pred, err := winner.Predict(cfg.Row())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsurrogate prediction for configuration #1234 (%v, width %d, L2 %dKB): %.0f cycles\n",
		cfg.BPred, cfg.Width, cfg.L2SizeKB, pred)
}
