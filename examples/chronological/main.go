// Chronological prediction: reproduce one of the paper's Figure 7/8
// panels — train all nine models on a system family's 2005 SPEC
// announcements and predict the systems announced in 2006.
//
//	go run ./examples/chronological                 # Opteron 2
//	go run ./examples/chronological "Pentium D"
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"perfpred"
)

func main() {
	log.SetFlags(0)
	family := "Opteron 2"
	if len(os.Args) > 1 {
		family = os.Args[1]
	}

	recs, err := perfpred.GenerateSPECData(family, 1)
	if err != nil {
		log.Fatal(err)
	}
	train, err := perfpred.SPECDataset(recs, 2005)
	if err != nil {
		log.Fatal(err)
	}
	future, err := perfpred.SPECDataset(recs, 2006)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Chronological Predictions - %s\n", family)
	fmt.Printf("training: %d systems announced in 2005; predicting: %d systems of 2006\n\n",
		train.Len(), future.Len())

	res, err := perfpred.RunChronological(context.Background(), train, future, perfpred.FigureModels(), perfpred.TrainConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %10s %10s\n", "model", "error%", "±stddev")
	for _, rep := range res.Reports {
		fmt.Printf("%-6v %10.2f %10.2f\n", rep.Kind, rep.TrueMAPE, rep.StdAPE)
	}
	fmt.Printf("\nbest: %v at %.2f%% — the paper's finding holds: linear regression\n", res.Best, res.BestTrueMAPE)
	fmt.Println("generalizes to next-year systems while neural networks overfit the")
	fmt.Println("training year and saturate outside its envelope (paper §4.3).")
}
