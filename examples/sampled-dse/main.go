// Sampled design-space exploration study: reproduce one of the paper's
// Figures 2–6 panels for a chosen benchmark — estimated vs. true error for
// LR-B, NN-E and NN-S as the sampling rate grows from 1 % to 5 % of the
// 4608-point design space.
//
//	go run ./examples/sampled-dse            # mcf, full fidelity
//	go run ./examples/sampled-dse gcc        # another benchmark
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"perfpred"
)

func main() {
	log.SetFlags(0)
	bench := "mcf"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	fmt.Printf("simulating the full 4608-point design space for %s...\n", bench)
	full, err := perfpred.SimulateDesignSpace(context.Background(), bench, perfpred.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nModel Error - %s (cf. paper Figures 2-6)\n", bench)
	fmt.Printf("%-8s", "sample%")
	for _, k := range perfpred.SampledModels() {
		fmt.Printf("%10s%14s", k, k.String()+"-est")
	}
	fmt.Printf("%10s\n", "Select")

	for _, frac := range []float64{0.01, 0.02, 0.03, 0.04, 0.05} {
		res, err := perfpred.RunSampledDSE(context.Background(), full, frac, perfpred.SampledModels(), perfpred.TrainConfig{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.0f", 100*frac)
		for _, rep := range res.Reports {
			fmt.Printf("%9.2f%%%13.2f%%", rep.TrueMAPE, rep.Estimate.Max)
		}
		fmt.Printf("%9.2f%% (%v)\n", res.SelectedTrueMAPE, res.Selected)
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - neural models beat linear regression on this nonlinear space (paper §4.2)")
	fmt.Println("  - errors fall as the sample grows; LR-B stays nearly flat")
	fmt.Println("  - 'Select' picks its model from cross-validated estimates alone")
}
