// Input importance: reproduce the paper's §4.4 analysis — which system
// parameters drive the predictions? Trains a neural network and a linear
// regression on a family's 2005 announcements and prints both models'
// importance rankings (sensitivity analysis for the NN, standardized beta
// coefficients for LR).
//
//	go run ./examples/importance                # Opteron
//	go run ./examples/importance "Pentium D"
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"perfpred"
)

func main() {
	log.SetFlags(0)
	family := "Opteron"
	if len(os.Args) > 1 {
		family = os.Args[1]
	}

	recs, err := perfpred.GenerateSPECData(family, 1)
	if err != nil {
		log.Fatal(err)
	}
	train, err := perfpred.SPECDataset(recs, 2005)
	if err != nil {
		log.Fatal(err)
	}

	nn, err := perfpred.Train(context.Background(), perfpred.NNQ, train, perfpred.TrainConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	nnImp, err := nn.Importances(train)
	if err != nil {
		log.Fatal(err)
	}
	lr, err := perfpred.Train(context.Background(), perfpred.LRE, train, perfpred.TrainConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	lrImp, err := lr.Importances(train)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Input importance for %s (2005 training data, paper §4.4)\n\n", family)
	fmt.Println("neural network (sensitivity analysis; 1.0 = field determines the prediction):")
	for i, imp := range nnImp {
		if i >= 6 {
			break
		}
		fmt.Printf("  %-16s %.3f\n", imp.Field, imp.Score)
	}
	fmt.Println("\nlinear regression (|standardized beta|):")
	for i, imp := range lrImp {
		if i >= 6 {
			break
		}
		fmt.Printf("  %-16s %.3f\n", imp.Field, imp.Score)
	}
	fmt.Println("\nthe paper reports processor speed dominating both models for the")
	fmt.Println("Opteron family (NN 0.659, LR standardized beta 0.915), with memory")
	fmt.Println("frequency and cache organization as secondary factors.")
}
