// Custom design space: the framework is not tied to the paper's
// microprocessor study. This example defines a made-up storage-server
// design space (its parameters and a hand-written cost model standing in
// for "build it and measure"), then uses sampled design-space exploration
// to find a good configuration while measuring only 8 % of the space.
//
//	go run ./examples/custom-space
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"perfpred"
)

// measure is the "expensive evaluation" of one storage-server
// configuration: throughput in MB/s. In real use this would be a
// prototype, a detailed simulator, or a staging deployment.
func measure(disks float64, raid string, cacheGB float64, nvme bool, netGbps float64) float64 {
	base := 40 * math.Sqrt(disks) * (1 + 0.12*math.Log2(cacheGB))
	switch raid {
	case "raid10":
		base *= 1.25
	case "raid6":
		base *= 0.9
	}
	if nvme {
		base *= 1.6
	}
	// The network caps throughput — a nonlinear interaction models love
	// and linear regression hates.
	cap := netGbps * 110
	return math.Min(base, cap)
}

func main() {
	log.SetFlags(0)

	schema, err := perfpred.NewSchema("throughput_mbs",
		perfpred.Field{Name: "disks", Kind: perfpred.Numeric},
		perfpred.Field{Name: "raid", Kind: perfpred.Categorical, NumericLevels: map[string]float64{
			"raid5": 1, "raid6": 2, "raid10": 3,
		}},
		perfpred.Field{Name: "cache_gb", Kind: perfpred.Numeric},
		perfpred.Field{Name: "nvme", Kind: perfpred.Flag},
		perfpred.Field{Name: "net_gbps", Kind: perfpred.Numeric},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Enumerate the whole space: 6 × 3 × 4 × 2 × 3 = 432 configurations.
	full := perfpred.NewDataset(schema)
	type point struct {
		row []perfpred.Value
		y   float64
	}
	var points []point
	for _, disks := range []float64{4, 8, 12, 16, 24, 32} {
		for _, raid := range []string{"raid5", "raid6", "raid10"} {
			for _, cache := range []float64{2, 8, 32, 128} {
				for _, nvme := range []bool{false, true} {
					for _, net := range []float64{1, 10, 25} {
						y := measure(disks, raid, cache, nvme, net)
						row := []perfpred.Value{
							perfpred.Num(disks), perfpred.Cat(raid), perfpred.Num(cache),
							perfpred.FlagVal(nvme), perfpred.Num(net),
						}
						if err := full.Append(row, y); err != nil {
							log.Fatal(err)
						}
						points = append(points, point{row, y})
					}
				}
			}
		}
	}

	res, err := perfpred.RunSampledDSE(context.Background(), full, 0.08, []perfpred.ModelKind{
		perfpred.LRB, perfpred.NNM, perfpred.NNE,
	}, perfpred.TrainConfig{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("storage-server design space: %d configurations, %d measured (8%%)\n\n",
		full.Len(), res.SampleSize)
	for _, rep := range res.Reports {
		fmt.Printf("  %-5v estimated %.2f%%, true %.2f%%\n", rep.Kind, rep.Estimate.Max, rep.TrueMAPE)
	}
	fmt.Printf("\nselected model: %v (%.2f%% true error)\n\n", res.Selected, res.SelectedTrueMAPE)

	// Use the surrogate to rank the whole space and verify its top pick.
	var winner *perfpred.Predictor
	for _, rep := range res.Reports {
		if rep.Kind == res.Selected {
			winner = rep.Predictor
		}
	}
	bestIdx, bestPred := 0, math.Inf(-1)
	for i, pt := range points {
		yhat, err := winner.Predict(pt.row)
		if err != nil {
			log.Fatal(err)
		}
		if yhat > bestPred {
			bestIdx, bestPred = i, yhat
		}
	}
	truthBest := math.Inf(-1)
	for _, pt := range points {
		if pt.y > truthBest {
			truthBest = pt.y
		}
	}
	picked := points[bestIdx]
	fmt.Printf("surrogate's top configuration: %v\n", renderRow(picked.row))
	fmt.Printf("  predicted %.0f MB/s, actual %.0f MB/s (true optimum %.0f MB/s, gap %.1f%%)\n",
		bestPred, picked.y, truthBest, 100*(truthBest-picked.y)/truthBest)
}

func renderRow(row []perfpred.Value) string {
	return fmt.Sprintf("disks=%v raid=%v cache=%vGB nvme=%v net=%vGbps",
		row[0], row[1], row[2], row[3], row[4])
}
