package perfpred

import (
	"context"
	"fmt"

	"perfpred/internal/cpu"
	"perfpred/internal/engine"
	"perfpred/internal/simpoint"
	"perfpred/internal/space"
	"perfpred/internal/trace"
)

// MicroConfig is one point of the paper's Table 1 microprocessor design
// space, with all 24 parameters spelled out.
type MicroConfig = space.MicroConfig

// DesignSpaceSize is the number of configurations in the Table 1 space.
const DesignSpaceSize = space.SpaceSize

// MicroDesignSpace enumerates all 4608 configurations of Table 1.
func MicroDesignSpace() []MicroConfig { return space.Enumerate() }

// MicroSchema returns the 24-field dataset schema of a design-space record.
func MicroSchema() *Schema { return space.Schema() }

// Benchmarks lists the available SPEC CPU2000 workload models.
func Benchmarks() []string {
	ps := trace.Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// FiguredBenchmarks lists the five benchmarks of the paper's Figures 2–6.
func FiguredBenchmarks() []string {
	ps := trace.FiguredProfiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// SimOptions configures design-space simulation.
type SimOptions struct {
	// TraceLen overrides the benchmark's recommended instruction count
	// (zero keeps the recommendation).
	TraceLen int
	// Seed drives trace generation (default 1).
	Seed int64
	// Workers bounds simulation parallelism (0 = GOMAXPROCS).
	Workers int
	// Stride simulates every Stride-th configuration instead of all 4608
	// (0 or 1 = full space). Use a stride coprime to the space dimensions
	// (e.g. 11) for a representative systematic sample.
	Stride int
	// Hook, if non-nil, observes the sweep's execution events — attach
	// the same hook here and on TrainConfig to get one unified stream
	// (and one RunReport) covering simulation and modeling.
	Hook Hook
}

// SimulateDesignSpace runs the named benchmark's synthetic trace through
// every configuration of the Table 1 design space (or a systematic
// subsample) on the cycle-approximate simulator and returns the resulting
// (configuration → cycles) dataset — the ground truth of the sampled-DSE
// experiments. Cancelling ctx aborts the sweep between configurations.
func SimulateDesignSpace(ctx context.Context, benchmark string, opts SimOptions) (*Dataset, error) {
	prof, err := trace.ProfileByName(benchmark)
	if err != nil {
		return nil, err
	}
	n := opts.TraceLen
	if n == 0 {
		n = prof.SimLen
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	tr, err := trace.Generate(prof, n, seed)
	if err != nil {
		return nil, err
	}
	eval, err := cpu.NewEvaluator(tr)
	if err != nil {
		return nil, err
	}
	cfgs := space.Enumerate()
	if opts.Stride > 1 {
		var sub []space.MicroConfig
		for i := 0; i < len(cfgs); i += opts.Stride {
			sub = append(sub, cfgs[i])
		}
		cfgs = sub
	}
	cycles, err := space.Sweep(ctx, eval, cfgs, engine.Options{Workers: opts.Workers, Hook: opts.Hook})
	if err != nil {
		return nil, err
	}
	return space.BuildDataset(cfgs, cycles)
}

// SimResult reports one simulated configuration.
type SimResult = cpu.Result

// SimulateConfig runs the named benchmark through a single design-space
// configuration and returns the detailed result (cycle breakdown, miss
// counts).
func SimulateConfig(benchmark string, cfg MicroConfig, opts SimOptions) (*SimResult, error) {
	prof, err := trace.ProfileByName(benchmark)
	if err != nil {
		return nil, err
	}
	n := opts.TraceLen
	if n == 0 {
		n = prof.SimLen
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	tr, err := trace.Generate(prof, n, seed)
	if err != nil {
		return nil, err
	}
	return cpu.Simulate(cfg.CPUConfig(), tr)
}

// SimPoint is one selected representative simulation interval.
type SimPoint = simpoint.Point

// SelectSimPoints runs the SimPoint methodology (basic-block vectors +
// k-means) on the named benchmark's trace and returns the representative
// intervals and their weights.
func SelectSimPoints(benchmark string, traceLen, intervalLen int, seed int64) ([]SimPoint, error) {
	prof, err := trace.ProfileByName(benchmark)
	if err != nil {
		return nil, err
	}
	if traceLen == 0 {
		traceLen = prof.SimLen
	}
	if intervalLen <= 0 {
		return nil, fmt.Errorf("perfpred: interval length %d must be positive", intervalLen)
	}
	if seed == 0 {
		seed = 1
	}
	tr, err := trace.Generate(prof, traceLen, seed)
	if err != nil {
		return nil, err
	}
	return simpoint.Select(tr, simpoint.Options{IntervalLen: intervalLen, Seed: seed})
}
