package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perfpred/internal/dataset"
	"perfpred/internal/engine"
	"perfpred/internal/tree"
)

// TestPredictRowsIntoMatchesPredict pins the serving batch entry to the
// per-row scalar path: for one kind of every registered family,
// PredictRowsInto over a slice of raw rows must be bit-identical to
// Predict called row by row.
func TestPredictRowsIntoMatchesPredict(t *testing.T) {
	d := synthSpace(t, 96, 5)
	for _, kind := range []ModelKind{LRE, NNS, tree.KindTreeB} {
		p, err := Train(context.Background(), kind, d, quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		rows := make([][]dataset.Value, d.Len())
		for i := range rows {
			rows[i] = d.Row(i)
		}
		out := make([]float64, len(rows))
		if err := p.PredictRowsInto(context.Background(), out, rows); err != nil {
			t.Fatal(err)
		}
		for i, row := range rows {
			want, err := p.Predict(row)
			if err != nil {
				t.Fatal(err)
			}
			if out[i] != want {
				t.Fatalf("%v row %d: PredictRowsInto = %v, Predict = %v (not bit-identical)", kind, i, out[i], want)
			}
		}
		// Length mismatch and bad rows are rejected, not sliced around.
		if err := p.PredictRowsInto(context.Background(), make([]float64, 1), rows); err == nil {
			t.Fatalf("%v: out/rows length mismatch accepted", kind)
		}
		bad := [][]dataset.Value{{dataset.Num(1)}}
		if err := p.PredictRowsInto(context.Background(), make([]float64, 1), bad); err == nil {
			t.Fatalf("%v: short row accepted", kind)
		}
	}
}

// TestPredictRowsIntoZeroAlloc pins the serving hot path: with a
// worker-local context, steady-state batch scoring allocates nothing —
// for the neural family (whose scratch carries forward buffers) and for
// the tree family (which needs none), sharing one worker context the way
// a mixed-model serving worker does.
func TestPredictRowsIntoZeroAlloc(t *testing.T) {
	d := synthSpace(t, 64, 7)
	rows := make([][]dataset.Value, d.Len())
	for i := range rows {
		rows[i] = d.Row(i)
	}
	out := make([]float64, len(rows))
	ctx := engine.NewWorkerContext(context.Background())
	for _, kind := range []ModelKind{NNS, tree.KindTreeB} {
		p, err := Train(context.Background(), kind, d, quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		// Warm the worker-local scratch, then demand zero allocations.
		if err := p.PredictRowsInto(ctx, out, rows); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if err := p.PredictRowsInto(ctx, out, rows); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%v: PredictRowsInto allocates %v allocs/op in steady state, want 0", kind, allocs)
		}
	}
}

func TestLoadPredictorFile(t *testing.T) {
	d := synthSpace(t, 64, 11)
	p, err := Train(context.Background(), LRE, d, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := LoadPredictorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind() != LRE {
		t.Fatalf("loaded kind %v, want LR-E", got.Kind())
	}
	want, err := p.Predict(d.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	y, err := got.Predict(d.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	if y != want {
		t.Fatalf("loaded predictor predicts %v, original %v", y, want)
	}

	if _, err := LoadPredictorFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPredictorFile(badPath); err == nil {
		t.Fatal("malformed file accepted")
	}
}

// TestValidateCatchesWidthMismatch corrupts a serialized artifact so the
// model payload and encoder disagree on input width, and checks the
// registry loader rejects it.
func TestValidateCatchesWidthMismatch(t *testing.T) {
	d := synthSpace(t, 64, 13)
	p, err := Train(context.Background(), NNS, d, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("freshly trained predictor invalid: %v", err)
	}

	// Pair this predictor's model payload with an encoder fitted on a
	// narrower schema.
	narrow := synthNarrow(t)
	q, err := Train(context.Background(), NNS, narrow, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	frank := &Predictor{kind: p.kind, fam: p.fam, enc: q.enc, model: p.model}
	err = frank.Validate()
	if err == nil {
		t.Fatal("width-mismatched predictor validated")
	}
	if !strings.Contains(err.Error(), "inputs") {
		t.Errorf("unexpected validation error: %v", err)
	}
}

// synthNarrow builds a tiny dataset with fewer encoded columns than
// synthSpace produces.
func synthNarrow(t *testing.T) *dataset.Dataset {
	t.Helper()
	s, err := dataset.NewSchema("cycles",
		dataset.Field{Name: "size", Kind: dataset.Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.New(s)
	for i := 0; i < 16; i++ {
		if err := d.Append([]dataset.Value{dataset.Num(float64(16 + i))}, float64(1000-i)); err != nil {
			t.Fatal(err)
		}
	}
	return d
}
