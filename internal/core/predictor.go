package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"perfpred/internal/dataset"
	"perfpred/internal/engine"
	"perfpred/internal/model"
	"perfpred/internal/stat"
)

// TrainConfig configures model training.
type TrainConfig struct {
	// Seed drives every stochastic choice (splits, NN initialization).
	Seed int64
	// Workers bounds intra-training parallelism (0 = GOMAXPROCS).
	Workers int
	// EpochScale scales iterative training budgets — neural epoch counts,
	// tree ensemble sizes (0 = 1.0); tests use small values for speed.
	EpochScale float64
	// Hook, if non-nil, observes execution events (task start/finish,
	// durations, fold indices, neural epoch progress). Hooks must be safe
	// for concurrent use; they are observability-only and never affect
	// results.
	Hook engine.Hook
}

func (c TrainConfig) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// pool returns the engine options for fan-outs driven by this config.
func (c TrainConfig) pool() engine.Options {
	return engine.Options{Workers: c.workers(), Hook: c.Hook}
}

// Predictor is one trained model bound to the encoder that prepared its
// inputs, so it can score raw records directly. The model itself is
// whatever family the registry resolved for the kind — core never touches
// concrete model types.
type Predictor struct {
	kind  ModelKind
	fam   model.Family
	enc   *dataset.Encoder
	model model.Model
	// hook carries the training config's observability hook so batch
	// prediction fan-outs report to the same stream as training did.
	// Never affects results; nil on deserialized predictors.
	hook engine.Hook
}

// Train fits a model of the given kind on the training dataset. The
// kind's registered family declares its data preparation (§3.4) and
// trainer; cancellation of ctx aborts training loops promptly.
func Train(ctx context.Context, kind ModelKind, train *dataset.Dataset, cfg TrainConfig) (*Predictor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if train == nil || train.Len() == 0 {
		return nil, errors.New("core: empty training dataset")
	}
	fam, ok := model.Lookup(kind)
	if !ok {
		return nil, fmt.Errorf("core: unknown model kind %v", kind)
	}
	enc, err := dataset.FitEncoder(train, fam.Mode)
	if err != nil {
		return nil, fmt.Errorf("core: preparing %v inputs: %w", fam.Mode, err)
	}
	x, y, err := enc.Transform(train)
	if err != nil {
		return nil, err
	}
	fitted, err := fam.Fit(ctx, x, y, enc.ColumnNames(), model.FitConfig{
		Seed:       cfg.Seed,
		Workers:    cfg.workers(),
		EpochScale: cfg.EpochScale,
		Hook:       cfg.Hook,
	})
	if err != nil {
		return nil, fmt.Errorf("core: training %v: %w", kind, err)
	}
	return &Predictor{kind: kind, fam: fam, enc: enc, model: fitted, hook: cfg.Hook}, nil
}

// Kind returns the model kind.
func (p *Predictor) Kind() ModelKind { return p.kind }

// Family returns the kind's registered family descriptor.
func (p *Predictor) Family() model.Family { return p.fam }

// Encoder exposes the fitted input encoder.
func (p *Predictor) Encoder() *dataset.Encoder { return p.enc }

// Model exposes the trained model behind the registry interface.
func (p *Predictor) Model() model.Model { return p.model }

// Predict scores one raw record (in original units). It routes through
// the same batch kernel as PredictRowsInto, so single-row and batch
// predictions are bit-identical by construction.
func (p *Predictor) Predict(row []dataset.Value) (float64, error) {
	x, err := p.enc.EncodeRow(row)
	if err != nil {
		return 0, err
	}
	var out [1]float64
	p.model.PredictAllInto(out[:], [][]float64{x}, p.fam.NewScratch())
	return p.enc.UnscaleTarget(out[0]), nil
}

// predictChunk is the batch size of one parallel prediction task, and
// predictParallelMin the dataset size below which PredictDataset stays
// sequential (small fold evaluations inside an already-saturated task
// graph gain nothing from nested fan-out).
const (
	predictChunk       = 256
	predictParallelMin = 2 * predictChunk
)

// predictScratchKey identifies the batch scorer's slot in an engine
// worker's local store.
type predictScratchKey struct{}

// predictScratch holds one worker's reusable buffers for chunked
// prediction: the encoded input rows of the current chunk (backed by one
// flat allocation) and each family's prediction scratch, keyed by the
// family's artifact tag. Inside a pool the buffers live as long as the
// worker, so every chunk and every fold evaluation the worker scores
// reuses them — even when the worker serves a mix of families.
type predictScratch struct {
	rows [][]float64
	flat []float64
	fams map[string]model.Scratch
}

// scratchFor returns the worker's reusable scratch for one family,
// creating it on first use. Families that need no scratch cache their nil
// so NewScratch runs once per worker, not once per call.
func (ps *predictScratch) scratchFor(fam model.Family) model.Scratch {
	s, ok := ps.fams[fam.Tag]
	if !ok {
		if ps.fams == nil {
			ps.fams = make(map[string]model.Scratch, 1)
		}
		s = fam.NewScratch()
		ps.fams[fam.Tag] = s
	}
	return s
}

func predictScratchFrom(ctx context.Context) *predictScratch {
	return engine.WorkerLocal(ctx, predictScratchKey{}, func() any { return new(predictScratch) }).(*predictScratch)
}

// encodeInto encodes n raw records (fetched by index through row) into
// the scratch's reused buffers — one flat allocation backing all encoded
// rows — and returns the encoded matrix.
func (p *Predictor) encodeInto(ps *predictScratch, n int, row func(i int) []dataset.Value) ([][]float64, error) {
	width := p.enc.NumColumns()
	if cap(ps.flat) < n*width {
		ps.flat = make([]float64, n*width)
	}
	flat := ps.flat[:n*width]
	if cap(ps.rows) < n {
		ps.rows = make([][]float64, n)
	}
	rows := ps.rows[:n]
	for i := 0; i < n; i++ {
		rows[i] = flat[i*width : (i+1)*width]
		if err := p.enc.EncodeRowInto(rows[i], row(i)); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// encodeChunk encodes rows [lo,hi) into the scratch's reused buffers and
// returns the encoded matrix.
func (p *Predictor) encodeChunk(ps *predictScratch, d *dataset.Dataset, lo, hi int) ([][]float64, error) {
	return p.encodeInto(ps, hi-lo, func(i int) []dataset.Value { return d.Row(lo + i) })
}

// scoreEncoded runs the family's batched kernel over encoded rows,
// writing raw-unit predictions into out (len(out) == len(rows)).
func (p *Predictor) scoreEncoded(ps *predictScratch, out []float64, rows [][]float64) {
	p.model.PredictAllInto(out, rows, ps.scratchFor(p.fam))
	for i := range out {
		out[i] = p.enc.UnscaleTarget(out[i])
	}
}

// CheckRows validates raw request rows against the predictor before any
// batch admission: every row's width must match the fitted schema, every
// category must be encodable, and the predictor's model/encoder widths
// must agree (NumInputs vs encoded columns — guaranteed for artifacts
// that passed Validate, re-checked here so a mismatch can never reach a
// kernel). A nil return guarantees PredictRowsInto on the same rows
// cannot fail with a row error, so serving front ends can map every
// CheckRows failure to a client error and everything after admission to
// a server error.
func (p *Predictor) CheckRows(rows [][]dataset.Value) error {
	if got, want := p.model.NumInputs(), p.enc.NumColumns(); got != want {
		return fmt.Errorf("core: predictor %v expects %d inputs but its encoder produces %d columns", p.kind, got, want)
	}
	for i, row := range rows {
		if err := p.enc.ValidateRow(row); err != nil {
			return fmt.Errorf("core: row %d: %w", i, err)
		}
	}
	return nil
}

// PredictRowsInto scores a batch of raw records into out, which must
// have len(rows) elements. It is the serving path's kernel entry: rows
// are encoded into worker-local flat buffers (engine.WorkerLocal — give
// long-lived callers a context from engine.NewWorkerContext) and
// streamed through the family's batched kernel, so steady-state calls
// allocate nothing and produce predictions bit-identical to Predict on
// each row.
func (p *Predictor) PredictRowsInto(ctx context.Context, out []float64, rows [][]dataset.Value) error {
	if len(out) != len(rows) {
		return fmt.Errorf("core: PredictRowsInto out has %d slots for %d rows", len(out), len(rows))
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	ps := predictScratchFrom(ctx)
	enc, err := p.encodeInto(ps, len(rows), func(i int) []dataset.Value { return rows[i] })
	if err != nil {
		return err
	}
	p.scoreEncoded(ps, out, enc)
	return nil
}

// PredictDataset scores every record of a dataset. Large datasets (the
// whole-space predictions of Figure 1a) are scored as a chunked parallel
// map on the engine pool; output order always matches record order and is
// independent of scheduling. Each chunk is encoded into worker-local
// buffers and streamed through the family's batched kernel, and its
// in-kernel time is reported as a KernelTime event, so RunReports break
// out predict-phase kernel throughput.
func (p *Predictor) PredictDataset(ctx context.Context, d *dataset.Dataset) ([]float64, error) {
	if d == nil {
		return nil, errors.New("core: nil dataset")
	}
	out := make([]float64, d.Len())
	score := func(ctx context.Context, lo, hi int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		start := time.Now()
		ps := predictScratchFrom(ctx)
		rows, err := p.encodeChunk(ps, d, lo, hi)
		if err != nil {
			return err
		}
		p.scoreEncoded(ps, out[lo:hi], rows)
		if p.hook != nil {
			p.hook.Emit(engine.Event{
				Kind: engine.KernelTime, Label: "predict " + p.kind.String(),
				Model: p.kind.String(), Fold: -1,
				Samples: int64(hi - lo), Elapsed: time.Since(start),
			})
		}
		return nil
	}
	if d.Len() < predictParallelMin {
		if err := score(ctx, 0, d.Len()); err != nil {
			return nil, err
		}
		return out, nil
	}
	err := engine.Map(ctx, engine.Options{Hook: p.hook}, d.Len(), predictChunk, "predict "+p.kind.String(), score)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Evaluate returns the mean and standard deviation of the absolute
// percentage errors of the predictor on a dataset — the paper's error
// metric (mean) and its Figure 7/8 error bars (standard deviation).
func (p *Predictor) Evaluate(ctx context.Context, d *dataset.Dataset) (meanAPE, stdAPE float64, err error) {
	if d == nil || d.Len() == 0 {
		return 0, 0, errors.New("core: empty evaluation dataset")
	}
	yhat, err := p.PredictDataset(ctx, d)
	if err != nil {
		return 0, 0, err
	}
	apes := stat.APEs(yhat, d.Targets())
	return stat.Mean(apes), stat.StdDev(apes), nil
}
