package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"perfpred/internal/dataset"
	"perfpred/internal/model"
	"perfpred/internal/tree"
)

// synthSpace builds a synthetic "design space" dataset with a nonlinear
// target over numeric/flag/categorical fields.
func synthSpace(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	s, err := dataset.NewSchema("cycles",
		dataset.Field{Name: "size", Kind: dataset.Numeric},
		dataset.Field{Name: "width", Kind: dataset.Numeric},
		dataset.Field{Name: "fast", Kind: dataset.Flag},
		dataset.Field{Name: "pred", Kind: dataset.Categorical, NumericLevels: map[string]float64{
			"weak": 1, "strong": 2,
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.New(s)
	r := rand.New(rand.NewSource(seed))
	preds := []string{"weak", "strong"}
	for i := 0; i < n; i++ {
		size := 16 + float64(r.Intn(5))*16
		width := float64(2 + r.Intn(4)*2)
		fast := r.Intn(2) == 0
		pk := preds[r.Intn(2)]
		y := 10000/width + 2000*math.Exp(-size/32) // nonlinear interactions
		if fast {
			y *= 0.9
		}
		if pk == "strong" {
			y *= 0.85
		}
		err := d.Append([]dataset.Value{
			dataset.Num(size), dataset.Num(width), dataset.FlagVal(fast), dataset.Cat(pk),
		}, y)
		if err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func quickCfg() TrainConfig {
	return TrainConfig{Seed: 9, Workers: 4, EpochScale: 0.3}
}

func TestModelKindStrings(t *testing.T) {
	want := map[ModelKind]string{
		LRE: "LR-E", LRS: "LR-S", LRB: "LR-B", LRF: "LR-F",
		NNQ: "NN-Q", NND: "NN-D", NNM: "NN-M", NNP: "NN-P", NNE: "NN-E", NNS: "NN-S",
		tree.KindTreeB: "TREE-B",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
		back, err := ParseModelKind(s)
		if err != nil || back != k {
			t.Errorf("ParseModelKind(%q) = %v, %v", s, back, err)
		}
	}
	if _, err := ParseModelKind("SVM"); err == nil {
		t.Fatal("unknown kind: want error")
	}
	if len(AllModels()) != 11 || len(FigureModels()) != 9 || len(SampledModels()) != 3 {
		t.Fatal("model list sizes wrong")
	}
}

func TestKindClassification(t *testing.T) {
	for _, k := range []ModelKind{LRE, LRS, LRB, LRF} {
		if k.IsNeural() {
			t.Errorf("%v should not be neural", k)
		}
		if fam, ok := model.Lookup(k); !ok || fam.Mode != dataset.ForLR {
			t.Errorf("%v should register an LR-mode family", k)
		}
	}
	for _, k := range []ModelKind{NNQ, NND, NNM, NNP, NNE, NNS} {
		if !k.IsNeural() {
			t.Errorf("%v should be neural", k)
		}
		if fam, ok := model.Lookup(k); !ok || fam.Mode != dataset.ForNN {
			t.Errorf("%v should register an NN-mode family", k)
		}
	}
	if tree.KindTreeB.IsNeural() {
		t.Error("TREE-B must not classify as neural")
	}
}

func TestTrainAllKindsAndPredict(t *testing.T) {
	train := synthSpace(t, 150, 1)
	test := synthSpace(t, 150, 2)
	for _, k := range AllModels() {
		p, err := Train(context.Background(), k, train, quickCfg())
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if p.Kind() != k {
			t.Fatalf("%v: kind mismatch", k)
		}
		mape, std, err := p.Evaluate(context.Background(), test)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if mape <= 0 || mape > 60 {
			t.Errorf("%v: implausible MAPE %.2f", k, mape)
		}
		if std < 0 {
			t.Errorf("%v: negative std", k)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(context.Background(), LRE, nil, quickCfg()); err == nil {
		t.Fatal("nil dataset: want error")
	}
	if _, err := Train(context.Background(), ModelKind(99), synthSpace(t, 20, 3), quickCfg()); err == nil {
		t.Fatal("unknown kind: want error")
	}
}

func TestPredictSingleRecord(t *testing.T) {
	train := synthSpace(t, 200, 4)
	p, err := Train(context.Background(), NNQ, train, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	row := train.Row(0)
	got, err := p.Predict(row)
	if err != nil {
		t.Fatal(err)
	}
	want := train.Target(0)
	if math.Abs(got-want)/want > 0.5 {
		t.Fatalf("prediction %v wildly off target %v", got, want)
	}
	batch, err := p.PredictDataset(context.Background(), train)
	if err != nil {
		t.Fatal(err)
	}
	if batch[0] != got {
		t.Fatal("PredictDataset disagrees with Predict")
	}
}

func TestEstimateError(t *testing.T) {
	train := synthSpace(t, 120, 5)
	est, err := EstimateError(context.Background(), LRB, train, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(est.PerFold) != 5 {
		t.Fatalf("folds = %d, want 5 (paper §3.3)", len(est.PerFold))
	}
	if est.Max < est.Mean {
		t.Fatalf("max %v < mean %v", est.Max, est.Mean)
	}
	for _, f := range est.PerFold {
		if f <= 0 || f > 100 {
			t.Fatalf("fold error %v implausible", f)
		}
	}
}

func TestEstimateErrorDeterministic(t *testing.T) {
	train := synthSpace(t, 100, 6)
	a, err := EstimateError(context.Background(), NNS, train, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateError(context.Background(), NNS, train, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerFold {
		if a.PerFold[i] != b.PerFold[i] {
			t.Fatal("estimate not deterministic")
		}
	}
}

func TestEstimateErrorTooSmall(t *testing.T) {
	if _, err := EstimateError(context.Background(), LRE, synthSpace(t, 3, 7), quickCfg()); err == nil {
		t.Fatal("tiny dataset: want error")
	}
}

func TestRunSampledDSE(t *testing.T) {
	full := synthSpace(t, 1200, 8)
	kinds := []ModelKind{LRB, NNQ, NNS}
	res, err := RunSampledDSE(context.Background(), full, 0.05, kinds, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSize != 60 {
		t.Fatalf("sample size %d", res.SampleSize)
	}
	if len(res.Reports) != 3 {
		t.Fatalf("%d reports", len(res.Reports))
	}
	for i, rep := range res.Reports {
		if rep.Kind != kinds[i] {
			t.Fatal("report order mismatch")
		}
		if rep.TrueMAPE <= 0 {
			t.Fatalf("%v: TrueMAPE %v", rep.Kind, rep.TrueMAPE)
		}
		if rep.Estimate.Max <= 0 {
			t.Fatalf("%v: no estimate", rep.Kind)
		}
		if rep.Predictor == nil {
			t.Fatalf("%v: missing predictor", rep.Kind)
		}
	}
	// The selected model's true error should be near the best true error
	// (the Select rule works through estimates).
	bestTrue := math.Inf(1)
	for _, rep := range res.Reports {
		if rep.TrueMAPE < bestTrue {
			bestTrue = rep.TrueMAPE
		}
	}
	if res.SelectedTrueMAPE > 3*bestTrue+2 {
		t.Fatalf("select picked badly: %v vs best %v", res.SelectedTrueMAPE, bestTrue)
	}
}

func TestRunSampledDSENNBeatsLROnNonlinearSurface(t *testing.T) {
	full := synthSpace(t, 1500, 9)
	res, err := RunSampledDSE(context.Background(), full, 0.1, []ModelKind{LRB, NNM}, TrainConfig{Seed: 3, Workers: 4, EpochScale: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	var lr, nn float64
	for _, rep := range res.Reports {
		if rep.Kind == LRB {
			lr = rep.TrueMAPE
		} else {
			nn = rep.TrueMAPE
		}
	}
	if nn >= lr {
		t.Fatalf("NN (%v) should beat LR (%v) on a nonlinear space (paper §4.2)", nn, lr)
	}
}

func TestRunSampledDSEErrors(t *testing.T) {
	full := synthSpace(t, 100, 10)
	if _, err := RunSampledDSE(context.Background(), nil, 0.1, []ModelKind{LRE}, quickCfg()); err == nil {
		t.Fatal("nil space: want error")
	}
	if _, err := RunSampledDSE(context.Background(), full, 0.1, nil, quickCfg()); err == nil {
		t.Fatal("no kinds: want error")
	}
	if _, err := RunSampledDSE(context.Background(), full, 0, []ModelKind{LRE}, quickCfg()); err == nil {
		t.Fatal("zero fraction: want error")
	}
}

func TestRunChronological(t *testing.T) {
	train := synthSpace(t, 200, 11)
	future := synthSpace(t, 200, 12)
	kinds := []ModelKind{LRE, LRB, NNS}
	res, err := RunChronological(context.Background(), train, future, kinds, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 3 {
		t.Fatalf("%d reports", len(res.Reports))
	}
	bestSeen := math.Inf(1)
	for _, rep := range res.Reports {
		if rep.TrueMAPE < bestSeen {
			bestSeen = rep.TrueMAPE
		}
	}
	if res.BestTrueMAPE != bestSeen {
		t.Fatalf("Best %v is not the minimum %v", res.BestTrueMAPE, bestSeen)
	}
	if res.Selected.String() == "" || res.SelectedTrueMAPE <= 0 {
		t.Fatal("select did not resolve")
	}
}

func TestRunChronologicalErrors(t *testing.T) {
	train := synthSpace(t, 100, 13)
	if _, err := RunChronological(context.Background(), train, nil, []ModelKind{LRE}, quickCfg()); err == nil {
		t.Fatal("nil future: want error")
	}
	if _, err := RunChronological(context.Background(), nil, train, []ModelKind{LRE}, quickCfg()); err == nil {
		t.Fatal("nil train: want error")
	}
	if _, err := RunChronological(context.Background(), train, train, nil, quickCfg()); err == nil {
		t.Fatal("no kinds: want error")
	}
}

func TestImportancesLRAndNN(t *testing.T) {
	// Target dominated by width; size secondary.
	train := synthSpace(t, 400, 14)
	for _, k := range []ModelKind{LRE, NNQ} {
		p, err := Train(context.Background(), k, train, TrainConfig{Seed: 5, Workers: 4, EpochScale: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		imps, err := p.Importances(train)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if len(imps) == 0 {
			t.Fatalf("%v: no importances", k)
		}
		if imps[0].Field != "width" {
			t.Errorf("%v: top field %q, want width (dominant factor)", k, imps[0].Field)
		}
		for i := 1; i < len(imps); i++ {
			if imps[i].Score > imps[i-1].Score {
				t.Fatalf("%v: importances not sorted", k)
			}
		}
	}
}

func TestImportancesErrors(t *testing.T) {
	p, err := Train(context.Background(), LRE, synthSpace(t, 50, 15), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Importances(nil); err == nil {
		t.Fatal("nil probe: want error")
	}
}

func TestSelectedPredictors(t *testing.T) {
	train := synthSpace(t, 200, 16)
	lr, err := Train(context.Background(), LRB, train, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	sel := lr.SelectedPredictors()
	if len(sel) == 0 {
		t.Fatal("backward LR kept nothing on a real relationship")
	}
	nn, err := Train(context.Background(), NNS, train, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(nn.SelectedPredictors()) == 0 {
		t.Fatal("NN should report live input fields")
	}
}

func TestEvaluateEmptyDataset(t *testing.T) {
	p, err := Train(context.Background(), LRE, synthSpace(t, 50, 17), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Evaluate(context.Background(), nil); err == nil {
		t.Fatal("nil eval set: want error")
	}
}

// TestWorkflowDeterministicAcrossWorkers guards the repo-wide guarantee:
// results are identical regardless of parallelism.
func TestWorkflowDeterministicAcrossWorkers(t *testing.T) {
	full := synthSpace(t, 600, 31)
	kinds := []ModelKind{LRB, NNS, NNQ}
	run := func(workers int) *SampledDSEResult {
		res, err := RunSampledDSE(context.Background(), full, 0.1, kinds, TrainConfig{Seed: 5, Workers: workers, EpochScale: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if a.Selected != b.Selected || a.SelectedTrueMAPE != b.SelectedTrueMAPE {
		t.Fatalf("selection differs across worker counts: %+v vs %+v", a.Selected, b.Selected)
	}
	for i := range a.Reports {
		if a.Reports[i].TrueMAPE != b.Reports[i].TrueMAPE {
			t.Fatalf("%v: true error differs across worker counts", a.Reports[i].Kind)
		}
		if a.Reports[i].Estimate.Max != b.Reports[i].Estimate.Max {
			t.Fatalf("%v: estimate differs across worker counts", a.Reports[i].Kind)
		}
	}
}

func TestPredictorEncoderAccessor(t *testing.T) {
	train := synthSpace(t, 60, 32)
	p, err := Train(context.Background(), LRE, train, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if p.Encoder() == nil || p.Encoder().Schema().Target != "cycles" {
		t.Fatal("encoder accessor broken")
	}
}
