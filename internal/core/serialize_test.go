package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestPredictorSaveLoadRoundTrip covers every registered kind — any
// family added to the registry is automatically held to the same
// bit-identical persistence contract.
func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	train := synthSpace(t, 150, 21)
	probeRows := synthSpace(t, 20, 22)
	for _, kind := range AllModels() {
		p, err := Train(context.Background(), kind, train, quickCfg())
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatalf("%v: save: %v", kind, err)
		}
		back, err := LoadPredictor(&buf)
		if err != nil {
			t.Fatalf("%v: load: %v", kind, err)
		}
		if back.Kind() != kind {
			t.Fatalf("%v: kind became %v", kind, back.Kind())
		}
		for i := 0; i < probeRows.Len(); i++ {
			want, err := p.Predict(probeRows.Row(i))
			if err != nil {
				t.Fatal(err)
			}
			got, err := back.Predict(probeRows.Row(i))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%v: loaded model predicts %v, original %v", kind, got, want)
			}
		}
	}
}

func TestPredictorLoadRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalPredictor([]byte("not json")); err == nil {
		t.Fatal("garbage: want error")
	}
	if _, err := UnmarshalPredictor([]byte(`{"version":99}`)); err == nil {
		t.Fatal("bad version: want error")
	}
	if _, err := UnmarshalPredictor([]byte(`{"version":1,"kind":0,"encoder":{"version":1}}`)); err == nil {
		t.Fatal("empty encoder: want error")
	}
}

func TestPredictorLoadRejectsPayloadMismatch(t *testing.T) {
	train := synthSpace(t, 80, 23)
	p, err := Train(context.Background(), LRE, train, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]json.RawMessage
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	mutate := func(change func(m map[string]json.RawMessage)) []byte {
		m := make(map[string]json.RawMessage, len(st))
		for k, v := range st {
			m[k] = v
		}
		change(m)
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	// Claim the linreg payload belongs to a neural kind: the family tag
	// no longer matches the kind's registered family.
	bad := mutate(func(m map[string]json.RawMessage) { m["kind"] = json.RawMessage("9") }) // NNS
	if _, err := UnmarshalPredictor(bad); err == nil {
		t.Fatal("kind/family mismatch: want error")
	}
	// Strip the payload entirely.
	empty := mutate(func(m map[string]json.RawMessage) { delete(m, "model") })
	if _, err := UnmarshalPredictor(empty); err == nil {
		t.Fatal("missing payload: want error")
	}
	// A v2 artifact smuggling a legacy slot next to its payload is
	// ambiguous and rejected.
	both := mutate(func(m map[string]json.RawMessage) { m["lr"] = m["model"] })
	if _, err := UnmarshalPredictor(both); err == nil {
		t.Fatal("v2 artifact with legacy slot: want error")
	}
}

// TestPredictorLoadV1Compat pins the backward-compat decode path: a
// version-1 artifact (payload in the lr/nn slot, no family tag) still
// loads and predicts identically, and its slot/kind consistency rules
// still hold.
func TestPredictorLoadV1Compat(t *testing.T) {
	train := synthSpace(t, 80, 25)
	for _, tc := range []struct {
		kind ModelKind
		slot string
	}{{LRE, "lr"}, {NNS, "nn"}} {
		p, err := Train(context.Background(), tc.kind, train, quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var st map[string]json.RawMessage
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		// Rewrite the v2 artifact as its v1 equivalent.
		st["version"] = json.RawMessage("1")
		st[tc.slot] = st["model"]
		delete(st, "model")
		delete(st, "family")
		v1, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalPredictor(v1)
		if err != nil {
			t.Fatalf("%v: v1 artifact rejected: %v", tc.kind, err)
		}
		want, err := p.Predict(train.Row(0))
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Predict(train.Row(0))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: v1-loaded predictor predicts %v, original %v", tc.kind, got, want)
		}
		// Both legacy slots at once is ambiguous and rejected.
		st["lr"], st["nn"] = st[tc.slot], st[tc.slot]
		dual, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := UnmarshalPredictor(dual); err == nil {
			t.Fatalf("%v: v1 artifact with both payloads accepted", tc.kind)
		}
	}
}

func TestLoadedPredictorImportancesWork(t *testing.T) {
	train := synthSpace(t, 200, 24)
	p, err := Train(context.Background(), NNQ, train, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	imps, err := back.Importances(train)
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) == 0 {
		t.Fatal("no importances from a loaded model")
	}
}

// TestPredictorDecodeErrorStrings pins the exact error message each
// malformed artifact shape decodes to, across both wire versions. These
// strings are part of the operational surface — registry reload
// failures and predict-CLI errors quote them verbatim — so changing one
// is a breaking change this table makes deliberate.
func TestPredictorDecodeErrorStrings(t *testing.T) {
	train := synthSpace(t, 80, 27)
	p, err := Train(context.Background(), LRE, train, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var base map[string]json.RawMessage
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	artifact := func(change func(m map[string]json.RawMessage)) []byte {
		m := make(map[string]json.RawMessage, len(base))
		for k, v := range base {
			m[k] = v
		}
		change(m)
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	// toV1 rewrites the v2 artifact as version 1 with the payload in
	// slot (or in no slot when slot is empty).
	toV1 := func(m map[string]json.RawMessage, slots ...string) {
		m["version"] = json.RawMessage("1")
		for _, s := range slots {
			m[s] = m["model"]
		}
		delete(m, "model")
		delete(m, "family")
	}

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{
			"v1 with both legacy slots",
			artifact(func(m map[string]json.RawMessage) { toV1(m, "lr", "nn") }),
			"core: predictor carries both LR and NN payloads",
		},
		{
			"v1 neural kind with LR slot",
			artifact(func(m map[string]json.RawMessage) {
				toV1(m, "lr")
				m["kind"] = json.RawMessage("9") // NNS
			}),
			"core: NN-S predictor with an LR payload",
		},
		{
			"v1 linreg kind with NN slot",
			artifact(func(m map[string]json.RawMessage) { toV1(m, "nn") }),
			"core: LR-E predictor with an NN payload",
		},
		{
			"v1 with neither slot",
			artifact(func(m map[string]json.RawMessage) { toV1(m) }),
			"core: predictor has no model payload",
		},
		{
			"v2 smuggling a legacy slot",
			artifact(func(m map[string]json.RawMessage) { m["lr"] = m["model"] }),
			"core: version 2 predictor carries legacy payload slots",
		},
		{
			"v2 without a payload",
			artifact(func(m map[string]json.RawMessage) { delete(m, "model") }),
			"core: predictor has no model payload",
		},
		{
			"v2 family/kind mismatch",
			artifact(func(m map[string]json.RawMessage) { m["kind"] = json.RawMessage("9") }), // NNS
			`core: predictor family "linreg/v1" does not match NN-S (family "neural/v1")`,
		},
		{
			"unsupported version",
			artifact(func(m map[string]json.RawMessage) { m["version"] = json.RawMessage("3") }),
			"core: unsupported predictor version 3",
		},
		{
			"unknown kind",
			artifact(func(m map[string]json.RawMessage) { m["kind"] = json.RawMessage("99") }),
			"core: predictor has unknown model kind ModelKind(99)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := UnmarshalPredictor(tc.data)
			if err == nil {
				t.Fatal("malformed artifact decoded without error")
			}
			if err.Error() != tc.want {
				t.Errorf("error = %q\nwant    %q", err.Error(), tc.want)
			}
		})
	}
}
