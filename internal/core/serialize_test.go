package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	train := synthSpace(t, 150, 21)
	probeRows := synthSpace(t, 20, 22)
	for _, kind := range []ModelKind{LRE, LRB, NNQ, NNS} {
		p, err := Train(context.Background(), kind, train, quickCfg())
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatalf("%v: save: %v", kind, err)
		}
		back, err := LoadPredictor(&buf)
		if err != nil {
			t.Fatalf("%v: load: %v", kind, err)
		}
		if back.Kind() != kind {
			t.Fatalf("%v: kind became %v", kind, back.Kind())
		}
		for i := 0; i < probeRows.Len(); i++ {
			want, err := p.Predict(probeRows.Row(i))
			if err != nil {
				t.Fatal(err)
			}
			got, err := back.Predict(probeRows.Row(i))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%v: loaded model predicts %v, original %v", kind, got, want)
			}
		}
	}
}

func TestPredictorLoadRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalPredictor([]byte("not json")); err == nil {
		t.Fatal("garbage: want error")
	}
	if _, err := UnmarshalPredictor([]byte(`{"version":99}`)); err == nil {
		t.Fatal("bad version: want error")
	}
	if _, err := UnmarshalPredictor([]byte(`{"version":1,"kind":0,"encoder":{"version":1}}`)); err == nil {
		t.Fatal("empty encoder: want error")
	}
}

func TestPredictorLoadRejectsPayloadMismatch(t *testing.T) {
	train := synthSpace(t, 80, 23)
	p, err := Train(context.Background(), LRE, train, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]json.RawMessage
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	// Claim the LR payload belongs to a neural kind.
	st["kind"] = json.RawMessage("9") // NNS
	bad, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalPredictor(bad); err == nil {
		t.Fatal("kind/payload mismatch: want error")
	}
	// Strip the payload entirely.
	delete(st, "lr")
	st["kind"] = json.RawMessage("0")
	empty, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalPredictor(empty); err == nil {
		t.Fatal("missing payload: want error")
	}
}

func TestLoadedPredictorImportancesWork(t *testing.T) {
	train := synthSpace(t, 200, 24)
	p, err := Train(context.Background(), NNQ, train, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	imps, err := back.Importances(train)
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) == 0 {
		t.Fatal("no importances from a loaded model")
	}
}
