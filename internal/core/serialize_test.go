package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestPredictorSaveLoadRoundTrip covers every registered kind — any
// family added to the registry is automatically held to the same
// bit-identical persistence contract.
func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	train := synthSpace(t, 150, 21)
	probeRows := synthSpace(t, 20, 22)
	for _, kind := range AllModels() {
		p, err := Train(context.Background(), kind, train, quickCfg())
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatalf("%v: save: %v", kind, err)
		}
		back, err := LoadPredictor(&buf)
		if err != nil {
			t.Fatalf("%v: load: %v", kind, err)
		}
		if back.Kind() != kind {
			t.Fatalf("%v: kind became %v", kind, back.Kind())
		}
		for i := 0; i < probeRows.Len(); i++ {
			want, err := p.Predict(probeRows.Row(i))
			if err != nil {
				t.Fatal(err)
			}
			got, err := back.Predict(probeRows.Row(i))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%v: loaded model predicts %v, original %v", kind, got, want)
			}
		}
	}
}

func TestPredictorLoadRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalPredictor([]byte("not json")); err == nil {
		t.Fatal("garbage: want error")
	}
	if _, err := UnmarshalPredictor([]byte(`{"version":99}`)); err == nil {
		t.Fatal("bad version: want error")
	}
	if _, err := UnmarshalPredictor([]byte(`{"version":1,"kind":0,"encoder":{"version":1}}`)); err == nil {
		t.Fatal("empty encoder: want error")
	}
}

func TestPredictorLoadRejectsPayloadMismatch(t *testing.T) {
	train := synthSpace(t, 80, 23)
	p, err := Train(context.Background(), LRE, train, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]json.RawMessage
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	mutate := func(change func(m map[string]json.RawMessage)) []byte {
		m := make(map[string]json.RawMessage, len(st))
		for k, v := range st {
			m[k] = v
		}
		change(m)
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	// Claim the linreg payload belongs to a neural kind: the family tag
	// no longer matches the kind's registered family.
	bad := mutate(func(m map[string]json.RawMessage) { m["kind"] = json.RawMessage("9") }) // NNS
	if _, err := UnmarshalPredictor(bad); err == nil {
		t.Fatal("kind/family mismatch: want error")
	}
	// Strip the payload entirely.
	empty := mutate(func(m map[string]json.RawMessage) { delete(m, "model") })
	if _, err := UnmarshalPredictor(empty); err == nil {
		t.Fatal("missing payload: want error")
	}
	// A v2 artifact smuggling a legacy slot next to its payload is
	// ambiguous and rejected.
	both := mutate(func(m map[string]json.RawMessage) { m["lr"] = m["model"] })
	if _, err := UnmarshalPredictor(both); err == nil {
		t.Fatal("v2 artifact with legacy slot: want error")
	}
}

// TestPredictorLoadV1Compat pins the backward-compat decode path: a
// version-1 artifact (payload in the lr/nn slot, no family tag) still
// loads and predicts identically, and its slot/kind consistency rules
// still hold.
func TestPredictorLoadV1Compat(t *testing.T) {
	train := synthSpace(t, 80, 25)
	for _, tc := range []struct {
		kind ModelKind
		slot string
	}{{LRE, "lr"}, {NNS, "nn"}} {
		p, err := Train(context.Background(), tc.kind, train, quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var st map[string]json.RawMessage
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		// Rewrite the v2 artifact as its v1 equivalent.
		st["version"] = json.RawMessage("1")
		st[tc.slot] = st["model"]
		delete(st, "model")
		delete(st, "family")
		v1, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalPredictor(v1)
		if err != nil {
			t.Fatalf("%v: v1 artifact rejected: %v", tc.kind, err)
		}
		want, err := p.Predict(train.Row(0))
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Predict(train.Row(0))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: v1-loaded predictor predicts %v, original %v", tc.kind, got, want)
		}
		// Both legacy slots at once is ambiguous and rejected.
		st["lr"], st["nn"] = st[tc.slot], st[tc.slot]
		dual, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := UnmarshalPredictor(dual); err == nil {
			t.Fatalf("%v: v1 artifact with both payloads accepted", tc.kind)
		}
	}
}

func TestLoadedPredictorImportancesWork(t *testing.T) {
	train := synthSpace(t, 200, 24)
	p, err := Train(context.Background(), NNQ, train, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	imps, err := back.Importances(train)
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) == 0 {
		t.Fatal("no importances from a loaded model")
	}
}
