package core

import (
	"context"
	"encoding/json"
	"testing"

	"perfpred/internal/dataset"
)

// FuzzUnmarshalPredictor checks the predictor decoder never panics and
// that every successfully loaded predictor can score a row of the schema
// it claims.
func FuzzUnmarshalPredictor(f *testing.F) {
	train, err := buildFuzzDataset()
	if err != nil {
		f.Fatal(err)
	}
	for _, kind := range []ModelKind{LRE, NNS} {
		p, err := Train(context.Background(), kind, train, TrainConfig{Seed: 1, EpochScale: 0.2, Workers: 1})
		if err != nil {
			f.Fatal(err)
		}
		data, err := json.Marshal(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// A corrupted variant.
		bad := append([]byte(nil), data...)
		if len(bad) > 40 {
			bad[30] ^= 0x5a
		}
		f.Add(bad)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`not json at all`))

	probe := train.Row(0)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalPredictor(data)
		if err != nil {
			return
		}
		// The loaded predictor must be usable if its schema matches.
		if p.Encoder().Schema() == nil {
			t.Fatal("loaded predictor has no schema")
		}
		if len(p.Encoder().Schema().Fields) == len(probe) {
			if _, err := p.Predict(probe); err != nil {
				// An error is fine (e.g. unmapped category); a panic is not.
				return
			}
		}
	})
}

// buildFuzzDataset builds a small deterministic training set without a
// *testing.T (fuzz setup runs under *testing.F).
func buildFuzzDataset() (*dataset.Dataset, error) {
	s, err := dataset.NewSchema("y",
		dataset.Field{Name: "a", Kind: dataset.Numeric},
		dataset.Field{Name: "b", Kind: dataset.Flag},
	)
	if err != nil {
		return nil, err
	}
	d := dataset.New(s)
	for i := 0; i < 40; i++ {
		x := float64(i)
		y := 3*x + 10
		if i%2 == 0 {
			y *= 1.1
		}
		if err := d.Append([]dataset.Value{dataset.Num(x), dataset.FlagVal(i%2 == 0)}, y); err != nil {
			return nil, err
		}
	}
	return d, nil
}
