package core

import (
	"perfpred/internal/obs"
)

// ReportMeta identifies a run for its RunReport: everything needed to
// reproduce it plus the wall-clock numbers only the caller can measure.
type ReportMeta struct {
	// Command names the producing tool ("dse", "chrono", "experiments").
	Command string
	// Target is the benchmark or system family.
	Target string
	// Seed is the master seed the run used.
	Seed int64
	// Workers is the configured worker bound (0 = GOMAXPROCS).
	Workers int
	// EpochScale is the neural epoch-budget scale used (0 = 1.0).
	EpochScale float64
	// SpaceSize is the evaluated design-space size (sampled DSE).
	SpaceSize int
	// WallClock is the caller-measured timing breakdown.
	WallClock obs.WallClock
}

// newReport builds the skeleton every workflow report shares.
func (m ReportMeta) newReport(rec *obs.Recorder) *obs.RunReport {
	rep := &obs.RunReport{
		Version:    obs.ReportVersion,
		Command:    m.Command,
		Target:     m.Target,
		Seed:       m.Seed,
		Workers:    m.Workers,
		EpochScale: m.EpochScale,
		SpaceSize:  m.SpaceSize,
		WallClock:  m.WallClock,
	}
	if rec != nil {
		exec := rec.Execution()
		rep.Execution = &exec
		metrics := rec.Metrics()
		rep.Metrics = &metrics
	}
	return rep
}

// reportModels converts workflow model reports to their serializable
// form, preserving request order and full float64 precision — the same
// values the console renderers round for display, so a report and the
// console output can never disagree.
func reportModels(reports []ModelReport) []obs.ModelResult {
	out := make([]obs.ModelResult, len(reports))
	for i, r := range reports {
		out[i] = obs.ModelResult{
			Kind:            r.Kind.String(),
			EstimateMean:    r.Estimate.Mean,
			EstimateMax:     r.Estimate.Max,
			EstimatePerFold: append([]float64(nil), r.Estimate.PerFold...),
			TrueMAPE:        r.TrueMAPE,
			StdAPE:          r.StdAPE,
		}
	}
	return out
}

// BuildDSEReport assembles the RunReport of a sampled design-space
// exploration run. rec may be nil (the execution section is omitted).
func BuildDSEReport(res *SampledDSEResult, meta ReportMeta, rec *obs.Recorder) *obs.RunReport {
	rep := meta.newReport(rec)
	rep.Fraction = res.Fraction
	rep.SampleSize = res.SampleSize
	rep.Models = reportModels(res.Reports)
	rep.Selected = res.Selected.String()
	rep.SelectedTrueMAPE = res.SelectedTrueMAPE
	return rep
}

// BuildActiveDSEReport assembles the RunReport of an active-learning
// design-space exploration run: the sampled-DSE sections (so the same
// readers and regression fixtures work at equal budget) plus the
// acquisition trajectory in the Active section. rec may be nil.
func BuildActiveDSEReport(res *ActiveDSEResult, meta ReportMeta, rec *obs.Recorder) *obs.RunReport {
	rep := BuildDSEReport(&res.SampledDSEResult, meta, rec)
	act := &obs.ActiveStats{
		Strategy:    res.Strategy,
		InitialSize: res.InitialSize,
		FinalSize:   res.SampleSize,
		PoolSize:    res.Complement.Len(),
		Rounds:      make([]obs.ActiveRound, len(res.Rounds)),
	}
	for i, r := range res.Rounds {
		round := obs.ActiveRound{
			Round:          r.Round,
			LabeledBefore:  r.LabeledBefore,
			PoolBefore:     r.PoolBefore,
			Acquired:       r.Acquired,
			TrainSeconds:   r.TrainSeconds,
			AcquireSeconds: r.AcquireSeconds,
			Committee:      make([]obs.CommitteeError, len(r.Committee)),
		}
		for j, c := range r.Committee {
			round.Committee[j] = obs.CommitteeError{Kind: c.Name, TrueMAPE: c.MAPE}
		}
		act.Rounds[i] = round
	}
	rep.Active = act
	return rep
}

// BuildChronoReport assembles the RunReport of a chronological
// prediction run. rec may be nil.
func BuildChronoReport(res *ChronoResult, trainSize, futureSize int, meta ReportMeta, rec *obs.Recorder) *obs.RunReport {
	rep := meta.newReport(rec)
	rep.TrainSize = trainSize
	rep.FutureSize = futureSize
	rep.Models = reportModels(res.Reports)
	rep.Selected = res.Selected.String()
	rep.SelectedTrueMAPE = res.SelectedTrueMAPE
	rep.Best = res.Best.String()
	rep.BestTrueMAPE = res.BestTrueMAPE
	return rep
}
