package core

import (
	"context"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"perfpred/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden RunReport fixture from the current run")

// goldenReportFixture is the checked-in RunReport of the canonical
// fixed-seed sampled-DSE run. Regenerate with:
//
//	go test ./internal/core -run TestGoldenRunReport -update
const goldenReportFixture = "testdata/golden_dse_report.json"

// goldenDSERun executes the canonical sampled-DSE configuration (the
// same one TestGoldenSampledDSE pins) with a Recorder attached and
// returns the resulting report.
func goldenDSERun(t *testing.T, workers int) (*obs.RunReport, *obs.Recorder) {
	t.Helper()
	full := synthSpace(t, 900, 77)
	kinds := []ModelKind{LRE, LRB, NNQ, NNS}
	rec := obs.NewRecorder()
	cfg := TrainConfig{Seed: 123, Workers: workers, EpochScale: 0.25, Hook: rec.Hook()}
	res, err := RunSampledDSE(context.Background(), full, 0.1, kinds, cfg)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	meta := ReportMeta{Command: "dse", Target: "synthetic", Seed: 123, Workers: workers,
		EpochScale: 0.25, SpaceSize: full.Len()}
	return BuildDSEReport(res, meta, rec), rec
}

// normalizeReport strips everything a re-run legitimately changes —
// wall-clock timing, execution durations, metric histograms, and the
// worker count — leaving only the statistical content the fixture pins.
func normalizeReport(rep *obs.RunReport) *obs.RunReport {
	n := *rep
	n.Workers = 0
	n.WallClock = obs.WallClock{}
	n.Execution = nil
	n.Metrics = nil
	return &n
}

// checkReportStats compares the statistical content of two reports
// within a tight relative epsilon. The run itself is bit-deterministic,
// but the fixture passes through decimal JSON, so exact float equality
// is not guaranteed by the encoding; 1e-9 relative is far below any
// drift a model change would cause and far above round-trip noise.
func checkReportStats(t *testing.T, got, want *obs.RunReport) {
	t.Helper()
	const eps = 1e-9
	approx := func(field string, g, w float64) {
		if relErr(g, w) > eps {
			t.Errorf("%s = %.17g, fixture has %.17g", field, g, w)
		}
	}
	if got.Version != want.Version || got.Command != want.Command || got.Seed != want.Seed {
		t.Errorf("header drift: got {v%d %q seed %d}, fixture {v%d %q seed %d}",
			got.Version, got.Command, got.Seed, want.Version, want.Command, want.Seed)
	}
	approx("epoch_scale", got.EpochScale, want.EpochScale)
	approx("fraction", got.Fraction, want.Fraction)
	if got.SampleSize != want.SampleSize || got.SpaceSize != want.SpaceSize {
		t.Errorf("sizes: got sample=%d space=%d, fixture sample=%d space=%d",
			got.SampleSize, got.SpaceSize, want.SampleSize, want.SpaceSize)
	}
	if got.Selected != want.Selected {
		t.Errorf("Selected = %q, fixture has %q", got.Selected, want.Selected)
	}
	approx("selected_true_mape", got.SelectedTrueMAPE, want.SelectedTrueMAPE)
	if len(got.Models) != len(want.Models) {
		t.Fatalf("%d models, fixture has %d", len(got.Models), len(want.Models))
	}
	for i, w := range want.Models {
		g := got.Models[i]
		if g.Kind != w.Kind {
			t.Errorf("model[%d] kind %q, fixture has %q", i, g.Kind, w.Kind)
			continue
		}
		approx(g.Kind+".estimate_mean", g.EstimateMean, w.EstimateMean)
		approx(g.Kind+".estimate_max", g.EstimateMax, w.EstimateMax)
		approx(g.Kind+".true_mape", g.TrueMAPE, w.TrueMAPE)
		approx(g.Kind+".std_ape", g.StdAPE, w.StdAPE)
		if len(g.EstimatePerFold) != len(w.EstimatePerFold) {
			t.Errorf("model %s: %d folds, fixture has %d", g.Kind, len(g.EstimatePerFold), len(w.EstimatePerFold))
			continue
		}
		for f := range w.EstimatePerFold {
			approx(g.Kind+".per_fold", g.EstimatePerFold[f], w.EstimatePerFold[f])
		}
	}
}

func relErr(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// TestGoldenRunReport is the statistical regression harness: the full
// observability pipeline (engine Hook → Recorder → RunReport) must
// reproduce the checked-in per-model CV errors and true MAPEs of the
// canonical run at any worker count, and the execution counts the
// Recorder aggregates must be identical serially and wide.
func TestGoldenRunReport(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run trains four models twice")
	}
	serialRep, serialRec := goldenDSERun(t, 1)

	if *updateGolden {
		norm := normalizeReport(serialRep)
		if err := os.MkdirAll(filepath.Dir(goldenReportFixture), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := norm.WriteFile(goldenReportFixture); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenReportFixture)
	}

	want, err := obs.ReadReportFile(goldenReportFixture)
	if err != nil {
		t.Fatalf("read fixture (regenerate with -update): %v", err)
	}
	checkReportStats(t, normalizeReport(serialRep), want)

	// The report must also validate as a well-formed artifact.
	if err := serialRep.Validate(); err != nil {
		t.Errorf("live report invalid: %v", err)
	}

	wideRep, wideRec := goldenDSERun(t, 8)
	checkReportStats(t, normalizeReport(wideRep), want)

	// Scheduling cannot leak into what the Recorder counted: task, fold,
	// epoch-event, and per-model totals agree between 1 and 8 workers.
	sc, wc := serialRec.Execution().Counts(), wideRec.Execution().Counts()
	if !reflect.DeepEqual(sc, wc) {
		t.Errorf("execution counts differ across worker counts:\nserial %v\nwide   %v", sc, wc)
	}
	if sc["tasks_failed"] != 0 {
		t.Errorf("golden run recorded %d failed tasks", sc["tasks_failed"])
	}
	if sc["tasks_done"] == 0 || sc["epoch_events"] == 0 {
		t.Errorf("recorder saw no work: counts %v", sc)
	}
}
