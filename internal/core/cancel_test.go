package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"perfpred/internal/engine"
)

// Cancelling the context mid-run must abort the whole fold×kind task
// graph promptly with context.Canceled and leave no worker goroutines
// behind. The hook fires the cancel from inside the first task start, so
// the run is guaranteed to be mid-flight when the plug is pulled.
func TestRunSampledDSECancellation(t *testing.T) {
	full := synthSpace(t, 400, 17)
	kinds := []ModelKind{NNS, NNQ, LRE, LRB}

	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Bool
	cfg := TrainConfig{
		Seed: 5, Workers: 4, EpochScale: 1.0,
		Hook: func(e engine.Event) {
			if e.Kind == engine.TaskStart && fired.CompareAndSwap(false, true) {
				cancel()
			}
		},
	}

	start := time.Now()
	_, err := RunSampledDSE(ctx, full, 0.2, kinds, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// "Prompt" is fuzzy; a full NN-S training on 80 samples is not. The
	// epoch-level checks should abandon work orders of magnitude sooner.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want well under 5s", elapsed)
	}

	// Workers exit once they observe the cancellation; give the runtime a
	// moment to reap them before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A context cancelled before the run starts must fail fast without
// training anything.
func TestRunSampledDSEPreCancelled(t *testing.T) {
	full := synthSpace(t, 400, 17)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var started atomic.Int32
	cfg := TrainConfig{
		Seed: 5, Workers: 2,
		Hook: func(e engine.Event) {
			if e.Kind == engine.TaskStart {
				started.Add(1)
			}
		},
	}
	_, err := RunSampledDSE(ctx, full, 0.2, []ModelKind{NNS}, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n != 0 {
		t.Fatalf("%d tasks started under a pre-cancelled context", n)
	}
}
