package core

import (
	"context"
	"errors"
	"fmt"

	"perfpred/internal/dataset"
	"perfpred/internal/engine"
	"perfpred/internal/stat"
)

// ErrorEstimate is the predicted generalization error of a model obtained
// by cross-validation before any test data is seen (paper §3.3).
type ErrorEstimate struct {
	// Mean is the average cross-validated MAPE over the folds.
	Mean float64
	// Max is the worst fold's MAPE. The paper found the maximum to be the
	// closer estimate of the true error and uses it for model selection.
	Max float64
	// PerFold lists each fold's MAPE.
	PerFold []float64
}

// estimateFolds is the paper's fold count: "we have generated five random
// sets of 50% of the training data" (§3.3).
const estimateFolds = 5

// estimateFoldTask builds the engine task computing one cross-validation
// fold of kind's error estimate, writing the fold's MAPE into out[fold].
//
// Seed-derivation contract (frozen so scheduling changes can never perturb
// the paper's reproduced numbers): the fold's split RNG is seeded with
// DeriveSeed(cfg.Seed, 7000+fold) and the fold's training seed with
// DeriveSeed(foldSeed, 1). Fold tasks always train with Workers=1 — the
// pool that schedules them owns the global worker budget.
func estimateFoldTask(kind ModelKind, train *dataset.Dataset, cfg TrainConfig, fold int, out []float64) engine.Task {
	return engine.Task{
		Label: fmt.Sprintf("estimate %v fold %d", kind, fold),
		Model: kind.String(),
		Fold:  fold,
		Run: func(ctx context.Context) error {
			if train == nil || train.Len() < 4 {
				return errors.New("core: need at least 4 records to estimate error")
			}
			foldSeed := stat.DeriveSeed(cfg.Seed, 7000+fold)
			half, rest, err := train.SplitHalf(stat.NewRand(foldSeed))
			if err != nil {
				return err
			}
			foldCfg := cfg
			foldCfg.Seed = stat.DeriveSeed(foldSeed, 1)
			foldCfg.Workers = 1 // parallelism lives at the fold level
			p, err := Train(ctx, kind, half, foldCfg)
			if err != nil {
				return err
			}
			mape, _, err := p.Evaluate(ctx, rest)
			if err != nil {
				return err
			}
			out[fold] = mape
			return nil
		},
	}
}

// foldEstimate aggregates per-fold MAPEs into an ErrorEstimate.
func foldEstimate(perFold []float64) (ErrorEstimate, error) {
	est := ErrorEstimate{PerFold: perFold}
	est.Mean = stat.Mean(perFold)
	mx, err := stat.Max(perFold)
	if err != nil {
		return ErrorEstimate{}, err
	}
	est.Max = mx
	return est, nil
}

// EstimateError estimates a model kind's predictive error on the training
// data by the paper's procedure: five times, split the training data into
// random halves, train on one half and measure MAPE on the other. Folds
// run in parallel on the engine pool; the result is deterministic for a
// given seed regardless of worker count.
func EstimateError(ctx context.Context, kind ModelKind, train *dataset.Dataset, cfg TrainConfig) (ErrorEstimate, error) {
	if train == nil || train.Len() < 4 {
		return ErrorEstimate{}, errors.New("core: need at least 4 records to estimate error")
	}
	perFold := make([]float64, estimateFolds)
	tasks := make([]engine.Task, estimateFolds)
	for fold := 0; fold < estimateFolds; fold++ {
		tasks[fold] = estimateFoldTask(kind, train, cfg, fold, perFold)
	}
	if err := engine.Run(ctx, cfg.pool(), tasks...); err != nil {
		return ErrorEstimate{}, err
	}
	return foldEstimate(perFold)
}
