package core

import (
	"errors"
	"sync"

	"perfpred/internal/dataset"
	"perfpred/internal/stat"
)

// ErrorEstimate is the predicted generalization error of a model obtained
// by cross-validation before any test data is seen (paper §3.3).
type ErrorEstimate struct {
	// Mean is the average cross-validated MAPE over the folds.
	Mean float64
	// Max is the worst fold's MAPE. The paper found the maximum to be the
	// closer estimate of the true error and uses it for model selection.
	Max float64
	// PerFold lists each fold's MAPE.
	PerFold []float64
}

// estimateFolds is the paper's fold count: "we have generated five random
// sets of 50% of the training data" (§3.3).
const estimateFolds = 5

// EstimateError estimates a model kind's predictive error on the training
// data by the paper's procedure: five times, split the training data into
// random halves, train on one half and measure MAPE on the other. Folds
// run in parallel; the result is deterministic for a given seed.
func EstimateError(kind ModelKind, train *dataset.Dataset, cfg TrainConfig) (ErrorEstimate, error) {
	if train == nil || train.Len() < 4 {
		return ErrorEstimate{}, errors.New("core: need at least 4 records to estimate error")
	}
	perFold := make([]float64, estimateFolds)
	errs := make([]error, estimateFolds)
	var wg sync.WaitGroup
	workers := cfg.workers()
	if workers > estimateFolds {
		workers = estimateFolds
	}
	sem := make(chan struct{}, workers)
	for fold := 0; fold < estimateFolds; fold++ {
		wg.Add(1)
		go func(fold int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			foldSeed := stat.DeriveSeed(cfg.Seed, 7000+fold)
			half, rest, err := train.SplitHalf(stat.NewRand(foldSeed))
			if err != nil {
				errs[fold] = err
				return
			}
			foldCfg := cfg
			foldCfg.Seed = stat.DeriveSeed(foldSeed, 1)
			foldCfg.Workers = 1 // parallelism lives at the fold level here
			p, err := Train(kind, half, foldCfg)
			if err != nil {
				errs[fold] = err
				return
			}
			mape, _, err := p.Evaluate(rest)
			if err != nil {
				errs[fold] = err
				return
			}
			perFold[fold] = mape
		}(fold)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return ErrorEstimate{}, err
		}
	}
	est := ErrorEstimate{PerFold: perFold}
	est.Mean = stat.Mean(perFold)
	mx, err := stat.Max(perFold)
	if err != nil {
		return ErrorEstimate{}, err
	}
	est.Max = mx
	return est, nil
}
