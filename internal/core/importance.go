package core

import (
	"errors"
	"sort"

	"perfpred/internal/dataset"
	"perfpred/internal/model"
)

// FieldImportance is one input field's relative influence on a trained
// model's predictions (paper §4.4: neural-network importance from
// sensitivity analysis, linear-regression importance from standardized
// beta coefficients, tree-ensemble importance from out-of-bag
// permutation).
type FieldImportance struct {
	// Field is the schema field name (one-hot columns are folded back to
	// their source field).
	Field string
	// Score is the relative importance in the family's own convention:
	// for neural and tree models 0 means no effect and 1.0 means the
	// field dominates the prediction; for linear models it is the
	// absolute standardized beta.
	Score float64
}

// Importances analyses the predictor against (a sample of) the dataset it
// was trained on and returns per-field importance scores sorted from most
// to least important. Fields the model dropped do not appear. The scores
// come from the family's own Importance implementation; core only folds
// encoded columns back onto their source fields (the strongest column
// represents the field).
func (p *Predictor) Importances(d *dataset.Dataset) ([]FieldImportance, error) {
	if d == nil || d.Len() == 0 {
		return nil, errors.New("core: importance needs probe records")
	}
	x, _, err := p.enc.Transform(d)
	if err != nil {
		return nil, err
	}
	imp, err := p.model.Importance(x)
	if err != nil {
		return nil, err
	}
	byField := map[string]float64{}
	for col, score := range imp {
		f := p.enc.SourceField(col)
		if score > byField[f] {
			byField[f] = score
		}
	}
	out := make([]FieldImportance, 0, len(byField))
	for f, s := range byField {
		if s > 0 {
			out = append(out, FieldImportance{Field: f, Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Field < out[j].Field
	})
	return out, nil
}

// SelectedPredictors returns the names of the input columns the model's
// training retained, via the optional model.Selector interface (paper
// §4.3 discusses how LR-S/LR-B keep fewer predictors than LR-E; pruned
// networks freeze inputs). Families without selection report every
// encoded column's source field.
func (p *Predictor) SelectedPredictors() []string {
	cols := make([]int, 0, p.enc.NumColumns())
	if sel, ok := p.model.(model.Selector); ok {
		cols = sel.SelectedColumns()
	} else {
		for c := 0; c < p.enc.NumColumns(); c++ {
			cols = append(cols, c)
		}
	}
	if p.enc.Mode() == dataset.ForLR {
		// LR-mode columns are the field names themselves; keep the
		// design-column order of the coefficient table.
		out := make([]string, len(cols))
		for i, c := range cols {
			out[i] = p.enc.ColumnNames()[c]
		}
		return out
	}
	// Fold encoded columns back to source fields, sorted by name.
	seen := map[string]bool{}
	var out []string
	for _, c := range cols {
		f := p.enc.SourceField(c)
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}
