package core

import (
	"errors"
	"math"
	"sort"

	"perfpred/internal/dataset"
)

// FieldImportance is one input field's relative influence on a trained
// model's predictions (paper §4.4: neural-network importance from
// sensitivity analysis, linear-regression importance from standardized
// beta coefficients).
type FieldImportance struct {
	// Field is the schema field name (one-hot columns are folded back to
	// their source field).
	Field string
	// Score is the relative importance: for neural models, 0 means no
	// effect and 1.0 means the field alone spans the whole prediction
	// range; for linear models it is the absolute standardized beta.
	Score float64
}

// Importances analyses the predictor against (a sample of) the dataset it
// was trained on and returns per-field importance scores sorted from most
// to least important. Fields the model dropped do not appear.
func (p *Predictor) Importances(d *dataset.Dataset) ([]FieldImportance, error) {
	if d == nil || d.Len() == 0 {
		return nil, errors.New("core: importance needs probe records")
	}
	byField := map[string]float64{}
	if p.nn != nil {
		x, _, err := p.enc.Transform(d)
		if err != nil {
			return nil, err
		}
		imp, err := p.nn.Importance(x)
		if err != nil {
			return nil, err
		}
		// Fold one-hot columns back onto their source field (the
		// strongest level represents the field).
		for col, score := range imp {
			f := p.enc.SourceField(col)
			if score > byField[f] {
				byField[f] = score
			}
		}
	} else {
		for _, c := range p.lr.Coefficients() {
			name := c.Name
			score := math.Abs(c.StdBeta)
			if score > byField[name] {
				byField[name] = score
			}
		}
	}
	out := make([]FieldImportance, 0, len(byField))
	for f, s := range byField {
		if s > 0 {
			out = append(out, FieldImportance{Field: f, Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Field < out[j].Field
	})
	return out, nil
}

// SelectedPredictors returns the names of the predictors a linear model
// retained (paper §4.3 discusses how LR-S/LR-B keep fewer predictors than
// LR-E). Neural predictors return the fields that remain unpruned.
func (p *Predictor) SelectedPredictors() []string {
	if p.lr != nil {
		return p.lr.SelectedNames()
	}
	// Neural model: every unfrozen input's source field.
	seen := map[string]bool{}
	var out []string
	for col := 0; col < p.enc.NumColumns(); col++ {
		if p.nn.Network().InputFrozen(col) {
			continue
		}
		f := p.enc.SourceField(col)
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}
