package core

import "testing"

// The Select rule ranks by the Max fold-error criterion alone; mean
// estimates, true errors, and everything else are tie-break-irrelevant.
func TestSelectByEstimateLowestMax(t *testing.T) {
	reports := []ModelReport{
		{Kind: LRE, Estimate: ErrorEstimate{Mean: 1, Max: 9}},
		{Kind: NNQ, Estimate: ErrorEstimate{Mean: 8, Max: 3}},
		{Kind: NNS, Estimate: ErrorEstimate{Mean: 2, Max: 5}},
	}
	sel, err := selectByEstimate(reports)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Kind != NNQ {
		t.Fatalf("selected %v, want NN-Q (lowest Estimate.Max)", sel.Kind)
	}
}

// Ties on Estimate.Max break toward the earliest model in request order,
// so selection is deterministic for a fixed kinds slice.
func TestSelectByEstimateTieBreaksToRequestOrder(t *testing.T) {
	reports := []ModelReport{
		{Kind: LRB, Estimate: ErrorEstimate{Mean: 7, Max: 4}},
		{Kind: NNQ, Estimate: ErrorEstimate{Mean: 1, Max: 4}},
		{Kind: NNS, Estimate: ErrorEstimate{Mean: 9, Max: 4}},
	}
	sel, err := selectByEstimate(reports)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Kind != LRB {
		t.Fatalf("selected %v, want LR-B (first of the tied models)", sel.Kind)
	}
	if sel != &reports[0] {
		t.Fatal("selection should alias the winning report, not a copy")
	}
}

func TestSelectByEstimateEmpty(t *testing.T) {
	if _, err := selectByEstimate(nil); err == nil {
		t.Fatal("want error for empty report slice")
	}
}
