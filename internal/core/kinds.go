// Package core implements the paper's predictive-modeling framework: the
// nine-model zoo (four linear-regression selection methods, five neural
// network training methods, plus the NN-S single-layer baseline), the
// five-fold 50 % cross-validation error estimation of §3.3, the "Select"
// meta-method that picks the model with the best estimated error, and the
// two workflows of Figure 1 — sampled design-space exploration and
// chronological prediction.
package core

import (
	"fmt"

	"perfpred/internal/linreg"
	"perfpred/internal/neural"
)

// ModelKind identifies one candidate model of the zoo.
type ModelKind int

const (
	// LRE is linear regression with the Enter method (all predictors).
	LRE ModelKind = iota
	// LRS is stepwise linear regression.
	LRS
	// LRB is backwards linear regression.
	LRB
	// LRF is forwards linear regression.
	LRF
	// NNQ is the Quick neural network.
	NNQ
	// NND is the Dynamic neural network.
	NND
	// NNM is the Multiple neural network.
	NNM
	// NNP is the Prune neural network.
	NNP
	// NNE is the Exhaustive Prune neural network.
	NNE
	// NNS is the single-layer constant-learning-rate network (the
	// Ipek-style baseline the paper compares against).
	NNS
)

// String returns the paper's model label.
func (k ModelKind) String() string {
	switch k {
	case LRE:
		return "LR-E"
	case LRS:
		return "LR-S"
	case LRB:
		return "LR-B"
	case LRF:
		return "LR-F"
	case NNQ:
		return "NN-Q"
	case NND:
		return "NN-D"
	case NNM:
		return "NN-M"
	case NNP:
		return "NN-P"
	case NNE:
		return "NN-E"
	case NNS:
		return "NN-S"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(k))
	}
}

// ParseModelKind converts a paper label (e.g. "NN-E") to a ModelKind.
func ParseModelKind(s string) (ModelKind, error) {
	for _, k := range AllModels() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown model %q", s)
}

// AllModels lists every implemented model kind.
func AllModels() []ModelKind {
	return []ModelKind{LRE, LRS, LRB, LRF, NNQ, NND, NNM, NNP, NNE, NNS}
}

// FigureModels lists the nine models in the order of the paper's
// Figures 7 and 8 (LR-E, LR-S, LR-B, LR-F, NN-Q, NN-D, NN-M, NN-P, NN-E).
func FigureModels() []ModelKind {
	return []ModelKind{LRE, LRS, LRB, LRF, NNQ, NND, NNM, NNP, NNE}
}

// SampledModels lists the three models the paper's Figures 2–6 present
// for the sampled design space (best LR, best NN, fast NN).
func SampledModels() []ModelKind { return []ModelKind{LRB, NNE, NNS} }

// IsNeural reports whether the kind is a neural-network model.
func (k ModelKind) IsNeural() bool { return k >= NNQ }

// lrMethod maps a linear kind to its selection method.
func (k ModelKind) lrMethod() (linreg.Method, bool) {
	switch k {
	case LRE:
		return linreg.Enter, true
	case LRS:
		return linreg.Stepwise, true
	case LRB:
		return linreg.Backward, true
	case LRF:
		return linreg.Forward, true
	default:
		return 0, false
	}
}

// nnMethod maps a neural kind to its training method.
func (k ModelKind) nnMethod() (neural.Method, bool) {
	switch k {
	case NNQ:
		return neural.Quick, true
	case NND:
		return neural.Dynamic, true
	case NNM:
		return neural.Multiple, true
	case NNP:
		return neural.Prune, true
	case NNE:
		return neural.ExhaustivePrune, true
	case NNS:
		return neural.Single, true
	default:
		return 0, false
	}
}
