// Package core implements the paper's predictive-modeling framework: the
// model zoo (four linear-regression selection methods, five neural
// network training methods, the NN-S single-layer baseline, plus any
// family registered beyond the paper, such as the TREE-B bagged ensemble),
// the five-fold 50 % cross-validation error estimation of §3.3, the
// "Select" meta-method that picks the model with the best estimated
// error, and the two workflows of Figure 1 — sampled design-space
// exploration and chronological prediction.
//
// Core never dispatches on concrete families: every train, predict,
// serialize and importance path goes through the model registry, so a new
// family (one package registering itself, linked via model/all) flows
// through every workflow here without core changes.
package core

import (
	"fmt"

	"perfpred/internal/model"
	_ "perfpred/internal/model/all"
)

// ModelKind identifies one candidate model of the zoo. It is the model
// registry's Kind; the paper constants below are re-exported so callers
// can keep naming models without importing the registry.
type ModelKind = model.Kind

const (
	// LRE is linear regression with the Enter method (all predictors).
	LRE = model.LRE
	// LRS is stepwise linear regression.
	LRS = model.LRS
	// LRB is backwards linear regression.
	LRB = model.LRB
	// LRF is forwards linear regression.
	LRF = model.LRF
	// NNQ is the Quick neural network.
	NNQ = model.NNQ
	// NND is the Dynamic neural network.
	NND = model.NND
	// NNM is the Multiple neural network.
	NNM = model.NNM
	// NNP is the Prune neural network.
	NNP = model.NNP
	// NNE is the Exhaustive Prune neural network.
	NNE = model.NNE
	// NNS is the single-layer constant-learning-rate network (the
	// Ipek-style baseline the paper compares against).
	NNS = model.NNS
)

// ParseModelKind converts a model label (e.g. "NN-E", "TREE-B") to a
// ModelKind.
func ParseModelKind(s string) (ModelKind, error) {
	k, err := model.Parse(s)
	if err != nil {
		return 0, fmt.Errorf("core: unknown model %q", s)
	}
	return k, nil
}

// AllModels lists every registered model kind, in kind order.
func AllModels() []ModelKind { return model.Kinds() }

// FigureModels lists the nine models in the order of the paper's
// Figures 7 and 8 (LR-E, LR-S, LR-B, LR-F, NN-Q, NN-D, NN-M, NN-P, NN-E).
func FigureModels() []ModelKind {
	return []ModelKind{LRE, LRS, LRB, LRF, NNQ, NND, NNM, NNP, NNE}
}

// SampledModels lists the three models the paper's Figures 2–6 present
// for the sampled design space (best LR, best NN, fast NN).
func SampledModels() []ModelKind { return []ModelKind{LRB, NNE, NNS} }
