package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"perfpred/internal/dataset"
	"perfpred/internal/linreg"
	"perfpred/internal/neural"
)

type predictorState struct {
	Version int             `json:"version"`
	Kind    ModelKind       `json:"kind"`
	Encoder json.RawMessage `json:"encoder"`
	LR      json.RawMessage `json:"lr,omitempty"`
	NN      json.RawMessage `json:"nn,omitempty"`
}

const predictorVersion = 1

// MarshalJSON serializes the trained predictor — model weights plus the
// fitted input encoder — so a surrogate can be stored and reused without
// retraining.
func (p *Predictor) MarshalJSON() ([]byte, error) {
	enc, err := json.Marshal(p.enc)
	if err != nil {
		return nil, err
	}
	st := predictorState{Version: predictorVersion, Kind: p.kind, Encoder: enc}
	if p.lr != nil {
		if st.LR, err = json.Marshal(p.lr); err != nil {
			return nil, err
		}
	}
	if p.nn != nil {
		if st.NN, err = json.Marshal(p.nn); err != nil {
			return nil, err
		}
	}
	return json.Marshal(st)
}

// UnmarshalPredictor restores a predictor serialized by MarshalJSON.
func UnmarshalPredictor(data []byte) (*Predictor, error) {
	var st predictorState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("core: decoding predictor: %w", err)
	}
	if st.Version != predictorVersion {
		return nil, fmt.Errorf("core: unsupported predictor version %d", st.Version)
	}
	enc, err := dataset.UnmarshalEncoder(st.Encoder)
	if err != nil {
		return nil, err
	}
	p := &Predictor{kind: st.Kind, enc: enc}
	switch {
	case st.LR != nil && st.NN != nil:
		return nil, fmt.Errorf("core: predictor carries both LR and NN payloads")
	case st.LR != nil:
		if st.Kind.IsNeural() {
			return nil, fmt.Errorf("core: %v predictor with an LR payload", st.Kind)
		}
		if p.lr, err = linreg.UnmarshalModel(st.LR); err != nil {
			return nil, err
		}
	case st.NN != nil:
		if !st.Kind.IsNeural() {
			return nil, fmt.Errorf("core: %v predictor with an NN payload", st.Kind)
		}
		if p.nn, err = neural.UnmarshalModel(st.NN); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: predictor has no model payload")
	}
	return p, nil
}

// Save writes the predictor to w as JSON.
func (p *Predictor) Save(w io.Writer) error {
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// LoadPredictor reads a predictor previously written with Save.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return UnmarshalPredictor(data)
}

// LoadPredictorFile reads and validates a predictor from a JSON file —
// the registry-facing loader shared by the serving daemon and the
// predict CLI, so both reject the same malformed artifacts.
func LoadPredictorFile(path string) (*Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: loading predictor: %w", err)
	}
	defer f.Close()
	p, err := LoadPredictor(f)
	if err != nil {
		return nil, fmt.Errorf("core: loading predictor %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: loading predictor %s: %w", path, err)
	}
	return p, nil
}

// Validate cross-checks the predictor's model payload against its fitted
// encoder: the model's expected input width must match the encoder's
// column count. Deserialization already guarantees kind/payload
// consistency; this catches artifacts assembled from mismatched parts
// (e.g. a hand-edited file pairing one run's weights with another run's
// encoder).
func (p *Predictor) Validate() error {
	if p.enc == nil {
		return fmt.Errorf("core: predictor has no encoder")
	}
	width := p.enc.NumColumns()
	if width == 0 {
		return fmt.Errorf("core: predictor encoder has no input columns")
	}
	var got int
	switch {
	case p.nn != nil:
		got = p.nn.NumInputs()
	case p.lr != nil:
		got = p.lr.NumInputs()
	default:
		return fmt.Errorf("core: predictor has no model payload")
	}
	if got != width {
		return fmt.Errorf("core: predictor %v expects %d inputs but its encoder produces %d columns", p.kind, got, width)
	}
	return nil
}
