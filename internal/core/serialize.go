package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"perfpred/internal/dataset"
	"perfpred/internal/faultinject"
	"perfpred/internal/model"
)

// predictorState is the artifact wire format. Version 2 carries one
// opaque model payload plus the versioned family tag that identifies its
// codec; version 1 artifacts (decoded for backward compatibility, never
// written) identified the family implicitly by which of the lr/nn
// payloads was present.
type predictorState struct {
	Version int             `json:"version"`
	Kind    ModelKind       `json:"kind"`
	Family  string          `json:"family,omitempty"`
	Encoder json.RawMessage `json:"encoder"`
	Model   json.RawMessage `json:"model,omitempty"`
	// LR and NN are the version-1 payload slots, retained for decode only.
	LR json.RawMessage `json:"lr,omitempty"`
	NN json.RawMessage `json:"nn,omitempty"`
}

const predictorVersion = 2

// Version-1 artifacts carried no family tag; which payload slot was
// populated implied the codec. These are the tags those slots map to.
const (
	legacyLRTag = "linreg/v1"
	legacyNNTag = "neural/v1"
)

// MarshalJSON serializes the trained predictor — model payload, family
// tag, and the fitted input encoder — so a surrogate can be stored and
// reused without retraining.
func (p *Predictor) MarshalJSON() ([]byte, error) {
	enc, err := json.Marshal(p.enc)
	if err != nil {
		return nil, err
	}
	payload, err := p.model.Marshal()
	if err != nil {
		return nil, err
	}
	return json.Marshal(predictorState{
		Version: predictorVersion,
		Kind:    p.kind,
		Family:  p.fam.Tag,
		Encoder: enc,
		Model:   payload,
	})
}

// UnmarshalPredictor restores a predictor serialized by MarshalJSON. It
// decodes both the current version-2 format and legacy version-1
// artifacts, and rejects artifacts whose payload slots are inconsistent
// (both set, none set, or a payload that contradicts the declared kind).
func UnmarshalPredictor(data []byte) (*Predictor, error) {
	var st predictorState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("core: decoding predictor: %w", err)
	}
	fam, ok := model.Lookup(st.Kind)
	if !ok {
		return nil, fmt.Errorf("core: predictor has unknown model kind %v", st.Kind)
	}
	var payload json.RawMessage
	switch st.Version {
	case 1:
		// Legacy format: the populated slot implies the family.
		switch {
		case st.LR != nil && st.NN != nil:
			return nil, fmt.Errorf("core: predictor carries both LR and NN payloads")
		case st.LR != nil:
			if fam.Tag != legacyLRTag {
				return nil, fmt.Errorf("core: %v predictor with an LR payload", st.Kind)
			}
			payload = st.LR
		case st.NN != nil:
			if fam.Tag != legacyNNTag {
				return nil, fmt.Errorf("core: %v predictor with an NN payload", st.Kind)
			}
			payload = st.NN
		default:
			return nil, fmt.Errorf("core: predictor has no model payload")
		}
	case predictorVersion:
		if st.LR != nil || st.NN != nil {
			return nil, fmt.Errorf("core: version %d predictor carries legacy payload slots", st.Version)
		}
		if st.Model == nil {
			return nil, fmt.Errorf("core: predictor has no model payload")
		}
		if st.Family != fam.Tag {
			return nil, fmt.Errorf("core: predictor family %q does not match %v (family %q)", st.Family, st.Kind, fam.Tag)
		}
		payload = st.Model
	default:
		return nil, fmt.Errorf("core: unsupported predictor version %d", st.Version)
	}
	enc, err := dataset.UnmarshalEncoder(st.Encoder)
	if err != nil {
		return nil, err
	}
	m, err := fam.Unmarshal(payload)
	if err != nil {
		return nil, err
	}
	return &Predictor{kind: st.Kind, fam: fam, enc: enc, model: m}, nil
}

// Save writes the predictor to w as JSON.
func (p *Predictor) Save(w io.Writer) error {
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// LoadPredictor reads a predictor previously written with Save.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return UnmarshalPredictor(data)
}

// LoadPredictorFile reads and validates a predictor from a JSON file —
// the registry-facing loader shared by the serving daemon and the
// predict CLI, so both reject the same malformed artifacts. An
// artifact-load fault-injection point sits in front of the read, so
// chaos runs can make any artifact transiently unreadable and prove
// that a reloading registry keeps its previous catalog.
func LoadPredictorFile(path string) (*Predictor, error) {
	if _, ferr := faultinject.Active().Hit(context.Background(), faultinject.CoreArtifactLoad); ferr != nil {
		return nil, fmt.Errorf("core: loading predictor %s: %w", path, ferr)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: loading predictor: %w", err)
	}
	defer f.Close()
	p, err := LoadPredictor(f)
	if err != nil {
		return nil, fmt.Errorf("core: loading predictor %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: loading predictor %s: %w", path, err)
	}
	return p, nil
}

// Validate cross-checks the predictor's model payload against its fitted
// encoder: the model's expected input width must match the encoder's
// column count. Deserialization already guarantees kind/family/payload
// consistency; this catches artifacts assembled from mismatched parts
// (e.g. a hand-edited file pairing one run's weights with another run's
// encoder).
func (p *Predictor) Validate() error {
	if p.enc == nil {
		return fmt.Errorf("core: predictor has no encoder")
	}
	width := p.enc.NumColumns()
	if width == 0 {
		return fmt.Errorf("core: predictor encoder has no input columns")
	}
	if p.model == nil {
		return fmt.Errorf("core: predictor has no model payload")
	}
	if got := p.model.NumInputs(); got != width {
		return fmt.Errorf("core: predictor %v expects %d inputs but its encoder produces %d columns", p.kind, got, width)
	}
	return nil
}
