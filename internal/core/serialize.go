package core

import (
	"encoding/json"
	"fmt"
	"io"

	"perfpred/internal/dataset"
	"perfpred/internal/linreg"
	"perfpred/internal/neural"
)

type predictorState struct {
	Version int             `json:"version"`
	Kind    ModelKind       `json:"kind"`
	Encoder json.RawMessage `json:"encoder"`
	LR      json.RawMessage `json:"lr,omitempty"`
	NN      json.RawMessage `json:"nn,omitempty"`
}

const predictorVersion = 1

// MarshalJSON serializes the trained predictor — model weights plus the
// fitted input encoder — so a surrogate can be stored and reused without
// retraining.
func (p *Predictor) MarshalJSON() ([]byte, error) {
	enc, err := json.Marshal(p.enc)
	if err != nil {
		return nil, err
	}
	st := predictorState{Version: predictorVersion, Kind: p.kind, Encoder: enc}
	if p.lr != nil {
		if st.LR, err = json.Marshal(p.lr); err != nil {
			return nil, err
		}
	}
	if p.nn != nil {
		if st.NN, err = json.Marshal(p.nn); err != nil {
			return nil, err
		}
	}
	return json.Marshal(st)
}

// UnmarshalPredictor restores a predictor serialized by MarshalJSON.
func UnmarshalPredictor(data []byte) (*Predictor, error) {
	var st predictorState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("core: decoding predictor: %w", err)
	}
	if st.Version != predictorVersion {
		return nil, fmt.Errorf("core: unsupported predictor version %d", st.Version)
	}
	enc, err := dataset.UnmarshalEncoder(st.Encoder)
	if err != nil {
		return nil, err
	}
	p := &Predictor{kind: st.Kind, enc: enc}
	switch {
	case st.LR != nil && st.NN != nil:
		return nil, fmt.Errorf("core: predictor carries both LR and NN payloads")
	case st.LR != nil:
		if st.Kind.IsNeural() {
			return nil, fmt.Errorf("core: %v predictor with an LR payload", st.Kind)
		}
		if p.lr, err = linreg.UnmarshalModel(st.LR); err != nil {
			return nil, err
		}
	case st.NN != nil:
		if !st.Kind.IsNeural() {
			return nil, fmt.Errorf("core: %v predictor with an NN payload", st.Kind)
		}
		if p.nn, err = neural.UnmarshalModel(st.NN); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: predictor has no model payload")
	}
	return p, nil
}

// Save writes the predictor to w as JSON.
func (p *Predictor) Save(w io.Writer) error {
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// LoadPredictor reads a predictor previously written with Save.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return UnmarshalPredictor(data)
}
