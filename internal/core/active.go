package core

import (
	"context"
	"errors"
	"fmt"

	"perfpred/internal/active"
	"perfpred/internal/dataset"
	"perfpred/internal/engine"
	"perfpred/internal/stat"
)

// ActiveOptions configures the active-learning extension of the sampled
// DSE workflow: how many acquisition rounds follow the initial random
// sample, how many points each round simulates, and which registered
// acquisition strategy picks them.
type ActiveOptions struct {
	// Rounds is the number of acquisition rounds (0 = 4).
	Rounds int
	// Batch is the number of design points acquired per round (0 =
	// initial sample size / Rounds, at least 1 — i.e. the default run
	// doubles the initial budget adaptively).
	Batch int
	// Acquire names the acquisition strategy ("" = "committee"); see
	// AcquireStrategies for the registered names.
	Acquire string
}

// AcquireStrategies lists the registered acquisition strategy names.
func AcquireStrategies() []string { return active.Strategies() }

// ActiveRoundStats re-exports the loop's per-round record.
type ActiveRoundStats = active.RoundStats

// ActiveDSEResult is the outcome of one active-learning design-space
// exploration run: the final committee's reports and selection (the
// same shape a sampled-DSE run produces, so downstream tooling is
// shared), plus the acquisition trajectory.
type ActiveDSEResult struct {
	SampledDSEResult
	// InitialSize is the random seed sample's size; SampleSize is the
	// total budget after all acquisition rounds.
	InitialSize int
	// Strategy is the acquisition policy that ran.
	Strategy string
	// Rounds holds one entry per executed acquisition round, carrying
	// the committee's full-space error trajectory (the learning curve).
	Rounds []ActiveRoundStats
}

// RunActiveDSE performs model-guided sampled design-space exploration:
// draw the same initial random sample RunSampledDSE would draw for this
// fraction and seed, then run the internal/active loop — each round
// retrains the committee of requested kinds on everything labeled so
// far, scores the unlabeled remainder with the configured acquisition
// strategy, and "simulates" (labels) the next batch. After the final
// round the requested kinds are trained and cross-validated on the full
// labeled set exactly as RunSampledDSE does, so active and random runs
// are comparable report-for-report at equal simulation budget.
//
// Each round's committee members are evaluated against the whole space
// for the learning-curve trajectory in Rounds; that measurement is
// observability only — acquisition sees nothing but the members'
// predictions over the pool.
func RunActiveDSE(ctx context.Context, full *dataset.Dataset, fraction float64, kinds []ModelKind, cfg TrainConfig, opts ActiveOptions) (*ActiveDSEResult, error) {
	if full == nil || full.Len() < 8 {
		return nil, errors.New("core: full design-space dataset too small")
	}
	if len(kinds) == 0 {
		return nil, errors.New("core: no model kinds requested")
	}
	sample, idx, err := full.SampleFraction(stat.NewRand(stat.DeriveSeed(cfg.Seed, 1)), fraction)
	if err != nil {
		return nil, err
	}
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 4
	}
	batch := opts.Batch
	if batch <= 0 {
		batch = sample.Len() / rounds
		if batch < 1 {
			batch = 1
		}
	}

	ares, err := active.Run(ctx, full, idx, active.Config{
		Seed:       cfg.Seed,
		Rounds:     rounds,
		Batch:      batch,
		Strategy:   opts.Acquire,
		Workers:    cfg.workers(),
		Hook:       cfg.Hook,
		TrainRound: trainCommittee(kinds, full, cfg),
	})
	if err != nil {
		return nil, err
	}

	labeled, err := full.Subset(ares.LabeledIdx)
	if err != nil {
		return nil, err
	}
	complement, _, err := full.Complement(ares.LabeledIdx)
	if err != nil {
		return nil, err
	}
	reports, err := evaluateKinds(ctx, kinds, labeled, full, cfg, true)
	if err != nil {
		return nil, err
	}
	res := &ActiveDSEResult{
		SampledDSEResult: SampledDSEResult{
			Fraction:      fraction,
			SampleSize:    labeled.Len(),
			Reports:       reports,
			SampleIndices: ares.LabeledIdx,
			Complement:    complement,
		},
		InitialSize: sample.Len(),
		Strategy:    ares.Strategy,
		Rounds:      ares.Rounds,
	}
	sel, err := selectByEstimate(reports)
	if err != nil {
		return nil, err
	}
	res.Selected = sel.Kind
	res.SelectedTrueMAPE = sel.TrueMAPE
	return res, nil
}

// trainCommittee builds the loop's TrainRound callback: train every
// requested kind on the labeled set as one flat task graph on the
// engine pool (inner trainings run with Workers=1, matching
// evaluateKinds), then measure each member's full-space error for the
// learning-curve trajectory.
//
// Seed-derivation contract: at round seed rs, kind k trains with seed
// DeriveSeed(rs, 100+int(k)) — the same 100+kind stream offset every
// other workflow uses, namespaced by the round — so the trajectory is
// bit-identical at any worker count.
func trainCommittee(kinds []ModelKind, evalSpace *dataset.Dataset, cfg TrainConfig) func(context.Context, *dataset.Dataset, int64) (*active.Committee, error) {
	return func(ctx context.Context, labeled *dataset.Dataset, roundSeed int64) (*active.Committee, error) {
		members := make([]active.Member, len(kinds))
		errs := make([]active.MemberError, len(kinds))
		tasks := make([]engine.Task, len(kinds))
		for i, kind := range kinds {
			i, kind := i, kind
			kindCfg := cfg
			kindCfg.Seed = stat.DeriveSeed(roundSeed, 100+int(kind))
			kindCfg.Workers = 1 // the committee graph saturates the pool by itself
			tasks[i] = engine.Task{
				Label: fmt.Sprintf("committee %v", kind),
				Model: kind.String(),
				Fold:  -1,
				Run: func(ctx context.Context) error {
					p, err := Train(ctx, kind, labeled, kindCfg)
					if err != nil {
						return fmt.Errorf("training committee %v: %w", kind, err)
					}
					mape, _, err := p.Evaluate(ctx, evalSpace)
					if err != nil {
						return fmt.Errorf("evaluating committee %v: %w", kind, err)
					}
					members[i] = active.Member{
						Name:   kind.String(),
						Family: p.Family(),
						Model:  p.Model(),
						Enc:    p.Encoder(),
					}
					errs[i] = active.MemberError{Name: kind.String(), MAPE: mape}
					return nil
				},
			}
		}
		if err := engine.Run(ctx, cfg.pool(), tasks...); err != nil {
			return nil, err
		}
		return &active.Committee{Members: members, Errors: errs}, nil
	}
}
