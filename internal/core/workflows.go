package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"perfpred/internal/dataset"
	"perfpred/internal/engine"
	"perfpred/internal/stat"
)

// ModelReport carries one model's estimated and measured quality in an
// experiment.
type ModelReport struct {
	Kind ModelKind
	// Estimate is the cross-validated error predicted from training data
	// alone (§3.3).
	Estimate ErrorEstimate
	// TrueMAPE is the measured mean absolute percentage error on the
	// evaluation data (the whole space for sampled DSE, the following year
	// for chronological prediction).
	TrueMAPE float64
	// StdAPE is the standard deviation of the absolute percentage errors
	// (the error bars of Figures 7–8).
	StdAPE float64
	// Predictor is the model trained on the full training set.
	Predictor *Predictor
}

// SampledDSEResult is the outcome of one sampled design-space exploration
// run (Figure 1a) at one sampling rate.
type SampledDSEResult struct {
	// Fraction is the sampling rate (e.g. 0.01 for the paper's 1%).
	Fraction float64
	// SampleSize is the number of design points actually simulated.
	SampleSize int
	// Reports holds one entry per requested model kind, in request order.
	Reports []ModelReport
	// Selected is the model the Select meta-method picks: lowest
	// estimated (Max-criterion) error, resolved before any test data is
	// seen (paper §4.4, Table 3's "select" row).
	Selected ModelKind
	// SelectedTrueMAPE is the true error of the selected model.
	SelectedTrueMAPE float64
	// SampleIndices are the simulated rows' indices into the full space,
	// in the order they were drawn (for active DSE: initial sample first,
	// then each round's acquisitions in acquisition order).
	SampleIndices []int
	// Complement is the unsampled remainder of the space, in original
	// order, sharing rows with the full dataset — the initial unlabeled
	// pool the active-learning loop acquires from.
	Complement *dataset.Dataset
}

// RunSampledDSE performs the paper's sampled design-space exploration:
// randomly sample the given fraction of the full space, train every
// requested model on the sample, estimate each model's error by
// cross-validation, measure each model's true error against the whole
// space, and apply the Select rule. All per-kind and per-fold work runs as
// one flat task graph on the engine pool; cancelling ctx aborts the run
// promptly with ctx's error.
func RunSampledDSE(ctx context.Context, full *dataset.Dataset, fraction float64, kinds []ModelKind, cfg TrainConfig) (*SampledDSEResult, error) {
	if full == nil || full.Len() < 8 {
		return nil, errors.New("core: full design-space dataset too small")
	}
	if len(kinds) == 0 {
		return nil, errors.New("core: no model kinds requested")
	}
	sample, idx, err := full.SampleFraction(stat.NewRand(stat.DeriveSeed(cfg.Seed, 1)), fraction)
	if err != nil {
		return nil, err
	}
	complement, _, err := full.Complement(idx)
	if err != nil {
		return nil, err
	}
	reports, err := evaluateKinds(ctx, kinds, sample, full, cfg, true)
	if err != nil {
		return nil, err
	}
	res := &SampledDSEResult{
		Fraction:      fraction,
		SampleSize:    sample.Len(),
		Reports:       reports,
		SampleIndices: idx,
		Complement:    complement,
	}
	sel, err := selectByEstimate(reports)
	if err != nil {
		return nil, err
	}
	res.Selected = sel.Kind
	res.SelectedTrueMAPE = sel.TrueMAPE
	return res, nil
}

// ChronoResult is the outcome of one chronological prediction run
// (Figure 1b): models trained on year Y predict year Y+1.
type ChronoResult struct {
	// Reports holds one entry per requested kind, in request order.
	Reports []ModelReport
	// Best is the model with the lowest measured error on the future year
	// (what the paper's Table 2 reports).
	Best ModelKind
	// BestTrueMAPE is its error.
	BestTrueMAPE float64
	// Selected is the model chosen on estimated error alone (usable
	// before the future year exists).
	Selected ModelKind
	// SelectedTrueMAPE is the selected model's measured error.
	SelectedTrueMAPE float64
}

// RunChronological trains every requested model on the training-year
// dataset, estimates errors by cross-validation on that year, and measures
// true errors against the future-year dataset.
func RunChronological(ctx context.Context, train, future *dataset.Dataset, kinds []ModelKind, cfg TrainConfig) (*ChronoResult, error) {
	if train == nil || train.Len() < 8 {
		return nil, errors.New("core: training-year dataset too small")
	}
	if future == nil || future.Len() == 0 {
		return nil, errors.New("core: future-year dataset is empty")
	}
	if len(kinds) == 0 {
		return nil, errors.New("core: no model kinds requested")
	}
	reports, err := evaluateKinds(ctx, kinds, train, future, cfg, true)
	if err != nil {
		return nil, err
	}
	res := &ChronoResult{Reports: reports}
	best := &reports[0]
	for i := range reports {
		if reports[i].TrueMAPE < best.TrueMAPE {
			best = &reports[i]
		}
	}
	res.Best = best.Kind
	res.BestTrueMAPE = best.TrueMAPE
	sel, err := selectByEstimate(reports)
	if err != nil {
		return nil, err
	}
	res.Selected = sel.Kind
	res.SelectedTrueMAPE = sel.TrueMAPE
	return res, nil
}

// evaluateKinds trains and scores every kind against the evaluation
// dataset, optionally with cross-validated estimates. The work is one flat
// task graph — kinds × (folds + final train/evaluate) — scheduled together
// on the engine pool, so a slow fold of one kind never serializes behind
// the other kinds' work and the pool owns the whole worker budget (inner
// trainings run with Workers=1).
//
// Seed-derivation contract: kind k trains with seed DeriveSeed(cfg.Seed,
// 100+int(k)); its estimate folds derive from that kind seed as documented
// on estimateFoldTask. Every task draws randomness only from those seeds,
// so results are bit-identical for any worker count or schedule.
func evaluateKinds(ctx context.Context, kinds []ModelKind, train, eval *dataset.Dataset, cfg TrainConfig, withEstimates bool) ([]ModelReport, error) {
	reports := make([]ModelReport, len(kinds))
	perFold := make([][]float64, len(kinds))
	tasksPerKind := 1
	if withEstimates {
		tasksPerKind += estimateFolds
	}
	tasks := make([]engine.Task, 0, len(kinds)*tasksPerKind)
	for i, kind := range kinds {
		i, kind := i, kind
		kindCfg := cfg
		kindCfg.Seed = stat.DeriveSeed(cfg.Seed, 100+int(kind))
		kindCfg.Workers = 1 // the flat graph saturates the pool by itself
		reports[i].Kind = kind
		if withEstimates {
			perFold[i] = make([]float64, estimateFolds)
			for fold := 0; fold < estimateFolds; fold++ {
				task := estimateFoldTask(kind, train, kindCfg, fold, perFold[i])
				run := task.Run
				task.Run = func(ctx context.Context) error {
					if err := run(ctx); err != nil {
						return fmt.Errorf("estimating %v: %w", kind, err)
					}
					return nil
				}
				tasks = append(tasks, task)
			}
		}
		tasks = append(tasks, engine.Task{
			Label: fmt.Sprintf("train %v", kind),
			Model: kind.String(),
			Fold:  -1,
			Run: func(ctx context.Context) error {
				p, err := Train(ctx, kind, train, kindCfg)
				if err != nil {
					return fmt.Errorf("training %v: %w", kind, err)
				}
				reports[i].Predictor = p
				reports[i].TrueMAPE, reports[i].StdAPE, err = p.Evaluate(ctx, eval)
				if err != nil {
					return fmt.Errorf("evaluating %v: %w", kind, err)
				}
				return nil
			},
		})
	}
	if err := engine.Run(ctx, cfg.pool(), tasks...); err != nil {
		return nil, err
	}
	if withEstimates {
		for i := range reports {
			est, err := foldEstimate(perFold[i])
			if err != nil {
				return nil, fmt.Errorf("estimating %v: %w", kinds[i], err)
			}
			reports[i].Estimate = est
		}
	}
	return reports, nil
}

// selectByEstimate applies the paper's Select rule: choose the model whose
// estimated error (the Max criterion) is lowest. Ties break toward the
// earliest model in request order, so selection is deterministic for a
// fixed kinds slice; callers who care should therefore pass kinds in a
// stable order (the paper's figure order, say).
func selectByEstimate(reports []ModelReport) (*ModelReport, error) {
	if len(reports) == 0 {
		return nil, errors.New("core: no reports to select from")
	}
	best := &reports[0]
	bestScore := math.Inf(1)
	for i := range reports {
		score := reports[i].Estimate.Max
		if score < bestScore {
			best = &reports[i]
			bestScore = score
		}
	}
	return best, nil
}
