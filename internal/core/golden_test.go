package core

import (
	"context"
	"testing"
)

// The values below were captured from the pre-engine implementation
// (hand-rolled wait-group orchestration, one goroutine per kind, serial
// folds). The refactored engine must reproduce them
// bit-for-bit regardless of worker count: every task derives its
// randomness from seeds carried in its closure — kind seed
// DeriveSeed(cfg.Seed, 100+kind), fold split seed DeriveSeed(kindSeed,
// 7000+fold), fold train seed DeriveSeed(foldSeed, 1) — and writes to an
// index-addressed slot, so scheduling order cannot leak into the numbers.

type goldenReport struct {
	kind     ModelKind
	estMean  float64
	estMax   float64
	trueMAPE float64
	stdAPE   float64
}

func checkGoldenReports(t *testing.T, label string, got []ModelReport, want []goldenReport) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d reports, want %d", label, len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Kind != w.kind {
			t.Errorf("%s[%d]: kind %v, want %v", label, i, g.Kind, w.kind)
		}
		if g.Estimate.Mean != w.estMean {
			t.Errorf("%s %v: Estimate.Mean = %.17g, want %.17g", label, w.kind, g.Estimate.Mean, w.estMean)
		}
		if g.Estimate.Max != w.estMax {
			t.Errorf("%s %v: Estimate.Max = %.17g, want %.17g", label, w.kind, g.Estimate.Max, w.estMax)
		}
		if g.TrueMAPE != w.trueMAPE {
			t.Errorf("%s %v: TrueMAPE = %.17g, want %.17g", label, w.kind, g.TrueMAPE, w.trueMAPE)
		}
		if g.StdAPE != w.stdAPE {
			t.Errorf("%s %v: StdAPE = %.17g, want %.17g", label, w.kind, g.StdAPE, w.stdAPE)
		}
	}
}

func TestGoldenSampledDSE(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run trains four models")
	}
	full := synthSpace(t, 900, 77)
	kinds := []ModelKind{LRE, LRB, NNQ, NNS}
	// Identical numbers must come out at any worker count: run the same
	// configuration serially and wide.
	for _, workers := range []int{1, 4} {
		cfg := TrainConfig{Seed: 123, Workers: workers, EpochScale: 0.25}
		res, err := RunSampledDSE(context.Background(), full, 0.1, kinds, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Selected != NNQ {
			t.Errorf("workers=%d: Selected = %v, want NN-Q", workers, res.Selected)
		}
		if res.SelectedTrueMAPE != 8.3735666472565757 {
			t.Errorf("workers=%d: SelectedTrueMAPE = %.17g, want 8.3735666472565757", workers, res.SelectedTrueMAPE)
		}
		if res.SampleSize != 90 {
			t.Errorf("workers=%d: SampleSize = %d, want 90", workers, res.SampleSize)
		}
		checkGoldenReports(t, "DSE", res.Reports, []goldenReport{
			{LRE, 21.326067637569007, 25.951575145524398, 20.320664042317809, 14.036370267339688},
			{LRB, 21.12624573029419, 22.709201480100987, 20.320664042317809, 14.036370267339688},
			{NNQ, 7.2978788838488686, 8.7211678330933005, 8.3735666472565757, 9.0007609385568763},
			{NNS, 12.01027109966383, 14.206923570667181, 8.1805517787765663, 7.86659291529313},
		})
	}
}

func TestGoldenChronological(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run trains four models")
	}
	train := synthSpace(t, 260, 88)
	future := synthSpace(t, 260, 99)
	kinds := []ModelKind{LRE, LRB, NNQ, NNS}
	for _, workers := range []int{1, 4} {
		cfg := TrainConfig{Seed: 123, Workers: workers, EpochScale: 0.25}
		res, err := RunChronological(context.Background(), train, future, kinds, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Best != NNQ || res.Selected != NNQ {
			t.Errorf("workers=%d: Best = %v, Selected = %v, want NN-Q for both", workers, res.Best, res.Selected)
		}
		if res.BestTrueMAPE != 4.0626539179119199 {
			t.Errorf("workers=%d: BestTrueMAPE = %.17g, want 4.0626539179119199", workers, res.BestTrueMAPE)
		}
		if res.SelectedTrueMAPE != 4.0626539179119199 {
			t.Errorf("workers=%d: SelectedTrueMAPE = %.17g, want 4.0626539179119199", workers, res.SelectedTrueMAPE)
		}
		checkGoldenReports(t, "CHRONO", res.Reports, []goldenReport{
			{LRE, 19.454560260567753, 20.72432157119119, 17.948468038794253, 11.716627167445065},
			{LRB, 19.600185103180355, 20.272488734711573, 17.948468038794253, 11.716627167445065},
			{NNQ, 6.6865612437186615, 8.4981125450110273, 4.0626539179119199, 4.1203818737434803},
			{NNS, 8.4897338730601426, 9.9878658591393652, 6.3809257749156041, 6.1733468834406491},
		})
	}
}
