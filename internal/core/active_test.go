package core

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"perfpred/internal/tree"
)

func TestRunActiveDSEBasics(t *testing.T) {
	full := synthSpace(t, 400, 51)
	kinds := []ModelKind{LRB, NNQ}
	cfg := TrainConfig{Seed: 9, Workers: 4, EpochScale: 0.25}
	res, err := RunActiveDSE(context.Background(), full, 0.05, kinds, cfg, ActiveOptions{
		Rounds: 2, Batch: 5, Acquire: "committee",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "committee" {
		t.Fatalf("Strategy = %q, want committee", res.Strategy)
	}
	if res.InitialSize != 20 {
		t.Fatalf("InitialSize = %d, want 20 (5%% of 400)", res.InitialSize)
	}
	if want := 20 + 2*5; res.SampleSize != want {
		t.Fatalf("SampleSize = %d, want %d (initial + rounds×batch)", res.SampleSize, want)
	}
	if len(res.SampleIndices) != res.SampleSize {
		t.Fatalf("SampleIndices holds %d entries for SampleSize %d", len(res.SampleIndices), res.SampleSize)
	}
	if res.Complement == nil || res.Complement.Len() != full.Len()-res.SampleSize {
		t.Fatalf("Complement size off: %v", res.Complement)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("recorded %d rounds, want 2", len(res.Rounds))
	}
	for i, r := range res.Rounds {
		if len(r.Committee) != len(kinds) {
			t.Fatalf("round %d trajectory has %d members, want %d", i+1, len(r.Committee), len(kinds))
		}
	}
	if len(res.Reports) != len(kinds) {
		t.Fatalf("final reports: %d, want %d", len(res.Reports), len(kinds))
	}

	// The initial sample must be exactly what RunSampledDSE draws at this
	// fraction and seed — the equal-budget comparability contract.
	sres, err := RunSampledDSE(context.Background(), full, 0.05, []ModelKind{LRB}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.SampleIndices[:res.InitialSize], sres.SampleIndices) {
		t.Fatal("active initial sample diverges from the sampled-DSE draw at equal seed")
	}
}

func TestRunActiveDSEDefaults(t *testing.T) {
	full := synthSpace(t, 400, 53)
	cfg := TrainConfig{Seed: 3, Workers: 4, EpochScale: 0.25}
	res, err := RunActiveDSE(context.Background(), full, 0.05, []ModelKind{LRB}, cfg, ActiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: 4 rounds, batch = initial/rounds — the run doubles the
	// initial budget.
	if res.Strategy != "committee" {
		t.Fatalf("default Strategy = %q, want committee", res.Strategy)
	}
	if len(res.Rounds) != 4 {
		t.Fatalf("default rounds = %d, want 4", len(res.Rounds))
	}
	if want := res.InitialSize + 4*(res.InitialSize/4); res.SampleSize != want {
		t.Fatalf("default budget: SampleSize = %d, want %d", res.SampleSize, want)
	}
}

func TestRunActiveDSEErrors(t *testing.T) {
	full := synthSpace(t, 200, 57)
	cfg := TrainConfig{Seed: 3, Workers: 2, EpochScale: 0.25}
	if _, err := RunActiveDSE(context.Background(), nil, 0.1, []ModelKind{LRB}, cfg, ActiveOptions{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := RunActiveDSE(context.Background(), full, 0.1, nil, cfg, ActiveOptions{}); err == nil {
		t.Fatal("empty kind list accepted")
	}
	_, err := RunActiveDSE(context.Background(), full, 0.1, []ModelKind{LRB}, cfg, ActiveOptions{Acquire: "bogus"})
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown strategy error = %v, want it named", err)
	}
}

// TestRunActiveDSEStrategies smoke-runs every registered acquisition
// strategy through the full workflow, TREE-B included so the committee
// exercises the per-tree Spreader path.
func TestRunActiveDSEStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("trains committees per strategy")
	}
	full := synthSpace(t, 400, 59)
	kinds := []ModelKind{LRB, tree.KindTreeB}
	cfg := TrainConfig{Seed: 5, Workers: 4, EpochScale: 0.25}
	for _, strat := range AcquireStrategies() {
		res, err := RunActiveDSE(context.Background(), full, 0.05, kinds, cfg, ActiveOptions{
			Rounds: 2, Batch: 4, Acquire: strat,
		})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if res.Strategy != strat || res.SampleSize != res.InitialSize+8 {
			t.Fatalf("%s: unexpected result shape: %+v", strat, res)
		}
	}
}

// TestActiveDSEDeterministicAcrossWorkers pins the whole active workflow
// — initial draw, per-round committees, acquisitions, final reports — to
// be bit-identical at 1 and 8 workers.
func TestActiveDSEDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the active workflow twice")
	}
	full := synthSpace(t, 400, 61)
	kinds := []ModelKind{LRB, NNQ}
	var ref *ActiveDSEResult
	for _, workers := range []int{1, 8} {
		cfg := TrainConfig{Seed: 21, Workers: workers, EpochScale: 0.25}
		res, err := RunActiveDSE(context.Background(), full, 0.05, kinds, cfg, ActiveOptions{
			Rounds: 3, Batch: 4,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Timings are measurements and Predictor handles are per-run
		// pointers; blank both before the bit-exact comparison.
		for i := range res.Rounds {
			res.Rounds[i].TrainSeconds, res.Rounds[i].AcquireSeconds = 0, 0
		}
		for i := range res.Reports {
			res.Reports[i].Predictor = nil
		}
		res.Complement = nil // same indices ⇒ same dataset; skip deep compare
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res.SampleIndices, ref.SampleIndices) {
			t.Fatalf("workers=8 acquisition trajectory differs:\n%v\n%v", res.SampleIndices, ref.SampleIndices)
		}
		if !reflect.DeepEqual(res.Rounds, ref.Rounds) {
			t.Fatalf("workers=8 round stats differ:\n%+v\n%+v", res.Rounds, ref.Rounds)
		}
		if !reflect.DeepEqual(res.Reports, ref.Reports) {
			t.Fatalf("workers=8 final reports differ:\n%+v\n%+v", res.Reports, ref.Reports)
		}
		if res.Selected != ref.Selected || res.SelectedTrueMAPE != ref.SelectedTrueMAPE {
			t.Fatalf("workers=8 selection differs: %v/%v vs %v/%v",
				res.Selected, res.SelectedTrueMAPE, ref.Selected, ref.SelectedTrueMAPE)
		}
	}
}

// TestGoldenActiveLearningCurve is the equal-budget learning-curve
// regression: 90 simulated points of the 900-point synthetic space,
// spent either as one random draw (RunSampledDSE at 10 %) or as a 45-
// point random seed plus 3 rounds × 15 model-guided acquisitions
// (RunActiveDSE at 5 %). Every registered strategy must select a model
// at least as good as the random baseline's, and the committee run —
// the issue's acceptance metric — is pinned bit-exactly, captured from
// the initial implementation like every other golden in this file.
func TestGoldenActiveLearningCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run trains committees across three strategies")
	}
	full := synthSpace(t, 900, 77)
	kinds := []ModelKind{LRB, NNQ, NNS}
	cfg := TrainConfig{Seed: 123, Workers: 4, EpochScale: 0.25}

	rnd, err := RunSampledDSE(context.Background(), full, 0.1, kinds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rnd.SampleSize != 90 || rnd.SelectedTrueMAPE != 8.3735666472565757 {
		t.Fatalf("random baseline moved: %d points, selected %v at %.17g",
			rnd.SampleSize, rnd.Selected, rnd.SelectedTrueMAPE)
	}

	for _, strat := range AcquireStrategies() {
		act, err := RunActiveDSE(context.Background(), full, 0.05, kinds, cfg, ActiveOptions{
			Rounds: 3, Batch: 15, Acquire: strat,
		})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if act.InitialSize != 45 || act.SampleSize != 90 {
			t.Fatalf("%s: budget off: initial %d, final %d, want 45 and 90", strat, act.InitialSize, act.SampleSize)
		}
		if act.SelectedTrueMAPE > rnd.SelectedTrueMAPE {
			t.Errorf("%s: selected true error %.17g worse than random %.17g at equal budget",
				strat, act.SelectedTrueMAPE, rnd.SelectedTrueMAPE)
		}
	}

	// The committee strategy's exact trajectory and outcome.
	act, err := RunActiveDSE(context.Background(), full, 0.05, kinds, cfg, ActiveOptions{
		Rounds: 3, Batch: 15, Acquire: "committee",
	})
	if err != nil {
		t.Fatal(err)
	}
	if act.Selected != NNQ {
		t.Errorf("committee Selected = %v, want NN-Q", act.Selected)
	}
	if act.SelectedTrueMAPE != 6.9776392196561625 {
		t.Errorf("committee SelectedTrueMAPE = %.17g, want 6.9776392196561625", act.SelectedTrueMAPE)
	}
	wantCurve := []struct {
		labeled int
		nnqTrue float64
	}{
		{45, 8.637187405385683},
		{60, 6.461671749163454},
		{75, 7.516618563900152},
	}
	if len(act.Rounds) != len(wantCurve) {
		t.Fatalf("committee ran %d rounds, want %d", len(act.Rounds), len(wantCurve))
	}
	for i, want := range wantCurve {
		r := act.Rounds[i]
		if r.LabeledBefore != want.labeled {
			t.Errorf("round %d: labeled %d, want %d", i+1, r.LabeledBefore, want.labeled)
		}
		found := false
		for _, c := range r.Committee {
			if c.Name == "NN-Q" {
				found = true
				if c.MAPE != want.nnqTrue {
					t.Errorf("round %d: NN-Q trajectory %.17g, want %.17g", i+1, c.MAPE, want.nnqTrue)
				}
			}
		}
		if !found {
			t.Errorf("round %d: NN-Q missing from committee trajectory", i+1)
		}
	}
	checkGoldenReports(t, "active", act.Reports, []goldenReport{
		{LRB, 20.204290749726376, 23.190981081381565, 17.746506009370766, 9.0246613326632072},
		{NNQ, 9.9191825044254962, 13.730254944725999, 6.9776392196561625, 5.6201413335412829},
		{NNS, 15.910680573991367, 19.140523585903928, 9.9619443410481328, 8.1638398486037396},
	})
}

func TestSampledDSEComplement(t *testing.T) {
	full := synthSpace(t, 300, 63)
	cfg := TrainConfig{Seed: 7, Workers: 4, EpochScale: 0.25}
	res, err := RunSampledDSE(context.Background(), full, 0.1, []ModelKind{LRB}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SampleIndices) != res.SampleSize {
		t.Fatalf("SampleIndices holds %d entries for SampleSize %d", len(res.SampleIndices), res.SampleSize)
	}
	if res.Complement == nil || res.Complement.Len() != full.Len()-res.SampleSize {
		t.Fatalf("Complement has %d rows, want %d", res.Complement.Len(), full.Len()-res.SampleSize)
	}
	seen := map[int]bool{}
	for _, i := range res.SampleIndices {
		seen[i] = true
	}
	// Complement targets must be exactly the unsampled rows' targets, in
	// original order.
	j := 0
	for i := 0; i < full.Len(); i++ {
		if seen[i] {
			continue
		}
		if res.Complement.Target(j) != full.Target(i) {
			t.Fatalf("complement row %d is not full row %d", j, i)
		}
		j++
	}
}

// TestBuildActiveDSEReport: the active report carries the sampled-DSE
// sections plus a validating Active trajectory.
func TestBuildActiveDSEReport(t *testing.T) {
	full := synthSpace(t, 300, 67)
	cfg := TrainConfig{Seed: 11, Workers: 4, EpochScale: 0.25}
	res, err := RunActiveDSE(context.Background(), full, 0.05, []ModelKind{LRB, NNQ}, cfg, ActiveOptions{
		Rounds: 2, Batch: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildActiveDSEReport(res, ReportMeta{Command: "dse", Target: "synth", Seed: 11, SpaceSize: full.Len()}, nil)
	if err := rep.Validate(); err != nil {
		t.Fatalf("active report invalid: %v", err)
	}
	if rep.Active == nil {
		t.Fatal("report lacks the active section")
	}
	if rep.Active.Strategy != res.Strategy ||
		rep.Active.InitialSize != res.InitialSize ||
		rep.Active.FinalSize != res.SampleSize ||
		rep.Active.PoolSize != res.Complement.Len() {
		t.Fatalf("active section %+v does not match result (initial %d, final %d, pool %d)",
			rep.Active, res.InitialSize, res.SampleSize, res.Complement.Len())
	}
	if len(rep.Active.Rounds) != len(res.Rounds) {
		t.Fatalf("report carries %d rounds, want %d", len(rep.Active.Rounds), len(res.Rounds))
	}
	for i, r := range rep.Active.Rounds {
		src := res.Rounds[i]
		if r.Round != src.Round || r.LabeledBefore != src.LabeledBefore ||
			r.PoolBefore != src.PoolBefore || r.Acquired != src.Acquired ||
			len(r.Committee) != len(src.Committee) {
			t.Fatalf("round %d: report %+v != result %+v", i+1, r, src)
		}
		for j, c := range r.Committee {
			if c.Kind != src.Committee[j].Name || c.TrueMAPE != src.Committee[j].MAPE {
				t.Fatalf("round %d member %d: report %+v != result %+v", i+1, j, c, src.Committee[j])
			}
		}
	}
	if rep.SampleSize != res.SampleSize || rep.Selected != res.Selected.String() {
		t.Fatal("sampled-DSE sections missing from the active report")
	}
}
