package space

import (
	"context"
	"errors"

	"perfpred/internal/cpu"
	"perfpred/internal/engine"
)

// sweepBatch is how many configurations one sweep task simulates; small
// enough to load-balance across heterogeneous configurations, large enough
// to amortize scheduling.
const sweepBatch = 16

// Sweep simulates every configuration against the evaluator's trace as a
// chunked parallel map on the engine pool, using up to opts.Workers
// goroutines (0 means GOMAXPROCS), and returns the cycle count per
// configuration, index-aligned with cfgs. An opts.Hook observes the sweep's
// task events ("sweep[lo:hi)" labels) alongside any model-training events
// sharing the hook. The result is deterministic regardless of worker
// count: the evaluator memoizes substrate passes and the pipeline combine
// step is pure. Cancelling ctx aborts the sweep between configurations.
func Sweep(ctx context.Context, eval *cpu.Evaluator, cfgs []MicroConfig, opts engine.Options) ([]float64, error) {
	if eval == nil {
		return nil, errors.New("space: nil evaluator")
	}
	if len(cfgs) == 0 {
		return nil, errors.New("space: no configurations to sweep")
	}
	cycles := make([]float64, len(cfgs))
	err := engine.Map(ctx, opts, len(cfgs), sweepBatch, "sweep",
		func(ctx context.Context, lo, hi int) error {
			for i := lo; i < hi; i++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				res, err := eval.Simulate(cfgs[i].CPUConfig())
				if err != nil {
					return err
				}
				cycles[i] = res.Cycles
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return cycles, nil
}
