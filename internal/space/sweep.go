package space

import (
	"errors"
	"runtime"
	"sync"

	"perfpred/internal/cpu"
)

// Sweep simulates every configuration against the evaluator's trace using
// up to workers goroutines (0 means GOMAXPROCS) and returns the cycle count
// per configuration, index-aligned with cfgs. The result is deterministic
// regardless of worker count: the evaluator memoizes substrate passes and
// the pipeline combine step is pure.
func Sweep(eval *cpu.Evaluator, cfgs []MicroConfig, workers int) ([]float64, error) {
	if eval == nil {
		return nil, errors.New("space: nil evaluator")
	}
	if len(cfgs) == 0 {
		return nil, errors.New("space: no configurations to sweep")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	cycles := make([]float64, len(cfgs))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	var next int64
	var mu sync.Mutex
	takeBatch := func() (int, int) {
		const batch = 16
		mu.Lock()
		defer mu.Unlock()
		lo := int(next)
		if lo >= len(cfgs) {
			return 0, 0
		}
		hi := lo + batch
		if hi > len(cfgs) {
			hi = len(cfgs)
		}
		next = int64(hi)
		return lo, hi
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				lo, hi := takeBatch()
				if lo == hi {
					return
				}
				for i := lo; i < hi; i++ {
					res, err := eval.Simulate(cfgs[i].CPUConfig())
					if err != nil {
						errs[w] = err
						return
					}
					cycles[i] = res.Cycles
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return cycles, nil
}
