package space

import (
	"testing"

	"perfpred/internal/bpred"
	"perfpred/internal/dataset"
)

func TestEnumerateSize(t *testing.T) {
	cfgs := Enumerate()
	if len(cfgs) != SpaceSize {
		t.Fatalf("space size = %d, want %d (paper Table 1)", len(cfgs), SpaceSize)
	}
}

func TestEnumerateDistinct(t *testing.T) {
	cfgs := Enumerate()
	seen := map[MicroConfig]bool{}
	for _, c := range cfgs {
		if seen[c] {
			t.Fatalf("duplicate configuration %+v", c)
		}
		seen[c] = true
	}
}

func TestEnumerateCoversTable1Values(t *testing.T) {
	cfgs := Enumerate()
	l1d := map[int]bool{}
	preds := map[bpred.Kind]bool{}
	widths := map[int]bool{}
	l3 := map[int]bool{}
	ruu := map[int]bool{}
	for _, c := range cfgs {
		l1d[c.L1DSizeKB] = true
		preds[c.BPred] = true
		widths[c.Width] = true
		l3[c.L3SizeMB] = true
		ruu[c.RUU] = true
	}
	for _, s := range []int{16, 32, 64} {
		if !l1d[s] {
			t.Errorf("L1D size %d missing", s)
		}
	}
	if len(preds) != 4 {
		t.Errorf("predictors covered: %d, want 4", len(preds))
	}
	if !widths[4] || !widths[8] {
		t.Error("widths 4/8 not both covered")
	}
	if !l3[0] || !l3[8] {
		t.Error("L3 on/off not both covered")
	}
	if !ruu[128] || !ruu[256] {
		t.Error("RUU 128/256 not both covered")
	}
}

func TestEnumerateCouplings(t *testing.T) {
	for _, c := range Enumerate() {
		// Width ↔ FU coupling.
		if c.Width == 4 && c.FU.IntALU != 4 {
			t.Fatalf("width 4 with FU %s", c.FU)
		}
		if c.Width == 8 && c.FU.IntALU != 8 {
			t.Fatalf("width 8 with FU %s", c.FU)
		}
		// Window coupling.
		if c.RUU == 128 && (c.LSQ != 64 || c.ITLBKB != 256 || c.DTLBKB != 512) {
			t.Fatalf("small window inconsistent: %+v", c)
		}
		if c.RUU == 256 && (c.LSQ != 128 || c.ITLBKB != 1024 || c.DTLBKB != 2048) {
			t.Fatalf("large window inconsistent: %+v", c)
		}
		// L2 coupling.
		if c.L2SizeKB == 256 && c.L2Assoc != 4 {
			t.Fatalf("L2 256KB must be 4-way: %+v", c)
		}
		if c.L2SizeKB == 1024 && c.L2Assoc != 8 {
			t.Fatalf("L2 1MB must be 8-way: %+v", c)
		}
		// L3 all-or-nothing.
		if (c.L3SizeMB == 0) != (c.L3LineB == 0) || (c.L3SizeMB == 0) != (c.L3Assoc == 0) {
			t.Fatalf("partial L3 config: %+v", c)
		}
	}
}

func TestCPUConfigsValidate(t *testing.T) {
	cfgs := Enumerate()
	// Validating all 4608 is cheap.
	for i, c := range cfgs {
		if err := c.CPUConfig().Validate(); err != nil {
			t.Fatalf("config %d invalid: %v", i, err)
		}
	}
}

func TestSchemaHas24Fields(t *testing.T) {
	s := Schema()
	if len(s.Fields) != 24 {
		t.Fatalf("schema has %d fields, want 24 (paper §3/§4.1)", len(s.Fields))
	}
	if s.Target != "cycles" {
		t.Fatalf("target = %q", s.Target)
	}
}

func TestRowMatchesSchema(t *testing.T) {
	s := Schema()
	row := Enumerate()[0].Row()
	if len(row) != len(s.Fields) {
		t.Fatalf("row width %d vs schema %d", len(row), len(s.Fields))
	}
	d := dataset.New(s)
	if err := d.Append(row, 123); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDataset(t *testing.T) {
	cfgs := Enumerate()[:10]
	cycles := make([]float64, 10)
	for i := range cycles {
		cycles[i] = float64(1000 + i)
	}
	d, err := BuildDataset(cfgs, cycles)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 10 || d.Target(3) != 1003 {
		t.Fatal("dataset contents wrong")
	}
	if _, err := BuildDataset(cfgs, cycles[:5]); err == nil {
		t.Fatal("length mismatch: want error")
	}
}

func TestConstantFieldsOmittedByEncoder(t *testing.T) {
	// L1 associativities and L2 line size are constant across the space;
	// the encoder must drop them (Clementine behaviour, paper §3.4).
	cfgs := Enumerate()[:64]
	cycles := make([]float64, len(cfgs))
	for i := range cycles {
		cycles[i] = float64(i + 1)
	}
	d, err := BuildDataset(cfgs, cycles)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := dataset.FitEncoder(d, dataset.ForNN)
	if err != nil {
		t.Fatal(err)
	}
	om := enc.Omitted()
	for _, f := range []string{"l1d_assoc", "l1i_assoc", "l2_line_b"} {
		if _, ok := om[f]; !ok {
			t.Errorf("constant field %s not omitted", f)
		}
	}
}
