// Package space defines the microprocessor design space of the paper's
// Table 1 — 24 configuration parameters whose varied combinations yield
// 4608 distinct configurations per benchmark — and the utilities to
// enumerate it, convert points to simulator configurations, encode points
// as dataset records, and sweep the whole space in parallel.
//
// The paper's table lists value sets per parameter without spelling out
// which parameters co-vary; the product of all listed alternatives exceeds
// 4608, so some must be linked. We link them the way commercial design
// generations scale together, which reproduces the published space size
// exactly:
//
//   - L2 capacity and associativity move together (256 KB 4-way ↔ 1 MB 8-way),
//   - the pipeline width moves with the functional-unit mix
//     (4-wide ↔ 4/2/2/4/2, 8-wide ↔ 8/4/4/8/4),
//   - the window scale moves RUU/LSQ/ITLB/DTLB together
//     (128/64/256 KB/512 KB ↔ 256/128/1024 KB/2048 KB).
//
// Free dimensions: L1D (3 sizes × 2 lines) × L1I (3 × 2) × L2 (2) × L3
// (2) × predictor (4) × width (2) × window (2) × wrong-path issue (2)
// = 4608.
package space

import (
	"errors"
	"fmt"

	"perfpred/internal/bpred"
	"perfpred/internal/cpu"
	"perfpred/internal/dataset"
	"perfpred/internal/mem"
)

// MicroConfig is one point of the Table 1 design space, with every one of
// the 24 parameters spelled out (including the ones Table 1 holds
// constant, such as the L1 associativities).
type MicroConfig struct {
	L1DSizeKB, L1DLineB, L1DAssoc int
	L1ISizeKB, L1ILineB, L1IAssoc int
	L2SizeKB, L2LineB, L2Assoc    int
	// L3SizeMB == 0 encodes the "no L3" option; line/assoc are then 0 too.
	L3SizeMB, L3LineB, L3Assoc int
	BPred                      bpred.Kind
	Width                      int
	IssueWrong                 bool
	RUU, LSQ                   int
	ITLBKB, DTLBKB             int
	FU                         cpu.FUConfig
}

// SpaceSize is the number of configurations in the enumerated space,
// matching the paper's 4608 simulations per benchmark.
const SpaceSize = 4608

// Enumerate lists every configuration of the space in a fixed order.
func Enumerate() []MicroConfig {
	l1Sizes := []int{16, 32, 64}
	lines := []int{32, 64}
	type l2opt struct{ size, assoc int }
	l2s := []l2opt{{256, 4}, {1024, 8}}
	l3s := []bool{false, true}
	preds := bpred.Kinds()
	type core struct {
		width int
		fu    cpu.FUConfig
	}
	cores := []core{
		{4, cpu.FUConfig{IntALU: 4, IntMult: 2, MemPort: 2, FPALU: 4, FPMult: 2}},
		{8, cpu.FUConfig{IntALU: 8, IntMult: 4, MemPort: 4, FPALU: 8, FPMult: 4}},
	}
	type window struct{ ruu, lsq, itlb, dtlb int }
	windows := []window{
		{128, 64, 256, 512},
		{256, 128, 1024, 2048},
	}
	issueWrong := []bool{false, true}

	out := make([]MicroConfig, 0, SpaceSize)
	for _, dSize := range l1Sizes {
		for _, dLine := range lines {
			for _, iSize := range l1Sizes {
				for _, iLine := range lines {
					for _, l2 := range l2s {
						for _, hasL3 := range l3s {
							for _, p := range preds {
								for _, c := range cores {
									for _, w := range windows {
										for _, iw := range issueWrong {
											m := MicroConfig{
												L1DSizeKB: dSize, L1DLineB: dLine, L1DAssoc: 4,
												L1ISizeKB: iSize, L1ILineB: iLine, L1IAssoc: 4,
												L2SizeKB: l2.size, L2LineB: 128, L2Assoc: l2.assoc,
												BPred: p,
												Width: c.width, FU: c.fu,
												IssueWrong: iw,
												RUU:        w.ruu, LSQ: w.lsq,
												ITLBKB: w.itlb, DTLBKB: w.dtlb,
											}
											if hasL3 {
												m.L3SizeMB, m.L3LineB, m.L3Assoc = 8, 256, 8
											}
											out = append(out, m)
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// CPUConfig converts the point into a simulator configuration with the
// standard fixed latencies filled in.
func (m MicroConfig) CPUConfig() cpu.Config {
	cfg := cpu.Config{
		Mem: mem.HierarchyConfig{
			L1I:  mem.CacheConfig{SizeKB: m.L1ISizeKB, LineBytes: m.L1ILineB, Assoc: m.L1IAssoc},
			L1D:  mem.CacheConfig{SizeKB: m.L1DSizeKB, LineBytes: m.L1DLineB, Assoc: m.L1DAssoc},
			L2:   mem.CacheConfig{SizeKB: m.L2SizeKB, LineBytes: m.L2LineB, Assoc: m.L2Assoc},
			ITLB: mem.TLBConfig{CoverageKB: m.ITLBKB},
			DTLB: mem.TLBConfig{CoverageKB: m.DTLBKB},
		},
		BPred:      m.BPred,
		Width:      m.Width,
		IssueWrong: m.IssueWrong,
		RUU:        m.RUU,
		LSQ:        m.LSQ,
		FU:         m.FU,
	}
	if m.L3SizeMB > 0 {
		cfg.Mem.L3 = mem.CacheConfig{SizeKB: m.L3SizeMB * 1024, LineBytes: m.L3LineB, Assoc: m.L3Assoc}
	}
	cpu.DefaultLatencies(&cfg)
	return cfg
}

// Schema returns the 24-field dataset schema of a design-space record.
// Numeric parameters stay numeric; the branch predictor is categorical
// with a numeric strength mapping so linear regression can use it; the
// wrong-path-issue option is a flag. Constant fields (the L1
// associativities and the L2 line size) are retained in the schema — the
// encoder drops them exactly the way Clementine omits constant predictors.
func Schema() *dataset.Schema {
	levels := map[string]float64{}
	for _, k := range bpred.Kinds() {
		levels[k.String()] = k.NumericLevel()
	}
	s, err := dataset.NewSchema("cycles",
		dataset.Field{Name: "l1d_size_kb", Kind: dataset.Numeric},
		dataset.Field{Name: "l1d_line_b", Kind: dataset.Numeric},
		dataset.Field{Name: "l1d_assoc", Kind: dataset.Numeric},
		dataset.Field{Name: "l1i_size_kb", Kind: dataset.Numeric},
		dataset.Field{Name: "l1i_line_b", Kind: dataset.Numeric},
		dataset.Field{Name: "l1i_assoc", Kind: dataset.Numeric},
		dataset.Field{Name: "l2_size_kb", Kind: dataset.Numeric},
		dataset.Field{Name: "l2_line_b", Kind: dataset.Numeric},
		dataset.Field{Name: "l2_assoc", Kind: dataset.Numeric},
		dataset.Field{Name: "l3_size_mb", Kind: dataset.Numeric},
		dataset.Field{Name: "l3_line_b", Kind: dataset.Numeric},
		dataset.Field{Name: "l3_assoc", Kind: dataset.Numeric},
		dataset.Field{Name: "bpred", Kind: dataset.Categorical, NumericLevels: levels},
		dataset.Field{Name: "width", Kind: dataset.Numeric},
		dataset.Field{Name: "issue_wrong", Kind: dataset.Flag},
		dataset.Field{Name: "ruu", Kind: dataset.Numeric},
		dataset.Field{Name: "lsq", Kind: dataset.Numeric},
		dataset.Field{Name: "itlb_kb", Kind: dataset.Numeric},
		dataset.Field{Name: "dtlb_kb", Kind: dataset.Numeric},
		dataset.Field{Name: "fu_ialu", Kind: dataset.Numeric},
		dataset.Field{Name: "fu_imult", Kind: dataset.Numeric},
		dataset.Field{Name: "fu_memport", Kind: dataset.Numeric},
		dataset.Field{Name: "fu_fpalu", Kind: dataset.Numeric},
		dataset.Field{Name: "fu_fpmult", Kind: dataset.Numeric},
	)
	if err != nil {
		panic(fmt.Sprintf("space: schema construction failed: %v", err)) // static schema; unreachable
	}
	return s
}

// Row encodes the point as a dataset record matching Schema().
func (m MicroConfig) Row() []dataset.Value {
	return []dataset.Value{
		dataset.Num(float64(m.L1DSizeKB)),
		dataset.Num(float64(m.L1DLineB)),
		dataset.Num(float64(m.L1DAssoc)),
		dataset.Num(float64(m.L1ISizeKB)),
		dataset.Num(float64(m.L1ILineB)),
		dataset.Num(float64(m.L1IAssoc)),
		dataset.Num(float64(m.L2SizeKB)),
		dataset.Num(float64(m.L2LineB)),
		dataset.Num(float64(m.L2Assoc)),
		dataset.Num(float64(m.L3SizeMB)),
		dataset.Num(float64(m.L3LineB)),
		dataset.Num(float64(m.L3Assoc)),
		dataset.Cat(m.BPred.String()),
		dataset.Num(float64(m.Width)),
		dataset.FlagVal(m.IssueWrong),
		dataset.Num(float64(m.RUU)),
		dataset.Num(float64(m.LSQ)),
		dataset.Num(float64(m.ITLBKB)),
		dataset.Num(float64(m.DTLBKB)),
		dataset.Num(float64(m.FU.IntALU)),
		dataset.Num(float64(m.FU.IntMult)),
		dataset.Num(float64(m.FU.MemPort)),
		dataset.Num(float64(m.FU.FPALU)),
		dataset.Num(float64(m.FU.FPMult)),
	}
}

// BuildDataset assembles a dataset from configurations and their measured
// cycle counts.
func BuildDataset(cfgs []MicroConfig, cycles []float64) (*dataset.Dataset, error) {
	if len(cfgs) != len(cycles) {
		return nil, errors.New("space: configs/cycles length mismatch")
	}
	d := dataset.New(Schema())
	for i, c := range cfgs {
		if err := d.Append(c.Row(), cycles[i]); err != nil {
			return nil, err
		}
	}
	return d, nil
}
