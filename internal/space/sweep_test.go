package space

import (
	"context"
	"testing"

	"perfpred/internal/cpu"
	"perfpred/internal/engine"
	"perfpred/internal/stat"
	"perfpred/internal/trace"
)

func sweepTrace(t *testing.T, name string, n int) *cpu.Evaluator {
	t.Helper()
	p, err := trace.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(p, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := cpu.NewEvaluator(tr)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSweepSubsetDeterministicAcrossWorkers(t *testing.T) {
	e := sweepTrace(t, "gcc", 8000)
	cfgs := Enumerate()[:128]
	c1, err := Sweep(context.Background(), e, cfgs, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c8, err := Sweep(context.Background(), sweepTrace(t, "gcc", 8000), cfgs, engine.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range c1 {
		if c1[i] != c8[i] {
			t.Fatalf("config %d: 1-worker %v vs 8-worker %v", i, c1[i], c8[i])
		}
	}
}

func TestSweepAllPositive(t *testing.T) {
	e := sweepTrace(t, "mesa", 8000)
	cfgs := Enumerate()[:256]
	cycles, err := Sweep(context.Background(), e, cfgs, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cycles {
		if c <= 0 {
			t.Fatalf("config %d: cycles %v", i, c)
		}
	}
}

func TestSweepErrors(t *testing.T) {
	if _, err := Sweep(context.Background(), nil, Enumerate()[:1], engine.Options{}); err == nil {
		t.Fatal("nil evaluator: want error")
	}
	e := sweepTrace(t, "gcc", 2000)
	if _, err := Sweep(context.Background(), e, nil, engine.Options{}); err == nil {
		t.Fatal("no configs: want error")
	}
}

// TestWorkloadCalibration checks the §4.1 shape: the per-application
// cycle range over a sampled slice of the design space must order the
// applications the way the paper's full-space statistics do
// (mcf > gcc > mesa > equake ≥ applu) with applu nearly flat and mcf
// strongly configuration-sensitive.
func TestWorkloadCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	all := Enumerate()
	// A stride coprime to every enumeration dimension covers the space.
	var cfgs []MicroConfig
	for i := 0; i < len(all); i += 11 {
		cfgs = append(cfgs, all[i])
	}
	ranges := map[string]float64{}
	for _, name := range []string{"applu", "equake", "gcc", "mesa", "mcf"} {
		// Each profile's recommended length guarantees every reuse loop
		// completes multiple passes.
		p, err := trace.ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		e := sweepTrace(t, name, p.SimLen)
		cycles, err := Sweep(context.Background(), e, cfgs, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r, err := stat.Range(cycles)
		if err != nil {
			t.Fatal(err)
		}
		ranges[name] = r
		t.Logf("%s: range %.2f variance %.3f", name, r, stat.NormalizedVariance(cycles))
	}
	if !(ranges["mcf"] > ranges["gcc"]) {
		t.Errorf("mcf range %.2f should exceed gcc %.2f", ranges["mcf"], ranges["gcc"])
	}
	if !(ranges["gcc"] > ranges["mesa"]) {
		t.Errorf("gcc range %.2f should exceed mesa %.2f", ranges["gcc"], ranges["mesa"])
	}
	if !(ranges["mesa"] > ranges["applu"]) {
		t.Errorf("mesa range %.2f should exceed applu %.2f", ranges["mesa"], ranges["applu"])
	}
	// Loose absolute bands around the paper's values.
	band := func(name string, lo, hi float64) {
		if r := ranges[name]; r < lo || r > hi {
			t.Errorf("%s range %.2f outside calibration band [%.1f, %.1f] (paper %.2f)",
				name, r, lo, hi, map[string]float64{
					"applu": 1.62, "equake": 1.73, "gcc": 5.27, "mesa": 2.22, "mcf": 6.38,
				}[name])
		}
	}
	band("applu", 1.2, 2.2)
	band("equake", 1.3, 2.6)
	band("gcc", 2.8, 8.5)
	band("mesa", 1.5, 3.6)
	band("mcf", 3.0, 10.5)
	if !(ranges["gcc"] > ranges["equake"]) {
		t.Errorf("gcc range %.2f should exceed equake %.2f", ranges["gcc"], ranges["equake"])
	}
}
