package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"perfpred/internal/core"
)

func TestRunPerAppChrono(t *testing.T) {
	cfg := fastCfg()
	kinds := []core.ModelKind{core.LRE, core.NNS}
	s, err := RunPerAppChrono(context.Background(), "Pentium D", kinds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 12 {
		t.Fatalf("%d apps, want 12", len(s.Results))
	}
	if s.RateBest <= 0 {
		t.Fatal("no rate reference")
	}
	for _, r := range s.Results {
		if r.BestTrue <= 0 || r.BestTrue > 50 {
			t.Fatalf("%s: implausible error %.2f", r.App, r.BestTrue)
		}
		if r.LRTrue <= 0 || r.NNTrue <= 0 {
			t.Fatalf("%s: family split missing", r.App)
		}
	}
	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "twolf") {
		t.Fatal("render missing an application")
	}
	if _, err := RunPerAppChrono(context.Background(), "Itanium", kinds, cfg); err == nil {
		t.Fatal("unknown family: want error")
	}
}

// TestPerAppAccuracyComparableToRate checks the paper's claim that
// individual applications "can also be accurately estimated": the median
// per-app best error should be in the same regime as the rate experiment.
func TestPerAppAccuracyComparableToRate(t *testing.T) {
	cfg := fastCfg()
	cfg.EpochScale = 0.4
	s, err := RunPerAppChrono(context.Background(), "Pentium D", []core.ModelKind{core.LRE, core.LRB}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	over := 0
	for _, r := range s.Results {
		if r.BestTrue > 4*s.RateBest+5 {
			over++
		}
	}
	if over > 3 {
		t.Fatalf("%d of 12 apps much worse than the rate experiment (%.2f%%)", over, s.RateBest)
	}
}

func TestRunRollingChrono(t *testing.T) {
	cfg := fastCfg()
	kinds := []core.ModelKind{core.LRE, core.LRB}
	s, err := RunRollingChrono(context.Background(), "Opteron 2", kinds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Opteron 2 has 2003..2006 → three adjacent pairs.
	if len(s.Results) != 3 {
		t.Fatalf("%d pairs", len(s.Results))
	}
	for _, r := range s.Results {
		if r.TestYear != r.TrainYear+1 {
			t.Fatalf("pair %d→%d not adjacent", r.TrainYear, r.TestYear)
		}
		if r.BestTrue <= 0 || r.BestTrue > 50 {
			t.Fatalf("%d→%d error %.2f implausible", r.TrainYear, r.TestYear, r.BestTrue)
		}
	}
	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2005→2006") {
		t.Fatalf("render missing final pair:\n%s", buf.String())
	}
	if _, err := RunRollingChrono(context.Background(), "Itanium", kinds, cfg); err == nil {
		t.Fatal("unknown family: want error")
	}
}

func TestRunSelectAblation(t *testing.T) {
	ab, err := RunSelectAblation(context.Background(), "applu", 0.3, []core.ModelKind{core.LRB, core.NNS}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if ab.MaxTrue <= 0 || ab.MeanTrue <= 0 || ab.BestTrue <= 0 {
		t.Fatalf("degenerate ablation %+v", ab)
	}
	// Both criteria must pick an available model and cannot beat the oracle.
	if ab.MaxTrue < ab.BestTrue-1e-9 || ab.MeanTrue < ab.BestTrue-1e-9 {
		t.Fatalf("criterion beat the oracle: %+v", ab)
	}
}

func TestRunSamplingAblation(t *testing.T) {
	ab, err := RunSamplingAblation(context.Background(), "applu", 0.25, core.NNS, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if ab.RandomTrue <= 0 || ab.SystematicTrue <= 0 {
		t.Fatalf("degenerate ablation %+v", ab)
	}
	if ab.Kind != core.NNS {
		t.Fatal("kind lost")
	}
}

// TestCrossFamilyDegrades reproduces the paper's §4.1 rationale for
// per-family analysis: a model trained on one family fails on another.
func TestCrossFamilyDegrades(t *testing.T) {
	cfg := fastCfg()
	r, err := RunCrossFamily(context.Background(), "Xeon", "Opteron", core.LRE, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.WithinTrue <= 0 || r.CrossTrue <= 0 {
		t.Fatalf("degenerate result %+v", r)
	}
	if r.CrossTrue < 3*r.WithinTrue {
		t.Fatalf("cross-family error %.2f should dwarf within-family %.2f", r.CrossTrue, r.WithinTrue)
	}
	if _, err := RunCrossFamily(context.Background(), "Itanium", "Xeon", core.LRE, cfg); err == nil {
		t.Fatal("unknown train family: want error")
	}
	if _, err := RunCrossFamily(context.Background(), "Xeon", "Itanium", core.LRE, cfg); err == nil {
		t.Fatal("unknown test family: want error")
	}
}

func TestRunLearningCurve(t *testing.T) {
	cfg := fastCfg()
	lc, err := RunLearningCurve(context.Background(), "applu", core.NNS, []float64{0.1, 0.3, 0.6}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(lc.TrueMAPE) != 3 {
		t.Fatalf("%d points", len(lc.TrueMAPE))
	}
	for _, e := range lc.TrueMAPE {
		if e <= 0 || e > 60 {
			t.Fatalf("implausible error %v", e)
		}
	}
	// More data should not make things dramatically worse end-to-end.
	if lc.TrueMAPE[2] > 2*lc.TrueMAPE[0]+2 {
		t.Fatalf("error grew with data: %v", lc.TrueMAPE)
	}
	var buf bytes.Buffer
	if err := lc.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Learning curve") {
		t.Fatal("render missing title")
	}
	if _, err := RunLearningCurve(context.Background(), "applu", core.NNS, nil, cfg); err == nil {
		t.Fatal("no fractions: want error")
	}
}
