package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"perfpred/internal/core"
)

// fastCfg keeps substrate and training costs small for unit testing.
func fastCfg() Config {
	return Config{
		Seed:        1,
		Workers:     4,
		EpochScale:  0.25,
		TraceLen:    60_000,
		SpaceStride: 48,
	}
}

func TestRunSampledStudy(t *testing.T) {
	fracs := []float64{0.2, 0.5}
	kinds := []core.ModelKind{core.LRB, core.NNS}
	s, err := RunSampledStudy(context.Background(), "applu", fracs, kinds, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if s.Bench != "applu" || s.SpacePoints != 96 {
		t.Fatalf("study meta wrong: %s %d", s.Bench, s.SpacePoints)
	}
	if len(s.Cells) != len(fracs)*len(kinds) {
		t.Fatalf("%d cells", len(s.Cells))
	}
	for _, f := range fracs {
		for _, k := range kinds {
			c, ok := s.Cell(f, k)
			if !ok {
				t.Fatalf("missing cell %v/%v", f, k)
			}
			if c.TrueMAPE <= 0 || c.EstimateMax <= 0 {
				t.Fatalf("degenerate cell %+v", c)
			}
			if c.EstimateMax < c.EstimateMean {
				t.Fatalf("max < mean in %+v", c)
			}
		}
		if _, ok := s.SelectKind[f]; !ok {
			t.Fatalf("no selection at %v", f)
		}
	}
	if _, ok := s.Cell(0.99, core.LRB); ok {
		t.Fatal("phantom cell")
	}
}

func TestRunSampledStudyErrors(t *testing.T) {
	if _, err := RunSampledStudy(context.Background(), "applu", nil, []core.ModelKind{core.LRB}, fastCfg()); err == nil {
		t.Fatal("no fractions: want error")
	}
	if _, err := RunSampledStudy(context.Background(), "applu", []float64{0.2}, nil, fastCfg()); err == nil {
		t.Fatal("no kinds: want error")
	}
	if _, err := RunSampledStudy(context.Background(), "doom3", []float64{0.2}, []core.ModelKind{core.LRB}, fastCfg()); err == nil {
		t.Fatal("unknown bench: want error")
	}
}

func TestSampledStudyWriteText(t *testing.T) {
	s, err := RunSampledStudy(context.Background(), "applu", []float64{0.25}, []core.ModelKind{core.LRB}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"applu", "LR-B", "Select", "25%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestComputeTable3(t *testing.T) {
	cfg := fastCfg()
	fracs := []float64{0.25, 0.5}
	kinds := []core.ModelKind{core.LRB, core.NNS}
	var studies []*SampledStudy
	for _, b := range []string{"applu", "gcc"} {
		s, err := RunSampledStudy(context.Background(), b, fracs, kinds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		studies = append(studies, s)
	}
	t3, err := ComputeTable3(studies)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Benches) != 2 || len(t3.SelectAvg) != 2 {
		t.Fatalf("table meta wrong: %+v", t3)
	}
	for _, k := range kinds {
		for fi := range fracs {
			if t3.Avg[k][fi] <= 0 {
				t.Fatalf("avg %v@%d not positive", k, fi)
			}
		}
	}
	var buf bytes.Buffer
	if err := t3.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 3") {
		t.Fatal("render missing title")
	}
	if _, err := ComputeTable3(nil); err == nil {
		t.Fatal("no studies: want error")
	}
}

func TestPaperReferenceTables(t *testing.T) {
	t3 := PaperTable3()
	for _, k := range []string{"LR-B", "NN-E", "NN-S", "Select"} {
		if len(t3[k]) != 5 {
			t.Fatalf("paper Table 3 row %s has %d entries", k, len(t3[k]))
		}
	}
	t2 := PaperTable2()
	if len(t2) != 7 {
		t.Fatalf("paper Table 2 has %d families", len(t2))
	}
	if t2["Pentium 4"].Err != 1.5 {
		t.Fatal("paper value wrong")
	}
}

func TestRunChronoStudy(t *testing.T) {
	kinds := []core.ModelKind{core.LRE, core.LRB, core.NNS}
	s, err := RunChronoStudy(context.Background(), "Pentium D", kinds, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if s.TrainSize != 36 || s.TestSize != 35 {
		t.Fatalf("sizes %d/%d", s.TrainSize, s.TestSize)
	}
	if len(s.Reports) != 3 {
		t.Fatalf("%d reports", len(s.Reports))
	}
	for _, rep := range s.Reports {
		if rep.TrueMAPE <= 0 || rep.TrueMAPE > 50 {
			t.Fatalf("%v error %.2f implausible", rep.Kind, rep.TrueMAPE)
		}
	}
	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Pentium D") {
		t.Fatal("render missing family")
	}
	if _, err := RunChronoStudy(context.Background(), "Itanium", kinds, fastCfg()); err == nil {
		t.Fatal("unknown family: want error")
	}
}

// TestChronologicalShape asserts the paper's §4.3 headline: linear
// regression beats the neural networks when predicting next-year systems.
func TestChronologicalShape(t *testing.T) {
	cfg := fastCfg()
	cfg.EpochScale = 0.5
	for _, fam := range []string{"Pentium D", "Opteron 2"} {
		s, err := RunChronoStudy(context.Background(), fam, []core.ModelKind{core.LRE, core.NNQ}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var lr, nn float64
		for _, rep := range s.Reports {
			if rep.Kind == core.LRE {
				lr = rep.TrueMAPE
			} else {
				nn = rep.TrueMAPE
			}
		}
		if lr >= nn {
			t.Errorf("%s: LR (%.2f) should beat NN (%.2f) chronologically", fam, lr, nn)
		}
		if lr > 8 {
			t.Errorf("%s: LR error %.2f too high (paper: low single digits)", fam, lr)
		}
	}
}

func TestRunTable2(t *testing.T) {
	kinds := []core.ModelKind{core.LRE, core.LRB}
	t2, err := RunTable2(context.Background(), kinds, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Studies) != 7 {
		t.Fatalf("%d families", len(t2.Studies))
	}
	var buf bytes.Buffer
	if err := t2.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"Xeon", "Opteron 8"} {
		if !strings.Contains(buf.String(), fam) {
			t.Errorf("Table 2 render missing %s", fam)
		}
	}
}

func TestRunCalibrations(t *testing.T) {
	cfg := fastCfg()
	micro, err := RunMicroCalibration(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(micro) != 5 {
		t.Fatalf("%d micro rows", len(micro))
	}
	for _, r := range micro {
		if r.Range <= 1 || r.PaperRange == 0 {
			t.Fatalf("row %+v degenerate", r)
		}
	}
	spec, err := RunSpecCalibration(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) != 7 {
		t.Fatalf("%d spec rows", len(spec))
	}
	var buf bytes.Buffer
	if err := WriteCalibration(&buf, "test", append(micro, spec...)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mcf") || !strings.Contains(buf.String(), "Xeon") {
		t.Fatal("calibration render incomplete")
	}
}

func TestRunImportance(t *testing.T) {
	cfg := fastCfg()
	cfg.EpochScale = 0.5
	rep, err := RunImportance(context.Background(), "Opteron", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NN) == 0 || len(rep.LR) == 0 {
		t.Fatal("empty importance lists")
	}
	// The paper's §4.4: processor speed dominates both models for Opteron.
	if rep.LR[0].Field != "speed_mhz" {
		t.Errorf("LR top field = %s, want speed_mhz", rep.LR[0].Field)
	}
	if rep.NN[0].Field != "speed_mhz" {
		t.Errorf("NN top field = %s, want speed_mhz", rep.NN[0].Field)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speed_mhz") {
		t.Fatal("render missing top field")
	}
	if _, err := RunImportance(context.Background(), "Itanium", cfg); err == nil {
		t.Fatal("unknown family: want error")
	}
}
