// Package experiments reproduces every table and figure of the paper's
// evaluation section. Each Run* function regenerates one artifact from
// scratch — workload generation, full design-space simulation or SPEC data
// synthesis, model training, cross-validation and scoring — and returns a
// structured result with a text renderer. The cmd/experiments binary and
// the repository's benchmark harness are thin wrappers over this package.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"perfpred/internal/core"
	"perfpred/internal/cpu"
	"perfpred/internal/engine"
	"perfpred/internal/space"
	"perfpred/internal/specdata"
	"perfpred/internal/stat"
	"perfpred/internal/trace"
)

// Config tunes experiment cost and reproducibility.
type Config struct {
	// Seed drives all data generation and training.
	Seed int64
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// EpochScale scales neural training budgets (0 = 1.0).
	EpochScale float64
	// TraceLen overrides each benchmark's recommended instruction count
	// (0 keeps the recommendation). Benchmarks and tests use smaller
	// traces for speed.
	TraceLen int
	// SpaceStride simulates every SpaceStride-th design point instead of
	// all 4608 (0/1 = full space). Use a value coprime to the space's
	// dimension sizes, e.g. 11.
	SpaceStride int
	// Hook, if non-nil, observes execution-engine events from every
	// workflow an experiment runs.
	Hook engine.Hook
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

func (c Config) trainCfg() core.TrainConfig {
	return core.TrainConfig{Seed: c.seed(), Workers: c.Workers, EpochScale: c.EpochScale, Hook: c.Hook}
}

// groundTruth simulates the (possibly subsampled) design space for a
// benchmark and returns it as a dataset.
func groundTruth(ctx context.Context, bench string, cfg Config) (*trace.Trace, []space.MicroConfig, []float64, error) {
	prof, err := trace.ProfileByName(bench)
	if err != nil {
		return nil, nil, nil, err
	}
	n := cfg.TraceLen
	if n == 0 {
		n = prof.SimLen
	}
	tr, err := trace.Generate(prof, n, cfg.seed())
	if err != nil {
		return nil, nil, nil, err
	}
	eval, err := cpu.NewEvaluator(tr)
	if err != nil {
		return nil, nil, nil, err
	}
	cfgs := space.Enumerate()
	if cfg.SpaceStride > 1 {
		var sub []space.MicroConfig
		for i := 0; i < len(cfgs); i += cfg.SpaceStride {
			sub = append(sub, cfgs[i])
		}
		cfgs = sub
	}
	cycles, err := space.Sweep(ctx, eval, cfgs, engine.Options{Workers: cfg.Workers, Hook: cfg.Hook})
	if err != nil {
		return nil, nil, nil, err
	}
	return tr, cfgs, cycles, nil
}

// SampledCell is one (sampling rate × model) measurement of a Figures 2–6
// style study.
type SampledCell struct {
	Fraction     float64
	Kind         core.ModelKind
	EstimateMean float64 // mean cross-validated error (the "-est" curves)
	EstimateMax  float64 // max cross-validated error (the paper's estimator)
	TrueMAPE     float64 // error over 100% of the space
}

// SampledStudy reproduces one of Figures 2–6: estimated vs. true error for
// several models at several sampling rates, plus the Select rule's row of
// Table 3.
type SampledStudy struct {
	Bench     string
	Fractions []float64
	Kinds     []core.ModelKind
	Cells     []SampledCell
	// SelectTrue maps each fraction to the true error of the model the
	// Select rule picked at that fraction.
	SelectTrue map[float64]float64
	// SelectKind maps each fraction to the picked model.
	SelectKind map[float64]core.ModelKind
	// SpacePoints is the number of design points used as ground truth.
	SpacePoints int
}

// RunSampledStudy regenerates one Figures 2–6 panel set for a benchmark.
func RunSampledStudy(ctx context.Context, bench string, fractions []float64, kinds []core.ModelKind, cfg Config) (*SampledStudy, error) {
	if len(fractions) == 0 {
		return nil, errors.New("experiments: no sampling fractions")
	}
	if len(kinds) == 0 {
		return nil, errors.New("experiments: no model kinds")
	}
	_, cfgs, cycles, err := groundTruth(ctx, bench, cfg)
	if err != nil {
		return nil, err
	}
	full, err := space.BuildDataset(cfgs, cycles)
	if err != nil {
		return nil, err
	}
	study := &SampledStudy{
		Bench:       bench,
		Fractions:   append([]float64(nil), fractions...),
		Kinds:       append([]core.ModelKind(nil), kinds...),
		SelectTrue:  map[float64]float64{},
		SelectKind:  map[float64]core.ModelKind{},
		SpacePoints: full.Len(),
	}
	for fi, frac := range fractions {
		tc := cfg.trainCfg()
		tc.Seed = stat.DeriveSeed(cfg.seed(), 9000+fi)
		res, err := core.RunSampledDSE(ctx, full, frac, kinds, tc)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s at %.0f%%: %w", bench, 100*frac, err)
		}
		for _, rep := range res.Reports {
			study.Cells = append(study.Cells, SampledCell{
				Fraction:     frac,
				Kind:         rep.Kind,
				EstimateMean: rep.Estimate.Mean,
				EstimateMax:  rep.Estimate.Max,
				TrueMAPE:     rep.TrueMAPE,
			})
		}
		study.SelectTrue[frac] = res.SelectedTrueMAPE
		study.SelectKind[frac] = res.Selected
	}
	return study, nil
}

// Cell returns the study cell for (fraction, kind).
func (s *SampledStudy) Cell(frac float64, kind core.ModelKind) (SampledCell, bool) {
	for _, c := range s.Cells {
		if c.Fraction == frac && c.Kind == kind {
			return c, true
		}
	}
	return SampledCell{}, false
}

// WriteText renders the study the way the paper's figures tabulate:
// true and estimated error per model per sampling rate.
func (s *SampledStudy) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Model Error - %s (%d space points)\n", s.Bench, s.SpacePoints)
	head := "sample%\t"
	for _, k := range s.Kinds {
		head += k.String() + "\t" + k.String() + "-est\t"
	}
	head += "Select\t(model)"
	fmt.Fprintln(tw, head)
	for _, f := range s.Fractions {
		line := fmt.Sprintf("%.0f%%\t", 100*f)
		for _, k := range s.Kinds {
			c, ok := s.Cell(f, k)
			if !ok {
				line += "-\t-\t"
				continue
			}
			line += fmt.Sprintf("%.2f\t%.2f\t", c.TrueMAPE, c.EstimateMax)
		}
		line += fmt.Sprintf("%.2f\t%v", s.SelectTrue[f], s.SelectKind[f])
		fmt.Fprintln(tw, line)
	}
	return tw.Flush()
}

// Table3 aggregates sampled studies into the paper's Table 3: average true
// error across benchmarks per model per sampling rate, plus the Select row.
type Table3 struct {
	Fractions []float64
	Kinds     []core.ModelKind
	// Avg[kind][fraction index] is the cross-benchmark average true error.
	Avg map[core.ModelKind][]float64
	// SelectAvg[fraction index] is the Select rule's average true error.
	SelectAvg []float64
	Benches   []string
}

// ComputeTable3 reduces per-benchmark studies to the Table 3 averages.
func ComputeTable3(studies []*SampledStudy) (*Table3, error) {
	if len(studies) == 0 {
		return nil, errors.New("experiments: no studies")
	}
	base := studies[0]
	t := &Table3{
		Fractions: base.Fractions,
		Kinds:     base.Kinds,
		Avg:       map[core.ModelKind][]float64{},
		SelectAvg: make([]float64, len(base.Fractions)),
	}
	for _, k := range t.Kinds {
		t.Avg[k] = make([]float64, len(t.Fractions))
	}
	for _, s := range studies {
		t.Benches = append(t.Benches, s.Bench)
		for fi, f := range t.Fractions {
			for _, k := range t.Kinds {
				c, ok := s.Cell(f, k)
				if !ok {
					return nil, fmt.Errorf("experiments: study %s missing cell (%v, %v)", s.Bench, f, k)
				}
				t.Avg[k][fi] += c.TrueMAPE / float64(len(studies))
			}
			t.SelectAvg[fi] += s.SelectTrue[f] / float64(len(studies))
		}
	}
	return t, nil
}

// PaperTable3 returns the published Table 3 values for reference
// (rows LR-B, NN-E, NN-S, Select at 1–5 %).
func PaperTable3() map[string][]float64 {
	return map[string][]float64{
		"LR-B":   {4.2, 4.0, 3.82, 3.8, 3.8},
		"NN-E":   {3.48, 2.04, 1.14, 0.94, 0.88},
		"NN-S":   {5.94, 3.18, 2.22, 1.16, 1.5},
		"Select": {3.4, 2.6, 1.14, 0.94, 0.88},
	}
}

// WriteText renders Table 3.
func (t *Table3) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Table 3: average true error over %v\n", t.Benches)
	head := "Statistics\t"
	for _, f := range t.Fractions {
		head += fmt.Sprintf("%.0f%%\t", 100*f)
	}
	fmt.Fprintln(tw, head)
	for _, k := range t.Kinds {
		line := k.String() + "\t"
		for fi := range t.Fractions {
			line += fmt.Sprintf("%.2f\t", t.Avg[k][fi])
		}
		fmt.Fprintln(tw, line)
	}
	line := "Select\t"
	for fi := range t.Fractions {
		line += fmt.Sprintf("%.2f\t", t.SelectAvg[fi])
	}
	fmt.Fprintln(tw, line)
	return tw.Flush()
}

// ChronoStudy reproduces one panel of Figures 7–8 for one system family.
type ChronoStudy struct {
	Family              string
	Reports             []core.ModelReport
	Best                core.ModelKind
	BestTrue            float64
	Selected            core.ModelKind
	SelectedTrue        float64
	TrainSize, TestSize int
}

// RunChronoStudy trains on the family's 2005 announcements and predicts
// its 2006 announcements with the requested models.
func RunChronoStudy(ctx context.Context, family string, kinds []core.ModelKind, cfg Config) (*ChronoStudy, error) {
	fam, err := specdata.FamilyByName(family)
	if err != nil {
		return nil, err
	}
	recs, err := specdata.Generate(fam, cfg.seed())
	if err != nil {
		return nil, err
	}
	train, err := specdata.BuildDataset(recs, 2005)
	if err != nil {
		return nil, err
	}
	future, err := specdata.BuildDataset(recs, 2006)
	if err != nil {
		return nil, err
	}
	res, err := core.RunChronological(ctx, train, future, kinds, cfg.trainCfg())
	if err != nil {
		return nil, err
	}
	return &ChronoStudy{
		Family:       family,
		Reports:      res.Reports,
		Best:         res.Best,
		BestTrue:     res.BestTrueMAPE,
		Selected:     res.Selected,
		SelectedTrue: res.SelectedTrueMAPE,
		TrainSize:    train.Len(),
		TestSize:     future.Len(),
	}, nil
}

// WriteText renders the study as one Figure 7/8 panel (mean ± stddev per
// model).
func (c *ChronoStudy) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Chronological Predictions - %s (train %d records of 2005, test %d of 2006)\n",
		c.Family, c.TrainSize, c.TestSize)
	fmt.Fprintln(tw, "model\terror%\tstddev\testimate(max)")
	for _, rep := range c.Reports {
		fmt.Fprintf(tw, "%v\t%.2f\t%.2f\t%.2f\n", rep.Kind, rep.TrueMAPE, rep.StdAPE, rep.Estimate.Max)
	}
	fmt.Fprintf(tw, "best: %v %.2f%%   selected-by-estimate: %v %.2f%%\n", c.Best, c.BestTrue, c.Selected, c.SelectedTrue)
	return tw.Flush()
}

// Table2 reproduces the paper's Table 2: the best accuracy and winning
// method per family.
type Table2 struct {
	Studies []*ChronoStudy
}

// PaperTable2 returns the published best errors and methods.
func PaperTable2() map[string]struct {
	Err    float64
	Method string
} {
	return map[string]struct {
		Err    float64
		Method string
	}{
		"Xeon":      {2.1, "LR-E"},
		"Pentium D": {2.2, "LR-E"},
		"Pentium 4": {1.5, "LR-E"},
		"Opteron":   {2.1, "LR-B/LR-S"},
		"Opteron 2": {3.1, "LR-B/LR-S"},
		"Opteron 4": {3.2, "LR-B/LR-S"},
		"Opteron 8": {3.5, "LR-B/LR-S"},
	}
}

// RunTable2 runs the chronological study for every family.
func RunTable2(ctx context.Context, kinds []core.ModelKind, cfg Config) (*Table2, error) {
	t := &Table2{}
	for _, fam := range specdata.Families() {
		s, err := RunChronoStudy(ctx, fam.Name, kinds, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: family %s: %w", fam.Name, err)
		}
		t.Studies = append(t.Studies, s)
	}
	return t, nil
}

// WriteText renders Table 2 next to the paper's values.
func (t *Table2) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 2: best chronological accuracy per family")
	fmt.Fprintln(tw, "family\taccuracy\tmethod\tpaper")
	paper := PaperTable2()
	for _, s := range t.Studies {
		p := paper[s.Family]
		fmt.Fprintf(tw, "%s\t%.2f\t%v\t%.1f %s\n", s.Family, s.BestTrue, s.Best, p.Err, p.Method)
	}
	return tw.Flush()
}

// CalibrationRow is one benchmark's §4.1 statistics.
type CalibrationRow struct {
	Name       string
	Points     int
	Range      float64
	NormVar    float64
	PaperRange float64
	PaperVar   float64
}

// RunMicroCalibration reproduces the §4.1 simulation statistics (range and
// variance of cycles across the design space) for the figured benchmarks.
func RunMicroCalibration(ctx context.Context, cfg Config) ([]CalibrationRow, error) {
	paper := map[string][2]float64{
		"applu": {1.62, 0.16}, "equake": {1.73, 0.19}, "gcc": {5.27, 0.33},
		"mesa": {2.22, 0.19}, "mcf": {6.38, 0.71},
	}
	var rows []CalibrationRow
	for _, prof := range trace.FiguredProfiles() {
		_, _, cycles, err := groundTruth(ctx, prof.Name, cfg)
		if err != nil {
			return nil, err
		}
		rng, err := stat.Range(cycles)
		if err != nil {
			return nil, err
		}
		p := paper[prof.Name]
		rows = append(rows, CalibrationRow{
			Name: prof.Name, Points: len(cycles),
			Range: rng, NormVar: stat.NormalizedVariance(cycles),
			PaperRange: p[0], PaperVar: p[1],
		})
	}
	return rows, nil
}

// RunSpecCalibration reproduces the §4.1 SPEC family statistics.
func RunSpecCalibration(ctx context.Context, cfg Config) ([]CalibrationRow, error) {
	var rows []CalibrationRow
	for _, fam := range specdata.Families() {
		recs, err := specdata.Generate(fam, cfg.seed())
		if err != nil {
			return nil, err
		}
		n, rng, nvar, err := specdata.FamilyStatistics(recs)
		if err != nil {
			return nil, err
		}
		_, pr, pv := fam.PaperStats()
		rows = append(rows, CalibrationRow{
			Name: fam.Name, Points: n, Range: rng, NormVar: nvar,
			PaperRange: pr, PaperVar: pv,
		})
	}
	return rows, nil
}

// WriteCalibration renders calibration rows.
func WriteCalibration(w io.Writer, title string, rows []CalibrationRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, title)
	fmt.Fprintln(tw, "name\tpoints\trange\tpaper\tnvar\tpaper")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%.3f\t%.2f\n",
			r.Name, r.Points, r.Range, r.PaperRange, r.NormVar, r.PaperVar)
	}
	return tw.Flush()
}

// ImportanceReport reproduces the §4.4 analysis for one family: the
// neural network's sensitivity-based importances and the linear model's
// standardized betas side by side.
type ImportanceReport struct {
	Family string
	NN     []core.FieldImportance
	LR     []core.FieldImportance
}

// RunImportance trains an NN-Q and an LR-E model on a family's 2005 data
// and reports both models' field importance rankings.
func RunImportance(ctx context.Context, family string, cfg Config) (*ImportanceReport, error) {
	fam, err := specdata.FamilyByName(family)
	if err != nil {
		return nil, err
	}
	recs, err := specdata.Generate(fam, cfg.seed())
	if err != nil {
		return nil, err
	}
	train, err := specdata.BuildDataset(recs, 2005)
	if err != nil {
		return nil, err
	}
	nn, err := core.Train(ctx, core.NNQ, train, cfg.trainCfg())
	if err != nil {
		return nil, err
	}
	nnImp, err := nn.Importances(train)
	if err != nil {
		return nil, err
	}
	lr, err := core.Train(ctx, core.LRE, train, cfg.trainCfg())
	if err != nil {
		return nil, err
	}
	lrImp, err := lr.Importances(train)
	if err != nil {
		return nil, err
	}
	return &ImportanceReport{Family: family, NN: nnImp, LR: lrImp}, nil
}

// WriteText renders the importance report.
func (r *ImportanceReport) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Input importance - %s (paper §4.4)\n", r.Family)
	fmt.Fprintln(tw, "rank\tNN field\tscore\tLR field\t|std beta|")
	n := len(r.NN)
	if len(r.LR) > n {
		n = len(r.LR)
	}
	if n > 8 {
		n = 8
	}
	get := func(xs []core.FieldImportance, i int) (string, string) {
		if i >= len(xs) {
			return "", ""
		}
		return xs[i].Field, fmt.Sprintf("%.3f", xs[i].Score)
	}
	for i := 0; i < n; i++ {
		nf, ns := get(r.NN, i)
		lf, ls := get(r.LR, i)
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\n", i+1, nf, ns, lf, ls)
	}
	return tw.Flush()
}

// SortedKindNames is a helper for stable iteration over report maps.
func SortedKindNames(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
