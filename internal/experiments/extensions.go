package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"perfpred/internal/core"
	"perfpred/internal/space"
	"perfpred/internal/specdata"
	"perfpred/internal/stat"
)

// The experiments in this file go beyond the paper's published results:
// per-application chronological prediction (which the paper ran but
// omitted for space), rolling multi-year chronological prediction, and
// two ablations of design choices the framework makes (the Select rule's
// max-vs-mean criterion, and random vs. systematic space sampling).

// PerAppResult is one application's chronological outcome.
type PerAppResult struct {
	App      string
	Best     core.ModelKind
	BestTrue float64
	// LRTrue / NNTrue are the best linear and best neural errors, to keep
	// the LR-vs-NN comparison visible per application.
	LRTrue, NNTrue float64
}

// PerAppStudy is the per-application chronological experiment for one
// family.
type PerAppStudy struct {
	Family  string
	Results []PerAppResult
	// RateBest is the family's best error when predicting the overall
	// SPEC rate (the published experiment), for comparison.
	RateBest float64
}

// RunPerAppChrono predicts each of the twelve CINT2000 application
// runtimes chronologically (2005 → 2006) for one family.
func RunPerAppChrono(ctx context.Context, family string, kinds []core.ModelKind, cfg Config) (*PerAppStudy, error) {
	fam, err := specdata.FamilyByName(family)
	if err != nil {
		return nil, err
	}
	recs, err := specdata.Generate(fam, cfg.seed())
	if err != nil {
		return nil, err
	}
	study := &PerAppStudy{Family: family}
	for _, app := range specdata.IntApps() {
		train, err := specdata.BuildAppDataset(recs, app, 2005)
		if err != nil {
			return nil, err
		}
		future, err := specdata.BuildAppDataset(recs, app, 2006)
		if err != nil {
			return nil, err
		}
		res, err := core.RunChronological(ctx, train, future, kinds, cfg.trainCfg())
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%s: %w", family, app, err)
		}
		r := PerAppResult{App: app, Best: res.Best, BestTrue: res.BestTrueMAPE}
		r.LRTrue, r.NNTrue = bestByFamily(res.Reports)
		study.Results = append(study.Results, r)
	}
	// Reference: the published rate experiment.
	rate, err := RunChronoStudy(ctx, family, kinds, cfg)
	if err != nil {
		return nil, err
	}
	study.RateBest = rate.BestTrue
	return study, nil
}

// bestByFamily returns the best linear and best neural true errors.
func bestByFamily(reports []core.ModelReport) (lr, nn float64) {
	lr, nn = -1, -1
	for _, rep := range reports {
		if rep.Kind.IsNeural() {
			if nn < 0 || rep.TrueMAPE < nn {
				nn = rep.TrueMAPE
			}
		} else {
			if lr < 0 || rep.TrueMAPE < lr {
				lr = rep.TrueMAPE
			}
		}
	}
	return lr, nn
}

// WriteText renders the per-application study.
func (s *PerAppStudy) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Per-application chronological predictions - %s (rate experiment best: %.2f%%)\n",
		s.Family, s.RateBest)
	fmt.Fprintln(tw, "application\tbest\terror%\tbest LR\tbest NN")
	for _, r := range s.Results {
		fmt.Fprintf(tw, "%s\t%v\t%.2f\t%.2f\t%.2f\n", r.App, r.Best, r.BestTrue, r.LRTrue, r.NNTrue)
	}
	return tw.Flush()
}

// RollingResult is one year-pair outcome.
type RollingResult struct {
	TrainYear, TestYear int
	TrainSize, TestSize int
	Best                core.ModelKind
	BestTrue            float64
}

// RollingStudy is the multi-year chronological extension: every adjacent
// year pair a family has data for, not just 2005 → 2006.
type RollingStudy struct {
	Family  string
	Results []RollingResult
}

// RunRollingChrono trains on each year Y and predicts year Y+1 for every
// adjacent pair in the family's history.
func RunRollingChrono(ctx context.Context, family string, kinds []core.ModelKind, cfg Config) (*RollingStudy, error) {
	fam, err := specdata.FamilyByName(family)
	if err != nil {
		return nil, err
	}
	recs, err := specdata.Generate(fam, cfg.seed())
	if err != nil {
		return nil, err
	}
	years := fam.Years()
	if len(years) < 2 {
		return nil, fmt.Errorf("experiments: family %s has only %d years", family, len(years))
	}
	study := &RollingStudy{Family: family}
	for i := 0; i+1 < len(years); i++ {
		train, err := specdata.BuildDataset(recs, years[i])
		if err != nil {
			return nil, err
		}
		future, err := specdata.BuildDataset(recs, years[i+1])
		if err != nil {
			return nil, err
		}
		res, err := core.RunChronological(ctx, train, future, kinds, cfg.trainCfg())
		if err != nil {
			return nil, fmt.Errorf("experiments: %s %d→%d: %w", family, years[i], years[i+1], err)
		}
		study.Results = append(study.Results, RollingResult{
			TrainYear: years[i], TestYear: years[i+1],
			TrainSize: train.Len(), TestSize: future.Len(),
			Best: res.Best, BestTrue: res.BestTrueMAPE,
		})
	}
	return study, nil
}

// WriteText renders the rolling study.
func (s *RollingStudy) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Rolling chronological predictions - %s\n", s.Family)
	fmt.Fprintln(tw, "train→test\trecords\tbest\terror%")
	for _, r := range s.Results {
		fmt.Fprintf(tw, "%d→%d\t%d/%d\t%v\t%.2f\n",
			r.TrainYear, r.TestYear, r.TrainSize, r.TestSize, r.Best, r.BestTrue)
	}
	return tw.Flush()
}

// SelectAblation compares the paper's max-fold Select criterion against
// the mean-fold alternative on one benchmark.
type SelectAblation struct {
	Bench    string
	Fraction float64
	// MaxTrue / MeanTrue are the true errors of the models each criterion
	// picks; BestTrue is the oracle (best available model).
	MaxTrue, MeanTrue, BestTrue float64
	MaxPick, MeanPick           core.ModelKind
}

// RunSelectAblation runs one sampled-DSE experiment and applies both
// selection criteria to the same reports.
func RunSelectAblation(ctx context.Context, bench string, frac float64, kinds []core.ModelKind, cfg Config) (*SelectAblation, error) {
	_, cfgs, cycles, err := groundTruth(ctx, bench, cfg)
	if err != nil {
		return nil, err
	}
	full, err := space.BuildDataset(cfgs, cycles)
	if err != nil {
		return nil, err
	}
	res, err := core.RunSampledDSE(ctx, full, frac, kinds, cfg.trainCfg())
	if err != nil {
		return nil, err
	}
	ab := &SelectAblation{Bench: bench, Fraction: frac}
	bestMax, bestMean := -1.0, -1.0
	ab.BestTrue = -1
	for _, rep := range res.Reports {
		if bestMax < 0 || rep.Estimate.Max < bestMax {
			bestMax = rep.Estimate.Max
			ab.MaxTrue = rep.TrueMAPE
			ab.MaxPick = rep.Kind
		}
		if bestMean < 0 || rep.Estimate.Mean < bestMean {
			bestMean = rep.Estimate.Mean
			ab.MeanTrue = rep.TrueMAPE
			ab.MeanPick = rep.Kind
		}
		if ab.BestTrue < 0 || rep.TrueMAPE < ab.BestTrue {
			ab.BestTrue = rep.TrueMAPE
		}
	}
	return ab, nil
}

// SamplingAblation compares random sampling (the paper's choice) against
// systematic stride sampling at equal budget.
type SamplingAblation struct {
	Bench          string
	Fraction       float64
	Kind           core.ModelKind
	RandomTrue     float64
	SystematicTrue float64
}

// RunSamplingAblation trains the same model kind on a random sample and on
// a same-size systematic sample of the space and compares true errors.
func RunSamplingAblation(ctx context.Context, bench string, frac float64, kind core.ModelKind, cfg Config) (*SamplingAblation, error) {
	_, cfgs, cycles, err := groundTruth(ctx, bench, cfg)
	if err != nil {
		return nil, err
	}
	full, err := space.BuildDataset(cfgs, cycles)
	if err != nil {
		return nil, err
	}
	tc := cfg.trainCfg()

	// Random sample (the paper's method).
	randomSample, _, err := full.SampleFraction(stat.NewRand(stat.DeriveSeed(cfg.seed(), 31)), frac)
	if err != nil {
		return nil, err
	}
	pRand, err := core.Train(ctx, kind, randomSample, tc)
	if err != nil {
		return nil, err
	}
	randTrue, _, err := pRand.Evaluate(ctx, full)
	if err != nil {
		return nil, err
	}

	// Systematic sample of the same size: every (n/k)-th configuration.
	k := randomSample.Len()
	idx := make([]int, 0, k)
	for i := 0; i < k; i++ {
		idx = append(idx, i*full.Len()/k)
	}
	sysSample, err := full.Subset(idx)
	if err != nil {
		return nil, err
	}
	pSys, err := core.Train(ctx, kind, sysSample, tc)
	if err != nil {
		return nil, err
	}
	sysTrue, _, err := pSys.Evaluate(ctx, full)
	if err != nil {
		return nil, err
	}

	return &SamplingAblation{
		Bench: bench, Fraction: frac, Kind: kind,
		RandomTrue: randTrue, SystematicTrue: sysTrue,
	}, nil
}

// CrossFamilyResult quantifies why the paper analyzes processor families
// separately (§4.1: "when different processor types are used, the system
// configurations were significantly different from each other, preventing
// us from making a relative comparison"): a model trained on one family
// degrades badly on another.
type CrossFamilyResult struct {
	TrainFamily, TestFamily string
	Kind                    core.ModelKind
	// WithinTrue is the ordinary chronological error inside the training
	// family (2005 → 2006).
	WithinTrue float64
	// CrossTrue is the error of the same 2005-trained model applied to the
	// other family's 2005 systems.
	CrossTrue float64
}

// RunCrossFamily trains on one family's 2005 announcements and evaluates
// both within the family (its 2006 systems) and across families (the
// other family's 2005 systems).
func RunCrossFamily(ctx context.Context, trainFam, testFam string, kind core.ModelKind, cfg Config) (*CrossFamilyResult, error) {
	tf, err := specdata.FamilyByName(trainFam)
	if err != nil {
		return nil, err
	}
	of, err := specdata.FamilyByName(testFam)
	if err != nil {
		return nil, err
	}
	trainRecs, err := specdata.Generate(tf, cfg.seed())
	if err != nil {
		return nil, err
	}
	otherRecs, err := specdata.Generate(of, cfg.seed())
	if err != nil {
		return nil, err
	}
	train, err := specdata.BuildDataset(trainRecs, 2005)
	if err != nil {
		return nil, err
	}
	within, err := specdata.BuildDataset(trainRecs, 2006)
	if err != nil {
		return nil, err
	}
	cross, err := specdata.BuildDataset(otherRecs, 2005)
	if err != nil {
		return nil, err
	}
	p, err := core.Train(ctx, kind, train, cfg.trainCfg())
	if err != nil {
		return nil, err
	}
	res := &CrossFamilyResult{TrainFamily: trainFam, TestFamily: testFam, Kind: kind}
	if res.WithinTrue, _, err = p.Evaluate(ctx, within); err != nil {
		return nil, err
	}
	if res.CrossTrue, _, err = p.Evaluate(ctx, cross); err != nil {
		return nil, err
	}
	return res, nil
}

// LearningCurve traces one model's accuracy as the sampling budget grows —
// a finer-grained view of the paper's 1–5% axis, without the
// cross-validation overhead (true errors only).
type LearningCurve struct {
	Bench     string
	Kind      core.ModelKind
	Fractions []float64
	// TrueMAPE[i] is the whole-space error when training on Fractions[i].
	TrueMAPE []float64
}

// RunLearningCurve measures the model's whole-space error at each sampling
// fraction.
func RunLearningCurve(ctx context.Context, bench string, kind core.ModelKind, fractions []float64, cfg Config) (*LearningCurve, error) {
	if len(fractions) == 0 {
		return nil, fmt.Errorf("experiments: no fractions")
	}
	_, cfgs, cycles, err := groundTruth(ctx, bench, cfg)
	if err != nil {
		return nil, err
	}
	full, err := space.BuildDataset(cfgs, cycles)
	if err != nil {
		return nil, err
	}
	lc := &LearningCurve{Bench: bench, Kind: kind, Fractions: append([]float64(nil), fractions...)}
	for fi, frac := range fractions {
		tc := cfg.trainCfg()
		tc.Seed = stat.DeriveSeed(cfg.seed(), 4000+fi)
		sample, _, err := full.SampleFraction(stat.NewRand(tc.Seed), frac)
		if err != nil {
			return nil, err
		}
		p, err := core.Train(ctx, kind, sample, tc)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s at %.2f%%: %w", bench, 100*frac, err)
		}
		mape, _, err := p.Evaluate(ctx, full)
		if err != nil {
			return nil, err
		}
		lc.TrueMAPE = append(lc.TrueMAPE, mape)
	}
	return lc, nil
}

// WriteText renders the learning curve.
func (lc *LearningCurve) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Learning curve - %s with %v\n", lc.Bench, lc.Kind)
	fmt.Fprintln(tw, "sample%\ttrue error%")
	for i, f := range lc.Fractions {
		fmt.Fprintf(tw, "%.2f\t%.2f\n", 100*f, lc.TrueMAPE[i])
	}
	return tw.Flush()
}
