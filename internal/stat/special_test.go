package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLnGammaAgainstStdlib(t *testing.T) {
	for _, x := range []float64{0.1, 0.5, 1, 1.5, 2, 3.7, 10, 42.5, 100, 500} {
		want, _ := math.Lgamma(x)
		got := LnGamma(x)
		if math.Abs(got-want) > 1e-10*math.Max(1, math.Abs(want)) {
			t.Errorf("LnGamma(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestLnGammaInvalid(t *testing.T) {
	if !math.IsNaN(LnGamma(0)) || !math.IsNaN(LnGamma(-1)) {
		t.Fatal("LnGamma of non-positive input should be NaN")
	}
}

func TestLnGammaRecurrenceProperty(t *testing.T) {
	// Γ(x+1) = x Γ(x)  ⇒  lnΓ(x+1) = ln(x) + lnΓ(x)
	f := func(u uint16) bool {
		x := 0.25 + float64(u%1000)/100 // 0.25 .. 10.24
		lhs := LnGamma(x + 1)
		rhs := math.Log(x) + LnGamma(x)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	v, err := RegIncBeta(2, 3, 0)
	if err != nil || v != 0 {
		t.Fatalf("I_0 = %v, %v", v, err)
	}
	v, err = RegIncBeta(2, 3, 1)
	if err != nil || v != 1 {
		t.Fatalf("I_1 = %v, %v", v, err)
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		v, err := RegIncBeta(1, 1, x)
		if err != nil || math.Abs(v-x) > 1e-12 {
			t.Errorf("I_%v(1,1) = %v, %v", x, v, err)
		}
	}
	// I_x(2,2) = x^2(3-2x).
	for _, x := range []float64{0.2, 0.5, 0.8} {
		v, err := RegIncBeta(2, 2, x)
		want := x * x * (3 - 2*x)
		if err != nil || math.Abs(v-want) > 1e-12 {
			t.Errorf("I_%v(2,2) = %v, want %v", x, v, want)
		}
	}
}

func TestRegIncBetaSymmetryProperty(t *testing.T) {
	// I_x(a,b) = 1 - I_{1-x}(b,a)
	f := func(ai, bi, xi uint8) bool {
		a := 0.5 + float64(ai%40)/4
		b := 0.5 + float64(bi%40)/4
		x := (float64(xi) + 0.5) / 257
		v1, err1 := RegIncBeta(a, b, x)
		v2, err2 := RegIncBeta(b, a, 1-x)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(v1-(1-v2)) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncBetaErrors(t *testing.T) {
	if _, err := RegIncBeta(0, 1, 0.5); err == nil {
		t.Fatal("a=0: want error")
	}
	if _, err := RegIncBeta(1, 1, -0.1); err == nil {
		t.Fatal("x<0: want error")
	}
	if _, err := RegIncBeta(1, 1, 1.1); err == nil {
		t.Fatal("x>1: want error")
	}
}

func TestRegIncGammaLowerKnown(t *testing.T) {
	// P(1, x) = 1 - e^-x.
	for _, x := range []float64{0.1, 1, 2, 5} {
		v, err := RegIncGammaLower(1, x)
		want := 1 - math.Exp(-x)
		if err != nil || math.Abs(v-want) > 1e-12 {
			t.Errorf("P(1,%v) = %v, want %v", x, v, want)
		}
	}
	v, err := RegIncGammaLower(3, 0)
	if err != nil || v != 0 {
		t.Fatalf("P(3,0) = %v, %v", v, err)
	}
}

func TestRegIncGammaLowerMonotoneProperty(t *testing.T) {
	f := func(ai, xi uint8) bool {
		a := 0.5 + float64(ai%30)/3
		x := float64(xi) / 8
		v1, err1 := RegIncGammaLower(a, x)
		v2, err2 := RegIncGammaLower(a, x+0.5)
		if err1 != nil || err2 != nil {
			return false
		}
		return v2 >= v1-1e-12 && v1 >= -1e-12 && v2 <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncGammaLowerErrors(t *testing.T) {
	if _, err := RegIncGammaLower(0, 1); err == nil {
		t.Fatal("a=0: want error")
	}
	if _, err := RegIncGammaLower(1, -1); err == nil {
		t.Fatal("x<0: want error")
	}
}
