package stat

import (
	"testing"
	"testing/quick"
)

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(42, 7)
	b := DeriveSeed(42, 7)
	if a != b {
		t.Fatalf("DeriveSeed not deterministic: %v vs %v", a, b)
	}
}

func TestDeriveSeedDistinctStreams(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(1, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("streams %d and %d collide", i, j)
		}
		seen[s] = i
	}
}

func TestDeriveSeedDistinctMasters(t *testing.T) {
	f := func(s1, s2 int16, i uint8) bool {
		if s1 == s2 {
			return true
		}
		return DeriveSeed(int64(s1), int(i)) != DeriveSeed(int64(s2), int(i))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewSubRandReproducible(t *testing.T) {
	r1 := NewSubRand(99, 3)
	r2 := NewSubRand(99, 3)
	for i := 0; i < 10; i++ {
		if r1.Float64() != r2.Float64() {
			t.Fatal("sub-streams diverge")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := Perm(5, 100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRand(7)
	s := SampleWithoutReplacement(r, 50, 10)
	if len(s) != 10 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad sample element %d", v)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacementPanicsOnOversample(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for k > n")
		}
	}()
	SampleWithoutReplacement(NewRand(1), 3, 4)
}

func TestSplitMix64KnownSequence(t *testing.T) {
	// Reference values for SplitMix64 seeded with 0 (from the public-domain
	// reference implementation by Sebastiano Vigna).
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 step %d = %#x, want %#x", i, got, w)
		}
	}
}
