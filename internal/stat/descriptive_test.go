package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); got != 3 {
		t.Fatalf("Sum = %v, want 3", got)
	}
}

func TestVariancePopulationVsSample(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := SampleVariance(xs); !almostEq(got, 32.0/7.0, 1e-12) {
		t.Fatalf("SampleVariance = %v, want %v", got, 32.0/7.0)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if got := Variance(nil); got != 0 {
		t.Fatalf("Variance(nil) = %v", got)
	}
	if got := SampleVariance([]float64{3}); got != 0 {
		t.Fatalf("SampleVariance(single) = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 4, 1e-12) {
		t.Fatalf("GeoMean = %v, want 4", got)
	}
}

func TestGeoMeanErrors(t *testing.T) {
	if _, err := GeoMean(nil); err == nil {
		t.Fatal("GeoMean(nil): want error")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Fatal("GeoMean(negative): want error")
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Fatal("GeoMean(zero): want error")
	}
}

func TestMinMaxRange(t *testing.T) {
	xs := []float64{3, 1, 4, 1.5, 9}
	lo, err := Min(xs)
	if err != nil || lo != 1 {
		t.Fatalf("Min = %v, %v", lo, err)
	}
	hi, err := Max(xs)
	if err != nil || hi != 9 {
		t.Fatalf("Max = %v, %v", hi, err)
	}
	r, err := Range(xs)
	if err != nil || r != 9 {
		t.Fatalf("Range = %v, %v", r, err)
	}
}

func TestRangeErrors(t *testing.T) {
	if _, err := Range(nil); err == nil {
		t.Fatal("Range(nil): want error")
	}
	if _, err := Range([]float64{0, 1}); err == nil {
		t.Fatal("Range with zero min: want error")
	}
}

func TestNormalizedVarianceScaleFree(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	scaled := []float64{10, 20, 30, 40, 50}
	a := NormalizedVariance(xs)
	b := NormalizedVariance(scaled)
	if !almostEq(a, b, 1e-12) {
		t.Fatalf("NormalizedVariance not scale free: %v vs %v", a, b)
	}
}

func TestMAPE(t *testing.T) {
	got, err := MAPE([]float64{110, 90}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 10, 1e-12) {
		t.Fatalf("MAPE = %v, want 10", got)
	}
}

func TestMAPESkipsZeroTruth(t *testing.T) {
	got, err := MAPE([]float64{110, 5}, []float64{100, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 10, 1e-12) {
		t.Fatalf("MAPE = %v, want 10 (zero-truth record skipped)", got)
	}
}

func TestMAPEErrors(t *testing.T) {
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch: want error")
	}
	if _, err := MAPE(nil, nil); err == nil {
		t.Fatal("empty: want error")
	}
	if _, err := MAPE([]float64{1}, []float64{0}); err == nil {
		t.Fatal("all-zero truth: want error")
	}
}

func TestAPEs(t *testing.T) {
	got := APEs([]float64{110, 5, 80}, []float64{100, 0, 100})
	want := []float64{10, 0, 20}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("APEs[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{3, 0}, []float64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, math.Sqrt(12.5), 1e-12) {
		t.Fatalf("RMSE = %v", got)
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Fatal("empty RMSE: want error")
	}
}

func TestMedian(t *testing.T) {
	m, err := Median([]float64{5, 1, 3})
	if err != nil || m != 3 {
		t.Fatalf("odd Median = %v, %v", m, err)
	}
	m, err = Median([]float64{4, 1, 3, 2})
	if err != nil || m != 2.5 {
		t.Fatalf("even Median = %v, %v", m, err)
	}
	if _, err := Median(nil); err == nil {
		t.Fatal("Median(nil): want error")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	q, err := Quantile(xs, 0.5)
	if err != nil || q != 3 {
		t.Fatalf("Quantile(0.5) = %v, %v", q, err)
	}
	q, err = Quantile(xs, 0.25)
	if err != nil || q != 2 {
		t.Fatalf("Quantile(0.25) = %v, %v", q, err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("Quantile(1.5): want error")
	}
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	c, err := Correlation(x, y)
	if err != nil || !almostEq(c, 1, 1e-12) {
		t.Fatalf("Correlation = %v, %v", c, err)
	}
	yn := []float64{8, 6, 4, 2}
	c, err = Correlation(x, yn)
	if err != nil || !almostEq(c, -1, 1e-12) {
		t.Fatalf("anti Correlation = %v, %v", c, err)
	}
	if _, err := Correlation(x, []float64{1, 1, 1, 1}); err == nil {
		t.Fatal("constant input: want error")
	}
}

// Property: MAPE of a prediction scaled by (1+e) is |e|*100 for positive truth.
func TestMAPEScaleProperty(t *testing.T) {
	f := func(base uint8, e int8) bool {
		y := float64(base)/8 + 1 // in [1, ~33]
		scale := 1 + float64(e)/300
		got, err := MAPE([]float64{y * scale}, []float64{y})
		if err != nil {
			return false
		}
		return almostEq(got, math.Abs(float64(e)/300)*100, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is translation invariant and scales quadratically.
func TestVarianceProperties(t *testing.T) {
	f := func(a, b, c int8, shift int8) bool {
		xs := []float64{float64(a), float64(b), float64(c)}
		sh := float64(shift)
		shifted := []float64{xs[0] + sh, xs[1] + sh, xs[2] + sh}
		if !almostEq(Variance(xs), Variance(shifted), 1e-9) {
			return false
		}
		scaled := []float64{2 * xs[0], 2 * xs[1], 2 * xs[2]}
		return almostEq(4*Variance(xs), Variance(scaled), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: geometric mean lies between min and max for positive samples.
func TestGeoMeanBoundedProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g, err := GeoMean(xs)
		if err != nil {
			return false
		}
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		return g >= lo-1e-12 && g <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
