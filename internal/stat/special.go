package stat

import (
	"errors"
	"math"
)

// lanczos coefficients (g=7, n=9) for the log-gamma approximation.
var lanczos = [...]float64{
	0.99999999999980993,
	676.5203681218851,
	-1259.1392167224028,
	771.32342877765313,
	-176.61502916214059,
	12.507343278686905,
	-0.13857109526572012,
	9.9843695780195716e-6,
	1.5056327351493116e-7,
}

// LnGamma returns the natural logarithm of the Gamma function for x > 0
// using the Lanczos approximation. It agrees with math.Lgamma to ~1e-13 and
// exists so the special-function stack is self-contained and testable
// against the stdlib.
func LnGamma(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	if x < 0.5 {
		// Reflection formula keeps the approximation accurate near zero.
		return math.Log(math.Pi/math.Sin(math.Pi*x)) - LnGamma(1-x)
	}
	x--
	a := lanczos[0]
	t := x + 7.5
	for i := 1; i < len(lanczos); i++ {
		a += lanczos[i] / (x + float64(i))
	}
	return 0.5*math.Log(2*math.Pi) + (x+0.5)*math.Log(t) - t + math.Log(a)
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b),
// the CDF kernel shared by the Student-t and F distributions. It uses the
// continued-fraction expansion (Numerical Recipes betacf) with the standard
// symmetry switch for fast convergence.
func RegIncBeta(a, b, x float64) (float64, error) {
	if a <= 0 || b <= 0 {
		return 0, errors.New("stat: RegIncBeta requires a, b > 0")
	}
	if x < 0 || x > 1 {
		return 0, errors.New("stat: RegIncBeta requires x in [0,1]")
	}
	if x == 0 {
		return 0, nil
	}
	if x == 1 {
		return 1, nil
	}
	lbeta := LnGamma(a+b) - LnGamma(a) - LnGamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		cf, err := betaCF(a, b, x)
		if err != nil {
			return 0, err
		}
		return front * cf / a, nil
	}
	cf, err := betaCF(b, a, 1-x)
	if err != nil {
		return 0, err
	}
	return 1 - front*cf/b, nil
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) (float64, error) {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			return h, nil
		}
	}
	return 0, errors.New("stat: incomplete beta continued fraction did not converge")
}

// RegIncGammaLower returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a), the chi-squared CDF kernel.
func RegIncGammaLower(a, x float64) (float64, error) {
	if a <= 0 {
		return 0, errors.New("stat: RegIncGammaLower requires a > 0")
	}
	if x < 0 {
		return 0, errors.New("stat: RegIncGammaLower requires x >= 0")
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		// Series representation converges quickly here.
		ap := a
		sum := 1 / a
		del := sum
		for n := 0; n < 500; n++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				return sum * math.Exp(-x+a*math.Log(x)-LnGamma(a)), nil
			}
		}
		return 0, errors.New("stat: incomplete gamma series did not converge")
	}
	// Continued fraction for the upper tail, then complement.
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			q := math.Exp(-x+a*math.Log(x)-LnGamma(a)) * h
			return 1 - q, nil
		}
	}
	return 0, errors.New("stat: incomplete gamma continued fraction did not converge")
}

// Erf returns the error function. Delegates to the stdlib; declared here so
// downstream packages depend only on stat for special functions.
func Erf(x float64) float64 { return math.Erf(x) }
