package stat

import (
	"errors"
	"math"
)

// NormalCDF returns the CDF of the normal distribution with mean mu and
// standard deviation sigma evaluated at x.
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x < mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// StdNormalCDF returns the standard normal CDF at x.
func StdNormalCDF(x float64) float64 { return NormalCDF(x, 0, 1) }

// StudentTCDF returns the CDF of Student's t distribution with df degrees
// of freedom evaluated at t.
func StudentTCDF(t, df float64) (float64, error) {
	if df <= 0 {
		return 0, errors.New("stat: StudentTCDF requires df > 0")
	}
	x := df / (df + t*t)
	ib, err := RegIncBeta(df/2, 0.5, x)
	if err != nil {
		return 0, err
	}
	if t >= 0 {
		return 1 - 0.5*ib, nil
	}
	return 0.5 * ib, nil
}

// FCDF returns the CDF of the F distribution with (d1, d2) degrees of
// freedom evaluated at f. The partial F tests driving stepwise, forward and
// backward regression selection are built on this.
func FCDF(f, d1, d2 float64) (float64, error) {
	if d1 <= 0 || d2 <= 0 {
		return 0, errors.New("stat: FCDF requires positive degrees of freedom")
	}
	if f <= 0 {
		return 0, nil
	}
	x := d1 * f / (d1*f + d2)
	return RegIncBeta(d1/2, d2/2, x)
}

// FSurvival returns the upper-tail probability P(F > f) for the F
// distribution with (d1, d2) degrees of freedom — the p-value of a partial
// F test with statistic f.
func FSurvival(f, d1, d2 float64) (float64, error) {
	c, err := FCDF(f, d1, d2)
	if err != nil {
		return 0, err
	}
	return 1 - c, nil
}

// ChiSquareCDF returns the CDF of the chi-squared distribution with df
// degrees of freedom evaluated at x.
func ChiSquareCDF(x, df float64) (float64, error) {
	if df <= 0 {
		return 0, errors.New("stat: ChiSquareCDF requires df > 0")
	}
	if x <= 0 {
		return 0, nil
	}
	return RegIncGammaLower(df/2, x/2)
}

// TTestPValue returns the two-sided p-value for a t statistic with df
// degrees of freedom. Regression coefficient significance uses this.
func TTestPValue(t, df float64) (float64, error) {
	c, err := StudentTCDF(math.Abs(t), df)
	if err != nil {
		return 0, err
	}
	return 2 * (1 - c), nil
}

// StudentTQuantile returns the p-quantile of Student's t distribution with
// df degrees of freedom (the critical value used by prediction intervals).
// It inverts the CDF by bisection.
func StudentTQuantile(p, df float64) (float64, error) {
	if df <= 0 {
		return 0, errors.New("stat: StudentTQuantile requires df > 0")
	}
	if p <= 0 || p >= 1 {
		return 0, errors.New("stat: StudentTQuantile requires p in (0,1)")
	}
	if p == 0.5 {
		return 0, nil
	}
	// Bracket the quantile, then bisect.
	lo, hi := -1.0, 1.0
	for i := 0; i < 200; i++ {
		c, err := StudentTCDF(hi, df)
		if err != nil {
			return 0, err
		}
		if c >= p {
			break
		}
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		c, err := StudentTCDF(lo, df)
		if err != nil {
			return 0, err
		}
		if c <= p {
			break
		}
		lo *= 2
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		c, err := StudentTCDF(mid, df)
		if err != nil {
			return 0, err
		}
		if c < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10*math.Max(1, math.Abs(mid)) {
			break
		}
	}
	return (lo + hi) / 2, nil
}
