package stat

import "math/rand"

// SplitMix64 advances the SplitMix64 generator state and returns the next
// value. It is used to derive statistically independent sub-seeds from a
// master seed so parallel work items (design-space simulations, CV folds,
// ensemble members) get reproducible private random streams regardless of
// scheduling order.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed returns a deterministic sub-seed for stream index i under the
// given master seed. Distinct (seed, i) pairs yield well-separated seeds.
func DeriveSeed(seed int64, i int) int64 {
	s := uint64(seed) ^ 0x8e95_61b8_4ca5_d6e1
	s += uint64(i+1) * 0x9e3779b97f4a7c15
	return int64(SplitMix64(&s))
}

// NewRand returns a new deterministic PRNG seeded with seed.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// NewSubRand returns a deterministic PRNG for stream i of the master seed.
func NewSubRand(seed int64, i int) *rand.Rand {
	return NewRand(DeriveSeed(seed, i))
}

// Perm returns a deterministic pseudo-random permutation of n elements for
// the given seed.
func Perm(seed int64, n int) []int {
	return NewRand(seed).Perm(n)
}

// SampleWithoutReplacement returns k distinct indices drawn from [0, n)
// using the given PRNG, in random order. It panics if k > n because the
// request is unsatisfiable and always a programming error.
func SampleWithoutReplacement(r *rand.Rand, n, k int) []int {
	if k > n {
		panic("stat: sample size exceeds population")
	}
	p := r.Perm(n)
	return p[:k]
}
