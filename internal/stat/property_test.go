package stat

import (
	"math"
	"testing"
)

// Property-based checks over seeded randomized inputs: the paper's error
// metric must obey its algebraic identities on every sample the framework
// could conceivably produce, not just on hand-picked vectors.

// randVec draws n values in (lo, hi) from r, never exactly zero.
func randVec(r interface{ Float64() float64 }, n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		v := lo + (hi-lo)*r.Float64()
		if v == 0 {
			v = hi / 2
		}
		out[i] = v
	}
	return out
}

func TestMAPEPropertiesRandomized(t *testing.T) {
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		r := NewRand(DeriveSeed(42, trial))
		n := 1 + r.Intn(64)
		y := randVec(r, n, 0.5, 1000)
		yhat := randVec(r, n, -1000, 1000)

		m, err := MAPE(yhat, y)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Non-negativity and finiteness.
		if m < 0 || math.IsNaN(m) || math.IsInf(m, 0) {
			t.Fatalf("trial %d: MAPE = %v, want finite non-negative", trial, m)
		}
		// Identity: a perfect prediction has zero error.
		if z, _ := MAPE(y, y); z != 0 {
			t.Fatalf("trial %d: MAPE(y, y) = %v, want 0", trial, z)
		}
		// Scale invariance: MAPE is a relative metric, so scaling both
		// vectors by any positive constant must not change it.
		for _, c := range []float64{0.001, 3, 1e6} {
			cy := make([]float64, n)
			cyhat := make([]float64, n)
			for i := range y {
				cy[i] = c * y[i]
				cyhat[i] = c * yhat[i]
			}
			sm, err := MAPE(cyhat, cy)
			if err != nil {
				t.Fatalf("trial %d scale %v: %v", trial, c, err)
			}
			if relDiff(sm, m) > 1e-9 {
				t.Fatalf("trial %d: MAPE not scale invariant at c=%v: %v vs %v", trial, c, sm, m)
			}
		}
		// Agreement with the per-record decomposition: the mean of APEs
		// equals MAPE when no true value is zero.
		apes := APEs(yhat, y)
		if len(apes) != n {
			t.Fatalf("trial %d: APEs length %d, want %d", trial, len(apes), n)
		}
		for i, a := range apes {
			if a < 0 {
				t.Fatalf("trial %d: APE[%d] = %v < 0", trial, i, a)
			}
		}
		if relDiff(Mean(apes), m) > 1e-9 {
			t.Fatalf("trial %d: Mean(APEs) = %v, MAPE = %v", trial, Mean(apes), m)
		}
		// Triangle-ish bound: MAPE of a prediction shifted toward truth by
		// averaging can never exceed the original by more than rounding.
		mid := make([]float64, n)
		for i := range y {
			mid[i] = (yhat[i] + y[i]) / 2
		}
		hm, _ := MAPE(mid, y)
		if hm > m/2+1e-9 {
			t.Fatalf("trial %d: halfway MAPE %v exceeds half of %v", trial, hm, m)
		}
	}
}

func TestMAPEZeroHandlingRandomized(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		r := NewRand(DeriveSeed(43, trial))
		n := 2 + r.Intn(32)
		y := randVec(r, n, 1, 100)
		yhat := randVec(r, n, 1, 100)
		// Zero out a random subset of true values; MAPE must equal the
		// MAPE over the surviving pairs.
		var keptY, keptYhat []float64
		for i := range y {
			if r.Float64() < 0.3 {
				y[i] = 0
			} else {
				keptY = append(keptY, y[i])
				keptYhat = append(keptYhat, yhat[i])
			}
		}
		got, err := MAPE(yhat, y)
		if len(keptY) == 0 {
			if err == nil {
				t.Fatalf("trial %d: all-zero truth accepted", trial)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, _ := MAPE(keptYhat, keptY)
		if relDiff(got, want) > 1e-12 {
			t.Fatalf("trial %d: zero-skipping MAPE %v, want %v", trial, got, want)
		}
	}
}

func TestDescriptiveIdentitiesRandomized(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		r := NewRand(DeriveSeed(44, trial))
		n := 1 + r.Intn(128)
		xs := randVec(r, n, -50, 50)
		// Variance is non-negative and consistent with StdDev².
		v := Variance(xs)
		if v < 0 {
			t.Fatalf("trial %d: variance %v < 0", trial, v)
		}
		if sd := StdDev(xs); relDiff(sd*sd, v) > 1e-9 && v > 1e-12 {
			t.Fatalf("trial %d: StdDev² %v != Variance %v", trial, sd*sd, v)
		}
		// Min ≤ Median ≤ Max, and Mean within [Min, Max].
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		md, err := Median(xs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if md < mn-1e-12 || md > mx+1e-12 {
			t.Fatalf("trial %d: median %v outside [%v, %v]", trial, md, mn, mx)
		}
		if m := Mean(xs); m < mn-1e-9 || m > mx+1e-9 {
			t.Fatalf("trial %d: mean %v outside [%v, %v]", trial, m, mn, mx)
		}
		// Quantile is monotone in q.
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 1} {
			qa, err := Quantile(xs, q)
			if err != nil {
				t.Fatalf("trial %d q=%v: %v", trial, q, err)
			}
			if qa < prev-1e-12 {
				t.Fatalf("trial %d: quantiles not monotone at q=%v: %v < %v", trial, q, qa, prev)
			}
			prev = qa
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}
