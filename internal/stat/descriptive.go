// Package stat provides the statistical machinery the predictive-modeling
// framework is built on: descriptive statistics, special functions
// (log-gamma, regularized incomplete beta and gamma), the Normal, Student-t
// and F distributions used by the regression variable-selection tests, and
// deterministic random-stream derivation used to keep every experiment
// reproducible regardless of parallelism.
package stat

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by descriptive statistics that are undefined on an
// empty sample.
var ErrEmpty = errors.New("stat: empty sample")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the population variance of xs (divide by n). The paper
// reports population variances for its workload ranges, so that convention
// is used throughout the calibration code.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance of xs (divide by n-1).
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SampleStdDev returns the sample standard deviation of xs.
func SampleStdDev(xs []float64) float64 { return math.Sqrt(SampleVariance(xs)) }

// GeoMean returns the geometric mean of xs. All elements must be positive;
// a non-positive element yields an error. SPEC ratings are geometric means
// of per-application performance ratios, so this is the rating kernel.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stat: geometric mean of non-positive value")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// Min returns the minimum of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Range returns max/min, the paper's definition of the spread of a set of
// performance numbers ("the best system has 1.40 times better performance
// than the worst system"). All elements must be positive.
func Range(xs []float64) (float64, error) {
	lo, err := Min(xs)
	if err != nil {
		return 0, err
	}
	hi, _ := Max(xs)
	if lo <= 0 {
		return 0, errors.New("stat: range of non-positive values")
	}
	return hi / lo, nil
}

// NormalizedVariance returns the population variance of xs after dividing
// every element by the sample mean. The paper reports this scale-free
// variance alongside the range for both the simulation outcomes and the
// SPEC families.
func NormalizedVariance(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	norm := make([]float64, len(xs))
	for i, x := range xs {
		norm[i] = x / m
	}
	return Variance(norm)
}

// MAPE returns the mean absolute percentage error 100*|yhat-y|/y averaged
// over all pairs, the paper's error metric (Section 4.2). Records with a
// true value of zero are skipped; if every record is skipped MAPE returns
// an error.
func MAPE(yhat, y []float64) (float64, error) {
	if len(yhat) != len(y) {
		return 0, errors.New("stat: MAPE length mismatch")
	}
	if len(y) == 0 {
		return 0, ErrEmpty
	}
	s, n := 0.0, 0
	for i := range y {
		if y[i] == 0 {
			continue
		}
		s += 100 * math.Abs(yhat[i]-y[i]) / math.Abs(y[i])
		n++
	}
	if n == 0 {
		return 0, errors.New("stat: MAPE undefined, all true values zero")
	}
	return s / float64(n), nil
}

// APEs returns the individual absolute percentage errors 100*|yhat-y|/y.
// Pairs with y == 0 produce a NaN-free 0 contribution and are reported as 0.
func APEs(yhat, y []float64) []float64 {
	out := make([]float64, len(y))
	for i := range y {
		if y[i] == 0 {
			out[i] = 0
			continue
		}
		out[i] = 100 * math.Abs(yhat[i]-y[i]) / math.Abs(y[i])
	}
	return out
}

// RMSE returns the root mean squared error between yhat and y.
func RMSE(yhat, y []float64) (float64, error) {
	if len(yhat) != len(y) {
		return 0, errors.New("stat: RMSE length mismatch")
	}
	if len(y) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for i := range y {
		d := yhat[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(y))), nil
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2], nil
	}
	return (cp[n/2-1] + cp[n/2]) / 2, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stat: quantile out of [0,1]")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo], nil
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac, nil
}

// Correlation returns the Pearson correlation coefficient between x and y.
func Correlation(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stat: correlation length mismatch")
	}
	if len(x) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stat: correlation undefined for constant input")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
