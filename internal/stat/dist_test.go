package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnown(t *testing.T) {
	cases := []struct{ x, mu, sigma, want float64 }{
		{0, 0, 1, 0.5},
		{1.96, 0, 1, 0.9750021048517795},
		{-1.96, 0, 1, 0.0249978951482205},
		{10, 10, 2, 0.5},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x, c.mu, c.sigma); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NormalCDF(%v,%v,%v) = %v, want %v", c.x, c.mu, c.sigma, got, c.want)
		}
	}
}

func TestNormalCDFDegenerateSigma(t *testing.T) {
	if got := NormalCDF(1, 2, 0); got != 0 {
		t.Fatalf("below point mass: %v", got)
	}
	if got := NormalCDF(3, 2, 0); got != 1 {
		t.Fatalf("above point mass: %v", got)
	}
}

func TestStudentTCDFKnown(t *testing.T) {
	// t=0 → 0.5 for any df; large df → approaches normal.
	for _, df := range []float64{1, 5, 30} {
		v, err := StudentTCDF(0, df)
		if err != nil || math.Abs(v-0.5) > 1e-12 {
			t.Errorf("T(0; %v) = %v, %v", df, v, err)
		}
	}
	// t_{0.975, 10} quantile is 2.228139; CDF there should be 0.975.
	v, err := StudentTCDF(2.2281388519649385, 10)
	if err != nil || math.Abs(v-0.975) > 1e-6 {
		t.Errorf("T(2.228; 10) = %v, %v", v, err)
	}
	// Cauchy (df=1): CDF(1) = 0.75.
	v, err = StudentTCDF(1, 1)
	if err != nil || math.Abs(v-0.75) > 1e-9 {
		t.Errorf("T(1; 1) = %v, %v", v, err)
	}
}

func TestStudentTSymmetryProperty(t *testing.T) {
	f := func(ti int8, dfi uint8) bool {
		tt := float64(ti) / 16
		df := 1 + float64(dfi%60)
		a, err1 := StudentTCDF(tt, df)
		b, err2 := StudentTCDF(-tt, df)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a+b-1) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFCDFKnown(t *testing.T) {
	// F(1,1): CDF(1) = 0.5.
	v, err := FCDF(1, 1, 1)
	if err != nil || math.Abs(v-0.5) > 1e-9 {
		t.Errorf("F(1;1,1) = %v, %v", v, err)
	}
	// F distribution relationship: if T ~ t(df) then T^2 ~ F(1, df).
	const tcrit, df = 2.2281388519649385, 10.0
	v, err = FCDF(tcrit*tcrit, 1, df)
	if err != nil || math.Abs(v-0.95) > 1e-6 {
		t.Errorf("F(t^2;1,10) = %v, want 0.95", v)
	}
	v, err = FCDF(0, 3, 4)
	if err != nil || v != 0 {
		t.Errorf("F(0) = %v, %v", v, err)
	}
}

func TestFSurvivalComplement(t *testing.T) {
	c, err := FCDF(2.5, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	s, err := FSurvival(2.5, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c+s-1) > 1e-12 {
		t.Fatalf("CDF + survival = %v", c+s)
	}
}

func TestFCDFMonotoneProperty(t *testing.T) {
	f := func(fi uint8, d1i, d2i uint8) bool {
		fv := float64(fi) / 16
		d1 := 1 + float64(d1i%20)
		d2 := 1 + float64(d2i%20)
		a, err1 := FCDF(fv, d1, d2)
		b, err2 := FCDF(fv+0.25, d1, d2)
		if err1 != nil || err2 != nil {
			return false
		}
		return b >= a-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChiSquareCDFKnown(t *testing.T) {
	// χ²(2) is Exp(1/2): CDF(x) = 1 - e^{-x/2}.
	for _, x := range []float64{0.5, 1, 3, 6} {
		v, err := ChiSquareCDF(x, 2)
		want := 1 - math.Exp(-x/2)
		if err != nil || math.Abs(v-want) > 1e-12 {
			t.Errorf("χ²(%v;2) = %v, want %v", x, v, want)
		}
	}
}

func TestTTestPValue(t *testing.T) {
	// |t| = 2.228 with df 10 → p = 0.05.
	p, err := TTestPValue(2.2281388519649385, 10)
	if err != nil || math.Abs(p-0.05) > 1e-6 {
		t.Fatalf("p = %v, %v", p, err)
	}
	pneg, err := TTestPValue(-2.2281388519649385, 10)
	if err != nil || math.Abs(pneg-p) > 1e-12 {
		t.Fatalf("p-value not symmetric: %v vs %v", pneg, p)
	}
}

func TestDistErrors(t *testing.T) {
	if _, err := StudentTCDF(1, 0); err == nil {
		t.Fatal("t with df=0: want error")
	}
	if _, err := FCDF(1, 0, 5); err == nil {
		t.Fatal("F with d1=0: want error")
	}
	if _, err := ChiSquareCDF(1, 0); err == nil {
		t.Fatal("χ² with df=0: want error")
	}
}

func TestStudentTQuantile(t *testing.T) {
	// t(0.975, 10) = 2.228139.
	q, err := StudentTQuantile(0.975, 10)
	if err != nil || math.Abs(q-2.2281388519649385) > 1e-5 {
		t.Fatalf("q = %v, %v", q, err)
	}
	// Median is zero; symmetry holds.
	q, err = StudentTQuantile(0.5, 7)
	if err != nil || q != 0 {
		t.Fatalf("median = %v, %v", q, err)
	}
	qlo, err := StudentTQuantile(0.05, 12)
	if err != nil {
		t.Fatal(err)
	}
	qhi, err := StudentTQuantile(0.95, 12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qlo+qhi) > 1e-6 {
		t.Fatalf("quantiles not symmetric: %v vs %v", qlo, qhi)
	}
	if _, err := StudentTQuantile(0, 5); err == nil {
		t.Fatal("p=0: want error")
	}
	if _, err := StudentTQuantile(0.5, 0); err == nil {
		t.Fatal("df=0: want error")
	}
}

func TestStudentTQuantileInvertsCDF(t *testing.T) {
	for _, df := range []float64{1, 4, 25} {
		for _, p := range []float64{0.01, 0.2, 0.6, 0.9, 0.999} {
			q, err := StudentTQuantile(p, df)
			if err != nil {
				t.Fatal(err)
			}
			c, err := StudentTCDF(q, df)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(c-p) > 1e-7 {
				t.Fatalf("CDF(Q(%v; df=%v)) = %v", p, df, c)
			}
		}
	}
}
