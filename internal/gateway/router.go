package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"perfpred/internal/predcache"
	"perfpred/internal/serve"
)

// routingKey projects a predict request body onto the 64-bit keyspace
// the replicas' prediction caches are keyed in. Two byte-identical
// bodies always produce the same key, and — the property cache affinity
// actually needs — two bodies naming the same model and carrying the
// same feature values produce the same key even if their JSON framing
// differs (single-row vs one-element batch, whitespace, field order).
//
// The projection reuses the predcache primitives end to end: each row's
// cells become float64s fed through predcache.HashRow (the cache's own
// row hash), and the model name plus per-row hashes fold together with
// predcache.Combine. A body that fails strict decoding gets no key
// (ok=false); the gateway routes it round-robin and lets the replica
// produce the authoritative 4xx.
func routingKey(body []byte) (key uint64, ok bool) {
	req, err := serve.DecodePredictRequest(bytes.NewReader(body))
	if err != nil {
		return 0, false
	}
	rows := req.Rows
	if req.Row != nil {
		rows = [][]any{req.Row}
	}
	key = predcache.HashString(req.Model)
	cells := make([]float64, 0, 16)
	for _, row := range rows {
		cells = cells[:0]
		for _, cell := range row {
			cells = append(cells, projectCell(cell))
		}
		key = predcache.Combine(key, predcache.HashRow(cells))
	}
	return key, true
}

// projectCell maps one wire cell onto a float64 for routing. The
// mapping only has to be deterministic and value-sensitive — replicas
// re-validate every cell against the model schema, so a lossy
// projection costs at worst a cache-affinity miss, never correctness.
func projectCell(v any) float64 {
	switch c := v.(type) {
	case json.Number:
		// Prefer the numeric value so "2" and "2.0" (equal after schema
		// resolution, therefore one cache row) route identically.
		if f, err := c.Float64(); err == nil {
			return f
		}
		return float64(predcache.HashString(string(c)))
	case string:
		return float64(predcache.HashString(c))
	case bool:
		if c {
			return 1
		}
		return 0
	case float64: // a non-UseNumber decoder upstream
		return c
	case nil:
		return float64(predcache.HashString("<null>"))
	default:
		return float64(predcache.HashString(fmt.Sprint(c)))
	}
}

// order ranks every replica by rendezvous (highest-random-weight) score
// for key, best first. Each replica's score is a deterministic hash of
// (replica identity, key), so:
//
//   - a given key always prefers the same replica while the replica set
//     is stable — that replica's cache holds the key's predictions;
//   - ejecting a replica only moves the keys it owned (each falls back
//     to its own second choice), leaving every other key's cache-warm
//     home untouched — the property plain mod-N hashing lacks;
//   - the ranking doubles as the hedge/retry fallback order: position
//     k+1 is exactly where the key's cache entries migrate while
//     position k is down.
func (g *Gateway) order(key uint64) []*replica {
	type scored struct {
		rep   *replica
		score uint64
	}
	ranked := make([]scored, len(g.reps))
	for i, rep := range g.reps {
		ranked[i] = scored{rep, predcache.Combine(rep.id, key)}
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].score != ranked[b].score {
			return ranked[a].score > ranked[b].score
		}
		return ranked[a].rep.idx < ranked[b].rep.idx // total order tiebreak
	})
	out := make([]*replica, len(ranked))
	for i, s := range ranked {
		out[i] = s.rep
	}
	return out
}

// spreadOrder is the non-affine fallback ranking for requests without a
// routing key (malformed bodies, admin proxying): round-robin rotation
// of the replica list, so broken traffic cannot pile onto one replica.
func (g *Gateway) spreadOrder() []*replica {
	start := int(g.rr.Add(1)-1) % len(g.reps)
	out := make([]*replica, 0, len(g.reps))
	for i := 0; i < len(g.reps); i++ {
		out = append(out, g.reps[(start+i)%len(g.reps)])
	}
	return out
}
