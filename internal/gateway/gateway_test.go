package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perfpred/internal/faultinject"
	"perfpred/internal/obs"
)

// fakeReplica is a scriptable upstream standing in for perfpredd: it
// answers /healthz and /v1/predict, counts predicts, and can be made to
// stall, fail transport (server stopped), or answer canned statuses.
type fakeReplica struct {
	srv      *httptest.Server
	predicts atomic.Int64
	probes   atomic.Int64

	mu      sync.Mutex
	stall   time.Duration
	status  int
	body    string
	healthy bool
}

func newFakeReplica(t *testing.T) *fakeReplica {
	t.Helper()
	f := &fakeReplica{status: http.StatusOK, healthy: true}
	f.body = `{"model":"m","predictions":[1]}`
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		f.probes.Add(1)
		f.mu.Lock()
		ok := f.healthy
		f.mu.Unlock()
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) {
		f.predicts.Add(1)
		io.Copy(io.Discard, r.Body) //nolint:errcheck
		f.mu.Lock()
		stall, status, body := f.stall, f.status, f.body
		f.mu.Unlock()
		if stall > 0 {
			select {
			case <-time.After(stall):
			case <-r.Context().Done():
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "3")
		}
		w.WriteHeader(status)
		fmt.Fprint(w, body)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeReplica) addr() string { return strings.TrimPrefix(f.srv.URL, "http://") }

func (f *fakeReplica) set(fn func(*fakeReplica)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn(f)
}

func newTestGateway(t *testing.T, cfg Config, reps ...*fakeReplica) *Gateway {
	t.Helper()
	for _, r := range reps {
		cfg.Replicas = append(cfg.Replicas, r.addr())
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(g.Close)
	return g
}

func predictBody(model string, cells ...float64) string {
	row, _ := json.Marshal(cells)
	return fmt.Sprintf(`{"model":%q,"row":%s}`, model, row)
}

func doPredict(t *testing.T, g *Gateway, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	return rec
}

// TestRoutingKeyFraming pins the affinity contract: the key depends on
// (model, row values), not on JSON framing — single-row and one-element
// batch forms, whitespace, field order and numeric spelling all
// coincide; any value or model change separates.
func TestRoutingKeyFraming(t *testing.T) {
	base, ok := routingKey([]byte(`{"model":"m","row":[1,2.5,3]}`))
	if !ok {
		t.Fatal("routingKey rejected a valid body")
	}
	same := []string{
		`{"model":"m","rows":[[1,2.5,3]]}`,
		` { "row" : [ 1.0 , 2.5 , 3 ] , "model" : "m" } `,
	}
	for _, s := range same {
		if k, ok := routingKey([]byte(s)); !ok || k != base {
			t.Errorf("body %s got key %#x ok=%v, want %#x", s, k, ok, base)
		}
	}
	diff := []string{
		`{"model":"m2","row":[1,2.5,3]}`,
		`{"model":"m","row":[1,2.5,4]}`,
		`{"model":"m","row":[1,2.5]}`,
		`{"model":"m","rows":[[1,2.5,3],[1,2.5,3]]}`,
	}
	for _, s := range diff {
		if k, ok := routingKey([]byte(s)); !ok || k == base {
			t.Errorf("body %s should key differently from the base", s)
		}
	}
	if _, ok := routingKey([]byte(`{"not":"a request"}`)); ok {
		t.Error("routingKey accepted a malformed body")
	}
}

// TestRendezvousStability pins the two rendezvous properties routing
// relies on: determinism (same key, same order) and minimal disruption
// (removing one replica only moves the keys it owned).
func TestRendezvousStability(t *testing.T) {
	addrs := []string{"a:1", "b:2", "c:3"}
	full := &Gateway{}
	for i, addr := range addrs {
		full.reps = append(full.reps, newReplica(i, addr))
	}
	// without[j] is the same tier with replica j removed; replica
	// identities are address-derived, so the survivors keep theirs.
	without := make([]*Gateway, len(addrs))
	for j := range addrs {
		without[j] = &Gateway{}
		for i, addr := range addrs {
			if i != j {
				without[j].reps = append(without[j].reps, newReplica(len(without[j].reps), addr))
			}
		}
	}
	const keys = 2048
	owners := map[string]int{}
	for k := uint64(0); k < keys; k++ {
		o1, o2 := full.order(k), full.order(k)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("order not deterministic for key %d", k)
			}
		}
		owner := o1[0]
		owners[owner.addr]++
		for j := range addrs {
			got := without[j].order(k)[0].addr
			if addrs[j] == owner.addr {
				// The key's owner left: it must fall back to exactly its
				// second choice in the full ordering.
				if got != o1[1].addr {
					t.Fatalf("key %d fell back to %s, want second choice %s", k, got, o1[1].addr)
				}
			} else if got != owner.addr {
				// Some other replica left: this key must not move.
				t.Fatalf("key %d moved from %s to %s when unrelated replica %s left",
					k, owner.addr, got, addrs[j])
			}
		}
	}
	// Ownership should spread across all three replicas, roughly evenly.
	if len(owners) != 3 {
		t.Fatalf("expected 3 owners, got %v", owners)
	}
	for addr, n := range owners {
		if n < keys/6 {
			t.Errorf("replica %s owns only %d/%d keys — rendezvous is badly skewed", addr, n, keys)
		}
	}
}

// TestAffinityAndPassThrough drives real requests and checks that a
// repeated row lands on exactly one replica and its response (headers
// included) relays byte-for-byte.
func TestAffinityAndPassThrough(t *testing.T) {
	r1, r2 := newFakeReplica(t), newFakeReplica(t)
	g := newTestGateway(t, Config{ProbeInterval: time.Hour}, r1, r2)

	body := predictBody("pd-lre", 1, 2, 3)
	hit := map[string]int{}
	for i := 0; i < 10; i++ {
		rec := doPredict(t, g, body)
		if rec.Code != http.StatusOK {
			t.Fatalf("predict %d: status %d: %s", i, rec.Code, rec.Body)
		}
		if got := rec.Body.String(); got != `{"model":"m","predictions":[1]}` {
			t.Fatalf("body not relayed byte-for-byte: %q", got)
		}
		if route := rec.Header().Get(HeaderRoute); route != RoutePrimary {
			t.Fatalf("expected primary route, got %q", route)
		}
		hit[rec.Header().Get(HeaderReplica)]++
	}
	if len(hit) != 1 {
		t.Fatalf("one hot row hit %d replicas (%v); want exactly 1", len(hit), hit)
	}
	if r1.predicts.Load()+r2.predicts.Load() != 10 {
		t.Fatalf("replicas saw %d+%d predicts, want 10 total", r1.predicts.Load(), r2.predicts.Load())
	}
}

// TestReplicaStatusPassThrough pins that replica 4xx/5xx terminal
// responses — including 429 backpressure with Retry-After — relay
// unchanged rather than triggering gateway retries.
func TestReplicaStatusPassThrough(t *testing.T) {
	r1 := newFakeReplica(t)
	r1.set(func(f *fakeReplica) {
		f.status = http.StatusTooManyRequests
		f.body = `{"error":"serve: admission queue full"}`
	})
	g := newTestGateway(t, Config{ProbeInterval: time.Hour}, r1)

	rec := doPredict(t, g, predictBody("m", 1))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q not passed through", ra)
	}
	if got := rec.Body.String(); got != `{"error":"serve: admission queue full"}` {
		t.Fatalf("error body not relayed: %q", got)
	}
	if n := r1.predicts.Load(); n != 1 {
		t.Fatalf("replica saw %d attempts, want 1 (no retry on HTTP status)", n)
	}
}

// TestRetryOnDeadReplica kills the routed replica's server and checks
// the request transparently lands on the survivor with route=retry.
func TestRetryOnDeadReplica(t *testing.T) {
	r1, r2 := newFakeReplica(t), newFakeReplica(t)
	g := newTestGateway(t, Config{ProbeInterval: time.Hour, FailThreshold: 100}, r1, r2)

	// Find which replica owns this row, then kill it.
	body := predictBody("m", 9, 9, 9)
	rec := doPredict(t, g, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("warmup failed: %d", rec.Code)
	}
	owner := rec.Header().Get(HeaderReplica)
	for _, f := range []*fakeReplica{r1, r2} {
		if f.addr() == owner {
			f.srv.CloseClientConnections()
			f.srv.Close()
		}
	}
	rec = doPredict(t, g, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict after kill: status %d: %s", rec.Code, rec.Body)
	}
	if route := rec.Header().Get(HeaderRoute); route != RouteRetry {
		t.Fatalf("route %q, want retry", route)
	}
	if got := rec.Header().Get(HeaderReplica); got == owner {
		t.Fatalf("retry landed on the dead replica %s", got)
	}
	snap := g.MetricsRegistry().Snapshot()
	if snap.Counters[obs.MetricGatewayRetries] == 0 {
		t.Fatal("retry counter did not move")
	}
}

// TestHedgeFirstResponseWins stalls the primary long enough that the
// hedge answers first, and checks the hedge's response wins.
func TestHedgeFirstResponseWins(t *testing.T) {
	r1, r2 := newFakeReplica(t), newFakeReplica(t)
	g := newTestGateway(t, Config{
		ProbeInterval: time.Hour,
		HedgeDelay:    20 * time.Millisecond,
	}, r1, r2)

	// Stall both, then un-stall whichever is NOT the owner so the hedge
	// target answers instantly while the primary sleeps.
	body := predictBody("m", 5, 5)
	owner := doPredict(t, g, body).Header().Get(HeaderReplica)
	for _, f := range []*fakeReplica{r1, r2} {
		if f.addr() == owner {
			f.set(func(x *fakeReplica) { x.stall = 400 * time.Millisecond })
		}
	}
	start := time.Now()
	rec := doPredict(t, g, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged predict: status %d: %s", rec.Code, rec.Body)
	}
	if route := rec.Header().Get(HeaderRoute); route != RouteHedge {
		t.Fatalf("route %q, want hedge", route)
	}
	if rep := rec.Header().Get(HeaderReplica); rep == owner {
		t.Fatalf("winning replica %s is the stalled primary", rep)
	}
	if elapsed := time.Since(start); elapsed >= 400*time.Millisecond {
		t.Fatalf("hedge did not cut tail latency: took %v", elapsed)
	}
	snap := g.MetricsRegistry().Snapshot()
	if snap.Counters[obs.MetricGatewayHedges] == 0 || snap.Counters[obs.MetricGatewayHedgeWins] == 0 {
		t.Fatalf("hedge counters did not move: %+v", snap.Counters)
	}
}

// TestEjectAndReadmit drives the health-state machine end to end with
// active probes: a failing replica is ejected (and takes no traffic),
// then readmitted once probes succeed again.
func TestEjectAndReadmit(t *testing.T) {
	r1, r2 := newFakeReplica(t), newFakeReplica(t)
	g := newTestGateway(t, Config{
		ProbeInterval:    5 * time.Millisecond,
		FailThreshold:    2,
		ReadmitThreshold: 2,
		MaxProbeBackoff:  10 * time.Millisecond,
	}, r1, r2)

	r1.set(func(f *fakeReplica) { f.healthy = false })
	deadline := time.Now().Add(5 * time.Second)
	var ejected *replica
	for _, rep := range g.reps {
		if rep.addr == r1.addr() {
			ejected = rep
		}
	}
	for ejected.isHealthy() {
		if time.Now().After(deadline) {
			t.Fatal("replica was never ejected")
		}
		time.Sleep(time.Millisecond)
	}
	// While ejected, every request routes to the survivor.
	for i := 0; i < 8; i++ {
		rec := doPredict(t, g, predictBody("m", float64(i)))
		if rec.Code != http.StatusOK {
			t.Fatalf("predict during ejection: %d", rec.Code)
		}
		if rep := rec.Header().Get(HeaderReplica); rep != r2.addr() {
			t.Fatalf("request hit ejected replica %s", rep)
		}
	}
	r1.set(func(f *fakeReplica) { f.healthy = true })
	for !ejected.isHealthy() {
		if time.Now().After(deadline) {
			t.Fatal("replica was never readmitted")
		}
		time.Sleep(time.Millisecond)
	}
	rep := g.Report()
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	if rep.Ejects == 0 || rep.Readmits == 0 {
		t.Fatalf("transitions not recorded: %d ejects %d readmits", rep.Ejects, rep.Readmits)
	}
}

// TestGatewayShedsAtCap fills the single replica's in-flight budget
// with stalled requests and checks the overflow request sheds 429 with
// Retry-After at the gateway.
func TestGatewayShedsAtCap(t *testing.T) {
	r1 := newFakeReplica(t)
	r1.set(func(f *fakeReplica) { f.stall = 300 * time.Millisecond })
	g := newTestGateway(t, Config{ProbeInterval: time.Hour, MaxInFlight: 2}, r1)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			doPredict(t, g, predictBody("m", 1))
		}()
	}
	// Wait until both stalled requests occupy their slots.
	deadline := time.Now().Add(2 * time.Second)
	for g.reps[0].inflight.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("stalled requests never occupied the in-flight slots")
		}
		time.Sleep(time.Millisecond)
	}
	rec := doPredict(t, g, predictBody("m", 1))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow request got %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("gateway shed carries no Retry-After")
	}
	wg.Wait()
	snap := g.MetricsRegistry().Snapshot()
	if snap.Counters[obs.MetricGatewayShed] == 0 {
		t.Fatal("shed counter did not move")
	}
}

// TestMalformedBodyForwards pins that a body the gateway cannot key
// still reaches a replica (which owns the authoritative 4xx) instead of
// being answered by the gateway.
func TestMalformedBodyForwards(t *testing.T) {
	r1 := newFakeReplica(t)
	r1.set(func(f *fakeReplica) {
		f.status = http.StatusBadRequest
		f.body = `{"error":"serve: predict request has no model"}`
	})
	g := newTestGateway(t, Config{ProbeInterval: time.Hour}, r1)

	rec := doPredict(t, g, `{"rows":[[1]]}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want replica's 400", rec.Code)
	}
	if got := rec.Body.String(); got != `{"error":"serve: predict request has no model"}` {
		t.Fatalf("replica error not relayed: %q", got)
	}
	if r1.predicts.Load() != 1 {
		t.Fatal("malformed body never reached the replica")
	}
}

// TestDrainRefusesNewWork checks Close's drain contract: after Close,
// new predicts get 503 and Close has waited for in-flight work.
func TestDrainRefusesNewWork(t *testing.T) {
	r1 := newFakeReplica(t)
	r1.set(func(f *fakeReplica) { f.stall = 100 * time.Millisecond })
	g := newTestGateway(t, Config{ProbeInterval: time.Hour}, r1)

	done := make(chan int, 1)
	go func() {
		done <- doPredict(t, g, predictBody("m", 1)).Code
	}()
	deadline := time.Now().Add(2 * time.Second)
	for g.reps[0].inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never started")
		}
		time.Sleep(time.Millisecond)
	}
	g.Close() // must wait for the stalled request
	select {
	case code := <-done:
		if code != http.StatusOK {
			t.Fatalf("in-flight request during drain got %d, want 200", code)
		}
	default:
		t.Fatal("Close returned before the in-flight request finished")
	}
	rec := doPredict(t, g, predictBody("m", 1))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain predict got %d, want 503", rec.Code)
	}
}

// TestAllReplicasDown pins the terminal failure modes: transport
// failure on every replica yields 502; zero healthy replicas yields 503.
func TestAllReplicasDown(t *testing.T) {
	r1 := newFakeReplica(t)
	g := newTestGateway(t, Config{ProbeInterval: time.Hour, FailThreshold: 100}, r1)
	r1.srv.CloseClientConnections()
	r1.srv.Close()

	rec := doPredict(t, g, predictBody("m", 1))
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("all-transport-failed got %d, want 502", rec.Code)
	}

	// Now eject it and check the 503 path.
	g.reps[0].mu.Lock()
	g.ejectLocked(g.reps[0])
	g.reps[0].mu.Unlock()
	rec = doPredict(t, g, predictBody("m", 1))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("no-healthy-replicas got %d, want 503", rec.Code)
	}
}

// TestGatewayFaultPoints exercises the three injected gateway faults:
// a route fault answers 503 without touching a replica, a hedge fault
// suppresses the hedge, and a probe fault ejects a healthy replica.
func TestGatewayFaultPoints(t *testing.T) {
	t.Run("route", func(t *testing.T) {
		restore := faultinject.Activate(faultinject.New(1, map[faultinject.Point]faultinject.Plan{
			faultinject.GatewayRoute: {Every: 1, Err: context.DeadlineExceeded},
		}))
		defer restore()
		r1 := newFakeReplica(t)
		g := newTestGateway(t, Config{ProbeInterval: time.Hour}, r1)
		rec := doPredict(t, g, predictBody("m", 1))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("route fault got %d, want 503", rec.Code)
		}
		if r1.predicts.Load() != 0 {
			t.Fatal("route fault still consumed replica capacity")
		}
		if g.MetricsRegistry().Snapshot().Counters[obs.MetricGatewayFaults] == 0 {
			t.Fatal("fault counter did not move")
		}
	})
	t.Run("hedge suppressed", func(t *testing.T) {
		restore := faultinject.Activate(faultinject.New(1, map[faultinject.Point]faultinject.Plan{
			faultinject.GatewayHedge: {Every: 1, Err: context.DeadlineExceeded},
		}))
		defer restore()
		r1, r2 := newFakeReplica(t), newFakeReplica(t)
		r1.set(func(f *fakeReplica) { f.stall = 80 * time.Millisecond })
		r2.set(func(f *fakeReplica) { f.stall = 80 * time.Millisecond })
		g := newTestGateway(t, Config{ProbeInterval: time.Hour, HedgeDelay: 10 * time.Millisecond}, r1, r2)
		rec := doPredict(t, g, predictBody("m", 1))
		if rec.Code != http.StatusOK {
			t.Fatalf("predict got %d", rec.Code)
		}
		if rec.Header().Get(HeaderRoute) != RoutePrimary {
			t.Fatal("suppressed hedge still won")
		}
		if r1.predicts.Load()+r2.predicts.Load() != 1 {
			t.Fatal("suppressed hedge still launched an attempt")
		}
	})
	t.Run("probe fault ejects", func(t *testing.T) {
		restore := faultinject.Activate(faultinject.New(1, map[faultinject.Point]faultinject.Plan{
			faultinject.GatewayHealthProbe: {Every: 1, Err: context.DeadlineExceeded},
		}))
		defer restore()
		r1 := newFakeReplica(t)
		g := newTestGateway(t, Config{
			ProbeInterval: 2 * time.Millisecond, FailThreshold: 2, MaxProbeBackoff: 5 * time.Millisecond,
		}, r1)
		deadline := time.Now().Add(5 * time.Second)
		for g.reps[0].isHealthy() {
			if time.Now().After(deadline) {
				t.Fatal("probe faults never ejected the replica")
			}
			time.Sleep(time.Millisecond)
		}
		if r1.probes.Load() != 0 {
			t.Fatal("injected probe fault still hit the replica's /healthz")
		}
	})
}

// TestReloadFanout checks /admin/reload reaches every replica and a
// partial failure reports 500 with per-replica detail.
func TestReloadFanout(t *testing.T) {
	ok := newFakeReplica(t)
	bad := newFakeReplica(t)
	mux := http.NewServeMux()
	mux.HandleFunc("/admin/reload", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{"generation":4,"models":["m"]}`)
	})
	ok.srv.Config.Handler = mux
	badMux := http.NewServeMux()
	badMux.HandleFunc("/admin/reload", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"error":"serve: reload failed"}`)
	})
	bad.srv.Config.Handler = badMux
	g := newTestGateway(t, Config{ProbeInterval: time.Hour}, ok, bad)

	req := httptest.NewRequest(http.MethodPost, "/admin/reload", nil)
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("partial reload got %d, want 500", rec.Code)
	}
	var fan ReloadFanout
	if err := json.Unmarshal(rec.Body.Bytes(), &fan); err != nil {
		t.Fatalf("decoding fan-out: %v", err)
	}
	if fan.OK || len(fan.Replicas) != 2 {
		t.Fatalf("unexpected fan-out: %+v", fan)
	}
	for _, r := range fan.Replicas {
		switch r.Addr {
		case ok.addr():
			if r.Generation != 4 || r.Error != "" {
				t.Fatalf("healthy replica result: %+v", r)
			}
		case bad.addr():
			if r.Error != "serve: reload failed" {
				t.Fatalf("failed replica result: %+v", r)
			}
		}
	}
}

// TestConfigValidation pins constructor errors.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted zero replicas")
	}
	if _, err := New(Config{Replicas: []string{"a:1", "a:1"}}); err == nil {
		t.Error("New accepted duplicate replicas")
	}
	if _, err := New(Config{Replicas: []string{""}}); err == nil {
		t.Error("New accepted an empty replica address")
	}
}
