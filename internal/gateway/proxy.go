package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"perfpred/internal/faultinject"
	"perfpred/internal/serve"
)

// Response headers the gateway stamps on proxied predictions. The chaos
// harness reads them to verify cache affinity (hot rows landing on one
// replica) and to account hedge/retry traffic separately.
const (
	// HeaderReplica carries the upstream replica address that produced
	// the response.
	HeaderReplica = "X-Perfpred-Replica"
	// HeaderRoute carries how the winning attempt was launched:
	// "primary", "hedge" or "retry".
	HeaderRoute = "X-Perfpred-Route"
)

// Route values for HeaderRoute.
const (
	RoutePrimary = "primary"
	RouteHedge   = "hedge"
	RouteRetry   = "retry"
)

// upstream is one attempt's terminal outcome: either an HTTP response
// (any status — replica 4xx/5xx pass through) or a transport error.
type upstream struct {
	rep      *replica
	route    string
	status   int
	header   http.Header
	body     []byte
	err      error
	canceled bool // err stems from the attempt's own context
}

// handlePredict proxies one prediction through the replica tier:
// route by rendezvous key, dispatch to the best healthy replica, hedge
// on tail latency, retry on transport failure, and relay the winning
// response byte-for-byte.
func (g *Gateway) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := g.clock.Now()
	// Register in-flight before re-checking the drain flag: Close sets
	// the flag and then waits, so a request that passes the check here is
	// either counted (and drained) or refused.
	g.inflight.Add(1)
	defer g.inflight.Done()
	if g.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("gateway is draining"))
		return
	}
	g.met.requests.Inc()
	defer func() {
		g.met.latency.Observe(max(g.clock.Since(start).Seconds(), 0))
	}()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, serve.MaxRequestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()

	// Routing fault point: latency delays replica selection, a forced
	// error answers 503 before any replica capacity is consumed.
	if fired, ferr := g.fi.Hit(ctx, faultinject.GatewayRoute); fired {
		g.met.faults.Inc()
		if ferr != nil {
			g.met.errors.Inc()
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("routing fault injected: %w", ferr))
			return
		}
	}

	key, keyed := routingKey(body)
	var order []*replica
	if keyed {
		order = g.order(key)
	} else {
		order = g.spreadOrder()
	}
	res := g.dispatch(ctx, order, body, r.Header.Get("Content-Type"))
	g.writeUpstream(w, res)
}

// dispatch runs the attempt loop for one request: launch the primary on
// the best healthy replica, arm one hedge, relaunch on transport
// failure, and return the first HTTP response (whatever its status).
func (g *Gateway) dispatch(ctx context.Context, order []*replica, body []byte, contentType string) *upstream {
	tried := make([]bool, len(g.reps))
	// Buffered to the replica count so a late loser's send never blocks
	// after dispatch has returned.
	results := make(chan *upstream, len(g.reps))
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	// launch starts one attempt on the best healthy untried replica with
	// a free in-flight slot; it reports false when no such replica exists.
	launch := func(route string) bool {
		for _, rep := range order {
			if tried[rep.idx] || !rep.isHealthy() {
				continue
			}
			if !rep.acquire(g.cfg.MaxInFlight) {
				continue
			}
			tried[rep.idx] = true
			actx, acancel := context.WithCancel(ctx)
			cancels = append(cancels, acancel)
			go g.attempt(actx, rep, route, body, contentType, results)
			return true
		}
		return false
	}

	// Primary selection distinguishes "nobody healthy" (503: the tier is
	// down) from "the routed replica is saturated" (429: back off). The
	// gateway does not spill a saturated key onto other replicas — that
	// would shred cache affinity exactly when the tier is busiest; the
	// replica's own admission queue is the primary shed point and its
	// 429s pass through long before the gateway cap bites.
	primary := -1
	for _, rep := range order {
		if rep.isHealthy() {
			primary = rep.idx
			break
		}
	}
	if primary < 0 {
		g.met.errors.Inc()
		return &upstream{status: http.StatusServiceUnavailable,
			err: errors.New("no healthy replicas")}
	}
	if !g.reps[primary].acquire(g.cfg.MaxInFlight) {
		g.met.shed.Inc()
		return &upstream{status: http.StatusTooManyRequests,
			err: errors.New("all routable replicas at in-flight capacity")}
	}
	tried[primary] = true
	pctx, pcancel := context.WithCancel(ctx)
	cancels = append(cancels, pcancel)
	go g.attempt(pctx, g.reps[primary], RoutePrimary, body, contentType, results)

	var hedgeC <-chan time.Time
	if g.cfg.HedgeDelay > 0 && len(g.reps) > 1 {
		t := time.NewTimer(g.cfg.HedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}

	outstanding := 1
	for {
		select {
		case res := <-results:
			outstanding--
			if res.err == nil {
				// First HTTP response wins; cancel any other attempt (the
				// deferred cancels) and relay.
				if res.route == RouteHedge {
					g.met.hedgeWins.Inc()
				}
				g.noteTransportOK(res.rep)
				return res
			}
			if res.canceled || ctx.Err() != nil {
				// The request context died (client gone or deadline); the
				// failure says nothing about the replica.
				return &upstream{err: ctx.Err(), canceled: true}
			}
			g.noteTransportError(res.rep)
			if launch(RouteRetry) {
				g.met.retries.Inc()
				outstanding++
			}
			if outstanding == 0 {
				g.met.errors.Inc()
				return &upstream{status: http.StatusBadGateway,
					err: fmt.Errorf("every routable replica failed (last: %v)", res.err)}
			}
		case <-hedgeC:
			hedgeC = nil
			// Hedge fault point: latency delays the hedge's launch, a
			// forced error suppresses it (the primary keeps running).
			if fired, ferr := g.fi.Hit(ctx, faultinject.GatewayHedge); fired {
				g.met.faults.Inc()
				if ferr != nil {
					continue
				}
			}
			if launch(RouteHedge) {
				g.met.hedges.Inc()
				outstanding++
			}
		case <-ctx.Done():
			return &upstream{err: ctx.Err(), canceled: true}
		}
	}
}

// attempt runs one upstream predict call and reports its outcome. The
// response body is read in full here so the winner can be relayed
// byte-for-byte and a mid-body connection tear still surfaces as a
// retryable transport error, never as a truncated client response.
func (g *Gateway) attempt(ctx context.Context, rep *replica, route string, body []byte, contentType string, out chan<- *upstream) {
	defer rep.release()
	rep.requests.Add(1)
	start := g.clock.Now()
	defer func() {
		g.met.upstream.Observe(max(g.clock.Since(start).Seconds(), 0))
	}()

	fail := func(err error) {
		out <- &upstream{rep: rep, route: route, err: err, canceled: ctx.Err() != nil}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.base+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		fail(err)
		return
	}
	if contentType == "" {
		contentType = "application/json"
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := g.client.Do(req)
	if err != nil {
		fail(err)
		return
	}
	rb, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fail(err)
		return
	}
	out <- &upstream{rep: rep, route: route, status: resp.StatusCode, header: resp.Header, body: rb}
}

// writeUpstream relays a dispatch outcome to the client.
func (g *Gateway) writeUpstream(w http.ResponseWriter, res *upstream) {
	if res.err != nil && res.rep == nil && res.status == 0 {
		// Request context died before any replica answered.
		status := http.StatusGatewayTimeout
		err := res.err
		if err == nil {
			err = errors.New("request cancelled")
		}
		g.met.errors.Inc()
		writeError(w, status, err)
		return
	}
	if res.rep == nil {
		// Gateway-originated terminal status (503/429/502).
		if res.status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, res.status, res.err)
		return
	}
	// Replica response: relay byte-for-byte, preserving the headers that
	// carry contract (content type, replica Retry-After backpressure).
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set(HeaderReplica, res.rep.addr)
	w.Header().Set(HeaderRoute, res.route)
	w.WriteHeader(res.status)
	w.Write(res.body) //nolint:errcheck // best-effort: client may have gone
}

// proxyAny forwards a read-only request (GET /v1/models, /v1/report) to
// the first healthy replica that answers, in round-robin order.
func (g *Gateway) proxyAny(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()
	var lastErr error
	for _, rep := range g.spreadOrder() {
		if !rep.isHealthy() {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base+r.URL.Path, nil)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := g.client.Do(req)
		if err != nil {
			g.noteTransportError(rep)
			lastErr = err
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			g.noteTransportError(rep)
			lastErr = err
			continue
		}
		g.noteTransportOK(rep)
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.Header().Set(HeaderReplica, rep.addr)
		w.WriteHeader(resp.StatusCode)
		w.Write(body) //nolint:errcheck // best-effort
		return
	}
	if lastErr == nil {
		lastErr = errors.New("no healthy replicas")
	}
	writeError(w, http.StatusBadGateway, fmt.Errorf("proxying %s: %w", r.URL.Path, lastErr))
}

// ReloadResult is one replica's outcome in a reload fan-out.
type ReloadResult struct {
	// Addr is the replica's address.
	Addr string `json:"addr"`
	// Generation is the replica's catalog generation after a successful
	// reload (0 on failure).
	Generation int64 `json:"generation,omitempty"`
	// Error describes a failed reload (transport or replica-side).
	Error string `json:"error,omitempty"`
}

// ReloadFanout is the gateway's response to POST /admin/reload: the
// per-replica outcome of fanning the reload to every replica (ejected
// ones included — a replica coming back must not serve a stale catalog
// because it was down during the reload broadcast).
type ReloadFanout struct {
	// OK reports whether every replica reloaded successfully.
	OK bool `json:"ok"`
	// Replicas lists per-replica outcomes in configuration order.
	Replicas []ReloadResult `json:"replicas"`
}

// handleReload fans POST /admin/reload out to all replicas. 200 when
// every replica reloaded; 500 with per-replica detail otherwise (the
// failed replicas keep serving their previous catalog — the same
// contract a single daemon's failed reload has).
func (g *Gateway) handleReload(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()
	fan := ReloadFanout{OK: true, Replicas: make([]ReloadResult, len(g.reps))}
	for i, rep := range g.reps {
		fan.Replicas[i] = g.reloadOne(ctx, rep)
		if fan.Replicas[i].Error != "" {
			fan.OK = false
		}
	}
	status := http.StatusOK
	if !fan.OK {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, fan)
}

func (g *Gateway) reloadOne(ctx context.Context, rep *replica) ReloadResult {
	res := ReloadResult{Addr: rep.addr}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.base+"/admin/reload", nil)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.noteTransportError(rep)
		res.Error = err.Error()
		return res
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		g.noteTransportError(rep)
		res.Error = err.Error()
		return res
	}
	g.noteTransportOK(rep)
	if resp.StatusCode != http.StatusOK {
		var e serve.ErrorResponse
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			res.Error = e.Error
		} else {
			res.Error = fmt.Sprintf("reload answered %d", resp.StatusCode)
		}
		return res
	}
	var rr serve.ReloadResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		res.Error = fmt.Sprintf("parsing reload response: %v", err)
		return res
	}
	res.Generation = rr.Generation
	return res
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // connection reuse only
	resp.Body.Close()
}
