// Package gateway is the replicated-serving front tier behind
// cmd/perfpredgw: an HTTP proxy that fans /v1/predict traffic across N
// perfpredd replicas. It exists because predictor throughput — not model
// cost — bounds how fast a design space can be explored; one daemon
// tops out at one admission queue, while the gateway scales the same
// bit-exact serving path horizontally.
//
// The tier is built from four cooperating mechanisms:
//
//   - Cache-affine routing: requests are keyed by rendezvous hashing
//     over (model, row contents) using the predcache row hash, so
//     identical design points always land on the same replica and that
//     replica's prediction cache stays hot. Rendezvous scoring means a
//     replica ejection only moves the keys it owned; every other key
//     keeps its cache-warm home.
//   - Health-checked replicas: active /healthz probes plus passive
//     transport-failure signals drive a per-replica state machine
//     (healthy → ejected after FailThreshold consecutive failures,
//     readmitted after ReadmitThreshold consecutive probe successes,
//     with deterministic doubling backoff between probes to a down
//     replica). Timing is read through the faultinject clock so chaos
//     runs observe reproducible timestamps.
//   - Hedged retries: on idempotent predict calls, if the primary
//     replica has not answered within HedgeDelay the gateway launches
//     one hedged attempt on the next-best replica; the first response
//     wins and the loser's context is cancelled. Transport failures
//     (a killed replica) relaunch on the next replica in rendezvous
//     order, so a replica crash mid-request loses nothing.
//   - Bounded in-flight: each replica carries a gateway-side in-flight
//     cap as an overload backstop; replica-side sheds (429 with a
//     queue-pressure Retry-After) pass through to the client untouched.
//
// The gateway never re-encodes a prediction: request bodies are
// forwarded byte-for-byte and responses are relayed byte-for-byte, so
// every 200 through the gateway is bit-identical to asking the replica
// — and therefore to offline core.Predictor.PredictRowsInto scoring,
// the invariant the chaos harness enforces end to end.
package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"perfpred/internal/faultinject"
	"perfpred/internal/obs"
)

// Config configures a gateway.
type Config struct {
	// Replicas are the upstream perfpredd addresses (host:port).
	Replicas []string
	// ProbeInterval spaces active health probes to a healthy replica;
	// it is also the initial backoff to an ejected one. Default 250ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request. Default 1s.
	ProbeTimeout time.Duration
	// MaxProbeBackoff caps the doubling probe backoff to an ejected
	// replica. Default 8×ProbeInterval.
	MaxProbeBackoff time.Duration
	// FailThreshold ejects a replica after this many consecutive
	// failures (probe or transport). Default 2.
	FailThreshold int
	// ReadmitThreshold readmits an ejected replica after this many
	// consecutive probe successes. Default 2.
	ReadmitThreshold int
	// MaxInFlight caps concurrent requests per replica at the gateway; a
	// request whose routed replica is at the cap is shed with 429. The
	// cap is a backstop — the replica's own admission queue is the
	// primary shedding point. Default 256.
	MaxInFlight int
	// HedgeDelay is how long the primary attempt may run before one
	// hedged attempt launches on the next-best replica. 0 disables
	// hedging.
	HedgeDelay time.Duration
	// RequestTimeout caps one proxied predict end to end (all attempts
	// included). Default 15s.
	RequestTimeout time.Duration
	// Transport overrides the upstream HTTP transport (tests inject
	// failure shapes); nil uses a pooled default.
	Transport http.RoundTripper
	// Metrics is the registry to record into; nil creates a private one.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.MaxProbeBackoff <= 0 {
		c.MaxProbeBackoff = 8 * c.ProbeInterval
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.ReadmitThreshold <= 0 {
		c.ReadmitThreshold = 2
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	return c
}

// metrics bundles the registry entries the gateway records into,
// resolved once at startup (the same pattern internal/serve uses).
type metrics struct {
	reg        *obs.Registry
	requests   *obs.Counter
	hedges     *obs.Counter
	hedgeWins  *obs.Counter
	retries    *obs.Counter
	shed       *obs.Counter
	errors     *obs.Counter
	ejects     *obs.Counter
	readmits   *obs.Counter
	probes     *obs.Counter
	probeFails *obs.Counter
	faults     *obs.Counter
	latency    *obs.Histogram
	upstream   *obs.Histogram
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &metrics{
		reg:        reg,
		requests:   reg.Counter(obs.MetricGatewayRequests),
		hedges:     reg.Counter(obs.MetricGatewayHedges),
		hedgeWins:  reg.Counter(obs.MetricGatewayHedgeWins),
		retries:    reg.Counter(obs.MetricGatewayRetries),
		shed:       reg.Counter(obs.MetricGatewayShed),
		errors:     reg.Counter(obs.MetricGatewayErrors),
		ejects:     reg.Counter(obs.MetricGatewayEjects),
		readmits:   reg.Counter(obs.MetricGatewayReadmits),
		probes:     reg.Counter(obs.MetricGatewayProbes),
		probeFails: reg.Counter(obs.MetricGatewayProbeFailures),
		faults:     reg.Counter(obs.MetricGatewayFaults),
		latency:    reg.Histogram(obs.MetricGatewayLatency),
		upstream:   reg.Histogram(obs.MetricGatewayUpstream),
	}
}

// Gateway fronts a set of serving replicas.
type Gateway struct {
	cfg      Config
	reps     []*replica
	met      *metrics
	client   *http.Client
	mux      *http.ServeMux
	started  time.Time
	addr     atomic.Value // string; bound listen address
	draining atomic.Bool
	inflight sync.WaitGroup // live predict dispatches
	stop     chan struct{}  // closes the probe loops
	probeWG  sync.WaitGroup
	rr       atomic.Uint64 // round-robin cursor for non-affine proxying
	// fi and clock come from the fault injector active at construction
	// (the no-op singleton in production — see internal/serve.Batcher).
	fi    *faultinject.Injector
	clock faultinject.Clock
}

// New builds a gateway over cfg.Replicas and starts one health-probe
// loop per replica. Replicas start healthy (the first failed probe or
// request corrects optimism within a probe interval); call Close to
// drain.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("gateway: no replicas configured")
	}
	seen := map[string]bool{}
	for _, addr := range cfg.Replicas {
		if addr == "" {
			return nil, fmt.Errorf("gateway: empty replica address")
		}
		if seen[addr] {
			return nil, fmt.Errorf("gateway: duplicate replica address %q", addr)
		}
		seen[addr] = true
	}
	fi := faultinject.Active()
	g := &Gateway{
		cfg:   cfg,
		met:   newMetrics(cfg.Metrics),
		stop:  make(chan struct{}),
		fi:    fi,
		clock: fi.Clock(),
	}
	g.started = g.clock.Now()
	tr := cfg.Transport
	if tr == nil {
		tr = &http.Transport{
			MaxIdleConns:        4 * cfg.MaxInFlight,
			MaxIdleConnsPerHost: cfg.MaxInFlight,
		}
	}
	g.client = &http.Client{Transport: tr}
	for i, addr := range cfg.Replicas {
		g.reps = append(g.reps, newReplica(i, addr))
	}
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("POST /v1/predict", g.handlePredict)
	g.mux.HandleFunc("GET /v1/models", g.proxyAny)
	g.mux.HandleFunc("GET /v1/report", g.proxyAny)
	g.mux.HandleFunc("POST /admin/reload", g.handleReload)
	g.mux.HandleFunc("GET /gw/report", g.handleReport)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	mh := obs.MetricsHandler(g.met.reg)
	g.mux.Handle("/metrics", mh)
	g.mux.Handle("/debug/", mh)
	for _, rep := range g.reps {
		g.probeWG.Add(1)
		go g.probeLoop(rep)
	}
	return g, nil
}

// Handler returns the gateway's HTTP surface.
func (g *Gateway) Handler() http.Handler { return g.mux }

// MetricsRegistry exposes the registry backing /metrics.
func (g *Gateway) MetricsRegistry() *obs.Registry { return g.met.reg }

// SetAddr records the bound listen address for reports.
func (g *Gateway) SetAddr(addr string) { g.addr.Store(addr) }

// Close drains the gateway, mirroring the daemon's SIGTERM contract:
// new predicts are refused with 503, every in-flight dispatch is
// answered, and the health-probe loops stop. Call after the HTTP server
// has stopped accepting requests.
func (g *Gateway) Close() {
	if !g.draining.CompareAndSwap(false, true) {
		return
	}
	close(g.stop)
	g.inflight.Wait()
	g.probeWG.Wait()
}

// Report snapshots the gateway's lifetime into a GatewayReport.
func (g *Gateway) Report() *obs.GatewayReport {
	addr, _ := g.addr.Load().(string)
	reps := make([]obs.ReplicaReport, len(g.reps))
	for i, rep := range g.reps {
		reps[i] = rep.report()
	}
	return obs.BuildGatewayReport(obs.GatewayMeta{
		Addr:     addr,
		Replicas: reps,
		Uptime:   max(g.clock.Since(g.started), 0), // a skewed chaos clock may run backwards
	}, g.met.reg)
}

// healthyCount counts replicas currently routable.
func (g *Gateway) healthyCount() int {
	n := 0
	for _, rep := range g.reps {
		if rep.isHealthy() {
			n++
		}
	}
	return n
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	healthy := g.healthyCount()
	status := http.StatusOK
	state := "ok"
	if healthy == 0 {
		status = http.StatusServiceUnavailable
		state = "no healthy replicas"
	}
	writeJSON(w, status, map[string]any{
		"status": state, "healthy": healthy, "replicas": len(g.reps),
	})
}

func (g *Gateway) handleReport(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, g.Report())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort: client may have gone
}

func writeError(w http.ResponseWriter, status int, err error) {
	msg := strings.TrimPrefix(err.Error(), "gateway: ")
	writeJSON(w, status, map[string]string{"error": msg})
}

// probeLoop actively health-checks one replica until Close. The delay
// sequence is deterministic: ProbeInterval while healthy, then
// ProbeInterval·2ᵏ (capped at MaxProbeBackoff) for the k-th consecutive
// probe to an ejected replica, resetting on readmission.
func (g *Gateway) probeLoop(rep *replica) {
	defer g.probeWG.Done()
	for {
		t := time.NewTimer(rep.probeDelay(g.cfg.ProbeInterval))
		select {
		case <-g.stop:
			t.Stop()
			return
		case <-t.C:
		}
		g.probe(rep)
	}
}

// probe runs one active health check and feeds the result into the
// replica's state machine.
func (g *Gateway) probe(rep *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	var err error
	// Probe fault point: a forced error fails the probe as if the
	// replica were unreachable, so chaos runs can eject a perfectly
	// healthy replica and exercise readmission.
	if fired, ferr := g.fi.Hit(ctx, faultinject.GatewayHealthProbe); fired {
		g.met.faults.Inc()
		err = ferr
	}
	if err == nil {
		err = g.probeOnce(ctx, rep)
	}
	g.recordProbe(rep, err == nil)
}

func (g *Gateway) probeOnce(ctx context.Context, rep *replica) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return err
	}
	drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("gateway: %s /healthz answered %d", rep.addr, resp.StatusCode)
	}
	return nil
}
