package gateway

import (
	"sync"
	"sync/atomic"
	"time"

	"perfpred/internal/obs"
	"perfpred/internal/predcache"
)

// replica is one upstream perfpredd as the gateway tracks it: a
// rendezvous identity, an in-flight gauge, and a health-state machine
// fed by both active probes and passive transport signals.
//
// The state machine has two states. A healthy replica is ejected after
// FailThreshold consecutive failures (probe failures and request
// transport errors both count; any success resets the streak). An
// ejected replica takes no traffic and is probed with doubling backoff;
// ReadmitThreshold consecutive probe successes readmit it. Only probes
// can readmit — a replica never re-enters rotation on hope.
type replica struct {
	idx  int
	addr string
	base string // "http://" + addr
	// id is the replica's fixed rendezvous identity; routing scores are
	// Combine(id, requestKey), so a replica's share of the keyspace is
	// stable across gateway restarts with the same address set.
	id uint64

	inflight      atomic.Int64
	requests      atomic.Int64
	transportErrs atomic.Int64

	mu sync.Mutex
	// healthy mirrors healthyA; healthyA gives the request path a
	// lock-free read, mu serializes transitions.
	healthy    bool
	healthyA   atomic.Bool
	fails      int // consecutive failures while healthy
	okays      int // consecutive probe successes while ejected
	backoff    time.Duration
	ejects     int64
	readmits   int64
	probes     int64
	probeFails int64
}

func newReplica(idx int, addr string) *replica {
	r := &replica{
		idx:     idx,
		addr:    addr,
		base:    "http://" + addr,
		id:      predcache.HashString(addr),
		healthy: true,
	}
	r.healthyA.Store(true)
	return r
}

func (r *replica) isHealthy() bool { return r.healthyA.Load() }

// acquire takes one in-flight slot, failing when the replica is at cap.
func (r *replica) acquire(maxInFlight int) bool {
	if r.inflight.Add(1) > int64(maxInFlight) {
		r.inflight.Add(-1)
		return false
	}
	return true
}

func (r *replica) release() { r.inflight.Add(-1) }

// probeDelay returns how long the probe loop should wait before the
// next probe: the base interval while healthy, the current backoff
// while ejected.
func (r *replica) probeDelay(interval time.Duration) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.healthy || r.backoff <= 0 {
		return interval
	}
	return r.backoff
}

func (r *replica) report() obs.ReplicaReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return obs.ReplicaReport{
		Addr:            r.addr,
		Healthy:         r.healthy,
		Requests:        r.requests.Load(),
		TransportErrors: r.transportErrs.Load(),
		Ejects:          r.ejects,
		Readmits:        r.readmits,
		Probes:          r.probes,
		ProbeFailures:   r.probeFails,
	}
}

// recordProbe feeds one active-probe outcome into rep's state machine.
func (g *Gateway) recordProbe(rep *replica, ok bool) {
	g.met.probes.Inc()
	if !ok {
		g.met.probeFails.Inc()
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.probes++
	if !ok {
		rep.probeFails++
	}
	if rep.healthy {
		if ok {
			rep.fails = 0
			return
		}
		rep.fails++
		if rep.fails >= g.cfg.FailThreshold {
			g.ejectLocked(rep)
		}
		return
	}
	// Ejected: successes accumulate toward readmission, failures reset
	// the streak and double the probe backoff.
	if ok {
		rep.okays++
		if rep.okays >= g.cfg.ReadmitThreshold {
			g.readmitLocked(rep)
		}
		return
	}
	rep.okays = 0
	rep.backoff = min(2*rep.backoff, g.cfg.MaxProbeBackoff)
}

// noteTransportError feeds a request-path transport failure (connection
// refused, reset, torn body) into rep's state machine. Callers must NOT
// invoke it for attempts whose own context was cancelled — a hedge
// loser or an abandoned client says nothing about replica health.
func (g *Gateway) noteTransportError(rep *replica) {
	rep.transportErrs.Add(1)
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if !rep.healthy {
		return
	}
	rep.fails++
	if rep.fails >= g.cfg.FailThreshold {
		g.ejectLocked(rep)
	}
}

// noteTransportOK resets rep's failure streak: any HTTP response —
// whatever its status — proves transport to the replica works.
func (g *Gateway) noteTransportOK(rep *replica) {
	rep.mu.Lock()
	if rep.healthy {
		rep.fails = 0
	}
	rep.mu.Unlock()
}

// ejectLocked transitions rep healthy → ejected. rep.mu must be held.
func (g *Gateway) ejectLocked(rep *replica) {
	rep.healthy = false
	rep.healthyA.Store(false)
	rep.fails = 0
	rep.okays = 0
	rep.backoff = g.cfg.ProbeInterval
	rep.ejects++
	g.met.ejects.Inc()
}

// readmitLocked transitions rep ejected → healthy. rep.mu must be held.
func (g *Gateway) readmitLocked(rep *replica) {
	rep.healthy = true
	rep.healthyA.Store(true)
	rep.fails = 0
	rep.okays = 0
	rep.backoff = 0
	rep.readmits++
	g.met.readmits.Inc()
}
