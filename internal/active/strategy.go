package active

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"perfpred/internal/dataset"
	"perfpred/internal/engine"
	"perfpred/internal/predcache"
	"perfpred/internal/stat"
)

// Round is the acquisition context one strategy decision sees: the
// current labeled set, the unlabeled pool, and the committee trained on
// the labeled set this round. Everything a strategy may randomize must
// derive from Seed, and every fan-out must go through Opts, so an
// acquisition is bit-identical at any worker count.
type Round struct {
	// Pool is the unlabeled candidate set the strategy picks from.
	Pool *dataset.Dataset
	// Labeled is the already-simulated training set.
	Labeled *dataset.Dataset
	// Members is the committee trained on Labeled this round.
	Members []Member
	// Seed is the round's derived acquisition seed.
	Seed int64
	// Opts configures engine fan-outs (pool scoring, distance updates).
	Opts engine.Options
}

// Strategy is one registered acquisition policy, mirroring the model
// registry's Family pattern: a named descriptor behind a process-wide
// registry, so new policies are one Register call away from every
// workflow and CLI flag.
type Strategy struct {
	// Name is the policy's wire form (the -acquire flag, reports).
	Name string
	// Description is one line for -acquire listings and docs.
	Description string
	// Acquire returns k distinct pool row indices, in acquisition order.
	// It must be deterministic for a fixed Round.Seed at any Opts.Workers.
	Acquire func(ctx context.Context, r *Round, k int) ([]int, error)
}

// Strategy registry. Registration happens in this package's init (and
// any future package's), single-threaded before main; lookups afterwards
// are read-only.
var (
	stratMu    sync.Mutex
	strategies = map[string]Strategy{}
)

// Register binds an acquisition strategy by name. It panics on a
// duplicate name or an incomplete descriptor — build-time wiring
// mistakes, never runtime conditions.
func Register(s Strategy) {
	stratMu.Lock()
	defer stratMu.Unlock()
	if s.Name == "" || s.Acquire == nil {
		panic("active: incomplete strategy descriptor")
	}
	if _, ok := strategies[s.Name]; ok {
		panic(fmt.Sprintf("active: strategy %q registered twice", s.Name))
	}
	strategies[s.Name] = s
}

// LookupStrategy resolves a registered strategy by name.
func LookupStrategy(name string) (Strategy, bool) {
	s, ok := strategies[name]
	return s, ok
}

// Strategies lists the registered strategy names, sorted.
func Strategies() []string {
	out := make([]string, 0, len(strategies))
	for name := range strategies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// The built-in strategy names.
const (
	// StrategyCommittee acquires where the committee disagrees most.
	StrategyCommittee = "committee"
	// StrategyDiversity acquires a greedy max-min diverse batch.
	StrategyDiversity = "diversity"
	// StrategyEI acquires by expected improvement over the best design.
	StrategyEI = "ei"
)

func init() {
	Register(Strategy{
		Name:        StrategyCommittee,
		Description: "committee disagreement: predictive variance across the trained kinds plus TREE-B per-tree spread",
		Acquire:     acquireCommittee,
	})
	Register(Strategy{
		Name:        StrategyDiversity,
		Description: "greedy max-min diversity in the encoded feature space, with canonical-hash dedup",
		Acquire:     acquireDiversity,
	})
	Register(Strategy{
		Name:        StrategyEI,
		Description: "expected improvement toward the best (lowest-target) design under the committee posterior",
		Acquire:     acquireEI,
	})
}

// topK returns the indices of the k largest scores in descending score
// order, ties breaking toward the lowest index — so a batch is
// deterministic even on plateaus (an untrained committee scoring
// everything zero, say).
func topK(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// acquireCommittee scores every pool row's committee variance and takes
// the k most-disputed rows.
func acquireCommittee(ctx context.Context, r *Round, k int) ([]int, error) {
	scorer, err := NewScorer(r.Members)
	if err != nil {
		return nil, err
	}
	n := r.Pool.Len()
	mean := make([]float64, n)
	vari := make([]float64, n)
	if err := scorer.ScoreAll(ctx, r.Opts, r.Pool, mean, vari); err != nil {
		return nil, err
	}
	return topK(vari, k), nil
}

// acquireEI ranks pool rows by expected improvement below the best
// (lowest) labeled target — the best-design-search acquisition. The
// committee posterior at a row is N(mean, vari); with best b, mean μ and
// deviation σ the expected improvement is (b−μ)Φ(z) + σφ(z), z=(b−μ)/σ,
// degenerating to max(b−μ, 0) when the committee fully agrees.
func acquireEI(ctx context.Context, r *Round, k int) ([]int, error) {
	scorer, err := NewScorer(r.Members)
	if err != nil {
		return nil, err
	}
	n := r.Pool.Len()
	mean := make([]float64, n)
	vari := make([]float64, n)
	if err := scorer.ScoreAll(ctx, r.Opts, r.Pool, mean, vari); err != nil {
		return nil, err
	}
	best := math.Inf(1)
	for i := 0; i < r.Labeled.Len(); i++ {
		if y := r.Labeled.Target(i); y < best {
			best = y
		}
	}
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = expectedImprovement(best, mean[i], math.Sqrt(vari[i]))
	}
	return topK(scores, k), nil
}

// expectedImprovement is the closed-form EI of a Gaussian posterior
// toward minimizing the target.
func expectedImprovement(best, mu, sigma float64) float64 {
	imp := best - mu
	if sigma <= 0 {
		if imp > 0 {
			return imp
		}
		return 0
	}
	z := imp / sigma
	return imp*stat.StdNormalCDF(z) + sigma*stdNormalPDF(z)
}

func stdNormalPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

// diversityParallelMin is the pool size above which the min-distance
// sweeps fan out on the engine pool.
const diversityParallelMin = 2 * scoreChunk

// acquireDiversity picks a greedy max-min (k-center) batch in the flat
// encoded feature space: each pick is the pool row farthest (squared
// euclidean) from everything labeled or already picked. The space is a
// ForNN encoding fitted on the pool, so distances are over the same
// post-EncodeRowInto flat rows the kernels consume. Exact-duplicate
// rows are deduplicated through predcache's canonical row hash: a
// candidate hashing onto an already-covered row is skipped while any
// novel candidate remains, so a batch never spends two simulations on
// one configuration. Needs no committee — it is the cold-start policy.
func acquireDiversity(ctx context.Context, r *Round, k int) ([]int, error) {
	enc, err := dataset.FitEncoder(r.Pool, dataset.ForNN)
	if err != nil {
		return nil, fmt.Errorf("active: fitting diversity encoder: %w", err)
	}
	n, w := r.Pool.Len(), enc.NumColumns()
	encode := func(d *dataset.Dataset) ([][]float64, []uint64, error) {
		flat := make([]float64, d.Len()*w)
		rows := make([][]float64, d.Len())
		hashes := make([]uint64, d.Len())
		for i := range rows {
			rows[i] = flat[i*w : (i+1)*w]
			if err := enc.EncodeRowInto(rows[i], d.Row(i)); err != nil {
				return nil, nil, err
			}
			hashes[i] = predcache.HashRow(rows[i])
		}
		return rows, hashes, nil
	}
	pool, poolHash, err := encode(r.Pool)
	if err != nil {
		return nil, err
	}
	labeled, labeledHash, err := encode(r.Labeled)
	if err != nil {
		return nil, err
	}
	covered := make(map[uint64]bool, len(labeledHash)+k)
	for _, h := range labeledHash {
		covered[h] = true
	}

	// minDist[i] is row i's squared distance to its nearest covered row;
	// sweeps update it index-addressed, so fan-out order cannot matter.
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	sweep := func(center []float64) error {
		update := func(ctx context.Context, lo, hi int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			for i := lo; i < hi; i++ {
				if d := sqDist(pool[i], center); d < minDist[i] {
					minDist[i] = d
				}
			}
			return nil
		}
		if n < diversityParallelMin {
			return update(ctx, 0, n)
		}
		return engine.Map(ctx, r.Opts, n, scoreChunk, "active diversity", update)
	}
	for _, row := range labeled {
		if err := sweep(row); err != nil {
			return nil, err
		}
	}

	picks := make([]int, 0, k)
	chosen := make([]bool, n)
	for len(picks) < k {
		best, bestDup := -1, -1
		for i := 0; i < n; i++ {
			if chosen[i] {
				continue
			}
			if covered[poolHash[i]] {
				if bestDup < 0 {
					bestDup = i
				}
				continue
			}
			if best < 0 || minDist[i] > minDist[best] {
				best = i
			}
		}
		if best < 0 {
			// Only exact duplicates remain; spend the budget lowest-index
			// first rather than returning a short batch.
			best = bestDup
		}
		if best < 0 {
			break
		}
		picks = append(picks, best)
		chosen[best] = true
		covered[poolHash[best]] = true
		if err := sweep(pool[best]); err != nil {
			return nil, err
		}
	}
	return picks, nil
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
