package active

import (
	"context"
	"testing"

	"perfpred/internal/engine"
)

// benchRound builds a realistic acquisition instance: a pool large
// enough to take the parallel paths, a labeled set a committee would
// have trained on, and a three-member mixed committee (two plain
// members plus one Spreader).
func benchRound(b *testing.B, poolN int) *Round {
	pool := testSpace(b, poolN, 101)
	labeled := testSpace(b, poolN/10, 102)
	enc := lrEncoder(b, pool)
	return &Round{
		Pool:    pool,
		Labeled: labeled,
		Members: []Member{
			stubMember("A", enc, 1, 0),
			stubMember("B", enc, -0.5, 1),
			spreadMember("C", enc, 0.25, 0.5, 0.3),
		},
		Seed: 7,
		Opts: engine.Options{Workers: 4},
	}
}

// BenchmarkScoreChunk is the subsystem's hot path and must report
// 0 allocs/op: a warmed worker-local scratch scores a full chunk with
// no steady-state allocation (the committed BENCH_10.json pins it).
func BenchmarkScoreChunk(b *testing.B) {
	r := benchRound(b, scoreChunk)
	scorer, err := NewScorer(r.Members)
	if err != nil {
		b.Fatal(err)
	}
	n := r.Pool.Len()
	mean := make([]float64, n)
	vari := make([]float64, n)
	ctx := engine.NewWorkerContext(context.Background())
	if err := scorer.ScoreChunk(ctx, r.Pool, 0, n, mean, vari); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := scorer.ScoreChunk(ctx, r.Pool, 0, n, mean, vari); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAcquire(b *testing.B, name string) {
	strat, ok := LookupStrategy(name)
	if !ok {
		b.Fatalf("strategy %q not registered", name)
	}
	r := benchRound(b, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := strat.Acquire(context.Background(), r, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAcquireCommittee(b *testing.B) { benchAcquire(b, StrategyCommittee) }
func BenchmarkAcquireDiversity(b *testing.B) { benchAcquire(b, StrategyDiversity) }
func BenchmarkAcquireEI(b *testing.B)        { benchAcquire(b, StrategyEI) }
