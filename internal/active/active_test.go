package active

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"perfpred/internal/dataset"
	"perfpred/internal/engine"
	"perfpred/internal/faultinject"
	"perfpred/internal/model"
	"perfpred/internal/predcache"
)

// testSpace builds a small synthetic design space with every field kind
// the encoders handle.
func testSpace(t testing.TB, n int, seed int64) *dataset.Dataset {
	t.Helper()
	s, err := dataset.NewSchema("cycles",
		dataset.Field{Name: "size", Kind: dataset.Numeric},
		dataset.Field{Name: "width", Kind: dataset.Numeric},
		dataset.Field{Name: "fast", Kind: dataset.Flag},
		dataset.Field{Name: "pred", Kind: dataset.Categorical, NumericLevels: map[string]float64{
			"weak": 1, "strong": 2,
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.New(s)
	r := rand.New(rand.NewSource(seed))
	preds := []string{"weak", "strong"}
	for i := 0; i < n; i++ {
		size := 16 + float64(r.Intn(5))*16
		width := float64(2 + r.Intn(4)*2)
		fast := r.Intn(2) == 0
		pk := preds[r.Intn(2)]
		y := 10000/width + 2000*math.Exp(-size/32)
		if fast {
			y *= 0.9
		}
		if pk == "strong" {
			y *= 0.85
		}
		err := d.Append([]dataset.Value{
			dataset.Num(size), dataset.Num(width), dataset.FlagVal(fast), dataset.Cat(pk),
		}, y)
		if err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// stubModel predicts scale × (sum of encoded inputs) + bias — a linear
// surrogate with hand-computable outputs and no allocation.
type stubModel struct {
	width int
	scale float64
	bias  float64
}

func (m *stubModel) NumInputs() int { return m.width }

func (m *stubModel) PredictAllInto(dst []float64, x [][]float64, _ model.Scratch) {
	for i, row := range x {
		s := 0.0
		for _, v := range row {
			s += v
		}
		dst[i] = m.scale*s + m.bias
	}
}

func (m *stubModel) Importance(x [][]float64) ([]float64, error) {
	return make([]float64, m.width), nil
}

func (m *stubModel) Marshal() ([]byte, error) { return nil, errors.New("stub") }

// spreadModel is a stubModel that also reports a constant internal
// spread, exercising the Spreader path without training trees.
type spreadModel struct {
	stubModel
	spread float64
}

func (m *spreadModel) PredictSpreadInto(mean, spread []float64, x [][]float64) {
	m.PredictAllInto(mean, x, nil)
	for i := range spread {
		spread[i] = m.spread
	}
}

var stubFamily = model.Family{
	Name:       "STUB",
	Tag:        "stub/v1",
	NewScratch: func() model.Scratch { return nil },
}

// stubMember builds a committee member over enc with the given linear
// response.
func stubMember(name string, enc *dataset.Encoder, scale, bias float64) Member {
	return Member{
		Name:   name,
		Family: stubFamily,
		Model:  &stubModel{width: enc.NumColumns(), scale: scale, bias: bias},
		Enc:    enc,
	}
}

func spreadMember(name string, enc *dataset.Encoder, scale, bias, spread float64) Member {
	return Member{
		Name:   name,
		Family: stubFamily,
		Model: &spreadModel{
			stubModel: stubModel{width: enc.NumColumns(), scale: scale, bias: bias},
			spread:    spread,
		},
		Enc: enc,
	}
}

// lrEncoder fits a ForLR encoder (identity target transform) on d.
func lrEncoder(t testing.TB, d *dataset.Dataset) *dataset.Encoder {
	t.Helper()
	enc, err := dataset.FitEncoder(d, dataset.ForLR)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// encodeAll encodes every row of d under enc.
func encodeAll(t *testing.T, enc *dataset.Encoder, d *dataset.Dataset) [][]float64 {
	t.Helper()
	rows := make([][]float64, d.Len())
	for i := range rows {
		rows[i] = make([]float64, enc.NumColumns())
		if err := enc.EncodeRowInto(rows[i], d.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	return rows
}

func TestRegistryComplete(t *testing.T) {
	want := []string{StrategyCommittee, StrategyDiversity, StrategyEI}
	got := Strategies()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Strategies() = %v, want %v", got, want)
	}
	for _, name := range want {
		s, ok := LookupStrategy(name)
		if !ok {
			t.Fatalf("LookupStrategy(%q) missing", name)
		}
		if s.Name != name || s.Description == "" || s.Acquire == nil {
			t.Fatalf("strategy %q incompletely registered: %+v", name, s)
		}
	}
	if _, ok := LookupStrategy("nope"); ok {
		t.Fatal("LookupStrategy accepted an unregistered name")
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, s Strategy) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Register did not panic", name)
			}
		}()
		Register(s)
	}
	mustPanic("duplicate", Strategy{Name: StrategyCommittee, Acquire: acquireCommittee})
	mustPanic("no name", Strategy{Acquire: acquireCommittee})
	mustPanic("no func", Strategy{Name: "hollow"})
}

func TestTopK(t *testing.T) {
	scores := []float64{1, 5, 5, 0, 9}
	if got, want := topK(scores, 3), []int{4, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("topK = %v, want %v (descending score, lowest index on ties)", got, want)
	}
	// A plateau must come out in index order.
	flat := make([]float64, 6)
	if got, want := topK(flat, 4), []int{0, 1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("topK on plateau = %v, want %v", got, want)
	}
}

func TestCheckPicks(t *testing.T) {
	if err := checkPicks([]int{0, 2, 1}, 3, 5); err != nil {
		t.Fatalf("valid picks rejected: %v", err)
	}
	for name, tc := range map[string]struct {
		picks []int
		k, n  int
	}{
		"short":    {[]int{0}, 2, 5},
		"long":     {[]int{0, 1, 2}, 2, 5},
		"dup":      {[]int{1, 1}, 2, 5},
		"negative": {[]int{-1, 0}, 2, 5},
		"overflow": {[]int{0, 5}, 2, 5},
	} {
		if err := checkPicks(tc.picks, tc.k, tc.n); err == nil {
			t.Errorf("%s: checkPicks(%v, %d, %d) accepted", name, tc.picks, tc.k, tc.n)
		}
	}
}

// TestScorerStats checks the law-of-total-variance decomposition against
// hand-computed values: two disagreeing linear members plus one member
// with constant internal spread.
func TestScorerStats(t *testing.T) {
	pool := testSpace(t, 40, 3)
	enc := lrEncoder(t, pool)
	rows := encodeAll(t, enc, pool)
	const spread = 0.5
	members := []Member{
		stubMember("A", enc, 1, 0),
		stubMember("B", enc, -1, 2),
		spreadMember("C", enc, 0, 1, spread),
	}
	scorer, err := NewScorer(members)
	if err != nil {
		t.Fatal(err)
	}
	n := pool.Len()
	mean := make([]float64, n)
	vari := make([]float64, n)
	ctx := engine.NewWorkerContext(context.Background())
	if err := scorer.ScoreChunk(ctx, pool, 0, n, mean, vari); err != nil {
		t.Fatal(err)
	}
	unit := enc.UnscaleTarget(1) - enc.UnscaleTarget(0)
	for i := 0; i < n; i++ {
		s := 0.0
		for _, v := range rows[i] {
			s += v
		}
		preds := []float64{enc.UnscaleTarget(s), enc.UnscaleTarget(-s + 2), enc.UnscaleTarget(1)}
		mu := (preds[0] + preds[1] + preds[2]) / 3
		between := 0.0
		for _, p := range preds {
			between += (p - mu) * (p - mu)
		}
		between /= 3
		within := spread * unit * spread * unit / 3
		if math.Abs(mean[i]-mu) > 1e-9 {
			t.Fatalf("row %d: mean = %g, want %g", i, mean[i], mu)
		}
		if math.Abs(vari[i]-(between+within)) > 1e-9 {
			t.Fatalf("row %d: vari = %g, want %g (between %g + within %g)", i, vari[i], between+within, between, within)
		}
	}
}

func TestNewScorerRejectsBadMembers(t *testing.T) {
	pool := testSpace(t, 10, 3)
	enc := lrEncoder(t, pool)
	if _, err := NewScorer(nil); err == nil {
		t.Fatal("NewScorer accepted an empty committee")
	}
	if _, err := NewScorer([]Member{{Name: "X", Enc: enc}}); err == nil {
		t.Fatal("NewScorer accepted a member without a model")
	}
	bad := Member{Name: "X", Family: stubFamily, Model: &stubModel{width: enc.NumColumns() + 1}, Enc: enc}
	if _, err := NewScorer([]Member{bad}); err == nil {
		t.Fatal("NewScorer accepted a model/encoder width mismatch")
	}
}

// TestScoreAllDeterministic pins the parallel fan-out to the sequential
// chunk walk, bit for bit, at several worker counts.
func TestScoreAllDeterministic(t *testing.T) {
	pool := testSpace(t, 3*scoreParallelMin/2, 7) // big enough to take the parallel path
	enc := lrEncoder(t, pool)
	members := []Member{
		stubMember("A", enc, 1, 0),
		spreadMember("C", enc, 0.25, 1, 0.5),
	}
	scorer, err := NewScorer(members)
	if err != nil {
		t.Fatal(err)
	}
	n := pool.Len()
	ref := make([]float64, n)
	refV := make([]float64, n)
	ctx := engine.NewWorkerContext(context.Background())
	if err := scorer.ScoreChunk(ctx, pool, 0, n, ref, refV); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		mean := make([]float64, n)
		vari := make([]float64, n)
		err := scorer.ScoreAll(context.Background(), engine.Options{Workers: workers}, pool, mean, vari)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if mean[i] != ref[i] || vari[i] != refV[i] {
				t.Fatalf("workers=%d row %d: (%g, %g) != sequential (%g, %g)",
					workers, i, mean[i], vari[i], ref[i], refV[i])
			}
		}
	}
	if err := scorer.ScoreAll(context.Background(), engine.Options{}, pool, make([]float64, 1), make([]float64, 1)); err == nil {
		t.Fatal("ScoreAll accepted short buffers")
	}
}

// TestScoreChunkZeroAlloc pins the zero-allocation contract of the
// steady-state scoring path.
func TestScoreChunkZeroAlloc(t *testing.T) {
	pool := testSpace(t, scoreChunk, 11)
	enc := lrEncoder(t, pool)
	members := []Member{
		stubMember("A", enc, 1, 0),
		spreadMember("C", enc, 0.25, 1, 0.5),
	}
	scorer, err := NewScorer(members)
	if err != nil {
		t.Fatal(err)
	}
	n := pool.Len()
	mean := make([]float64, n)
	vari := make([]float64, n)
	ctx := engine.NewWorkerContext(context.Background())
	// Warm the worker-local scratch, then demand zero steady-state allocs.
	if err := scorer.ScoreChunk(ctx, pool, 0, n, mean, vari); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := scorer.ScoreChunk(ctx, pool, 0, n, mean, vari); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed ScoreChunk allocates %v times per call, want 0", allocs)
	}
}

// TestAcquireCommittee pins the strategy to its definition: the k rows
// with the largest committee variance, here proportional to the squared
// encoded-row sum by construction.
func TestAcquireCommittee(t *testing.T) {
	pool := testSpace(t, 60, 5)
	labeled := testSpace(t, 10, 6)
	enc := lrEncoder(t, pool)
	rows := encodeAll(t, enc, pool)
	r := &Round{
		Pool:    pool,
		Labeled: labeled,
		Members: []Member{stubMember("A", enc, 1, 0), stubMember("B", enc, -1, 0)},
		Seed:    1,
	}
	picks, err := acquireCommittee(context.Background(), r, 5)
	if err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, len(rows))
	for i, row := range rows {
		s := 0.0
		for _, v := range row {
			s += v
		}
		scores[i] = s * s // variance of {s, -s} around 0
	}
	if want := topK(scores, 5); !reflect.DeepEqual(picks, want) {
		t.Fatalf("committee picks %v, want max-variance rows %v", picks, want)
	}
}

// TestAcquireEI pins the degenerate zero-variance case: a single exact
// member makes EI = max(best − μ, 0), so the picks are the lowest
// predicted targets.
func TestAcquireEI(t *testing.T) {
	pool := testSpace(t, 50, 9)
	labeled := testSpace(t, 20, 10)
	enc := lrEncoder(t, pool)
	rows := encodeAll(t, enc, pool)
	r := &Round{
		Pool:    pool,
		Labeled: labeled,
		Members: []Member{stubMember("A", enc, 1, 0)},
		Seed:    1,
	}
	picks, err := acquireEI(context.Background(), r, 4)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	for i := 0; i < labeled.Len(); i++ {
		if y := labeled.Target(i); y < best {
			best = y
		}
	}
	scores := make([]float64, len(rows))
	for i, row := range rows {
		mu := 0.0
		for _, v := range row {
			mu += v
		}
		scores[i] = expectedImprovement(best, enc.UnscaleTarget(mu), 0)
	}
	if want := topK(scores, 4); !reflect.DeepEqual(picks, want) {
		t.Fatalf("ei picks %v, want %v", picks, want)
	}
}

func TestExpectedImprovement(t *testing.T) {
	if got := expectedImprovement(10, 12, 0); got != 0 {
		t.Fatalf("EI with no uncertainty above best = %g, want 0", got)
	}
	if got := expectedImprovement(10, 7, 0); got != 3 {
		t.Fatalf("EI with no uncertainty below best = %g, want 3", got)
	}
	// Symmetric case: μ = best gives EI = σφ(0) = σ/√(2π).
	want := 2.0 / math.Sqrt(2*math.Pi)
	if got := expectedImprovement(10, 10, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("EI at μ=best = %g, want %g", got, want)
	}
	// More uncertainty can only help.
	if expectedImprovement(10, 11, 1) >= expectedImprovement(10, 11, 3) {
		t.Fatal("EI not increasing in σ above the incumbent")
	}
}

// TestAcquireDiversity checks the k-center property on an easy instance
// and the canonical-hash dedup on a pool of duplicates.
func TestAcquireDiversity(t *testing.T) {
	pool := testSpace(t, 80, 13)
	labeled := testSpace(t, 5, 14)
	r := &Round{Pool: pool, Labeled: labeled, Seed: 1}
	picks, err := acquireDiversity(context.Background(), r, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 6 {
		t.Fatalf("got %d picks, want 6", len(picks))
	}
	// No two picks may share a canonical encoded row while novel rows
	// remain (the synthetic space has far more than 6 distinct configs).
	enc, err := dataset.FitEncoder(pool, dataset.ForNN)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	buf := make([]float64, enc.NumColumns())
	for _, p := range picks {
		if err := enc.EncodeRowInto(buf, pool.Row(p)); err != nil {
			t.Fatal(err)
		}
		h := predcache.HashRow(buf)
		if prev, dup := seen[h]; dup {
			t.Fatalf("picks %d and %d are identical configurations", prev, p)
		}
		seen[h] = p
	}
}

// TestAcquireDiversityDuplicatesOnly: when the pool holds fewer distinct
// configurations than the batch, the strategy still fills the batch
// (lowest-index duplicates) rather than shorting the budget accounting.
func TestAcquireDiversityDuplicatesOnly(t *testing.T) {
	small := testSpace(t, 3, 21)
	d := dataset.New(small.Schema())
	for rep := 0; rep < 4; rep++ {
		for i := 0; i < small.Len(); i++ {
			if err := d.Append(small.Row(i), small.Target(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	labeled := testSpace(t, 2, 22)
	picks, err := acquireDiversity(context.Background(), &Round{Pool: d, Labeled: labeled, Seed: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 5 {
		t.Fatalf("got %d picks from a duplicate-heavy pool, want 5", len(picks))
	}
	seen := map[int]bool{}
	for _, p := range picks {
		if seen[p] {
			t.Fatalf("pick %d repeated", p)
		}
		seen[p] = true
	}
}

// TestAcquireDeterministicAcrossWorkers pins every strategy's batch to
// be bit-identical at 1 and 8 workers, on a pool large enough to take
// the parallel scoring and sweep paths.
func TestAcquireDeterministicAcrossWorkers(t *testing.T) {
	pool := testSpace(t, 3*scoreParallelMin/2, 17)
	labeled := testSpace(t, 30, 18)
	enc := lrEncoder(t, pool)
	members := []Member{
		stubMember("A", enc, 1, 0),
		stubMember("B", enc, -0.5, 1),
		spreadMember("C", enc, 0.25, 0.5, 0.3),
	}
	for _, name := range Strategies() {
		strat, _ := LookupStrategy(name)
		var ref []int
		for _, workers := range []int{1, 8} {
			r := &Round{
				Pool:    pool,
				Labeled: labeled,
				Members: members,
				Seed:    42,
				Opts:    engine.Options{Workers: workers},
			}
			picks, err := strat.Acquire(context.Background(), r, 9)
			if err != nil {
				t.Fatalf("%s at %d workers: %v", name, workers, err)
			}
			if ref == nil {
				ref = picks
			} else if !reflect.DeepEqual(picks, ref) {
				t.Fatalf("%s: workers=8 picks %v != workers=1 picks %v", name, picks, ref)
			}
		}
	}
}

// fixedCommittee is a TrainRound stub: deterministic, trains nothing.
func fixedCommittee(t *testing.T, full *dataset.Dataset) func(context.Context, *dataset.Dataset, int64) (*Committee, error) {
	enc, err := dataset.FitEncoder(full, dataset.ForLR)
	if err != nil {
		t.Fatal(err)
	}
	return func(ctx context.Context, labeled *dataset.Dataset, roundSeed int64) (*Committee, error) {
		return &Committee{
			Members: []Member{
				stubMember("A", enc, 1, 0),
				stubMember("B", enc, -1, float64(roundSeed%7)),
			},
			Errors: []MemberError{{Name: "A", MAPE: 1}, {Name: "B", MAPE: 2}},
		}, nil
	}
}

func TestRunLoop(t *testing.T) {
	full := testSpace(t, 120, 19)
	initial := []int{3, 40, 77, 99}
	res, err := Run(context.Background(), full, initial, Config{
		Seed:       5,
		Rounds:     3,
		Batch:      6,
		Workers:    2,
		TrainRound: fixedCommittee(t, full),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != StrategyCommittee {
		t.Fatalf("default strategy %q, want %q", res.Strategy, StrategyCommittee)
	}
	if want := len(initial) + 3*6; len(res.LabeledIdx) != want {
		t.Fatalf("labeled %d points, want %d", len(res.LabeledIdx), want)
	}
	if !reflect.DeepEqual(res.LabeledIdx[:len(initial)], initial) {
		t.Fatalf("labeled prefix %v, want the initial sample %v", res.LabeledIdx[:4], initial)
	}
	if len(res.LabeledIdx)+len(res.PoolIdx) != full.Len() {
		t.Fatalf("labeled %d + pool %d != space %d", len(res.LabeledIdx), len(res.PoolIdx), full.Len())
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int(nil), res.LabeledIdx...), res.PoolIdx...) {
		if i < 0 || i >= full.Len() || seen[i] {
			t.Fatalf("index %d out of range or repeated", i)
		}
		seen[i] = true
	}
	for i := 1; i < len(res.PoolIdx); i++ {
		if res.PoolIdx[i-1] >= res.PoolIdx[i] {
			t.Fatal("pool indices not in original order")
		}
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("recorded %d rounds, want 3", len(res.Rounds))
	}
	for i, st := range res.Rounds {
		if st.Round != i+1 || st.Acquired != 6 {
			t.Fatalf("round %d stats off: %+v", i+1, st)
		}
		if st.LabeledBefore != len(initial)+i*6 || st.PoolBefore != full.Len()-st.LabeledBefore {
			t.Fatalf("round %d sizes off: %+v", i+1, st)
		}
		if len(st.Committee) != 2 {
			t.Fatalf("round %d committee trajectory missing: %+v", i+1, st)
		}
	}
}

// TestRunDrainsPool: the loop stops early when the pool runs dry and
// clips the last batch instead of failing.
func TestRunDrainsPool(t *testing.T) {
	full := testSpace(t, 20, 23)
	initial := []int{0, 1, 2, 3}
	res, err := Run(context.Background(), full, initial, Config{
		Seed:       5,
		Rounds:     10,
		Batch:      7,
		TrainRound: fixedCommittee(t, full),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LabeledIdx) != full.Len() || len(res.PoolIdx) != 0 {
		t.Fatalf("pool not drained: labeled %d, pool %d", len(res.LabeledIdx), len(res.PoolIdx))
	}
	if len(res.Rounds) != 3 { // 7 + 7 + 2 acquisitions
		t.Fatalf("executed %d rounds, want 3", len(res.Rounds))
	}
	if last := res.Rounds[2]; last.Acquired != 2 {
		t.Fatalf("final round acquired %d, want the 2 remaining", last.Acquired)
	}
}

func TestRunValidation(t *testing.T) {
	full := testSpace(t, 20, 29)
	train := fixedCommittee(t, full)
	base := Config{Seed: 1, Rounds: 2, Batch: 2, TrainRound: train}
	cases := map[string]func() error{
		"nil dataset": func() error {
			_, err := Run(context.Background(), nil, []int{0}, base)
			return err
		},
		"empty initial": func() error {
			_, err := Run(context.Background(), full, nil, base)
			return err
		},
		"zero rounds": func() error {
			cfg := base
			cfg.Rounds = 0
			_, err := Run(context.Background(), full, []int{0}, cfg)
			return err
		},
		"zero batch": func() error {
			cfg := base
			cfg.Batch = 0
			_, err := Run(context.Background(), full, []int{0}, cfg)
			return err
		},
		"nil TrainRound": func() error {
			cfg := base
			cfg.TrainRound = nil
			_, err := Run(context.Background(), full, []int{0}, cfg)
			return err
		},
	}
	for name, run := range cases {
		if run() == nil {
			t.Errorf("%s: Run accepted", name)
		}
	}
	cfg := base
	cfg.Strategy = "nope"
	_, err := Run(context.Background(), full, []int{0}, cfg)
	if err == nil || !strings.Contains(err.Error(), StrategyCommittee) {
		t.Fatalf("unknown strategy error should list registered names, got: %v", err)
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	full := testSpace(t, 150, 31)
	initial := []int{5, 25, 50, 75, 100, 125}
	var ref *Result
	for _, workers := range []int{1, 8} {
		res, err := Run(context.Background(), full, initial, Config{
			Seed:       77,
			Rounds:     3,
			Batch:      5,
			Strategy:   StrategyCommittee,
			Workers:    workers,
			TrainRound: fixedCommittee(t, full),
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res.LabeledIdx, ref.LabeledIdx) || !reflect.DeepEqual(res.PoolIdx, ref.PoolIdx) {
			t.Fatalf("workers=8 trajectory differs from workers=1:\n%v\n%v", res.LabeledIdx, ref.LabeledIdx)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	full := testSpace(t, 40, 37)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, full, []int{0, 1}, Config{
		Seed: 1, Rounds: 2, Batch: 2, TrainRound: fixedCommittee(t, full),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run returned %v, want context.Canceled", err)
	}
}

// TestRunFaultInjection: a forced fault at active.acquire_round fails
// the round and aborts the loop with the round in the error chain.
func TestRunFaultInjection(t *testing.T) {
	boom := errors.New("injected")
	restore := faultinject.Activate(faultinject.New(1, map[faultinject.Point]faultinject.Plan{
		faultinject.ActiveAcquireRound: {Every: 2, Err: boom},
	}))
	defer restore()
	full := testSpace(t, 40, 41)
	_, err := Run(context.Background(), full, []int{0, 1}, Config{
		Seed: 1, Rounds: 4, Batch: 2, TrainRound: fixedCommittee(t, full),
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want the injected fault", err)
	}
	if !strings.Contains(err.Error(), "round 2") {
		t.Fatalf("fault error %q does not name the failing round", err)
	}
}

// TestScoreAllEmitsKernelEvents: acquisition scoring reports its
// throughput to hooks like every other kernel.
func TestScoreAllEmitsKernelEvents(t *testing.T) {
	pool := testSpace(t, 3*scoreParallelMin/2, 43)
	enc := lrEncoder(t, pool)
	scorer, err := NewScorer([]Member{stubMember("A", enc, 1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	var events int64
	var samples int64
	hook := func(e engine.Event) {
		if e.Kind == engine.KernelTime && e.Label == "active score" {
			events++
			samples += e.Samples
		}
	}
	n := pool.Len()
	err = scorer.ScoreAll(context.Background(), engine.Options{Workers: 4, Hook: hook}, pool, make([]float64, n), make([]float64, n))
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 || samples != int64(n) {
		t.Fatalf("kernel events %d covering %d samples, want >0 covering %d", events, samples, n)
	}
}
