package active

import (
	"context"
	"errors"
	"fmt"
	"time"

	"perfpred/internal/dataset"
	"perfpred/internal/engine"
	"perfpred/internal/model"
)

// Spreader is optionally implemented by committee members whose model is
// itself an ensemble able to report per-row internal disagreement —
// TREE-B's per-tree spread. PredictSpreadInto writes the ensemble-mean
// prediction and the population standard deviation of the members'
// predictions (both in model-space units) for every row of x; mean must
// be bit-identical to what PredictAllInto would write.
type Spreader interface {
	PredictSpreadInto(mean, spread []float64, x [][]float64)
}

// scoreChunk is the pool-scoring fan-out granularity, and
// scoreParallelMin the pool size below which ScoreAll stays sequential
// (mirroring core's prediction chunking).
const (
	scoreChunk       = 256
	scoreParallelMin = 2 * scoreChunk
)

// Scorer computes per-row committee statistics over an unlabeled pool:
// the committee-mean prediction and the committee's predictive variance,
// both in raw target units. The variance is the law-of-total-variance
// decomposition over the committee mixture: the variance of the member
// means (disagreement across model kinds) plus the mean internal
// variance of members that expose one (TREE-B's per-tree spread).
//
// Scoring is the subsystem's hot path: chunks encode each member's view
// of the rows into worker-local flat buffers (engine.WorkerLocal) and
// stream them through the family's batched kernel, so steady-state
// chunk scoring allocates nothing — pinned by TestScoreChunkZeroAlloc
// and the committed BENCH_10.json allocs/op gate.
type Scorer struct {
	members []Member
	// maxWidth is the widest member encoding, sizing the shared encode
	// buffer once per worker.
	maxWidth int
}

// NewScorer builds a scorer over the committee. Every member must carry
// a model and a fitted encoder whose widths agree.
func NewScorer(members []Member) (*Scorer, error) {
	if len(members) == 0 {
		return nil, errors.New("active: empty committee")
	}
	s := &Scorer{members: members}
	for _, m := range members {
		if m.Model == nil || m.Enc == nil {
			return nil, fmt.Errorf("active: committee member %q lacks a model or encoder", m.Name)
		}
		w := m.Enc.NumColumns()
		if got := m.Model.NumInputs(); got != w {
			return nil, fmt.Errorf("active: member %q expects %d inputs but its encoder produces %d columns", m.Name, got, w)
		}
		if w > s.maxWidth {
			s.maxWidth = w
		}
	}
	return s, nil
}

// scoreScratchKey identifies the scorer's slot in an engine worker's
// local store.
type scoreScratchKey struct{}

// scoreScratch holds one worker's reusable scoring buffers: the encode
// matrix of the current chunk (one flat allocation, re-sliced per
// member width), per-member prediction and spread outputs, per-row
// accumulators, and each family's prediction scratch keyed by its
// artifact tag (so mixed-family committees stay zero-alloc).
type scoreScratch struct {
	flat   []float64
	rows   [][]float64
	preds  []float64
	spread []float64
	sum    []float64
	sum2   []float64
	within []float64
	fams   map[string]model.Scratch
}

func (sc *scoreScratch) scratchFor(fam model.Family) model.Scratch {
	s, ok := sc.fams[fam.Tag]
	if !ok {
		if sc.fams == nil {
			sc.fams = make(map[string]model.Scratch, 1)
		}
		s = fam.NewScratch()
		sc.fams[fam.Tag] = s
	}
	return s
}

// ensure sizes the scratch for an n-row chunk at the scorer's maximum
// member width. Growth-only, so a warmed worker never reallocates.
func (sc *scoreScratch) ensure(n, maxWidth int) {
	if cap(sc.flat) < n*maxWidth {
		sc.flat = make([]float64, n*maxWidth)
	}
	if cap(sc.rows) < n {
		sc.rows = make([][]float64, n)
	}
	if cap(sc.preds) < n {
		sc.preds = make([]float64, n)
		sc.spread = make([]float64, n)
		sc.sum = make([]float64, n)
		sc.sum2 = make([]float64, n)
		sc.within = make([]float64, n)
	}
}

func scoreScratchFrom(ctx context.Context) *scoreScratch {
	return engine.WorkerLocal(ctx, scoreScratchKey{}, func() any { return new(scoreScratch) }).(*scoreScratch)
}

// ScoreChunk scores pool rows [lo,hi) into mean and vari (full-pool
// slices, written index-addressed at [lo,hi)). The worker-local scratch
// comes from ctx; long-lived callers outside an engine pool should wrap
// their context with engine.NewWorkerContext to get buffer reuse.
func (s *Scorer) ScoreChunk(ctx context.Context, pool *dataset.Dataset, lo, hi int, mean, vari []float64) error {
	n := hi - lo
	sc := scoreScratchFrom(ctx)
	sc.ensure(n, s.maxWidth)
	sum, sum2, within := sc.sum[:n], sc.sum2[:n], sc.within[:n]
	for i := range sum {
		sum[i], sum2[i], within[i] = 0, 0, 0
	}
	for _, m := range s.members {
		width := m.Enc.NumColumns()
		rows := sc.rows[:n]
		for i := 0; i < n; i++ {
			rows[i] = sc.flat[i*width : (i+1)*width]
			if err := m.Enc.EncodeRowInto(rows[i], pool.Row(lo+i)); err != nil {
				return fmt.Errorf("active: encoding pool row %d for %q: %w", lo+i, m.Name, err)
			}
		}
		preds := sc.preds[:n]
		// The target transform is affine, so an interval of model-space
		// width w spans w*unitScale raw units.
		unitScale := m.Enc.UnscaleTarget(1) - m.Enc.UnscaleTarget(0)
		if sp, ok := m.Model.(Spreader); ok {
			spread := sc.spread[:n]
			sp.PredictSpreadInto(preds, spread, rows)
			for i := 0; i < n; i++ {
				p := m.Enc.UnscaleTarget(preds[i])
				sum[i] += p
				sum2[i] += p * p
				w := spread[i] * unitScale
				within[i] += w * w
			}
			continue
		}
		m.Model.PredictAllInto(preds, rows, sc.scratchFor(m.Family))
		for i := 0; i < n; i++ {
			p := m.Enc.UnscaleTarget(preds[i])
			sum[i] += p
			sum2[i] += p * p
		}
	}
	k := float64(len(s.members))
	for i := 0; i < n; i++ {
		mu := sum[i] / k
		va := sum2[i]/k - mu*mu
		if va < 0 { // rounding noise from the one-pass variance
			va = 0
		}
		mean[lo+i] = mu
		vari[lo+i] = va + within[i]/k
	}
	return nil
}

// ScoreAll scores every pool row, fanning chunks out on the engine pool
// for large pools. mean and vari must have pool.Len() elements; writes
// are index-addressed, so the result is independent of scheduling. Each
// chunk's in-kernel time is reported as a KernelTime event so RunReports
// break out acquisition-scoring throughput.
func (s *Scorer) ScoreAll(ctx context.Context, opts engine.Options, pool *dataset.Dataset, mean, vari []float64) error {
	if len(mean) != pool.Len() || len(vari) != pool.Len() {
		return fmt.Errorf("active: ScoreAll buffers hold %d/%d slots for %d pool rows", len(mean), len(vari), pool.Len())
	}
	score := func(ctx context.Context, lo, hi int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		start := time.Now()
		if err := s.ScoreChunk(ctx, pool, lo, hi, mean, vari); err != nil {
			return err
		}
		opts.Hook.Emit(engine.Event{
			Kind: engine.KernelTime, Label: "active score",
			Fold: -1, Samples: int64(hi - lo), Elapsed: time.Since(start),
		})
		return nil
	}
	if pool.Len() < scoreParallelMin {
		return score(ctx, 0, pool.Len())
	}
	return engine.Map(ctx, opts, pool.Len(), scoreChunk, "active score", score)
}
