// Package active is the training-side active-learning subsystem: a
// deterministic, budgeted loop that replaces one-shot random sampling
// with rounds of train-committee → score-pool → acquire-batch →
// re-train. The paper's Sampled-DSE workflow (Figure 1a) draws its
// 1–5 % training sample uniformly at random and trains once; this
// package spends the same simulation budget adaptively, steering each
// round's simulations to the design points the current surrogate
// committee is least sure about (or, for best-design search, most
// hopeful about).
//
// Acquisition policies live behind a small registry mirroring the model
// registry's Family pattern — committee disagreement, greedy max-min
// diversity, and expected improvement ship built in; a new policy is one
// Register call. Pool scoring fans out on the internal/engine pool with
// worker-local scratch (the chunk path allocates nothing steady-state),
// and every stochastic choice derives from the config seed via
// stat.DeriveSeed, so a run is bit-identical at any worker count.
//
// The package deliberately does not import internal/core: core owns
// model training and hands the loop a TrainRound callback, so the
// dependency points the same way as everywhere else in the repository
// (core orchestrates, subsystems serve).
package active

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"perfpred/internal/dataset"
	"perfpred/internal/engine"
	"perfpred/internal/faultinject"
	"perfpred/internal/model"
	"perfpred/internal/stat"
)

// Member is one trained committee surrogate: a registry model bound to
// the encoder that prepared its inputs, exactly as core trains them.
type Member struct {
	// Name labels the member (the model kind's display name).
	Name string
	// Family is the member's registry descriptor (scratch allocation,
	// artifact tag for per-family scratch reuse).
	Family model.Family
	// Model is the trained surrogate.
	Model model.Model
	// Enc is the fitted input encoder the model was trained behind.
	Enc *dataset.Encoder
}

// MemberError is one committee member's measured error at one round —
// the learning-curve trajectory RunReports carry.
type MemberError struct {
	// Name is the member's model label.
	Name string
	// MAPE is the member's mean absolute percentage error on the
	// evaluation data (the full space, for sampled DSE).
	MAPE float64
}

// Committee is one round's trained committee plus its optional measured
// error trajectory. Errors is observability only — it never feeds
// acquisition, which sees nothing but the members and the pool.
type Committee struct {
	Members []Member
	Errors  []MemberError
}

// Config configures one active-learning run.
type Config struct {
	// Seed drives every stochastic choice, via stat.DeriveSeed streams.
	Seed int64
	// Rounds is the number of acquisition rounds (required, > 0).
	Rounds int
	// Batch is the number of pool points acquired per round (required,
	// > 0); the loop's total simulation budget is the initial sample
	// plus Rounds×Batch, clipped to the pool.
	Batch int
	// Strategy names the registered acquisition policy ("" = committee).
	Strategy string
	// Workers bounds scoring fan-outs (0 = GOMAXPROCS).
	Workers int
	// Hook, if non-nil, observes engine events from the scoring fan-outs.
	Hook engine.Hook
	// TrainRound trains the committee on the current labeled set. Every
	// stochastic choice must derive from roundSeed so the loop stays
	// bit-identical at any worker count. Required.
	TrainRound func(ctx context.Context, labeled *dataset.Dataset, roundSeed int64) (*Committee, error)
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RoundStats records one acquisition round for observability: sizes,
// wall-clock timings, and the committee's error trajectory. Timings are
// measurements, never inputs — the determinism suites compare
// everything else bit-for-bit.
type RoundStats struct {
	// Round is the 1-based round index.
	Round int
	// LabeledBefore and PoolBefore are the set sizes entering the round.
	LabeledBefore, PoolBefore int
	// Acquired is how many points the round moved pool → labeled.
	Acquired int
	// TrainSeconds and AcquireSeconds are the round's committee-training
	// and acquisition-scoring wall-clock times.
	TrainSeconds, AcquireSeconds float64
	// Committee is the trained members' measured error this round.
	Committee []MemberError
}

// Result is one completed active-learning run.
type Result struct {
	// Strategy is the acquisition policy that ran.
	Strategy string
	// LabeledIdx are the labeled rows' indices into the full dataset the
	// run was given: the initial sample first, then each round's
	// acquisitions in acquisition order.
	LabeledIdx []int
	// PoolIdx are the still-unlabeled indices, in original order.
	PoolIdx []int
	// Rounds holds one entry per executed acquisition round.
	Rounds []RoundStats
}

// Run executes the active-learning loop over full, starting from the
// already-labeled initial indices (the random seed sample). Each round
// fires the active.acquire_round fault point (a forced fault fails the
// round and aborts the loop), retrains the committee via cfg.TrainRound,
// scores the remaining pool with the configured strategy, and moves the
// acquired batch into the labeled set. The loop ends after cfg.Rounds
// rounds or when the pool runs dry, whichever comes first.
//
// Determinism contract: round r derives roundSeed = DeriveSeed(cfg.Seed,
// 9000+r); the committee trains from roundSeed (the callback's duty) and
// the strategy acquires from DeriveSeed(roundSeed, 1). All pool indices
// are tracked in original order and every fan-out writes
// index-addressed, so the labeled trajectory is bit-identical for any
// worker count or schedule.
func Run(ctx context.Context, full *dataset.Dataset, initial []int, cfg Config) (*Result, error) {
	if full == nil || full.Len() == 0 {
		return nil, errors.New("active: empty design-space dataset")
	}
	if len(initial) == 0 {
		return nil, errors.New("active: empty initial sample")
	}
	if cfg.Rounds <= 0 || cfg.Batch <= 0 {
		return nil, fmt.Errorf("active: rounds %d and batch %d must be positive", cfg.Rounds, cfg.Batch)
	}
	if cfg.TrainRound == nil {
		return nil, errors.New("active: no TrainRound callback")
	}
	name := cfg.Strategy
	if name == "" {
		name = StrategyCommittee
	}
	strat, ok := LookupStrategy(name)
	if !ok {
		return nil, fmt.Errorf("active: unknown acquisition strategy %q (have %v)", name, Strategies())
	}

	labeled := append([]int(nil), initial...)
	_, pool, err := full.Complement(labeled)
	if err != nil {
		return nil, err
	}
	res := &Result{Strategy: name}
	opts := engine.Options{Workers: cfg.workers(), Hook: cfg.Hook}

	for round := 1; round <= cfg.Rounds && len(pool) > 0; round++ {
		if _, err := faultinject.Active().Hit(ctx, faultinject.ActiveAcquireRound); err != nil {
			return nil, fmt.Errorf("active: round %d: %w", round, err)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		roundSeed := stat.DeriveSeed(cfg.Seed, 9000+round)
		st := RoundStats{Round: round, LabeledBefore: len(labeled), PoolBefore: len(pool)}

		labeledDS, err := full.Subset(labeled)
		if err != nil {
			return nil, err
		}
		trainStart := time.Now()
		com, err := cfg.TrainRound(ctx, labeledDS, roundSeed)
		if err != nil {
			return nil, fmt.Errorf("active: round %d: training committee: %w", round, err)
		}
		st.TrainSeconds = time.Since(trainStart).Seconds()
		st.Committee = com.Errors

		poolDS, err := full.Subset(pool)
		if err != nil {
			return nil, err
		}
		k := cfg.Batch
		if k > len(pool) {
			k = len(pool)
		}
		acqStart := time.Now()
		picks, err := strat.Acquire(ctx, &Round{
			Pool:    poolDS,
			Labeled: labeledDS,
			Members: com.Members,
			Seed:    stat.DeriveSeed(roundSeed, 1),
			Opts:    opts,
		}, k)
		if err != nil {
			return nil, fmt.Errorf("active: round %d: %s acquisition: %w", round, name, err)
		}
		st.AcquireSeconds = time.Since(acqStart).Seconds()
		if err := checkPicks(picks, k, len(pool)); err != nil {
			return nil, fmt.Errorf("active: round %d: %s acquisition: %w", round, name, err)
		}

		// Move the batch pool → labeled: labeled grows in acquisition
		// order, the pool keeps its original order.
		taken := make(map[int]bool, len(picks))
		for _, p := range picks {
			labeled = append(labeled, pool[p])
			taken[p] = true
		}
		rest := pool[:0]
		for i, idx := range pool {
			if !taken[i] {
				rest = append(rest, idx)
			}
		}
		pool = rest
		st.Acquired = len(picks)
		res.Rounds = append(res.Rounds, st)
	}
	res.LabeledIdx = labeled
	res.PoolIdx = pool
	return res, nil
}

// checkPicks validates one acquisition batch: exactly k picks, each a
// distinct in-range pool index — a misbehaving strategy fails loudly
// instead of corrupting the budget accounting.
func checkPicks(picks []int, k, poolLen int) error {
	if len(picks) != k {
		return fmt.Errorf("returned %d picks, want %d", len(picks), k)
	}
	seen := make(map[int]bool, len(picks))
	for _, p := range picks {
		if p < 0 || p >= poolLen {
			return fmt.Errorf("pick %d out of pool range [0,%d)", p, poolLen)
		}
		if seen[p] {
			return fmt.Errorf("pick %d returned twice", p)
		}
		seen[p] = true
	}
	return nil
}
