package loadtest

import (
	"context"
	"reflect"
	"testing"
	"time"

	"perfpred/internal/core"
	"perfpred/internal/engine"
	"perfpred/internal/faultinject"
)

// logf routes harness progress into the test log.
func logf(t *testing.T) func(string, ...any) {
	return func(format string, args ...any) { t.Logf(format, args...) }
}

// failReport dumps the report's violations with the reproducing seed.
func failReport(t *testing.T, rep *Report) {
	t.Helper()
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if !rep.OK() {
		t.Fatalf("chaos run violated %d invariants; reproduce with seed %d (schedule %#x)",
			len(rep.Violations), rep.Seed, rep.ScheduleHash)
	}
}

// TestChaosScenarioSeeded is the acceptance scenario: a seeded chaos
// run with faults AND the prediction cache armed must actually trigger
// shedding, failed (and successful) reloads, deadline expiries, cache
// hits and stalled cache lookups — and still hold every serving
// invariant, with every 200 bit-matching offline scoring and the
// generation-boundary epilogue proving no hit survives a reload.
func TestChaosScenarioSeeded(t *testing.T) {
	rep, err := Run(Config{
		Seed:         7,
		Duration:     1200 * time.Millisecond,
		Faults:       true,
		CacheEntries: 2048,
		Logf:         logf(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	failReport(t, rep)

	// The run must have exercised each chaos class, not just survived.
	if rep.Serve.Shed == 0 {
		t.Error("chaos run shed nothing: bursts never overflowed the admission queue")
	}
	if rep.StatusCounts["504"] == 0 {
		t.Error("chaos run saw no deadline expiries: flush stalls never outlived the request timeout")
	}
	if rep.Reloads.Failed == 0 {
		t.Error("chaos run had no failed reloads: reload/artifact faults never fired")
	}
	if rep.Reloads.OK == 0 {
		t.Error("chaos run had no successful reloads")
	}
	if rep.Serve.FaultsInjected == 0 {
		t.Error("no faults fired on the serving path")
	}
	if rep.BitCompared == 0 {
		t.Error("no successful predictions were bit-compared against offline scoring")
	}
	if rep.BitMismatches != 0 {
		t.Errorf("%d of %d predictions diverged from offline scoring", rep.BitMismatches, rep.BitCompared)
	}
	if rep.Serve.Cache.Hits == 0 {
		t.Error("cache-armed chaos run recorded no hits: the duplicate class never landed")
	}
	if fs := rep.FaultStats[faultinject.ServeCacheLookup.String()]; fs.Fires == 0 {
		t.Error("cache-lookup latency fault never fired")
	}
	if rep.Epilogue == nil || rep.Epilogue.ReloadsOK == 0 {
		t.Errorf("generation-boundary epilogue did not complete: %+v", rep.Epilogue)
	}
}

// TestCleanRunNoFaults replays a schedule against an unfaulted daemon
// with the cache armed: no 500s, no injected faults, and still
// bit-exact responses — with real cache hits behind them.
func TestCleanRunNoFaults(t *testing.T) {
	rep, err := Run(Config{
		Seed:         11,
		Duration:     800 * time.Millisecond,
		Faults:       false,
		CacheEntries: 2048,
		Logf:         logf(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	failReport(t, rep)
	if rep.Serve.FaultsInjected != 0 {
		t.Errorf("faults disabled but %d fired", rep.Serve.FaultsInjected)
	}
	if n := rep.StatusCounts["500"]; n != 0 {
		t.Errorf("clean run produced %d server errors", n)
	}
	if rep.BitCompared == 0 || rep.BitMismatches != 0 {
		t.Errorf("bit comparison: %d compared, %d mismatched", rep.BitCompared, rep.BitMismatches)
	}
	if rep.Serve.Cache.Hits == 0 {
		t.Error("cache-armed clean run recorded no hits")
	}
}

// TestScheduleDeterministic pins the reproducibility contract: the same
// seed yields byte-identical scheduling decisions, a different seed
// diverges.
func TestScheduleDeterministic(t *testing.T) {
	models := []string{"lre", "nns", "treeb"}
	a := BuildSchedule(7, 300, 2*time.Second, models, 192)
	b := BuildSchedule(7, 300, 2*time.Second, models, 192)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if a.Hash() != b.Hash() {
		t.Fatal("same schedule hashed differently")
	}
	c := BuildSchedule(8, 300, 2*time.Second, models, 192)
	if a.Hash() == c.Hash() {
		t.Fatal("different seeds produced the same schedule hash")
	}
	// The schedule must contain every chaos ingredient.
	var bursts map[time.Duration]int = map[time.Duration]int{}
	kinds := map[PayloadKind]int{}
	reloads, timeouts, hot := 0, 0, 0
	for _, ev := range a.Events {
		if ev.Reload {
			reloads++
			continue
		}
		kinds[ev.Payload]++
		bursts[ev.At]++
		if ev.Timeout > 0 {
			timeouts++
		}
		if ev.Hot {
			hot++
			for _, idx := range ev.RowIdxs {
				if idx >= hotPoolSize {
					t.Errorf("hot request %d drew row %d outside the hot pool (size %d)", ev.Seq, idx, hotPoolSize)
				}
			}
		}
	}
	if reloads == 0 || timeouts == 0 {
		t.Fatalf("schedule missing reloads (%d) or client timeouts (%d)", reloads, timeouts)
	}
	if hot == 0 {
		t.Error("schedule has no duplicate-class (hot) requests")
	}
	for _, k := range []PayloadKind{PayloadOK, PayloadBadWidth, PayloadBadType, PayloadUnknownModel, PayloadUnknownCategory} {
		if kinds[k] == 0 {
			t.Errorf("schedule has no %v payloads", k)
		}
	}
	maxBurst := 0
	for _, n := range bursts {
		if n > maxBurst {
			maxBurst = n
		}
	}
	if maxBurst < burstSize {
		t.Errorf("largest synchronized burst is %d requests, want >= %d", maxBurst, burstSize)
	}
}

// TestSameSeedReproduces runs the full harness twice with one seed: the
// scheduling decisions (and so the schedule hash recorded in the
// report) must be identical, and both runs must pass.
func TestSameSeedReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("two full harness runs")
	}
	cfg := Config{Seed: 21, Duration: 700 * time.Millisecond, Requests: 150, Faults: true}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	failReport(t, a)
	failReport(t, b)
	if a.ScheduleHash != b.ScheduleHash {
		t.Fatalf("same seed produced different schedules: %#x vs %#x", a.ScheduleHash, b.ScheduleHash)
	}
}

// TestGoldenScoringZeroAlloc pins the harness's own comparison path:
// offline scoring of a served artifact on a worker context — the
// reference every 200 is bit-compared against — allocates nothing in
// steady state with faults disabled, proving the fault hooks put no
// allocations on the kernel path.
func TestGoldenScoringZeroAlloc(t *testing.T) {
	dir := t.TempDir()
	fx, err := buildFixture(dir, 5, 64)
	if err != nil {
		t.Fatal(err)
	}
	wctx := engine.NewWorkerContext(context.Background())
	for _, name := range fx.models {
		p, err := core.LoadPredictorFile(dir + "/" + name + ".json")
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(fx.rows))
		// Warm the worker-local scratch, then demand zero allocations.
		if err := p.PredictRowsInto(wctx, out, fx.rows); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if err := p.PredictRowsInto(wctx, out, fx.rows); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: steady-state scoring allocates %.1f times per batch, want 0", name, allocs)
		}
	}
}

// TestGatewayCleanRun replays a schedule through the gateway over two
// clean replicas with caches armed: bit-exact responses, perfect cache
// affinity (every hot key on exactly one replica), zero ejections, and
// per-replica generation/shed/cache accounting that reconciles.
func TestGatewayCleanRun(t *testing.T) {
	rep, err := Run(Config{
		Seed:            11,
		Duration:        900 * time.Millisecond,
		Faults:          false,
		CacheEntries:    2048,
		GatewayReplicas: 2,
		Logf:            logf(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	failReport(t, rep)
	if rep.Gateway == nil || len(rep.ServeReplicas) != 2 {
		t.Fatalf("gateway-mode report incomplete: gateway=%v replicas=%d", rep.Gateway != nil, len(rep.ServeReplicas))
	}
	if rep.Gateway.FaultsInjected != 0 {
		t.Errorf("faults disabled but %d gateway faults fired", rep.Gateway.FaultsInjected)
	}
	if rep.BitCompared == 0 || rep.BitMismatches != 0 {
		t.Errorf("bit comparison: %d compared, %d mismatched", rep.BitCompared, rep.BitMismatches)
	}
	if rep.AffinityKeys == 0 || rep.AffinityMaxSpread != 1 {
		t.Errorf("cache affinity not perfect: %d keys, max spread %d (want 1)",
			rep.AffinityKeys, rep.AffinityMaxSpread)
	}
	var hits int64
	for _, sr := range rep.ServeReplicas {
		hits += sr.Cache.Hits
	}
	if hits == 0 {
		t.Error("cache-armed gateway run recorded no replica cache hits")
	}
}

// TestGatewayChaosKillRestart is the gateway acceptance scenario: a
// seeded chaos run through the gateway over three replicas with the
// serving fault plans armed AND one replica killed mid-schedule and
// restarted — no request may be lost, every 200 stays bit-identical to
// offline scoring, the gateway must eject and readmit the crashed
// replica, and affinity may spread to at most two replicas per key.
func TestGatewayChaosKillRestart(t *testing.T) {
	rep, err := Run(Config{
		Seed:            7,
		Duration:        1500 * time.Millisecond,
		Faults:          true,
		CacheEntries:    2048,
		GatewayReplicas: 3,
		ReplicaKill:     true,
		Logf:            logf(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	failReport(t, rep)
	if rep.ReplicaKills != 1 || rep.ReplicaRestarts != 1 {
		t.Fatalf("kill choreography: %d kills, %d restarts", rep.ReplicaKills, rep.ReplicaRestarts)
	}
	if rep.Gateway.Ejects == 0 || rep.Gateway.Readmits == 0 {
		t.Errorf("health machine never cycled: %d ejects, %d readmits", rep.Gateway.Ejects, rep.Gateway.Readmits)
	}
	t.Logf("gateway counters: requests=%d hedges=%d hedgeWins=%d retries=%d shed=%d errors=%d ejects=%d readmits=%d",
		rep.Gateway.Requests, rep.Gateway.Hedges, rep.Gateway.HedgeWins, rep.Gateway.Retries,
		rep.Gateway.Shed, rep.Gateway.Errors, rep.Gateway.Ejects, rep.Gateway.Readmits)
	for _, rr := range rep.Gateway.Replicas {
		t.Logf("  replica %s: healthy=%v requests=%d transportErrs=%d ejects=%d readmits=%d probes=%d probeFails=%d",
			rr.Addr, rr.Healthy, rr.Requests, rr.TransportErrors, rr.Ejects, rr.Readmits, rr.Probes, rr.ProbeFailures)
	}
	// Whether a predict lands on the corpse before probes eject it is
	// timing-dependent (the pre-ejection window is ~2 probe intervals),
	// so transparent retries cannot be asserted here — the gateway's
	// TestRetryOnDeadReplica pins that mechanism deterministically.
	// What IS deterministic: the ~450ms dead window spans many probe
	// intervals, so the crash must have left a trace on the victim.
	var crashObserved bool
	for _, rr := range rep.Gateway.Replicas {
		if rr.ProbeFailures > 0 || rr.TransportErrors > 0 {
			crashObserved = true
		}
	}
	if !crashObserved && rep.Gateway.Retries == 0 {
		t.Error("kill/restart left no trace on any replica (no probe failures, transport errors, or retries)")
	}
	if rep.Gateway.FaultsInjected == 0 {
		t.Error("no gateway-path faults fired")
	}
	if rep.BitCompared == 0 {
		t.Error("no successful predictions were bit-compared against offline scoring")
	}
	if rep.BitMismatches != 0 {
		t.Errorf("%d of %d predictions diverged from offline scoring", rep.BitMismatches, rep.BitCompared)
	}
	if rep.AffinityMaxSpread > 2 {
		t.Errorf("affinity spread %d exceeds the kill allowance of 2", rep.AffinityMaxSpread)
	}
}

// TestGatewayConfigValidation pins the gateway-mode config contract.
func TestGatewayConfigValidation(t *testing.T) {
	if _, err := Run(Config{Seed: 1, GatewayReplicas: 1}); err == nil {
		t.Error("Run accepted a single-replica gateway")
	}
	if _, err := Run(Config{Seed: 1, ReplicaKill: true}); err == nil {
		t.Error("Run accepted ReplicaKill without gateway mode")
	}
}
