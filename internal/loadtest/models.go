package loadtest

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"perfpred/internal/core"
	"perfpred/internal/dataset"
	"perfpred/internal/engine"
	"perfpred/internal/tree"
)

// fixtureModels maps registry names to the kinds a chaos run serves:
// one model per family stack (linear, neural, tree), so every batch
// kernel and encoder mode is under fire at once.
func fixtureModels() map[string]core.ModelKind {
	return map[string]core.ModelKind{
		"lre":   core.LRE,
		"nns":   core.NNS,
		"treeb": tree.KindTreeB,
	}
}

// synthSchema is the synthetic design-space schema chaos fixtures use —
// the same shape the serve tests exercise: two numerics, a flag, and a
// categorical with numeric levels (so both LR and NN encoders have work
// to do).
func synthSchema() (*dataset.Schema, error) {
	return dataset.NewSchema("cycles",
		dataset.Field{Name: "size", Kind: dataset.Numeric},
		dataset.Field{Name: "width", Kind: dataset.Numeric},
		dataset.Field{Name: "fast", Kind: dataset.Flag},
		dataset.Field{Name: "pred", Kind: dataset.Categorical, NumericLevels: map[string]float64{
			"weak": 1, "strong": 2,
		}},
	)
}

// synthRow draws one raw record and its target from the synthetic
// design-space response surface.
func synthRow(r *rand.Rand) ([]dataset.Value, float64) {
	size := 16 + float64(r.Intn(5))*16
	width := float64(2 + r.Intn(4)*2)
	fast := r.Intn(2) == 0
	pk := "weak"
	if r.Intn(2) == 0 {
		pk = "strong"
	}
	y := 10000/width + 2000*math.Exp(-size/32)
	if fast {
		y *= 0.9
	}
	if pk == "strong" {
		y *= 0.85
	}
	row := []dataset.Value{
		dataset.Num(size), dataset.Num(width), dataset.FlagVal(fast), dataset.Cat(pk),
	}
	return row, y
}

// synthDataset builds n synthetic training records.
func synthDataset(n int, seed int64) (*dataset.Dataset, error) {
	s, err := synthSchema()
	if err != nil {
		return nil, err
	}
	d := dataset.New(s)
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		row, y := synthRow(r)
		if err := d.Append(row, y); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// evalRowSet draws n raw evaluation rows (targets discarded — the
// harness compares served predictions against offline scoring, not
// against ground truth).
func evalRowSet(n int, seed int64) ([][]dataset.Value, error) {
	rows := make([][]dataset.Value, n)
	r := rand.New(rand.NewSource(seed))
	for i := range rows {
		rows[i], _ = synthRow(r)
	}
	return rows, nil
}

// fixture is the trained-and-served world of one chaos run: the model
// directory the daemon loads, the shared evaluation rows, and the
// offline golden predictions every 200 response is bit-compared to.
type fixture struct {
	dir    string
	models []string // sorted registry names
	rows   [][]dataset.Value
	golden map[string][]float64
}

// buildFixture trains one model per family on a synthetic dataset,
// saves the artifacts into dir, and computes golden predictions for the
// evaluation rows by loading the artifacts back (the exact bytes the
// registry serves) and scoring offline through PredictRowsInto. Golden
// scoring happens before any fault injector is activated, so goldens
// are never perturbed.
func buildFixture(dir string, seed int64, evalN int) (*fixture, error) {
	train, err := synthDataset(128, seed)
	if err != nil {
		return nil, err
	}
	rows, err := evalRowSet(evalN, seed+1)
	if err != nil {
		return nil, err
	}
	fx := &fixture{dir: dir, rows: rows, golden: map[string][]float64{}}
	cfg := core.TrainConfig{Seed: seed, Workers: 2, EpochScale: 0.2}
	wctx := engine.NewWorkerContext(context.Background())
	for name, kind := range fixtureModels() {
		p, err := core.Train(context.Background(), kind, train, cfg)
		if err != nil {
			return nil, fmt.Errorf("loadtest: training %s: %w", name, err)
		}
		path := filepath.Join(dir, name+".json")
		if err := savePredictor(path, p); err != nil {
			return nil, err
		}
		// Reload from disk so goldens score the served artifact, not the
		// in-memory predictor (the save/load round trip is exact for
		// Go's JSON float encoding, but compare what is actually served).
		loaded, err := core.LoadPredictorFile(path)
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(rows))
		if err := loaded.PredictRowsInto(wctx, out, rows); err != nil {
			return nil, fmt.Errorf("loadtest: golden scoring %s: %w", name, err)
		}
		fx.golden[name] = out
		fx.models = append(fx.models, name)
	}
	sort.Strings(fx.models)
	return fx, nil
}

func savePredictor(path string, p *core.Predictor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// wireRow converts one raw record into the JSON value row the predict
// API accepts: numbers for numerics, booleans for flags, strings for
// categoricals, in schema field order.
func wireRow(s *dataset.Schema, row []dataset.Value) []any {
	out := make([]any, len(row))
	for i, f := range s.Fields {
		switch f.Kind {
		case dataset.Numeric:
			out[i] = row[i].Float()
		case dataset.Flag:
			out[i] = row[i].Bool()
		default:
			out[i] = row[i].Label()
		}
	}
	return out
}
