package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"time"

	"perfpred/internal/core"
	"perfpred/internal/engine"
	"perfpred/internal/serve"
)

const (
	// epilogueModel is the model the epilogue retrains. The neural
	// family is seed-sensitive, so a different seed (and different
	// training data) provably moves its predictions.
	epilogueModel = "nns"
	// epilogueAttempts bounds every retried step: faults stay armed
	// through the epilogue, so probes, artifact loads and reloads all
	// need a retry budget that outlasts the fault cadences.
	epilogueAttempts = 40
	epilogueBackoff  = 5 * time.Millisecond
)

// EpilogueStats records the generation-boundary epilogue of a
// cache-armed run, with the counts the run-wide invariants need to stay
// balanced (epilogue reload successes advance the registry generation;
// epilogue 429s explain shed-counter movement after the schedule).
type EpilogueStats struct {
	Probes         int `json:"probes"`
	Observed429s   int `json:"observed_429s"`
	ReloadAttempts int `json:"reload_attempts"`
	ReloadsOK      int `json:"reloads_ok"`
}

// runEpilogue drives the generation-boundary proof of a cache-armed
// run. The schedule has drained but the daemon — and any armed fault
// injector — is still live:
//
//  1. probe the schedule's hot rows and bit-compare against the old
//     goldens (the cache is warm, so these are near-certain hits);
//  2. retrain one model on different data, overwrite its artifact in
//     place, and reload until an attempt lands;
//  3. probe the same hot rows again and bit-compare against goldens
//     scored from the NEW artifact. A cache hit crossing the generation
//     boundary would serve the old model's bits and fail here.
//
// Violations land in h.epiViolations and are folded into the report.
func (h *harness) runEpilogue() {
	epi := &EpilogueStats{}
	h.epi = epi
	hot := hotPoolSize
	if hot > len(h.fx.rows) {
		hot = len(h.fx.rows)
	}

	oldGolden := h.fx.golden[epilogueModel]
	for idx := 0; idx < hot; idx++ {
		got, ok := h.epilogueRequest(epi, idx)
		if !ok {
			h.epiViolations = append(h.epiViolations,
				fmt.Sprintf("epilogue pre-reload: hot row %d never answered 200 in %d attempts", idx, epilogueAttempts))
			continue
		}
		epi.Probes++
		if got != oldGolden[idx] {
			h.epiViolations = append(h.epiViolations,
				fmt.Sprintf("epilogue pre-reload: hot row %d predicted %v, offline golden %v", idx, got, oldGolden[idx]))
		}
	}

	// Retrain on a different dataset and seed so even a deterministic
	// trainer would produce a different artifact, and swap it in place.
	train, err := synthDataset(128, h.cfg.Seed+777)
	if err != nil {
		h.epiViolations = append(h.epiViolations, fmt.Sprintf("epilogue: retrain dataset: %v", err))
		return
	}
	p, err := core.Train(context.Background(), fixtureModels()[epilogueModel], train,
		core.TrainConfig{Seed: h.cfg.Seed + 77, Workers: 2, EpochScale: 0.2})
	if err != nil {
		h.epiViolations = append(h.epiViolations, fmt.Sprintf("epilogue: retraining %s: %v", epilogueModel, err))
		return
	}
	path := filepath.Join(h.fx.dir, epilogueModel+".json")
	if err := savePredictor(path, p); err != nil {
		h.epiViolations = append(h.epiViolations, fmt.Sprintf("epilogue: saving retrained artifact: %v", err))
		return
	}

	// Score the new goldens from the artifact actually on disk. The
	// artifact-load fault point fires on this path too, so retry.
	var newGolden []float64
	wctx := engine.NewWorkerContext(context.Background())
	for try := 0; try < epilogueAttempts && newGolden == nil; try++ {
		loaded, err := core.LoadPredictorFile(path)
		if err != nil {
			time.Sleep(epilogueBackoff)
			continue
		}
		out := make([]float64, hot)
		if err := loaded.PredictRowsInto(wctx, out, h.fx.rows[:hot]); err != nil {
			h.epiViolations = append(h.epiViolations, fmt.Sprintf("epilogue: scoring new goldens: %v", err))
			return
		}
		newGolden = out
	}
	if newGolden == nil {
		h.epiViolations = append(h.epiViolations,
			fmt.Sprintf("epilogue: retrained artifact never loaded in %d attempts", epilogueAttempts))
		return
	}
	moved := false
	for i := range newGolden {
		if newGolden[i] != oldGolden[i] {
			moved = true
			break
		}
	}
	if !moved {
		h.epiViolations = append(h.epiViolations,
			"epilogue has no teeth: retrained artifact predicts identically on every hot row")
		return
	}

	// Reload until one attempt lands — the reload fault rejects every
	// third attempt and artifact faults can tear others.
	reloaded := false
	for try := 0; try < epilogueAttempts && !reloaded; try++ {
		epi.ReloadAttempts++
		if _, err := h.srv.Reload(); err == nil {
			epi.ReloadsOK++
			reloaded = true
			break
		}
		time.Sleep(epilogueBackoff)
	}
	if !reloaded {
		h.epiViolations = append(h.epiViolations,
			fmt.Sprintf("epilogue: no reload succeeded in %d attempts", epilogueAttempts))
		return
	}

	for idx := 0; idx < hot; idx++ {
		got, ok := h.epilogueRequest(epi, idx)
		if !ok {
			h.epiViolations = append(h.epiViolations,
				fmt.Sprintf("epilogue post-reload: hot row %d never answered 200 in %d attempts", idx, epilogueAttempts))
			continue
		}
		epi.Probes++
		if got == newGolden[idx] {
			continue
		}
		if got == oldGolden[idx] {
			h.epiViolations = append(h.epiViolations,
				fmt.Sprintf("cache hit crossed the generation boundary: hot row %d served the pre-reload model's bits (%v) after a successful reload", idx, got))
		} else {
			h.epiViolations = append(h.epiViolations,
				fmt.Sprintf("epilogue post-reload: hot row %d predicted %v, new-artifact golden %v", idx, got, newGolden[idx]))
		}
	}
}

// epilogueRequest posts one hot row until it draws a 200 (faults are
// still armed, so shed / stalled / injected-error outcomes retry within
// the attempt budget) and returns its single prediction.
func (h *harness) epilogueRequest(epi *EpilogueStats, idx int) (float64, bool) {
	body, err := json.Marshal(&serve.PredictRequest{
		Model: epilogueModel,
		Row:   wireRow(h.schema, h.fx.rows[idx]),
	})
	if err != nil {
		return 0, false
	}
	for try := 0; try < epilogueAttempts; try++ {
		resp, err := h.client.Post(h.base+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			time.Sleep(epilogueBackoff)
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			epi.Observed429s++
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			time.Sleep(epilogueBackoff)
			continue
		}
		var pr serve.PredictResponse
		err = json.NewDecoder(resp.Body).Decode(&pr)
		resp.Body.Close()
		if err != nil || len(pr.Predictions) != 1 {
			time.Sleep(epilogueBackoff)
			continue
		}
		return pr.Predictions[0], true
	}
	return 0, false
}
