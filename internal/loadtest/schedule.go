package loadtest

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"
)

// PayloadKind classifies what a scheduled predict request carries. The
// chaos schedule mixes well-formed requests with every malformation
// class the serving front end must reject before admission, so a soak
// run continuously re-proves the client-error/server-error boundary.
type PayloadKind int

const (
	// PayloadOK is a well-formed request against a served model.
	PayloadOK PayloadKind = iota
	// PayloadBadWidth sends a row with one value too many — must be a
	// 400 regardless of load.
	PayloadBadWidth
	// PayloadBadType sends a string where the schema wants a number —
	// must be a 400.
	PayloadBadType
	// PayloadUnknownModel targets a model the registry does not serve —
	// must be a 404.
	PayloadUnknownModel
	// PayloadUnknownCategory sends a category with no numeric mapping to
	// a numeric-coded (LR) model — must be a 400 *before* admission
	// (the pre-enqueue CheckRows path), never a scoring failure.
	PayloadUnknownCategory
)

// String names the payload kind for reports.
func (k PayloadKind) String() string {
	switch k {
	case PayloadOK:
		return "ok"
	case PayloadBadWidth:
		return "bad_width"
	case PayloadBadType:
		return "bad_type"
	case PayloadUnknownModel:
		return "unknown_model"
	case PayloadUnknownCategory:
		return "unknown_category"
	}
	return fmt.Sprintf("payload(%d)", int(k))
}

// Event is one scheduled action of a chaos run: either a predict
// request or a registry reload. Every field is decided by the schedule
// builder, never at replay time, so a run's request stream is a pure
// function of its seed.
type Event struct {
	// Seq is the event's index in schedule order.
	Seq int
	// At is the event's offset from the start of the replay.
	At time.Duration

	// Reload marks a registry reload instead of a predict request;
	// AdminHTTP selects POST /admin/reload, otherwise the reload goes
	// through Server.Reload directly — the SIGHUP handler's path.
	Reload    bool
	AdminHTTP bool

	// Model is the registry model name the request targets.
	Model string
	// RowIdxs are indices into the shared evaluation row set; len>1 uses
	// the batch "rows" form, len==1 with Single set uses "row".
	RowIdxs []int
	Single  bool
	// Hot marks a duplicate-class request: its rows are drawn only from
	// the small hot prefix of the eval set, so identical design points
	// recur constantly across concurrent requests — the traffic shape
	// that makes a prediction cache coalesce and hit, and that a chaos
	// run needs to prove those hits stay bit-safe under reload races.
	Hot bool
	// Payload is the request's malformation class.
	Payload PayloadKind
	// Timeout, when nonzero, is a client-side deadline attached to the
	// request context — the request may be abandoned mid-flight, which
	// exercises cancellation while queued or being scored.
	Timeout time.Duration
}

// Schedule is a deterministic chaos request schedule.
type Schedule struct {
	Seed   int64
	Events []Event
}

// scheduleParams are the shape knobs BuildSchedule draws from.
const (
	burstSize         = 48 // simultaneous requests per burst (> queue depth, to force shedding)
	reloadSpacing     = 250 * time.Millisecond
	clientTimeoutFrac = 0.08 // fraction of OK requests carrying a client-side deadline
	hotPoolSize       = 8    // eval-row prefix the duplicate (hot) class draws from
	hotFrac           = 0.35 // fraction of OK requests pinned to the hot pool
)

// BuildSchedule derives the full request schedule from a seed: request
// offsets (a uniform trickle plus synchronized bursts sized to overflow
// the admission queue), per-request model/rows/payload choices, reload
// times (with occasional same-instant pairs, i.e. concurrent reloads),
// and client-side deadlines. Calling it twice with the same arguments
// yields identical schedules — the reproducibility contract chaos
// failures are debugged with.
func BuildSchedule(seed int64, requests int, horizon time.Duration, models []string, evalRows int) *Schedule {
	r := rand.New(rand.NewSource(seed))
	var events []Event

	// Reloads: evenly spaced with jitter; every third gets a twin at the
	// same instant so reloads race each other (and in-flight predicts).
	nReloads := int(horizon / reloadSpacing)
	if nReloads < 6 {
		nReloads = 6
	}
	for i := 0; i < nReloads; i++ {
		at := time.Duration(float64(horizon) * (float64(i) + r.Float64()) / float64(nReloads))
		ev := Event{At: at, Reload: true, AdminHTTP: i%2 == 0}
		events = append(events, ev)
		if i%3 == 2 {
			twin := ev
			twin.AdminHTTP = !ev.AdminHTTP
			events = append(events, twin)
		}
	}

	// Bursts: carve off part of the request budget into synchronized
	// clumps; the remainder trickles uniformly over the horizon.
	nBursts := requests / 150
	if nBursts < 2 {
		nBursts = 2
	}
	burstBudget := nBursts * burstSize
	if burstBudget > requests/2 {
		burstBudget = requests / 2
		nBursts = burstBudget / burstSize
	}
	burstAt := make([]time.Duration, nBursts)
	for i := range burstAt {
		burstAt[i] = time.Duration(float64(horizon) * (float64(i) + 0.5 + 0.4*r.Float64()) / float64(nBursts+1))
	}
	for i := 0; i < requests; i++ {
		var at time.Duration
		if i < burstBudget && nBursts > 0 {
			at = burstAt[i%nBursts]
		} else {
			at = time.Duration(r.Int63n(int64(horizon)))
		}
		events = append(events, buildRequest(r, at, models, evalRows))
	}

	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	for i := range events {
		events[i].Seq = i
	}
	return &Schedule{Seed: seed, Events: events}
}

// buildRequest draws one predict event's model, rows, payload class and
// optional client deadline.
func buildRequest(r *rand.Rand, at time.Duration, models []string, evalRows int) Event {
	ev := Event{At: at, Model: models[r.Intn(len(models))]}
	switch p := r.Float64(); {
	case p < 0.04:
		ev.Payload = PayloadBadWidth
	case p < 0.07:
		ev.Payload = PayloadBadType
	case p < 0.09:
		ev.Payload = PayloadUnknownModel
		ev.Model = "ghost"
	case p < 0.12:
		// Unknown categories are only client errors for numeric-coded
		// encoders; one-hot models legitimately score unseen categories
		// as all-zero indicators. Pin the request to the LR model.
		ev.Payload = PayloadUnknownCategory
		ev.Model = "lre"
	}
	// Duplicate class: a share of well-formed requests draws rows only
	// from the hot prefix, so the same design points repeat across
	// concurrent requests and batch bodies.
	pool := evalRows
	if ev.Payload == PayloadOK && r.Float64() < hotFrac {
		ev.Hot = true
		if pool > hotPoolSize {
			pool = hotPoolSize
		}
	}
	if r.Float64() < 0.7 {
		ev.Single = true
		ev.RowIdxs = []int{r.Intn(pool)}
	} else {
		n := 2 + r.Intn(6)
		ev.RowIdxs = make([]int, n)
		for i := range ev.RowIdxs {
			ev.RowIdxs[i] = r.Intn(pool)
		}
	}
	if ev.Payload == PayloadOK && r.Float64() < clientTimeoutFrac {
		ev.Timeout = time.Duration(3+r.Intn(13)) * time.Millisecond
	}
	return ev
}

// Hash fingerprints the schedule's decisions. Two runs with the same
// seed and sizing produce the same hash; reports record it so "same
// seed, same schedule" is checkable from artifacts alone.
func (s *Schedule) Hash() uint64 {
	h := fnv.New64a()
	for _, ev := range s.Events {
		fmt.Fprintf(h, "%d|%d|%t|%t|%s|%v|%t|%t|%d|%d\n",
			ev.Seq, ev.At, ev.Reload, ev.AdminHTTP, ev.Model, ev.RowIdxs, ev.Single, ev.Hot, ev.Payload, ev.Timeout)
	}
	return h.Sum64()
}
