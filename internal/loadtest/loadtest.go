// Package loadtest is the chaos/soak harness for the serving stack: it
// replays a deterministic, seed-derived request schedule (mixed models,
// malformed payloads, client deadlines, concurrent reloads) against an
// in-process daemon — optionally with the faultinject layer armed so
// batch flushes stall past request deadlines, admissions fail, and
// reloads tear — and checks the serving invariants that must hold under
// any interleaving:
//
//   - every scheduled request gets exactly one terminal response; the
//     batcher never drops work without shedding it as a 429;
//   - every 200 bit-matches offline core.Predictor.PredictRowsInto
//     scoring of the same artifact (Go's JSON float encoding round-trips
//     float64 exactly, so "bit-match" means ==, not a tolerance);
//   - malformed payloads map to their exact client-error codes no
//     matter the load — never a 5xx, never a queue slot;
//   - the registry generation only moves forward and the model set is
//     never partial, even while reloads race requests and each other;
//   - the shed counter equals the number of 429s observed on the wire,
//     and the final ServeReport is internally consistent.
//
// Everything stochastic — request times, burst placement, payload
// classes, fault firing — derives from Config.Seed, so any failure
// reproduces from the single seed printed in the report.
package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"perfpred/internal/dataset"
	"perfpred/internal/faultinject"
	"perfpred/internal/gateway"
	"perfpred/internal/obs"
	"perfpred/internal/serve"
)

// Config sizes one chaos run.
type Config struct {
	// Seed derives the schedule, the fixture models, and (when Faults is
	// set) every fault-injection decision. Same seed, same run.
	Seed int64
	// Duration is the schedule horizon. Default 2s.
	Duration time.Duration
	// Requests is the number of predict requests to schedule. Default
	// scales with Duration (~150/s, minimum 200).
	Requests int
	// Workers bounds concurrent in-flight client requests. It must
	// exceed the schedule's burst size for bursts to actually overflow
	// the admission queue. Default 64.
	Workers int
	// Faults arms the chaos fault plans (stalled batch flushes past the
	// request deadline, forced admission errors, failing reloads and
	// artifact loads, a skewed serving clock). When false the same
	// schedule replays against a clean daemon.
	Faults bool
	// RequestTimeout is the daemon's per-request deadline. Default 60ms
	// with faults armed (so injected flush stalls expire queued
	// requests), 2s otherwise.
	RequestTimeout time.Duration
	// CacheEntries arms the daemon's sharded prediction cache with the
	// given capacity (0 leaves it off — the production default). A
	// cache-armed run additionally checks the cache accounting
	// invariants (hits + misses == lookups, coalesced ≤ misses, a
	// duplicate-heavy schedule must actually hit) and finishes with a
	// generation-boundary epilogue: retrain one model, swap its
	// artifact, reload, and re-probe the hot rows against goldens scored
	// from the new artifact — a cache hit crossing the reload boundary
	// cannot survive it. (Gateway-mode runs skip the epilogue — it
	// drives Server.Reload directly, which has no equivalent through the
	// front tier — but keep all cache accounting checks per replica.)
	CacheEntries int
	// GatewayReplicas, when ≥ 2, runs the replicated topology instead of
	// a single daemon: that many in-process replicas behind an
	// internal/gateway front tier, with the schedule replayed against
	// the gateway. Adds the gateway invariants: responses still bit-match
	// offline scoring, hot single-row requests land on exactly one
	// replica (cache affinity), per-replica generations track each
	// replica's own successful reloads, and the shed/hedge/retry
	// accounting reconciles with what clients observed on the wire.
	GatewayReplicas int
	// ReplicaKill (gateway mode only) kills one seed-chosen replica's
	// listener at ~35% of the horizon and restarts it at ~65%, verifying
	// no request is lost across the crash: the gateway must eject the
	// replica, retry its in-flight work on survivors, and readmit it
	// after restart. Affinity is then allowed to spread to at most two
	// replicas per key (the home and its rendezvous fallback).
	ReplicaKill bool
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Requests <= 0 {
		c.Requests = int(c.Duration.Seconds() * 150)
		if c.Requests < 200 {
			c.Requests = 200
		}
	}
	if c.Workers <= 0 {
		c.Workers = 64
	}
	if c.RequestTimeout <= 0 {
		if c.Faults {
			c.RequestTimeout = 60 * time.Millisecond
		} else {
			c.RequestTimeout = 2 * time.Second
		}
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Injected fault errors. They are deliberately distinct sentinels so a
// chaos run can tell its own injected failures from organic ones.
var (
	errInjectedAdmit    = errors.New("loadtest: injected admission fault")
	errInjectedReload   = errors.New("loadtest: injected reload fault")
	errInjectedArtifact = errors.New("loadtest: injected artifact-read fault")
	errInjectedHedge    = errors.New("loadtest: injected hedge suppression")
)

// chaosPlans are the fault plans a Faults run arms. Deterministic Every
// cadences (not probabilities) guarantee each fault class actually
// fires within a short run: every 4th batch flush stalls past the
// request deadline (expiring whatever is queued behind it), admissions
// sporadically fail outright, every 3rd reload attempt is rejected at
// the reload point and every 7th artifact read fails (tearing reloads
// mid-catalog — which the registry must absorb without serving a torn
// state). The artifact cadence starts beyond the initial three loads so
// daemon startup always succeeds.
//
// The cache-lookup plan is latency-only: every 6th lookup stalls for a
// few batch lifetimes, widening the window for evictions and reloads to
// race rows already probed — the cache must absorb the stall without
// changing a single bit. (Forced *errors* at that point take the
// fail-open bypass and are pinned by the serve tests instead.)
// Gateway-mode chaos additionally arms the front-tier points with
// client-invisible faults: routing latency jitter and suppressed
// hedges. (Forced routing errors and probe-driven ejection are pinned
// by the gateway unit tests; in chaos runs real ejection comes from the
// kill/restart choreography, so the affinity invariant stays sharp.)
func chaosPlans(requestTimeout time.Duration, replicas int) map[faultinject.Point]faultinject.Plan {
	// Artifact-read faults must start beyond the initial catalog loads
	// (3 fixture models per daemon) so every daemon boots; with N
	// replicas sharing one injector that floor scales to 3N.
	artifactEvery := uint64(7)
	if replicas > 0 {
		artifactEvery = uint64(3*replicas) + 4
	}
	plans := map[faultinject.Point]faultinject.Plan{
		faultinject.ServeBatchFlush:  {Every: 4, Latency: requestTimeout + requestTimeout/2},
		faultinject.ServeAdmit:       {Prob: 0.04, Err: errInjectedAdmit},
		faultinject.ServeReload:      {Every: 3, Err: errInjectedReload},
		faultinject.CoreArtifactLoad: {Every: artifactEvery, Err: errInjectedArtifact},
		faultinject.ServeCacheLookup: {Every: 6, Latency: 3 * time.Millisecond},
	}
	if replicas > 0 {
		plans[faultinject.GatewayRoute] = faultinject.Plan{Every: 31, Latency: time.Millisecond}
		plans[faultinject.GatewayHedge] = faultinject.Plan{Every: 3, Err: errInjectedHedge}
	}
	return plans
}

// outcome is the terminal result of one scheduled event.
type outcome struct {
	ev       Event
	status   int // HTTP status; 0 = no response
	timedOut bool
	err      string
	preds    []float64 // parsed predictions for 200s
	gen      int64     // reload events: resulting generation
	replica  string    // gateway mode: X-Perfpred-Replica of the winner
	route    string    // gateway mode: X-Perfpred-Route of the winner
}

// harness is one run's live state. Exactly one of srv (single-daemon
// mode) and gw (gateway mode) is non-nil.
type harness struct {
	cfg    Config
	fx     *fixture
	schema *dataset.Schema
	srv    *serve.Server
	gw     *gatewayRig
	base   string
	client *http.Client
	sched  *Schedule
	outs   []outcome

	mu                sync.Mutex
	gens              []int64
	gwGens            map[string][]int64 // gateway mode: generations per replica
	catalogViolations []string

	// epi and epiViolations record the cache generation-boundary
	// epilogue (nil / empty when CacheEntries == 0).
	epi           *EpilogueStats
	epiViolations []string
}

// Run executes one chaos/soak run and returns its invariant report.
// The returned error covers harness failures (cannot train, bind,
// marshal); invariant violations are reported in Report.Violations so
// callers can persist the full evidence before failing.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.GatewayReplicas == 1 {
		return nil, errors.New("loadtest: gateway mode needs at least 2 replicas")
	}
	if cfg.ReplicaKill && cfg.GatewayReplicas < 2 {
		return nil, errors.New("loadtest: ReplicaKill requires gateway mode (GatewayReplicas ≥ 2)")
	}
	start := time.Now()

	dir, err := os.MkdirTemp("", "perfpredload-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	cfg.logf("training fixture models (seed %d)", cfg.Seed)
	fx, err := buildFixture(dir, cfg.Seed, 192)
	if err != nil {
		return nil, err
	}
	schema, err := synthSchema()
	if err != nil {
		return nil, err
	}

	sched := BuildSchedule(cfg.Seed, cfg.Requests, cfg.Duration, fx.models, len(fx.rows))

	// Arm faults before constructing the daemon(s) and gateway: batcher,
	// server and gateway snapshot the active injector (and its clock) at
	// construction.
	var inj *faultinject.Injector
	if cfg.Faults {
		inj = faultinject.New(cfg.Seed, chaosPlans(cfg.RequestTimeout, cfg.GatewayReplicas),
			faultinject.WithClockSkew(300*time.Millisecond, 500*time.Microsecond))
		restore := faultinject.Activate(inj)
		defer restore()
	}

	h := &harness{
		cfg:    cfg,
		fx:     fx,
		schema: schema,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.Workers * 2,
			MaxIdleConnsPerHost: cfg.Workers * 2,
		}},
		sched:  sched,
		outs:   make([]outcome, len(sched.Events)),
		gwGens: map[string][]int64{},
	}

	if cfg.GatewayReplicas > 0 {
		return h.runGatewayMode(dir, inj, start)
	}

	srv, err := serve.New(serve.Config{
		ModelsDir:      dir,
		RequestTimeout: cfg.RequestTimeout,
		Batcher: serve.BatcherConfig{
			QueueDepth: 8,
			MaxBatch:   8,
			MaxWait:    200 * time.Microsecond,
			Workers:    2,
		},
		CacheEntries: cfg.CacheEntries,
		Metrics:      obs.NewRegistry(),
	})
	if err != nil {
		return nil, fmt.Errorf("loadtest: starting daemon: %w", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv.SetAddr(ln.Addr().String())
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	h.srv = srv
	h.base = "http://" + ln.Addr().String()

	cfg.logf("replaying %d events over %v against %s", len(sched.Events), cfg.Duration, h.base)
	pollDone := make(chan struct{})
	go h.pollCatalog(pollDone)
	h.replay()
	close(pollDone)

	// Cache-armed runs end with the generation-boundary epilogue while
	// the daemon (and the fault injector) is still live: probe warm hot
	// rows, retrain-swap-reload one model, probe again against the new
	// artifact's goldens.
	if cfg.CacheEntries > 0 {
		cfg.logf("running generation-boundary epilogue")
		h.runEpilogue()
	}

	// Graceful shutdown: stop accepting, then drain the batcher — every
	// admitted request must have been answered by the time Close returns.
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return nil, fmt.Errorf("loadtest: daemon shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return nil, fmt.Errorf("loadtest: daemon serve: %w", err)
	}
	srv.Close()

	rep := h.buildReport(srv.Report(), inj, time.Since(start))
	cfg.logf("run complete: %d violations", len(rep.Violations))
	return rep, nil
}

// runGatewayMode replays the schedule against the replicated topology:
// GatewayReplicas in-process daemons behind an internal/gateway front
// tier, optionally with the kill/restart choreography running.
func (h *harness) runGatewayMode(dir string, inj *faultinject.Injector, start time.Time) (*Report, error) {
	cfg := h.cfg
	rig, err := startGatewayRig(cfg, dir, cfg.GatewayReplicas)
	if err != nil {
		return nil, err
	}
	h.gw = rig
	h.base = rig.baseURL
	if cfg.ReplicaKill {
		rig.scheduleKill(cfg.Seed, cfg.Duration)
	}

	cfg.logf("replaying %d events over %v against gateway %s (%d replicas, kill=%v)",
		len(h.sched.Events), cfg.Duration, h.base, cfg.GatewayReplicas, cfg.ReplicaKill)
	pollDone := make(chan struct{})
	go h.pollCatalog(pollDone)
	h.replay()
	close(pollDone)

	// Drain the whole tier (gateway first, then replicas); reports are
	// snapshotted after the drain so every counter has settled.
	if err := rig.teardown(); err != nil {
		return nil, fmt.Errorf("loadtest: gateway teardown: %w", err)
	}
	rep := h.buildReport(nil, inj, time.Since(start))
	cfg.logf("run complete: %d violations", len(rep.Violations))
	return rep, nil
}

// replay dispatches every scheduled event at its offset, bounded by
// cfg.Workers concurrent in-flight calls, and waits for all outcomes.
func (h *harness) replay() {
	var wg sync.WaitGroup
	sem := make(chan struct{}, h.cfg.Workers)
	start := time.Now()
	for i := range h.sched.Events {
		ev := h.sched.Events[i]
		if d := time.Until(start.Add(ev.At)); d > 0 {
			time.Sleep(d)
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, ev Event) {
			defer wg.Done()
			defer func() { <-sem }()
			if ev.Reload {
				h.outs[i] = h.runReload(ev)
			} else {
				h.outs[i] = h.runPredict(ev)
			}
		}(i, ev)
	}
	wg.Wait()
}

// runReload executes one reload event — via the admin endpoint or the
// direct Server.Reload path the SIGHUP handler uses. In gateway mode
// every reload goes through the gateway's fan-out endpoint (there is no
// direct path to a replica's Server), and the per-replica outcomes feed
// the generation bookkeeping.
func (h *harness) runReload(ev Event) outcome {
	out := outcome{ev: ev}
	if h.gw != nil {
		resp, err := h.client.Post(h.base+"/admin/reload", "application/json", nil)
		if err != nil {
			out.err = err.Error()
			return out
		}
		defer resp.Body.Close()
		out.status = resp.StatusCode
		var fan gateway.ReloadFanout
		if err := json.NewDecoder(resp.Body).Decode(&fan); err != nil {
			out.err = "decoding reload fan-out: " + err.Error()
			out.status = 0
			return out
		}
		h.gw.noteReload(&fan)
		return out
	}
	if !ev.AdminHTTP {
		gen, err := h.srv.Reload()
		out.gen = gen
		if err != nil {
			out.status = http.StatusInternalServerError
			out.err = err.Error()
		} else {
			out.status = http.StatusOK
		}
		return out
	}
	resp, err := h.client.Post(h.base+"/admin/reload", "application/json", nil)
	if err != nil {
		out.err = err.Error()
		return out
	}
	defer resp.Body.Close()
	out.status = resp.StatusCode
	if resp.StatusCode == http.StatusOK {
		var rr serve.ReloadResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			out.err = "decoding reload response: " + err.Error()
			out.status = 0
			return out
		}
		out.gen = rr.Generation
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
	}
	return out
}

// runPredict executes one predict event and parses its terminal result.
func (h *harness) runPredict(ev Event) outcome {
	out := outcome{ev: ev}
	body, err := json.Marshal(h.requestBody(ev))
	if err != nil {
		out.err = "marshal: " + err.Error()
		return out
	}
	ctx := context.Background()
	if ev.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ev.Timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.base+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		out.err = err.Error()
		return out
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.client.Do(req)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			out.timedOut = true
		}
		out.err = err.Error()
		return out
	}
	defer resp.Body.Close()
	out.status = resp.StatusCode
	out.replica = resp.Header.Get(gateway.HeaderReplica)
	out.route = resp.Header.Get(gateway.HeaderRoute)
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return out
	}
	var pr serve.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		// A response abandoned mid-body by the client deadline is a
		// client timeout, not a protocol violation.
		if ev.Timeout > 0 {
			out.status, out.timedOut, out.err = 0, true, err.Error()
			return out
		}
		out.err = "decoding predict response: " + err.Error()
		out.status = 0
		return out
	}
	out.preds = pr.Predictions
	return out
}

// requestBody builds the wire body for one predict event, applying its
// payload malformation.
func (h *harness) requestBody(ev Event) *serve.PredictRequest {
	rows := make([][]any, len(ev.RowIdxs))
	for i, idx := range ev.RowIdxs {
		rows[i] = wireRow(h.schema, h.fx.rows[idx])
	}
	switch ev.Payload {
	case PayloadBadWidth:
		rows[0] = append(rows[0], 1.0)
	case PayloadBadType:
		rows[0][0] = "not-a-number" // schema field 0 is numeric
	case PayloadUnknownCategory:
		rows[0][3] = "alien" // schema field 3 is the mapped categorical
	}
	req := &serve.PredictRequest{Model: ev.Model}
	if ev.Single && len(rows) == 1 {
		req.Row = rows[0]
	} else {
		req.Rows = rows
	}
	return req
}

// pollCatalog samples /v1/models until done closes, recording the
// generation sequence and checking the model set is never partial — a
// torn catalog (some models missing mid-reload) is an invariant
// violation no matter when it is observed.
func (h *harness) pollCatalog(done <-chan struct{}) {
	t := time.NewTicker(10 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
		}
		resp, err := h.client.Get(h.base + "/v1/models")
		if err != nil {
			continue // transient during shutdown races; replay gating prevents real loss
		}
		if resp.StatusCode != http.StatusOK {
			// Gateway mode: a 502 while a killed replica is being ejected
			// is transport weather, not catalog state.
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			continue
		}
		replica := resp.Header.Get(gateway.HeaderReplica)
		var mr serve.ModelsResponse
		err = json.NewDecoder(resp.Body).Decode(&mr)
		resp.Body.Close()
		if err != nil {
			continue
		}
		names := make([]string, len(mr.Models))
		for i, m := range mr.Models {
			names[i] = m.Name
		}
		h.mu.Lock()
		if h.gw != nil {
			// Generations are per replica: replicas reload independently,
			// so monotonicity only holds within one replica's sequence.
			h.gwGens[replica] = append(h.gwGens[replica], mr.Generation)
		} else {
			h.gens = append(h.gens, mr.Generation)
		}
		if !equalStrings(names, h.fx.models) {
			h.catalogViolations = append(h.catalogViolations,
				fmt.Sprintf("catalog at generation %d served %v, want %v", mr.Generation, names, h.fx.models))
		}
		h.mu.Unlock()
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
