package loadtest

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"perfpred/internal/gateway"
	"perfpred/internal/obs"
	"perfpred/internal/serve"
)

// serveReplica is one in-process perfpredd replica inside a gateway
// rig. The serve.Server (with its registry, batcher and prediction
// cache) lives for the whole run; only the HTTP listener is killed and
// rebound, which is exactly what a crashed-and-restarted process looks
// like from the gateway's side of the wire while keeping the cache and
// generation state a real warm restart would have to rebuild. (The
// harness verifies bit-equivalence and generation bookkeeping, neither
// of which a cold cache would change.)
type serveReplica struct {
	srv  *serve.Server
	addr string // fixed host:port, stable across kill/restart

	mu       sync.Mutex
	hs       *http.Server
	down     bool
	serveErr chan error
}

// bind (re)binds the replica's listener on its fixed address and starts
// serving. First call may pass addr ""; the bound address sticks.
func (sr *serveReplica) bind() error {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	addr := sr.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("loadtest: binding replica %q: %w", addr, err)
	}
	sr.addr = ln.Addr().String()
	sr.srv.SetAddr(sr.addr)
	sr.hs = &http.Server{Handler: sr.srv.Handler()}
	sr.serveErr = make(chan error, 1)
	sr.down = false
	hs := sr.hs
	ch := sr.serveErr
	go func() { ch <- hs.Serve(ln) }()
	return nil
}

// kill force-closes the replica's listener and every open connection —
// a process crash as seen from the network. The serve.Server survives.
func (sr *serveReplica) kill() {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.down || sr.hs == nil {
		return
	}
	sr.down = true
	sr.hs.Close() //nolint:errcheck // force-close is the point
	<-sr.serveErr // reap the Serve goroutine
}

// stop gracefully drains the replica's HTTP surface (end-of-run
// teardown, not crash simulation).
func (sr *serveReplica) stop(ctx context.Context) error {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.down || sr.hs == nil {
		return nil
	}
	sr.down = true
	if err := sr.hs.Shutdown(ctx); err != nil {
		return err
	}
	err := <-sr.serveErr
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// gatewayRig is the replicated topology of a gateway-mode run: N
// in-process replicas behind one Gateway, plus the kill/restart
// choreography and the per-replica reload bookkeeping the invariant
// checks need.
type gatewayRig struct {
	reps    []*serveReplica
	gw      *gateway.Gateway
	gwHS    *http.Server
	gwErr   chan error
	baseURL string

	mu       sync.Mutex
	reloadOK map[string]int // successful reloads per replica addr
	kills    int
	restarts int

	stopKill chan struct{}
	killWG   sync.WaitGroup
}

// startGatewayRig boots n replicas over the shared models dir and one
// gateway fronting them. Faults must already be armed: the servers and
// the gateway snapshot the active injector at construction.
func startGatewayRig(cfg Config, dir string, n int) (*gatewayRig, error) {
	rig := &gatewayRig{
		reloadOK: map[string]int{},
		stopKill: make(chan struct{}),
	}
	fail := func(err error) (*gatewayRig, error) {
		rig.teardown() //nolint:errcheck // already failing
		return nil, err
	}
	for i := 0; i < n; i++ {
		srv, err := serve.New(serve.Config{
			ModelsDir:      dir,
			RequestTimeout: cfg.RequestTimeout,
			Batcher: serve.BatcherConfig{
				QueueDepth: 8,
				MaxBatch:   8,
				MaxWait:    200 * time.Microsecond,
				Workers:    2,
			},
			CacheEntries: cfg.CacheEntries,
			Metrics:      obs.NewRegistry(),
		})
		if err != nil {
			return fail(fmt.Errorf("loadtest: starting replica %d: %w", i, err))
		}
		sr := &serveReplica{srv: srv}
		rig.reps = append(rig.reps, sr)
		if err := sr.bind(); err != nil {
			return fail(err)
		}
	}
	addrs := make([]string, len(rig.reps))
	for i, sr := range rig.reps {
		addrs[i] = sr.addr
	}
	gw, err := gateway.New(gateway.Config{
		Replicas: addrs,
		// Probe fast enough that a killed replica ejects (and a
		// restarted one readmits) well inside the schedule horizon, but
		// slow enough that a few requests land on the corpse first and
		// exercise the transparent-retry path.
		ProbeInterval:    25 * time.Millisecond,
		ProbeTimeout:     250 * time.Millisecond,
		FailThreshold:    2,
		ReadmitThreshold: 2,
		MaxProbeBackoff:  100 * time.Millisecond,
		MaxInFlight:      2 * cfg.Workers,
		HedgeDelay:       10 * time.Millisecond,
		RequestTimeout:   5 * time.Second,
		Metrics:          obs.NewRegistry(),
	})
	if err != nil {
		return fail(err)
	}
	rig.gw = gw
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	gw.SetAddr(ln.Addr().String())
	rig.baseURL = "http://" + ln.Addr().String()
	rig.gwHS = &http.Server{Handler: gw.Handler()}
	rig.gwErr = make(chan error, 1)
	go func() { rig.gwErr <- rig.gwHS.Serve(ln) }()
	return rig, nil
}

// scheduleKill arranges one replica crash at ~35% of the horizon and
// its restart at ~65%, picking the victim deterministically from the
// seed. The stopKill channel aborts the choreography at teardown.
func (rig *gatewayRig) scheduleKill(seed int64, horizon time.Duration) {
	victim := rig.reps[int(uint64(seed)%uint64(len(rig.reps)))]
	killAt := horizon * 35 / 100
	restartAt := horizon * 65 / 100
	rig.killWG.Add(1)
	go func() {
		defer rig.killWG.Done()
		select {
		case <-rig.stopKill:
			return
		case <-time.After(killAt):
		}
		victim.kill()
		rig.mu.Lock()
		rig.kills++
		rig.mu.Unlock()
		select {
		case <-rig.stopKill:
			return
		case <-time.After(restartAt - killAt):
		}
		if err := victim.bind(); err == nil {
			rig.mu.Lock()
			rig.restarts++
			rig.mu.Unlock()
		}
	}()
}

// noteReload folds one reload fan-out result into the per-replica
// success census.
func (rig *gatewayRig) noteReload(fan *gateway.ReloadFanout) {
	rig.mu.Lock()
	defer rig.mu.Unlock()
	for _, r := range fan.Replicas {
		if r.Error == "" {
			rig.reloadOK[r.Addr]++
		}
	}
}

// teardown drains the rig in dependency order — gateway HTTP surface,
// gateway probes/in-flight, then each replica's HTTP surface, batcher
// and server — mirroring the SIGTERM contract of the real two-tier
// topology. Safe on a partially constructed rig.
func (rig *gatewayRig) teardown() error {
	close(rig.stopKill)
	rig.killWG.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var first error
	if rig.gwHS != nil {
		if err := rig.gwHS.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
		if err := <-rig.gwErr; err != nil && !errors.Is(err, http.ErrServerClosed) && first == nil {
			first = err
		}
	}
	if rig.gw != nil {
		rig.gw.Close()
	}
	for _, sr := range rig.reps {
		if err := sr.stop(ctx); err != nil && first == nil {
			first = err
		}
		sr.srv.Close()
	}
	return first
}
