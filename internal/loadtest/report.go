package loadtest

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"time"

	"perfpred/internal/faultinject"
	"perfpred/internal/gateway"
	"perfpred/internal/obs"
)

// ReportVersion is the chaos report schema version.
const ReportVersion = 1

// ReloadStats summarizes the run's reload events.
type ReloadStats struct {
	Attempted int `json:"attempted"`
	OK        int `json:"ok"`
	Failed    int `json:"failed"`
}

// Report is the invariant report of one chaos/soak run — everything
// needed to judge the run and to reproduce it (the seed and schedule
// hash) from the artifact alone.
type Report struct {
	Version      int     `json:"version"`
	Seed         int64   `json:"seed"`
	Faults       bool    `json:"faults"`
	CacheEntries int     `json:"cache_entries"`
	ScheduleHash uint64  `json:"schedule_hash"`
	Events       int     `json:"events"`
	Requests     int     `json:"requests"`
	DurationSecs float64 `json:"duration_seconds"`

	// StatusCounts counts terminal HTTP statuses of predict requests,
	// keyed by code ("200", "429", ...).
	StatusCounts map[string]int `json:"status_counts"`
	// ClientTimeouts counts requests abandoned by their own scheduled
	// client-side deadline (an allowed terminal outcome).
	ClientTimeouts int `json:"client_timeouts"`

	Reloads ReloadStats `json:"reloads"`

	// BitCompared / BitMismatches count golden comparisons: every
	// prediction in every 200 is compared for float64 equality against
	// offline scoring of the same artifact. Any mismatch is a violation.
	BitCompared   int `json:"bit_compared"`
	BitMismatches int `json:"bit_mismatches"`

	// GenerationFirst/Last bracket the registry generations the catalog
	// poller observed; GenerationRegressions counts observations where
	// the generation moved backwards (must be 0).
	GenerationFirst       int64 `json:"generation_first"`
	GenerationLast        int64 `json:"generation_last"`
	GenerationRegressions int   `json:"generation_regressions"`

	// FaultStats is the injector's per-point call/fire census (empty
	// when faults are disabled).
	FaultStats map[string]faultinject.PointStats `json:"fault_stats,omitempty"`

	// Serve is the daemon's own final report (nil in gateway mode — see
	// ServeReplicas).
	Serve *obs.ServeReport `json:"serve,omitempty"`

	// Gateway-mode fields (GatewayReplicas > 0 in the run config).
	// GatewayReplicas is the replica count behind the front tier.
	GatewayReplicas int `json:"gateway_replicas,omitempty"`
	// ReplicaKills / ReplicaRestarts count the kill choreography's
	// completed crashes and rebinds.
	ReplicaKills    int `json:"replica_kills,omitempty"`
	ReplicaRestarts int `json:"replica_restarts,omitempty"`
	// Gateway is the front tier's final report.
	Gateway *obs.GatewayReport `json:"gateway,omitempty"`
	// ServeReplicas are the per-replica final serve reports, in
	// configuration order.
	ServeReplicas []*obs.ServeReport `json:"serve_replicas,omitempty"`
	// AffinityKeys counts distinct (model, row) keys observed on
	// primary-routed single-row 200s; AffinityMaxSpread is the largest
	// number of distinct replicas any one key landed on (1 = perfect
	// cache affinity; 2 is allowed only across a kill/restart).
	AffinityKeys      int `json:"affinity_keys,omitempty"`
	AffinityMaxSpread int `json:"affinity_max_spread,omitempty"`

	// Epilogue records the generation-boundary epilogue of a cache-armed
	// run (nil when CacheEntries == 0).
	Epilogue *EpilogueStats `json:"generation_epilogue,omitempty"`

	// Violations lists every invariant breach, capped at maxViolations
	// entries. An empty list is a passing run.
	Violations []string `json:"violations"`
}

// OK reports whether the run held every invariant.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// maxViolations bounds how many violation strings a report carries; a
// systemic breach would otherwise produce one line per request.
const maxViolations = 25

type violations struct {
	list    []string
	dropped int
}

func (v *violations) addf(format string, args ...any) {
	if len(v.list) >= maxViolations {
		v.dropped++
		return
	}
	v.list = append(v.list, fmt.Sprintf(format, args...))
}

// buildReport folds the run's outcomes into a Report and checks every
// invariant.
func (h *harness) buildReport(sr *obs.ServeReport, inj *faultinject.Injector, elapsed time.Duration) *Report {
	rep := &Report{
		Version:      ReportVersion,
		Seed:         h.cfg.Seed,
		Faults:       h.cfg.Faults,
		CacheEntries: h.cfg.CacheEntries,
		Epilogue:     h.epi,
		ScheduleHash: h.sched.Hash(),
		Events:       len(h.sched.Events),
		DurationSecs: elapsed.Seconds(),
		StatusCounts: map[string]int{},
		Serve:        sr,
	}
	if inj != nil {
		rep.FaultStats = inj.Stats()
	}
	var v violations

	predictRows200 := 0
	admitted := 0
	for i := range h.outs {
		out := &h.outs[i]
		if out.ev.Reload {
			h.checkReload(rep, &v, out)
			continue
		}
		rep.Requests++
		h.checkPredict(rep, &v, out, &predictRows200, &admitted)
	}

	// Catalog invariants from the poller. In gateway mode each replica
	// reloads independently, so monotonicity is judged per replica
	// sequence (as split by the response's replica header), never across
	// the interleaved stream.
	h.mu.Lock()
	gens, torn := h.gens, h.catalogViolations
	gwGens := h.gwGens
	h.mu.Unlock()
	if h.gw != nil {
		var first, last int64 = -1, -1
		for addr, seq := range gwGens {
			if len(seq) == 0 {
				continue
			}
			if first < 0 {
				first, last = seq[0], seq[len(seq)-1]
			}
			for i := 1; i < len(seq); i++ {
				if seq[i] < seq[i-1] {
					rep.GenerationRegressions++
					v.addf("replica %s generation moved backwards: %d then %d", addr, seq[i-1], seq[i])
				}
			}
		}
		if first >= 0 {
			rep.GenerationFirst, rep.GenerationLast = first, last
		}
	} else if len(gens) > 0 {
		rep.GenerationFirst, rep.GenerationLast = gens[0], gens[len(gens)-1]
		for i := 1; i < len(gens); i++ {
			if gens[i] < gens[i-1] {
				rep.GenerationRegressions++
			}
		}
		if rep.GenerationRegressions > 0 {
			v.addf("registry generation moved backwards %d time(s)", rep.GenerationRegressions)
		}
	}
	for _, t := range torn {
		v.addf("%s", t)
	}
	for _, s := range h.epiViolations {
		v.addf("%s", s)
	}

	if h.gw != nil {
		h.checkGatewayMode(rep, &v, predictRows200)
		if v.dropped > 0 {
			v.list = append(v.list, fmt.Sprintf("... and %d more violations", v.dropped))
		}
		rep.Violations = v.list
		if rep.Violations == nil {
			rep.Violations = []string{}
		}
		return rep
	}

	// ServeReport consistency.
	if err := sr.Validate(); err != nil {
		v.addf("final serve report invalid: %v", err)
	}
	wantGen := 1 + int64(rep.Reloads.OK)
	if h.epi != nil {
		wantGen += int64(h.epi.ReloadsOK)
	}
	if sr.Generation != wantGen {
		v.addf("final generation %d, want %d (1 + successful reloads)", sr.Generation, wantGen)
	}
	// Every shed is a 429 on the wire — but a client that abandoned its
	// request at its own deadline never reads the 429 it was sent, so
	// the counter may exceed observed 429s by at most those timeouts.
	// Epilogue probes observe (and retry) their own 429s.
	got := int64(rep.StatusCounts["429"])
	if h.epi != nil {
		got += int64(h.epi.Observed429s)
	}
	if sr.Shed < got {
		v.addf("shed counter %d but %d requests saw 429 — shed without telling the client", sr.Shed, got)
	} else if sr.Shed > got+int64(rep.ClientTimeouts) {
		v.addf("shed counter %d exceeds %d observed 429s + %d client timeouts — requests dropped without a 429",
			sr.Shed, got, rep.ClientTimeouts)
	}
	// Every row returned in a 200 was either scored by the batcher
	// (predictions), served from the cache (hits), or rode a leader's
	// scoring of the same row (coalesced). With the cache off the last
	// two terms are zero and this collapses to the original bound.
	if served := sr.Predictions + sr.Cache.Hits + sr.Cache.Coalesced; served < int64(predictRows200) {
		v.addf("predictions(%d)+cache hits(%d)+coalesced(%d) = %d < %d rows returned in 200s",
			sr.Predictions, sr.Cache.Hits, sr.Cache.Coalesced, served, predictRows200)
	}
	if sr.Requests < int64(admitted) {
		v.addf("requests counter %d < %d requests that reached the batcher", sr.Requests, admitted)
	}
	if !h.cfg.Faults && sr.FaultsInjected != 0 {
		v.addf("faults disabled but %d faults fired", sr.FaultsInjected)
	}

	// Cache accounting. Post-drain, every lookup has resolved as exactly
	// one hit or miss and coalesced waits are a sub-count of misses; a
	// duplicate-heavy schedule against an armed cache must actually hit.
	// With the cache off, its counters must never move at all.
	cs := sr.Cache
	if h.cfg.CacheEntries > 0 {
		if cs.Hits+cs.Misses != cs.Lookups {
			v.addf("cache hits(%d)+misses(%d) != lookups(%d)", cs.Hits, cs.Misses, cs.Lookups)
		}
		if cs.Coalesced > cs.Misses {
			v.addf("cache coalesced %d exceeds misses %d", cs.Coalesced, cs.Misses)
		}
		if cs.Lookups == 0 {
			v.addf("cache armed (%d entries) but no lookup ever reached it", h.cfg.CacheEntries)
		} else if cs.Hits == 0 {
			v.addf("duplicate-heavy schedule recorded zero cache hits over %d lookups", cs.Lookups)
		}
	} else if cs != (obs.CacheStats{}) {
		v.addf("cache disabled but its counters moved: %+v", cs)
	}

	if v.dropped > 0 {
		v.list = append(v.list, fmt.Sprintf("... and %d more violations", v.dropped))
	}
	rep.Violations = v.list
	if rep.Violations == nil {
		rep.Violations = []string{}
	}
	return rep
}

// checkReload folds one reload outcome.
func (h *harness) checkReload(rep *Report, v *violations, out *outcome) {
	rep.Reloads.Attempted++
	switch {
	case out.status == 200:
		rep.Reloads.OK++
	case out.status == 500:
		rep.Reloads.Failed++
		// Gateway kill runs legitimately fail fan-outs while the killed
		// replica is down; otherwise a failed reload needs armed faults.
		if !h.cfg.Faults && !(h.gw != nil && h.cfg.ReplicaKill) {
			v.addf("reload %d failed without faults armed: %s", out.ev.Seq, out.err)
		}
	default:
		v.addf("reload %d: unexpected terminal state status=%d err=%q", out.ev.Seq, out.status, out.err)
	}
}

// checkPredict folds one predict outcome, verifying its terminal class
// against the payload contract and bit-comparing 200s to the goldens.
func (h *harness) checkPredict(rep *Report, v *violations, out *outcome, rows200, admitted *int) {
	ev := out.ev
	if out.status == 0 {
		if out.timedOut && ev.Timeout > 0 {
			rep.ClientTimeouts++
			return
		}
		v.addf("request %d (%s %s): no terminal response: %s", ev.Seq, ev.Model, ev.Payload, out.err)
		return
	}
	rep.StatusCounts[strconv.Itoa(out.status)]++
	switch out.status {
	case 200, 429, 503, 504, 500:
		*admitted++
	}

	want, exact := expectedStatus(ev.Payload)
	if exact {
		if out.status != want {
			v.addf("request %d: %s payload answered %d, want exactly %d", ev.Seq, ev.Payload, out.status, want)
		}
		return
	}
	switch out.status {
	case 200:
	case 429, 503, 504:
		return
	case 500:
		if !h.cfg.Faults {
			v.addf("request %d: 500 without faults armed", ev.Seq)
		}
		return
	default:
		v.addf("request %d: unexpected status %d for ok payload", ev.Seq, out.status)
		return
	}

	// 200: every prediction must bit-match offline scoring.
	golden := h.fx.golden[ev.Model]
	if len(out.preds) != len(ev.RowIdxs) {
		v.addf("request %d: 200 carried %d predictions for %d rows", ev.Seq, len(out.preds), len(ev.RowIdxs))
		return
	}
	*rows200 += len(out.preds)
	for j, idx := range ev.RowIdxs {
		rep.BitCompared++
		if out.preds[j] != golden[idx] {
			rep.BitMismatches++
			v.addf("request %d: model %s row %d predicted %v, offline golden %v",
				ev.Seq, ev.Model, idx, out.preds[j], golden[idx])
		}
	}
}

// expectedStatus returns the exact status a malformed payload must map
// to; exact=false means the payload is well-formed and load-dependent
// outcomes apply.
func expectedStatus(p PayloadKind) (status int, exact bool) {
	switch p {
	case PayloadBadWidth, PayloadBadType, PayloadUnknownCategory:
		return 400, true
	case PayloadUnknownModel:
		return 404, true
	}
	return 0, false
}

// checkGatewayMode folds the replicated-topology invariants: a valid
// gateway report, per-replica serve-report consistency (each replica's
// generation tracks its own successful reloads), tier-wide shed
// reconciliation against wire-observed 429s, cache accounting per
// replica, the kill/restart choreography's health transitions, and
// cache affinity — hot single-row requests landing on exactly one
// replica (two across a kill).
func (h *harness) checkGatewayMode(rep *Report, v *violations, predictRows200 int) {
	rig := h.gw
	gw := rig.gw.Report()
	rep.GatewayReplicas = h.cfg.GatewayReplicas
	rep.Gateway = gw
	rig.mu.Lock()
	rep.ReplicaKills, rep.ReplicaRestarts = rig.kills, rig.restarts
	reloadOK := make(map[string]int, len(rig.reloadOK))
	for addr, n := range rig.reloadOK {
		reloadOK[addr] = n
	}
	rig.mu.Unlock()

	if err := gw.Validate(); err != nil {
		v.addf("final gateway report invalid: %v", err)
	}
	if !h.cfg.Faults && gw.FaultsInjected != 0 {
		v.addf("faults disabled but %d gateway faults fired", gw.FaultsInjected)
	}

	var shedTotal, served, requests, faults int64
	var lookups, hits, misses int64
	for i, sr := range rig.reps {
		r := sr.srv.Report()
		rep.ServeReplicas = append(rep.ServeReplicas, r)
		if err := r.Validate(); err != nil {
			v.addf("replica %s final serve report invalid: %v", sr.addr, err)
		}
		// Each replica's generation is 1 (initial load) plus the reloads
		// that replica itself acknowledged through the fan-out — a killed
		// replica simply misses the reloads broadcast while it was down.
		if want := 1 + int64(reloadOK[sr.addr]); r.Generation != want {
			v.addf("replica %d (%s) generation %d, want %d (1 + its %d acknowledged reloads)",
				i, sr.addr, r.Generation, want, reloadOK[sr.addr])
		}
		shedTotal += r.Shed
		served += r.Predictions + r.Cache.Hits + r.Cache.Coalesced
		requests += r.Requests
		faults += r.FaultsInjected
		lookups += r.Cache.Lookups
		hits += r.Cache.Hits
		misses += r.Cache.Misses
		if h.cfg.CacheEntries > 0 {
			if r.Cache.Hits+r.Cache.Misses != r.Cache.Lookups {
				v.addf("replica %s cache hits(%d)+misses(%d) != lookups(%d)",
					sr.addr, r.Cache.Hits, r.Cache.Misses, r.Cache.Lookups)
			}
			if r.Cache.Coalesced > r.Cache.Misses {
				v.addf("replica %s cache coalesced %d exceeds misses %d", sr.addr, r.Cache.Coalesced, r.Cache.Misses)
			}
		} else if r.Cache != (obs.CacheStats{}) {
			v.addf("replica %s cache disabled but its counters moved: %+v", sr.addr, r.Cache)
		}
	}
	if !h.cfg.Faults && faults != 0 {
		v.addf("faults disabled but %d replica faults fired", faults)
	}

	// Shed reconciliation across the tier. Every wire-observed 429 was
	// counted by a replica's batcher or the gateway's in-flight cap; the
	// converse allows slack for abandoned clients (the 429 was sent but
	// never read) and losing hedge/retry attempts (their 429 lost the
	// first-response race).
	shedTotal += gw.Shed
	observed := int64(rep.StatusCounts["429"])
	if shedTotal < observed {
		v.addf("tier shed %d but %d requests saw 429 — shed without telling the client", shedTotal, observed)
	} else if slack := observed + int64(rep.ClientTimeouts) + gw.Hedges + gw.Retries; shedTotal > slack {
		v.addf("tier shed %d exceeds %d observed 429s + %d client timeouts + %d hedges + %d retries",
			shedTotal, observed, rep.ClientTimeouts, gw.Hedges, gw.Retries)
	}
	// Every row in a client-observed 200 was scored (or cache-served) by
	// some replica; hedges/retries only add extra scoring, so ≥ holds.
	if served < int64(predictRows200) {
		v.addf("replicas served %d rows but clients saw %d rows in 200s", served, predictRows200)
	}
	if requests < int64(rep.StatusCounts["200"]) {
		v.addf("replica requests %d < %d client-observed 200s", requests, rep.StatusCounts["200"])
	}
	if h.cfg.CacheEntries > 0 {
		if lookups == 0 {
			v.addf("caches armed (%d entries each) but no lookup ever reached them", h.cfg.CacheEntries)
		} else if hits == 0 {
			v.addf("duplicate-heavy schedule recorded zero cache hits across %d replica lookups", lookups)
		}
	}

	// Kill choreography: the crash and rebind must both have happened,
	// and the gateway must have seen them (eject on the crash, readmit
	// after the rebind). Without a kill the clean topology must never
	// eject anyone (chaos plans deliberately exclude probe faults).
	if h.cfg.ReplicaKill {
		if rep.ReplicaKills != 1 || rep.ReplicaRestarts != 1 {
			v.addf("kill choreography incomplete: %d kills, %d restarts (want 1 and 1)",
				rep.ReplicaKills, rep.ReplicaRestarts)
		}
		if gw.Ejects == 0 {
			v.addf("replica was killed but the gateway never ejected it")
		}
		if gw.Readmits == 0 {
			v.addf("replica was restarted but the gateway never readmitted it")
		}
	} else if gw.Ejects != 0 {
		v.addf("no replica was killed but the gateway ejected %d time(s)", gw.Ejects)
	}

	// Cache affinity: all primary-routed single-row 200s of one
	// (model, row) key must come from one replica — two across a
	// kill/restart (the key's rendezvous fallback). Hedge and retry
	// winners are excluded: they land elsewhere by design.
	spread := map[string]map[string]bool{}
	for i := range h.outs {
		out := &h.outs[i]
		ev := out.ev
		if ev.Reload || out.status != 200 || !ev.Single || ev.Payload != PayloadOK {
			continue
		}
		if out.route != gateway.RoutePrimary || out.replica == "" {
			continue
		}
		key := fmt.Sprintf("%s/%d", ev.Model, ev.RowIdxs[0])
		if spread[key] == nil {
			spread[key] = map[string]bool{}
		}
		spread[key][out.replica] = true
	}
	allowed := 1
	if h.cfg.ReplicaKill {
		allowed = 2
	}
	rep.AffinityKeys = len(spread)
	for key, reps := range spread {
		if n := len(reps); n > rep.AffinityMaxSpread {
			rep.AffinityMaxSpread = n
		}
		if len(reps) > allowed {
			names := make([]string, 0, len(reps))
			for r := range reps {
				names = append(names, r)
			}
			v.addf("affinity broken: key %s landed on %d replicas %v (allowed %d)", key, len(reps), names, allowed)
		}
	}
	if rep.AffinityKeys == 0 {
		v.addf("no primary-routed single-row 200s observed — affinity invariant is vacuous")
	}
}
