package neural

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// xorData is the classic non-linearly-separable check.
func xorData() ([][]float64, []float64) {
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := []float64{0.1, 0.9, 0.9, 0.1} // soft targets keep sigmoid training stable
	return x, y
}

func TestTrainSGDLearnsXOR(t *testing.T) {
	x, y := xorData()
	r := rand.New(rand.NewSource(3))
	n, err := NewNetwork([]int{2, 6, 1}, Sigmoid, Sigmoid, r)
	if err != nil {
		t.Fatal(err)
	}
	mse, err := n.trainSGD(context.Background(), x, y, sgdOptions{
		epochs: 4000, lr: 0.6, momentum: 0.9,
	}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if mse > 0.01 {
		t.Fatalf("XOR MSE = %v", mse)
	}
	for i := range x {
		got := n.Predict1(x[i])
		if math.Abs(got-y[i]) > 0.2 {
			t.Fatalf("XOR f(%v) = %v, want %v", x[i], got, y[i])
		}
	}
}

func TestTrainSGDLinearFunction(t *testing.T) {
	// y = 0.2 + 0.5*x0 (in [0,1]); a tiny net should nail it.
	r := rand.New(rand.NewSource(5))
	x := make([][]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		v := float64(i) / 49
		x[i] = []float64{v}
		y[i] = 0.2 + 0.5*v
	}
	n, _ := NewNetwork([]int{1, 3, 1}, Sigmoid, Sigmoid, r)
	mse, err := n.trainSGD(context.Background(), x, y, sgdOptions{
		epochs: 1500, lr: 0.5, lrFinal: 0.05, momentum: 0.9,
	}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if mse > 1e-4 {
		t.Fatalf("linear MSE = %v", mse)
	}
}

func TestTrainSGDValidation(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n, _ := NewNetwork([]int{1, 2, 1}, Sigmoid, Sigmoid, r)
	if _, err := n.trainSGD(context.Background(), nil, nil, sgdOptions{epochs: 10, lr: 0.1}, r); err == nil {
		t.Fatal("no data: want error")
	}
	if _, err := n.trainSGD(context.Background(), [][]float64{{1}}, nil, sgdOptions{epochs: 10, lr: 0.1}, r); err == nil {
		t.Fatal("x/y mismatch: want error")
	}
	if _, err := n.trainSGD(context.Background(), [][]float64{{1}}, []float64{1}, sgdOptions{epochs: 0, lr: 0.1}, r); err == nil {
		t.Fatal("zero epochs: want error")
	}
	if _, err := n.trainSGD(context.Background(), [][]float64{{1}}, []float64{1}, sgdOptions{epochs: 5, lr: 0}, r); err == nil {
		t.Fatal("zero lr: want error")
	}
	hl, _ := NewNetwork([]int{1, 2, 1}, HardLimit, Linear, r)
	if _, err := hl.trainSGD(context.Background(), [][]float64{{1}}, []float64{1}, sgdOptions{epochs: 5, lr: 0.1}, r); err == nil {
		t.Fatal("hard-limit training: want error")
	}
}

func TestTrainSGDEarlyStopping(t *testing.T) {
	// With patience, a converged run stops before the epoch budget: verify
	// by checking that a huge budget still returns quickly with low error.
	r := rand.New(rand.NewSource(8))
	x := [][]float64{{0}, {0.5}, {1}, {0.25}, {0.75}, {0.1}}
	y := []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5} // constant target converges fast
	n, _ := NewNetwork([]int{1, 2, 1}, Sigmoid, Sigmoid, r)
	mse, err := n.trainSGD(context.Background(), x, y, sgdOptions{
		epochs: 1_000_000, lr: 0.5, momentum: 0.5, patience: 10, minDelta: 1e-9,
	}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if mse > 1e-3 {
		t.Fatalf("constant-target MSE = %v", mse)
	}
}

func TestFrozenInputStaysZeroThroughTraining(t *testing.T) {
	x, y := xorData()
	r := rand.New(rand.NewSource(10))
	n, _ := NewNetwork([]int{2, 4, 1}, Sigmoid, Sigmoid, r)
	if err := n.FreezeInput(1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.trainSGD(context.Background(), x, y, sgdOptions{epochs: 200, lr: 0.4, momentum: 0.9}, rand.New(rand.NewSource(11))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n.layers[0].out; i++ {
		if n.layers[0].row(i)[1] != 0 {
			t.Fatal("training resurrected a frozen input weight")
		}
	}
}

func TestTrainingIsDeterministicGivenSeeds(t *testing.T) {
	x, y := xorData()
	run := func() float64 {
		n, _ := NewNetwork([]int{2, 4, 1}, Sigmoid, Sigmoid, rand.New(rand.NewSource(12)))
		_, err := n.trainSGD(context.Background(), x, y, sgdOptions{epochs: 300, lr: 0.5, momentum: 0.9}, rand.New(rand.NewSource(13)))
		if err != nil {
			t.Fatal(err)
		}
		return n.Predict1([]float64{0, 1})
	}
	if run() != run() {
		t.Fatal("training not reproducible under fixed seeds")
	}
}

func TestMseOn(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	n, _ := NewNetwork([]int{1, 2, 1}, Linear, Linear, r)
	copy(n.layers[0].row(0), []float64{1, 0})
	copy(n.layers[0].row(1), []float64{0, 0})
	copy(n.layers[1].row(0), []float64{1, 0, 0})
	// f(x) = x; MSE vs y=x+1 is 1.
	got := n.mseOn([][]float64{{0}, {1}, {2}}, []float64{1, 2, 3}, nil)
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("mseOn = %v", got)
	}
	if !math.IsNaN(n.mseOn(nil, nil, nil)) {
		t.Fatal("empty mseOn should be NaN")
	}
}
