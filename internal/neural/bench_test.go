package neural

import (
	"context"
	"testing"

	"perfpred/internal/stat"
)

// benchData synthesizes a Fig. 7-sized training matrix: n records of p
// [0,1]-scaled inputs with a smooth nonlinear target, the shape of the
// chronological-prediction workloads that dominate the paper's wall-clock.
func benchData(n, p int, seed int64) ([][]float64, []float64) {
	r := stat.NewRand(seed)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = make([]float64, p)
		for j := range x[i] {
			x[i][j] = r.Float64()
		}
		y[i] = 0.2 + 0.4*x[i][0] + 0.2*x[i][1]*x[i][2] + 0.1*x[i][3]
	}
	return x, y
}

// benchTrain measures one full training run of a method on the canonical
// benchmark matrix. The seed is fixed so every iteration does identical
// work (same topology search, same early-stopping trajectory) and runs are
// comparable across commits; BENCH_3.json snapshots these numbers.
func benchTrain(b *testing.B, m Method) {
	b.Helper()
	x, y := benchData(128, 16, 7)
	cfg := Config{Method: m, Seed: 1, EpochScale: 0.25, Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(context.Background(), x, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainQuick(b *testing.B)           { benchTrain(b, Quick) }
func BenchmarkTrainSingle(b *testing.B)          { benchTrain(b, Single) }
func BenchmarkTrainDynamic(b *testing.B)         { benchTrain(b, Dynamic) }
func BenchmarkTrainMultiple(b *testing.B)        { benchTrain(b, Multiple) }
func BenchmarkTrainPrune(b *testing.B)           { benchTrain(b, Prune) }
func BenchmarkTrainExhaustivePrune(b *testing.B) { benchTrain(b, ExhaustivePrune) }

// BenchmarkPredictAll measures steady-state whole-space scoring (the
// Figure 1a "predict all 4608 points" step) on a trained model.
func BenchmarkPredictAll(b *testing.B) {
	x, y := benchData(128, 16, 7)
	m, err := Train(context.Background(), x, y, Config{Method: Single, Seed: 1, EpochScale: 0.25, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	space, _ := benchData(4608, 16, 11)
	dst := make([]float64, len(space))
	s := NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := m.PredictAllInto(dst, space, s)
		if len(out) != len(space) {
			b.Fatal("short output")
		}
	}
}

// TestPredictAllZeroAlloc pins the tentpole allocation guarantee as a
// plain test, so `go test` — not just a human reading benchmark output —
// fails if steady-state batch prediction ever allocates again.
func TestPredictAllZeroAlloc(t *testing.T) {
	x, y := benchData(128, 16, 7)
	m, err := Train(context.Background(), x, y, Config{Method: Single, Seed: 1, EpochScale: 0.1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	space, _ := benchData(777, 16, 11) // odd length: exercises the batch tail
	dst := make([]float64, len(space))
	s := NewScratch()
	m.PredictAllInto(dst, space, s) // warm the scratch
	allocs := testing.AllocsPerRun(10, func() {
		m.PredictAllInto(dst, space, s)
	})
	if allocs != 0 {
		t.Errorf("PredictAllInto allocates %.1f objects/run in steady state, want 0", allocs)
	}
}
