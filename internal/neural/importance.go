package neural

import (
	"errors"

	"perfpred/internal/stat"
)

// Importance estimates the relative importance of each input column by
// sensitivity analysis, the way Clementine reports neural-network field
// importance (paper §4.4): for each input, sweep it across its observed
// range while every other input keeps its record value, and measure how
// much the output moves. The result is scaled so 0 means "no effect on the
// prediction" and 1.0 means the input swings the output across the model's
// whole observed output range.
//
// xs should be (a sample of) the training matrix; at most maxRecords rows
// are probed to bound the cost.
func (m *Model) Importance(xs [][]float64) ([]float64, error) {
	const (
		maxRecords = 100
		sweepSteps = 5
	)
	if len(xs) == 0 {
		return nil, errors.New("neural: importance needs probe records")
	}
	p := m.net.NumInputs()
	for _, row := range xs {
		if len(row) != p {
			return nil, errors.New("neural: importance probe width mismatch")
		}
	}
	// Observed per-column ranges.
	lo := make([]float64, p)
	hi := make([]float64, p)
	copy(lo, xs[0])
	copy(hi, xs[0])
	for _, row := range xs {
		for j, v := range row {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	// Deterministic probe subset.
	probes := xs
	if len(xs) > maxRecords {
		idx := stat.Perm(int64(len(xs)), len(xs))[:maxRecords]
		probes = make([][]float64, maxRecords)
		for k, i := range idx {
			probes[k] = xs[i]
		}
	}
	// One scratch serves every probe prediction below: the sensitivity
	// sweep is a pure batched-forward workload.
	s := new(Scratch)
	s.ensureForward(m.net)
	predict := func(row []float64) float64 { return m.net.predict1Scratch(row, s) }
	// Output range across probes (for normalization).
	outLo, outHi := predict(probes[0]), predict(probes[0])
	for _, row := range probes {
		o := predict(row)
		if o < outLo {
			outLo = o
		}
		if o > outHi {
			outHi = o
		}
	}

	imp := make([]float64, p)
	buf := make([]float64, p)
	for j := 0; j < p; j++ {
		if hi[j] == lo[j] || m.net.InputFrozen(j) {
			continue // constant or pruned input: importance 0
		}
		total := 0.0
		for _, row := range probes {
			copy(buf, row)
			minO, maxO := 0.0, 0.0
			for s := 0; s <= sweepSteps; s++ {
				buf[j] = lo[j] + (hi[j]-lo[j])*float64(s)/float64(sweepSteps)
				o := predict(buf)
				if s == 0 || o < minO {
					minO = o
				}
				if s == 0 || o > maxO {
					maxO = o
				}
			}
			total += maxO - minO
		}
		imp[j] = total / float64(len(probes))
	}
	// Normalize by the observed output range so 1.0 ≈ "completely
	// determines the prediction".
	denom := outHi - outLo
	if denom <= 0 {
		denom = 1
	}
	for j := range imp {
		imp[j] /= denom
		if imp[j] > 1 {
			imp[j] = 1
		}
	}
	return imp, nil
}
