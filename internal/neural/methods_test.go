package neural

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// smoothData samples a smooth nonlinear surface on [0,1]³ with targets
// scaled into [0,1] — the kind of function the sampled-DSE study models.
func smoothData(seed int64, n int) ([][]float64, []float64) {
	r := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b, c := r.Float64(), r.Float64(), r.Float64()
		x[i] = []float64{a, b, c}
		y[i] = 0.1 + 0.8*(0.5*a+0.3*math.Sin(2*a*b)+0.2*c*c)/1.0
		if y[i] > 1 {
			y[i] = 1
		}
	}
	return x, y
}

func trainCfg(m Method) Config {
	return Config{Method: m, Seed: 42, EpochScale: 0.4, Workers: 2}
}

func TestTrainAllMethodsFitSmoothSurface(t *testing.T) {
	x, y := smoothData(1, 120)
	xt, yt := smoothData(2, 200)
	for _, m := range Methods() {
		model, err := Train(context.Background(), x, y, trainCfg(m))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if model.Method() != m {
			t.Fatalf("%v: method mismatch", m)
		}
		mse := 0.0
		for i := range xt {
			d := model.Predict(xt[i]) - yt[i]
			mse += d * d
		}
		mse /= float64(len(xt))
		if mse > 0.01 {
			t.Errorf("%v: held-out MSE %v too high", m, mse)
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	x, y := smoothData(3, 60)
	for _, m := range []Method{Quick, Single, Multiple} {
		m1, err := Train(context.Background(), x, y, trainCfg(m))
		if err != nil {
			t.Fatal(err)
		}
		m2, err := Train(context.Background(), x, y, trainCfg(m))
		if err != nil {
			t.Fatal(err)
		}
		probe := []float64{0.3, 0.6, 0.9}
		if m1.Predict(probe) != m2.Predict(probe) {
			t.Errorf("%v not deterministic", m)
		}
	}
}

func TestTrainMultipleDeterministicAcrossWorkerCounts(t *testing.T) {
	x, y := smoothData(4, 60)
	cfg1 := Config{Method: Multiple, Seed: 7, EpochScale: 0.3, Workers: 1}
	cfg4 := Config{Method: Multiple, Seed: 7, EpochScale: 0.3, Workers: 4}
	m1, err := Train(context.Background(), x, y, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	m4, err := Train(context.Background(), x, y, cfg4)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.2, 0.5, 0.8}
	if m1.Predict(probe) != m4.Predict(probe) {
		t.Fatal("worker count changed the trained model")
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(context.Background(), nil, nil, trainCfg(Quick)); err == nil {
		t.Fatal("no data: want error")
	}
	if _, err := Train(context.Background(), [][]float64{{1}}, []float64{1, 2}, trainCfg(Quick)); err == nil {
		t.Fatal("mismatch: want error")
	}
	if _, err := Train(context.Background(), [][]float64{{}, {}, {}, {}}, []float64{1, 2, 3, 4}, trainCfg(Quick)); err == nil {
		t.Fatal("zero-width: want error")
	}
	if _, err := Train(context.Background(), [][]float64{{1}, {2, 3}, {4}, {5}}, []float64{1, 2, 3, 4}, trainCfg(Quick)); err == nil {
		t.Fatal("ragged: want error")
	}
	if _, err := Train(context.Background(), [][]float64{{1}, {2}}, []float64{1, 2}, trainCfg(Quick)); err == nil {
		t.Fatal("too few records: want error")
	}
	x, y := smoothData(5, 20)
	if _, err := Train(context.Background(), x, y, Config{Method: Method(42), Seed: 1}); err == nil {
		t.Fatal("unknown method: want error")
	}
}

func TestSingleHasSmallerHiddenLayerThanQuick(t *testing.T) {
	x, y := smoothData(6, 80)
	ms, err := Train(context.Background(), x, y, trainCfg(Single))
	if err != nil {
		t.Fatal(err)
	}
	mq, err := Train(context.Background(), x, y, trainCfg(Quick))
	if err != nil {
		t.Fatal(err)
	}
	hs := ms.Network().HiddenSizes()[0]
	hq := mq.Network().HiddenSizes()[0]
	if hs > hq {
		t.Fatalf("NN-S hidden %d should be <= NN-Q hidden %d (paper §3.2)", hs, hq)
	}
}

func TestPruneShrinksNetwork(t *testing.T) {
	// A target that depends on only one of three inputs: pruning should
	// yield a network no larger than it started.
	r := rand.New(rand.NewSource(7))
	n := 100
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
		y[i] = 0.2 + 0.6*x[i][0]
	}
	model, err := Train(context.Background(), x, y, trainCfg(Prune))
	if err != nil {
		t.Fatal(err)
	}
	start := len(x[0]) // trainPrune starts with p hidden units
	if got := model.Network().HiddenSizes()[0]; got > start {
		t.Fatalf("prune grew the network: %d > %d", got, start)
	}
}

func TestExhaustivePruneBeatsSingleOnComplexSurface(t *testing.T) {
	// The paper's central sampled-DSE observation: NN-E ≥ NN-S in accuracy.
	gen := func(seed int64, n int) ([][]float64, []float64) {
		r := rand.New(rand.NewSource(seed))
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			a, b, c, d := r.Float64(), r.Float64(), r.Float64(), r.Float64()
			x[i] = []float64{a, b, c, d}
			y[i] = 0.1 + 0.8*(0.35*a+0.25*math.Sin(3*a*b)+0.2*b*c+0.2*d*d*a)
		}
		return x, y
	}
	x, y := gen(8, 150)
	xt, yt := gen(9, 300)
	mse := func(m *Model) float64 {
		s := 0.0
		for i := range xt {
			e := m.Predict(xt[i]) - yt[i]
			s += e * e
		}
		return s / float64(len(xt))
	}
	me, err := Train(context.Background(), x, y, Config{Method: ExhaustivePrune, Seed: 21, EpochScale: 0.5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Train(context.Background(), x, y, Config{Method: Single, Seed: 21, EpochScale: 0.5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if mse(me) > mse(ms)*1.25 {
		t.Fatalf("NN-E (%.5f) clearly worse than NN-S (%.5f)", mse(me), mse(ms))
	}
}

func TestValidationMSEReported(t *testing.T) {
	x, y := smoothData(10, 80)
	mm, err := Train(context.Background(), x, y, trainCfg(Multiple))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(mm.ValidationMSE()) || mm.ValidationMSE() < 0 {
		t.Fatalf("Multiple should report a validation MSE, got %v", mm.ValidationMSE())
	}
	msingle, err := Train(context.Background(), x, y, trainCfg(Single))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(msingle.ValidationMSE()) {
		t.Fatal("Single trains on all data; validation MSE should be NaN")
	}
}

func TestMethodString(t *testing.T) {
	want := map[Method]string{
		Quick: "NN-Q", Dynamic: "NN-D", Multiple: "NN-M",
		Prune: "NN-P", ExhaustivePrune: "NN-E", Single: "NN-S",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if len(Methods()) != 6 {
		t.Fatal("Methods() should list 6 methods")
	}
}

func TestPredictAll(t *testing.T) {
	x, y := smoothData(11, 40)
	m, err := Train(context.Background(), x, y, trainCfg(Single))
	if err != nil {
		t.Fatal(err)
	}
	batch := m.PredictAll(x[:5])
	if len(batch) != 5 {
		t.Fatalf("len = %d", len(batch))
	}
	for i := range batch {
		if batch[i] != m.Predict(x[i]) {
			t.Fatal("PredictAll disagrees with Predict")
		}
	}
}
