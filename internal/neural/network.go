// Package neural implements the paper's neural-network models (§3.2):
// feed-forward multilayer perceptrons trained by backpropagation, with the
// five SPSS Clementine training methods — Quick (NN-Q), Dynamic (NN-D),
// Multiple (NN-M), Prune (NN-P), Exhaustive Prune (NN-E) — plus the
// single-layer constant-learning-rate method (NN-S) the paper uses as the
// Ipek-et-al.-style baseline.
//
// Inputs and the target are expected pre-scaled to [0,1] (the dataset
// package's ForNN encoding). The output unit is sigmoidal, like
// Clementine's, which means predictions saturate outside the training
// target range — the mechanism behind the paper's observation that neural
// networks extrapolate poorly in chronological prediction.
//
// The hot path is written as batched, allocation-free kernels: each
// layer's weights live in one flat contiguous row-major slice with the
// bias fused as the last element of every row, and the forward/backward
// routines stream whole batches of samples through a reusable [Scratch].
// The kernels perform exactly the same floating-point operations in
// exactly the same order as the per-sample reference implementation (see
// reference_test.go), so the layout change is invisible to every seeded
// result.
package neural

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a unit's transfer function. The paper (§3.2) lists
// linear, hard-limit, sigmoid and tan-sigmoid activations for hidden units.
type Activation int

const (
	// Sigmoid is the logistic function 1/(1+e^-x).
	Sigmoid Activation = iota
	// TanSigmoid is tanh(x).
	TanSigmoid
	// Linear is the identity.
	Linear
	// HardLimit is the Heaviside step (non-differentiable; usable for
	// inference-only layers, rejected by the trainer).
	HardLimit
)

// String returns the activation name.
func (a Activation) String() string {
	switch a {
	case Sigmoid:
		return "sigmoid"
	case TanSigmoid:
		return "tansig"
	case Linear:
		return "linear"
	case HardLimit:
		return "hardlim"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case TanSigmoid:
		return math.Tanh(x)
	case Linear:
		return x
	case HardLimit:
		if x >= 0 {
			return 1
		}
		return 0
	default:
		return x
	}
}

// applyAll applies the activation to a whole layer's raw sums in place.
// Per unit it evaluates the same expression as apply, so layer-at-a-time
// application is bit-identical to unit-at-a-time.
func (a Activation) applyAll(out []float64) {
	switch a {
	case Sigmoid:
		for i, v := range out {
			out[i] = 1 / (1 + math.Exp(-v))
		}
	case TanSigmoid:
		for i, v := range out {
			out[i] = math.Tanh(v)
		}
	case Linear:
	case HardLimit:
		for i, v := range out {
			if v >= 0 {
				out[i] = 1
			} else {
				out[i] = 0
			}
		}
	}
}

// derivFromOutput returns dσ/dx expressed in terms of the unit output.
func (a Activation) derivFromOutput(out float64) float64 {
	switch a {
	case Sigmoid:
		return out * (1 - out)
	case TanSigmoid:
		return 1 - out*out
	case Linear:
		return 1
	default:
		return 0
	}
}

// layer holds the weights of one fully connected layer as a single flat
// contiguous slice: unit i's incoming weights occupy the row
// w[i*(in+1) : (i+1)*(in+1)], whose last element is the unit's bias.
type layer struct {
	w   []float64
	in  int // fan-in (units of the previous layer)
	out int // units in this layer
	act Activation
}

// stride is the flat row width: fan-in plus the fused bias.
func (l *layer) stride() int { return l.in + 1 }

// row returns unit i's weight row (aliasing the flat slice).
func (l *layer) row(i int) []float64 {
	s := l.in + 1
	return l.w[i*s : (i+1)*s : (i+1)*s]
}

// Network is a feed-forward multilayer perceptron.
type Network struct {
	sizes  []int // unit counts: input, hidden..., output
	layers []layer
	// frozenInput marks input indices whose first-layer weights are pinned
	// to zero (used by the pruning trainers to remove inputs in place).
	frozenInput []bool
	// nFrozen counts true entries of frozenInput so the update kernel can
	// skip the per-weight freeze check entirely on unpruned networks.
	nFrozen int
}

// NewNetwork creates a network with the given unit counts per layer
// (inputs first, output last), hidden activation hact and output
// activation oact, with weights initialized uniformly in ±1/√fanin.
func NewNetwork(sizes []int, hact, oact Activation, r *rand.Rand) (*Network, error) {
	if len(sizes) < 2 {
		return nil, errors.New("neural: need at least input and output layers")
	}
	for _, s := range sizes {
		if s < 1 {
			return nil, errors.New("neural: layer sizes must be positive")
		}
	}
	n := &Network{
		sizes:       append([]int(nil), sizes...),
		frozenInput: make([]bool, sizes[0]),
	}
	for l := 1; l < len(sizes); l++ {
		act := hact
		if l == len(sizes)-1 {
			act = oact
		}
		fanin := sizes[l-1]
		scale := 1 / math.Sqrt(float64(fanin))
		// Row-major fill consumes the RNG in the same unit-then-weight
		// order as the ragged-slice layout did.
		w := make([]float64, sizes[l]*(fanin+1))
		for i := range w {
			w[i] = (2*r.Float64() - 1) * scale
		}
		n.layers = append(n.layers, layer{w: w, in: fanin, out: sizes[l], act: act})
	}
	return n, nil
}

// NumInputs returns the input dimensionality.
func (n *Network) NumInputs() int { return n.sizes[0] }

// NumOutputs returns the output dimensionality.
func (n *Network) NumOutputs() int { return n.sizes[len(n.sizes)-1] }

// HiddenSizes returns the hidden layer unit counts.
func (n *Network) HiddenSizes() []int {
	return append([]int(nil), n.sizes[1:len(n.sizes)-1]...)
}

// NumWeights returns the total number of trainable parameters.
func (n *Network) NumWeights() int {
	c := 0
	for li := range n.layers {
		c += len(n.layers[li].w)
	}
	return c
}

// Scratch holds the reusable buffers of the batched kernels: per-layer
// activations, backpropagated deltas and momentum velocities. A zero
// Scratch is ready to use; buffers grow on demand and are retained across
// calls, so steady-state forward/backward passes allocate nothing. A
// Scratch is not safe for concurrent use — obtain one per goroutine
// (training and batch prediction fetch one from the engine's worker-local
// store, so the pool owns its lifetime).
type Scratch struct {
	acts   [][]float64 // acts[li]: outputs of weight layer li
	deltas [][]float64 // deltas[li]: error terms of weight layer li
	vel    [][]float64 // vel[li]: momentum velocity, same shape as layer li's w
	batch  [][]float64 // batch[li]: batchWidth stacked activation rows of layer li
}

// NewScratch returns an empty scratch; equivalent to new(Scratch).
func NewScratch() *Scratch { return &Scratch{} }

// grow returns buf resliced to n elements, reallocating only when the
// capacity is insufficient.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// ensureForward sizes the activation buffers for n's forward kernel.
func (s *Scratch) ensureForward(n *Network) {
	if cap(s.acts) < len(n.layers) {
		s.acts = make([][]float64, len(n.layers))
	}
	s.acts = s.acts[:len(n.layers)]
	for li := range n.layers {
		s.acts[li] = grow(s.acts[li], n.layers[li].out)
	}
}

// ensureBatch sizes the stacked activation buffers for the batchWidth-wide
// forward kernel (in addition to the per-sample forward buffers).
func (s *Scratch) ensureBatch(n *Network) {
	s.ensureForward(n)
	if cap(s.batch) < len(n.layers) {
		s.batch = make([][]float64, len(n.layers))
	}
	s.batch = s.batch[:len(n.layers)]
	for li := range n.layers {
		s.batch[li] = grow(s.batch[li], batchWidth*n.layers[li].out)
	}
}

// ensureBackward sizes every buffer the backward kernel needs and zeroes
// the momentum velocities (each SGD run starts from zero velocity).
func (s *Scratch) ensureBackward(n *Network) {
	s.ensureForward(n)
	if cap(s.deltas) < len(n.layers) {
		s.deltas = make([][]float64, len(n.layers))
	}
	s.deltas = s.deltas[:len(n.layers)]
	if cap(s.vel) < len(n.layers) {
		s.vel = make([][]float64, len(n.layers))
	}
	s.vel = s.vel[:len(n.layers)]
	for li := range n.layers {
		s.deltas[li] = grow(s.deltas[li], n.layers[li].out)
		s.vel[li] = grow(s.vel[li], len(n.layers[li].w))
		clear(s.vel[li])
	}
}

// forwardScratch runs the forward kernel for one sample, leaving every
// layer's activations in s.acts and returning the output layer's slice
// (owned by s; copy before the next call if it must survive).
//
// Units are processed four at a time with independent accumulators so the
// four dot-product dependency chains overlap in the pipeline. Each unit's
// own accumulation order — bias first, then inputs in index order — is
// exactly the reference order, so the interleaving is bit-invisible.
func (n *Network) forwardScratch(x []float64, s *Scratch) []float64 {
	cur := x
	for li := range n.layers {
		l := &n.layers[li]
		out := s.acts[li]
		w := l.w
		in := l.in
		stride := in + 1
		i := 0
		for ; i+4 <= l.out; i += 4 {
			off := i * stride
			r0 := w[off : off+in : off+in]
			r1 := w[off+stride : off+stride+in : off+stride+in]
			r2 := w[off+2*stride : off+2*stride+in : off+2*stride+in]
			r3 := w[off+3*stride : off+3*stride+in : off+3*stride+in]
			s0 := w[off+in]
			s1 := w[off+stride+in]
			s2 := w[off+2*stride+in]
			s3 := w[off+3*stride+in]
			r0 = r0[:len(cur)]
			r1 = r1[:len(cur)]
			r2 = r2[:len(cur)]
			r3 = r3[:len(cur)]
			for j, v := range cur {
				s0 += r0[j] * v
				s1 += r1[j] * v
				s2 += r2[j] * v
				s3 += r3[j] * v
			}
			out[i] = s0
			out[i+1] = s1
			out[i+2] = s2
			out[i+3] = s3
		}
		for ; i < l.out; i++ {
			off := i * stride
			row := w[off : off+in : off+in]
			sum := w[off+in]
			row = row[:len(cur)]
			for j, v := range cur {
				sum += row[j] * v
			}
			out[i] = sum
		}
		l.act.applyAll(out)
		cur = out
	}
	return cur
}

// predict1Scratch is the allocation-free scalar forward pass.
func (n *Network) predict1Scratch(x []float64, s *Scratch) float64 {
	return n.forwardScratch(x, s)[0]
}

// batchWidth is how many samples the minibatch forward kernel streams
// through the network at once. Eight keeps the per-unit accumulators and
// sample-row pointers within the register file on 64-bit targets.
const batchWidth = 8

// predictBatch8 runs exactly batchWidth samples through the network at
// once and writes each sample's first output to dst[0..7]. For every unit
// the weight row is walked once while all eight samples accumulate in
// parallel; each sample's own accumulation order (bias first, then inputs
// in index order) is exactly the per-sample kernel's order, so batching is
// bit-invisible — it only amortises weight loads and overlaps the eight
// independent FP dependency chains. Call s.ensureBatch(n) first.
func (n *Network) predictBatch8(xs *[batchWidth][]float64, dst []float64, s *Scratch) {
	c0, c1, c2, c3 := xs[0], xs[1], xs[2], xs[3]
	c4, c5, c6, c7 := xs[4], xs[5], xs[6], xs[7]
	for li := range n.layers {
		l := &n.layers[li]
		w := l.w
		in := l.in
		stride := in + 1
		out := l.out
		ob := s.batch[li]
		o0 := ob[0*out : 1*out]
		o1 := ob[1*out : 2*out]
		o2 := ob[2*out : 3*out]
		o3 := ob[3*out : 4*out]
		o4 := ob[4*out : 5*out]
		o5 := ob[5*out : 6*out]
		o6 := ob[6*out : 7*out]
		o7 := ob[7*out : 8*out]
		c0, c1, c2, c3 = c0[:in], c1[:in], c2[:in], c3[:in]
		c4, c5, c6, c7 = c4[:in], c5[:in], c6[:in], c7[:in]
		for i := 0; i < out; i++ {
			off := i * stride
			row := w[off : off+in : off+in]
			bias := w[off+in]
			s0, s1, s2, s3 := bias, bias, bias, bias
			s4, s5, s6, s7 := bias, bias, bias, bias
			for j, rj := range row {
				s0 += rj * c0[j]
				s1 += rj * c1[j]
				s2 += rj * c2[j]
				s3 += rj * c3[j]
				s4 += rj * c4[j]
				s5 += rj * c5[j]
				s6 += rj * c6[j]
				s7 += rj * c7[j]
			}
			o0[i] = s0
			o1[i] = s1
			o2[i] = s2
			o3[i] = s3
			o4[i] = s4
			o5[i] = s5
			o6[i] = s6
			o7[i] = s7
		}
		l.act.applyAll(o0)
		l.act.applyAll(o1)
		l.act.applyAll(o2)
		l.act.applyAll(o3)
		l.act.applyAll(o4)
		l.act.applyAll(o5)
		l.act.applyAll(o6)
		l.act.applyAll(o7)
		c0, c1, c2, c3 = o0, o1, o2, o3
		c4, c5, c6, c7 = o4, o5, o6, o7
	}
	dst[0], dst[1], dst[2], dst[3] = c0[0], c1[0], c2[0], c3[0]
	dst[4], dst[5], dst[6], dst[7] = c4[0], c5[0], c6[0], c7[0]
}

// Forward computes the network output for input x.
func (n *Network) Forward(x []float64) []float64 {
	var s Scratch
	s.ensureForward(n)
	out := n.forwardScratch(x, &s)
	return append([]float64(nil), out...)
}

// Predict1 returns the single scalar output for x; it panics if the
// network has more than one output.
func (n *Network) Predict1(x []float64) float64 {
	if n.NumOutputs() != 1 {
		panic("neural: Predict1 on multi-output network")
	}
	return n.Forward(x)[0]
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	cp := &Network{
		sizes:       append([]int(nil), n.sizes...),
		frozenInput: append([]bool(nil), n.frozenInput...),
		nFrozen:     n.nFrozen,
	}
	cp.layers = make([]layer, len(n.layers))
	for li := range n.layers {
		l := n.layers[li]
		l.w = append([]float64(nil), l.w...)
		cp.layers[li] = l
	}
	return cp
}

// FreezeInput zeroes the first-layer weights from input j and pins them so
// subsequent training cannot resurrect the connection. It is how the
// pruning methods remove an input without changing the feature vector
// layout.
func (n *Network) FreezeInput(j int) error {
	if j < 0 || j >= n.sizes[0] {
		return fmt.Errorf("neural: input %d out of range", j)
	}
	if !n.frozenInput[j] {
		n.frozenInput[j] = true
		n.nFrozen++
	}
	l := &n.layers[0]
	stride := l.in + 1
	for i := 0; i < l.out; i++ {
		l.w[i*stride+j] = 0
	}
	return nil
}

// InputFrozen reports whether input j has been pruned.
func (n *Network) InputFrozen(j int) bool { return n.frozenInput[j] }

// RemoveHidden removes unit idx from hidden layer h (0-based among hidden
// layers), deleting its incoming and outgoing weights.
func (n *Network) RemoveHidden(h, idx int) error {
	nHidden := len(n.sizes) - 2
	if h < 0 || h >= nHidden {
		return fmt.Errorf("neural: hidden layer %d out of range", h)
	}
	li := h // layer index whose outputs are the hidden units
	if idx < 0 || idx >= n.sizes[h+1] {
		return fmt.Errorf("neural: unit %d out of range in hidden layer %d", idx, h)
	}
	if n.sizes[h+1] == 1 {
		return errors.New("neural: cannot remove the last unit of a hidden layer")
	}
	// Drop the unit's incoming weight row: one contiguous cut.
	l := &n.layers[li]
	stride := l.in + 1
	l.w = append(l.w[:idx*stride], l.w[(idx+1)*stride:]...)
	l.out--
	// Drop the corresponding input column of the next layer by compacting
	// in place (the write cursor never passes the read cursor).
	next := &n.layers[li+1]
	os := next.in + 1
	dst := 0
	for i := 0; i < next.out; i++ {
		row := next.w[i*os : (i+1)*os]
		for j, v := range row {
			if j == idx {
				continue
			}
			next.w[dst] = v
			dst++
		}
	}
	next.w = next.w[:dst]
	next.in--
	n.sizes[h+1]--
	return nil
}

// hiddenSaliency returns, for each unit of hidden layer h, the sum of
// absolute outgoing weights — the magnitude criterion used by the pruning
// trainers to pick removal victims.
func (n *Network) hiddenSaliency(h int) []float64 {
	out := make([]float64, n.sizes[h+1])
	next := &n.layers[h+1]
	stride := next.in + 1
	for i := 0; i < next.out; i++ {
		row := next.w[i*stride : (i+1)*stride]
		for j := 0; j < n.sizes[h+1]; j++ {
			out[j] += math.Abs(row[j])
		}
	}
	return out
}

// inputSaliency returns, for each input, the sum of absolute first-layer
// weights.
func (n *Network) inputSaliency() []float64 {
	out := make([]float64, n.sizes[0])
	l := &n.layers[0]
	stride := l.in + 1
	for i := 0; i < l.out; i++ {
		row := l.w[i*stride : (i+1)*stride]
		for j := 0; j < n.sizes[0]; j++ {
			out[j] += math.Abs(row[j])
		}
	}
	return out
}
