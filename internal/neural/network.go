// Package neural implements the paper's neural-network models (§3.2):
// feed-forward multilayer perceptrons trained by backpropagation, with the
// five SPSS Clementine training methods — Quick (NN-Q), Dynamic (NN-D),
// Multiple (NN-M), Prune (NN-P), Exhaustive Prune (NN-E) — plus the
// single-layer constant-learning-rate method (NN-S) the paper uses as the
// Ipek-et-al.-style baseline.
//
// Inputs and the target are expected pre-scaled to [0,1] (the dataset
// package's ForNN encoding). The output unit is sigmoidal, like
// Clementine's, which means predictions saturate outside the training
// target range — the mechanism behind the paper's observation that neural
// networks extrapolate poorly in chronological prediction.
package neural

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a unit's transfer function. The paper (§3.2) lists
// linear, hard-limit, sigmoid and tan-sigmoid activations for hidden units.
type Activation int

const (
	// Sigmoid is the logistic function 1/(1+e^-x).
	Sigmoid Activation = iota
	// TanSigmoid is tanh(x).
	TanSigmoid
	// Linear is the identity.
	Linear
	// HardLimit is the Heaviside step (non-differentiable; usable for
	// inference-only layers, rejected by the trainer).
	HardLimit
)

// String returns the activation name.
func (a Activation) String() string {
	switch a {
	case Sigmoid:
		return "sigmoid"
	case TanSigmoid:
		return "tansig"
	case Linear:
		return "linear"
	case HardLimit:
		return "hardlim"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case TanSigmoid:
		return math.Tanh(x)
	case Linear:
		return x
	case HardLimit:
		if x >= 0 {
			return 1
		}
		return 0
	default:
		return x
	}
}

// derivFromOutput returns dσ/dx expressed in terms of the unit output.
func (a Activation) derivFromOutput(out float64) float64 {
	switch a {
	case Sigmoid:
		return out * (1 - out)
	case TanSigmoid:
		return 1 - out*out
	case Linear:
		return 1
	default:
		return 0
	}
}

// layer holds the weights of one fully connected layer. w[i] are the
// incoming weights of unit i; the last element of each row is the bias.
type layer struct {
	w   [][]float64
	act Activation
}

// Network is a feed-forward multilayer perceptron.
type Network struct {
	sizes  []int // unit counts: input, hidden..., output
	layers []layer
	// frozenInput marks input indices whose first-layer weights are pinned
	// to zero (used by the pruning trainers to remove inputs in place).
	frozenInput []bool
}

// NewNetwork creates a network with the given unit counts per layer
// (inputs first, output last), hidden activation hact and output
// activation oact, with weights initialized uniformly in ±1/√fanin.
func NewNetwork(sizes []int, hact, oact Activation, r *rand.Rand) (*Network, error) {
	if len(sizes) < 2 {
		return nil, errors.New("neural: need at least input and output layers")
	}
	for _, s := range sizes {
		if s < 1 {
			return nil, errors.New("neural: layer sizes must be positive")
		}
	}
	n := &Network{
		sizes:       append([]int(nil), sizes...),
		frozenInput: make([]bool, sizes[0]),
	}
	for l := 1; l < len(sizes); l++ {
		act := hact
		if l == len(sizes)-1 {
			act = oact
		}
		fanin := sizes[l-1]
		scale := 1 / math.Sqrt(float64(fanin))
		w := make([][]float64, sizes[l])
		for i := range w {
			w[i] = make([]float64, fanin+1)
			for j := range w[i] {
				w[i][j] = (2*r.Float64() - 1) * scale
			}
		}
		n.layers = append(n.layers, layer{w: w, act: act})
	}
	return n, nil
}

// NumInputs returns the input dimensionality.
func (n *Network) NumInputs() int { return n.sizes[0] }

// NumOutputs returns the output dimensionality.
func (n *Network) NumOutputs() int { return n.sizes[len(n.sizes)-1] }

// HiddenSizes returns the hidden layer unit counts.
func (n *Network) HiddenSizes() []int {
	return append([]int(nil), n.sizes[1:len(n.sizes)-1]...)
}

// NumWeights returns the total number of trainable parameters.
func (n *Network) NumWeights() int {
	c := 0
	for _, l := range n.layers {
		for _, row := range l.w {
			c += len(row)
		}
	}
	return c
}

// Forward computes the network output for input x.
func (n *Network) Forward(x []float64) []float64 {
	acts := n.forwardActs(x)
	out := acts[len(acts)-1]
	return append([]float64(nil), out...)
}

// forwardActs returns the activations of every layer including the input.
func (n *Network) forwardActs(x []float64) [][]float64 {
	acts := make([][]float64, len(n.sizes))
	acts[0] = x
	cur := x
	for li, l := range n.layers {
		next := make([]float64, len(l.w))
		for i, row := range l.w {
			s := row[len(row)-1] // bias
			for j, v := range cur {
				s += row[j] * v
			}
			next[i] = l.act.apply(s)
		}
		acts[li+1] = next
		cur = next
	}
	return acts
}

// Predict1 returns the single scalar output for x; it panics if the
// network has more than one output.
func (n *Network) Predict1(x []float64) float64 {
	if n.NumOutputs() != 1 {
		panic("neural: Predict1 on multi-output network")
	}
	return n.Forward(x)[0]
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	cp := &Network{
		sizes:       append([]int(nil), n.sizes...),
		frozenInput: append([]bool(nil), n.frozenInput...),
	}
	cp.layers = make([]layer, len(n.layers))
	for li, l := range n.layers {
		w := make([][]float64, len(l.w))
		for i := range l.w {
			w[i] = append([]float64(nil), l.w[i]...)
		}
		cp.layers[li] = layer{w: w, act: l.act}
	}
	return cp
}

// FreezeInput zeroes the first-layer weights from input j and pins them so
// subsequent training cannot resurrect the connection. It is how the
// pruning methods remove an input without changing the feature vector
// layout.
func (n *Network) FreezeInput(j int) error {
	if j < 0 || j >= n.sizes[0] {
		return fmt.Errorf("neural: input %d out of range", j)
	}
	n.frozenInput[j] = true
	for i := range n.layers[0].w {
		n.layers[0].w[i][j] = 0
	}
	return nil
}

// InputFrozen reports whether input j has been pruned.
func (n *Network) InputFrozen(j int) bool { return n.frozenInput[j] }

// RemoveHidden removes unit idx from hidden layer h (0-based among hidden
// layers), deleting its incoming and outgoing weights.
func (n *Network) RemoveHidden(h, idx int) error {
	nHidden := len(n.sizes) - 2
	if h < 0 || h >= nHidden {
		return fmt.Errorf("neural: hidden layer %d out of range", h)
	}
	li := h // layer index whose outputs are the hidden units
	if idx < 0 || idx >= n.sizes[h+1] {
		return fmt.Errorf("neural: unit %d out of range in hidden layer %d", idx, h)
	}
	if n.sizes[h+1] == 1 {
		return errors.New("neural: cannot remove the last unit of a hidden layer")
	}
	// Drop the unit's incoming weight row.
	n.layers[li].w = append(n.layers[li].w[:idx], n.layers[li].w[idx+1:]...)
	// Drop the corresponding input column of the next layer.
	next := &n.layers[li+1]
	for i := range next.w {
		row := next.w[i]
		next.w[i] = append(row[:idx], row[idx+1:]...)
	}
	n.sizes[h+1]--
	return nil
}

// hiddenSaliency returns, for each unit of hidden layer h, the sum of
// absolute outgoing weights — the magnitude criterion used by the pruning
// trainers to pick removal victims.
func (n *Network) hiddenSaliency(h int) []float64 {
	out := make([]float64, n.sizes[h+1])
	next := n.layers[h+1]
	for _, row := range next.w {
		for j := 0; j < n.sizes[h+1]; j++ {
			out[j] += math.Abs(row[j])
		}
	}
	return out
}

// inputSaliency returns, for each input, the sum of absolute first-layer
// weights.
func (n *Network) inputSaliency() []float64 {
	out := make([]float64, n.sizes[0])
	for _, row := range n.layers[0].w {
		for j := 0; j < n.sizes[0]; j++ {
			out[j] += math.Abs(row[j])
		}
	}
	return out
}
