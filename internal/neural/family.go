package neural

import (
	"context"

	"perfpred/internal/dataset"
	"perfpred/internal/model"
)

// artifactTag is the versioned payload identifier of every neural
// artifact. Bump the suffix on any incompatible change to the wire format
// so old payloads can never be decoded by new code.
const artifactTag = "neural/v1"

// familyModel adapts *Model to the registry's model.Model contract.
// NumInputs and Importance come from the embedded model unchanged.
type familyModel struct{ *Model }

// PredictAllInto routes the batch through the allocation-free batched
// forward kernel with the caller's reusable scratch.
func (f familyModel) PredictAllInto(dst []float64, x [][]float64, s model.Scratch) {
	var ns *Scratch
	if s != nil {
		ns = s.(*Scratch)
	}
	f.Model.PredictAllInto(dst, x, ns)
}

// SelectedColumns returns the inputs the pruning trainers left unfrozen.
func (f familyModel) SelectedColumns() []int {
	var out []int
	for j := 0; j < f.net.NumInputs(); j++ {
		if !f.net.InputFrozen(j) {
			out = append(out, j)
		}
	}
	return out
}

// Marshal serializes the model payload (the family tag travels in the
// enclosing artifact, not here).
func (f familyModel) Marshal() ([]byte, error) { return f.Model.MarshalJSON() }

// kindOf pins each training method to its registry kind. The numbers are
// part of the artifact format and can never change.
func kindOf(m Method) model.Kind {
	switch m {
	case Quick:
		return model.NNQ
	case Dynamic:
		return model.NND
	case Multiple:
		return model.NNM
	case Prune:
		return model.NNP
	case ExhaustivePrune:
		return model.NNE
	case Single:
		return model.NNS
	}
	panic("neural: method without a registry kind")
}

func init() {
	for _, m := range Methods() {
		m := m
		model.Register(kindOf(m), model.Family{
			Name: m.String(),
			Tag:  artifactTag,
			Mode: dataset.ForNN,
			Fit: func(ctx context.Context, x [][]float64, y []float64, _ []string, cfg model.FitConfig) (model.Model, error) {
				trained, err := Train(ctx, x, y, Config{
					Method:     m,
					Seed:       cfg.Seed,
					Workers:    cfg.Workers,
					EpochScale: cfg.EpochScale,
					Hook:       cfg.Hook,
				})
				if err != nil {
					return nil, err
				}
				return familyModel{trained}, nil
			},
			NewScratch: func() model.Scratch { return NewScratch() },
			Unmarshal: func(data []byte) (model.Model, error) {
				loaded, err := UnmarshalModel(data)
				if err != nil {
					return nil, err
				}
				return familyModel{loaded}, nil
			},
		})
	}
}
