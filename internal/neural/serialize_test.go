package neural

import (
	"context"
	"encoding/json"
	"math"
	"testing"
)

func TestModelSerializeRoundTrip(t *testing.T) {
	x, y := smoothData(41, 100)
	for _, method := range []Method{Quick, Single, Prune} {
		m, err := Train(context.Background(), x, y, Config{Method: method, Seed: 3, EpochScale: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalModel(data)
		if err != nil {
			t.Fatal(err)
		}
		if back.Method() != method {
			t.Fatalf("%v: method became %v", method, back.Method())
		}
		for i := 0; i < 30; i++ {
			if back.Predict(x[i]) != m.Predict(x[i]) {
				t.Fatalf("%v: prediction diverges at %d", method, i)
			}
		}
		// NaN validation MSE must survive the trip (Single has none).
		if math.IsNaN(m.ValidationMSE()) != math.IsNaN(back.ValidationMSE()) {
			t.Fatalf("%v: valMSE NaN-ness lost", method)
		}
	}
}

func TestSerializePreservesFrozenInputs(t *testing.T) {
	x, y := smoothData(42, 80)
	m, err := Train(context.Background(), x, y, Config{Method: Single, Seed: 4, EpochScale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Network().FreezeInput(1); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Network().InputFrozen(1) || back.Network().InputFrozen(0) {
		t.Fatal("frozen-input mask lost")
	}
}

func TestUnmarshalModelRejectsBadInput(t *testing.T) {
	cases := []string{
		`garbage`,
		`{"version":7}`,
		`{"version":1,"net":{"sizes":[2],"layers":[],"frozen_input":[false,false]}}`,
		`{"version":1,"net":{"sizes":[2,1],"layers":[],"frozen_input":[false,false]}}`,
		`{"version":1,"net":{"sizes":[2,1],"layers":[{"w":[[1,2,3]],"act":0}],"frozen_input":[false]}}`,
		`{"version":1,"net":{"sizes":[2,1],"layers":[{"w":[[1,2]],"act":0}],"frozen_input":[false,false]}}`,
		`{"version":1,"net":{"sizes":[2,1],"layers":[{"w":[[1,2,3]],"act":42}],"frozen_input":[false,false]}}`,
	}
	for i, c := range cases {
		if _, err := UnmarshalModel([]byte(c)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}
