package neural

import (
	"math"
	"math/rand"
	"testing"
)

// TestBackpropMatchesNumericalGradient verifies the backpropagation
// implementation against central-difference numerical gradients on a small
// network — the canonical correctness check for hand-written training code.
func TestBackpropMatchesNumericalGradient(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	n, err := NewNetwork([]int{3, 4, 1}, Sigmoid, Sigmoid, r)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, 0.7, 0.1}
	target := []float64{0.6}

	// loss = (target - f(x))² (the per-sample objective backpropOne
	// descends; its gradient step is lr·∂(-loss/2)/∂w via deltas).
	loss := func() float64 {
		out := n.Forward(x)[0]
		d := target[0] - out
		return d * d
	}

	// Collect analytic gradients by running one backprop step with lr=1,
	// momentum=0 and measuring the weight deltas (update = lr·grad).
	before := n.Clone()
	vel := make([][][]float64, len(n.layers))
	deltas := make([][]float64, len(n.layers))
	for li := range n.layers {
		vel[li] = make([][]float64, len(n.layers[li].w))
		for i := range n.layers[li].w {
			vel[li][i] = make([]float64, len(n.layers[li].w[i]))
		}
		deltas[li] = make([]float64, len(n.layers[li].w))
	}
	n.backpropOne(x, target, 1.0, 0, vel, deltas)

	const (
		h   = 1e-6
		tol = 1e-6
	)
	checked := 0
	for li := range before.layers {
		for i := range before.layers[li].w {
			for j := range before.layers[li].w[i] {
				analytic := n.layers[li].w[i][j] - before.layers[li].w[i][j]

				// Numerical gradient of -loss/2 wrt this weight, on the
				// pre-update network.
				probe := before.Clone()
				probe.layers[li].w[i][j] += h
				up := lossOf(probe, x, target)
				probe.layers[li].w[i][j] -= 2 * h
				down := lossOf(probe, x, target)
				numeric := -(up - down) / (4 * h) // d(-loss/2)/dw

				if math.Abs(analytic-numeric) > tol*math.Max(1, math.Abs(numeric)) {
					t.Fatalf("layer %d weight (%d,%d): backprop %.3e vs numeric %.3e",
						li, i, j, analytic, numeric)
				}
				checked++
			}
		}
	}
	if checked != before.NumWeights() {
		t.Fatalf("checked %d of %d weights", checked, before.NumWeights())
	}
	_ = loss
}

func lossOf(n *Network, x, target []float64) float64 {
	out := n.Forward(x)[0]
	d := target[0] - out
	return d * d
}

// TestBackpropGradientTanh repeats the check with tanh hidden units.
func TestBackpropGradientTanh(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	n, err := NewNetwork([]int{2, 3, 1}, TanSigmoid, Linear, r)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.2, -0.4}
	target := []float64{0.3}
	before := n.Clone()
	vel := make([][][]float64, len(n.layers))
	deltas := make([][]float64, len(n.layers))
	for li := range n.layers {
		vel[li] = make([][]float64, len(n.layers[li].w))
		for i := range n.layers[li].w {
			vel[li][i] = make([]float64, len(n.layers[li].w[i]))
		}
		deltas[li] = make([]float64, len(n.layers[li].w))
	}
	n.backpropOne(x, target, 1.0, 0, vel, deltas)
	const h = 1e-6
	for li := range before.layers {
		for i := range before.layers[li].w {
			for j := range before.layers[li].w[i] {
				analytic := n.layers[li].w[i][j] - before.layers[li].w[i][j]
				probe := before.Clone()
				probe.layers[li].w[i][j] += h
				up := lossOf(probe, x, target)
				probe.layers[li].w[i][j] -= 2 * h
				down := lossOf(probe, x, target)
				numeric := -(up - down) / (4 * h)
				if math.Abs(analytic-numeric) > 1e-6*math.Max(1, math.Abs(numeric)) {
					t.Fatalf("layer %d weight (%d,%d): backprop %.3e vs numeric %.3e",
						li, i, j, analytic, numeric)
				}
			}
		}
	}
}
