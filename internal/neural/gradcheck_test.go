package neural

import (
	"math"
	"math/rand"
	"testing"
)

// lossOf is the per-sample objective the trainer descends: (target-f(x))².
func lossOf(n *Network, x, target []float64) float64 {
	out := n.Forward(x)[0]
	d := target[0] - out
	return d * d
}

// checkSampleGradients runs one backpropSample step with lr=1, momentum=0
// and compares every resulting weight delta (update = lr·grad) against the
// central-difference gradient of -loss/2 on the pre-update network. Frozen
// first-layer weights are asserted to stay exactly in place instead.
func checkSampleGradients(t *testing.T, n *Network, x, target []float64) {
	t.Helper()
	before := n.Clone()
	s := new(Scratch)
	s.ensureBackward(n)
	n.backpropSample(x, target, 1.0, 0, s)

	const (
		h   = 1e-6
		tol = 1e-6
	)
	checked, frozen := 0, 0
	for li := range before.layers {
		l := &before.layers[li]
		stride := l.in + 1
		for wi := range l.w {
			analytic := n.layers[li].w[wi] - before.layers[li].w[wi]
			if li == 0 && wi%stride < l.in && before.frozenInput[wi%stride] {
				// Pruned input: the mask must pin the weight bit-exactly.
				if analytic != 0 {
					t.Fatalf("layer %d weight %d: frozen input moved by %g", li, wi, analytic)
				}
				frozen++
				continue
			}
			probe := before.Clone()
			probe.layers[li].w[wi] += h
			up := lossOf(probe, x, target)
			probe.layers[li].w[wi] -= 2 * h
			down := lossOf(probe, x, target)
			numeric := -(up - down) / (4 * h) // d(-loss/2)/dw
			if math.Abs(analytic-numeric) > tol*math.Max(1, math.Abs(numeric)) {
				t.Fatalf("layer %d weight %d (row pos %d of stride %d): backprop %.3e vs numeric %.3e",
					li, wi, wi%stride, stride, analytic, numeric)
			}
			checked++
		}
	}
	if checked+frozen != before.NumWeights() {
		t.Fatalf("checked %d+%d of %d weights", checked, frozen, before.NumWeights())
	}
}

// TestBackpropMatchesNumericalGradient verifies the batched backward
// kernel against central-difference numerical gradients on a small
// network — the canonical correctness check for hand-written training
// code. The bias rows are covered implicitly: every (in+1)-th flat weight
// is a fused bias and is checked like any other parameter.
func TestBackpropMatchesNumericalGradient(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	n, err := NewNetwork([]int{3, 4, 1}, Sigmoid, Sigmoid, r)
	if err != nil {
		t.Fatal(err)
	}
	checkSampleGradients(t, n, []float64{0.3, 0.7, 0.1}, []float64{0.6})
}

// TestBackpropGradientTanh repeats the check with tanh hidden units and a
// linear output.
func TestBackpropGradientTanh(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	n, err := NewNetwork([]int{2, 3, 1}, TanSigmoid, Linear, r)
	if err != nil {
		t.Fatal(err)
	}
	checkSampleGradients(t, n, []float64{0.2, -0.4}, []float64{0.3})
}

// TestBackpropGradientDeepNetwork checks a two-hidden-layer topology so
// the delta backpropagation across interior layers is exercised too.
func TestBackpropGradientDeepNetwork(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	n, err := NewNetwork([]int{3, 5, 4, 1}, Sigmoid, Sigmoid, r)
	if err != nil {
		t.Fatal(err)
	}
	checkSampleGradients(t, n, []float64{0.9, 0.1, 0.5}, []float64{0.4})
}

// TestBackpropGradientFrozenMask verifies the prune-frozen-weight mask
// inside the kernel: frozen first-layer columns must not move (and their
// velocity must stay clamped), while every live weight still matches the
// numerical gradient.
func TestBackpropGradientFrozenMask(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	n, err := NewNetwork([]int{4, 5, 1}, Sigmoid, Sigmoid, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.FreezeInput(1); err != nil {
		t.Fatal(err)
	}
	if err := n.FreezeInput(3); err != nil {
		t.Fatal(err)
	}
	checkSampleGradients(t, n, []float64{0.3, 0.9, 0.2, 0.7}, []float64{0.5})
}

// TestBatchedEpochMatchesSequentialNumericSGD drives the whole batched
// backward kernel (trainEpoch) over a multi-sample batch and checks it
// against the slow definition of per-sample SGD: for each sample in
// order, measure the numerical gradient at the current weights and apply
// the update. The batched path must land within finite-difference
// tolerance of that trajectory.
func TestBatchedEpochMatchesSequentialNumericSGD(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	n, err := NewNetwork([]int{2, 3, 1}, Sigmoid, Sigmoid, r)
	if err != nil {
		t.Fatal(err)
	}
	x := [][]float64{{0.1, 0.9}, {0.8, 0.2}, {0.5, 0.5}, {0.3, 0.4}}
	y := []float64{0.2, 0.7, 0.4, 0.9}
	perm := []int{2, 0, 3, 1}
	const lr = 0.3

	// Reference trajectory from numerical gradients.
	ref := n.Clone()
	const h = 1e-6
	for _, i := range perm {
		next := ref.Clone()
		for li := range ref.layers {
			for wi := range ref.layers[li].w {
				probe := ref.Clone()
				probe.layers[li].w[wi] += h
				up := lossOf(probe, x[i], []float64{y[i]})
				probe.layers[li].w[wi] -= 2 * h
				down := lossOf(probe, x[i], []float64{y[i]})
				grad := -(up - down) / (4 * h)
				next.layers[li].w[wi] += lr * grad
			}
		}
		ref = next
	}

	s := new(Scratch)
	s.ensureBackward(n)
	n.trainEpoch(x, y, perm, lr, 0, s)

	for li := range n.layers {
		for wi := range n.layers[li].w {
			got, want := n.layers[li].w[wi], ref.layers[li].w[wi]
			if math.Abs(got-want) > 1e-5*math.Max(1, math.Abs(want)) {
				t.Fatalf("layer %d weight %d: batched %.9f vs numeric-SGD %.9f", li, wi, got, want)
			}
		}
	}
}
