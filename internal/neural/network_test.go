package neural

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestActivations(t *testing.T) {
	if got := Sigmoid.apply(0); got != 0.5 {
		t.Fatalf("sigmoid(0) = %v", got)
	}
	if got := TanSigmoid.apply(0); got != 0 {
		t.Fatalf("tanh(0) = %v", got)
	}
	if got := Linear.apply(3.7); got != 3.7 {
		t.Fatalf("linear(3.7) = %v", got)
	}
	if HardLimit.apply(0.1) != 1 || HardLimit.apply(-0.1) != 0 {
		t.Fatal("hard limit broken")
	}
}

func TestActivationDerivatives(t *testing.T) {
	// Check derivFromOutput against numeric differentiation.
	for _, a := range []Activation{Sigmoid, TanSigmoid, Linear} {
		for _, x := range []float64{-2, -0.5, 0, 0.7, 2} {
			const h = 1e-6
			num := (a.apply(x+h) - a.apply(x-h)) / (2 * h)
			got := a.derivFromOutput(a.apply(x))
			if math.Abs(got-num) > 1e-5 {
				t.Errorf("%v'(%v) = %v, numeric %v", a, x, got, num)
			}
		}
	}
}

func TestNewNetworkValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := NewNetwork([]int{3}, Sigmoid, Linear, r); err == nil {
		t.Fatal("single layer: want error")
	}
	if _, err := NewNetwork([]int{3, 0, 1}, Sigmoid, Linear, r); err == nil {
		t.Fatal("zero-size layer: want error")
	}
	n, err := NewNetwork([]int{4, 5, 2}, Sigmoid, Linear, r)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumInputs() != 4 || n.NumOutputs() != 2 {
		t.Fatal("dims wrong")
	}
	hs := n.HiddenSizes()
	if len(hs) != 1 || hs[0] != 5 {
		t.Fatalf("hidden = %v", hs)
	}
	// weights: 5*(4+1) + 2*(5+1) = 37
	if n.NumWeights() != 37 {
		t.Fatalf("NumWeights = %d", n.NumWeights())
	}
}

func TestForwardKnownNetwork(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	n, err := NewNetwork([]int{2, 1, 1}, Linear, Linear, r)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-set weights: hidden = 2*x0 + 3*x1 + 1; out = 0.5*h - 2.
	copy(n.layers[0].row(0), []float64{2, 3, 1})
	copy(n.layers[1].row(0), []float64{0.5, -2})
	got := n.Predict1([]float64{1, 2})
	want := 0.5*(2*1+3*2+1) - 2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Predict1 = %v, want %v", got, want)
	}
}

func TestPredict1PanicsOnMultiOutput(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n, _ := NewNetwork([]int{2, 3, 2}, Sigmoid, Linear, r)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	n.Predict1([]float64{0, 0})
}

func TestCloneIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	n, _ := NewNetwork([]int{2, 3, 1}, Sigmoid, Sigmoid, r)
	c := n.Clone()
	before := n.Predict1([]float64{0.5, 0.5})
	c.layers[0].w[0] += 10
	if n.Predict1([]float64{0.5, 0.5}) != before {
		t.Fatal("clone shares weight storage")
	}
}

func TestFreezeInput(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n, _ := NewNetwork([]int{3, 4, 1}, Sigmoid, Sigmoid, r)
	if err := n.FreezeInput(1); err != nil {
		t.Fatal(err)
	}
	if !n.InputFrozen(1) || n.InputFrozen(0) {
		t.Fatal("frozen flags wrong")
	}
	// Output must be insensitive to the frozen input.
	a := n.Predict1([]float64{0.2, 0.0, 0.8})
	b := n.Predict1([]float64{0.2, 1.0, 0.8})
	if a != b {
		t.Fatal("frozen input still influences output")
	}
	if err := n.FreezeInput(7); err == nil {
		t.Fatal("out of range freeze: want error")
	}
}

func TestRemoveHidden(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	n, _ := NewNetwork([]int{2, 4, 1}, Sigmoid, Sigmoid, r)
	if err := n.RemoveHidden(0, 2); err != nil {
		t.Fatal(err)
	}
	if hs := n.HiddenSizes(); hs[0] != 3 {
		t.Fatalf("hidden after removal = %v", hs)
	}
	// Forward still works with consistent shapes.
	_ = n.Predict1([]float64{0.3, 0.7})
	// Removing down to zero is rejected.
	_ = n.RemoveHidden(0, 0)
	_ = n.RemoveHidden(0, 0)
	if err := n.RemoveHidden(0, 0); err == nil {
		t.Fatal("removing last unit: want error")
	}
	if err := n.RemoveHidden(5, 0); err == nil {
		t.Fatal("bad layer: want error")
	}
	if err := n.RemoveHidden(0, 99); err == nil {
		t.Fatal("bad index: want error")
	}
}

func TestRemoveHiddenPreservesOtherUnits(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n, _ := NewNetwork([]int{1, 2, 1}, Linear, Linear, r)
	// unit0: y0 = x; unit1: y1 = 5x; out = 1*y0 + 1*y1.
	copy(n.layers[0].row(0), []float64{1, 0})
	copy(n.layers[0].row(1), []float64{5, 0})
	copy(n.layers[1].row(0), []float64{1, 1, 0})
	if err := n.RemoveHidden(0, 1); err != nil {
		t.Fatal(err)
	}
	// Only unit0 remains: out = x.
	if got := n.Predict1([]float64{3}); math.Abs(got-3) > 1e-12 {
		t.Fatalf("after removal f(3) = %v, want 3", got)
	}
}

func TestHiddenSaliency(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	n, _ := NewNetwork([]int{1, 3, 1}, Sigmoid, Linear, r)
	copy(n.layers[1].row(0), []float64{0.1, -5, 2, 0})
	sal := n.hiddenSaliency(0)
	if !(sal[1] > sal[2] && sal[2] > sal[0]) {
		t.Fatalf("saliency = %v", sal)
	}
}

func TestInputSaliency(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n, _ := NewNetwork([]int{2, 2, 1}, Sigmoid, Linear, r)
	copy(n.layers[0].row(0), []float64{3, 0.1, 0})
	copy(n.layers[0].row(1), []float64{-2, 0.2, 0})
	sal := n.inputSaliency()
	if !(sal[0] > sal[1]) {
		t.Fatalf("input saliency = %v", sal)
	}
}

// Property: network outputs are deterministic functions of the input.
func TestForwardDeterministicProperty(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	n, _ := NewNetwork([]int{3, 5, 1}, Sigmoid, Sigmoid, r)
	f := func(a, b, c uint8) bool {
		x := []float64{float64(a) / 255, float64(b) / 255, float64(c) / 255}
		return n.Predict1(x) == n.Predict1(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: sigmoid-output networks stay inside (0,1) — the saturation that
// limits chronological extrapolation.
func TestSigmoidOutputBoundedProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n, _ := NewNetwork([]int{2, 4, 1}, Sigmoid, Sigmoid, r)
	f := func(a, b int8) bool {
		x := []float64{float64(a), float64(b)} // deliberately far outside [0,1]
		o := n.Predict1(x)
		return o > 0 && o < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
