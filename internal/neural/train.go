package neural

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"perfpred/internal/engine"
)

// sgdOptions configures one backpropagation run.
type sgdOptions struct {
	epochs   int
	lr       float64
	lrFinal  float64 // 0 → constant learning rate (NN-S behaviour)
	momentum float64
	// patience stops training after this many epochs without a training
	// MSE improvement of at least minDelta (0 disables early stopping).
	patience int
	minDelta float64
	// hook, if non-nil, observes epoch-granularity progress under label.
	hook  engine.Hook
	label string
}

// progressStride returns how often (in epochs) to emit progress events —
// roughly eight per run, never more than one per epoch.
func (o sgdOptions) progressStride() int {
	s := o.epochs / 8
	if s < 1 {
		s = 1
	}
	return s
}

// trainSGD runs stochastic backpropagation with momentum on (x, y).
// It shuffles per epoch with r and respects frozen inputs. Returns the
// final training MSE. The epoch loop checks ctx each iteration, so a hung
// or oversized training run (an NN-E prune, say) can be aborted promptly.
func (n *Network) trainSGD(ctx context.Context, x [][]float64, y [][]float64, opts sgdOptions, r *rand.Rand) (float64, error) {
	if len(x) == 0 {
		return 0, errors.New("neural: no training data")
	}
	if len(x) != len(y) {
		return 0, errors.New("neural: x/y length mismatch")
	}
	for _, l := range n.layers {
		if l.act == HardLimit {
			return 0, errors.New("neural: hard-limit activation is not trainable by backprop")
		}
	}
	if opts.epochs <= 0 {
		return 0, errors.New("neural: epochs must be positive")
	}
	if opts.lr <= 0 {
		return 0, errors.New("neural: learning rate must be positive")
	}

	// Momentum velocity, same shape as the weights.
	vel := make([][][]float64, len(n.layers))
	for li, l := range n.layers {
		vel[li] = make([][]float64, len(l.w))
		for i := range l.w {
			vel[li][i] = make([]float64, len(l.w[i]))
		}
	}
	// Per-layer delta buffers.
	deltas := make([][]float64, len(n.layers))
	for li := range n.layers {
		deltas[li] = make([]float64, len(n.layers[li].w))
	}

	perm := make([]int, len(x))
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	stale := 0
	mse := math.Inf(1)
	stride := opts.progressStride()
	for epoch := 0; epoch < opts.epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return mse, err
		}
		if opts.hook != nil && epoch%stride == 0 {
			opts.hook.Emit(engine.Event{
				Kind: engine.EpochProgress, Label: opts.label, Fold: -1,
				Epoch: epoch, Epochs: opts.epochs,
			})
		}
		lr := opts.lr
		if opts.lrFinal > 0 && opts.epochs > 1 {
			// Geometric decay from lr to lrFinal across the run.
			t := float64(epoch) / float64(opts.epochs-1)
			lr = opts.lr * math.Pow(opts.lrFinal/opts.lr, t)
		}
		r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		sse := 0.0
		for _, i := range perm {
			sse += n.backpropOne(x[i], y[i], lr, opts.momentum, vel, deltas)
		}
		mse = sse / float64(len(x))
		if opts.patience > 0 {
			if mse < best-opts.minDelta {
				best = mse
				stale = 0
			} else {
				stale++
				if stale >= opts.patience {
					break
				}
			}
		}
	}
	return mse, nil
}

// backpropOne performs one stochastic update and returns the pre-update
// squared error of the sample.
func (n *Network) backpropOne(x, target []float64, lr, momentum float64, vel [][][]float64, deltas [][]float64) float64 {
	acts := n.forwardActs(x)
	out := acts[len(acts)-1]
	last := len(n.layers) - 1

	se := 0.0
	for i := range out {
		err := target[i] - out[i]
		se += err * err
		deltas[last][i] = err * n.layers[last].act.derivFromOutput(out[i])
	}
	// Backpropagate deltas.
	for li := last - 1; li >= 0; li-- {
		nextL := n.layers[li+1]
		cur := acts[li+1]
		for i := range deltas[li] {
			s := 0.0
			for k, row := range nextL.w {
				s += row[i] * deltas[li+1][k]
			}
			deltas[li][i] = s * n.layers[li].act.derivFromOutput(cur[i])
		}
	}
	// Weight updates with momentum.
	for li := range n.layers {
		in := acts[li]
		l := &n.layers[li]
		for i, row := range l.w {
			d := deltas[li][i]
			vrow := vel[li][i]
			for j := range row {
				var grad float64
				if j == len(row)-1 {
					grad = d // bias input is 1
				} else {
					if li == 0 && n.frozenInput[j] {
						vrow[j] = 0
						continue
					}
					grad = d * in[j]
				}
				v := momentum*vrow[j] + lr*grad
				vrow[j] = v
				row[j] += v
			}
		}
	}
	return se
}

// mseOn returns the network's MSE over a dataset with scalar targets.
func (n *Network) mseOn(x [][]float64, y []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range x {
		d := n.Predict1(x[i]) - y[i]
		s += d * d
	}
	return s / float64(len(x))
}

// toColumn wraps a scalar target slice as the [][]float64 the trainer wants.
func toColumn(y []float64) [][]float64 {
	out := make([][]float64, len(y))
	for i, v := range y {
		out[i] = []float64{v}
	}
	return out
}
