package neural

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"time"

	"perfpred/internal/engine"
)

// sgdOptions configures one backpropagation run.
type sgdOptions struct {
	epochs   int
	lr       float64
	lrFinal  float64 // 0 → constant learning rate (NN-S behaviour)
	momentum float64
	// patience stops training after this many epochs without a training
	// MSE improvement of at least minDelta (0 disables early stopping).
	patience int
	minDelta float64
	// hook, if non-nil, observes epoch-granularity progress under label.
	hook  engine.Hook
	label string
}

// progressStride returns how often (in epochs) to emit progress events —
// roughly eight per run, never more than one per epoch.
func (o sgdOptions) progressStride() int {
	s := o.epochs / 8
	if s < 1 {
		s = 1
	}
	return s
}

// scratchKey identifies the neural kernels' slot in an engine worker's
// local store.
type scratchKey struct{}

// scratchFrom returns the current engine worker's reusable kernel scratch.
// Inside a pool the scratch lives as long as the worker, so every training
// run and batch prediction the worker executes shares one set of buffers;
// outside a pool each call gets a fresh scratch (correct, just unshared).
func scratchFrom(ctx context.Context) *Scratch {
	return engine.WorkerLocal(ctx, scratchKey{}, func() any { return new(Scratch) }).(*Scratch)
}

// trainSGD runs stochastic backpropagation with momentum on (x, y), where
// y holds each sample's targets flattened at stride NumOutputs. It
// shuffles per epoch with r and respects frozen inputs. Returns the final
// training MSE. The epoch loop checks ctx each iteration, so a hung or
// oversized training run (an NN-E prune, say) can be aborted promptly.
func (n *Network) trainSGD(ctx context.Context, x [][]float64, y []float64, opts sgdOptions, r *rand.Rand) (float64, error) {
	if len(x) == 0 {
		return 0, errors.New("neural: no training data")
	}
	nOut := n.NumOutputs()
	if len(y) != len(x)*nOut {
		return 0, errors.New("neural: x/y length mismatch")
	}
	for li := range n.layers {
		if n.layers[li].act == HardLimit {
			return 0, errors.New("neural: hard-limit activation is not trainable by backprop")
		}
	}
	if opts.epochs <= 0 {
		return 0, errors.New("neural: epochs must be positive")
	}
	if opts.lr <= 0 {
		return 0, errors.New("neural: learning rate must be positive")
	}

	s := scratchFrom(ctx)
	s.ensureBackward(n)

	perm := make([]int, len(x))
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	stale := 0
	mse := math.Inf(1)
	stride := opts.progressStride()
	kernelStart := time.Now()
	samples := int64(0)
	for epoch := 0; epoch < opts.epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return mse, err
		}
		if opts.hook != nil && epoch%stride == 0 {
			opts.hook.Emit(engine.Event{
				Kind: engine.EpochProgress, Label: opts.label, Fold: -1,
				Epoch: epoch, Epochs: opts.epochs,
			})
		}
		lr := opts.lr
		if opts.lrFinal > 0 && opts.epochs > 1 {
			// Geometric decay from lr to lrFinal across the run.
			t := float64(epoch) / float64(opts.epochs-1)
			lr = opts.lr * math.Pow(opts.lrFinal/opts.lr, t)
		}
		r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		sse := n.trainEpoch(x, y, perm, lr, opts.momentum, s)
		samples += int64(len(x))
		mse = sse / float64(len(x))
		if opts.patience > 0 {
			if mse < best-opts.minDelta {
				best = mse
				stale = 0
			} else {
				stale++
				if stale >= opts.patience {
					break
				}
			}
		}
	}
	if opts.hook != nil {
		opts.hook.Emit(engine.Event{
			Kind: engine.KernelTime, Label: "sgd " + opts.label, Fold: -1,
			Samples: samples, Elapsed: time.Since(kernelStart),
		})
	}
	return mse, nil
}

// trainEpoch is the batched backward kernel: it streams one epoch of
// per-sample stochastic updates through the scratch buffers in perm order
// and returns the epoch's summed pre-update squared error. Updates are
// applied sample by sample in exactly the reference order, so batching
// changes no numerical result.
func (n *Network) trainEpoch(x [][]float64, y []float64, perm []int, lr, momentum float64, s *Scratch) float64 {
	nOut := n.NumOutputs()
	sse := 0.0
	for _, i := range perm {
		sse += n.backpropSample(x[i], y[i*nOut:(i+1)*nOut], lr, momentum, s)
	}
	return sse
}

// backpropSample performs one stochastic update through the scratch
// buffers and returns the pre-update squared error of the sample.
func (n *Network) backpropSample(x, target []float64, lr, momentum float64, s *Scratch) float64 {
	out := n.forwardScratch(x, s)
	last := len(n.layers) - 1

	se := 0.0
	lastDeltas := s.deltas[last]
	lastAct := n.layers[last].act
	for i := range out {
		err := target[i] - out[i]
		se += err * err
		lastDeltas[i] = err * lastAct.derivFromOutput(out[i])
	}
	// Backpropagate deltas. Hidden units are handled four at a time: each
	// unit's sum still accumulates over k in ascending order (the reference
	// order), but the four independent accumulators overlap their FP
	// dependency chains and turn the strided weight reads into contiguous
	// four-wide loads.
	for li := last - 1; li >= 0; li-- {
		l := &n.layers[li]
		next := &n.layers[li+1]
		nw := next.w
		nstride := next.in + 1
		nout := next.out
		cur := s.acts[li]
		deltas := s.deltas[li]
		nextDeltas := s.deltas[li+1][:nout]
		i := 0
		for ; i+4 <= l.out; i += 4 {
			var s0, s1, s2, s3 float64
			for k, d := range nextDeltas {
				base := k*nstride + i
				q := nw[base : base+4 : base+4]
				s0 += q[0] * d
				s1 += q[1] * d
				s2 += q[2] * d
				s3 += q[3] * d
			}
			deltas[i] = s0 * l.act.derivFromOutput(cur[i])
			deltas[i+1] = s1 * l.act.derivFromOutput(cur[i+1])
			deltas[i+2] = s2 * l.act.derivFromOutput(cur[i+2])
			deltas[i+3] = s3 * l.act.derivFromOutput(cur[i+3])
		}
		for ; i < l.out; i++ {
			sum := 0.0
			for k, d := range nextDeltas {
				sum += nw[k*nstride+i] * d
			}
			deltas[i] = sum * l.act.derivFromOutput(cur[i])
		}
	}
	// Weight updates with momentum. Layer 0 additionally respects the
	// pruning mask; the frozen branch is skipped entirely on unpruned
	// networks.
	for li := range n.layers {
		l := &n.layers[li]
		in := x
		if li > 0 {
			in = s.acts[li-1]
		}
		in = in[:l.in]
		stride := l.in + 1
		w := l.w
		vel := s.vel[li]
		deltas := s.deltas[li]
		checkFrozen := li == 0 && n.nFrozen > 0
		for i := 0; i < l.out; i++ {
			d := deltas[i]
			off := i * stride
			rw := w[off : off+l.in : off+l.in][:len(in)]
			vw := vel[off : off+l.in : off+l.in][:len(in)]
			if checkFrozen {
				frozen := n.frozenInput[:l.in][:len(in)]
				for j, a := range in {
					if frozen[j] {
						vw[j] = 0
						continue
					}
					grad := d * a
					v := momentum*vw[j] + lr*grad
					vw[j] = v
					rw[j] += v
				}
			} else {
				for j, a := range in {
					grad := d * a
					v := momentum*vw[j] + lr*grad
					vw[j] = v
					rw[j] += v
				}
			}
			// Bias input is 1.
			v := momentum*vel[off+l.in] + lr*d
			vel[off+l.in] = v
			w[off+l.in] += v
		}
	}
	return se
}

// mseOn returns the network's MSE over a dataset with scalar targets,
// streaming every row through s (nil s uses a temporary scratch).
func (n *Network) mseOn(x [][]float64, y []float64, s *Scratch) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	if s == nil {
		s = new(Scratch)
	}
	s.ensureBatch(n)
	// Full blocks go through the minibatch forward kernel; per-sample
	// squared errors are still summed in sample order, so the total is
	// bit-identical to the sequential pass.
	var xs [batchWidth][]float64
	var preds [batchWidth]float64
	sum := 0.0
	i := 0
	for ; i+batchWidth <= len(x); i += batchWidth {
		copy(xs[:], x[i:i+batchWidth])
		n.predictBatch8(&xs, preds[:], s)
		for b, p := range preds {
			d := p - y[i+b]
			sum += d * d
		}
	}
	for ; i < len(x); i++ {
		d := n.predict1Scratch(x[i], s) - y[i]
		sum += d * d
	}
	return sum / float64(len(x))
}
