package neural

import (
	"encoding/json"
	"fmt"
	"math"
)

type layerState struct {
	W   [][]float64 `json:"w"`
	Act Activation  `json:"act"`
}

type networkState struct {
	Sizes       []int        `json:"sizes"`
	Layers      []layerState `json:"layers"`
	FrozenInput []bool       `json:"frozen_input"`
}

type modelState struct {
	Version int          `json:"version"`
	Method  Method       `json:"method"`
	ValMSE  float64      `json:"val_mse"` // NaN encoded as -1
	Net     networkState `json:"net"`
}

const modelVersion = 1

// MarshalJSON serializes the trained model (topology, weights, pruning
// state) so it can be persisted and reloaded for prediction.
func (m *Model) MarshalJSON() ([]byte, error) {
	st := modelState{
		Version: modelVersion,
		Method:  m.method,
		ValMSE:  m.valMSE,
		Net: networkState{
			Sizes:       m.net.sizes,
			FrozenInput: m.net.frozenInput,
		},
	}
	if math.IsNaN(st.ValMSE) {
		st.ValMSE = -1
	}
	// The wire format keeps the ragged per-unit rows (version 1); the flat
	// in-memory rows are copied out unit by unit.
	for li := range m.net.layers {
		l := &m.net.layers[li]
		w := make([][]float64, l.out)
		for i := range w {
			w[i] = append([]float64(nil), l.row(i)...)
		}
		st.Net.Layers = append(st.Net.Layers, layerState{W: w, Act: l.act})
	}
	return json.Marshal(st)
}

// UnmarshalModel restores a model serialized by MarshalJSON.
func UnmarshalModel(data []byte) (*Model, error) {
	var st modelState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("neural: decoding model: %w", err)
	}
	if st.Version != modelVersion {
		return nil, fmt.Errorf("neural: unsupported model version %d", st.Version)
	}
	if len(st.Net.Sizes) < 2 {
		return nil, fmt.Errorf("neural: network needs at least 2 layers, got %d", len(st.Net.Sizes))
	}
	if len(st.Net.Layers) != len(st.Net.Sizes)-1 {
		return nil, fmt.Errorf("neural: %d weight layers for %d size entries", len(st.Net.Layers), len(st.Net.Sizes))
	}
	if len(st.Net.FrozenInput) != st.Net.Sizes[0] {
		return nil, fmt.Errorf("neural: frozen-input mask width %d != %d inputs", len(st.Net.FrozenInput), st.Net.Sizes[0])
	}
	n := &Network{
		sizes:       st.Net.Sizes,
		frozenInput: st.Net.FrozenInput,
	}
	for _, f := range st.Net.FrozenInput {
		if f {
			n.nFrozen++
		}
	}
	for li, l := range st.Net.Layers {
		if len(l.W) != st.Net.Sizes[li+1] {
			return nil, fmt.Errorf("neural: layer %d has %d units, sizes say %d", li, len(l.W), st.Net.Sizes[li+1])
		}
		in := st.Net.Sizes[li]
		flat := make([]float64, 0, len(l.W)*(in+1))
		for ui, row := range l.W {
			if len(row) != in+1 {
				return nil, fmt.Errorf("neural: layer %d unit %d has %d weights, want %d",
					li, ui, len(row), in+1)
			}
			flat = append(flat, row...)
		}
		switch l.Act {
		case Sigmoid, TanSigmoid, Linear, HardLimit:
		default:
			return nil, fmt.Errorf("neural: layer %d has invalid activation %d", li, int(l.Act))
		}
		n.layers = append(n.layers, layer{w: flat, in: in, out: len(l.W), act: l.Act})
	}
	val := st.ValMSE
	if val == -1 {
		val = math.NaN()
	}
	return &Model{net: n, method: st.Method, valMSE: val}, nil
}
