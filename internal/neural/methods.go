package neural

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"

	"perfpred/internal/engine"
	"perfpred/internal/stat"
)

// Method selects the Clementine training strategy.
type Method int

const (
	// Quick (NN-Q) trains a single heuristically sized hidden layer with a
	// decaying learning rate.
	Quick Method = iota
	// Dynamic (NN-D) grows the hidden layer while the held-out error keeps
	// improving.
	Dynamic
	// Multiple (NN-M) trains several topologies concurrently and keeps the
	// one with the best held-out error.
	Multiple
	// Prune (NN-P) starts from a large network and removes the weakest
	// hidden units and inputs while the held-out error does not degrade.
	Prune
	// ExhaustivePrune (NN-E) is Prune with a larger starting topology,
	// multiple restarts, longer training and a stricter pruning tolerance —
	// "the slowest of all, but often yields the best results" (paper §3.2).
	ExhaustivePrune
	// Single (NN-S) is the paper's modified Quick: one smaller hidden
	// layer and a constant learning rate, similar to the model of
	// Ipek et al. Fast to train.
	Single
)

// String returns the paper's short name for the method.
func (m Method) String() string {
	switch m {
	case Quick:
		return "NN-Q"
	case Dynamic:
		return "NN-D"
	case Multiple:
		return "NN-M"
	case Prune:
		return "NN-P"
	case ExhaustivePrune:
		return "NN-E"
	case Single:
		return "NN-S"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Methods lists all six training methods in the paper's Figure 7/8 order
// (NN-S appended; the figures show Q, D, M, P, E).
func Methods() []Method {
	return []Method{Quick, Dynamic, Multiple, Prune, ExhaustivePrune, Single}
}

// Config configures Train.
type Config struct {
	Method Method
	// Seed drives all stochastic choices (weight init, shuffling, splits).
	Seed int64
	// Workers bounds the topology-search parallelism. Zero means
	// runtime.GOMAXPROCS(0).
	Workers int
	// EpochScale multiplies every method's default epoch counts; zero
	// means 1.0. Tests use small values to stay fast.
	EpochScale float64
	// Hook, if non-nil, observes topology-search task events and
	// epoch-granularity training progress. Observability only; never
	// affects results.
	Hook engine.Hook
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) epochs(base int) int {
	s := c.EpochScale
	if s <= 0 {
		s = 1
	}
	e := int(float64(base) * s)
	if e < 10 {
		e = 10
	}
	return e
}

// Model is a trained neural-network regressor.
type Model struct {
	net    *Network
	method Method
	valMSE float64
}

// Predict returns the model's prediction for one encoded input row.
func (m *Model) Predict(x []float64) float64 { return m.net.Predict1(x) }

// NumInputs returns the width of the input rows the model expects —
// registry loaders use it to cross-check a deserialized model against
// its encoder.
func (m *Model) NumInputs() int { return m.net.NumInputs() }

// PredictAll returns predictions for a batch of rows via the batched
// forward kernel (one scratch for the whole batch, no per-row allocation).
func (m *Model) PredictAll(x [][]float64) []float64 {
	return m.PredictAllInto(make([]float64, len(x)), x, nil)
}

// PredictAllInto is the allocation-free batch predictor: it writes the
// prediction for each row of x into dst (which must have len(x) elements)
// and returns dst. A nil scratch uses a temporary; passing a reused
// Scratch makes steady-state calls allocate nothing.
func (m *Model) PredictAllInto(dst []float64, x [][]float64, s *Scratch) []float64 {
	if len(dst) != len(x) {
		panic("neural: PredictAllInto dst/x length mismatch")
	}
	if s == nil {
		s = new(Scratch)
	}
	s.ensureBatch(m.net)
	// Full blocks go through the minibatch kernel; the tail is scored by
	// the per-sample kernel. Both produce bit-identical outputs.
	var xs [batchWidth][]float64
	i := 0
	for ; i+batchWidth <= len(x); i += batchWidth {
		copy(xs[:], x[i:i+batchWidth])
		m.net.predictBatch8(&xs, dst[i:i+batchWidth], s)
	}
	for ; i < len(x); i++ {
		dst[i] = m.net.predict1Scratch(x[i], s)
	}
	return dst
}

// PredictWith returns the prediction for one encoded row, reusing s for
// the forward pass (nil s falls back to Predict). It is the hot-path
// variant batch scorers use with a worker-local scratch.
func (m *Model) PredictWith(x []float64, s *Scratch) float64 {
	if s == nil {
		return m.Predict(x)
	}
	s.ensureForward(m.net)
	return m.net.predict1Scratch(x, s)
}

// Method returns the training method that produced the model.
func (m *Model) Method() Method { return m.method }

// Network exposes the underlying network (read-only use intended).
func (m *Model) Network() *Network { return m.net }

// ValidationMSE returns the held-out MSE observed during topology search
// (NaN for methods that did not need a validation split).
func (m *Model) ValidationMSE() float64 { return m.valMSE }

// Train fits a neural network to x (rows of [0,1]-scaled features) and
// scalar targets y (also [0,1]-scaled) using the configured method.
// Cancelling ctx aborts the epoch loops promptly with ctx's error.
func Train(ctx context.Context, x [][]float64, y []float64, cfg Config) (*Model, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(x) == 0 {
		return nil, errors.New("neural: no training data")
	}
	if len(x) != len(y) {
		return nil, errors.New("neural: x/y length mismatch")
	}
	p := len(x[0])
	if p == 0 {
		return nil, errors.New("neural: zero-width inputs")
	}
	for _, row := range x {
		if len(row) != p {
			return nil, errors.New("neural: ragged input matrix")
		}
	}
	if len(x) < 4 {
		return nil, errors.New("neural: need at least 4 records")
	}

	// Clementine-style half split for topology decisions (paper §3.3).
	r := stat.NewRand(cfg.Seed)
	perm := r.Perm(len(x))
	h := len(x) / 2
	xtr, ytr := gather(x, y, perm[:h])
	xval, yval := gather(x, y, perm[h:])

	switch cfg.Method {
	case Quick:
		return trainQuick(ctx, x, y, xtr, ytr, xval, yval, cfg)
	case Single:
		return trainSingle(ctx, x, y, cfg)
	case Dynamic:
		return trainDynamic(ctx, x, y, xtr, ytr, xval, yval, cfg)
	case Multiple:
		return trainMultiple(ctx, x, y, xtr, ytr, xval, yval, cfg)
	case Prune:
		return trainPrune(ctx, x, y, xtr, ytr, xval, yval, cfg, false)
	case ExhaustivePrune:
		return trainPrune(ctx, x, y, xtr, ytr, xval, yval, cfg, true)
	default:
		return nil, fmt.Errorf("neural: unknown method %v", cfg.Method)
	}
}

func gather(x [][]float64, y []float64, idx []int) ([][]float64, []float64) {
	xs := make([][]float64, len(idx))
	ys := make([]float64, len(idx))
	for k, i := range idx {
		xs[k] = x[i]
		ys[k] = y[i]
	}
	return xs, ys
}

// finalPolish retrains net on the full dataset from its current weights.
func finalPolish(ctx context.Context, net *Network, x [][]float64, y []float64, cfg Config, epochs int, seed int64) error {
	_, err := net.trainSGD(ctx, x, y, sgdOptions{
		epochs:   cfg.epochs(epochs),
		lr:       0.25,
		lrFinal:  0.02,
		momentum: 0.9,
		patience: 60,
		minDelta: 1e-7,
		hook:     cfg.Hook,
		label:    cfg.Method.String() + " polish",
	}, stat.NewRand(seed))
	return err
}

func trainQuick(ctx context.Context, x [][]float64, y []float64, xtr [][]float64, ytr []float64, xval [][]float64, yval []float64, cfg Config) (*Model, error) {
	p := len(x[0])
	h := max(3, (p+1)/2)
	net, err := NewNetwork([]int{p, h, 1}, Sigmoid, Sigmoid, stat.NewSubRand(cfg.Seed, 1))
	if err != nil {
		return nil, err
	}
	_, err = net.trainSGD(ctx, xtr, ytr, sgdOptions{
		epochs:   cfg.epochs(300),
		lr:       0.4,
		lrFinal:  0.05,
		momentum: 0.9,
		patience: 50,
		minDelta: 1e-7,
		hook:     cfg.Hook,
		label:    "NN-Q",
	}, stat.NewSubRand(cfg.Seed, 2))
	if err != nil {
		return nil, err
	}
	val := net.mseOn(xval, yval, scratchFrom(ctx))
	if err := finalPolish(ctx, net, x, y, cfg, 200, stat.DeriveSeed(cfg.Seed, 3)); err != nil {
		return nil, err
	}
	return &Model{net: net, method: Quick, valMSE: val}, nil
}

func trainSingle(ctx context.Context, x [][]float64, y []float64, cfg Config) (*Model, error) {
	p := len(x[0])
	h := max(2, (p+2)/4)
	net, err := NewNetwork([]int{p, h, 1}, Sigmoid, Sigmoid, stat.NewSubRand(cfg.Seed, 4))
	if err != nil {
		return nil, err
	}
	// Constant learning rate, one small hidden layer (paper §3.2, NN-S).
	_, err = net.trainSGD(ctx, x, y, sgdOptions{
		epochs:   cfg.epochs(250),
		lr:       0.2,
		momentum: 0.5,
		patience: 40,
		minDelta: 1e-7,
		hook:     cfg.Hook,
		label:    "NN-S",
	}, stat.NewSubRand(cfg.Seed, 5))
	if err != nil {
		return nil, err
	}
	return &Model{net: net, method: Single, valMSE: math.NaN()}, nil
}

func trainDynamic(ctx context.Context, x [][]float64, y []float64, xtr [][]float64, ytr []float64, xval [][]float64, yval []float64, cfg Config) (*Model, error) {
	p := len(x[0])
	grow := max(1, p/8)
	s := scratchFrom(ctx)
	bestVal := math.Inf(1)
	var best *Network
	h := 2
	for step := 0; h <= 2*p && step < 12; step++ {
		net, err := NewNetwork([]int{p, h, 1}, Sigmoid, Sigmoid, stat.NewSubRand(cfg.Seed, 10+step))
		if err != nil {
			return nil, err
		}
		_, err = net.trainSGD(ctx, xtr, ytr, sgdOptions{
			epochs:   cfg.epochs(150),
			lr:       0.35,
			lrFinal:  0.05,
			momentum: 0.9,
			patience: 30,
			minDelta: 1e-7,
			hook:     cfg.Hook,
			label:    fmt.Sprintf("NN-D grow %d", step),
		}, stat.NewSubRand(cfg.Seed, 30+step))
		if err != nil {
			return nil, err
		}
		val := net.mseOn(xval, yval, s)
		if val < bestVal*(1-1e-4) {
			bestVal = val
			best = net
			h += grow
			continue
		}
		break // growth stopped paying off
	}
	if best == nil {
		return nil, errors.New("neural: dynamic growth failed to produce a network")
	}
	if err := finalPolish(ctx, best, x, y, cfg, 200, stat.DeriveSeed(cfg.Seed, 50)); err != nil {
		return nil, err
	}
	return &Model{net: best, method: Dynamic, valMSE: bestVal}, nil
}

func trainMultiple(ctx context.Context, x [][]float64, y []float64, xtr [][]float64, ytr []float64, xval [][]float64, yval []float64, cfg Config) (*Model, error) {
	p := len(x[0])
	topos := [][]int{
		{p, max(2, p/4), 1},
		{p, max(3, p/2), 1},
		{p, p, 1},
		{p, max(3, p/2), max(2, p/4), 1},
		{p, p, max(3, p/2), 1},
	}
	type result struct {
		net *Network
		val float64
	}
	results := make([]result, len(topos))
	tasks := make([]engine.Task, len(topos))
	for i := range topos {
		i := i
		tasks[i] = engine.Task{
			Label: fmt.Sprintf("NN-M topo %d", i),
			Model: "NN-M",
			Fold:  -1,
			Run: func(ctx context.Context) error {
				net, err := NewNetwork(topos[i], Sigmoid, Sigmoid, stat.NewSubRand(cfg.Seed, 100+i))
				if err != nil {
					return err
				}
				_, err = net.trainSGD(ctx, xtr, ytr, sgdOptions{
					epochs:   cfg.epochs(250),
					lr:       0.35,
					lrFinal:  0.04,
					momentum: 0.9,
					patience: 40,
					minDelta: 1e-7,
					hook:     cfg.Hook,
					label:    fmt.Sprintf("NN-M topo %d", i),
				}, stat.NewSubRand(cfg.Seed, 200+i))
				if err != nil {
					return err
				}
				results[i] = result{net: net, val: net.mseOn(xval, yval, scratchFrom(ctx))}
				return nil
			},
		}
	}
	if err := engine.Run(ctx, engine.Options{Workers: cfg.workers(), Hook: cfg.Hook}, tasks...); err != nil {
		return nil, err
	}
	bestVal := math.Inf(1)
	var best *Network
	for _, res := range results {
		if res.val < bestVal {
			bestVal = res.val
			best = res.net
		}
	}
	if best == nil {
		return nil, errors.New("neural: multiple-topology search produced no network")
	}
	if err := finalPolish(ctx, best, x, y, cfg, 200, stat.DeriveSeed(cfg.Seed, 300)); err != nil {
		return nil, err
	}
	return &Model{net: best, method: Multiple, valMSE: bestVal}, nil
}

// trainPrune implements NN-P, and NN-E when exhaustive is true.
func trainPrune(ctx context.Context, x [][]float64, y []float64, xtr [][]float64, ytr []float64, xval [][]float64, yval []float64, cfg Config, exhaustive bool) (*Model, error) {
	p := len(x[0])
	restarts := 1
	startH := p
	trainEpochs, retrainEpochs := 250, 80
	tol := 1.05 // accept a prune if val MSE stays within 5%
	maxPrunes := max(1, p/2)
	if exhaustive {
		restarts = 3
		startH = p + max(2, p/2)
		trainEpochs, retrainEpochs = 450, 150
		tol = 1.01
		maxPrunes = p
	}

	method := Prune
	if exhaustive {
		method = ExhaustivePrune
	}

	type result struct {
		net *Network
		val float64
	}
	results := make([]result, restarts)
	tasks := make([]engine.Task, restarts)
	for ri := 0; ri < restarts; ri++ {
		ri := ri
		tasks[ri] = engine.Task{
			Label: fmt.Sprintf("%v restart %d", method, ri),
			Model: method.String(),
			Fold:  -1,
			Run: func(ctx context.Context) error {
				s := scratchFrom(ctx)
				seedBase := 1000 * (ri + 1)
				net, err := NewNetwork([]int{p, startH, 1}, Sigmoid, Sigmoid, stat.NewSubRand(cfg.Seed, seedBase))
				if err != nil {
					return err
				}
				_, err = net.trainSGD(ctx, xtr, ytr, sgdOptions{
					epochs:   cfg.epochs(trainEpochs),
					lr:       0.35,
					lrFinal:  0.03,
					momentum: 0.9,
					patience: 50,
					minDelta: 1e-7,
					hook:     cfg.Hook,
					label:    fmt.Sprintf("%v restart %d", method, ri),
				}, stat.NewSubRand(cfg.Seed, seedBase+1))
				if err != nil {
					return err
				}
				val := net.mseOn(xval, yval, s)

				// Alternate hidden-unit and input pruning while the held-out
				// error stays within tolerance.
				for prune := 0; prune < maxPrunes; prune++ {
					cand := net.Clone()
					pruned := false
					if cand.sizes[1] > 2 {
						sal := cand.hiddenSaliency(0)
						victim := argmin(sal)
						if err := cand.RemoveHidden(0, victim); err == nil {
							pruned = true
						}
					}
					if !pruned {
						// Fall back to input pruning.
						sal := cand.inputSaliency()
						victim, ok := weakestUnfrozen(cand, sal)
						if !ok {
							break
						}
						if err := cand.FreezeInput(victim); err != nil {
							break
						}
					}
					_, err := cand.trainSGD(ctx, xtr, ytr, sgdOptions{
						epochs:   cfg.epochs(retrainEpochs),
						lr:       0.2,
						lrFinal:  0.03,
						momentum: 0.9,
						patience: 25,
						minDelta: 1e-7,
						hook:     cfg.Hook,
						label:    fmt.Sprintf("%v restart %d prune %d", method, ri, prune),
					}, stat.NewSubRand(cfg.Seed, seedBase+10+prune))
					if err != nil {
						return err
					}
					cval := cand.mseOn(xval, yval, s)
					if cval <= val*tol {
						net, val = cand, math.Min(cval, val)
						continue
					}
					break
				}
				// Exhaustive mode also prunes weak inputs after the unit sweep.
				if exhaustive {
					for prune := 0; prune < p/2; prune++ {
						cand := net.Clone()
						sal := cand.inputSaliency()
						victim, ok := weakestUnfrozen(cand, sal)
						if !ok {
							break
						}
						if err := cand.FreezeInput(victim); err != nil {
							break
						}
						_, err := cand.trainSGD(ctx, xtr, ytr, sgdOptions{
							epochs:   cfg.epochs(retrainEpochs),
							lr:       0.15,
							lrFinal:  0.03,
							momentum: 0.9,
							patience: 25,
							minDelta: 1e-7,
							hook:     cfg.Hook,
							label:    fmt.Sprintf("%v restart %d input-prune %d", method, ri, prune),
						}, stat.NewSubRand(cfg.Seed, seedBase+500+prune))
						if err != nil {
							return err
						}
						cval := cand.mseOn(xval, yval, s)
						if cval <= val*tol {
							net, val = cand, math.Min(cval, val)
							continue
						}
						break
					}
				}
				results[ri] = result{net: net, val: val}
				return nil
			},
		}
	}
	if err := engine.Run(ctx, engine.Options{Workers: cfg.workers(), Hook: cfg.Hook}, tasks...); err != nil {
		return nil, err
	}

	bestVal := math.Inf(1)
	var best *Network
	for _, res := range results {
		if res.val < bestVal {
			bestVal = res.val
			best = res.net
		}
	}
	if best == nil {
		return nil, errors.New("neural: pruning search produced no network")
	}
	polish := 150
	if exhaustive {
		polish = 300
	}
	if err := finalPolish(ctx, best, x, y, cfg, polish, stat.DeriveSeed(cfg.Seed, 9999)); err != nil {
		return nil, err
	}
	return &Model{net: best, method: method, valMSE: bestVal}, nil
}

func weakestUnfrozen(n *Network, sal []float64) (int, bool) {
	best, bestSal := -1, math.Inf(1)
	frozen := 0
	for j, s := range sal {
		if n.InputFrozen(j) {
			frozen++
			continue
		}
		if s < bestSal {
			best, bestSal = j, s
		}
	}
	// Keep at least two live inputs.
	if best < 0 || len(sal)-frozen <= 2 {
		return 0, false
	}
	return best, true
}

func argmin(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}
