package neural

// This file retains the pre-batching per-sample implementation — ragged
// [][]float64 weight rows, fresh buffers per call — as an executable
// specification. The equivalence tests assert that the flat, batched,
// allocation-free kernels produce bit-identical weights and predictions,
// which is the contract that lets the kernels ship without regenerating a
// single golden fixture.

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"
)

// refLayer mirrors the pre-refactor ragged layer: one weight row per
// unit, bias stored in the row's last slot.
type refLayer struct {
	w   [][]float64
	act Activation
}

// refNetwork is the retained per-sample reference implementation.
type refNetwork struct {
	sizes       []int
	layers      []refLayer
	frozenInput []bool
}

// refNew builds a reference network drawing initial weights from r in the
// pre-refactor order: layer by layer, unit by unit, inputs then bias.
func refNew(sizes []int, hact, oact Activation, r *rand.Rand) *refNetwork {
	n := &refNetwork{
		sizes:       append([]int(nil), sizes...),
		frozenInput: make([]bool, sizes[0]),
	}
	for l := 1; l < len(sizes); l++ {
		act := hact
		if l == len(sizes)-1 {
			act = oact
		}
		fanin := sizes[l-1]
		scale := 1 / math.Sqrt(float64(fanin))
		w := make([][]float64, sizes[l])
		for i := range w {
			w[i] = make([]float64, fanin+1)
			for j := range w[i] {
				w[i][j] = (2*r.Float64() - 1) * scale
			}
		}
		n.layers = append(n.layers, refLayer{w: w, act: act})
	}
	return n
}

// refFromNetwork copies a flat-layout network into ragged reference form.
func refFromNetwork(n *Network) *refNetwork {
	rn := &refNetwork{
		sizes:       append([]int(nil), n.sizes...),
		frozenInput: append([]bool(nil), n.frozenInput...),
	}
	for li := range n.layers {
		l := &n.layers[li]
		w := make([][]float64, l.out)
		for i := range w {
			w[i] = append([]float64(nil), l.row(i)...)
		}
		rn.layers = append(rn.layers, refLayer{w: w, act: l.act})
	}
	return rn
}

// refForwardActs is the retained per-sample forward pass: fresh slices
// every call, bias accumulated first, inputs in index order.
func (n *refNetwork) refForwardActs(x []float64) [][]float64 {
	acts := make([][]float64, len(n.sizes))
	acts[0] = x
	cur := x
	for li, l := range n.layers {
		next := make([]float64, len(l.w))
		for i, row := range l.w {
			s := row[len(row)-1] // bias
			for j, v := range cur {
				s += row[j] * v
			}
			next[i] = l.act.apply(s)
		}
		acts[li+1] = next
		cur = next
	}
	return acts
}

// refBackpropOne is the retained per-sample stochastic update.
func (n *refNetwork) refBackpropOne(x, target []float64, lr, momentum float64, vel [][][]float64, deltas [][]float64) float64 {
	acts := n.refForwardActs(x)
	out := acts[len(acts)-1]
	last := len(n.layers) - 1

	se := 0.0
	for i := range out {
		err := target[i] - out[i]
		se += err * err
		deltas[last][i] = err * n.layers[last].act.derivFromOutput(out[i])
	}
	for li := last - 1; li >= 0; li-- {
		nextL := n.layers[li+1]
		cur := acts[li+1]
		for i := range deltas[li] {
			s := 0.0
			for k, row := range nextL.w {
				s += row[i] * deltas[li+1][k]
			}
			deltas[li][i] = s * n.layers[li].act.derivFromOutput(cur[i])
		}
	}
	for li := range n.layers {
		in := acts[li]
		l := &n.layers[li]
		for i, row := range l.w {
			d := deltas[li][i]
			vrow := vel[li][i]
			for j := range row {
				var grad float64
				if j == len(row)-1 {
					grad = d // bias input is 1
				} else {
					if li == 0 && n.frozenInput[j] {
						vrow[j] = 0
						continue
					}
					grad = d * in[j]
				}
				v := momentum*vrow[j] + lr*grad
				vrow[j] = v
				row[j] += v
			}
		}
	}
	return se
}

// refTrainSGD is the retained training loop: same shuffles, same learning
// rate schedule, same early stopping as trainSGD.
func (n *refNetwork) refTrainSGD(x [][]float64, y [][]float64, opts sgdOptions, r *rand.Rand) float64 {
	vel := make([][][]float64, len(n.layers))
	for li, l := range n.layers {
		vel[li] = make([][]float64, len(l.w))
		for i := range l.w {
			vel[li][i] = make([]float64, len(l.w[i]))
		}
	}
	deltas := make([][]float64, len(n.layers))
	for li := range n.layers {
		deltas[li] = make([]float64, len(n.layers[li].w))
	}
	perm := make([]int, len(x))
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	stale := 0
	mse := math.Inf(1)
	for epoch := 0; epoch < opts.epochs; epoch++ {
		lr := opts.lr
		if opts.lrFinal > 0 && opts.epochs > 1 {
			t := float64(epoch) / float64(opts.epochs-1)
			lr = opts.lr * math.Pow(opts.lrFinal/opts.lr, t)
		}
		r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		sse := 0.0
		for _, i := range perm {
			sse += n.refBackpropOne(x[i], y[i], lr, opts.momentum, vel, deltas)
		}
		mse = sse / float64(len(x))
		if opts.patience > 0 {
			if mse < best-opts.minDelta {
				best = mse
				stale = 0
			} else {
				stale++
				if stale >= opts.patience {
					break
				}
			}
		}
	}
	return mse
}

// assertWeightsEqualRef fails unless the flat network's weights are
// bit-identical to the ragged reference's.
func assertWeightsEqualRef(t *testing.T, n *Network, rn *refNetwork) {
	t.Helper()
	if len(n.layers) != len(rn.layers) {
		t.Fatalf("layer count %d vs reference %d", len(n.layers), len(rn.layers))
	}
	for li := range n.layers {
		l := &n.layers[li]
		for i := 0; i < l.out; i++ {
			row := l.row(i)
			ref := rn.layers[li].w[i]
			for j := range ref {
				if row[j] != ref[j] {
					t.Fatalf("layer %d unit %d weight %d: %.17g vs reference %.17g",
						li, i, j, row[j], ref[j])
				}
			}
		}
	}
}

// TestNewNetworkMatchesReferenceInit pins the flat constructor's RNG
// consumption order to the reference: same seed, bit-identical weights.
func TestNewNetworkMatchesReferenceInit(t *testing.T) {
	for _, sizes := range [][]int{{2, 3, 1}, {16, 13, 1}, {4, 6, 5, 1}} {
		n, err := NewNetwork(sizes, Sigmoid, Linear, rand.New(rand.NewSource(41)))
		if err != nil {
			t.Fatal(err)
		}
		rn := refNew(sizes, Sigmoid, Linear, rand.New(rand.NewSource(41)))
		assertWeightsEqualRef(t, n, rn)
	}
}

// TestTrainSGDMatchesReference drives the batched kernels and the retained
// reference through identical SGD runs and demands bit-identical weights,
// MSE, and predictions. Covers both trainable activations, learning-rate
// decay, early stopping, deep topologies, and the frozen-input mask.
func TestTrainSGDMatchesReference(t *testing.T) {
	cases := []struct {
		name   string
		sizes  []int
		hact   Activation
		oact   Activation
		opts   sgdOptions
		frozen []int
	}{
		{
			name:  "sigmoid constant lr",
			sizes: []int{4, 5, 1},
			hact:  Sigmoid, oact: Sigmoid,
			opts: sgdOptions{epochs: 40, lr: 0.4, momentum: 0.9},
		},
		{
			name:  "tansig linear out with decay",
			sizes: []int{4, 7, 1},
			hact:  TanSigmoid, oact: Linear,
			opts: sgdOptions{epochs: 35, lr: 0.2, lrFinal: 0.01, momentum: 0.5},
		},
		{
			name:  "deep with early stopping",
			sizes: []int{4, 6, 5, 1},
			hact:  Sigmoid, oact: Sigmoid,
			opts: sgdOptions{epochs: 60, lr: 0.3, momentum: 0.9, patience: 5, minDelta: 1e-7},
		},
		{
			name:  "frozen inputs",
			sizes: []int{4, 5, 1},
			hact:  Sigmoid, oact: Sigmoid,
			opts:   sgdOptions{epochs: 30, lr: 0.4, momentum: 0.9},
			frozen: []int{1, 3},
		},
	}
	x, yFlat := benchData(32, 4, 5)
	yRagged := make([][]float64, len(yFlat))
	for i, v := range yFlat {
		yRagged[i] = []float64{v}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := NewNetwork(tc.sizes, tc.hact, tc.oact, rand.New(rand.NewSource(43)))
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range tc.frozen {
				if err := n.FreezeInput(f); err != nil {
					t.Fatal(err)
				}
			}
			rn := refFromNetwork(n)

			mse, err := n.trainSGD(context.Background(), x, yFlat, tc.opts, rand.New(rand.NewSource(44)))
			if err != nil {
				t.Fatal(err)
			}
			refMSE := rn.refTrainSGD(x, yRagged, tc.opts, rand.New(rand.NewSource(44)))

			if mse != refMSE {
				t.Fatalf("final MSE %.17g vs reference %.17g", mse, refMSE)
			}
			assertWeightsEqualRef(t, n, rn)

			s := NewScratch()
			s.ensureForward(n)
			for i := range x {
				got := n.predict1Scratch(x[i], s)
				want := rn.refForwardActs(x[i])[len(tc.sizes)-1][0]
				if got != want {
					t.Fatalf("row %d: prediction %.17g vs reference %.17g", i, got, want)
				}
			}
		})
	}
}

// trainMethods are the paper's five NN variants (NN-E split into its
// greedy and exhaustive prune flavours).
var trainMethods = []Method{Quick, Single, Dynamic, Multiple, Prune, ExhaustivePrune}

// TestTrainBitIdenticalAcrossWorkers trains every method with a serial
// pool and an 8-worker pool and requires bit-identical models: the
// worker-local scratch buffers and the engine's scheduling must never leak
// into numerical results. The trained models' predictions are then checked
// bit-exactly against the retained reference forward pass, and the batched
// PredictAll path against its per-sample tail path.
func TestTrainBitIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("trains every method twice")
	}
	x, y := benchData(48, 6, 9)
	probe, _ := benchData(37, 6, 10) // odd length exercises the batch tail
	for _, m := range trainMethods {
		t.Run(m.String(), func(t *testing.T) {
			cfg := Config{Method: m, Seed: 3, EpochScale: 0.1}
			cfg.Workers = 1
			serial, err := Train(context.Background(), x, y, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Workers = 8
			wide, err := Train(context.Background(), x, y, cfg)
			if err != nil {
				t.Fatal(err)
			}

			sj, err := serial.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			wj, err := wide.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sj, wj) {
				t.Fatalf("serial and 8-worker models differ:\n%s\nvs\n%s", sj, wj)
			}

			rn := refFromNetwork(serial.Network())
			got := serial.PredictAll(probe)
			for i := range probe {
				want := rn.refForwardActs(probe[i])[len(rn.sizes)-1][0]
				if got[i] != want {
					t.Fatalf("probe %d: batched %.17g vs reference %.17g", i, got[i], want)
				}
			}
		})
	}
}

// TestPredictAllMatchesPerSample pins the minibatch kernel to the scalar
// kernel across block boundaries: every length from empty through several
// full 8-wide blocks plus tails must agree bit-exactly.
func TestPredictAllMatchesPerSample(t *testing.T) {
	x, y := benchData(32, 5, 13)
	m, err := Train(context.Background(), x, y, Config{Method: Single, Seed: 2, EpochScale: 0.1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	space, _ := benchData(41, 5, 14)
	s := NewScratch()
	s.ensureForward(m.Network())
	for cut := 0; cut <= len(space); cut++ {
		sub := space[:cut]
		got := m.PredictAll(sub)
		if len(got) != cut {
			t.Fatalf("cut %d: got %d predictions", cut, len(got))
		}
		for i := range sub {
			want := m.Network().predict1Scratch(sub[i], s)
			if got[i] != want {
				t.Fatalf("cut %d row %d: batch %.17g vs scalar %.17g", cut, i, got[i], want)
			}
		}
	}
}

// TestMSEOnMatchesReference checks the batched validation scorer against a
// sequential sum on the reference forward pass.
func TestMSEOnMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	n, err := NewNetwork([]int{5, 9, 1}, Sigmoid, Sigmoid, r)
	if err != nil {
		t.Fatal(err)
	}
	x, y := benchData(27, 5, 15)
	rn := refFromNetwork(n)
	sum := 0.0
	for i := range x {
		d := rn.refForwardActs(x[i])[2][0] - y[i]
		sum += d * d
	}
	want := sum / float64(len(x))
	if got := n.mseOn(x, y, nil); got != want {
		t.Fatalf("mseOn %.17g vs reference %.17g", got, want)
	}
}

// TestSeedIndependence double-checks the harness itself: two different
// seeds must produce different models (guards against the equivalence
// tests degenerating into comparing constants).
func TestSeedIndependence(t *testing.T) {
	x, y := benchData(32, 4, 5)
	a, err := Train(context.Background(), x, y, Config{Method: Quick, Seed: 1, EpochScale: 0.1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(context.Background(), x, y, Config{Method: Quick, Seed: 2, EpochScale: 0.1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := a.MarshalJSON()
	bj, _ := b.MarshalJSON()
	if bytes.Equal(aj, bj) {
		t.Fatal("different seeds produced identical models")
	}
}
