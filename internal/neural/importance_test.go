package neural

import (
	"context"
	"math/rand"
	"testing"
)

func TestImportanceRanksDominantInput(t *testing.T) {
	// y depends strongly on x0, weakly on x1, not at all on x2 — like the
	// paper's Opteron finding that processor speed dominates (§4.4).
	r := rand.New(rand.NewSource(1))
	n := 200
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
		y[i] = 0.1 + 0.7*x[i][0] + 0.1*x[i][1]
	}
	m, err := Train(context.Background(), x, y, Config{Method: Quick, Seed: 5, EpochScale: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := m.Importance(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != 3 {
		t.Fatalf("len = %d", len(imp))
	}
	if !(imp[0] > imp[1] && imp[1] > imp[2]) {
		t.Fatalf("importance ordering wrong: %v", imp)
	}
	for j, v := range imp {
		if v < 0 || v > 1 {
			t.Fatalf("importance[%d] = %v outside [0,1]", j, v)
		}
	}
	if imp[0] < 0.4 {
		t.Fatalf("dominant input importance %v too small", imp[0])
	}
	if imp[2] > 0.2 {
		t.Fatalf("irrelevant input importance %v too large", imp[2])
	}
}

func TestImportanceConstantInputIsZero(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	n := 60
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{r.Float64(), 0.5} // second input constant
		y[i] = 0.2 + 0.6*x[i][0]
	}
	m, err := Train(context.Background(), x, y, Config{Method: Single, Seed: 6, EpochScale: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := m.Importance(x)
	if err != nil {
		t.Fatal(err)
	}
	if imp[1] != 0 {
		t.Fatalf("constant input importance = %v, want 0", imp[1])
	}
}

func TestImportanceFrozenInputIsZero(t *testing.T) {
	x, y := smoothData(3, 80)
	m, err := Train(context.Background(), x, y, Config{Method: Single, Seed: 7, EpochScale: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Network().FreezeInput(2); err != nil {
		t.Fatal(err)
	}
	imp, err := m.Importance(x)
	if err != nil {
		t.Fatal(err)
	}
	if imp[2] != 0 {
		t.Fatalf("frozen input importance = %v, want 0", imp[2])
	}
}

func TestImportanceErrors(t *testing.T) {
	x, y := smoothData(4, 40)
	m, err := Train(context.Background(), x, y, Config{Method: Single, Seed: 8, EpochScale: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Importance(nil); err == nil {
		t.Fatal("no probes: want error")
	}
	if _, err := m.Importance([][]float64{{1, 2}}); err == nil {
		t.Fatal("width mismatch: want error")
	}
}

func TestImportanceDeterministic(t *testing.T) {
	x, y := smoothData(5, 150)
	m, err := Train(context.Background(), x, y, Config{Method: Single, Seed: 9, EpochScale: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Importance(x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Importance(x)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("importance not deterministic")
		}
	}
}
