package neural

import (
	"testing"

	"perfpred/internal/model"
)

// TestFamilyConformance runs the registry conformance suite over every
// neural kind this package registers.
func TestFamilyConformance(t *testing.T) {
	for _, k := range []model.Kind{model.NNQ, model.NND, model.NNM, model.NNP, model.NNE, model.NNS} {
		k := k
		t.Run(k.String(), func(t *testing.T) { model.TestFamily(t, k) })
	}
}
