package cpu

import (
	"testing"

	"perfpred/internal/bpred"
	"perfpred/internal/mem"
	"perfpred/internal/trace"
)

// baseConfig returns a mid-range configuration.
func baseConfig() Config {
	cfg := Config{
		Mem: mem.HierarchyConfig{
			L1I:  mem.CacheConfig{SizeKB: 32, LineBytes: 64, Assoc: 4},
			L1D:  mem.CacheConfig{SizeKB: 32, LineBytes: 64, Assoc: 4},
			L2:   mem.CacheConfig{SizeKB: 1024, LineBytes: 128, Assoc: 8},
			ITLB: mem.TLBConfig{CoverageKB: 256},
			DTLB: mem.TLBConfig{CoverageKB: 512},
		},
		BPred: bpred.Combination,
		Width: 4,
		RUU:   128,
		LSQ:   64,
		FU:    FUConfig{IntALU: 4, IntMult: 2, MemPort: 2, FPALU: 4, FPMult: 2},
	}
	DefaultLatencies(&cfg)
	return cfg
}

func genTrace(t *testing.T, name string, n int) *trace.Trace {
	t.Helper()
	p, err := trace.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(p, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConfigValidate(t *testing.T) {
	good := baseConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Mem.L2 = mem.CacheConfig{} },
		func(c *Config) { c.BPred = bpred.Bimodal; c.BPredEntries = 1000 },
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.RUU = 0 },
		func(c *Config) { c.LSQ = 256; c.RUU = 128 },
		func(c *Config) { c.FU.MemPort = 0 },
		func(c *Config) { c.FrontendDepth = 0 },
	}
	for i, mutate := range mutations {
		c := baseConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: want error", i)
		}
	}
}

func TestFUConfigString(t *testing.T) {
	fu := FUConfig{IntALU: 4, IntMult: 2, MemPort: 2, FPALU: 4, FPMult: 2}
	if fu.String() != "4/2/2/4/2" {
		t.Fatalf("String() = %q", fu.String())
	}
}

func TestSimulateBasicSanity(t *testing.T) {
	tr := genTrace(t, "gcc", 30000)
	res, err := Simulate(baseConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 30000 {
		t.Fatalf("instructions = %d", res.Instructions)
	}
	if res.Cycles <= 0 {
		t.Fatalf("cycles = %v", res.Cycles)
	}
	if res.IPC <= 0 || res.IPC > float64(baseConfig().Width) {
		t.Fatalf("IPC = %v implausible", res.IPC)
	}
	sum := res.BaseCycles + res.BranchCycles + res.FetchCycles + res.MemCycles + res.TLBCycles
	if diff := res.Cycles - sum; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("breakdown (%v) does not sum to cycles (%v)", sum, res.Cycles)
	}
	if res.Branches == 0 || res.BranchMisses > res.Branches {
		t.Fatalf("branch stats %d/%d", res.BranchMisses, res.Branches)
	}
}

func TestSimulateRejectsInvalid(t *testing.T) {
	tr := genTrace(t, "gcc", 1000)
	bad := baseConfig()
	bad.Width = 0
	if _, err := Simulate(bad, tr); err == nil {
		t.Fatal("invalid config: want error")
	}
	if _, err := Simulate(baseConfig(), &trace.Trace{}); err == nil {
		t.Fatal("empty trace: want error")
	}
}

func TestPerfectPredictorFaster(t *testing.T) {
	tr := genTrace(t, "gcc", 30000)
	e, err := NewEvaluator(tr)
	if err != nil {
		t.Fatal(err)
	}
	perf := baseConfig()
	perf.BPred = bpred.Perfect
	bim := baseConfig()
	bim.BPred = bpred.Bimodal
	rp, err := e.Simulate(perf)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := e.Simulate(bim)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Cycles >= rb.Cycles {
		t.Fatalf("perfect (%v) not faster than bimodal (%v) on branchy gcc", rp.Cycles, rb.Cycles)
	}
	if rp.BranchMisses != 0 {
		t.Fatalf("perfect predictor missed %d branches", rp.BranchMisses)
	}
}

func TestBiggerCachesFasterOnMcf(t *testing.T) {
	tr := genTrace(t, "mcf", 30000)
	e, _ := NewEvaluator(tr)
	small := baseConfig()
	small.Mem.L1D.SizeKB = 16
	small.Mem.L2.SizeKB = 256
	small.Mem.L2.Assoc = 4
	big := baseConfig()
	big.Mem.L1D.SizeKB = 64
	big.Mem.L3 = mem.CacheConfig{SizeKB: 8192, LineBytes: 256, Assoc: 8, LatencyCycles: 40}
	rs, err := e.Simulate(small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := e.Simulate(big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Cycles >= rs.Cycles {
		t.Fatalf("bigger memory system (%v) not faster than small (%v) on mcf", rb.Cycles, rs.Cycles)
	}
}

func TestWiderCoreFasterOnApplu(t *testing.T) {
	tr := genTrace(t, "applu", 30000)
	e, _ := NewEvaluator(tr)
	narrow := baseConfig()
	wide := baseConfig()
	wide.Width = 8
	wide.RUU, wide.LSQ = 256, 128
	wide.FU = FUConfig{IntALU: 8, IntMult: 4, MemPort: 4, FPALU: 8, FPMult: 4}
	rn, err := e.Simulate(narrow)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := e.Simulate(wide)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Cycles >= rn.Cycles {
		t.Fatalf("8-wide (%v) not faster than 4-wide (%v) on high-ILP applu", rw.Cycles, rn.Cycles)
	}
}

func TestIssueWrongCostsCycles(t *testing.T) {
	tr := genTrace(t, "gcc", 20000)
	e, _ := NewEvaluator(tr)
	off := baseConfig()
	on := baseConfig()
	on.IssueWrong = true
	ro, err := e.Simulate(off)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := e.Simulate(on)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Cycles <= ro.Cycles {
		t.Fatalf("wrong-path issue should cost cycles: %v vs %v", rw.Cycles, ro.Cycles)
	}
}

func TestEvaluatorMemoizationConsistent(t *testing.T) {
	tr := genTrace(t, "mesa", 20000)
	e, _ := NewEvaluator(tr)
	cfg := baseConfig()
	r1, err := e.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Fatal("memoized resimulation differs")
	}
	// Fresh evaluator must agree too (substrate passes are deterministic).
	e2, _ := NewEvaluator(tr)
	r3, err := e2.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r3.Cycles {
		t.Fatal("fresh evaluator disagrees with memoized one")
	}
}

func TestEvaluatorConcurrentUse(t *testing.T) {
	tr := genTrace(t, "gcc", 10000)
	e, _ := NewEvaluator(tr)
	cfgs := make([]Config, 16)
	for i := range cfgs {
		c := baseConfig()
		if i%2 == 0 {
			c.Mem.L1D.SizeKB = 16
		}
		if i%4 < 2 {
			c.BPred = bpred.TwoLevel
		}
		cfgs[i] = c
	}
	results := make([]float64, len(cfgs))
	done := make(chan error, len(cfgs))
	for i := range cfgs {
		go func(i int) {
			r, err := e.Simulate(cfgs[i])
			if err == nil {
				results[i] = r.Cycles
			}
			done <- err
		}(i)
	}
	for range cfgs {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Cross-check against sequential evaluation.
	e2, _ := NewEvaluator(tr)
	for i := range cfgs {
		r, err := e2.Simulate(cfgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles != results[i] {
			t.Fatalf("config %d: concurrent %v vs sequential %v", i, results[i], r.Cycles)
		}
	}
}

func TestMemBoundVsComputeBoundBreakdown(t *testing.T) {
	e1, _ := NewEvaluator(genTrace(t, "mcf", 30000))
	e2, _ := NewEvaluator(genTrace(t, "applu", 30000))
	rm, err := e1.Simulate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	ra, err := e2.Simulate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	memFracMcf := rm.MemCycles / rm.Cycles
	memFracApplu := ra.MemCycles / ra.Cycles
	if memFracMcf <= memFracApplu {
		t.Fatalf("mcf memory fraction %.2f should exceed applu's %.2f", memFracMcf, memFracApplu)
	}
}

func TestEvaluatorDistinguishesPrefetcherConfigs(t *testing.T) {
	// Regression test for the memoization key: toggling the prefetcher
	// must not hit the same cached substrate pass.
	tr := genTrace(t, "applu", 60000)
	e, err := NewEvaluator(tr)
	if err != nil {
		t.Fatal(err)
	}
	off := baseConfig()
	on := baseConfig()
	on.Mem.NextLinePrefetch = true
	ro, err := e.Simulate(off)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := e.Simulate(on)
	if err != nil {
		t.Fatal(err)
	}
	if rn.Cycles >= ro.Cycles {
		t.Fatalf("prefetcher should speed up streaming applu: %v vs %v", rn.Cycles, ro.Cycles)
	}
	if rn.MemStats.Prefetches == 0 {
		t.Fatal("prefetch stats missing")
	}
}
