package cpu

import (
	"testing"
)

func TestSimulateSliceValidation(t *testing.T) {
	tr := genTrace(t, "mesa", 20000)
	cfg := baseConfig()
	if _, err := SimulateSlice(cfg, tr, -1, 100, 0); err == nil {
		t.Fatal("negative start: want error")
	}
	if _, err := SimulateSlice(cfg, tr, 0, 0, 0); err == nil {
		t.Fatal("zero length: want error")
	}
	if _, err := SimulateSlice(cfg, tr, 19000, 2000, 0); err == nil {
		t.Fatal("window past end: want error")
	}
	if _, err := SimulateSlice(cfg, tr, 0, 100, -1); err == nil {
		t.Fatal("negative warmup: want error")
	}
	bad := cfg
	bad.Width = 0
	if _, err := SimulateSlice(bad, tr, 0, 100, 0); err == nil {
		t.Fatal("invalid config: want error")
	}
}

func TestSimulateSliceWarmupReducesCPI(t *testing.T) {
	tr := genTrace(t, "mesa", 60000)
	cfg := baseConfig()
	cold, err := SimulateSlice(cfg, tr, 30000, 5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := SimulateSlice(cfg, tr, 30000, 5000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cycles >= cold.Cycles {
		t.Fatalf("warmup should reduce measured cycles: warm %v vs cold %v", warm.Cycles, cold.Cycles)
	}
}

func TestSimulateSliceFullWindowMatchesSimulate(t *testing.T) {
	tr := genTrace(t, "gcc", 20000)
	cfg := baseConfig()
	full, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	slice, err := SimulateSlice(cfg, tr, 0, tr.Len(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if diff := full.Cycles - slice.Cycles; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("whole-trace slice (%v) should equal Simulate (%v)", slice.Cycles, full.Cycles)
	}
	if full.BranchMisses != slice.BranchMisses {
		t.Fatalf("branch misses differ: %d vs %d", full.BranchMisses, slice.BranchMisses)
	}
}

func TestSimulateSliceStatsWindowOnly(t *testing.T) {
	tr := genTrace(t, "mesa", 40000)
	cfg := baseConfig()
	res, err := SimulateSlice(cfg, tr, 20000, 4000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 4000 {
		t.Fatalf("instructions = %d", res.Instructions)
	}
	// The window performs exactly 4000 instruction fetches.
	if res.MemStats.L1IAccesses != 4000 {
		t.Fatalf("L1I accesses = %d, want 4000 (warmup excluded)", res.MemStats.L1IAccesses)
	}
}
