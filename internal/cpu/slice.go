package cpu

import (
	"errors"
	"fmt"
	"math"

	"perfpred/internal/bpred"
	"perfpred/internal/mem"
	"perfpred/internal/trace"
)

// SimulateSlice simulates the instruction window [start, start+n) of tr
// under cfg, after warming the caches, TLBs and branch predictor on up to
// warmup preceding instructions (statistics from the warmup region are
// discarded). This is the execution mode SimPoint-style sampling needs:
// simulation points are short, so cold-start state would otherwise
// dominate their measured CPI.
func SimulateSlice(cfg Config, tr *trace.Trace, start, n, warmup int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr == nil || tr.Len() == 0 {
		return nil, errors.New("cpu: empty trace")
	}
	if start < 0 || n <= 0 || start+n > tr.Len() {
		return nil, fmt.Errorf("cpu: window [%d, %d) out of range [0, %d)", start, start+n, tr.Len())
	}
	if warmup < 0 {
		return nil, errors.New("cpu: negative warmup")
	}

	h, err := mem.NewHierarchy(cfg.Mem)
	if err != nil {
		return nil, err
	}
	pred, err := bpred.New(cfg.BPred, cfg.BPredEntries)
	if err != nil {
		return nil, err
	}

	wStart := start - warmup
	if wStart < 0 {
		wStart = 0
	}
	// Warmup pass: populate state, discard measurements.
	for i := wStart; i < start; i++ {
		ins := &tr.Instrs[i]
		h.AccessInst(ins.PC)
		switch ins.Class {
		case trace.Load, trace.Store:
			h.AccessData(ins.Addr)
		case trace.Branch:
			pred.Observe(ins.PC, ins.Taken)
		}
	}
	warm := h.Stats()

	// Measured window: accumulate the same metrics the Evaluator collects.
	l1iHit := cfg.Mem.L1I.LatencyCycles
	l1dHit := cfg.Mem.L1D.LatencyCycles
	mm := &memMetrics{}
	bm := &branchMetrics{}
	tm := traceMetrics{n: n}
	classCounts := make(map[trace.Class]int)
	depSum, depCount := 0.0, 0
	for i := start; i < start+n; i++ {
		ins := &tr.Instrs[i]
		classCounts[ins.Class]++
		if ins.Dep > 0 {
			depSum += float64(ins.Dep)
			depCount++
		}
		tlb, cache, _ := h.AccessInstParts(ins.PC)
		mm.tlbCycles += float64(tlb)
		mm.instCacheExtra += float64(cache - l1iHit)
		switch ins.Class {
		case trace.Load:
			tlb, cache, toMem := h.AccessDataParts(ins.Addr)
			mm.tlbCycles += float64(tlb)
			if toMem {
				mm.loadMemExtra += float64(cache - l1dHit)
			} else {
				mm.loadChipExtra += float64(cache - l1dHit)
			}
		case trace.Store:
			tlb, cache, toMem := h.AccessDataParts(ins.Addr)
			mm.tlbCycles += float64(tlb)
			if toMem {
				mm.storeMemExtra += float64(cache - l1dHit)
			} else {
				mm.storeChipExtra += float64(cache - l1dHit)
			}
		case trace.Branch:
			bm.branches++
			if pred.Observe(ins.PC, ins.Taken) {
				bm.mispredicts++
			}
		}
	}
	// Window statistics exclude the warmup contribution.
	total := h.Stats()
	mm.stats = subtractStats(total, warm)

	tm.mix = make(map[trace.Class]float64, len(classCounts))
	for c, cnt := range classCounts {
		tm.mix[c] = float64(cnt) / float64(n)
	}
	if depCount > 0 {
		tm.depMean = depSum / float64(depCount)
	} else {
		tm.depMean = math.Inf(1)
	}
	tm.branches = bm.branches

	return combine(cfg, &tm, tr.Profile(), mm, bm), nil
}

// subtractStats returns after − before, counter-wise.
func subtractStats(after, before mem.AccessStats) mem.AccessStats {
	return mem.AccessStats{
		L1IAccesses: after.L1IAccesses - before.L1IAccesses,
		L1IMisses:   after.L1IMisses - before.L1IMisses,
		L1DAccesses: after.L1DAccesses - before.L1DAccesses,
		L1DMisses:   after.L1DMisses - before.L1DMisses,
		L2Accesses:  after.L2Accesses - before.L2Accesses,
		L2Misses:    after.L2Misses - before.L2Misses,
		L3Accesses:  after.L3Accesses - before.L3Accesses,
		L3Misses:    after.L3Misses - before.L3Misses,
		ITLBMisses:  after.ITLBMisses - before.ITLBMisses,
		DTLBMisses:  after.DTLBMisses - before.DTLBMisses,
		MemAccesses: after.MemAccesses - before.MemAccesses,
	}
}
