package cpu

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"perfpred/internal/bpred"
	"perfpred/internal/mem"
	"perfpred/internal/trace"
)

// Result reports one simulated configuration.
type Result struct {
	// Instructions is the dynamic instruction count simulated.
	Instructions int
	// Cycles is the modeled execution time.
	Cycles float64
	// IPC is Instructions/Cycles.
	IPC float64

	// Component breakdown (cycles).
	BaseCycles   float64 // dispatch/issue-limited work
	BranchCycles float64 // misprediction recovery
	FetchCycles  float64 // instruction-cache misses
	MemCycles    float64 // data-cache misses (MLP-adjusted)
	TLBCycles    float64 // page walks

	// Event counts.
	BranchMisses uint64
	Branches     uint64
	MemStats     mem.AccessStats
}

// traceMetrics caches configuration-independent trace statistics.
type traceMetrics struct {
	n        int
	mix      map[trace.Class]float64
	depMean  float64
	branches uint64
}

// memMetrics caches the outcome of running the trace through one memory
// hierarchy configuration.
type memMetrics struct {
	stats mem.AccessStats
	// Beyond-hit latency sums (cycles). On-chip (L2/L3-served) latency and
	// memory-trip latency are separated because the pipeline hides them
	// differently, and TLB walks are split out because they serialize.
	instCacheExtra float64 // I-side latency beyond the L1I hit time
	loadChipExtra  float64 // load latency served on-chip beyond the L1D hit
	loadMemExtra   float64 // load latency of accesses that reached memory
	storeChipExtra float64 // store latency served on-chip beyond the L1D hit
	storeMemExtra  float64 // store latency of accesses that reached memory
	tlbCycles      float64 // all page-walk cycles
}

// branchMetrics caches one predictor's behaviour on the trace.
type branchMetrics struct {
	mispredicts uint64
	branches    uint64
}

// Evaluator simulates many configurations against one trace, memoizing the
// expensive substrate passes (memory hierarchy, branch predictor) that are
// shared between configurations. It is safe for concurrent use.
type Evaluator struct {
	tr *trace.Trace
	tm traceMetrics

	mu    sync.Mutex
	mems  map[string]*memMetrics
	preds map[string]*branchMetrics
}

// NewEvaluator prepares an evaluator for the trace.
func NewEvaluator(tr *trace.Trace) (*Evaluator, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, errors.New("cpu: empty trace")
	}
	e := &Evaluator{
		tr:    tr,
		mems:  map[string]*memMetrics{},
		preds: map[string]*branchMetrics{},
	}
	e.tm = traceMetrics{
		n:       tr.Len(),
		mix:     tr.Mix(),
		depMean: tr.MeanDepDistance(),
	}
	for i := range tr.Instrs {
		if tr.Instrs[i].Class == trace.Branch {
			e.tm.branches++
		}
	}
	return e, nil
}

// memKey identifies a memory hierarchy configuration.
func memKey(c mem.HierarchyConfig) string {
	return fmt.Sprintf("%dx%dx%d|%dx%dx%d|%dx%dx%d|%dx%dx%d|%d/%d|%d|pf=%v",
		c.L1I.SizeKB, c.L1I.LineBytes, c.L1I.Assoc,
		c.L1D.SizeKB, c.L1D.LineBytes, c.L1D.Assoc,
		c.L2.SizeKB, c.L2.LineBytes, c.L2.Assoc,
		c.L3.SizeKB, c.L3.LineBytes, c.L3.Assoc,
		c.ITLB.CoverageKB, c.DTLB.CoverageKB, c.MemLatencyCyc,
		c.NextLinePrefetch)
}

func predKey(kind bpred.Kind, entries int) string {
	return fmt.Sprintf("%s/%d", kind, entries)
}

// memPass runs (or reuses) the hierarchy simulation for a config.
func (e *Evaluator) memPass(cfg mem.HierarchyConfig) (*memMetrics, error) {
	key := memKey(cfg)
	e.mu.Lock()
	if m, ok := e.mems[key]; ok {
		e.mu.Unlock()
		return m, nil
	}
	e.mu.Unlock()

	h, err := mem.NewHierarchy(cfg)
	if err != nil {
		return nil, err
	}
	m := &memMetrics{}
	l1iHit := cfg.L1I.LatencyCycles
	l1dHit := cfg.L1D.LatencyCycles
	for i := range e.tr.Instrs {
		ins := &e.tr.Instrs[i]
		tlb, cache, _ := h.AccessInstParts(ins.PC)
		m.tlbCycles += float64(tlb)
		m.instCacheExtra += float64(cache - l1iHit)
		switch ins.Class {
		case trace.Load:
			tlb, cache, toMem := h.AccessDataParts(ins.Addr)
			m.tlbCycles += float64(tlb)
			if toMem {
				m.loadMemExtra += float64(cache - l1dHit)
			} else {
				m.loadChipExtra += float64(cache - l1dHit)
			}
		case trace.Store:
			tlb, cache, toMem := h.AccessDataParts(ins.Addr)
			m.tlbCycles += float64(tlb)
			if toMem {
				m.storeMemExtra += float64(cache - l1dHit)
			} else {
				m.storeChipExtra += float64(cache - l1dHit)
			}
		}
	}
	m.stats = h.Stats()

	e.mu.Lock()
	e.mems[key] = m
	e.mu.Unlock()
	return m, nil
}

// predPass runs (or reuses) one predictor over the trace's branch stream.
func (e *Evaluator) predPass(kind bpred.Kind, entries int) (*branchMetrics, error) {
	key := predKey(kind, entries)
	e.mu.Lock()
	if b, ok := e.preds[key]; ok {
		e.mu.Unlock()
		return b, nil
	}
	e.mu.Unlock()

	p, err := bpred.New(kind, entries)
	if err != nil {
		return nil, err
	}
	b := &branchMetrics{}
	for i := range e.tr.Instrs {
		ins := &e.tr.Instrs[i]
		if ins.Class != trace.Branch {
			continue
		}
		b.branches++
		if p.Observe(ins.PC, ins.Taken) {
			b.mispredicts++
		}
	}
	e.mu.Lock()
	e.preds[key] = b
	e.mu.Unlock()
	return b, nil
}

// Simulate evaluates one configuration.
func (e *Evaluator) Simulate(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mm, err := e.memPass(cfg.Mem)
	if err != nil {
		return nil, err
	}
	bm, err := e.predPass(cfg.BPred, cfg.BPredEntries)
	if err != nil {
		return nil, err
	}
	res := combine(cfg, &e.tm, e.tr.Profile(), mm, bm)
	return res, nil
}

// Simulate runs one configuration against one trace without caching.
func Simulate(cfg Config, tr *trace.Trace) (*Result, error) {
	e, err := NewEvaluator(tr)
	if err != nil {
		return nil, err
	}
	return e.Simulate(cfg)
}

// combine merges substrate metrics with the core configuration through an
// interval-style pipeline model.
func combine(cfg Config, tm *traceMetrics, prof *trace.Profile, mm *memMetrics, bm *branchMetrics) *Result {
	n := float64(tm.n)

	// --- Dispatch-limited base time -----------------------------------
	// Window-limited ILP: the trace's mean dependence distance bounds the
	// parallelism; the RUU size determines how much of it is exposed.
	ilpInf := tm.depMean
	if math.IsInf(ilpInf, 1) {
		ilpInf = float64(cfg.Width)
	}
	windowILP := ilpInf * (1 - math.Exp(-float64(cfg.RUU)/64))
	// Functional-unit throughput limit per class.
	fuLimit := math.Inf(1)
	limit := func(units int, frac float64) {
		if frac > 0 {
			l := float64(units) / frac
			if l < fuLimit {
				fuLimit = l
			}
		}
	}
	limit(cfg.FU.IntALU, tm.mix[trace.IntALU])
	limit(cfg.FU.IntMult, tm.mix[trace.IntMult])
	limit(cfg.FU.FPALU, tm.mix[trace.FPALU])
	limit(cfg.FU.FPMult, tm.mix[trace.FPMult])
	limit(cfg.FU.MemPort, tm.mix[trace.Load]+tm.mix[trace.Store])
	// The LSQ also throttles the sustainable memory-operation rate.
	memFrac := tm.mix[trace.Load] + tm.mix[trace.Store]
	if memFrac > 0 {
		lsqLimit := (float64(cfg.LSQ) / 16) / memFrac
		if lsqLimit < fuLimit {
			fuLimit = lsqLimit
		}
	}
	effIPC := math.Min(float64(cfg.Width), math.Min(windowILP, fuLimit))
	if effIPC < 0.1 {
		effIPC = 0.1
	}
	base := n / effIPC

	// --- Branch misprediction recovery --------------------------------
	penalty := float64(cfg.FrontendDepth) + float64(cfg.Width)/2
	if cfg.IssueWrong {
		// Wrong-path issue consumes fetch and execution bandwidth while
		// the misprediction resolves.
		penalty *= 1.08
	}
	branch := float64(bm.mispredicts) * penalty

	// --- Front-end stalls on instruction misses -----------------------
	// I-side misses stall fetch with little overlap.
	fetch := mm.instCacheExtra * 0.8

	// --- Data-side stalls ----------------------------------------------
	// On-chip (L2/L3-served) latencies are short enough for the
	// out-of-order window to overlap substantially; the overlap grows
	// with the window size.
	winOverlap := 2 + float64(cfg.RUU)/128
	// Memory trips are too long to hide; they overlap only with each
	// other, limited by the hardware MLP resources (window and LSQ) and
	// the workload's inherent memory-level parallelism (pointer chasing
	// caps it near 1).
	mlpHW := 1 + math.Min(float64(cfg.RUU)/2, float64(cfg.LSQ))/128
	mlp := math.Min(mlpHW, prof.MLPCap)
	memStall := mm.loadChipExtra/winOverlap + mm.loadMemExtra/mlp
	// Stores retire through the store buffer; only a fraction stalls.
	memStall += 0.3 * (mm.storeChipExtra/winOverlap + mm.storeMemExtra/mlp)

	// --- TLB walks ------------------------------------------------------
	tlb := mm.tlbCycles * 0.9

	cycles := base + branch + fetch + memStall + tlb
	return &Result{
		Instructions: tm.n,
		Cycles:       cycles,
		IPC:          n / cycles,
		BaseCycles:   base,
		BranchCycles: branch,
		FetchCycles:  fetch,
		MemCycles:    memStall,
		TLBCycles:    tlb,
		BranchMisses: bm.mispredicts,
		Branches:     bm.branches,
		MemStats:     mm.stats,
	}
}
