// Package cpu implements the cycle-approximate out-of-order processor
// model standing in for SimpleScalar's sim-outorder. A Config carries the
// Table 1 microarchitecture parameters; Simulate runs a synthetic trace
// through the memory hierarchy and branch predictors and combines the
// measured event counts with an interval-style pipeline model into a cycle
// count.
//
// The model is decoupled the way trace-driven simulators are: cache/TLB
// behaviour depends only on the memory configuration and branch behaviour
// only on the predictor, so an Evaluator memoizes those expensive substrate
// simulations and full design-space sweeps reuse them across the thousands
// of core configurations that share them.
package cpu

import (
	"errors"
	"fmt"

	"perfpred/internal/bpred"
	"perfpred/internal/mem"
)

// FUConfig gives the functional-unit counts of Table 1's last row
// ("4/2/2/4/2" means 4 integer ALUs, 2 integer multipliers, 2 memory
// ports, 4 FP ALUs, 2 FP multipliers).
type FUConfig struct {
	IntALU  int
	IntMult int
	MemPort int
	FPALU   int
	FPMult  int
}

// String renders the Table 1 notation.
func (f FUConfig) String() string {
	return fmt.Sprintf("%d/%d/%d/%d/%d", f.IntALU, f.IntMult, f.MemPort, f.FPALU, f.FPMult)
}

// Validate checks all unit counts are positive.
func (f FUConfig) Validate() error {
	if f.IntALU <= 0 || f.IntMult <= 0 || f.MemPort <= 0 || f.FPALU <= 0 || f.FPMult <= 0 {
		return fmt.Errorf("cpu: functional unit counts %s must all be positive", f)
	}
	return nil
}

// Config is one point of the microprocessor design space (Table 1).
type Config struct {
	// Mem is the cache/TLB hierarchy.
	Mem mem.HierarchyConfig
	// BPred selects the branch predictor; BPredEntries sizes its tables.
	BPred        bpred.Kind
	BPredEntries int
	// Width is the decode/issue/commit width.
	Width int
	// IssueWrong enables wrong-path issue (speculative instructions
	// execute and consume resources until the misprediction resolves).
	IssueWrong bool
	// RUU is the register update unit (instruction window) size; LSQ the
	// load/store queue size.
	RUU, LSQ int
	// FU gives the functional unit counts.
	FU FUConfig
	// FrontendDepth is the number of front-end pipeline stages drained on
	// a branch misprediction.
	FrontendDepth int
}

// Validate checks the whole configuration.
func (c Config) Validate() error {
	if err := c.Mem.Validate(); err != nil {
		return fmt.Errorf("cpu: %w", err)
	}
	if c.BPred != bpred.Perfect {
		if c.BPredEntries <= 0 || c.BPredEntries&(c.BPredEntries-1) != 0 {
			return errors.New("cpu: predictor entries must be a positive power of two")
		}
	}
	if c.Width <= 0 {
		return errors.New("cpu: width must be positive")
	}
	if c.RUU <= 0 || c.LSQ <= 0 {
		return errors.New("cpu: RUU and LSQ sizes must be positive")
	}
	if c.LSQ > c.RUU {
		return errors.New("cpu: LSQ cannot exceed the RUU size")
	}
	if err := c.FU.Validate(); err != nil {
		return err
	}
	if c.FrontendDepth <= 0 {
		return errors.New("cpu: frontend depth must be positive")
	}
	return nil
}

// DefaultLatencies fills in the fixed per-level latencies the paper's
// design space does not vary: 1-cycle L1s, 12-cycle L2, 40-cycle L3,
// 200-cycle memory, 30-cycle TLB walks, 8-deep front end.
func DefaultLatencies(c *Config) {
	c.Mem.L1I.LatencyCycles = 1
	c.Mem.L1D.LatencyCycles = 1
	c.Mem.L2.LatencyCycles = 12
	if c.Mem.L3.Enabled() {
		c.Mem.L3.LatencyCycles = 40
	}
	if c.Mem.MemLatencyCyc == 0 {
		c.Mem.MemLatencyCyc = 200
	}
	if c.Mem.ITLB.MissPenaltyCycles == 0 {
		c.Mem.ITLB.MissPenaltyCycles = 30
	}
	if c.Mem.DTLB.MissPenaltyCycles == 0 {
		c.Mem.DTLB.MissPenaltyCycles = 30
	}
	if c.Mem.ITLB.Assoc == 0 {
		c.Mem.ITLB.Assoc = 4
	}
	if c.Mem.DTLB.Assoc == 0 {
		c.Mem.DTLB.Assoc = 4
	}
	if c.BPredEntries == 0 {
		c.BPredEntries = 2048
	}
	if c.FrontendDepth == 0 {
		c.FrontendDepth = 8
	}
}
