package simpoint

import (
	"math"
	"testing"

	"perfpred/internal/cpu"
	"perfpred/internal/trace"
)

func genTrace(t *testing.T, name string, n int) *trace.Trace {
	t.Helper()
	p, err := trace.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(p, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestExtractBBVs(t *testing.T) {
	tr := genTrace(t, "gcc", 50000)
	bbvs, ivs, err := ExtractBBVs(tr, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(bbvs) != 10 || len(ivs) != 10 {
		t.Fatalf("got %d intervals", len(bbvs))
	}
	for k, v := range bbvs {
		sum := 0.0
		for _, x := range v {
			if x < 0 {
				t.Fatal("negative BBV entry")
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("interval %d BBV sums to %v", k, sum)
		}
		if ivs[k].Start != k*5000 || ivs[k].Len != 5000 {
			t.Fatalf("interval %d bounds wrong: %+v", k, ivs[k])
		}
	}
}

func TestExtractBBVsErrors(t *testing.T) {
	tr := genTrace(t, "gcc", 1000)
	if _, _, err := ExtractBBVs(nil, 100); err == nil {
		t.Fatal("nil trace: want error")
	}
	if _, _, err := ExtractBBVs(tr, 0); err == nil {
		t.Fatal("zero interval: want error")
	}
	if _, _, err := ExtractBBVs(tr, 10000); err == nil {
		t.Fatal("interval longer than trace: want error")
	}
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	// Two well-separated groups of vectors.
	var vectors []BBV
	for i := 0; i < 10; i++ {
		vectors = append(vectors, BBV{1, 0, 0.001 * float64(i)})
	}
	for i := 0; i < 10; i++ {
		vectors = append(vectors, BBV{0, 1, 0.001 * float64(i)})
	}
	res, err := kmeans(vectors, 2, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	// All of group A together, all of group B together.
	for i := 1; i < 10; i++ {
		if res.assign[i] != res.assign[0] {
			t.Fatal("group A split")
		}
		if res.assign[10+i] != res.assign[10] {
			t.Fatal("group B split")
		}
	}
	if res.assign[0] == res.assign[10] {
		t.Fatal("groups merged")
	}
	if res.sse > 0.001 {
		t.Fatalf("sse = %v", res.sse)
	}
}

func TestKMeansErrors(t *testing.T) {
	vectors := []BBV{{1, 0}, {0, 1}}
	if _, err := kmeans(vectors, 0, 1, 10); err == nil {
		t.Fatal("k=0: want error")
	}
	if _, err := kmeans(vectors, 3, 1, 10); err == nil {
		t.Fatal("k>n: want error")
	}
}

func TestSelectCoversPhases(t *testing.T) {
	// gcc has 4 phases; SimPoint should find multiple clusters and the
	// weights should sum to 1.
	tr := genTrace(t, "gcc", 80000)
	points, err := Select(tr, Options{IntervalLen: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 2 {
		t.Fatalf("only %d points for a phased trace", len(points))
	}
	wsum := 0.0
	for _, p := range points {
		if p.Weight <= 0 || p.Weight > 1 {
			t.Fatalf("bad weight %v", p.Weight)
		}
		if p.Start%4000 != 0 || p.Len != 4000 {
			t.Fatalf("point not interval-aligned: %+v", p)
		}
		wsum += p.Weight
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", wsum)
	}
	// Ordered by start.
	for i := 1; i < len(points); i++ {
		if points[i].Start < points[i-1].Start {
			t.Fatal("points not ordered")
		}
	}
}

func TestSelectDeterministic(t *testing.T) {
	tr := genTrace(t, "mesa", 60000)
	a, err := Select(tr, Options{IntervalLen: 5000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Select(tr, Options{IntervalLen: 5000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic point count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic points")
		}
	}
}

func TestWeightedCycles(t *testing.T) {
	points := []Point{
		{Interval: Interval{Start: 0, Len: 100}, Weight: 0.75},
		{Interval: Interval{Start: 100, Len: 100}, Weight: 0.25},
	}
	// CPI 2 on the common phase, CPI 4 on the rare one → blended CPI 2.5.
	est, err := WeightedCycles(points, []float64{200, 400}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-2500) > 1e-9 {
		t.Fatalf("estimate = %v, want 2500", est)
	}
}

func TestWeightedCyclesErrors(t *testing.T) {
	if _, err := WeightedCycles(nil, nil, 100); err == nil {
		t.Fatal("empty: want error")
	}
	pts := []Point{{Interval: Interval{Len: 10}, Weight: 1}}
	if _, err := WeightedCycles(pts, []float64{1, 2}, 100); err == nil {
		t.Fatal("mismatch: want error")
	}
	bad := []Point{{Interval: Interval{Len: 0}, Weight: 1}}
	if _, err := WeightedCycles(bad, []float64{1}, 100); err == nil {
		t.Fatal("zero-length point: want error")
	}
}

// TestSimPointEstimateTracksFullSimulation is the methodology check: the
// weighted simulation-point estimate should approximate simulating the
// whole trace.
func TestSimPointEstimateTracksFullSimulation(t *testing.T) {
	tr := genTrace(t, "mesa", 120000)
	points, err := Select(tr, Options{IntervalLen: 6000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultCfg()
	full, err := cpu.Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate each point with warmup, the way SimPoint sampling runs.
	cycles := make([]float64, len(points))
	for i, p := range points {
		res, err := cpu.SimulateSlice(cfg, tr, p.Start, p.Len, 2*p.Len)
		if err != nil {
			t.Fatal(err)
		}
		cycles[i] = res.Cycles
	}
	est, err := WeightedCycles(points, cycles, tr.Len())
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(est-full.Cycles) / full.Cycles
	if relErr > 0.25 {
		t.Fatalf("SimPoint estimate off by %.1f%% (est %v, full %v)", 100*relErr, est, full.Cycles)
	}
}
