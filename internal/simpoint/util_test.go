package simpoint

import (
	"perfpred/internal/bpred"
	"perfpred/internal/cpu"
	"perfpred/internal/mem"
)

// defaultCfg returns a mid-range core configuration for methodology tests.
func defaultCfg() cpu.Config {
	cfg := cpu.Config{
		Mem: mem.HierarchyConfig{
			L1I:  mem.CacheConfig{SizeKB: 32, LineBytes: 64, Assoc: 4},
			L1D:  mem.CacheConfig{SizeKB: 32, LineBytes: 64, Assoc: 4},
			L2:   mem.CacheConfig{SizeKB: 1024, LineBytes: 128, Assoc: 8},
			ITLB: mem.TLBConfig{CoverageKB: 256},
			DTLB: mem.TLBConfig{CoverageKB: 512},
		},
		BPred: bpred.Combination,
		Width: 4,
		RUU:   128,
		LSQ:   64,
		FU:    cpu.FUConfig{IntALU: 4, IntMult: 2, MemPort: 2, FPALU: 4, FPMult: 2},
	}
	cpu.DefaultLatencies(&cfg)
	return cfg
}
