// Package simpoint re-implements the SimPoint methodology the paper uses
// to cut simulation time (§4.1): a program trace is divided into fixed
// length intervals, each interval is summarized by its Basic Block Vector
// (BBV — the distribution of executed basic blocks), the normalized BBVs
// are clustered with k-means (k picked by a BIC-style score), and one
// representative interval per cluster is selected, weighted by cluster
// size. Simulating only the representatives reproduces whole-trace
// behaviour at a fraction of the cost.
package simpoint

import (
	"errors"
	"fmt"
	"math"

	"perfpred/internal/stat"
	"perfpred/internal/trace"
)

// BBV is the normalized basic-block execution frequency vector of one
// interval.
type BBV []float64

// Interval identifies a contiguous slice of a trace.
type Interval struct {
	// Start is the index of the interval's first instruction.
	Start int
	// Len is the interval length in instructions.
	Len int
}

// Point is one selected simulation point.
type Point struct {
	Interval
	// Weight is the fraction of all intervals the point represents.
	Weight float64
	// Cluster is the index of the k-means cluster it represents.
	Cluster int
}

// ExtractBBVs slices the trace into intervals of intervalLen instructions
// (the last partial interval is dropped, as SimPoint does) and returns one
// L1-normalized BBV per interval along with the interval bounds.
func ExtractBBVs(tr *trace.Trace, intervalLen int) ([]BBV, []Interval, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, nil, errors.New("simpoint: empty trace")
	}
	if intervalLen <= 0 {
		return nil, nil, errors.New("simpoint: interval length must be positive")
	}
	n := tr.Len() / intervalLen
	if n == 0 {
		return nil, nil, fmt.Errorf("simpoint: trace (%d instrs) shorter than one interval (%d)", tr.Len(), intervalLen)
	}
	// Determine the basic-block ID space.
	maxBB := int32(0)
	for i := range tr.Instrs {
		if tr.Instrs[i].BB > maxBB {
			maxBB = tr.Instrs[i].BB
		}
	}
	dim := int(maxBB) + 1
	bbvs := make([]BBV, n)
	ivs := make([]Interval, n)
	for k := 0; k < n; k++ {
		v := make(BBV, dim)
		start := k * intervalLen
		for i := start; i < start+intervalLen; i++ {
			v[tr.Instrs[i].BB]++
		}
		for j := range v {
			v[j] /= float64(intervalLen)
		}
		bbvs[k] = v
		ivs[k] = Interval{Start: start, Len: intervalLen}
	}
	return bbvs, ivs, nil
}

// kmeansResult holds one clustering outcome.
type kmeansResult struct {
	assign    []int
	centroids []BBV
	sse       float64
}

// kmeans runs Lloyd's algorithm with deterministic seeding (k-means++-style
// probabilistic seeding driven by the supplied seed).
func kmeans(vectors []BBV, k int, seed int64, maxIter int) (*kmeansResult, error) {
	n := len(vectors)
	if k <= 0 || k > n {
		return nil, fmt.Errorf("simpoint: k=%d invalid for %d vectors", k, n)
	}
	dim := len(vectors[0])
	r := stat.NewRand(seed)

	// k-means++ seeding.
	centroids := make([]BBV, 0, k)
	first := r.Intn(n)
	centroids = append(centroids, append(BBV(nil), vectors[first]...))
	dist := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		for i, v := range vectors {
			d := math.Inf(1)
			for _, c := range centroids {
				if dd := sqDist(v, c); dd < d {
					d = dd
				}
			}
			dist[i] = d
			total += d
		}
		if total == 0 {
			// All points coincide with centroids; duplicate one.
			centroids = append(centroids, append(BBV(nil), vectors[r.Intn(n)]...))
			continue
		}
		target := r.Float64() * total
		acc := 0.0
		pick := n - 1
		for i, d := range dist {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, append(BBV(nil), vectors[pick]...))
	}

	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, v := range vectors {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := sqDist(v, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, k)
		for c := range centroids {
			for j := range centroids[c] {
				centroids[c][j] = 0
			}
		}
		for i, v := range vectors {
			c := assign[i]
			counts[c]++
			for j := range v {
				centroids[c][j] += v[j]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the farthest point.
				far, farD := 0, -1.0
				for i, v := range vectors {
					if d := sqDist(v, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[c], vectors[far])
				continue
			}
			for j := 0; j < dim; j++ {
				centroids[c][j] /= float64(counts[c])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	sse := 0.0
	for i, v := range vectors {
		sse += sqDist(v, centroids[assign[i]])
	}
	return &kmeansResult{assign: assign, centroids: centroids, sse: sse}, nil
}

func sqDist(a, b BBV) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// bicScore computes a BIC-style model score for a clustering (higher is
// better): log-likelihood of a spherical Gaussian mixture over the
// dim-dimensional BBVs minus a complexity penalty, the criterion SimPoint
// uses to pick k.
func bicScore(res *kmeansResult, n, dim int) float64 {
	k := len(res.centroids)
	// Per-dimension variance of the spherical components.
	variance := res.sse / math.Max(1, float64(dim)*float64(n-k))
	if variance < 1e-8 {
		variance = 1e-8 // floor: a perfect split must not dominate the score
	}
	ll := -0.5 * float64(n) * float64(dim) * (math.Log(2*math.Pi*variance) + 1)
	params := float64(k)*(float64(dim)+1) + 1
	return ll - 0.5*params*math.Log(float64(n))
}

// Options configures Select.
type Options struct {
	// IntervalLen is the interval size in instructions (e.g. the paper's
	// 100 M; scaled-down traces use proportionally smaller intervals).
	IntervalLen int
	// MaxK bounds the number of clusters tried (SimPoint's maxK). Zero
	// means min(10, #intervals).
	MaxK int
	// Seed drives clustering initialization.
	Seed int64
}

// Select runs the full SimPoint pipeline on a trace and returns one
// simulation point per chosen cluster, ordered by interval start.
func Select(tr *trace.Trace, opts Options) ([]Point, error) {
	bbvs, ivs, err := ExtractBBVs(tr, opts.IntervalLen)
	if err != nil {
		return nil, err
	}
	n := len(bbvs)
	maxK := opts.MaxK
	if maxK <= 0 {
		maxK = 10
	}
	// Clustering more than half the intervals degenerates toward one
	// cluster per interval (SSE → 0 dominates any penalty).
	if maxK > n/2 {
		maxK = n / 2
	}
	if maxK < 1 {
		maxK = 1
	}
	dim := len(bbvs[0])

	// Score every k, then apply SimPoint's selection rule: the smallest k
	// whose BIC reaches 90% of the score range. (Raw BIC over-segments
	// high-dimensional BBVs; the relative threshold is what the SimPoint
	// tool itself uses.)
	results := make([]*kmeansResult, maxK+1)
	scores := make([]float64, maxK+1)
	minScore, maxScore := math.Inf(1), math.Inf(-1)
	for k := 1; k <= maxK; k++ {
		res, err := kmeans(bbvs, k, stat.DeriveSeed(opts.Seed, k), 100)
		if err != nil {
			return nil, err
		}
		results[k] = res
		scores[k] = bicScore(res, n, dim)
		if scores[k] < minScore {
			minScore = scores[k]
		}
		if scores[k] > maxScore {
			maxScore = scores[k]
		}
	}
	threshold := minScore + 0.9*(maxScore-minScore)
	var best *kmeansResult
	for k := 1; k <= maxK; k++ {
		if scores[k] >= threshold {
			best = results[k]
			break
		}
	}
	if best == nil {
		return nil, errors.New("simpoint: clustering produced no result")
	}

	// Pick the interval closest to each centroid; weight by cluster size.
	k := len(best.centroids)
	counts := make([]int, k)
	for _, c := range best.assign {
		counts[c]++
	}
	points := make([]Point, 0, k)
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		bestI, bestD := -1, math.Inf(1)
		for i := range bbvs {
			if best.assign[i] != c {
				continue
			}
			if d := sqDist(bbvs[i], best.centroids[c]); d < bestD {
				bestI, bestD = i, d
			}
		}
		points = append(points, Point{
			Interval: ivs[bestI],
			Weight:   float64(counts[c]) / float64(n),
			Cluster:  c,
		})
	}
	// Order by position in the trace for reproducible output.
	for i := 1; i < len(points); i++ {
		for j := i; j > 0 && points[j].Start < points[j-1].Start; j-- {
			points[j], points[j-1] = points[j-1], points[j]
		}
	}
	return points, nil
}

// WeightedCycles combines per-point simulation results into a whole-trace
// estimate: Σ weight_i × cycles_i scaled to the full trace length.
func WeightedCycles(points []Point, cycles []float64, traceLen int) (float64, error) {
	if len(points) != len(cycles) {
		return 0, errors.New("simpoint: points/cycles length mismatch")
	}
	if len(points) == 0 {
		return 0, errors.New("simpoint: no points")
	}
	est := 0.0
	wsum := 0.0
	for i, p := range points {
		if p.Len <= 0 {
			return 0, errors.New("simpoint: zero-length point")
		}
		cpi := cycles[i] / float64(p.Len)
		est += p.Weight * cpi
		wsum += p.Weight
	}
	if wsum <= 0 {
		return 0, errors.New("simpoint: zero total weight")
	}
	return est / wsum * float64(traceLen), nil
}
