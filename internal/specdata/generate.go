package specdata

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"perfpred/internal/dataset"
	"perfpred/internal/stat"
)

// Record is one synthesized SPEC announcement.
type Record struct {
	// Family is the family name the record belongs to.
	Family string
	// Year the result was announced.
	Year int
	// Row holds the 32 system parameters, matching Schema().
	Row []dataset.Value
	// Rate is the SPECint_rate-style rating (the prediction target).
	Rate float64
	// AppTimes are the per-application runtimes (seconds) whose normalized
	// geometric mean reproduces Rate for single-copy runs.
	AppTimes map[string]float64
}

// Generate synthesizes every announcement of the family across all its
// years, deterministically for a given seed.
func Generate(f *Family, seed int64) ([]Record, error) {
	if f == nil {
		return nil, errors.New("specdata: nil family")
	}
	if len(f.years) == 0 {
		return nil, fmt.Errorf("specdata: family %s has no years", f.Name)
	}
	var out []Record
	for yi, menu := range f.years {
		r := stat.NewSubRand(seed, yi*101+hashName(f.Name))
		for i := 0; i < menu.count; i++ {
			rec, err := synthOne(f, &menu, r)
			if err != nil {
				return nil, err
			}
			out = append(out, rec)
		}
	}
	return out, nil
}

// hashName derives a stable small integer from a family name so different
// families use different random streams under the same seed.
func hashName(s string) int {
	h := 0
	for _, c := range s {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return h % 10007
}

func pick(r *rand.Rand, opts []float64) float64 {
	return opts[r.Intn(len(opts))]
}

func pickStr(r *rand.Rand, opts []string) string {
	return opts[r.Intn(len(opts))]
}

func synthOne(f *Family, menu *yearMenu, r *rand.Rand) (Record, error) {
	speed := pick(r, menu.speedsMHz)
	bus := pick(r, menu.busMHz)
	l2 := pick(r, menu.l2KB)
	l3 := 0.0
	if len(menu.l3KB) > 0 {
		l3 = pick(r, menu.l3KB)
	}
	memMHz := pick(r, menu.memMHz)
	memGB := pick(r, menu.memGB)

	smt := f.SMT && r.Intn(2) == 0
	l2OnChip := true
	if !f.L2OnChipAlways {
		l2OnChip = r.Intn(4) != 0 // most, but not all, configurations
	}
	l2Shared := f.CoresPerChip > 1 && r.Intn(2) == 0
	totalCores := f.Chips * f.CoresPerChip

	// Latent performance model (see Family docs).
	// Every secondary term is linear in its parameter so that a linear
	// model which saw the parameter vary in the training year extrapolates
	// correctly into the next year's envelope — matching how well LR did
	// in the paper's chronological study.
	perf := f.base * math.Pow(speed/1000, f.speedExp)
	perf *= 1 + f.l2Coef*(l2-f.l2RefKB)/f.l2RefKB
	if l3 > 0 {
		perf *= 1 + f.l3Coef*(l3-2048)/2048
	}
	perf *= 1 + f.memFreqCoef*(memMHz/f.memFreqRef-1)
	perf *= 1 + f.memSizeCoef*(memGB-4)/4
	perf *= 1 + f.busCoef*(bus/f.busRef-1)
	if smt {
		perf *= 1.04
	}
	if !l2OnChip {
		perf /= 1 + f.l2OnChipCoef
	}
	scale := math.Pow(float64(totalCores), f.scaleExp)
	if f.scaleSpread > 0 {
		scale *= math.Exp(r.NormFloat64() * f.scaleSpread)
	}
	perf *= scale
	// Unmodeled year-over-year drift (toolchain maturity): the part no
	// model trained on earlier years can know.
	perf *= math.Pow(f.drift, float64(menu.year-2005))
	// Announcement noise.
	perf *= math.Exp(r.NormFloat64() * f.noiseSigma)

	// Per-application runtimes consistent with the rating: the normalized
	// ratios' geometric mean equals the rating.
	apps := IntApps()
	refs := RefTimes()
	delta := make([]float64, len(apps))
	sum := 0.0
	for i := range apps {
		delta[i] = r.NormFloat64() * 0.05
		sum += delta[i]
	}
	times := make(map[string]float64, len(apps))
	for i, app := range apps {
		d := delta[i] - sum/float64(len(apps)) // center so geomean holds
		times[app] = refs[app] / (perf * math.Exp(d))
	}

	hddType := pickStr(r, []string{"SATA", "SCSI", "SAS"})
	extra := pickStr(r, []string{"none", "none", "raid", "remote-mgmt"})

	row := []dataset.Value{
		dataset.Cat(pickStr(r, f.companies)),
		dataset.Cat(pickStr(r, f.sysNames)),
		dataset.Cat(pickStr(r, f.procModels)),
		dataset.Num(bus),
		dataset.Num(speed),
		dataset.FlagVal(true),
		dataset.Num(float64(totalCores)),
		dataset.Num(float64(f.Chips)),
		dataset.Num(float64(f.CoresPerChip)),
		dataset.FlagVal(smt),
		dataset.FlagVal(totalCores > 1),
		dataset.Num(f.L1IKB),
		dataset.Num(f.L1DKB),
		dataset.FlagVal(true),
		dataset.Num(l2),
		dataset.FlagVal(l2OnChip),
		dataset.FlagVal(l2Shared),
		dataset.FlagVal(true),
		dataset.Num(l3),
		dataset.FlagVal(l3 > 0 && r.Intn(2) == 0),
		dataset.FlagVal(false),
		dataset.FlagVal(l3 > 0),
		dataset.FlagVal(l3 > 0),
		dataset.Num(0), // l4_kb: none of these systems shipped an L4
		dataset.Num(0),
		dataset.FlagVal(false),
		dataset.Num(memGB),
		dataset.Num(memMHz),
		dataset.Num(pick(r, []float64{36, 73, 146, 300})),
		dataset.Num(pick(r, []float64{7200, 10000, 15000})),
		dataset.Cat(hddType),
		dataset.Cat(extra),
	}
	return Record{
		Family:   f.Name,
		Year:     menu.year,
		Row:      row,
		Rate:     perf,
		AppTimes: times,
	}, nil
}

// BuildDataset assembles the records announced in the given years into a
// dataset over Schema(), with the SPEC rate as the target. Records are
// ordered deterministically.
func BuildDataset(records []Record, years ...int) (*dataset.Dataset, error) {
	if len(records) == 0 {
		return nil, errors.New("specdata: no records")
	}
	wanted := map[int]bool{}
	for _, y := range years {
		wanted[y] = true
	}
	d := dataset.New(Schema())
	for _, rec := range records {
		if len(years) > 0 && !wanted[rec.Year] {
			continue
		}
		if err := d.Append(rec.Row, rec.Rate); err != nil {
			return nil, err
		}
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("specdata: no records in years %v", years)
	}
	return d, nil
}

// BuildAppDataset assembles records into a dataset whose target is one
// application's execution time in seconds (optionally filtered by year).
// The paper notes individual applications "can also be accurately
// estimated" but omits the results for space; this is the raw material for
// that experiment.
func BuildAppDataset(records []Record, app string, years ...int) (*dataset.Dataset, error) {
	if len(records) == 0 {
		return nil, errors.New("specdata: no records")
	}
	wanted := map[int]bool{}
	for _, y := range years {
		wanted[y] = true
	}
	schema := Schema()
	appSchema, err := dataset.NewSchema(app+"_seconds", schema.Fields...)
	if err != nil {
		return nil, err
	}
	d := dataset.New(appSchema)
	for _, rec := range records {
		if len(years) > 0 && !wanted[rec.Year] {
			continue
		}
		tm, ok := rec.AppTimes[app]
		if !ok {
			return nil, fmt.Errorf("specdata: record has no time for application %q", app)
		}
		if err := d.Append(rec.Row, tm); err != nil {
			return nil, err
		}
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("specdata: no records in years %v", years)
	}
	return d, nil
}

// RatingFromTimes recomputes a SPEC-style rating from per-application
// runtimes: the geometric mean of ref/time ratios.
func RatingFromTimes(times map[string]float64) (float64, error) {
	refs := RefTimes()
	apps := IntApps()
	ratios := make([]float64, 0, len(apps))
	for _, app := range apps {
		tm, ok := times[app]
		if !ok || tm <= 0 {
			return 0, fmt.Errorf("specdata: missing or invalid time for %s", app)
		}
		ratios = append(ratios, refs[app]/tm)
	}
	return stat.GeoMean(ratios)
}

// FamilyStatistics summarizes generated records the way the paper's §4.1
// does: count, range (best/worst rate) and mean-normalized variance.
func FamilyStatistics(records []Record) (count int, rng, variance float64, err error) {
	if len(records) == 0 {
		return 0, 0, 0, errors.New("specdata: no records")
	}
	rates := make([]float64, len(records))
	for i, r := range records {
		rates[i] = r.Rate
	}
	rng, err = stat.Range(rates)
	if err != nil {
		return 0, 0, 0, err
	}
	return len(records), rng, stat.NormalizedVariance(rates), nil
}

// SortByYear orders records by (year, rate) for stable presentation.
func SortByYear(records []Record) {
	sort.Slice(records, func(i, j int) bool {
		if records[i].Year != records[j].Year {
			return records[i].Year < records[j].Year
		}
		return records[i].Rate < records[j].Rate
	})
}
