// Package specdata synthesizes the published SPEC CPU2000 results database
// the paper's chronological experiments train on (§4.1, §4.3). The real
// database is scraped from spec.org and cannot ship here, so the package
// generates statistically equivalent announcements: seven system families
// (Intel Xeon, Pentium 4, Pentium D; AMD Opteron 1/2/4/8-way SMPs) with
// the paper's published record counts, performance ranges and variances, a
// 32-parameter system-description schema, per-application execution times
// whose geometric-mean ratio reproduces the SPEC rating, and genuine
// year-over-year technology drift (2006 parts extend beyond the 2005
// envelope, which is what makes chronological prediction an extrapolation
// problem).
package specdata

import (
	"fmt"

	"perfpred/internal/dataset"
)

// Schema returns the 32-field system-description schema of one SPEC
// announcement, mirroring the parameter list in the paper's §4.1. Fields a
// linear model can use numerically are numeric or flags; symbolic fields
// (vendor, model names, disk type, extras) are categorical — hdd_type has
// a numeric mapping, the rest are omitted by LR encodings exactly as
// Clementine omits unmappable fields.
func Schema() *dataset.Schema {
	s, err := dataset.NewSchema("spec_rate",
		dataset.Field{Name: "company", Kind: dataset.Categorical},
		dataset.Field{Name: "system_name", Kind: dataset.Categorical},
		dataset.Field{Name: "processor_model", Kind: dataset.Categorical},
		dataset.Field{Name: "bus_mhz", Kind: dataset.Numeric},
		dataset.Field{Name: "speed_mhz", Kind: dataset.Numeric},
		dataset.Field{Name: "fpu_integrated", Kind: dataset.Flag},
		dataset.Field{Name: "total_cores", Kind: dataset.Numeric},
		dataset.Field{Name: "total_chips", Kind: dataset.Numeric},
		dataset.Field{Name: "cores_per_chip", Kind: dataset.Numeric},
		dataset.Field{Name: "smt", Kind: dataset.Flag},
		dataset.Field{Name: "parallel", Kind: dataset.Flag},
		dataset.Field{Name: "l1i_kb", Kind: dataset.Numeric},
		dataset.Field{Name: "l1d_kb", Kind: dataset.Numeric},
		dataset.Field{Name: "l1_per_core", Kind: dataset.Flag},
		dataset.Field{Name: "l2_kb", Kind: dataset.Numeric},
		dataset.Field{Name: "l2_on_chip", Kind: dataset.Flag},
		dataset.Field{Name: "l2_shared", Kind: dataset.Flag},
		dataset.Field{Name: "l2_unified", Kind: dataset.Flag},
		dataset.Field{Name: "l3_kb", Kind: dataset.Numeric},
		dataset.Field{Name: "l3_on_chip", Kind: dataset.Flag},
		dataset.Field{Name: "l3_per_core", Kind: dataset.Flag},
		dataset.Field{Name: "l3_shared", Kind: dataset.Flag},
		dataset.Field{Name: "l3_unified", Kind: dataset.Flag},
		dataset.Field{Name: "l4_kb", Kind: dataset.Numeric},
		dataset.Field{Name: "l4_shared_count", Kind: dataset.Numeric},
		dataset.Field{Name: "l4_on_chip", Kind: dataset.Flag},
		dataset.Field{Name: "mem_gb", Kind: dataset.Numeric},
		dataset.Field{Name: "mem_mhz", Kind: dataset.Numeric},
		dataset.Field{Name: "hdd_gb", Kind: dataset.Numeric},
		dataset.Field{Name: "hdd_rpm", Kind: dataset.Numeric},
		dataset.Field{Name: "hdd_type", Kind: dataset.Categorical, NumericLevels: map[string]float64{
			"IDE": 1, "SATA": 2, "SCSI": 3, "SAS": 4,
		}},
		dataset.Field{Name: "extra", Kind: dataset.Categorical},
	)
	if err != nil {
		panic(fmt.Sprintf("specdata: schema construction failed: %v", err)) // static schema; unreachable
	}
	return s
}

// IntApps lists the twelve SPEC CINT2000 applications whose per-system
// execution times each announcement reports.
func IntApps() []string {
	return []string{
		"gzip", "vpr", "gcc", "mcf", "crafty", "parser",
		"eon", "perlbmk", "gap", "vortex", "bzip2", "twolf",
	}
}

// RefTimes returns the SPEC CINT2000 reference times (seconds) used to
// normalize measured runtimes into per-application ratios.
func RefTimes() map[string]float64 {
	return map[string]float64{
		"gzip": 1400, "vpr": 1400, "gcc": 1100, "mcf": 1800,
		"crafty": 1000, "parser": 1800, "eon": 1300, "perlbmk": 1800,
		"gap": 1100, "vortex": 1900, "bzip2": 1500, "twolf": 3000,
	}
}
