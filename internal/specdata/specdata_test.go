package specdata

import (
	"math"
	"testing"

	"perfpred/internal/dataset"
	"perfpred/internal/stat"
)

func TestSchemaHas32Fields(t *testing.T) {
	s := Schema()
	if len(s.Fields) != 32 {
		t.Fatalf("schema has %d fields, want 32 (paper §4.1)", len(s.Fields))
	}
	if s.Target != "spec_rate" {
		t.Fatalf("target = %q", s.Target)
	}
}

func TestFamiliesComplete(t *testing.T) {
	fams := Families()
	if len(fams) != 7 {
		t.Fatalf("got %d families, want 7", len(fams))
	}
	want := map[string]int{
		"Xeon": 216, "Pentium 4": 66, "Pentium D": 71,
		"Opteron": 138, "Opteron 2": 152, "Opteron 4": 158, "Opteron 8": 58,
	}
	for _, f := range fams {
		if got := f.TotalRecords(); got != want[f.Name] {
			t.Errorf("%s: %d records, paper says %d", f.Name, got, want[f.Name])
		}
	}
}

func TestFamilyByName(t *testing.T) {
	f, err := FamilyByName("Opteron 4")
	if err != nil || f.Chips != 4 {
		t.Fatalf("%v %v", f, err)
	}
	if _, err := FamilyByName("Itanium"); err == nil {
		t.Fatal("unknown family: want error")
	}
}

func TestFamiliesHave2005And2006(t *testing.T) {
	// The chronological experiments need both years in every family.
	for _, f := range Families() {
		has := map[int]bool{}
		for _, y := range f.Years() {
			has[y] = true
		}
		if !has[2005] || !has[2006] {
			t.Errorf("%s: years %v missing 2005/2006", f.Name, f.Years())
		}
	}
}

func TestGenerateCountsAndSchema(t *testing.T) {
	s := Schema()
	for _, f := range Families() {
		recs, err := Generate(f, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != f.TotalRecords() {
			t.Errorf("%s: generated %d, want %d", f.Name, len(recs), f.TotalRecords())
		}
		d := dataset.New(s)
		for _, rec := range recs {
			if rec.Rate <= 0 {
				t.Fatalf("%s: non-positive rate", f.Name)
			}
			if err := d.Append(rec.Row, rec.Rate); err != nil {
				t.Fatalf("%s: row does not match schema: %v", f.Name, err)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	f, _ := FamilyByName("Xeon")
	a, err := Generate(f, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(f, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Rate != b[i].Rate {
			t.Fatal("not deterministic")
		}
	}
	c, err := Generate(f, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Rate != c[i].Rate {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical data")
	}
}

// TestSpecFamilyStatistics checks the §4.1 calibration: generated ranges
// near the published values for every family.
func TestSpecFamilyStatistics(t *testing.T) {
	for _, f := range Families() {
		recs, err := Generate(f, 1)
		if err != nil {
			t.Fatal(err)
		}
		n, rng, nvar, err := FamilyStatistics(recs)
		if err != nil {
			t.Fatal(err)
		}
		wantN, wantRng, wantVar := f.PaperStats()
		if n != wantN {
			t.Errorf("%s: %d records, paper %d", f.Name, n, wantN)
		}
		if rng < wantRng*0.72 || rng > wantRng*1.38 {
			t.Errorf("%s: range %.2f outside ±~35%% of paper %.2f", f.Name, rng, wantRng)
		}
		t.Logf("%s: n=%d range=%.2f (paper %.2f) nvar=%.3f (paper %.2f)", f.Name, n, rng, wantRng, nvar, wantVar)
	}
}

func TestRatingMatchesAppTimes(t *testing.T) {
	f, _ := FamilyByName("Pentium D")
	recs, err := Generate(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[:10] {
		if len(rec.AppTimes) != 12 {
			t.Fatalf("%d app times", len(rec.AppTimes))
		}
		rating, err := RatingFromTimes(rec.AppTimes)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rating-rec.Rate)/rec.Rate > 1e-9 {
			t.Fatalf("rating %v != rate %v", rating, rec.Rate)
		}
	}
}

func TestRatingFromTimesErrors(t *testing.T) {
	if _, err := RatingFromTimes(map[string]float64{"gzip": 100}); err == nil {
		t.Fatal("missing apps: want error")
	}
	times := map[string]float64{}
	for _, a := range IntApps() {
		times[a] = 100
	}
	times["mcf"] = -1
	if _, err := RatingFromTimes(times); err == nil {
		t.Fatal("negative time: want error")
	}
}

func TestYear2006FasterThan2005(t *testing.T) {
	// Technology drift: the mean rating must rise year over year, and the
	// 2006 max clock must extend beyond 2005's (the extrapolation setup).
	s := Schema()
	axes := []string{"speed_mhz", "bus_mhz", "mem_mhz"}
	for _, f := range Families() {
		recs, err := Generate(f, 1)
		if err != nil {
			t.Fatal(err)
		}
		var r05, r06 []float64
		max05 := map[string]float64{}
		max06 := map[string]float64{}
		for _, rec := range recs {
			var maxes map[string]float64
			switch rec.Year {
			case 2005:
				r05 = append(r05, rec.Rate)
				maxes = max05
			case 2006:
				r06 = append(r06, rec.Rate)
				maxes = max06
			default:
				continue
			}
			for _, a := range axes {
				if v := rec.Row[s.FieldIndex(a)].Float(); v > maxes[a] {
					maxes[a] = v
				}
			}
		}
		if stat.Mean(r06) <= stat.Mean(r05) {
			t.Errorf("%s: 2006 mean %.1f not above 2005 mean %.1f", f.Name, stat.Mean(r06), stat.Mean(r05))
		}
		extended := false
		for _, a := range axes {
			if max06[a] > max05[a] {
				extended = true
			}
		}
		if !extended {
			t.Errorf("%s: 2006 envelope does not extend 2005 on any axis (speed/bus/mem)", f.Name)
		}
	}
}

func TestBuildDatasetYearFilter(t *testing.T) {
	f, _ := FamilyByName("Pentium D")
	recs, err := Generate(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	d05, err := BuildDataset(recs, 2005)
	if err != nil {
		t.Fatal(err)
	}
	d06, err := BuildDataset(recs, 2006)
	if err != nil {
		t.Fatal(err)
	}
	all, err := BuildDataset(recs)
	if err != nil {
		t.Fatal(err)
	}
	if d05.Len()+d06.Len() != all.Len() {
		t.Fatalf("%d + %d != %d", d05.Len(), d06.Len(), all.Len())
	}
	if d05.Len() != 36 || d06.Len() != 35 {
		t.Fatalf("PD year counts %d/%d", d05.Len(), d06.Len())
	}
	if _, err := BuildDataset(recs, 1999); err == nil {
		t.Fatal("empty year: want error")
	}
	if _, err := BuildDataset(nil); err == nil {
		t.Fatal("no records: want error")
	}
}

func TestMultiprocessorScaling(t *testing.T) {
	// Same-generation Opteron N-way rates should grow with N but
	// sublinearly.
	means := map[int]float64{}
	for _, chips := range []int{1, 2, 4, 8} {
		name := "Opteron"
		if chips > 1 {
			name = "Opteron " + string(rune('0'+chips))
		}
		f, err := FamilyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := Generate(f, 1)
		if err != nil {
			t.Fatal(err)
		}
		var r05 []float64
		for _, rec := range recs {
			if rec.Year == 2005 {
				r05 = append(r05, rec.Rate)
			}
		}
		means[chips] = stat.Mean(r05)
	}
	if !(means[8] > means[4] && means[4] > means[2] && means[2] > means[1]) {
		t.Fatalf("rates do not grow with SMP ways: %v", means)
	}
	if means[8] >= 8*means[1] {
		t.Fatalf("8-way scaling should be sublinear: %v vs %v", means[8], 8*means[1])
	}
}

func TestSortByYear(t *testing.T) {
	f, _ := FamilyByName("Xeon")
	recs, _ := Generate(f, 1)
	SortByYear(recs)
	for i := 1; i < len(recs); i++ {
		if recs[i].Year < recs[i-1].Year {
			t.Fatal("not sorted by year")
		}
		if recs[i].Year == recs[i-1].Year && recs[i].Rate < recs[i-1].Rate {
			t.Fatal("not sorted by rate within year")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(nil, 1); err == nil {
		t.Fatal("nil family: want error")
	}
	empty := &Family{Name: "empty"}
	if _, err := Generate(empty, 1); err == nil {
		t.Fatal("no years: want error")
	}
}

func TestBuildAppDataset(t *testing.T) {
	f, _ := FamilyByName("Pentium D")
	recs, err := Generate(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := BuildAppDataset(recs, "mcf", 2005)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 36 {
		t.Fatalf("len = %d", d.Len())
	}
	if d.Schema().Target != "mcf_seconds" {
		t.Fatalf("target = %q", d.Schema().Target)
	}
	// Targets must be the recorded app times.
	found := 0
	for _, rec := range recs {
		if rec.Year != 2005 {
			continue
		}
		if d.Target(found) != rec.AppTimes["mcf"] {
			t.Fatalf("record %d target mismatch", found)
		}
		found++
	}
	if _, err := BuildAppDataset(recs, "doom3", 2005); err == nil {
		t.Fatal("unknown app: want error")
	}
	if _, err := BuildAppDataset(recs, "mcf", 1999); err == nil {
		t.Fatal("empty year: want error")
	}
	if _, err := BuildAppDataset(nil, "mcf"); err == nil {
		t.Fatal("no records: want error")
	}
}
