package specdata

import "fmt"

// yearMenu describes the component options vendors shipped in one year.
type yearMenu struct {
	year  int
	count int // announcements that year
	// speedsMHz are the processor clock options; later years extend past
	// the earlier envelope, which is what makes chronological prediction
	// an extrapolation problem.
	speedsMHz []float64
	busMHz    []float64
	l2KB      []float64
	l3KB      []float64 // empty → no L3 option
	memMHz    []float64
	memGB     []float64
}

// Family describes one processor family (the unit of the paper's
// chronological studies) plus its latent performance model.
type Family struct {
	// Name as used in the paper's figures (e.g. "Opteron 2").
	Name string
	// Chips and CoresPerChip describe the SMP organization.
	Chips        int
	CoresPerChip int
	// SMT marks families with Hyper-Threading options.
	SMT bool
	// L1IKB / L1DKB are the per-core L1 sizes.
	L1IKB, L1DKB float64
	// L2OnChip / L2Shared describe the L2 organization options.
	L2OnChipAlways bool

	companies  []string
	sysNames   []string
	procModels []string

	years []yearMenu

	// Latent performance model: rating ∝ base × speed^speedExp ×
	// (1 + l2Coef·log2(l2/l2Ref)) × (1 + memFreqCoef·(memMHz/memRef − 1))
	// × (1 + memSizeCoef·log2(memGB/4)) × (1 + busCoef·(bus/busRef − 1))
	// × chips^scaleExp × lognormal(noiseSigma) × drift^(year−2005).
	base        float64
	speedExp    float64
	l2Coef      float64
	l2RefKB     float64
	l3Coef      float64
	memFreqCoef float64
	memFreqRef  float64
	memSizeCoef float64
	busCoef     float64
	busRef      float64
	scaleExp    float64
	noiseSigma  float64
	drift       float64 // unmodeled year-over-year multiplier (compiler maturity etc.)
	// scaleSpread is the per-record SMP scaling-efficiency jitter (larger
	// machines scale less consistently).
	scaleSpread float64
	// l2OnChipCoef is the performance effect of an on-chip L2 for families
	// that shipped both organizations.
	l2OnChipCoef float64
}

// Years lists the years the family has announcements for.
func (f *Family) Years() []int {
	out := make([]int, len(f.years))
	for i, y := range f.years {
		out[i] = y.year
	}
	return out
}

// TotalRecords returns the total announcement count across all years,
// matching the paper's per-family record counts.
func (f *Family) TotalRecords() int {
	n := 0
	for _, y := range f.years {
		n += y.count
	}
	return n
}

// PaperStats returns the paper's published records/range/variance for the
// family (§4.1), used by the calibration tests.
func (f *Family) PaperStats() (records int, rng, variance float64) {
	s := paperStats[f.Name]
	return s.records, s.rng, s.variance
}

var paperStats = map[string]struct {
	records  int
	rng      float64
	variance float64
}{
	"Opteron":   {138, 1.40, 0.08},
	"Opteron 2": {152, 1.58, 0.11},
	"Opteron 4": {158, 1.70, 0.12},
	"Opteron 8": {58, 1.68, 0.13},
	"Pentium D": {71, 1.45, 0.10},
	"Pentium 4": {66, 3.72, 0.34},
	"Xeon":      {216, 1.34, 0.09},
}

// Families returns the seven families of the paper's chronological study.
func Families() []*Family {
	return []*Family{
		xeonFamily(), pentium4Family(), pentiumDFamily(),
		opteronFamily(1), opteronFamily(2), opteronFamily(4), opteronFamily(8),
	}
}

// FamilyByName looks a family up by its paper name.
func FamilyByName(name string) (*Family, error) {
	for _, f := range Families() {
		if f.Name == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("specdata: unknown family %q", name)
}

func xeonFamily() *Family {
	return &Family{
		Name: "Xeon", Chips: 1, CoresPerChip: 1, SMT: true,
		L1IKB: 16, L1DKB: 16, L2OnChipAlways: true,
		companies:  []string{"Dell", "HP", "IBM", "Fujitsu"},
		sysNames:   []string{"PowerEdge 1850", "PowerEdge 2850", "ProLiant DL380", "ProLiant ML370", "xSeries 346", "PRIMERGY RX300"},
		procModels: []string{"Xeon DP", "Xeon MP", "Xeon 64-bit"},
		years: []yearMenu{
			{year: 2002, count: 30, speedsMHz: []float64{3000, 3200}, busMHz: []float64{400, 533}, l2KB: []float64{1024}, memMHz: []float64{266}, memGB: []float64{1, 2, 4}},
			{year: 2003, count: 40, speedsMHz: []float64{3000, 3200, 3400}, busMHz: []float64{533}, l2KB: []float64{1024}, memMHz: []float64{266, 333}, memGB: []float64{2, 4}},
			{year: 2004, count: 50, speedsMHz: []float64{3000, 3200, 3400}, busMHz: []float64{533, 800}, l2KB: []float64{1024}, l3KB: []float64{0, 2048}, memMHz: []float64{333, 400}, memGB: []float64{2, 4, 8}},
			{year: 2005, count: 48, speedsMHz: []float64{3200, 3400, 3600, 3800}, busMHz: []float64{533, 800}, l2KB: []float64{1024, 2048}, l3KB: []float64{0, 2048}, memMHz: []float64{333, 400}, memGB: []float64{4, 8}},
			{year: 2006, count: 48, speedsMHz: []float64{3400, 3600, 3800, 4000}, busMHz: []float64{800, 1066}, l2KB: []float64{2048}, l3KB: []float64{0, 2048}, memMHz: []float64{400, 533}, memGB: []float64{4, 8, 16}},
		},
		base: 5.2, speedExp: 0.85,
		l2Coef: 0.045, l2RefKB: 1024, l3Coef: 0.02,
		memFreqCoef: 0.05, memFreqRef: 400,
		memSizeCoef: 0.012, busCoef: 0.03, busRef: 800,
		scaleExp: 0.92, noiseSigma: 0.018, drift: 1.012,
	}
}

func pentium4Family() *Family {
	return &Family{
		Name: "Pentium 4", Chips: 1, CoresPerChip: 1, SMT: true,
		L1IKB: 12, L1DKB: 16, L2OnChipAlways: true,
		companies:  []string{"Dell", "HP", "Gateway", "Acer"},
		sysNames:   []string{"Precision 360", "Precision 380", "Dimension 8400", "Evo D500", "Veriton 7600"},
		procModels: []string{"Pentium 4", "Pentium 4 HT", "Pentium 4 EE"},
		years: []yearMenu{
			{year: 2002, count: 12, speedsMHz: []float64{1800, 2000, 2200, 2400}, busMHz: []float64{400}, l2KB: []float64{256, 512}, memMHz: []float64{266}, memGB: []float64{0.5, 1}},
			{year: 2003, count: 14, speedsMHz: []float64{2400, 2600, 2800, 3000}, busMHz: []float64{533, 800}, l2KB: []float64{512}, memMHz: []float64{333}, memGB: []float64{1, 2}},
			{year: 2004, count: 14, speedsMHz: []float64{2800, 3000, 3200, 3400}, busMHz: []float64{800}, l2KB: []float64{512, 1024}, memMHz: []float64{400}, memGB: []float64{1, 2}},
			{year: 2005, count: 13, speedsMHz: []float64{3000, 3200, 3400, 3600, 3800}, busMHz: []float64{800}, l2KB: []float64{1024, 2048}, memMHz: []float64{400, 533}, memGB: []float64{1, 2, 4}},
			{year: 2006, count: 13, speedsMHz: []float64{3200, 3400, 3600, 3800}, busMHz: []float64{800, 1066}, l2KB: []float64{2048}, memMHz: []float64{533}, memGB: []float64{2, 4}},
		},
		base: 4.6, speedExp: 0.9,
		l2Coef: 0.09, l2RefKB: 512, l3Coef: 0,
		memFreqCoef: 0.06, memFreqRef: 400,
		memSizeCoef: 0.008, busCoef: 0.05, busRef: 800,
		scaleExp: 0.92, noiseSigma: 0.013, drift: 1.010,
	}
}

func pentiumDFamily() *Family {
	return &Family{
		Name: "Pentium D", Chips: 1, CoresPerChip: 2, SMT: false,
		L1IKB: 12, L1DKB: 16, L2OnChipAlways: true,
		companies:  []string{"Dell", "HP", "Lenovo"},
		sysNames:   []string{"OptiPlex GX620", "Precision 390", "ThinkCentre M52", "dc7600"},
		procModels: []string{"Pentium D 800", "Pentium D 900"},
		years: []yearMenu{
			{year: 2005, count: 36, speedsMHz: []float64{2800, 3000, 3200}, busMHz: []float64{800}, l2KB: []float64{1024, 2048}, memMHz: []float64{400, 533}, memGB: []float64{1, 2, 4}},
			{year: 2006, count: 35, speedsMHz: []float64{2800, 3000, 3200, 3400, 3600}, busMHz: []float64{800, 1066}, l2KB: []float64{2048, 4096}, memMHz: []float64{533, 667}, memGB: []float64{2, 4}},
		},
		base: 4.9, speedExp: 0.88,
		l2Coef: 0.06, l2RefKB: 2048, l3Coef: 0,
		memFreqCoef: 0.05, memFreqRef: 533,
		memSizeCoef: 0.006, busCoef: 0.045, busRef: 800,
		scaleExp: 0.94, noiseSigma: 0.016, drift: 1.008,
	}
}

func opteronFamily(chips int) *Family {
	name := "Opteron"
	if chips > 1 {
		name = fmt.Sprintf("Opteron %d", chips)
	}
	counts := map[int][]int{
		1: {20, 34, 42, 42}, // 2003..2006, total 138
		2: {22, 38, 46, 46}, // 152
		4: {24, 40, 47, 47}, // 158
		8: {0, 14, 22, 22},  // 58 (8-way shipped from 2004)
	}[chips]
	sysByChips := map[int][]string{
		1: {"ProLiant DL145", "Sun Fire V20z", "PowerEdge SC1435", "eServer 325"},
		2: {"ProLiant DL385", "Sun Fire V40z 2P", "PowerEdge 6950 2P", "eServer 326"},
		4: {"ProLiant DL585", "Sun Fire V40z", "PowerEdge 6950", "eServer 460"},
		8: {"ProLiant DL785", "Sun Fire X4600", "Celestica A8440"},
	}
	modelsByChips := map[int][]string{
		1: {"Opteron 148", "Opteron 150", "Opteron 154", "Opteron 156"},
		2: {"Opteron 248", "Opteron 250", "Opteron 252", "Opteron 254", "Opteron 256"},
		4: {"Opteron 848", "Opteron 850", "Opteron 852", "Opteron 854", "Opteron 856"},
		8: {"Opteron 850", "Opteron 852", "Opteron 854", "Opteron 856", "Opteron 880"},
	}
	noise := map[int]float64{1: 0.018, 2: 0.026, 4: 0.027, 8: 0.030}[chips]
	scaleSpread := map[int]float64{1: 0, 2: 0.012, 4: 0.02, 8: 0.025}[chips]

	years := []yearMenu{
		{year: 2003, speedsMHz: []float64{2000, 2200}, busMHz: []float64{800}, l2KB: []float64{1024}, memMHz: []float64{333}, memGB: []float64{2, 4}},
		{year: 2004, speedsMHz: []float64{2000, 2200, 2400}, busMHz: []float64{800, 1000}, l2KB: []float64{1024}, memMHz: []float64{333, 400}, memGB: []float64{2, 4, 8}},
		{year: 2005, speedsMHz: []float64{2200, 2400, 2600}, busMHz: []float64{1000}, l2KB: []float64{1024}, memMHz: []float64{333, 400}, memGB: []float64{4, 8, 16}},
		{year: 2006, speedsMHz: []float64{2400, 2600, 2800}, busMHz: []float64{1000}, l2KB: []float64{1024}, memMHz: []float64{400, 533}, memGB: []float64{4, 8, 16, 32}},
	}
	var kept []yearMenu
	for i, y := range years {
		y.count = counts[i]
		if y.count > 0 {
			kept = append(kept, y)
		}
	}
	f := &Family{
		Name: name, Chips: chips, CoresPerChip: 1, SMT: false,
		L1IKB: 64, L1DKB: 64, L2OnChipAlways: false,
		companies:  []string{"HP", "Sun", "IBM", "Dell"},
		sysNames:   sysByChips[chips],
		procModels: modelsByChips[chips],
		years:      kept,
		base:       6.0, speedExp: 0.88,
		l2Coef: 0.05, l2RefKB: 1024, l3Coef: 0,
		memFreqCoef: 0.09, memFreqRef: 400,
		memSizeCoef: 0.015, busCoef: 0.02, busRef: 1000,
		scaleExp: 0.93, noiseSigma: noise, drift: 1.012,
	}
	f.scaleSpread = scaleSpread
	f.l2OnChipCoef = 0.04
	return f
}
