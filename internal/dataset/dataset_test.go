package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("cycles",
		Field{Name: "clock", Kind: Numeric},
		Field{Name: "smt", Kind: Flag},
		Field{Name: "bpred", Kind: Categorical},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fill(t *testing.T, d *Dataset, n int) {
	t.Helper()
	preds := []string{"bimodal", "2level", "comb"}
	for i := 0; i < n; i++ {
		err := d.Append([]Value{
			Num(float64(1000 + i)),
			FlagVal(i%2 == 0),
			Cat(preds[i%3]),
		}, float64(10*(i+1)))
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(""); err == nil {
		t.Fatal("empty target: want error")
	}
	if _, err := NewSchema("y", Field{Name: "", Kind: Numeric}); err == nil {
		t.Fatal("empty field name: want error")
	}
	if _, err := NewSchema("y", Field{Name: "a", Kind: Numeric}, Field{Name: "a", Kind: Flag}); err == nil {
		t.Fatal("duplicate field: want error")
	}
}

func TestSchemaFieldIndex(t *testing.T) {
	s := testSchema(t)
	if got := s.FieldIndex("smt"); got != 1 {
		t.Fatalf("FieldIndex(smt) = %d", got)
	}
	if got := s.FieldIndex("nope"); got != -1 {
		t.Fatalf("FieldIndex(nope) = %d", got)
	}
}

func TestValueAccessors(t *testing.T) {
	if v := Num(3.5); v.Kind() != Numeric || v.Float() != 3.5 {
		t.Fatal("Num broken")
	}
	if v := FlagVal(true); v.Kind() != Flag || !v.Bool() {
		t.Fatal("FlagVal broken")
	}
	if v := Cat("x"); v.Kind() != Categorical || v.Label() != "x" {
		t.Fatal("Cat broken")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Num(2.5), "2.5"},
		{FlagVal(true), "yes"},
		{FlagVal(false), "no"},
		{Cat("bimodal"), "bimodal"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestAppendValidation(t *testing.T) {
	d := New(testSchema(t))
	if err := d.Append([]Value{Num(1)}, 0); err == nil {
		t.Fatal("arity mismatch: want error")
	}
	if err := d.Append([]Value{Num(1), Num(2), Cat("x")}, 0); err == nil {
		t.Fatal("kind mismatch: want error")
	}
	if err := d.Append([]Value{Num(1), FlagVal(true), Cat("x")}, 5); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.Target(0) != 5 {
		t.Fatal("append did not record")
	}
}

func TestSubset(t *testing.T) {
	d := New(testSchema(t))
	fill(t, d, 5)
	sub, err := d.Subset([]int{4, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 {
		t.Fatalf("len = %d", sub.Len())
	}
	if sub.Target(0) != 50 || sub.Target(1) != 10 || sub.Target(2) != 30 {
		t.Fatalf("targets = %v", sub.Targets())
	}
	if _, err := d.Subset([]int{5}); err == nil {
		t.Fatal("out-of-range index: want error")
	}
	if _, err := d.Subset([]int{-1}); err == nil {
		t.Fatal("negative index: want error")
	}
}

func TestSampleFraction(t *testing.T) {
	d := New(testSchema(t))
	fill(t, d, 200)
	r := rand.New(rand.NewSource(1))
	sub, idx, err := d.SampleFraction(r, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 10 || len(idx) != 10 {
		t.Fatalf("5%% of 200 = %d records", sub.Len())
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if seen[i] {
			t.Fatal("duplicate index in sample")
		}
		seen[i] = true
	}
}

func TestSampleFractionAtLeastOne(t *testing.T) {
	d := New(testSchema(t))
	fill(t, d, 10)
	sub, _, err := d.SampleFraction(rand.New(rand.NewSource(2)), 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 1 {
		t.Fatalf("tiny fraction should keep 1 record, got %d", sub.Len())
	}
}

func TestSampleFractionErrors(t *testing.T) {
	d := New(testSchema(t))
	fill(t, d, 10)
	r := rand.New(rand.NewSource(3))
	if _, _, err := d.SampleFraction(r, 0); err == nil {
		t.Fatal("frac=0: want error")
	}
	if _, _, err := d.SampleFraction(r, 1.5); err == nil {
		t.Fatal("frac>1: want error")
	}
	empty := New(testSchema(t))
	if _, _, err := empty.SampleFraction(r, 0.5); err == nil {
		t.Fatal("empty dataset: want error")
	}
}

func TestSplitHalf(t *testing.T) {
	d := New(testSchema(t))
	fill(t, d, 11)
	a, b, err := d.SplitHalf(rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 5 || b.Len() != 6 {
		t.Fatalf("split sizes %d/%d", a.Len(), b.Len())
	}
	// Together they must cover all targets exactly once.
	sum := 0.0
	for _, y := range append(a.Targets(), b.Targets()...) {
		sum += y
	}
	want := 0.0
	for _, y := range d.Targets() {
		want += y
	}
	if sum != want {
		t.Fatalf("split lost records: %v vs %v", sum, want)
	}
	one := New(testSchema(t))
	fill(t, one, 1)
	if _, _, err := one.SplitHalf(rand.New(rand.NewSource(5))); err == nil {
		t.Fatal("split of 1 record: want error")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := New(testSchema(t))
	fill(t, d, 3)
	c := d.Clone()
	if err := c.Append([]Value{Num(1), FlagVal(false), Cat("x")}, 99); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 || c.Len() != 4 {
		t.Fatal("clone shares growth with original")
	}
}

func TestSampleDeterminismProperty(t *testing.T) {
	d := New(testSchema(t))
	fill(t, d, 100)
	f := func(seed int16) bool {
		_, i1, err1 := d.SampleFraction(rand.New(rand.NewSource(int64(seed))), 0.1)
		_, i2, err2 := d.SampleFraction(rand.New(rand.NewSource(int64(seed))), 0.1)
		if err1 != nil || err2 != nil {
			return false
		}
		for k := range i1 {
			if i1[k] != i2[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComplement(t *testing.T) {
	d := New(testSchema(t))
	fill(t, d, 10)
	rest, restIdx, err := d.Complement([]int{7, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	wantIdx := []int{0, 1, 3, 5, 6, 8, 9}
	if len(restIdx) != len(wantIdx) || rest.Len() != len(wantIdx) {
		t.Fatalf("complement has %d rows (idx %v), want %v", rest.Len(), restIdx, wantIdx)
	}
	for k, want := range wantIdx {
		if restIdx[k] != want {
			t.Errorf("restIdx[%d] = %d, want %d", k, restIdx[k], want)
		}
		if rest.Target(k) != d.Target(want) {
			t.Errorf("complement row %d target %v, want row %d's %v", k, rest.Target(k), want, d.Target(want))
		}
	}

	// Duplicates in idx exclude each row at most once.
	rest2, _, err := d.Complement([]int{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if rest2.Len() != 9 {
		t.Fatalf("duplicate-index complement has %d rows, want 9", rest2.Len())
	}

	// Out-of-range indices are rejected.
	if _, _, err := d.Complement([]int{10}); err == nil {
		t.Fatal("out-of-range complement index: want error")
	}
	if _, _, err := d.Complement([]int{-1}); err == nil {
		t.Fatal("negative complement index: want error")
	}

	// SampleFraction + Complement partition the dataset exactly.
	_, idx, err := d.SampleFraction(rand.New(rand.NewSource(5)), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	_, restIdx, err = d.Complement(idx)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, i := range idx {
		seen[i] = true
	}
	for _, i := range restIdx {
		if seen[i] {
			t.Fatalf("index %d in both sample and complement", i)
		}
		seen[i] = true
	}
	if len(seen) != d.Len() {
		t.Fatalf("sample+complement cover %d of %d rows", len(seen), d.Len())
	}
}
