package dataset

import (
	"errors"
	"fmt"
	"sort"
)

// Mode selects the encoding convention for a model family.
type Mode int

const (
	// ForNN encodes for neural networks: numeric fields min-max scaled to
	// [0,1], flags to {0,1}, categoricals one-hot. The target is also
	// scaled to [0,1] (Clementine behaviour; the inverse transform restores
	// predictions to the original units).
	ForNN Mode = iota
	// ForLR encodes for linear regression: numeric fields min-max scaled,
	// flags to {0,1}, categoricals coerced through their NumericLevels
	// mapping (then scaled) or omitted entirely when no mapping exists.
	// The target is left in original units.
	ForLR
)

// String returns the mode name.
func (m Mode) String() string {
	if m == ForNN {
		return "NN"
	}
	return "LR"
}

// column is one encoded input column derived from a schema field.
type column struct {
	field int    // index into schema.Fields
	name  string // derived column name
	// For one-hot columns: the category this column indicates.
	category string
	oneHot   bool
	// Min-max scaling parameters for numeric-valued columns.
	min, max float64
}

// Encoder transforms records into model-ready feature vectors. It is
// fitted on a training dataset (recording scaling ranges, category sets and
// constant fields) and then applied consistently to train and test data.
type Encoder struct {
	schema *Schema
	mode   Mode
	cols   []column
	// omitted records why each dropped field was dropped, for reporting.
	omitted map[string]string
	yMin    float64
	yMax    float64
	scaleY  bool
}

// FitEncoder builds an encoder for the given mode from training data.
// Fields with no variation in the training data are omitted, as are
// (under ForLR) categoricals lacking a numeric mapping.
func FitEncoder(train *Dataset, mode Mode) (*Encoder, error) {
	if train.Len() == 0 {
		return nil, errors.New("dataset: cannot fit encoder on empty dataset")
	}
	e := &Encoder{
		schema:  train.Schema(),
		mode:    mode,
		omitted: map[string]string{},
		scaleY:  mode == ForNN,
	}
	for fi, f := range e.schema.Fields {
		switch f.Kind {
		case Numeric:
			lo, hi := numericRangeOf(train, fi, nil)
			if lo == hi {
				e.omitted[f.Name] = "constant in training data"
				continue
			}
			e.cols = append(e.cols, column{field: fi, name: f.Name, min: lo, max: hi})
		case Flag:
			if flagConstant(train, fi) {
				e.omitted[f.Name] = "constant in training data"
				continue
			}
			e.cols = append(e.cols, column{field: fi, name: f.Name, min: 0, max: 1})
		case Categorical:
			cats := categoriesOf(train, fi)
			if len(cats) < 2 {
				e.omitted[f.Name] = "constant in training data"
				continue
			}
			if mode == ForLR {
				if f.NumericLevels == nil {
					e.omitted[f.Name] = "categorical without numeric mapping (LR cannot use it)"
					continue
				}
				lo, hi := numericRangeOf(train, fi, f.NumericLevels)
				if lo == hi {
					e.omitted[f.Name] = "constant after numeric mapping"
					continue
				}
				e.cols = append(e.cols, column{field: fi, name: f.Name, min: lo, max: hi})
				continue
			}
			for _, c := range cats {
				e.cols = append(e.cols, column{
					field:    fi,
					name:     f.Name + "=" + c,
					category: c,
					oneHot:   true,
					min:      0,
					max:      1,
				})
			}
		}
	}
	if len(e.cols) == 0 {
		return nil, errors.New("dataset: no usable input fields after preparation")
	}
	ys := train.Targets()
	e.yMin, e.yMax = ys[0], ys[0]
	for _, y := range ys {
		if y < e.yMin {
			e.yMin = y
		}
		if y > e.yMax {
			e.yMax = y
		}
	}
	if e.scaleY && e.yMin == e.yMax {
		return nil, errors.New("dataset: target is constant; nothing to model")
	}
	return e, nil
}

func numericRangeOf(d *Dataset, fi int, levels map[string]float64) (lo, hi float64) {
	first := true
	for i := 0; i < d.Len(); i++ {
		v := d.Row(i)[fi]
		var x float64
		if levels != nil {
			x = levels[v.Label()]
		} else {
			x = v.Float()
		}
		if first {
			lo, hi = x, x
			first = false
			continue
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func flagConstant(d *Dataset, fi int) bool {
	if d.Len() == 0 {
		return true
	}
	first := d.Row(0)[fi].Bool()
	for i := 1; i < d.Len(); i++ {
		if d.Row(i)[fi].Bool() != first {
			return false
		}
	}
	return true
}

func categoriesOf(d *Dataset, fi int) []string {
	set := map[string]bool{}
	for i := 0; i < d.Len(); i++ {
		set[d.Row(i)[fi].Label()] = true
	}
	cats := make([]string, 0, len(set))
	for c := range set {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	return cats
}

// Mode returns the encoding mode the encoder was fitted with.
func (e *Encoder) Mode() Mode { return e.mode }

// Schema returns the schema the encoder was fitted over.
func (e *Encoder) Schema() *Schema { return e.schema }

// ColumnNames returns the derived input column names, in order.
func (e *Encoder) ColumnNames() []string {
	out := make([]string, len(e.cols))
	for i, c := range e.cols {
		out[i] = c.name
	}
	return out
}

// NumColumns returns the width of encoded feature vectors.
func (e *Encoder) NumColumns() int { return len(e.cols) }

// Omitted reports fields dropped during preparation and the reason, keyed
// by field name.
func (e *Encoder) Omitted() map[string]string {
	out := make(map[string]string, len(e.omitted))
	for k, v := range e.omitted {
		out[k] = v
	}
	return out
}

// SourceField returns the schema field name an encoded column derives from.
// One-hot columns of the same categorical field share a source field.
func (e *Encoder) SourceField(col int) string {
	return e.schema.Fields[e.cols[col].field].Name
}

// EncodeRow encodes one record into a feature vector.
func (e *Encoder) EncodeRow(row []Value) ([]float64, error) {
	x := make([]float64, len(e.cols))
	if err := e.EncodeRowInto(x, row); err != nil {
		return nil, err
	}
	return x, nil
}

// ValidateRow checks one raw record against the fitted encoder without
// encoding it: row arity against the schema and, for numeric-coded
// categorical columns, that every category has a numeric mapping. A nil
// return guarantees EncodeRowInto on the same row cannot fail, which is
// what lets a serving front end reject bad rows with client errors
// before they are admitted to the batch queue.
func (e *Encoder) ValidateRow(row []Value) error {
	if len(row) != len(e.schema.Fields) {
		return fmt.Errorf("dataset: row has %d values, schema has %d fields", len(row), len(e.schema.Fields))
	}
	for _, c := range e.cols {
		if c.oneHot {
			continue
		}
		f := e.schema.Fields[c.field]
		if f.Kind == Categorical {
			if _, ok := f.NumericLevels[row[c.field].Label()]; !ok {
				return fmt.Errorf("dataset: field %q: category %q has no numeric mapping", f.Name, row[c.field].Label())
			}
		}
	}
	return nil
}

// EncodeRowInto encodes one raw record into dst, which must hold
// NumColumns() elements — the allocation-free form of EncodeRow that
// batch scorers use with reused buffers.
func (e *Encoder) EncodeRowInto(dst []float64, row []Value) error {
	if len(row) != len(e.schema.Fields) {
		return fmt.Errorf("dataset: row has %d values, schema has %d fields", len(row), len(e.schema.Fields))
	}
	if len(dst) != len(e.cols) {
		return fmt.Errorf("dataset: destination has %d slots, encoder has %d columns", len(dst), len(e.cols))
	}
	clear(dst)
	x := dst
	for ci, c := range e.cols {
		v := row[c.field]
		f := e.schema.Fields[c.field]
		switch {
		case c.oneHot:
			if v.Label() == c.category {
				x[ci] = 1
			}
		case f.Kind == Flag:
			if v.Bool() {
				x[ci] = 1
			}
		case f.Kind == Categorical:
			// ForLR numeric-mapped categorical.
			raw, ok := f.NumericLevels[v.Label()]
			if !ok {
				return fmt.Errorf("dataset: field %q: category %q has no numeric mapping", f.Name, v.Label())
			}
			x[ci] = scale(raw, c.min, c.max)
		default:
			x[ci] = scale(v.Float(), c.min, c.max)
		}
	}
	return nil
}

// scale maps raw into [0,1] relative to the training range. Values outside
// the training range map outside [0,1] — deliberately: chronological
// prediction extrapolates to next-year systems, and how each model family
// behaves under extrapolation is part of what the paper measures.
func scale(raw, lo, hi float64) float64 {
	return (raw - lo) / (hi - lo)
}

// Transform encodes a whole dataset into a design matrix X and a target
// vector Y (target scaled iff the mode scales targets).
func (e *Encoder) Transform(d *Dataset) (x [][]float64, y []float64, err error) {
	x = make([][]float64, d.Len())
	y = make([]float64, d.Len())
	for i := 0; i < d.Len(); i++ {
		x[i], err = e.EncodeRow(d.Row(i))
		if err != nil {
			return nil, nil, err
		}
		y[i] = e.ScaleTarget(d.Target(i))
	}
	return x, y, nil
}

// ScaleTarget maps a raw target to model space (identity for LR mode).
func (e *Encoder) ScaleTarget(y float64) float64 {
	if !e.scaleY {
		return y
	}
	return (y - e.yMin) / (e.yMax - e.yMin)
}

// UnscaleTarget maps a model-space prediction back to raw target units.
func (e *Encoder) UnscaleTarget(y float64) float64 {
	if !e.scaleY {
		return y
	}
	return y*(e.yMax-e.yMin) + e.yMin
}
