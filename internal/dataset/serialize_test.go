package dataset

import (
	"encoding/json"
	"testing"
)

func TestEncoderSerializeRoundTrip(t *testing.T) {
	d := encData(t)
	for _, mode := range []Mode{ForNN, ForLR} {
		e, err := FitEncoder(d, mode)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalEncoder(data)
		if err != nil {
			t.Fatal(err)
		}
		if back.Mode() != mode || back.NumColumns() != e.NumColumns() {
			t.Fatalf("%v: meta mismatch", mode)
		}
		// Encodings must match exactly on every training row.
		for i := 0; i < d.Len(); i++ {
			a, err := e.EncodeRow(d.Row(i))
			if err != nil {
				t.Fatal(err)
			}
			b, err := back.EncodeRow(d.Row(i))
			if err != nil {
				t.Fatal(err)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("%v: row %d col %d: %v vs %v", mode, i, j, a[j], b[j])
				}
			}
		}
		if e.ScaleTarget(17) != back.ScaleTarget(17) || e.UnscaleTarget(0.3) != back.UnscaleTarget(0.3) {
			t.Fatalf("%v: target scaling differs", mode)
		}
		if len(back.Omitted()) != len(e.Omitted()) {
			t.Fatalf("%v: omitted map lost", mode)
		}
	}
}

func TestUnmarshalEncoderRejectsBadInput(t *testing.T) {
	cases := []string{
		`garbage`,
		`{"version":2}`,
		`{"version":1,"schema":{"target":"y","fields":[{"name":"a","kind":0}]},"cols":[]}`,
		`{"version":1,"schema":{"target":"y","fields":[{"name":"a","kind":0}]},"cols":[{"field":5,"name":"a","min":0,"max":1}]}`,
		`{"version":1,"schema":{"target":"y","fields":[{"name":"a","kind":0}]},"cols":[{"field":0,"name":"a","min":1,"max":1}]}`,
		`{"version":1,"schema":{"target":"y","fields":[{"name":"a","kind":7}]},"cols":[{"field":0,"name":"a","min":0,"max":1}]}`,
		`{"version":1,"scale_y":true,"y_min":1,"y_max":1,"schema":{"target":"y","fields":[{"name":"a","kind":0}]},"cols":[{"field":0,"name":"a","min":0,"max":1}]}`,
	}
	for i, c := range cases {
		if _, err := UnmarshalEncoder([]byte(c)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}
