package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestDescribe(t *testing.T) {
	d := encData(t)
	desc, err := Describe(d)
	if err != nil {
		t.Fatal(err)
	}
	if desc.Records != 4 || desc.TargetName != "perf" {
		t.Fatalf("meta: %+v", desc)
	}
	if desc.TargetMin != 10 || desc.TargetMax != 40 || desc.TargetMean != 25 {
		t.Fatalf("target stats: %+v", desc)
	}
	if math.Abs(desc.TargetRange-4) > 1e-12 {
		t.Fatalf("target range %v", desc.TargetRange)
	}
	byName := map[string]FieldSummary{}
	for _, f := range desc.Fields {
		byName[f.Name] = f
	}
	clock := byName["clock"]
	if clock.Min != 1000 || clock.Max != 4000 || clock.Mean != 2500 || clock.Distinct != 4 {
		t.Fatalf("clock summary %+v", clock)
	}
	smt := byName["smt"]
	if smt.TrueFrac != 0.5 || smt.Distinct != 2 {
		t.Fatalf("smt summary %+v", smt)
	}
	bp := byName["bpred"]
	if bp.Distinct != 3 || bp.Categories[0] != "2level" {
		t.Fatalf("bpred summary %+v", bp)
	}
	l2 := byName["l2lat"]
	if l2.Distinct != 1 {
		t.Fatalf("constant field distinct = %d", l2.Distinct)
	}
}

func TestDescribeErrors(t *testing.T) {
	if _, err := Describe(nil); err == nil {
		t.Fatal("nil: want error")
	}
	if _, err := Describe(New(encSchema(t))); err == nil {
		t.Fatal("empty: want error")
	}
}

func TestDescribeWriteText(t *testing.T) {
	d := encData(t)
	desc, err := Describe(d)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := desc.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"4 records", "clock", "bimodal", "% true", "range 4.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
