package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the dataset as CSV with a header row; the final column is
// the target. Flags render as yes/no, categoricals as their labels.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(d.schema.Fields)+1)
	for _, f := range d.schema.Fields {
		header = append(header, f.Name)
	}
	header = append(header, d.schema.Target)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i := 0; i < d.Len(); i++ {
		row := d.Row(i)
		for j, v := range row {
			rec[j] = v.String()
		}
		rec[len(rec)-1] = strconv.FormatFloat(d.Target(i), 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV produced by WriteCSV back into a dataset with the
// given schema. The header row must match the schema field names followed
// by the target name.
func ReadCSV(r io.Reader, schema *Schema) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if len(header) != len(schema.Fields)+1 {
		return nil, fmt.Errorf("dataset: CSV has %d columns, schema expects %d", len(header), len(schema.Fields)+1)
	}
	for i, f := range schema.Fields {
		if header[i] != f.Name {
			return nil, fmt.Errorf("dataset: CSV column %d is %q, schema expects %q", i, header[i], f.Name)
		}
	}
	if header[len(header)-1] != schema.Target {
		return nil, fmt.Errorf("dataset: CSV target column is %q, schema expects %q", header[len(header)-1], schema.Target)
	}
	out := New(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		row := make([]Value, len(schema.Fields))
		for j, f := range schema.Fields {
			switch f.Kind {
			case Numeric:
				x, err := strconv.ParseFloat(rec[j], 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d field %q: %w", line, f.Name, err)
				}
				row[j] = Num(x)
			case Flag:
				switch rec[j] {
				case "yes", "true", "1":
					row[j] = FlagVal(true)
				case "no", "false", "0":
					row[j] = FlagVal(false)
				default:
					return nil, fmt.Errorf("dataset: line %d field %q: bad flag %q", line, f.Name, rec[j])
				}
			case Categorical:
				row[j] = Cat(rec[j])
			}
		}
		y, err := strconv.ParseFloat(rec[len(rec)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d target: %w", line, err)
		}
		if err := out.Append(row, y); err != nil {
			return nil, err
		}
	}
	return out, nil
}
