package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d := encData(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, d.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip len %d vs %d", back.Len(), d.Len())
	}
	for i := 0; i < d.Len(); i++ {
		if back.Target(i) != d.Target(i) {
			t.Fatalf("target %d: %v vs %v", i, back.Target(i), d.Target(i))
		}
		for j := range d.Row(i) {
			if back.Row(i)[j].String() != d.Row(i)[j].String() {
				t.Fatalf("cell %d,%d: %v vs %v", i, j, back.Row(i)[j], d.Row(i)[j])
			}
		}
	}
}

func TestReadCSVHeaderValidation(t *testing.T) {
	s := encSchema(t)
	if _, err := ReadCSV(strings.NewReader("a,b\n"), s); err == nil {
		t.Fatal("wrong column count: want error")
	}
	if _, err := ReadCSV(strings.NewReader("x,smt,bpred,disk,l2lat,perf\n"), s); err == nil {
		t.Fatal("wrong field name: want error")
	}
	if _, err := ReadCSV(strings.NewReader("clock,smt,bpred,disk,l2lat,wrong\n"), s); err == nil {
		t.Fatal("wrong target name: want error")
	}
}

func TestReadCSVValueValidation(t *testing.T) {
	s := encSchema(t)
	head := "clock,smt,bpred,disk,l2lat,perf\n"
	if _, err := ReadCSV(strings.NewReader(head+"abc,yes,bimodal,scsi,12,10\n"), s); err == nil {
		t.Fatal("bad numeric: want error")
	}
	if _, err := ReadCSV(strings.NewReader(head+"1,maybe,bimodal,scsi,12,10\n"), s); err == nil {
		t.Fatal("bad flag: want error")
	}
	if _, err := ReadCSV(strings.NewReader(head+"1,yes,bimodal,scsi,12,oops\n"), s); err == nil {
		t.Fatal("bad target: want error")
	}
}

func TestReadCSVFlagSpellings(t *testing.T) {
	s := encSchema(t)
	head := "clock,smt,bpred,disk,l2lat,perf\n"
	d, err := ReadCSV(strings.NewReader(head+"1,true,bimodal,scsi,12,10\n2,0,comb,sata,12,20\n"), s)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Row(0)[1].Bool() || d.Row(1)[1].Bool() {
		t.Fatal("flag spellings true/0 misparsed")
	}
}
