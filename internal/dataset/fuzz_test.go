package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzSchema builds the fixed schema the CSV fuzzer parses against: one
// field of each kind plus the target, mirroring the design-space data's
// shape. Fuzz setup runs under *testing.F, so errors are returned.
func fuzzSchema() (*Schema, error) {
	return NewSchema("cycles",
		Field{Name: "size", Kind: Numeric},
		Field{Name: "fast", Kind: Flag},
		Field{Name: "pred", Kind: Categorical},
	)
}

// FuzzReadCSV feeds arbitrary bytes to the CSV reader. The reader must
// never panic; any dataset it accepts must survive a write/read round
// trip with identical rows and targets. Seed inputs live both here and
// in testdata/fuzz/FuzzReadCSV (the checked-in corpus).
func FuzzReadCSV(f *testing.F) {
	schema, err := fuzzSchema()
	if err != nil {
		f.Fatal(err)
	}
	// A valid file, produced by the writer itself.
	d := New(schema)
	rows := [][]Value{
		{Num(16), FlagVal(true), Cat("bimodal")},
		{Num(32.5), FlagVal(false), Cat("2level")},
		{Num(-4), FlagVal(true), Cat("perfect,quoted")},
	}
	for i, row := range rows {
		if err := d.Append(row, float64(i)*1.5); err != nil {
			f.Fatal(err)
		}
	}
	var valid bytes.Buffer
	if err := d.WriteCSV(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("size,fast,pred,cycles\n16,yes,bimodal,100\n"))
	f.Add([]byte("size,fast,pred,cycles\n16,maybe,bimodal,100\n"))   // bad flag
	f.Add([]byte("size,fast,pred,cycles\nNaN,yes,bimodal,100\n"))    // NaN numeric
	f.Add([]byte("size,fast,pred,cycles\n16,yes,bimodal\n"))         // short row
	f.Add([]byte("wrong,header,entirely,cycles\n1,yes,bimodal,1\n")) // bad header
	f.Add([]byte("size,fast,pred,cycles\n\"unterminated,yes,b,1\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCSV(bytes.NewReader(data), schema)
		if err != nil {
			return // rejected input: only requirement is no panic
		}
		// Accepted input must round-trip through the writer.
		var out bytes.Buffer
		if err := got.WriteCSV(&out); err != nil {
			t.Fatalf("accepted dataset failed to write: %v\ninput: %q", err, data)
		}
		again, err := ReadCSV(bytes.NewReader(out.Bytes()), schema)
		if err != nil {
			// The writer renders flags as yes/no and floats with %g; its
			// own output must always parse.
			t.Fatalf("rewritten CSV rejected: %v\nrewritten: %q", err, out.String())
		}
		if again.Len() != got.Len() {
			t.Fatalf("round trip changed length: %d → %d", got.Len(), again.Len())
		}
		for i := 0; i < got.Len(); i++ {
			if got.Target(i) != again.Target(i) && !(got.Target(i) != got.Target(i)) {
				t.Fatalf("row %d target changed: %v → %v", i, got.Target(i), again.Target(i))
			}
			a, b := got.Row(i), again.Row(i)
			for j := range a {
				if a[j].String() != b[j].String() {
					t.Fatalf("row %d field %d changed: %q → %q", i, j, a[j].String(), b[j].String())
				}
			}
		}
	})
}

// FuzzReadCSVTargetOnly drills the numeric edge: scientific notation,
// huge exponents and signs in the target column must parse or reject
// cleanly, never corrupt.
func FuzzReadCSVTargetOnly(f *testing.F) {
	schema, err := fuzzSchema()
	if err != nil {
		f.Fatal(err)
	}
	f.Add("1e308")
	f.Add("-0")
	f.Add("0x1p-2")
	f.Add("1_000")
	f.Add("Inf")
	f.Fuzz(func(t *testing.T, target string) {
		if strings.ContainsAny(target, "\"\r\n,") {
			return // would change the CSV shape, covered by FuzzReadCSV
		}
		csv := "size,fast,pred,cycles\n1,yes,b," + target + "\n"
		d, err := ReadCSV(strings.NewReader(csv), schema)
		if err != nil {
			return
		}
		if d.Len() != 1 {
			t.Fatalf("parsed %d rows, want 1", d.Len())
		}
	})
}
