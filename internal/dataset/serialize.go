package dataset

import (
	"encoding/json"
	"fmt"
)

// Serialized forms, versioned so saved models stay loadable.

type fieldState struct {
	Name          string             `json:"name"`
	Kind          FieldKind          `json:"kind"`
	NumericLevels map[string]float64 `json:"numeric_levels,omitempty"`
}

type schemaState struct {
	Target string       `json:"target"`
	Fields []fieldState `json:"fields"`
}

type columnState struct {
	Field    int     `json:"field"`
	Name     string  `json:"name"`
	Category string  `json:"category,omitempty"`
	OneHot   bool    `json:"one_hot,omitempty"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
}

type encoderState struct {
	Version int               `json:"version"`
	Mode    Mode              `json:"mode"`
	Schema  schemaState       `json:"schema"`
	Cols    []columnState     `json:"cols"`
	Omitted map[string]string `json:"omitted,omitempty"`
	YMin    float64           `json:"y_min"`
	YMax    float64           `json:"y_max"`
	ScaleY  bool              `json:"scale_y"`
}

const encoderVersion = 1

// MarshalJSON serializes the fitted encoder, including its schema, so a
// trained predictor can be persisted and later score raw records again.
func (e *Encoder) MarshalJSON() ([]byte, error) {
	st := encoderState{
		Version: encoderVersion,
		Mode:    e.mode,
		Schema:  schemaState{Target: e.schema.Target},
		Omitted: e.omitted,
		YMin:    e.yMin,
		YMax:    e.yMax,
		ScaleY:  e.scaleY,
	}
	for _, f := range e.schema.Fields {
		st.Schema.Fields = append(st.Schema.Fields, fieldState{
			Name: f.Name, Kind: f.Kind, NumericLevels: f.NumericLevels,
		})
	}
	for _, c := range e.cols {
		st.Cols = append(st.Cols, columnState{
			Field: c.field, Name: c.name, Category: c.category,
			OneHot: c.oneHot, Min: c.min, Max: c.max,
		})
	}
	return json.Marshal(st)
}

// UnmarshalEncoder restores an encoder serialized by MarshalJSON.
func UnmarshalEncoder(data []byte) (*Encoder, error) {
	var st encoderState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("dataset: decoding encoder: %w", err)
	}
	if st.Version != encoderVersion {
		return nil, fmt.Errorf("dataset: unsupported encoder version %d", st.Version)
	}
	fields := make([]Field, len(st.Schema.Fields))
	for i, f := range st.Schema.Fields {
		if f.Kind != Numeric && f.Kind != Flag && f.Kind != Categorical {
			return nil, fmt.Errorf("dataset: field %q has invalid kind %d", f.Name, f.Kind)
		}
		fields[i] = Field{Name: f.Name, Kind: f.Kind, NumericLevels: f.NumericLevels}
	}
	schema, err := NewSchema(st.Schema.Target, fields...)
	if err != nil {
		return nil, err
	}
	e := &Encoder{
		schema:  schema,
		mode:    st.Mode,
		omitted: st.Omitted,
		yMin:    st.YMin,
		yMax:    st.YMax,
		scaleY:  st.ScaleY,
	}
	if e.omitted == nil {
		e.omitted = map[string]string{}
	}
	for _, c := range st.Cols {
		if c.Field < 0 || c.Field >= len(fields) {
			return nil, fmt.Errorf("dataset: column %q references field %d of %d", c.Name, c.Field, len(fields))
		}
		if !c.OneHot && c.Min == c.Max {
			return nil, fmt.Errorf("dataset: column %q has a degenerate scaling range", c.Name)
		}
		e.cols = append(e.cols, column{
			field: c.Field, name: c.Name, category: c.Category,
			oneHot: c.OneHot, min: c.Min, max: c.Max,
		})
	}
	if len(e.cols) == 0 {
		return nil, fmt.Errorf("dataset: encoder has no columns")
	}
	if e.scaleY && e.yMin == e.yMax {
		return nil, fmt.Errorf("dataset: encoder has a degenerate target range")
	}
	return e, nil
}
