// Package dataset implements the data-preparation layer of the framework
// (paper §3.4). It mirrors the documented behaviour of the SPSS Clementine
// pipeline the paper used:
//
//   - every input is scaled to the 0–1 range before modeling,
//   - neural networks accept numeric, flag and categorical ("set") fields —
//     categoricals are one-hot encoded,
//   - linear regression accepts only numeric inputs — categorical fields
//     with a declared numeric mapping are coerced, the rest are omitted,
//   - fields with no variation in the training data are dropped.
//
// A Dataset is a typed table of records plus a numeric target (cycles for
// the simulation study, the SPEC rating for the chronological study). An
// Encoder is fitted on training data and can then transform any dataset
// with the same schema, which is what keeps train/test encodings coherent.
package dataset

import (
	"errors"
	"fmt"
	"math/rand"
)

// FieldKind describes how a field's values are typed, following the
// Clementine field model.
type FieldKind int

const (
	// Numeric fields hold continuous or ordered numeric values.
	Numeric FieldKind = iota
	// Flag fields hold booleans (Clementine "flag", e.g. SMT yes/no).
	Flag
	// Categorical fields hold unordered symbolic values (Clementine "set",
	// e.g. the branch-predictor kind or the hard-drive type).
	Categorical
)

// String returns the field kind name.
func (k FieldKind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Flag:
		return "flag"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("FieldKind(%d)", int(k))
	}
}

// Field describes one input parameter of a record.
type Field struct {
	Name string
	Kind FieldKind
	// NumericLevels optionally maps category labels of a Categorical field
	// to numbers, making the field usable by linear regression (paper §3.4:
	// "some of the inputs ... need to be mapped to numeric values").
	// Categorical fields without such a mapping are omitted from LR inputs.
	NumericLevels map[string]float64
}

// Schema lists the input fields of a dataset, in column order, and names
// the output measure.
type Schema struct {
	Fields []Field
	// Target names the response variable (e.g. "cycles" or "SPECint_rate").
	Target string
}

// NewSchema returns a schema over the given fields. Field names must be
// unique and non-empty.
func NewSchema(target string, fields ...Field) (*Schema, error) {
	if target == "" {
		return nil, errors.New("dataset: empty target name")
	}
	seen := map[string]bool{}
	for _, f := range fields {
		if f.Name == "" {
			return nil, errors.New("dataset: empty field name")
		}
		if seen[f.Name] {
			return nil, fmt.Errorf("dataset: duplicate field %q", f.Name)
		}
		seen[f.Name] = true
	}
	cp := append([]Field(nil), fields...)
	return &Schema{Fields: cp, Target: target}, nil
}

// FieldIndex returns the column index of the named field, or -1.
func (s *Schema) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Value is a tagged union holding one cell of a record.
type Value struct {
	kind FieldKind
	num  float64
	str  string
	flag bool
}

// Num returns a numeric value.
func Num(x float64) Value { return Value{kind: Numeric, num: x} }

// FlagVal returns a flag value.
func FlagVal(b bool) Value { return Value{kind: Flag, flag: b} }

// Cat returns a categorical value.
func Cat(s string) Value { return Value{kind: Categorical, str: s} }

// Kind returns the value's kind.
func (v Value) Kind() FieldKind { return v.kind }

// Float returns the numeric payload; valid only for Numeric values.
func (v Value) Float() float64 { return v.num }

// Bool returns the flag payload; valid only for Flag values.
func (v Value) Bool() bool { return v.flag }

// Label returns the category label; valid only for Categorical values.
func (v Value) Label() string { return v.str }

// String renders the value for CSV export and debugging.
func (v Value) String() string {
	switch v.kind {
	case Numeric:
		return fmt.Sprintf("%g", v.num)
	case Flag:
		if v.flag {
			return "yes"
		}
		return "no"
	case Categorical:
		return v.str
	default:
		return "?"
	}
}

// Dataset is a typed table of records with a numeric target per record.
type Dataset struct {
	schema  *Schema
	rows    [][]Value
	targets []float64
}

// New returns an empty dataset over the schema.
func New(schema *Schema) *Dataset {
	return &Dataset{schema: schema}
}

// Schema returns the dataset's schema.
func (d *Dataset) Schema() *Schema { return d.schema }

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.rows) }

// Append adds one record. The row must match the schema's arity and kinds.
func (d *Dataset) Append(row []Value, target float64) error {
	if len(row) != len(d.schema.Fields) {
		return fmt.Errorf("dataset: row has %d values, schema has %d fields", len(row), len(d.schema.Fields))
	}
	for i, v := range row {
		if v.kind != d.schema.Fields[i].Kind {
			return fmt.Errorf("dataset: field %q: value kind %v does not match schema kind %v",
				d.schema.Fields[i].Name, v.kind, d.schema.Fields[i].Kind)
		}
	}
	d.rows = append(d.rows, append([]Value(nil), row...))
	d.targets = append(d.targets, target)
	return nil
}

// Row returns the i-th record (not a copy; treat as read-only).
func (d *Dataset) Row(i int) []Value { return d.rows[i] }

// Target returns the i-th record's target value.
func (d *Dataset) Target(i int) float64 { return d.targets[i] }

// Targets returns a copy of all target values.
func (d *Dataset) Targets() []float64 {
	return append([]float64(nil), d.targets...)
}

// Subset returns a new dataset with the records at the given indices, in
// that order. Rows are shared, not copied.
func (d *Dataset) Subset(idx []int) (*Dataset, error) {
	out := New(d.schema)
	out.rows = make([][]Value, 0, len(idx))
	out.targets = make([]float64, 0, len(idx))
	for _, i := range idx {
		if i < 0 || i >= len(d.rows) {
			return nil, fmt.Errorf("dataset: subset index %d out of range [0,%d)", i, len(d.rows))
		}
		out.rows = append(out.rows, d.rows[i])
		out.targets = append(out.targets, d.targets[i])
	}
	return out, nil
}

// SampleFraction returns a random sample containing ceil(frac*n) records
// (at least 1 when the dataset is non-empty) and the indices it chose.
// This is the paper's "randomly sampling 1% to 5% of the data" step.
func (d *Dataset) SampleFraction(r *rand.Rand, frac float64) (*Dataset, []int, error) {
	if frac <= 0 || frac > 1 {
		return nil, nil, fmt.Errorf("dataset: sample fraction %v out of (0,1]", frac)
	}
	n := d.Len()
	if n == 0 {
		return nil, nil, errors.New("dataset: sampling from empty dataset")
	}
	k := int(float64(n)*frac + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	idx := r.Perm(n)[:k]
	sub, err := d.Subset(idx)
	return sub, idx, err
}

// Complement returns the records NOT at the given indices, in original
// dataset order, plus their indices. Rows are shared, not copied. It is
// the counterpart of SampleFraction: the sample's complement is the
// unlabeled pool an active-learning loop draws from. Out-of-range
// indices are rejected; duplicates in idx are tolerated (each row is
// excluded at most once).
func (d *Dataset) Complement(idx []int) (*Dataset, []int, error) {
	n := d.Len()
	taken := make([]bool, n)
	for _, i := range idx {
		if i < 0 || i >= n {
			return nil, nil, fmt.Errorf("dataset: complement index %d out of range [0,%d)", i, n)
		}
		taken[i] = true
	}
	rest := make([]int, 0, n-len(idx))
	for i := 0; i < n; i++ {
		if !taken[i] {
			rest = append(rest, i)
		}
	}
	sub, err := d.Subset(rest)
	if err != nil {
		return nil, nil, err
	}
	return sub, rest, nil
}

// SplitHalf randomly partitions the dataset into two halves (sizes n/2 and
// n-n/2). Clementine's model-building step "randomly divides the training
// data into two equal sets, using half of the data to train the model and
// the other half to simulate" (paper §3.3).
func (d *Dataset) SplitHalf(r *rand.Rand) (train, test *Dataset, err error) {
	n := d.Len()
	if n < 2 {
		return nil, nil, errors.New("dataset: need at least 2 records to split")
	}
	p := r.Perm(n)
	h := n / 2
	train, err = d.Subset(p[:h])
	if err != nil {
		return nil, nil, err
	}
	test, err = d.Subset(p[h:])
	return train, test, err
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := New(d.schema)
	out.rows = make([][]Value, len(d.rows))
	for i, r := range d.rows {
		out.rows[i] = append([]Value(nil), r...)
	}
	out.targets = append([]float64(nil), d.targets...)
	return out
}
