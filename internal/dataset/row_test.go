package dataset

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func rowTestSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("perf",
		Field{Name: "freq", Kind: Numeric},
		Field{Name: "l2", Kind: Flag},
		Field{Name: "family", Kind: Categorical},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRowFromAnyValid(t *testing.T) {
	s := rowTestSchema(t)
	row, err := s.RowFromAny([]any{3000.0, true, "Xeon"})
	if err != nil {
		t.Fatal(err)
	}
	if got := row[0].Float(); got != 3000 {
		t.Errorf("numeric = %v, want 3000", got)
	}
	if !row[1].Bool() {
		t.Error("flag = false, want true")
	}
	if got := row[2].Label(); got != "Xeon" {
		t.Errorf("categorical = %q, want Xeon", got)
	}
	// json.Number from a UseNumber decoder works the same.
	row, err = s.RowFromAny([]any{json.Number("2.5e3"), false, "Opteron"})
	if err != nil {
		t.Fatal(err)
	}
	if got := row[0].Float(); got != 2500 {
		t.Errorf("json.Number numeric = %v, want 2500", got)
	}
}

func TestRowFromAnyRejects(t *testing.T) {
	s := rowTestSchema(t)
	cases := []struct {
		name string
		vals []any
		want string
	}{
		{"short row", []any{3000.0, true}, "schema has 3 fields"},
		{"long row", []any{3000.0, true, "Xeon", 1.0}, "schema has 3 fields"},
		{"string for numeric", []any{"NaN", true, "Xeon"}, `field "freq"`},
		{"nan number", []any{math.NaN(), true, "Xeon"}, "non-finite"},
		{"inf number", []any{math.Inf(1), true, "Xeon"}, "non-finite"},
		{"overflowing literal", []any{json.Number("1e999"), true, "Xeon"}, "non-finite"},
		{"number for flag", []any{3000.0, 1.0, "Xeon"}, `field "l2"`},
		{"null for flag", []any{3000.0, nil, "Xeon"}, "null"},
		{"number for categorical", []any{3000.0, true, 7.0}, `field "family"`},
		{"empty category", []any{3000.0, true, ""}, "empty category"},
		{"huge category", []any{3000.0, true, strings.Repeat("x", MaxCategoryLen+1)}, "longer than"},
		{"nested array", []any{[]any{1.0}, true, "Xeon"}, "an array"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.RowFromAny(tc.vals)
			if err == nil {
				t.Fatalf("RowFromAny(%v) accepted, want error containing %q", tc.vals, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}
