package dataset

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"perfpred/internal/stat"
)

// FieldSummary profiles one field of a dataset.
type FieldSummary struct {
	Name string
	Kind FieldKind
	// Numeric fields: observed range and mean.
	Min, Max, Mean float64
	// Distinct is the number of distinct values observed (numeric levels,
	// flag states or category labels).
	Distinct int
	// TrueFrac is the fraction of true values (flags only).
	TrueFrac float64
	// Categories lists the observed labels (categorical only), sorted.
	Categories []string
}

// Description profiles a whole dataset: every field plus the target.
type Description struct {
	Records int
	Fields  []FieldSummary
	// Target statistics.
	TargetName               string
	TargetMin, TargetMax     float64
	TargetMean, TargetStdDev float64
	// TargetRange is max/min (0 when undefined), the paper's §4.1 spread
	// statistic.
	TargetRange float64
}

// Describe profiles the dataset.
func Describe(d *Dataset) (*Description, error) {
	if d == nil || d.Len() == 0 {
		return nil, errors.New("dataset: nothing to describe")
	}
	s := d.Schema()
	desc := &Description{Records: d.Len(), TargetName: s.Target}
	for fi, f := range s.Fields {
		fs := FieldSummary{Name: f.Name, Kind: f.Kind}
		switch f.Kind {
		case Numeric:
			seen := map[float64]bool{}
			sum := 0.0
			for i := 0; i < d.Len(); i++ {
				x := d.Row(i)[fi].Float()
				if i == 0 || x < fs.Min {
					fs.Min = x
				}
				if i == 0 || x > fs.Max {
					fs.Max = x
				}
				sum += x
				seen[x] = true
			}
			fs.Mean = sum / float64(d.Len())
			fs.Distinct = len(seen)
		case Flag:
			trues := 0
			for i := 0; i < d.Len(); i++ {
				if d.Row(i)[fi].Bool() {
					trues++
				}
			}
			fs.TrueFrac = float64(trues) / float64(d.Len())
			fs.Distinct = 1
			if trues > 0 && trues < d.Len() {
				fs.Distinct = 2
			}
		case Categorical:
			seen := map[string]bool{}
			for i := 0; i < d.Len(); i++ {
				seen[d.Row(i)[fi].Label()] = true
			}
			for c := range seen {
				fs.Categories = append(fs.Categories, c)
			}
			sort.Strings(fs.Categories)
			fs.Distinct = len(fs.Categories)
		}
		desc.Fields = append(desc.Fields, fs)
	}
	ys := d.Targets()
	lo, _ := stat.Min(ys)
	hi, _ := stat.Max(ys)
	desc.TargetMin, desc.TargetMax = lo, hi
	desc.TargetMean = stat.Mean(ys)
	desc.TargetStdDev = stat.StdDev(ys)
	if lo > 0 {
		desc.TargetRange = hi / lo
	}
	return desc, nil
}

// WriteText renders the description as a table.
func (d *Description) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%d records; target %s: min %.4g max %.4g mean %.4g stddev %.4g",
		d.Records, d.TargetName, d.TargetMin, d.TargetMax, d.TargetMean, d.TargetStdDev)
	if d.TargetRange > 0 {
		fmt.Fprintf(tw, " range %.2f", d.TargetRange)
	}
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "field\tkind\tdistinct\tdetail")
	for _, f := range d.Fields {
		switch f.Kind {
		case Numeric:
			fmt.Fprintf(tw, "%s\t%v\t%d\tmin %.4g max %.4g mean %.4g\n",
				f.Name, f.Kind, f.Distinct, f.Min, f.Max, f.Mean)
		case Flag:
			fmt.Fprintf(tw, "%s\t%v\t%d\t%.0f%% true\n", f.Name, f.Kind, f.Distinct, 100*f.TrueFrac)
		case Categorical:
			detail := ""
			for i, c := range f.Categories {
				if i > 0 {
					detail += ", "
				}
				if i == 6 {
					detail += "…"
					break
				}
				detail += c
			}
			fmt.Fprintf(tw, "%s\t%v\t%d\t%s\n", f.Name, f.Kind, f.Distinct, detail)
		}
	}
	return tw.Flush()
}
