package dataset

import (
	"math"
	"testing"
)

// encSchema: numeric clock, flag smt, categorical bpred with numeric levels,
// categorical disk without levels, numeric constant.
func encSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("perf",
		Field{Name: "clock", Kind: Numeric},
		Field{Name: "smt", Kind: Flag},
		Field{Name: "bpred", Kind: Categorical, NumericLevels: map[string]float64{
			"bimodal": 1, "2level": 2, "comb": 3,
		}},
		Field{Name: "disk", Kind: Categorical},
		Field{Name: "l2lat", Kind: Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func encData(t *testing.T) *Dataset {
	t.Helper()
	d := New(encSchema(t))
	rows := []struct {
		clock float64
		smt   bool
		bpred string
		disk  string
		y     float64
	}{
		{1000, true, "bimodal", "scsi", 10},
		{2000, false, "2level", "sata", 20},
		{3000, true, "comb", "scsi", 30},
		{4000, false, "bimodal", "sata", 40},
	}
	for _, r := range rows {
		err := d.Append([]Value{Num(r.clock), FlagVal(r.smt), Cat(r.bpred), Cat(r.disk), Num(12)}, r.y)
		if err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestFitEncoderNNColumns(t *testing.T) {
	e, err := FitEncoder(encData(t), ForNN)
	if err != nil {
		t.Fatal(err)
	}
	// clock, smt, bpred one-hot ×3, disk one-hot ×2; l2lat constant → omitted.
	want := []string{"clock", "smt", "bpred=2level", "bpred=bimodal", "bpred=comb", "disk=sata", "disk=scsi"}
	got := e.ColumnNames()
	if len(got) != len(want) {
		t.Fatalf("columns = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("columns = %v, want %v", got, want)
		}
	}
	if reason, ok := e.Omitted()["l2lat"]; !ok || reason == "" {
		t.Fatal("constant l2lat should be omitted with a reason")
	}
}

func TestFitEncoderLRColumns(t *testing.T) {
	e, err := FitEncoder(encData(t), ForLR)
	if err != nil {
		t.Fatal(err)
	}
	// LR keeps clock, smt, mapped bpred; drops unmapped disk and constant l2lat.
	want := []string{"clock", "smt", "bpred"}
	got := e.ColumnNames()
	if len(got) != len(want) {
		t.Fatalf("columns = %v, want %v", got, want)
	}
	om := e.Omitted()
	if _, ok := om["disk"]; !ok {
		t.Fatal("unmapped categorical should be omitted for LR")
	}
}

func TestEncodeRowNNScaling(t *testing.T) {
	d := encData(t)
	e, err := FitEncoder(d, ForNN)
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.EncodeRow(d.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	// clock 1000 scales to 0 over [1000,4000]; smt=true → 1;
	// bpred=bimodal → one-hot (0,1,0); disk=scsi → (0,1).
	want := []float64{0, 1, 0, 1, 0, 0, 1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
	x3, _ := e.EncodeRow(d.Row(3))
	if x3[0] != 1 {
		t.Fatalf("clock 4000 should scale to 1, got %v", x3[0])
	}
}

func TestEncodeRowLRMapping(t *testing.T) {
	d := encData(t)
	e, err := FitEncoder(d, ForLR)
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.EncodeRow(d.Row(2)) // comb → mapped 3, range [1,3] → 1
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[2]-1) > 1e-12 {
		t.Fatalf("mapped bpred = %v, want 1", x[2])
	}
}

func TestEncodeRowExtrapolatesOutsideTrainingRange(t *testing.T) {
	d := encData(t)
	e, err := FitEncoder(d, ForNN)
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.EncodeRow([]Value{Num(5500), FlagVal(false), Cat("comb"), Cat("scsi"), Num(12)})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] <= 1 {
		t.Fatalf("5500 MHz should scale beyond 1 (extrapolation), got %v", x[0])
	}
}

func TestEncodeRowUnseenCategoryOneHotAllZero(t *testing.T) {
	d := encData(t)
	e, err := FitEncoder(d, ForNN)
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.EncodeRow([]Value{Num(2000), FlagVal(false), Cat("perfect"), Cat("scsi"), Num(12)})
	if err != nil {
		t.Fatal(err)
	}
	// Unseen bpred category → all three one-hot columns zero.
	if x[2] != 0 || x[3] != 0 || x[4] != 0 {
		t.Fatalf("unseen category should encode to zeros, got %v", x[2:5])
	}
}

func TestEncodeRowUnmappedCategoryLRIsError(t *testing.T) {
	d := encData(t)
	e, err := FitEncoder(d, ForLR)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.EncodeRow([]Value{Num(2000), FlagVal(false), Cat("perfect"), Cat("scsi"), Num(12)})
	if err == nil {
		t.Fatal("LR encoding of unmapped category: want error")
	}
}

func TestTargetScalingRoundTrip(t *testing.T) {
	d := encData(t)
	e, err := FitEncoder(d, ForNN)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range []float64{10, 25, 40, 55} {
		got := e.UnscaleTarget(e.ScaleTarget(y))
		if math.Abs(got-y) > 1e-9 {
			t.Fatalf("round trip %v → %v", y, got)
		}
	}
	if e.ScaleTarget(10) != 0 || e.ScaleTarget(40) != 1 {
		t.Fatal("target min/max should scale to 0/1")
	}
}

func TestLRTargetNotScaled(t *testing.T) {
	d := encData(t)
	e, err := FitEncoder(d, ForLR)
	if err != nil {
		t.Fatal(err)
	}
	if e.ScaleTarget(25) != 25 || e.UnscaleTarget(25) != 25 {
		t.Fatal("LR mode must leave the target in original units")
	}
}

func TestTransformShapes(t *testing.T) {
	d := encData(t)
	e, err := FitEncoder(d, ForNN)
	if err != nil {
		t.Fatal(err)
	}
	x, y, err := e.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 4 || len(y) != 4 || len(x[0]) != e.NumColumns() {
		t.Fatalf("shapes: %dx%d, y %d", len(x), len(x[0]), len(y))
	}
}

func TestSourceField(t *testing.T) {
	d := encData(t)
	e, err := FitEncoder(d, ForNN)
	if err != nil {
		t.Fatal(err)
	}
	// Columns 2,3,4 all derive from bpred.
	for c := 2; c <= 4; c++ {
		if e.SourceField(c) != "bpred" {
			t.Fatalf("SourceField(%d) = %q", c, e.SourceField(c))
		}
	}
}

func TestFitEncoderErrors(t *testing.T) {
	if _, err := FitEncoder(New(encSchema(t)), ForNN); err == nil {
		t.Fatal("empty dataset: want error")
	}
	// All-constant inputs → no usable fields.
	s, err := NewSchema("y", Field{Name: "k", Kind: Numeric})
	if err != nil {
		t.Fatal(err)
	}
	d := New(s)
	for i := 0; i < 3; i++ {
		if err := d.Append([]Value{Num(7)}, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := FitEncoder(d, ForNN); err == nil {
		t.Fatal("all-constant inputs: want error")
	}
	// Constant target under NN scaling.
	s2, _ := NewSchema("y", Field{Name: "x", Kind: Numeric})
	d2 := New(s2)
	for i := 0; i < 3; i++ {
		if err := d2.Append([]Value{Num(float64(i))}, 5); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := FitEncoder(d2, ForNN); err == nil {
		t.Fatal("constant target under NN: want error")
	}
}

func TestEncodeRowArityError(t *testing.T) {
	d := encData(t)
	e, err := FitEncoder(d, ForNN)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EncodeRow([]Value{Num(1)}); err == nil {
		t.Fatal("short row: want error")
	}
}
