package dataset

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// MaxCategoryLen bounds the length of a categorical label accepted from
// untrusted input (serving requests); schema labels are all far shorter.
const MaxCategoryLen = 256

// RowFromAny validates one decoded JSON feature vector against the
// schema and converts it into a record row. vals must list one value per
// schema field, in field order: JSON numbers (float64 or json.Number)
// for numeric fields, booleans for flags, strings for categoricals.
// Non-finite numbers (NaN, ±Inf — including overflowing json.Number
// literals like 1e999) and type mismatches are rejected with an error
// naming the offending field, so serving decoders can surface precise
// 400s. It is the request-row validation behind the /v1/predict decoder.
func (s *Schema) RowFromAny(vals []any) ([]Value, error) {
	if len(vals) != len(s.Fields) {
		return nil, fmt.Errorf("dataset: row has %d values, schema has %d fields", len(vals), len(s.Fields))
	}
	row := make([]Value, len(vals))
	for i, f := range s.Fields {
		v := vals[i]
		switch f.Kind {
		case Numeric:
			x, err := numberFromAny(v)
			if err != nil {
				return nil, fmt.Errorf("dataset: field %q: %w", f.Name, err)
			}
			row[i] = Num(x)
		case Flag:
			b, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("dataset: field %q: want a boolean, got %s", f.Name, jsonKind(v))
			}
			row[i] = FlagVal(b)
		case Categorical:
			str, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("dataset: field %q: want a string, got %s", f.Name, jsonKind(v))
			}
			if str == "" {
				return nil, fmt.Errorf("dataset: field %q: empty category", f.Name)
			}
			if len(str) > MaxCategoryLen {
				return nil, fmt.Errorf("dataset: field %q: category longer than %d bytes", f.Name, MaxCategoryLen)
			}
			row[i] = Cat(str)
		default:
			return nil, fmt.Errorf("dataset: field %q has unknown kind %v", f.Name, f.Kind)
		}
	}
	return row, nil
}

// numberFromAny extracts a finite float64 from a decoded JSON value
// (plain float64 or a decoder's json.Number).
func numberFromAny(v any) (float64, error) {
	switch x := v.(type) {
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, fmt.Errorf("non-finite number %v", x)
		}
		return x, nil
	case json.Number:
		f, err := strconv.ParseFloat(x.String(), 64)
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, fmt.Errorf("non-finite or unparseable number %q", x.String())
		}
		return f, nil
	default:
		return 0, fmt.Errorf("want a number, got %s", jsonKind(v))
	}
}

// jsonKind names a decoded JSON value's type for error messages.
func jsonKind(v any) string {
	switch v.(type) {
	case nil:
		return "null"
	case bool:
		return "a boolean"
	case float64, json.Number:
		return "a number"
	case string:
		return "a string"
	case []any:
		return "an array"
	case map[string]any:
		return "an object"
	default:
		return fmt.Sprintf("%T", v)
	}
}
