package linreg

import (
	"encoding/json"
	"testing"
)

func TestModelSerializeRoundTrip(t *testing.T) {
	x, y := synth(31, 150, 0.05)
	for _, method := range Methods() {
		m, err := Fit(x, y, []string{"a", "b", "c", "d"}, Options{Method: method})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalModel(data)
		if err != nil {
			t.Fatal(err)
		}
		if back.Method() != method || back.NumSelected() != m.NumSelected() {
			t.Fatalf("%v: meta mismatch", method)
		}
		for i := 0; i < 20; i++ {
			if back.Predict(x[i]) != m.Predict(x[i]) {
				t.Fatalf("%v: predictions diverge at %d", method, i)
			}
		}
		if back.R2() != m.R2() || back.Intercept() != m.Intercept() {
			t.Fatalf("%v: summary stats differ", method)
		}
		ca, cb := m.Coefficients(), back.Coefficients()
		if len(ca) != len(cb) {
			t.Fatalf("%v: coefficient tables differ", method)
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("%v: coefficient %d differs", method, i)
			}
		}
	}
}

func TestUnmarshalModelRejectsBadInput(t *testing.T) {
	cases := []string{
		`garbage`,
		`{"version":9}`,
		`{"version":1,"names":["a"],"coef":[1,2]}`,
		`{"version":1,"names":["a"],"coef":[1],"selected":[3]}`,
	}
	for i, c := range cases {
		if _, err := UnmarshalModel([]byte(c)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}
