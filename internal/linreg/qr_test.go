package linreg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveLSExact(t *testing.T) {
	// y = 2 + 3a - b, exactly determined.
	x := [][]float64{
		{1, 0, 0},
		{1, 1, 0},
		{1, 0, 1},
		{1, 2, 3},
	}
	y := []float64{2, 5, 1, 5}
	res, err := solveLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for j := range want {
		if math.Abs(res.beta[j]-want[j]) > 1e-9 {
			t.Fatalf("beta = %v, want %v", res.beta, want)
		}
	}
	if res.rss > 1e-18 {
		t.Fatalf("rss = %v, want ~0", res.rss)
	}
	if res.rank != 3 {
		t.Fatalf("rank = %d", res.rank)
	}
}

func TestSolveLSOverdetermined(t *testing.T) {
	// Simple regression with known closed form.
	x := [][]float64{{1, 1}, {1, 2}, {1, 3}, {1, 4}}
	y := []float64{6, 5, 7, 10}
	res, err := solveLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Closed form: slope = 1.4, intercept = 3.5 (classic textbook data).
	if math.Abs(res.beta[0]-3.5) > 1e-9 || math.Abs(res.beta[1]-1.4) > 1e-9 {
		t.Fatalf("beta = %v", res.beta)
	}
	// RSS = Σ(y - ŷ)².
	wantRSS := 0.0
	for i := range y {
		d := y[i] - (3.5 + 1.4*float64(i+1))
		wantRSS += d * d
	}
	if math.Abs(res.rss-wantRSS) > 1e-9 {
		t.Fatalf("rss = %v, want %v", res.rss, wantRSS)
	}
}

func TestSolveLSRankDeficient(t *testing.T) {
	// Third column is the sum of the first two: rank 2.
	x := [][]float64{
		{1, 1, 2},
		{1, 2, 3},
		{1, 3, 4},
		{1, 4, 5},
	}
	y := []float64{1, 2, 3, 4}
	res, err := solveLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.rank != 2 {
		t.Fatalf("rank = %d, want 2", res.rank)
	}
	// The fit must still reproduce y (it lies in the column space).
	for i := range x {
		yhat := 0.0
		for j := range res.beta {
			yhat += res.beta[j] * x[i][j]
		}
		if math.Abs(yhat-y[i]) > 1e-9 {
			t.Fatalf("row %d: yhat %v want %v", i, yhat, y[i])
		}
	}
}

func TestSolveLSErrors(t *testing.T) {
	if _, err := solveLS(nil, nil); err == nil {
		t.Fatal("empty: want error")
	}
	if _, err := solveLS([][]float64{{}}, []float64{1}); err == nil {
		t.Fatal("zero columns: want error")
	}
	if _, err := solveLS([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch: want error")
	}
	if _, err := solveLS([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged: want error")
	}
}

func TestSolveLSInvDiag(t *testing.T) {
	// For the simple model above, (XᵀX)⁻¹ has a known closed form:
	// with x = 1..4: Sxx = 5, diag = [ (1/n + x̄²/Sxx), 1/Sxx ].
	x := [][]float64{{1, 1}, {1, 2}, {1, 3}, {1, 4}}
	y := []float64{6, 5, 7, 10}
	res, err := solveLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	wantSlope := 1.0 / 5.0
	wantIcept := 0.25 + 2.5*2.5/5.0
	if math.Abs(res.invDiag[1]-wantSlope) > 1e-9 {
		t.Fatalf("invDiag slope = %v, want %v", res.invDiag[1], wantSlope)
	}
	if math.Abs(res.invDiag[0]-wantIcept) > 1e-9 {
		t.Fatalf("invDiag intercept = %v, want %v", res.invDiag[0], wantIcept)
	}
}

// Property: residual is orthogonal to every design column (normal equations).
func TestSolveLSNormalEquationsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m := 20, 4
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = make([]float64, m)
			x[i][0] = 1
			for j := 1; j < m; j++ {
				x[i][j] = r.NormFloat64()
			}
			y[i] = r.NormFloat64() * 3
		}
		res, err := solveLS(x, y)
		if err != nil {
			return false
		}
		for j := 0; j < m; j++ {
			dot := 0.0
			for i := 0; i < n; i++ {
				yhat := 0.0
				for k := 0; k < m; k++ {
					yhat += res.beta[k] * x[i][k]
				}
				dot += x[i][j] * (y[i] - yhat)
			}
			if math.Abs(dot) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInvertUpperIdentityCheck(t *testing.T) {
	// Factor a random full-rank matrix, then check R · R⁻¹ = I on the
	// triangular block produced by solveLS.
	r := rand.New(rand.NewSource(11))
	n, m := 8, 4
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = make([]float64, m)
		for j := range x[i] {
			x[i][j] = r.NormFloat64()
		}
		y[i] = r.NormFloat64()
	}
	res, err := solveLS(x, y)
	if err != nil || res.rank != m {
		t.Fatalf("rank = %d err %v", res.rank, err)
	}
	// invDiag must be positive and finite for a full-rank system.
	for j, v := range res.invDiag {
		if math.IsNaN(v) || v <= 0 {
			t.Fatalf("invDiag[%d] = %v", j, v)
		}
	}
}
