package linreg

import (
	"context"
	"encoding/json"
	"math"

	"perfpred/internal/dataset"
	"perfpred/internal/model"
)

// artifactTag is the versioned payload identifier of every linear-
// regression artifact. Bump the suffix on any incompatible change to the
// wire format so old payloads can never be decoded by new code.
const artifactTag = "linreg/v1"

// familyModel adapts *Model to the registry's model.Model contract.
type familyModel struct{ *Model }

// PredictAllInto scores every row; linear prediction needs no scratch.
func (f familyModel) PredictAllInto(dst []float64, x [][]float64, _ model.Scratch) {
	for i, row := range x {
		dst[i] = f.Predict(row)
	}
}

// Importance reports each column's absolute standardized beta (paper
// §4.4); columns the selection method dropped score zero.
func (f familyModel) Importance([][]float64) ([]float64, error) {
	imp := make([]float64, len(f.coef))
	for si, j := range f.selected {
		imp[j] = math.Abs(f.coeffs[si].StdBeta)
	}
	return imp, nil
}

// SelectedColumns returns the design columns the selection method kept.
func (f familyModel) SelectedColumns() []int {
	return append([]int(nil), f.selected...)
}

// Marshal serializes the model payload (the family tag travels in the
// enclosing artifact, not here).
func (f familyModel) Marshal() ([]byte, error) { return json.Marshal(f.Model) }

// kindOf pins each selection method to its registry kind. The numbers are
// part of the artifact format and can never change.
func kindOf(m Method) model.Kind {
	switch m {
	case Enter:
		return model.LRE
	case Stepwise:
		return model.LRS
	case Backward:
		return model.LRB
	case Forward:
		return model.LRF
	}
	panic("linreg: method without a registry kind")
}

func init() {
	for _, m := range Methods() {
		m := m
		model.Register(kindOf(m), model.Family{
			Name: m.String(),
			Tag:  artifactTag,
			Mode: dataset.ForLR,
			Fit: func(ctx context.Context, x [][]float64, y []float64, names []string, _ model.FitConfig) (model.Model, error) {
				// The least-squares fits are deterministic and fast; honoring
				// cancellation at entry is enough.
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				fitted, err := Fit(x, y, names, Options{Method: m})
				if err != nil {
					return nil, err
				}
				return familyModel{fitted}, nil
			},
			NewScratch: func() model.Scratch { return nil },
			Unmarshal: func(data []byte) (model.Model, error) {
				fitted, err := UnmarshalModel(data)
				if err != nil {
					return nil, err
				}
				return familyModel{fitted}, nil
			},
		})
	}
}
