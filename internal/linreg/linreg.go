package linreg

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"perfpred/internal/stat"
)

// Method selects the Clementine variable-selection strategy.
type Method int

const (
	// Enter (LR-E) uses every predictor.
	Enter Method = iota
	// Forward (LR-F) starts empty and adds the most significant predictor
	// while its F-to-enter p-value is below PEnter.
	Forward
	// Backward (LR-B) starts full and removes the least significant
	// predictor while its F-to-remove p-value is above PRemove. The paper
	// found this the best LR method for the sampled design space.
	Backward
	// Stepwise (LR-S) alternates Forward additions with Backward removals.
	Stepwise
)

// String returns the paper's short name for the method.
func (m Method) String() string {
	switch m {
	case Enter:
		return "LR-E"
	case Forward:
		return "LR-F"
	case Backward:
		return "LR-B"
	case Stepwise:
		return "LR-S"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Methods lists all four selection methods in the paper's Figure 7/8 order.
func Methods() []Method { return []Method{Enter, Stepwise, Backward, Forward} }

// Options configures a fit.
type Options struct {
	Method Method
	// PEnter is the p-value threshold to admit a predictor (Forward,
	// Stepwise). Zero means the SPSS default 0.05.
	PEnter float64
	// PRemove is the p-value threshold to drop a predictor (Backward,
	// Stepwise). Zero means the SPSS default 0.10.
	PRemove float64
}

func (o Options) withDefaults() Options {
	if o.PEnter == 0 {
		o.PEnter = 0.05
	}
	if o.PRemove == 0 {
		o.PRemove = 0.10
	}
	return o
}

// Coefficient describes one fitted predictor.
type Coefficient struct {
	Name string
	// Beta is the raw coefficient in encoded-input units.
	Beta float64
	// StdBeta is the standardized coefficient (relative importance,
	// paper §4.4).
	StdBeta float64
	// StdErr is the coefficient's standard error (NaN when the residual
	// degrees of freedom are exhausted).
	StdErr float64
	// P is the two-sided p-value of the coefficient's t test (NaN when
	// undefined).
	P float64
}

// Model is a fitted linear-regression model.
type Model struct {
	opts      Options
	names     []string
	selected  []int // design-column indices included in the model
	intercept float64
	coef      []float64 // len = total columns; zero for unselected
	coeffs    []Coefficient
	rss       float64
	tss       float64
	n         int
	// inv is (XᵀX)⁻¹ in the fitted subset's basis ([1 | selected...]),
	// available for full-rank fits; prediction intervals use it.
	inv [][]float64
}

// Fit fits a linear regression of y on x using the configured selection
// method. names labels the columns of x (used in coefficient reports);
// pass nil to auto-name columns.
func Fit(x [][]float64, y []float64, names []string, opts Options) (*Model, error) {
	opts = opts.withDefaults()
	n := len(x)
	if n == 0 {
		return nil, errors.New("linreg: no observations")
	}
	p := len(x[0])
	if p == 0 {
		return nil, errors.New("linreg: no predictors")
	}
	if len(y) != n {
		return nil, errors.New("linreg: y length mismatch")
	}
	if names == nil {
		names = make([]string, p)
		for j := range names {
			names[j] = fmt.Sprintf("x%d", j)
		}
	}
	if len(names) != p {
		return nil, errors.New("linreg: names length mismatch")
	}
	if n < 3 {
		return nil, errors.New("linreg: need at least 3 observations")
	}

	m := &Model{opts: opts, names: names, n: n}
	ymean := stat.Mean(y)
	for _, yi := range y {
		d := yi - ymean
		m.tss += d * d
	}

	var selected []int
	var err error
	switch opts.Method {
	case Enter:
		selected = seqInts(p)
	case Forward:
		selected, err = selectForward(x, y, opts, false)
	case Stepwise:
		selected, err = selectForward(x, y, opts, true)
	case Backward:
		selected, err = selectBackward(x, y, opts)
	default:
		return nil, fmt.Errorf("linreg: unknown method %v", opts.Method)
	}
	if err != nil {
		return nil, err
	}
	if len(selected) == 0 {
		// No predictor clears the threshold: intercept-only model.
		m.intercept = ymean
		m.coef = make([]float64, p)
		m.rss = m.tss
		return m, nil
	}
	sort.Ints(selected)
	m.selected = selected

	res, err := fitSubset(x, y, selected)
	if err != nil {
		return nil, err
	}
	m.intercept = res.beta[0]
	m.coef = make([]float64, p)
	for si, j := range selected {
		m.coef[j] = res.beta[si+1]
	}
	m.rss = res.rss
	m.inv = res.inv

	// Coefficient table: standard errors, t tests, standardized betas.
	dfResid := n - len(selected) - 1
	var sigma2 float64
	if dfResid > 0 {
		sigma2 = res.rss / float64(dfResid)
	} else {
		sigma2 = math.NaN()
	}
	sy := stat.SampleStdDev(y)
	for si, j := range selected {
		col := make([]float64, n)
		for i := range x {
			col[i] = x[i][j]
		}
		sx := stat.SampleStdDev(col)
		c := Coefficient{Name: names[j], Beta: res.beta[si+1]}
		if sy > 0 {
			c.StdBeta = c.Beta * sx / sy
		}
		if !math.IsNaN(sigma2) && !math.IsNaN(res.invDiag[si+1]) {
			c.StdErr = math.Sqrt(sigma2 * res.invDiag[si+1])
			if c.StdErr > 0 {
				pv, perr := stat.TTestPValue(c.Beta/c.StdErr, float64(dfResid))
				if perr == nil {
					c.P = pv
				} else {
					c.P = math.NaN()
				}
			} else {
				c.P = math.NaN()
			}
		} else {
			c.StdErr = math.NaN()
			c.P = math.NaN()
		}
		m.coeffs = append(m.coeffs, c)
	}
	return m, nil
}

func seqInts(p int) []int {
	s := make([]int, p)
	for i := range s {
		s[i] = i
	}
	return s
}

// fitSubset solves least squares on [1 | x[:,subset]].
func fitSubset(x [][]float64, y []float64, subset []int) (*lsqResult, error) {
	n := len(x)
	design := make([][]float64, n)
	for i := range x {
		row := make([]float64, 1+len(subset))
		row[0] = 1
		for sj, j := range subset {
			row[sj+1] = x[i][j]
		}
		design[i] = row
	}
	return solveLS(design, y)
}

// rssOf returns the residual sum of squares of the subset model.
func rssOf(x [][]float64, y []float64, subset []int) (float64, error) {
	res, err := fitSubset(x, y, subset)
	if err != nil {
		return 0, err
	}
	return res.rss, nil
}

// partialFPValue returns the p-value of the partial F test comparing the
// full model (rssFull, pFull predictors) to the model with one fewer
// predictor (rssReduced).
func partialFPValue(rssReduced, rssFull float64, n, pFull int) float64 {
	dfResid := n - pFull - 1
	if dfResid <= 0 {
		return math.NaN()
	}
	num := rssReduced - rssFull
	if num < 0 {
		num = 0
	}
	den := rssFull / float64(dfResid)
	if den <= 0 {
		// A perfect fit: any added predictor is maximally significant.
		if num > 0 {
			return 0
		}
		return 1
	}
	f := num / den
	p, err := stat.FSurvival(f, 1, float64(dfResid))
	if err != nil {
		return math.NaN()
	}
	return p
}

// selectForward implements Forward selection; with stepwise=true it runs a
// Backward removal sweep after every addition (Stepwise).
func selectForward(x [][]float64, y []float64, opts Options, stepwise bool) ([]int, error) {
	n := len(x)
	p := len(x[0])
	inModel := make([]bool, p)
	var current []int
	rssCur, err := rssOf(x, y, nil)
	if err != nil {
		return nil, err
	}
	for len(current) < p {
		if n-(len(current)+1)-1 <= 0 {
			break // no residual degrees of freedom left for a test
		}
		bestJ, bestP, bestRSS := -1, math.Inf(1), 0.0
		for j := 0; j < p; j++ {
			if inModel[j] {
				continue
			}
			cand := append(append([]int(nil), current...), j)
			rss, err := rssOf(x, y, cand)
			if err != nil {
				return nil, err
			}
			pv := partialFPValue(rssCur, rss, n, len(cand))
			if math.IsNaN(pv) {
				continue
			}
			if pv < bestP || (pv == bestP && rss < bestRSS) {
				bestJ, bestP, bestRSS = j, pv, rss
			}
		}
		if bestJ < 0 || bestP > opts.PEnter {
			break
		}
		inModel[bestJ] = true
		current = append(current, bestJ)
		rssCur = bestRSS
		if stepwise {
			var err error
			current, rssCur, err = removeSweep(x, y, current, opts)
			if err != nil {
				return nil, err
			}
			for j := range inModel {
				inModel[j] = false
			}
			for _, j := range current {
				inModel[j] = true
			}
		}
	}
	return current, nil
}

// removeSweep repeatedly drops the least significant predictor whose
// F-to-remove p-value exceeds PRemove. Returns the surviving set and RSS.
func removeSweep(x [][]float64, y []float64, current []int, opts Options) ([]int, float64, error) {
	n := len(x)
	rssCur, err := rssOf(x, y, current)
	if err != nil {
		return nil, 0, err
	}
	for len(current) > 0 {
		worstI, worstP := -1, -1.0
		var worstRSS float64
		for i := range current {
			reduced := make([]int, 0, len(current)-1)
			reduced = append(reduced, current[:i]...)
			reduced = append(reduced, current[i+1:]...)
			rssRed, err := rssOf(x, y, reduced)
			if err != nil {
				return nil, 0, err
			}
			pv := partialFPValue(rssRed, rssCur, n, len(current))
			if math.IsNaN(pv) {
				// Degenerate d.f.: treat the predictor as removable so the
				// model shrinks to something testable.
				pv = 1
			}
			if pv > worstP {
				worstI, worstP, worstRSS = i, pv, rssRed
			}
		}
		if worstI < 0 || worstP < opts.PRemove {
			break
		}
		current = append(current[:worstI], current[worstI+1:]...)
		rssCur = worstRSS
	}
	return current, rssCur, nil
}

// selectBackward implements Backward elimination from the full model.
func selectBackward(x [][]float64, y []float64, opts Options) ([]int, error) {
	p := len(x[0])
	current := seqInts(p)
	out, _, err := removeSweep(x, y, current, opts)
	return out, err
}

// Predict returns the model's prediction for one encoded input row.
func (m *Model) Predict(x []float64) float64 {
	yhat := m.intercept
	for _, j := range m.selected {
		yhat += m.coef[j] * x[j]
	}
	return yhat
}

// PredictAll returns predictions for a batch of rows.
func (m *Model) PredictAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = m.Predict(row)
	}
	return out
}

// Intercept returns the fitted intercept β₀.
func (m *Model) Intercept() float64 { return m.intercept }

// NumInputs returns the width of the input rows the model expects —
// registry loaders use it to cross-check a deserialized model against
// its encoder.
func (m *Model) NumInputs() int { return len(m.coef) }

// Coefficients returns the fitted coefficient table (selected predictors
// only), in design-column order.
func (m *Model) Coefficients() []Coefficient {
	return append([]Coefficient(nil), m.coeffs...)
}

// SelectedNames returns the names of the predictors retained by the
// selection method.
func (m *Model) SelectedNames() []string {
	out := make([]string, len(m.selected))
	for i, j := range m.selected {
		out[i] = m.names[j]
	}
	return out
}

// NumSelected returns how many predictors the model retained.
func (m *Model) NumSelected() int { return len(m.selected) }

// RSS returns the residual sum of squares on the training data.
func (m *Model) RSS() float64 { return m.rss }

// R2 returns the coefficient of determination on the training data.
func (m *Model) R2() float64 {
	if m.tss == 0 {
		return 0
	}
	return 1 - m.rss/m.tss
}

// Method returns the selection method used.
func (m *Model) Method() Method { return m.opts.Method }
