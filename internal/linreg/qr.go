// Package linreg implements the paper's four linear-regression models
// (§3.1): multiple linear regression fitted by least squares, with the four
// SPSS Clementine variable-selection methods — Enter (LR-E, all
// predictors), Forwards (LR-F), Backwards (LR-B) and Stepwise (LR-S) —
// driven by partial F tests. Standardized beta coefficients quantify
// predictor importance as reported in the paper's §4.4.
package linreg

import (
	"errors"
	"math"
)

// lsqResult holds the output of one least-squares solve.
type lsqResult struct {
	beta []float64 // coefficient per design-matrix column (incl. intercept)
	rss  float64   // residual sum of squares
	rank int       // numerical rank of the design matrix
	// invDiag is diag((XᵀX)⁻¹) for full-rank columns (NaN for dropped
	// columns); used for coefficient standard errors.
	invDiag []float64
	// inv is the full (XᵀX)⁻¹ when the design matrix has full column rank
	// (nil otherwise); used for prediction-interval leverage terms.
	inv [][]float64
}

// solveLS solves min ‖Xb − y‖² by Householder QR with column pivoting.
// X is n×m (rows are observations). Rank-deficient columns get zero
// coefficients. The inputs are not modified.
func solveLS(x [][]float64, y []float64) (*lsqResult, error) {
	n := len(x)
	if n == 0 {
		return nil, errors.New("linreg: no observations")
	}
	m := len(x[0])
	if m == 0 {
		return nil, errors.New("linreg: no design columns")
	}
	if len(y) != n {
		return nil, errors.New("linreg: y length mismatch")
	}
	// Working copies, column-major for cache-friendly Householder updates.
	a := make([][]float64, m)
	for j := 0; j < m; j++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			if len(x[i]) != m {
				return nil, errors.New("linreg: ragged design matrix")
			}
			col[i] = x[i][j]
		}
		a[j] = col
	}
	b := append([]float64(nil), y...)

	perm := make([]int, m)
	for j := range perm {
		perm[j] = j
	}
	colNorm := make([]float64, m)
	maxNorm := 0.0
	for j := 0; j < m; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += a[j][i] * a[j][i]
		}
		colNorm[j] = s
		if s > maxNorm {
			maxNorm = s
		}
	}
	tol := math.Sqrt(maxNorm) * 1e-10
	if tol == 0 {
		tol = 1e-12
	}

	steps := m
	if n < m {
		steps = n
	}
	rank := 0
	for k := 0; k < steps; k++ {
		// Column pivot: bring the column with the largest remaining norm to k.
		best, bestNorm := k, 0.0
		for j := k; j < m; j++ {
			s := 0.0
			for i := k; i < n; i++ {
				s += a[j][i] * a[j][i]
			}
			if s > bestNorm {
				best, bestNorm = j, s
			}
		}
		if math.Sqrt(bestNorm) <= tol {
			break
		}
		if best != k {
			a[k], a[best] = a[best], a[k]
			perm[k], perm[best] = perm[best], perm[k]
		}
		// Householder vector v for column k (rows k..n-1).
		alpha := math.Sqrt(bestNorm)
		if a[k][k] > 0 {
			alpha = -alpha
		}
		v := make([]float64, n-k)
		v[0] = a[k][k] - alpha
		for i := k + 1; i < n; i++ {
			v[i-k] = a[k][i]
		}
		vnorm2 := 0.0
		for _, vi := range v {
			vnorm2 += vi * vi
		}
		if vnorm2 == 0 {
			break
		}
		a[k][k] = alpha
		for i := k + 1; i < n; i++ {
			a[k][i] = 0
		}
		// Apply the reflector to the remaining columns and to b.
		for j := k + 1; j < m; j++ {
			dot := 0.0
			for i := k; i < n; i++ {
				dot += v[i-k] * a[j][i]
			}
			f := 2 * dot / vnorm2
			for i := k; i < n; i++ {
				a[j][i] -= f * v[i-k]
			}
		}
		dot := 0.0
		for i := k; i < n; i++ {
			dot += v[i-k] * b[i]
		}
		f := 2 * dot / vnorm2
		for i := k; i < n; i++ {
			b[i] -= f * v[i-k]
		}
		rank++
	}

	// Back substitution on the rank×rank upper-triangular system.
	bt := make([]float64, rank)
	for i := rank - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < rank; j++ {
			s -= a[j][i] * bt[j]
		}
		bt[i] = s / a[i][i]
	}
	beta := make([]float64, m)
	for j := 0; j < rank; j++ {
		beta[perm[j]] = bt[j]
	}

	rss := 0.0
	for i := rank; i < n; i++ {
		rss += b[i] * b[i]
	}

	// diag((XᵀX)⁻¹) = row norms² of R⁻¹ for the selected columns.
	invDiag := make([]float64, m)
	for j := range invDiag {
		invDiag[j] = math.NaN()
	}
	var inv [][]float64
	if rank > 0 {
		rInv := invertUpper(a, rank)
		for i := 0; i < rank; i++ {
			s := 0.0
			for j := i; j < rank; j++ {
				s += rInv[i][j] * rInv[i][j]
			}
			invDiag[perm[i]] = s
		}
		if rank == m {
			// Full (XᵀX)⁻¹ = R⁻¹ R⁻ᵀ, un-permuted.
			inv = make([][]float64, m)
			for i := range inv {
				inv[i] = make([]float64, m)
			}
			for i := 0; i < rank; i++ {
				for j := 0; j < rank; j++ {
					s := 0.0
					k := i
					if j > i {
						k = j
					}
					for ; k < rank; k++ {
						s += rInv[i][k] * rInv[j][k]
					}
					inv[perm[i]][perm[j]] = s
				}
			}
		}
	}
	return &lsqResult{beta: beta, rss: rss, rank: rank, invDiag: invDiag, inv: inv}, nil
}

// invertUpper inverts the leading rank×rank upper-triangular block of the
// factored matrix (stored column-major in a). Returns row-major R⁻¹.
func invertUpper(a [][]float64, rank int) [][]float64 {
	inv := make([][]float64, rank)
	for i := range inv {
		inv[i] = make([]float64, rank)
	}
	for j := rank - 1; j >= 0; j-- {
		inv[j][j] = 1 / a[j][j]
		for i := j - 1; i >= 0; i-- {
			s := 0.0
			for k := i + 1; k <= j; k++ {
				s += a[k][i] * inv[k][j]
			}
			inv[i][j] = -s / a[i][i]
		}
	}
	return inv
}
