package linreg

import (
	"encoding/json"
	"fmt"
)

type modelState struct {
	Version   int           `json:"version"`
	Method    Method        `json:"method"`
	PEnter    float64       `json:"p_enter"`
	PRemove   float64       `json:"p_remove"`
	Names     []string      `json:"names"`
	Selected  []int         `json:"selected"`
	Intercept float64       `json:"intercept"`
	Coef      []float64     `json:"coef"`
	Coeffs    []Coefficient `json:"coeffs"`
	RSS       float64       `json:"rss"`
	TSS       float64       `json:"tss"`
	N         int           `json:"n"`
	Inv       [][]float64   `json:"inv,omitempty"`
}

const modelVersion = 1

// MarshalJSON serializes the fitted model so it can be persisted and later
// used for prediction without refitting.
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelState{
		Version:   modelVersion,
		Method:    m.opts.Method,
		PEnter:    m.opts.PEnter,
		PRemove:   m.opts.PRemove,
		Names:     m.names,
		Selected:  m.selected,
		Intercept: m.intercept,
		Coef:      m.coef,
		Coeffs:    m.coeffs,
		RSS:       m.rss,
		TSS:       m.tss,
		N:         m.n,
		Inv:       m.inv,
	})
}

// UnmarshalModel restores a model serialized by MarshalJSON.
func UnmarshalModel(data []byte) (*Model, error) {
	var st modelState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("linreg: decoding model: %w", err)
	}
	if st.Version != modelVersion {
		return nil, fmt.Errorf("linreg: unsupported model version %d", st.Version)
	}
	if len(st.Coef) != len(st.Names) {
		return nil, fmt.Errorf("linreg: %d coefficients for %d names", len(st.Coef), len(st.Names))
	}
	for _, j := range st.Selected {
		if j < 0 || j >= len(st.Coef) {
			return nil, fmt.Errorf("linreg: selected index %d out of range", j)
		}
	}
	return &Model{
		opts:      Options{Method: st.Method, PEnter: st.PEnter, PRemove: st.PRemove},
		names:     st.Names,
		selected:  st.Selected,
		intercept: st.Intercept,
		coef:      st.Coef,
		coeffs:    st.Coeffs,
		rss:       st.RSS,
		tss:       st.TSS,
		n:         st.N,
		inv:       st.Inv,
	}, nil
}
