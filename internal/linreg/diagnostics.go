package linreg

import (
	"errors"
	"math"

	"perfpred/internal/stat"
)

// Summary carries the ANOVA-style fit statistics of a regression (cf.
// Montgomery, Peck & Vining, the reference the paper cites for its
// least-squares machinery).
type Summary struct {
	// N is the number of observations; P the number of retained
	// predictors (intercept excluded).
	N, P int
	// R2 and AdjR2 are the (adjusted) coefficients of determination.
	R2, AdjR2 float64
	// SigmaHat is the residual standard error.
	SigmaHat float64
	// FStat and FPValue test the overall regression (all slopes zero).
	// Both are NaN when the residual degrees of freedom are exhausted or
	// the model kept no predictors.
	FStat, FPValue float64
}

// Summary returns the fit statistics of the model on its training data.
func (m *Model) Summary() Summary {
	s := Summary{
		N:        m.n,
		P:        len(m.selected),
		R2:       m.R2(),
		FStat:    math.NaN(),
		FPValue:  math.NaN(),
		SigmaHat: math.NaN(),
		AdjR2:    math.NaN(),
	}
	dfResid := m.n - s.P - 1
	if dfResid > 0 {
		s.SigmaHat = math.Sqrt(m.rss / float64(dfResid))
		if m.tss > 0 {
			s.AdjR2 = 1 - (m.rss/float64(dfResid))/(m.tss/float64(m.n-1))
		}
	}
	if s.P > 0 && dfResid > 0 && m.rss > 0 {
		ssr := m.tss - m.rss
		if ssr < 0 {
			ssr = 0
		}
		s.FStat = (ssr / float64(s.P)) / (m.rss / float64(dfResid))
		if p, err := stat.FSurvival(s.FStat, float64(s.P), float64(dfResid)); err == nil {
			s.FPValue = p
		}
	}
	return s
}

// PredictInterval returns the point prediction for x and a two-sided
// (1−alpha) prediction interval for a new observation at x, using the
// standard leverage formula ŷ ± t(1−α/2, n−p−1)·σ̂·√(1 + x̃ᵀ(XᵀX)⁻¹x̃).
// It requires a full-rank fit with positive residual degrees of freedom.
func (m *Model) PredictInterval(x []float64, alpha float64) (yhat, lo, hi float64, err error) {
	yhat = m.Predict(x)
	if alpha <= 0 || alpha >= 1 {
		return yhat, 0, 0, errors.New("linreg: alpha must be in (0,1)")
	}
	if m.inv == nil {
		return yhat, 0, 0, errors.New("linreg: prediction intervals need a full-rank fit")
	}
	dfResid := m.n - len(m.selected) - 1
	if dfResid <= 0 {
		return yhat, 0, 0, errors.New("linreg: no residual degrees of freedom")
	}
	sigma2 := m.rss / float64(dfResid)
	// x̃ is the design row in the fitted subset's basis: [1, x_selected...].
	xt := make([]float64, 1+len(m.selected))
	xt[0] = 1
	for si, j := range m.selected {
		if j >= len(x) {
			return yhat, 0, 0, errors.New("linreg: input row narrower than the fitted design")
		}
		xt[si+1] = x[j]
	}
	leverage := 0.0
	for i := range xt {
		for j := range xt {
			leverage += xt[i] * m.inv[i][j] * xt[j]
		}
	}
	if leverage < 0 {
		leverage = 0
	}
	tcrit, err := stat.StudentTQuantile(1-alpha/2, float64(dfResid))
	if err != nil {
		return yhat, 0, 0, err
	}
	half := tcrit * math.Sqrt(sigma2*(1+leverage))
	return yhat, yhat - half, yhat + half, nil
}
