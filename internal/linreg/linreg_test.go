package linreg

import (
	"math"
	"math/rand"
	"testing"
)

// synth builds n observations of y = 4 + 3*x0 - 2*x1 + noise, with x2, x3
// pure noise predictors.
func synth(seed int64, n int, noise float64) (x [][]float64, y []float64) {
	r := rand.New(rand.NewSource(seed))
	x = make([][]float64, n)
	y = make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
		y[i] = 4 + 3*x[i][0] - 2*x[i][1] + noise*r.NormFloat64()
	}
	return x, y
}

func TestFitEnterRecoversCoefficients(t *testing.T) {
	x, y := synth(1, 200, 0.01)
	m, err := Fit(x, y, nil, Options{Method: Enter})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept()-4) > 0.05 {
		t.Fatalf("intercept = %v", m.Intercept())
	}
	coefByName := map[string]float64{}
	for _, c := range m.Coefficients() {
		coefByName[c.Name] = c.Beta
	}
	if math.Abs(coefByName["x0"]-3) > 0.05 || math.Abs(coefByName["x1"]+2) > 0.05 {
		t.Fatalf("coefficients = %v", coefByName)
	}
	if m.NumSelected() != 4 {
		t.Fatalf("Enter must keep all predictors, kept %d", m.NumSelected())
	}
}

func TestBackwardDropsNoisePredictors(t *testing.T) {
	x, y := synth(2, 200, 0.05)
	m, err := Fit(x, y, []string{"a", "b", "junk1", "junk2"}, Options{Method: Backward})
	if err != nil {
		t.Fatal(err)
	}
	sel := map[string]bool{}
	for _, n := range m.SelectedNames() {
		sel[n] = true
	}
	if !sel["a"] || !sel["b"] {
		t.Fatalf("backward dropped a real predictor: %v", m.SelectedNames())
	}
	if sel["junk1"] && sel["junk2"] {
		t.Fatalf("backward kept both junk predictors: %v", m.SelectedNames())
	}
}

func TestForwardFindsRealPredictors(t *testing.T) {
	x, y := synth(3, 200, 0.05)
	m, err := Fit(x, y, []string{"a", "b", "junk1", "junk2"}, Options{Method: Forward})
	if err != nil {
		t.Fatal(err)
	}
	sel := map[string]bool{}
	for _, n := range m.SelectedNames() {
		sel[n] = true
	}
	if !sel["a"] || !sel["b"] {
		t.Fatalf("forward missed a real predictor: %v", m.SelectedNames())
	}
}

func TestStepwiseMatchesForwardOnCleanData(t *testing.T) {
	x, y := synth(4, 200, 0.05)
	mf, err := Fit(x, y, nil, Options{Method: Forward})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Fit(x, y, nil, Options{Method: Stepwise})
	if err != nil {
		t.Fatal(err)
	}
	// On clean data stepwise should keep at least the forward picks' quality.
	if ms.R2() < mf.R2()-1e-6 {
		t.Fatalf("stepwise R2 %v < forward R2 %v", ms.R2(), mf.R2())
	}
}

func TestPredictMatchesManualComputation(t *testing.T) {
	x, y := synth(5, 100, 0)
	m, err := Fit(x, y, nil, Options{Method: Enter})
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.5, 0.25, 0.1, 0.9}
	want := 4 + 3*0.5 - 2*0.25
	if got := m.Predict(probe); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Predict = %v, want %v", got, want)
	}
	batch := m.PredictAll([][]float64{probe, probe})
	if len(batch) != 2 || batch[0] != batch[1] {
		t.Fatal("PredictAll inconsistent")
	}
}

func TestR2PerfectAndNull(t *testing.T) {
	x, y := synth(6, 100, 0)
	m, err := Fit(x, y, nil, Options{Method: Enter})
	if err != nil {
		t.Fatal(err)
	}
	if m.R2() < 1-1e-9 {
		t.Fatalf("noise-free R2 = %v", m.R2())
	}
}

func TestInterceptOnlyWhenNothingSignificant(t *testing.T) {
	// Target independent of predictors → forward keeps nothing.
	r := rand.New(rand.NewSource(7))
	n := 80
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{r.Float64(), r.Float64()}
		y[i] = 10 // constant target
	}
	m, err := Fit(x, y, nil, Options{Method: Forward})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSelected() != 0 {
		t.Fatalf("selected %v for a constant target", m.SelectedNames())
	}
	if math.Abs(m.Predict([]float64{0.3, 0.4})-10) > 1e-9 {
		t.Fatal("intercept-only model should predict the mean")
	}
}

func TestStandardizedBetasRankImportance(t *testing.T) {
	// x0 has much larger standardized effect than x1.
	r := rand.New(rand.NewSource(8))
	n := 300
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{r.Float64(), r.Float64()}
		y[i] = 10*x[i][0] + 1*x[i][1] + 0.01*r.NormFloat64()
	}
	m, err := Fit(x, y, []string{"big", "small"}, Options{Method: Enter})
	if err != nil {
		t.Fatal(err)
	}
	var big, small float64
	for _, c := range m.Coefficients() {
		switch c.Name {
		case "big":
			big = math.Abs(c.StdBeta)
		case "small":
			small = math.Abs(c.StdBeta)
		}
	}
	if big <= small || big < 5*small {
		t.Fatalf("standardized betas big=%v small=%v", big, small)
	}
}

func TestCoefficientPValues(t *testing.T) {
	x, y := synth(9, 200, 0.1)
	m, err := Fit(x, y, []string{"a", "b", "junk1", "junk2"}, Options{Method: Enter})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Coefficients() {
		switch c.Name {
		case "a", "b":
			if !(c.P < 1e-6) {
				t.Errorf("real predictor %s p-value %v not significant", c.Name, c.P)
			}
		default:
			if c.P < 1e-4 {
				t.Errorf("junk predictor %s spuriously significant p=%v", c.Name, c.P)
			}
		}
	}
}

func TestCollinearPredictorsHandled(t *testing.T) {
	// x1 = 2*x0: Enter must not blow up; prediction must still work.
	r := rand.New(rand.NewSource(10))
	n := 60
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a := r.Float64()
		x[i] = []float64{a, 2 * a}
		y[i] = 5 * a
	}
	m, err := Fit(x, y, nil, Options{Method: Enter})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0.5, 1.0}); math.Abs(got-2.5) > 1e-6 {
		t.Fatalf("collinear prediction = %v, want 2.5", got)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, nil, Options{}); err == nil {
		t.Fatal("empty: want error")
	}
	if _, err := Fit([][]float64{{}}, []float64{1}, nil, Options{}); err == nil {
		t.Fatal("no predictors: want error")
	}
	if _, err := Fit([][]float64{{1}, {2}}, []float64{1}, nil, Options{}); err == nil {
		t.Fatal("y mismatch: want error")
	}
	if _, err := Fit([][]float64{{1}, {2}}, []float64{1, 2}, nil, Options{}); err == nil {
		t.Fatal("n<3: want error")
	}
	x, y := synth(11, 10, 0.1)
	if _, err := Fit(x, y, []string{"only-one"}, Options{}); err == nil {
		t.Fatal("names mismatch: want error")
	}
	if _, err := Fit(x, y, nil, Options{Method: Method(99)}); err == nil {
		t.Fatal("unknown method: want error")
	}
}

func TestMethodString(t *testing.T) {
	cases := map[Method]string{Enter: "LR-E", Stepwise: "LR-S", Backward: "LR-B", Forward: "LR-F"}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%v.String() = %q", int(m), m.String())
		}
	}
	if len(Methods()) != 4 {
		t.Fatal("Methods() should list 4 methods")
	}
}

func TestBackwardBeatsEnterOnSparseTruth(t *testing.T) {
	// With many junk predictors and few observations, Backward should
	// generalize at least as well as Enter on held-out data — the
	// mechanism behind the paper's chronological results (§4.3).
	r := rand.New(rand.NewSource(12))
	gen := func(n int) ([][]float64, []float64) {
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = make([]float64, 12)
			for j := range x[i] {
				x[i][j] = r.Float64()
			}
			y[i] = 2 + 5*x[i][0] + 0.3*r.NormFloat64()
		}
		return x, y
	}
	xtr, ytr := gen(30)
	xte, yte := gen(500)
	me, err := Fit(xtr, ytr, nil, Options{Method: Enter})
	if err != nil {
		t.Fatal(err)
	}
	mb, err := Fit(xtr, ytr, nil, Options{Method: Backward})
	if err != nil {
		t.Fatal(err)
	}
	mse := func(m *Model) float64 {
		s := 0.0
		for i := range xte {
			d := m.Predict(xte[i]) - yte[i]
			s += d * d
		}
		return s / float64(len(xte))
	}
	if mse(mb) > mse(me)*1.1 {
		t.Fatalf("backward (%.4f) much worse than enter (%.4f) out of sample", mse(mb), mse(me))
	}
}
