package linreg

import (
	"fmt"
	"math"
	"testing"

	"perfpred/internal/stat"
)

// Property-based checks on seeded randomized regression problems: the
// normal-equation identities OLS must satisfy by construction, and the
// structural invariants of the Clementine selection methods.

// randProblem draws an n×p design with known coefficients and Gaussian
// noise. Column scales vary over three orders of magnitude to exercise
// the QR path's conditioning.
func randProblem(seed int64, n, p int) (x [][]float64, y []float64, names []string) {
	r := stat.NewRand(seed)
	scales := make([]float64, p)
	beta := make([]float64, p)
	for j := range scales {
		scales[j] = math.Pow(10, float64(r.Intn(4))-1)
		beta[j] = r.NormFloat64() * 3
	}
	x = make([][]float64, n)
	y = make([]float64, n)
	names = make([]string, p)
	for j := range names {
		names[j] = fmt.Sprintf("x%d", j)
	}
	for i := range x {
		x[i] = make([]float64, p)
		yi := 2.5 // intercept
		for j := range x[i] {
			x[i][j] = r.NormFloat64() * scales[j]
			yi += beta[j] * x[i][j]
		}
		y[i] = yi + r.NormFloat64()*0.5
	}
	return x, y, names
}

// TestOLSResidualOrthogonality pins the defining property of least
// squares: residuals are orthogonal to every design column and to the
// intercept (they sum to zero). Any drift here means the QR solve or the
// prediction path changed numerically.
func TestOLSResidualOrthogonality(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		seed := stat.DeriveSeed(7, trial)
		r := stat.NewRand(seed)
		n := 20 + r.Intn(80)
		p := 1 + r.Intn(6)
		x, y, names := randProblem(stat.DeriveSeed(seed, 1), n, p)
		m, err := Fit(x, y, names, Options{Method: Enter})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		resid := make([]float64, n)
		var residNorm float64
		for i := range x {
			resid[i] = y[i] - m.Predict(x[i])
			residNorm += resid[i] * resid[i]
		}
		scale := math.Sqrt(residNorm)*math.Sqrt(float64(n)) + 1
		// Σ rᵢ ≈ 0 (intercept column).
		if s := stat.Sum(resid); math.Abs(s) > 1e-7*scale {
			t.Errorf("trial %d (n=%d p=%d): residual sum %v not ~0 (scale %v)", trial, n, p, s, scale)
		}
		// Σ rᵢ·xᵢⱼ ≈ 0 for every column.
		for j := 0; j < p; j++ {
			var dot, colNorm float64
			for i := range x {
				dot += resid[i] * x[i][j]
				colNorm += x[i][j] * x[i][j]
			}
			tol := 1e-7 * (math.Sqrt(colNorm)*math.Sqrt(residNorm) + 1)
			if math.Abs(dot) > tol {
				t.Errorf("trial %d: residuals not orthogonal to column %d: dot %v (tol %v)", trial, j, dot, tol)
			}
		}
		// R² of a full fit lies in [0, 1] and RSS is non-negative.
		if r2 := m.R2(); r2 < -1e-9 || r2 > 1+1e-9 {
			t.Errorf("trial %d: R² = %v", trial, r2)
		}
		if m.RSS() < 0 {
			t.Errorf("trial %d: RSS = %v", trial, m.RSS())
		}
	}
}

// TestSelectionSubsetInvariants checks every selection method on
// randomized problems: the selected predictors are always a duplicate-free
// subset of the candidate set, Enter keeps everything, and the fitted
// model predicts finite values on its own training rows.
func TestSelectionSubsetInvariants(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		seed := stat.DeriveSeed(11, trial)
		r := stat.NewRand(seed)
		n := 24 + r.Intn(60)
		p := 2 + r.Intn(6)
		x, y, names := randProblem(stat.DeriveSeed(seed, 1), n, p)
		candidates := make(map[string]bool, len(names))
		for _, nm := range names {
			candidates[nm] = true
		}
		for _, method := range Methods() {
			m, err := Fit(x, y, names, Options{Method: method})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, method, err)
			}
			sel := m.SelectedNames()
			seen := make(map[string]bool, len(sel))
			for _, nm := range sel {
				if !candidates[nm] {
					t.Errorf("trial %d %v: selected %q not in candidate set %v", trial, method, nm, names)
				}
				if seen[nm] {
					t.Errorf("trial %d %v: predictor %q selected twice", trial, method, nm)
				}
				seen[nm] = true
			}
			if m.NumSelected() != len(sel) {
				t.Errorf("trial %d %v: NumSelected %d != len(SelectedNames) %d", trial, method, m.NumSelected(), len(sel))
			}
			if m.NumSelected() > p {
				t.Errorf("trial %d %v: selected %d of %d predictors", trial, method, m.NumSelected(), p)
			}
			if method == Enter && m.NumSelected() != p {
				t.Errorf("trial %d: Enter selected %d of %d predictors", trial, m.NumSelected(), p)
			}
			for i := range x {
				if yh := m.Predict(x[i]); math.IsNaN(yh) || math.IsInf(yh, 0) {
					t.Fatalf("trial %d %v: non-finite prediction on row %d", trial, method, i)
				}
			}
		}
	}
}

// TestStepwiseNeverBeatsEnterOnRSS: adding predictors can only lower the
// residual sum of squares, so the full Enter fit's RSS is a lower bound
// for every selected submodel on the same data.
func TestStepwiseNeverBeatsEnterOnRSS(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		seed := stat.DeriveSeed(13, trial)
		r := stat.NewRand(seed)
		n := 30 + r.Intn(50)
		p := 2 + r.Intn(5)
		x, y, names := randProblem(stat.DeriveSeed(seed, 1), n, p)
		full, err := Fit(x, y, names, Options{Method: Enter})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, method := range []Method{Forward, Backward, Stepwise} {
			m, err := Fit(x, y, names, Options{Method: method})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, method, err)
			}
			if m.RSS() < full.RSS()-1e-6*(full.RSS()+1) {
				t.Errorf("trial %d %v: submodel RSS %v below full-model RSS %v", trial, method, m.RSS(), full.RSS())
			}
		}
	}
}
