package linreg

import (
	"testing"

	"perfpred/internal/model"
)

// TestFamilyConformance runs the registry conformance suite over every
// linear-regression kind this package registers.
func TestFamilyConformance(t *testing.T) {
	for _, k := range []model.Kind{model.LRE, model.LRS, model.LRB, model.LRF} {
		k := k
		t.Run(k.String(), func(t *testing.T) { model.TestFamily(t, k) })
	}
}
