package linreg

import (
	"math"
	"testing"
)

func TestSummaryOnStrongFit(t *testing.T) {
	x, y := synth(51, 300, 0.05)
	m, err := Fit(x, y, nil, Options{Method: Enter})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Summary()
	if s.N != 300 || s.P != 4 {
		t.Fatalf("N/P = %d/%d", s.N, s.P)
	}
	if s.R2 < 0.99 || s.AdjR2 < 0.99 || s.AdjR2 > s.R2 {
		t.Fatalf("R2 %.4f AdjR2 %.4f", s.R2, s.AdjR2)
	}
	// σ̂ should recover the generating noise (0.05) roughly.
	if s.SigmaHat < 0.03 || s.SigmaHat > 0.08 {
		t.Fatalf("SigmaHat = %.4f, want ≈0.05", s.SigmaHat)
	}
	if !(s.FStat > 100) || !(s.FPValue < 1e-9) {
		t.Fatalf("F = %.1f p = %v; a strong fit should be overwhelmingly significant", s.FStat, s.FPValue)
	}
}

func TestSummaryInterceptOnly(t *testing.T) {
	// A constant target keeps no predictors; the F test is undefined.
	x := make([][]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = []float64{float64(i % 7)}
		y[i] = 5
	}
	m, err := Fit(x, y, nil, Options{Method: Forward})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Summary()
	if s.P != 0 {
		t.Fatalf("P = %d", s.P)
	}
	if !math.IsNaN(s.FStat) {
		t.Fatalf("F on intercept-only model should be NaN, got %v", s.FStat)
	}
}

func TestPredictIntervalCoverage(t *testing.T) {
	// Empirical coverage check: ~95% of held-out points should fall inside
	// their 95% prediction interval.
	xtr, ytr := synth(52, 200, 0.2)
	xte, yte := synth(53, 400, 0.2)
	m, err := Fit(xtr, ytr, nil, Options{Method: Enter})
	if err != nil {
		t.Fatal(err)
	}
	inside := 0
	for i := range xte {
		_, lo, hi, err := m.PredictInterval(xte[i], 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if lo >= hi {
			t.Fatalf("degenerate interval [%v, %v]", lo, hi)
		}
		if yte[i] >= lo && yte[i] <= hi {
			inside++
		}
	}
	cov := float64(inside) / float64(len(xte))
	if cov < 0.90 || cov > 0.99 {
		t.Fatalf("95%% interval covered %.1f%% of held-out points", 100*cov)
	}
}

func TestPredictIntervalWidensWithLeverage(t *testing.T) {
	xtr, ytr := synth(54, 150, 0.1)
	m, err := Fit(xtr, ytr, nil, Options{Method: Enter})
	if err != nil {
		t.Fatal(err)
	}
	// A central point (inputs near 0.5) vs. an extrapolated one (inputs 3).
	_, lo1, hi1, err := m.PredictInterval([]float64{0.5, 0.5, 0.5, 0.5}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	_, lo2, hi2, err := m.PredictInterval([]float64{3, 3, 3, 3}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if (hi2 - lo2) <= (hi1 - lo1) {
		t.Fatalf("extrapolation interval (%.3f) should be wider than interpolation (%.3f)",
			hi2-lo2, hi1-lo1)
	}
}

func TestPredictIntervalErrors(t *testing.T) {
	xtr, ytr := synth(55, 100, 0.1)
	m, err := Fit(xtr, ytr, nil, Options{Method: Enter})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := m.PredictInterval(xtr[0], 0); err == nil {
		t.Fatal("alpha=0: want error")
	}
	if _, _, _, err := m.PredictInterval(xtr[0], 1); err == nil {
		t.Fatal("alpha=1: want error")
	}
	// Collinear design → rank deficient → no intervals.
	xc := make([][]float64, 30)
	yc := make([]float64, 30)
	for i := range xc {
		a := float64(i) / 30
		xc[i] = []float64{a, 2 * a}
		yc[i] = a
	}
	mc, err := Fit(xc, yc, nil, Options{Method: Enter})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := mc.PredictInterval([]float64{0.5, 1}, 0.05); err == nil {
		t.Fatal("rank-deficient fit: want error")
	}
}

func TestPredictIntervalSurvivesSerialization(t *testing.T) {
	xtr, ytr := synth(56, 120, 0.1)
	m, err := Fit(xtr, ytr, nil, Options{Method: Enter})
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	y1, lo1, hi1, err := m.PredictInterval(xtr[3], 0.1)
	if err != nil {
		t.Fatal(err)
	}
	y2, lo2, hi2, err := back.PredictInterval(xtr[3], 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if y1 != y2 || lo1 != lo2 || hi1 != hi2 {
		t.Fatal("intervals differ after round trip")
	}
}
