// Package progress renders execution-engine events as human-readable log
// lines — the implementation behind the cmd tools' -v flags. It is a thin
// consumer of the engine's Hook interface; anything it can do (timing
// breakdowns, per-model progress, epoch counters) is equally available to
// future metrics exporters.
package progress

import (
	"fmt"
	"io"
	"sync"

	"perfpred/internal/engine"
)

// Hook returns an engine hook that writes one line per completed task
// (label, outcome, duration) to w. When epochs is true it also reports
// neural epoch progress (roughly eight lines per training run) — chatty,
// but useful to watch a slow NN-E prune move. The hook serializes writes
// and is safe for concurrent use.
func Hook(w io.Writer, epochs bool) engine.Hook {
	var mu sync.Mutex
	return func(e engine.Event) {
		switch e.Kind {
		case engine.TaskDone:
			mu.Lock()
			fmt.Fprintf(w, "done %-40s %8.2fs\n", e.Label, e.Elapsed.Seconds())
			mu.Unlock()
		case engine.TaskFailed:
			mu.Lock()
			fmt.Fprintf(w, "FAIL %-40s %8.2fs: %v\n", e.Label, e.Elapsed.Seconds(), e.Err)
			mu.Unlock()
		case engine.EpochProgress:
			if !epochs || e.Epochs == 0 {
				return
			}
			mu.Lock()
			fmt.Fprintf(w, "  .. %-40s epoch %d/%d\n", e.Label, e.Epoch, e.Epochs)
			mu.Unlock()
		}
	}
}
