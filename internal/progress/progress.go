// Package progress renders execution-engine activity as human-readable
// log lines — the implementation behind the cmd tools' -v flags. It is
// built on the observability layer's Recorder rather than on raw events:
// every line's running totals come from the same metrics stream that
// feeds RunReports, so the console view and the machine-readable record
// can never disagree.
package progress

import (
	"fmt"
	"io"
	"sync"

	"perfpred/internal/engine"
	"perfpred/internal/obs"
)

// Reporter renders progress lines from a metrics stream. Create one with
// New, attach Reporter.Hook() wherever an engine.Hook is accepted, and
// (optionally) share its Recorder with a RunReport builder.
type Reporter struct {
	mu     sync.Mutex
	w      io.Writer
	epochs bool
	rec    *obs.Recorder
}

// New returns a Reporter writing to w. When epochs is true it also
// reports neural epoch progress (roughly eight lines per training run) —
// chatty, but useful to watch a slow NN-E prune move. rec is the
// recorder whose metrics the lines quote; pass nil to create a private
// one. The reporter serializes writes and is safe for concurrent use.
func New(w io.Writer, epochs bool, rec *obs.Recorder) *Reporter {
	if rec == nil {
		rec = obs.NewRecorder()
	}
	return &Reporter{w: w, epochs: epochs, rec: rec}
}

// Recorder exposes the reporter's backing recorder, e.g. to build a
// RunReport from the run the reporter narrated.
func (p *Reporter) Recorder() *obs.Recorder { return p.rec }

// Hook returns the engine hook driving this reporter. Events feed the
// recorder first and the renderer second, so each line's aggregate
// counters already include the event it reports.
func (p *Reporter) Hook() engine.Hook {
	return engine.Tee(p.rec.Hook(), p.render)
}

func (p *Reporter) render(e engine.Event) {
	reg := p.rec.Registry()
	switch e.Kind {
	case engine.TaskDone:
		done := reg.Counter(obs.MetricTasksDone).Value()
		started := reg.Counter(obs.MetricTasksStarted).Value()
		p.mu.Lock()
		fmt.Fprintf(p.w, "done %-40s %8.2fs  [%d/%d tasks]\n", e.Label, e.Elapsed.Seconds(), done, started)
		p.mu.Unlock()
	case engine.TaskFailed:
		failed := reg.Counter(obs.MetricTasksFailed).Value()
		p.mu.Lock()
		fmt.Fprintf(p.w, "FAIL %-40s %8.2fs  [%d failed]: %v\n", e.Label, e.Elapsed.Seconds(), failed, e.Err)
		p.mu.Unlock()
	case engine.EpochProgress:
		if !p.epochs || e.Epochs == 0 {
			return
		}
		p.mu.Lock()
		fmt.Fprintf(p.w, "  .. %-40s epoch %d/%d\n", e.Label, e.Epoch, e.Epochs)
		p.mu.Unlock()
	}
}

// Hook returns a standalone engine hook that writes one line per
// completed task (label, outcome, duration, running totals) to w — the
// one-call form of New for callers that don't need the Recorder.
func Hook(w io.Writer, epochs bool) engine.Hook {
	return New(w, epochs, nil).Hook()
}
