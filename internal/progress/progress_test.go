package progress

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"perfpred/internal/engine"
	"perfpred/internal/obs"
)

func TestReporterRendersFromRecorder(t *testing.T) {
	var buf bytes.Buffer
	p := New(&buf, true, nil)
	hook := p.Hook()

	hook.Emit(engine.Event{Kind: engine.TaskStart, Label: "train NN-Q"})
	hook.Emit(engine.Event{Kind: engine.EpochProgress, Label: "train NN-Q", Model: "NN-Q", Epoch: 4, Epochs: 16})
	hook.Emit(engine.Event{Kind: engine.TaskDone, Label: "train NN-Q", Model: "NN-Q"})
	hook.Emit(engine.Event{Kind: engine.TaskStart, Label: "train NN-S"})
	hook.Emit(engine.Event{Kind: engine.TaskFailed, Label: "train NN-S", Model: "NN-S", Err: errors.New("diverged")})

	out := buf.String()
	// The rendered totals come from the reporter's own recorder, and each
	// line already includes the event it reports (one task started and
	// done at the moment the done line prints).
	if !strings.Contains(out, "[1/1 tasks]") {
		t.Errorf("done line missing recorder-backed totals:\n%s", out)
	}
	if !strings.Contains(out, "epoch 4/16") {
		t.Errorf("epoch line missing:\n%s", out)
	}
	if !strings.Contains(out, "[1 failed]") || !strings.Contains(out, "diverged") {
		t.Errorf("failure line missing count or error:\n%s", out)
	}
	exec := p.Recorder().Execution()
	if exec.TasksStarted != 2 || exec.TasksDone != 1 || exec.TasksFailed != 1 || exec.EpochEvents != 1 {
		t.Errorf("recorder aggregates = %+v", exec)
	}
}

func TestReporterEpochsOff(t *testing.T) {
	var buf bytes.Buffer
	hook := New(&buf, false, nil).Hook()
	hook.Emit(engine.Event{Kind: engine.EpochProgress, Label: "train NN-E", Epoch: 1, Epochs: 8})
	if buf.Len() != 0 {
		t.Errorf("epoch line rendered with epochs disabled: %q", buf.String())
	}
}

// TestReporterSharesRecorder pins the -v + -report contract: the hook the
// CLIs install narrates to the console and feeds the caller's recorder,
// so the report built afterwards describes exactly the run narrated.
func TestReporterSharesRecorder(t *testing.T) {
	rec := obs.NewRecorder()
	var buf bytes.Buffer
	p := New(&buf, false, rec)
	if p.Recorder() != rec {
		t.Fatal("reporter did not adopt the caller's recorder")
	}
	err := engine.Run(context.Background(), engine.Options{Workers: 2, Hook: p.Hook()},
		engine.Task{Label: "estimate LR-B", Model: "LR-B", Fold: 0, Run: func(context.Context) error { return nil }},
		engine.Task{Label: "estimate LR-B", Model: "LR-B", Fold: 1, Run: func(context.Context) error { return nil }},
	)
	if err != nil {
		t.Fatal(err)
	}
	exec := rec.Execution()
	if exec.TasksDone != 2 {
		t.Errorf("caller recorder saw %d done tasks, want 2", exec.TasksDone)
	}
	if got := exec.Models["LR-B"].Tasks; got != 2 {
		t.Errorf("model aggregate = %d, want 2", got)
	}
	if n := strings.Count(buf.String(), "done "); n != 2 {
		t.Errorf("%d rendered lines, want 2:\n%s", n, buf.String())
	}
}
