// Package engine is the repository's single concurrency idiom: a bounded,
// context-aware worker pool with first-error cancellation, panic recovery,
// and structured instrumentation hooks.
//
// Every fan-out in the code base — per-kind model training, the five
// cross-validation folds of an error estimate, whole-space prediction,
// design-space simulation sweeps, and neural topology searches — is
// expressed as a flat slice of [Task] values executed by [Run] (or the
// chunked convenience wrapper [Map]). Callers therefore get uniform
// semantics everywhere:
//
//   - Bounded concurrency: at most Options.Workers tasks run at once.
//   - Cancellation: the first task error (or the caller's context being
//     cancelled) stops the scheduling of further tasks promptly; queued
//     tasks are abandoned, running tasks observe ctx.Done().
//   - Panic safety: a panicking task is converted into a *PanicError
//     carrying the recovered value and stack, and cancels the run like any
//     other error.
//   - Determinism: tasks must derive all randomness from seeds carried in
//     their closures (see perfpred's stat.DeriveSeed contract), never from
//     scheduling order, so results are identical for any worker count.
//   - Observability: an optional [Hook] receives a structured [Event] at
//     every task start, finish and failure (and, from cooperating task
//     bodies, epoch-granularity progress), enabling -v style progress
//     reporters and future metrics exporters without touching task code.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"perfpred/internal/faultinject"
)

// EventKind classifies a pool event.
type EventKind int

const (
	// TaskStart fires when a task begins executing (not when queued).
	TaskStart EventKind = iota
	// TaskDone fires when a task returns nil.
	TaskDone
	// TaskFailed fires when a task returns an error or panics.
	TaskFailed
	// EpochProgress is emitted by cooperating long-running task bodies
	// (e.g. neural-network training) to report inner-loop progress.
	EpochProgress
	// KernelTime is emitted by cooperating task bodies after a batched
	// compute kernel (neural SGD epochs, batch prediction) finishes: Label
	// names the kernel, Elapsed is the time spent inside it and Samples the
	// number of per-sample kernel invocations it covered.
	KernelTime
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case TaskStart:
		return "start"
	case TaskDone:
		return "done"
	case TaskFailed:
		return "failed"
	case EpochProgress:
		return "epoch"
	case KernelTime:
		return "kernel"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one structured observation from the pool or a task body.
type Event struct {
	// Kind classifies the event.
	Kind EventKind
	// Label identifies the task (e.g. "estimate NN-E fold 3").
	Label string
	// Model is the model kind's label when the task is model-scoped
	// (empty otherwise).
	Model string
	// Fold is the cross-validation fold index, or -1 when the task is not
	// fold-scoped.
	Fold int
	// Epoch and Epochs report inner-loop progress for EpochProgress events.
	Epoch, Epochs int
	// Samples is the number of per-sample kernel invocations covered by a
	// KernelTime event.
	Samples int64
	// Err is the failure for TaskFailed events.
	Err error
	// Elapsed is the task's wall-clock duration for TaskDone/TaskFailed.
	Elapsed time.Duration
	// Wait is how long the task sat queued behind the worker budget before
	// starting — the time from Run submission to TaskStart. Populated on
	// TaskStart, TaskDone and TaskFailed events.
	Wait time.Duration
}

// Hook observes pool events. Hooks may be called concurrently from many
// workers and must be safe for concurrent use. A nil Hook is valid and
// observes nothing.
type Hook func(Event)

// Emit delivers the event if the hook is non-nil. Safe on nil hooks.
func (h Hook) Emit(e Event) {
	if h != nil {
		h(e)
	}
}

// Tee fans one event stream out to several hooks, in argument order. Nil
// hooks are skipped; Tee of zero or one non-nil hook avoids the extra
// indirection entirely, so it is free to call unconditionally.
func Tee(hooks ...Hook) Hook {
	live := make([]Hook, 0, len(hooks))
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(e Event) {
		for _, h := range live {
			h(e)
		}
	}
}

// Task is one unit of work for the pool.
type Task struct {
	// Label names the task for instrumentation.
	Label string
	// Model optionally carries the model kind's label.
	Model string
	// Fold is the cross-validation fold index, or -1 when not applicable.
	Fold int
	// Run does the work. It must honor ctx cancellation in long loops and
	// must confine all writes to memory owned by the task (index-addressed
	// slots are the usual pattern).
	Run func(ctx context.Context) error
}

// PanicError wraps a panic recovered from a task.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error describes the panic.
func (p *PanicError) Error() string {
	return fmt.Sprintf("engine: task panicked: %v", p.Value)
}

// Options configures one Run or Map call.
type Options struct {
	// Workers bounds concurrent tasks (0 = GOMAXPROCS).
	Workers int
	// Hook, if non-nil, observes task lifecycle events.
	Hook Hook
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes the tasks on a bounded worker pool and waits for completion.
//
// The first task failure cancels the run's context: queued tasks are
// abandoned and running tasks can observe the cancellation. Panics are
// recovered into *PanicError values and cancel the run like errors. When
// the parent context is cancelled, Run returns the parent's error.
// Otherwise Run returns the first genuine task error in submission order
// (deterministic when only one task fails, which covers every sequential
// baseline this refactor replaced), falling back to the chronologically
// first failure recorded as the cancellation cause.
func Run(ctx context.Context, opts Options, tasks ...Task) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(tasks) == 0 {
		return nil
	}
	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	enqueued := time.Now()

	workers := opts.workers()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	queue := make(chan int, len(tasks))
	for i := range tasks {
		queue <- i
	}
	close(queue)

	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Every worker goroutine owns a worker-local store for the
			// lifetime of the run, so scratch buffers fetched through
			// WorkerLocal are reused across all tasks this worker executes
			// and released together when the pool drains.
			wctx := withWorkerState(runCtx)
			for i := range queue {
				if err := context.Cause(runCtx); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = execute(wctx, opts.Hook, &tasks[i], time.Since(enqueued))
				if errs[i] != nil {
					cancel(errs[i])
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	if cause := context.Cause(runCtx); cause != nil && !errors.Is(cause, context.Canceled) {
		return cause
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// execute runs one task with panic recovery and lifecycle events. Two
// fault-injection hook points bracket the task body: a dispatch fault
// fails the task before its body runs, a completion fault converts a
// clean return into a failure — both flow through the pool's normal
// first-error cancellation, so chaos runs exercise exactly the error
// paths a genuinely failing task would.
func execute(ctx context.Context, hook Hook, t *Task, wait time.Duration) (err error) {
	start := time.Now()
	hook.Emit(Event{Kind: TaskStart, Label: t.Label, Model: t.Model, Fold: t.Fold, Wait: wait})
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
		e := Event{Kind: TaskDone, Label: t.Label, Model: t.Model, Fold: t.Fold, Elapsed: time.Since(start), Wait: wait}
		if err != nil {
			e.Kind = TaskFailed
			e.Err = err
		}
		hook.Emit(e)
	}()
	if _, ferr := faultinject.Active().Hit(ctx, faultinject.EngineTaskStart); ferr != nil {
		return ferr
	}
	err = t.Run(ctx)
	if err == nil {
		if _, ferr := faultinject.Active().Hit(ctx, faultinject.EngineTaskDone); ferr != nil {
			err = ferr
		}
	}
	return err
}

// workerStateKey is the context key carrying a worker's local store.
type workerStateKey struct{}

// workerState is the per-worker-goroutine cache behind WorkerLocal. A
// worker executes its tasks sequentially, so the map needs no locking.
type workerState struct {
	vals map[any]any
}

// withWorkerState attaches a fresh worker-local store to ctx.
func withWorkerState(ctx context.Context) context.Context {
	return context.WithValue(ctx, workerStateKey{}, &workerState{vals: make(map[any]any)})
}

// NewWorkerContext returns a copy of ctx carrying a fresh worker-local
// store, for long-lived single-goroutine workers that live outside any
// Run pool (e.g. a serving loop's batch executors). Values fetched
// through WorkerLocal on the returned context are cached for the
// context's lifetime, so a goroutine that creates one context at startup
// gets the same scratch-reuse guarantees as a pool worker. The store is
// not synchronized: the returned context must stay confined to one
// goroutine.
func NewWorkerContext(ctx context.Context) context.Context {
	return withWorkerState(ctx)
}

// WorkerLocal returns the value stored under key in the current engine
// worker's local store, creating it with create on first use. The pool
// owns the store's lifetime: one store per worker goroutine per Run, so a
// value is reused across every task the worker executes and becomes
// garbage when the pool drains. Tasks on one worker run sequentially, so
// the returned value needs no synchronization as long as it does not
// escape the task.
//
// When ctx does not come from an engine worker (direct calls outside any
// pool), WorkerLocal degrades to calling create every time — callers get
// correctness without the reuse. Typical use is a per-worker scratch
// buffer:
//
//	buf := engine.WorkerLocal(ctx, bufKey{}, func() any { return new(Scratch) }).(*Scratch)
func WorkerLocal(ctx context.Context, key any, create func() any) any {
	ws, ok := ctx.Value(workerStateKey{}).(*workerState)
	if !ok {
		return create()
	}
	v, ok := ws.vals[key]
	if !ok {
		v = create()
		ws.vals[key] = v
	}
	return v
}

// Map partitions the index range [0, n) into chunks of at most chunk
// indices and runs fn(ctx, lo, hi) for each chunk on the pool. Chunks carry
// labels "label[lo:hi)". Writes must be index-addressed so the result is
// independent of scheduling.
func Map(ctx context.Context, opts Options, n, chunk int, label string, fn func(ctx context.Context, lo, hi int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if chunk <= 0 {
		chunk = 1
	}
	tasks := make([]Task, 0, (n+chunk-1)/chunk)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		tasks = append(tasks, Task{
			Label: fmt.Sprintf("%s[%d:%d)", label, lo, hi),
			Fold:  -1,
			Run:   func(ctx context.Context) error { return fn(ctx, lo, hi) },
		})
	}
	return Run(ctx, opts, tasks...)
}
