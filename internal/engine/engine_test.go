package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perfpred/internal/faultinject"
)

func TestRunExecutesAllTasks(t *testing.T) {
	var done [20]atomic.Bool
	tasks := make([]Task, len(done))
	for i := range tasks {
		i := i
		tasks[i] = Task{Label: fmt.Sprintf("t%d", i), Fold: -1, Run: func(ctx context.Context) error {
			done[i].Store(true)
			return nil
		}}
	}
	if err := Run(context.Background(), Options{Workers: 4}, tasks...); err != nil {
		t.Fatal(err)
	}
	for i := range done {
		if !done[i].Load() {
			t.Fatalf("task %d did not run", i)
		}
	}
}

func TestRunBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	tasks := make([]Task, 24)
	for i := range tasks {
		tasks[i] = Task{Fold: -1, Run: func(ctx context.Context) error {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
			return nil
		}}
	}
	if err := Run(context.Background(), Options{Workers: workers}, tasks...); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, want <= %d", p, workers)
	}
}

func TestRunFirstErrorCancelsRest(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	tasks := make([]Task, 50)
	for i := range tasks {
		i := i
		tasks[i] = Task{Fold: -1, Run: func(ctx context.Context) error {
			ran.Add(1)
			if i == 0 {
				return boom
			}
			// Later tasks wait on cancellation so the test is not timing
			// dependent: once task 0 fails, these return promptly.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(5 * time.Second):
				return errors.New("cancellation never arrived")
			}
		}}
	}
	err := Run(context.Background(), Options{Workers: 4}, tasks...)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := ran.Load(); n == int64(len(tasks)) {
		t.Fatalf("all %d tasks ran; expected the queue to be abandoned after the failure", n)
	}
}

func TestRunReturnsFirstErrorInSubmissionOrder(t *testing.T) {
	// Two genuine failures: the submission-order-first one must win so
	// error reporting is deterministic.
	errA, errB := errors.New("a"), errors.New("b")
	var gate sync.WaitGroup
	gate.Add(2)
	tasks := []Task{
		{Fold: -1, Run: func(ctx context.Context) error { gate.Done(); gate.Wait(); return errA }},
		{Fold: -1, Run: func(ctx context.Context) error { gate.Done(); gate.Wait(); return errB }},
	}
	err := Run(context.Background(), Options{Workers: 2}, tasks...)
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want %v", err, errA)
	}
}

func TestRunPanicRecovery(t *testing.T) {
	tasks := []Task{
		{Label: "ok", Fold: -1, Run: func(ctx context.Context) error { return nil }},
		{Label: "bad", Fold: -1, Run: func(ctx context.Context) error { panic("kaboom") }},
	}
	err := Run(context.Background(), Options{Workers: 2}, tasks...)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "kaboom" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic stack not captured")
	}
}

func TestRunParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{Fold: -1, Run: func(ctx context.Context) error {
			once.Do(func() { close(started) })
			<-ctx.Done()
			return ctx.Err()
		}}
	}
	go func() {
		<-started
		cancel()
	}()
	err := Run(ctx, Options{Workers: 2}, tasks...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := Run(ctx, Options{}, Task{Fold: -1, Run: func(ctx context.Context) error { ran = true; return nil }})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("task ran despite pre-cancelled context")
	}
}

func TestRunEmptyAndNilHook(t *testing.T) {
	if err := Run(context.Background(), Options{}); err != nil {
		t.Fatal(err)
	}
	var h Hook
	h.Emit(Event{Kind: TaskStart}) // must not panic
}

func TestRunHookEvents(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	hook := Hook(func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	boom := errors.New("boom")
	tasks := []Task{
		{Label: "good", Model: "LR-B", Fold: 2, Run: func(ctx context.Context) error { return nil }},
		{Label: "bad", Fold: -1, Run: func(ctx context.Context) error { return boom }},
	}
	_ = Run(context.Background(), Options{Workers: 1, Hook: hook}, tasks...)

	counts := map[EventKind]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	if counts[TaskStart] != 2 || counts[TaskDone] != 1 || counts[TaskFailed] != 1 {
		t.Fatalf("event counts = %v", counts)
	}
	for _, e := range events {
		if e.Label == "good" && e.Kind == TaskStart {
			if e.Model != "LR-B" || e.Fold != 2 {
				t.Fatalf("task metadata not propagated: %+v", e)
			}
		}
		if e.Kind == TaskFailed && !errors.Is(e.Err, boom) {
			t.Fatalf("TaskFailed.Err = %v", e.Err)
		}
	}
}

func TestMapCoversRangeInChunks(t *testing.T) {
	const n = 103
	out := make([]int, n)
	err := Map(context.Background(), Options{Workers: 4}, n, 10, "square", func(ctx context.Context, lo, hi int) error {
		for i := lo; i < hi; i++ {
			out[i] = i * i
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != i*i {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
}

func TestMapZeroLength(t *testing.T) {
	err := Map(context.Background(), Options{}, 0, 8, "noop", func(ctx context.Context, lo, hi int) error {
		t.Fatal("fn called for empty range")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := Map(context.Background(), Options{Workers: 2}, 100, 7, "boom", func(ctx context.Context, lo, hi int) error {
		if lo >= 14 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestEventKindStrings(t *testing.T) {
	for k, want := range map[EventKind]string{
		TaskStart: "start", TaskDone: "done", TaskFailed: "failed", EpochProgress: "epoch",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", int(k), k.String())
		}
	}
	if EventKind(99).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
}

func TestTee(t *testing.T) {
	var a, b []Event
	hook := Tee(nil, func(e Event) { a = append(a, e) }, nil, func(e Event) { b = append(b, e) })
	hook.Emit(Event{Kind: TaskStart, Label: "x"})
	hook.Emit(Event{Kind: TaskDone, Label: "x"})
	if len(a) != 2 || len(b) != 2 {
		t.Errorf("fan-out delivered %d/%d events, want 2/2", len(a), len(b))
	}
	if a[0].Kind != TaskStart || b[1].Kind != TaskDone {
		t.Errorf("events out of order: %v %v", a, b)
	}
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Error("Tee of no live hooks should be nil")
	}
	// Tee of one hook must not wrap (the event path is hot).
	calls := 0
	single := func(Event) { calls++ }
	Tee(nil, single).Emit(Event{})
	if calls != 1 {
		t.Errorf("single-hook Tee delivered %d events, want 1", calls)
	}
}

func TestEventQueueWait(t *testing.T) {
	var mu sync.Mutex
	waits := map[EventKind][]time.Duration{}
	hook := func(e Event) {
		mu.Lock()
		waits[e.Kind] = append(waits[e.Kind], e.Wait)
		mu.Unlock()
	}
	// One worker and a slow first task: the second task's queue wait must
	// reflect the time it sat behind the first.
	tasks := []Task{
		{Label: "slow", Fold: -1, Run: func(context.Context) error {
			time.Sleep(20 * time.Millisecond)
			return nil
		}},
		{Label: "queued", Fold: -1, Run: func(context.Context) error { return nil }},
	}
	if err := Run(context.Background(), Options{Workers: 1, Hook: hook}, tasks...); err != nil {
		t.Fatal(err)
	}
	starts := waits[TaskStart]
	if len(starts) != 2 {
		t.Fatalf("%d TaskStart events, want 2", len(starts))
	}
	if starts[0] > starts[1] {
		// Queue order is task order with one worker.
		starts[0], starts[1] = starts[1], starts[0]
	}
	if starts[1] < 15*time.Millisecond {
		t.Errorf("queued task waited %v, want >= ~20ms behind the slow task", starts[1])
	}
	// Completion events carry the same wait as their start.
	if len(waits[TaskDone]) != 2 {
		t.Fatalf("%d TaskDone events, want 2", len(waits[TaskDone]))
	}
}

func TestWorkerLocalReusedWithinWorker(t *testing.T) {
	// A single-worker pool runs every task on one goroutine, so each task
	// must observe the same worker-local value.
	var mu sync.Mutex
	seen := make(map[*int]int)
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{
			Label: "local",
			Fold:  -1,
			Run: func(ctx context.Context) error {
				v := WorkerLocal(ctx, "slot", func() any { return new(int) }).(*int)
				mu.Lock()
				seen[v]++
				mu.Unlock()
				return nil
			},
		}
	}
	if err := Run(context.Background(), Options{Workers: 1}, tasks...); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 {
		t.Fatalf("one worker produced %d distinct locals, want 1", len(seen))
	}
	for _, count := range seen {
		if count != 8 {
			t.Fatalf("local used %d times, want 8", count)
		}
	}
}

func TestWorkerLocalDistinctAcrossWorkers(t *testing.T) {
	// With as many workers as tasks and a barrier keeping all tasks in
	// flight at once, every task runs on its own worker and must get its
	// own local value.
	const n = 4
	var mu sync.Mutex
	seen := make(map[*int]bool)
	barrier := make(chan struct{})
	var arrived sync.WaitGroup
	arrived.Add(n)
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{
			Label: "local",
			Fold:  -1,
			Run: func(ctx context.Context) error {
				v := WorkerLocal(ctx, "slot", func() any { return new(int) }).(*int)
				mu.Lock()
				seen[v] = true
				mu.Unlock()
				arrived.Done()
				<-barrier
				return nil
			},
		}
	}
	go func() {
		arrived.Wait()
		close(barrier)
	}()
	if err := Run(context.Background(), Options{Workers: n}, tasks...); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("%d workers produced %d distinct locals", n, len(seen))
	}
}

func TestWorkerLocalOutsidePool(t *testing.T) {
	// Outside a pool there is no worker store: every call constructs a
	// fresh value (correct, just unshared).
	a := WorkerLocal(context.Background(), "slot", func() any { return new(int) }).(*int)
	b := WorkerLocal(context.Background(), "slot", func() any { return new(int) }).(*int)
	if a == b {
		t.Fatal("calls outside a pool shared a value")
	}
}

func TestWorkerLocalDistinctKeys(t *testing.T) {
	// Distinct keys must map to distinct slots within one worker.
	err := Run(context.Background(), Options{Workers: 1}, Task{
		Label: "keys",
		Fold:  -1,
		Run: func(ctx context.Context) error {
			a := WorkerLocal(ctx, "a", func() any { return new(int) }).(*int)
			b := WorkerLocal(ctx, "b", func() any { return new(int) }).(*int)
			if a == b {
				return errors.New("keys a and b shared a slot")
			}
			if again := WorkerLocal(ctx, "a", func() any { return new(int) }).(*int); again != a {
				return errors.New("key a was not stable across calls")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunFaultInjectionHooks pins the engine's two fault hook points: a
// forced task-start fault fails the task before its body runs, and a
// task-done fault turns a successful body into a failure — while a task
// that failed on its own keeps its original error.
func TestRunFaultInjectionHooks(t *testing.T) {
	errBoom := errors.New("injected")

	t.Run("task start", func(t *testing.T) {
		restore := faultinject.Activate(faultinject.New(1, map[faultinject.Point]faultinject.Plan{
			faultinject.EngineTaskStart: {Every: 1, Err: errBoom},
		}))
		defer restore()
		var ran atomic.Bool
		err := Run(context.Background(), Options{Workers: 1}, Task{Fold: -1, Run: func(ctx context.Context) error {
			ran.Store(true)
			return nil
		}})
		if !errors.Is(err, errBoom) {
			t.Fatalf("err = %v, want injected fault", err)
		}
		if ran.Load() {
			t.Fatal("task body ran despite a start fault")
		}
	})

	t.Run("task done", func(t *testing.T) {
		restore := faultinject.Activate(faultinject.New(1, map[faultinject.Point]faultinject.Plan{
			faultinject.EngineTaskDone: {Every: 1, Err: errBoom},
		}))
		defer restore()
		var ran atomic.Bool
		err := Run(context.Background(), Options{Workers: 1}, Task{Fold: -1, Run: func(ctx context.Context) error {
			ran.Store(true)
			return nil
		}})
		if !errors.Is(err, errBoom) {
			t.Fatalf("err = %v, want injected fault", err)
		}
		if !ran.Load() {
			t.Fatal("task body did not run")
		}
	})

	t.Run("task error wins over done fault", func(t *testing.T) {
		restore := faultinject.Activate(faultinject.New(1, map[faultinject.Point]faultinject.Plan{
			faultinject.EngineTaskDone: {Every: 1, Err: errBoom},
		}))
		defer restore()
		errOwn := errors.New("own failure")
		err := Run(context.Background(), Options{Workers: 1}, Task{Fold: -1, Run: func(ctx context.Context) error {
			return errOwn
		}})
		if !errors.Is(err, errOwn) || errors.Is(err, errBoom) {
			t.Fatalf("err = %v, want the task's own error untouched by the done hook", err)
		}
	})
}
