// Package tree implements bagged CART regression trees (TREE-B), the
// tree-ensemble surrogate family. Each tree is grown on a deterministic
// per-seed bootstrap resample with greedy variance-reduction splits, and
// feature importance comes from out-of-bag permutation: how much each
// tree's OOB error degrades when one feature's OOB values are shuffled.
//
// Like every family in the registry, fits are bit-identical for a fixed
// seed regardless of worker count: each tree derives a private RNG stream
// from (seed, tree index), trees train as independent engine tasks, and
// all cross-tree aggregation happens in tree order after the pool drains.
package tree

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"perfpred/internal/engine"
	"perfpred/internal/stat"
)

// Config configures Fit.
type Config struct {
	// Trees is the ensemble size (0 = 64).
	Trees int
	// MaxDepth bounds tree depth (0 = 8).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (0 = 2).
	MinLeaf int
	// Seed drives every stochastic choice (bootstraps, permutations).
	Seed int64
	// Workers bounds tree-level parallelism (0 = 1).
	Workers int
	// Hook, if non-nil, observes per-tree task and kernel-time events.
	// Observability only; never affects results.
	Hook engine.Hook
}

func (c Config) withDefaults() Config {
	if c.Trees <= 0 {
		c.Trees = 64
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

// node is one flat-array tree node. Internal nodes route row r left when
// r[Feature] <= Threshold; leaves (Feature == -1) predict Value.
type node struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t,omitempty"`
	Left      int32   `json:"l,omitempty"`
	Right     int32   `json:"r,omitempty"`
	Value     float64 `json:"v"`
}

// Model is a fitted bagged ensemble.
type Model struct {
	trees     [][]node
	numInputs int
	// importance is the fit-time OOB permutation importance per input
	// column, scaled so the strongest column is 1.0.
	importance []float64
}

// Fit grows the configured ensemble on x and y.
func Fit(ctx context.Context, x [][]float64, y []float64, cfg Config) (*Model, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := len(x)
	if n == 0 {
		return nil, errors.New("tree: no training data")
	}
	if len(y) != n {
		return nil, errors.New("tree: x/y length mismatch")
	}
	p := len(x[0])
	if p == 0 {
		return nil, errors.New("tree: zero-width inputs")
	}
	for _, row := range x {
		if len(row) != p {
			return nil, errors.New("tree: ragged input matrix")
		}
	}
	if n < 4 {
		return nil, errors.New("tree: need at least 4 records")
	}

	trees := make([][]node, cfg.Trees)
	perTreeImp := make([][]float64, cfg.Trees)
	tasks := make([]engine.Task, cfg.Trees)
	for t := 0; t < cfg.Trees; t++ {
		t := t
		tasks[t] = engine.Task{
			Label: fmt.Sprintf("cart tree %d", t),
			Model: "TREE-B",
			Fold:  -1,
			Run: func(ctx context.Context) error {
				if err := ctx.Err(); err != nil {
					return err
				}
				start := time.Now()
				treeSeed := stat.DeriveSeed(cfg.Seed, 1000+t)
				r := stat.NewRand(treeSeed)
				bag := make([]int, n)
				inBag := make([]bool, n)
				for i := range bag {
					j := r.Intn(n)
					bag[i] = j
					inBag[j] = true
				}
				b := &builder{x: x, y: y, maxDepth: cfg.MaxDepth, minLeaf: cfg.MinLeaf}
				b.build(bag, 0)
				trees[t] = b.nodes
				perTreeImp[t] = oobImportance(b.nodes, x, y, inBag, treeSeed)
				if cfg.Hook != nil {
					cfg.Hook.Emit(engine.Event{
						Kind: engine.KernelTime, Label: fmt.Sprintf("cart tree %d", t),
						Model: "TREE-B", Fold: -1,
						Samples: int64(n), Elapsed: time.Since(start),
					})
				}
				return nil
			},
		}
	}
	if err := engine.Run(ctx, engine.Options{Workers: cfg.Workers, Hook: cfg.Hook}, tasks...); err != nil {
		return nil, err
	}

	// Cross-tree aggregation in tree order, after the pool drains, so the
	// summation order never depends on scheduling.
	imp := make([]float64, p)
	for _, ti := range perTreeImp {
		for j, v := range ti {
			imp[j] += v
		}
	}
	normalizeImportance(imp)
	return &Model{trees: trees, numInputs: p, importance: imp}, nil
}

// normalizeImportance rescales raw accumulated scores so the strongest
// column reads 1.0 (matching the neural family's 0-to-1 convention).
func normalizeImportance(imp []float64) {
	maxV := 0.0
	for _, v := range imp {
		if v > maxV {
			maxV = v
		}
	}
	if maxV <= 0 {
		return
	}
	for j := range imp {
		imp[j] /= maxV
	}
}

// oobImportance measures permutation importance on the tree's out-of-bag
// rows: the increase in OOB SSE when one feature's OOB values are
// shuffled. Negative increases (noise) clamp to zero. The permutation of
// feature j draws from the derived stream (treeSeed, 1+j), so it is
// independent of how the tree was grown and of every other feature.
func oobImportance(nodes []node, x [][]float64, y []float64, inBag []bool, treeSeed int64) []float64 {
	p := len(x[0])
	imp := make([]float64, p)
	var oob []int
	for i, in := range inBag {
		if !in {
			oob = append(oob, i)
		}
	}
	if len(oob) < 2 {
		return imp
	}
	base := 0.0
	for _, i := range oob {
		d := predictTree(nodes, x[i]) - y[i]
		base += d * d
	}
	buf := make([]float64, p)
	vals := make([]float64, len(oob))
	for j := 0; j < p; j++ {
		r := stat.NewRand(stat.DeriveSeed(treeSeed, 1+j))
		for k, i := range oob {
			vals[k] = x[i][j]
		}
		r.Shuffle(len(vals), func(a, b int) { vals[a], vals[b] = vals[b], vals[a] })
		sse := 0.0
		for k, i := range oob {
			copy(buf, x[i])
			buf[j] = vals[k]
			d := predictTree(nodes, buf) - y[i]
			sse += d * d
		}
		if inc := (sse - base) / float64(len(oob)); inc > 0 {
			imp[j] = inc
		}
	}
	return imp
}

// builder grows one tree into a flat node array.
type builder struct {
	x        [][]float64
	y        []float64
	maxDepth int
	minLeaf  int
	nodes    []node
}

// build appends the subtree over idx (bootstrap indices, may repeat) and
// returns its root's flat index.
func (b *builder) build(idx []int, depth int) int32 {
	sum, sum2 := 0.0, 0.0
	for _, i := range idx {
		sum += b.y[i]
		sum2 += b.y[i] * b.y[i]
	}
	mean := sum / float64(len(idx))
	sse := sum2 - sum*sum/float64(len(idx))
	id := int32(len(b.nodes))
	b.nodes = append(b.nodes, node{Feature: -1, Value: mean})
	if depth >= b.maxDepth || len(idx) < 2*b.minLeaf || sse <= 0 {
		return id
	}
	feat, thr, ok := b.bestSplit(idx, sum, sum2)
	if !ok {
		return id
	}
	var left, right []int
	for _, i := range idx {
		if b.x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	l := b.build(left, depth+1)
	r := b.build(right, depth+1)
	b.nodes[id] = node{Feature: feat, Threshold: thr, Left: l, Right: r, Value: mean}
	return id
}

// bestSplit finds the (feature, threshold) pair with the largest SSE
// reduction. Features are scanned in ascending index order and each
// feature's thresholds in ascending value order, and a candidate must
// strictly beat the incumbent, so ties deterministically resolve to the
// lowest feature and lowest threshold.
func (b *builder) bestSplit(idx []int, sum, sum2 float64) (feat int, thr float64, ok bool) {
	n := len(idx)
	parentSSE := sum2 - sum*sum/float64(n)
	order := make([]int, n)
	bestGain := 0.0
	for j := 0; j < len(b.x[0]); j++ {
		copy(order, idx)
		// Secondary sort key: the sample index, so equal feature values
		// order identically on every platform and run.
		sort.Slice(order, func(a, c int) bool {
			va, vc := b.x[order[a]][j], b.x[order[c]][j]
			if va != vc {
				return va < vc
			}
			return order[a] < order[c]
		})
		sumL, sum2L := 0.0, 0.0
		for k := 0; k < n-1; k++ {
			yi := b.y[order[k]]
			sumL += yi
			sum2L += yi * yi
			v, next := b.x[order[k]][j], b.x[order[k+1]][j]
			if v == next {
				continue
			}
			nl := k + 1
			nr := n - nl
			if nl < b.minLeaf || nr < b.minLeaf {
				continue
			}
			sumR := sum - sumL
			sum2R := sum2 - sum2L
			sseL := sum2L - sumL*sumL/float64(nl)
			sseR := sum2R - sumR*sumR/float64(nr)
			if gain := parentSSE - sseL - sseR; gain > bestGain {
				bestGain = gain
				feat = j
				thr = v + (next-v)/2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

// predictTree walks one tree for one row.
func predictTree(nodes []node, row []float64) float64 {
	i := int32(0)
	for {
		nd := &nodes[i]
		if nd.Feature < 0 {
			return nd.Value
		}
		if row[nd.Feature] <= nd.Threshold {
			i = nd.Left
		} else {
			i = nd.Right
		}
	}
}

// Predict returns the ensemble mean for one encoded input row.
func (m *Model) Predict(row []float64) float64 {
	sum := 0.0
	for _, t := range m.trees {
		sum += predictTree(t, row)
	}
	return sum / float64(len(m.trees))
}

// PredictAllInto writes the ensemble prediction for every row of x into
// dst. Tree walks need no scratch, so the call never allocates.
func (m *Model) PredictAllInto(dst []float64, x [][]float64) {
	if len(dst) != len(x) {
		panic("tree: PredictAllInto dst/x length mismatch")
	}
	for i, row := range x {
		dst[i] = m.Predict(row)
	}
}

// PredictSpreadInto writes, for every row of x, the ensemble-mean
// prediction into mean and the per-tree spread — the population standard
// deviation of the member trees' predictions, in model-space units —
// into spread. The spread is the ensemble's internal disagreement, the
// uncertainty signal active-learning acquisition ranks unlabeled
// candidates by. Like PredictAllInto the walk needs no scratch and the
// call never allocates; mean[i] is bit-identical to Predict(x[i]).
func (m *Model) PredictSpreadInto(mean, spread []float64, x [][]float64) {
	if len(mean) != len(x) || len(spread) != len(x) {
		panic("tree: PredictSpreadInto mean/spread/x length mismatch")
	}
	k := float64(len(m.trees))
	for i, row := range x {
		sum, sum2 := 0.0, 0.0
		for _, t := range m.trees {
			v := predictTree(t, row)
			sum += v
			sum2 += v * v
		}
		mu := sum / k
		va := sum2/k - mu*mu
		if va < 0 { // guard the subtraction's rounding noise
			va = 0
		}
		mean[i] = mu
		spread[i] = math.Sqrt(va)
	}
}

// NumInputs returns the input width the model expects.
func (m *Model) NumInputs() int { return m.numInputs }

// NumTrees returns the ensemble size.
func (m *Model) NumTrees() int { return len(m.trees) }

// Importance returns the fit-time out-of-bag permutation importance per
// input column. The probe matrix is unused: unlike sensitivity analysis,
// permutation importance needs the training targets, so it is computed
// once during Fit and stored with the model.
func (m *Model) Importance([][]float64) ([]float64, error) {
	if len(m.importance) != m.numInputs {
		return nil, errors.New("tree: model carries no importance scores")
	}
	out := make([]float64, m.numInputs)
	copy(out, m.importance)
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, errors.New("tree: non-finite importance score")
		}
	}
	return out, nil
}
