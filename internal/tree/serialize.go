package tree

import (
	"encoding/json"
	"fmt"
)

type modelState struct {
	Version    int       `json:"version"`
	NumInputs  int       `json:"num_inputs"`
	Importance []float64 `json:"importance"`
	Trees      [][]node  `json:"trees"`
}

const modelVersion = 1

// MarshalJSON serializes the fitted ensemble so it can be persisted and
// later used for prediction without refitting.
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelState{
		Version:    modelVersion,
		NumInputs:  m.numInputs,
		Importance: m.importance,
		Trees:      m.trees,
	})
}

// UnmarshalModel restores a model serialized by MarshalJSON, validating
// the node arrays so a corrupted artifact can never send a tree walk out
// of bounds.
func UnmarshalModel(data []byte) (*Model, error) {
	var st modelState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("tree: decoding model: %w", err)
	}
	if st.Version != modelVersion {
		return nil, fmt.Errorf("tree: unsupported model version %d", st.Version)
	}
	if st.NumInputs <= 0 {
		return nil, fmt.Errorf("tree: invalid input width %d", st.NumInputs)
	}
	if len(st.Trees) == 0 {
		return nil, fmt.Errorf("tree: model has no trees")
	}
	if len(st.Importance) != st.NumInputs {
		return nil, fmt.Errorf("tree: %d importance scores for %d inputs", len(st.Importance), st.NumInputs)
	}
	for ti, nodes := range st.Trees {
		if len(nodes) == 0 {
			return nil, fmt.Errorf("tree: tree %d is empty", ti)
		}
		for ni, nd := range nodes {
			if nd.Feature < 0 {
				continue // leaf
			}
			if nd.Feature >= st.NumInputs {
				return nil, fmt.Errorf("tree: tree %d node %d splits on feature %d of %d", ti, ni, nd.Feature, st.NumInputs)
			}
			// Children must point strictly forward in the flat array, which
			// also guarantees walks terminate.
			if nd.Left <= int32(ni) || nd.Right <= int32(ni) ||
				int(nd.Left) >= len(nodes) || int(nd.Right) >= len(nodes) {
				return nil, fmt.Errorf("tree: tree %d node %d has invalid children [%d, %d]", ti, ni, nd.Left, nd.Right)
			}
		}
	}
	return &Model{trees: st.Trees, numInputs: st.NumInputs, importance: st.Importance}, nil
}
