package tree

import (
	"context"
	"testing"

	"perfpred/internal/model"
)

// TestFamilyConformance holds TREE-B to the same registry contract as
// every paper family: deterministic fits at any worker count, prompt
// cancellation, bit-identical persistence, and allocation-free batch
// prediction.
func TestFamilyConformance(t *testing.T) {
	model.TestFamily(t, KindTreeB)
}

func TestFamilyEpochScaleSizesEnsemble(t *testing.T) {
	fam, ok := model.Lookup(KindTreeB)
	if !ok {
		t.Fatal("TREE-B not registered")
	}
	x, y := synthGrid(64, 3)
	for _, tc := range []struct {
		scale float64
		want  int
	}{
		{0, defaultTrees}, // unset: full ensemble
		{1, defaultTrees}, // explicit full scale
		{0.25, 16},        // scaled down
		{0.01, 8},         // floor: never fewer than 8 trees
	} {
		m, err := fam.Fit(context.Background(), x, y, nil, model.FitConfig{Seed: 5, Workers: 1, EpochScale: tc.scale})
		if err != nil {
			t.Fatalf("scale %v: %v", tc.scale, err)
		}
		got := m.(familyModel).NumTrees()
		if got != tc.want {
			t.Errorf("scale %v: %d trees, want %d", tc.scale, got, tc.want)
		}
	}
}
