package tree

import (
	"context"

	"perfpred/internal/dataset"
	"perfpred/internal/model"
)

// KindTreeB is TREE-B's registry kind. The paper zoo occupies 0–9; this
// number is part of the artifact format and can never change.
const KindTreeB model.Kind = 10

// artifactTag is the versioned payload identifier of every tree artifact.
const artifactTag = "tree/v1"

// defaultTrees is the ensemble size at EpochScale 1.0; the scale shrinks
// it for fast test runs the same way it shrinks neural epoch budgets.
const defaultTrees = 64

// familyModel adapts *Model to the registry's model.Model contract.
// NumInputs and Importance come from the embedded model unchanged.
type familyModel struct{ *Model }

// PredictAllInto scores every row; tree walks need no scratch.
func (f familyModel) PredictAllInto(dst []float64, x [][]float64, _ model.Scratch) {
	f.Model.PredictAllInto(dst, x)
}

// Marshal serializes the model payload (the family tag travels in the
// enclosing artifact, not here).
func (f familyModel) Marshal() ([]byte, error) { return f.Model.MarshalJSON() }

func init() {
	model.Register(KindTreeB, model.Family{
		Name: "TREE-B",
		Tag:  artifactTag,
		// Trees split raw column values, so scaling is irrelevant to them —
		// but the one-hot encoding keeps categoricals usable without a
		// numeric mapping, and the scaled target matches the family's
		// in-model units to the neural zoo's.
		Mode: dataset.ForNN,
		Fit: func(ctx context.Context, x [][]float64, y []float64, _ []string, cfg model.FitConfig) (model.Model, error) {
			scale := cfg.EpochScale
			if scale <= 0 {
				scale = 1
			}
			trees := int(float64(defaultTrees) * scale)
			if trees < 8 {
				trees = 8
			}
			fitted, err := Fit(ctx, x, y, Config{
				Trees:   trees,
				Seed:    cfg.Seed,
				Workers: cfg.Workers,
				Hook:    cfg.Hook,
			})
			if err != nil {
				return nil, err
			}
			return familyModel{fitted}, nil
		},
		NewScratch: func() model.Scratch { return nil },
		Unmarshal: func(data []byte) (model.Model, error) {
			loaded, err := UnmarshalModel(data)
			if err != nil {
				return nil, err
			}
			return familyModel{loaded}, nil
		},
	})
}
