package tree

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"perfpred/internal/stat"
)

// synthGrid builds a deterministic regression problem: y depends strongly
// on column 0, weakly on column 1, and not at all on the rest.
func synthGrid(n, p int) (x [][]float64, y []float64) {
	r := stat.NewRand(99)
	x = make([][]float64, n)
	y = make([]float64, n)
	for i := range x {
		row := make([]float64, p)
		for j := range row {
			row[j] = float64(r.Intn(16)) / 15
		}
		x[i] = row
		y[i] = 10*row[0] + row[1]
	}
	return x, y
}

func fitQuick(t *testing.T, cfg Config) *Model {
	t.Helper()
	x, y := synthGrid(120, 4)
	m, err := Fit(context.Background(), x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFitValidatesInputs(t *testing.T) {
	ctx := context.Background()
	ok := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	y4 := []float64{1, 2, 3, 4}
	for name, tc := range map[string]struct {
		x [][]float64
		y []float64
	}{
		"empty":    {nil, nil},
		"mismatch": {ok, []float64{1}},
		"zero width": {
			[][]float64{{}, {}, {}, {}}, y4,
		},
		"ragged": {
			[][]float64{{1, 2}, {3}, {5, 6}, {7, 8}}, y4,
		},
		"too few": {
			[][]float64{{1, 2}, {3, 4}}, []float64{1, 2},
		},
	} {
		if _, err := Fit(ctx, tc.x, tc.y, Config{Trees: 2}); err == nil {
			t.Errorf("%s: Fit accepted invalid input", name)
		}
	}
	if _, err := Fit(ctx, ok, y4, Config{Trees: 2}); err != nil {
		t.Fatalf("minimal valid input rejected: %v", err)
	}
}

func TestFitHonorsCancelledContext(t *testing.T) {
	x, y := synthGrid(120, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Fit(ctx, x, y, Config{Trees: 4}); err == nil {
		t.Fatal("cancelled fit succeeded")
	}
}

// TestDeterminism pins the seed contract: one seed is bit-identical across
// worker counts, and a different seed grows a different ensemble.
func TestDeterminism(t *testing.T) {
	x, _ := synthGrid(120, 4)
	base := fitQuick(t, Config{Trees: 16, Seed: 7, Workers: 1})
	wide := fitQuick(t, Config{Trees: 16, Seed: 7, Workers: 4})
	other := fitQuick(t, Config{Trees: 16, Seed: 8, Workers: 1})
	diverged := false
	for _, row := range x {
		if wide.Predict(row) != base.Predict(row) {
			t.Fatal("same seed, different workers: predictions differ")
		}
		if other.Predict(row) != base.Predict(row) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 7 and 8 grew identical ensembles")
	}
}

// TestSplitsRecoverSignal checks the greedy splitter actually learns: on a
// problem dominated by column 0, ensemble predictions must track the
// target far better than the global mean.
func TestSplitsRecoverSignal(t *testing.T) {
	x, y := synthGrid(120, 4)
	m := fitQuick(t, Config{Trees: 32, Seed: 3})
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	sseModel, sseMean := 0.0, 0.0
	for i, row := range x {
		d := m.Predict(row) - y[i]
		sseModel += d * d
		d = mean - y[i]
		sseMean += d * d
	}
	if sseModel > sseMean/10 {
		t.Fatalf("ensemble SSE %v vs mean-baseline %v: trees did not learn the signal", sseModel, sseMean)
	}
}

// TestImportanceRanksSignal: OOB permutation importance must rank the
// strong column first, scale it to 1.0, and give pure-noise columns less.
func TestImportanceRanksSignal(t *testing.T) {
	m := fitQuick(t, Config{Trees: 32, Seed: 3})
	imp, err := m.Importance(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != 4 {
		t.Fatalf("%d importance scores, want 4", len(imp))
	}
	if imp[0] != 1.0 {
		t.Fatalf("dominant column scored %v, want 1.0 after normalization", imp[0])
	}
	for j := 1; j < 4; j++ {
		if imp[j] >= imp[0] {
			t.Fatalf("column %d importance %v >= dominant column's %v", j, imp[j], imp[0])
		}
	}
	if imp[2] > 0.5 || imp[3] > 0.5 {
		t.Fatalf("noise columns scored %v, %v — want well below the signal", imp[2], imp[3])
	}
}

func TestPredictAllIntoMatchesPredict(t *testing.T) {
	x, _ := synthGrid(64, 4)
	m := fitQuick(t, Config{Trees: 8, Seed: 1})
	dst := make([]float64, len(x))
	m.PredictAllInto(dst, x)
	for i, row := range x {
		if dst[i] != m.Predict(row) {
			t.Fatalf("row %d: batch %v, scalar %v", i, dst[i], m.Predict(row))
		}
	}
	allocs := testing.AllocsPerRun(20, func() { m.PredictAllInto(dst, x) })
	if allocs != 0 {
		t.Fatalf("PredictAllInto allocates %v/op, want 0", allocs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dst/x length mismatch did not panic")
		}
	}()
	m.PredictAllInto(make([]float64, 1), x)
}

func TestSerializeRoundTrip(t *testing.T) {
	x, _ := synthGrid(120, 4)
	m := fitQuick(t, Config{Trees: 8, Seed: 2})
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumInputs() != m.NumInputs() || back.NumTrees() != m.NumTrees() {
		t.Fatal("shape changed across persistence")
	}
	for _, row := range x {
		if back.Predict(row) != m.Predict(row) {
			t.Fatal("round-tripped model predicts differently")
		}
	}
	bi, err := back.Importance(nil)
	if err != nil {
		t.Fatal(err)
	}
	mi, _ := m.Importance(nil)
	for j := range mi {
		if bi[j] != mi[j] {
			t.Fatal("importance changed across persistence")
		}
	}
}

// TestUnmarshalRejectsCorruptArtifacts: every structural invariant the
// loader promises — version, width, tree presence, importance length,
// feature range, and strictly-forward children (walk termination).
func TestUnmarshalRejectsCorruptArtifacts(t *testing.T) {
	leaf := node{Feature: -1, Value: 1}
	valid := modelState{
		Version:    modelVersion,
		NumInputs:  2,
		Importance: []float64{1, 0},
		Trees: [][]node{{
			{Feature: 0, Threshold: 0.5, Left: 1, Right: 2},
			leaf, leaf,
		}},
	}
	if _, err := UnmarshalModel(mustJSON(t, valid)); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}
	for name, corrupt := range map[string]func(st *modelState){
		"bad version":       func(st *modelState) { st.Version = 9 },
		"zero width":        func(st *modelState) { st.NumInputs = 0 },
		"no trees":          func(st *modelState) { st.Trees = nil },
		"empty tree":        func(st *modelState) { st.Trees = [][]node{{}} },
		"importance length": func(st *modelState) { st.Importance = []float64{1} },
		"feature range":     func(st *modelState) { st.Trees[0][0].Feature = 2 },
		"backward child":    func(st *modelState) { st.Trees[0][0].Left = 0 },
		"child overflow":    func(st *modelState) { st.Trees[0][0].Right = 9 },
	} {
		st := valid
		st.Importance = append([]float64(nil), valid.Importance...)
		st.Trees = [][]node{append([]node(nil), valid.Trees[0]...)}
		corrupt(&st)
		if _, err := UnmarshalModel(mustJSON(t, st)); err == nil {
			t.Errorf("%s: corrupted artifact accepted", name)
		}
	}
	if _, err := UnmarshalModel([]byte("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func mustJSON(t *testing.T, st modelState) []byte {
	t.Helper()
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestImportanceFiniteGuard: a model whose stored scores are corrupted
// reports an error instead of propagating NaNs into reports.
func TestImportanceFiniteGuard(t *testing.T) {
	m := fitQuick(t, Config{Trees: 4, Seed: 1})
	m.importance[0] = math.NaN()
	if _, err := m.Importance(nil); err == nil {
		t.Fatal("NaN importance accepted")
	}
	m.importance = m.importance[:1]
	if _, err := m.Importance(nil); err == nil {
		t.Fatal("truncated importance accepted")
	}
}

func TestPredictSpreadIntoMatchesPredict(t *testing.T) {
	x, _ := synthGrid(64, 4)
	m := fitQuick(t, Config{Trees: 8, Seed: 1})
	mean := make([]float64, len(x))
	spread := make([]float64, len(x))
	m.PredictSpreadInto(mean, spread, x)
	for i, row := range x {
		if mean[i] != m.Predict(row) {
			t.Fatalf("row %d: spread-path mean %v != Predict %v", i, mean[i], m.Predict(row))
		}
		// Cross-check the spread against a two-pass population deviation.
		vals := make([]float64, len(m.trees))
		mu := 0.0
		for j, tr := range m.trees {
			vals[j] = predictTree(tr, row)
			mu += vals[j]
		}
		mu /= float64(len(vals))
		va := 0.0
		for _, v := range vals {
			va += (v - mu) * (v - mu)
		}
		want := math.Sqrt(va / float64(len(vals)))
		if math.Abs(spread[i]-want) > 1e-9 {
			t.Fatalf("row %d: spread %v, want %v", i, spread[i], want)
		}
		if spread[i] < 0 {
			t.Fatalf("row %d: negative spread %v", i, spread[i])
		}
	}
	allocs := testing.AllocsPerRun(20, func() { m.PredictSpreadInto(mean, spread, x) })
	if allocs != 0 {
		t.Fatalf("PredictSpreadInto allocates %v/op, want 0", allocs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mean/spread/x length mismatch did not panic")
		}
	}()
	m.PredictSpreadInto(make([]float64, 1), spread, x)
}

// TestSingleTreeSpreadIsZero: an ensemble of one tree cannot disagree
// with itself.
func TestSingleTreeSpreadIsZero(t *testing.T) {
	x, _ := synthGrid(32, 4)
	m := fitQuick(t, Config{Trees: 1, Seed: 3})
	mean := make([]float64, len(x))
	spread := make([]float64, len(x))
	m.PredictSpreadInto(mean, spread, x)
	for i := range spread {
		if spread[i] != 0 {
			t.Fatalf("row %d: single-tree spread %v, want 0", i, spread[i])
		}
	}
}
