package tree

import (
	"context"
	"testing"

	"perfpred/internal/stat"
)

func benchData(n, p int) (x [][]float64, y []float64) {
	r := stat.NewRand(7)
	x = make([][]float64, n)
	y = make([]float64, n)
	for i := range x {
		row := make([]float64, p)
		for j := range row {
			row[j] = float64(r.Intn(64)) / 63
		}
		x[i] = row
		y[i] = 5*row[0] + 2*row[1]*row[1] + row[2]
	}
	return x, y
}

// BenchmarkTrainTree measures a full TREE-B fit (bootstraps, greedy
// splits, and OOB permutation importance) at the default ensemble size.
func BenchmarkTrainTree(b *testing.B) {
	x, y := benchData(512, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(context.Background(), x, y, Config{Seed: 11, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreePredictAll measures steady-state batch scoring — the
// serving hot path, which must not allocate.
func BenchmarkTreePredictAll(b *testing.B) {
	x, y := benchData(512, 8)
	m, err := Fit(context.Background(), x, y, Config{Seed: 11, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictAllInto(dst, x)
	}
	b.SetBytes(int64(len(x) * 8))
}
