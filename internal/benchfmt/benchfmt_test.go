package benchfmt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: perfpred/internal/neural
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkTrainQuick           	     147	   8000000 ns/op	 1752971 B/op	   34113 allocs/op
BenchmarkTrainQuick           	     159	   6000000 ns/op	 1752969 B/op	   34113 allocs/op
BenchmarkPredictAll-8         	     921	    400000 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	perfpred/internal/neural	19.955s
`

func TestParse(t *testing.T) {
	snap, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if snap.GOOS != "linux" || snap.GOARCH != "amd64" || snap.Pkg != "perfpred/internal/neural" {
		t.Errorf("metadata = %q %q %q", snap.GOOS, snap.GOARCH, snap.Pkg)
	}
	if !strings.Contains(snap.CPU, "2.70GHz") {
		t.Errorf("cpu = %q", snap.CPU)
	}
	q, ok := snap.Benchmarks["TrainQuick"]
	if !ok {
		t.Fatalf("missing TrainQuick: %v", snap.Benchmarks)
	}
	if q.Runs != 2 || q.NsPerOp != 7000000 {
		t.Errorf("TrainQuick = %+v, want 2 runs averaging 7000000 ns/op", q)
	}
	if q.BytesPerOp != 1752969 || q.AllocsPerOp != 34113 {
		t.Errorf("TrainQuick mem = %+v", q)
	}
	p, ok := snap.Benchmarks["PredictAll"]
	if !ok {
		t.Fatal("missing PredictAll (GOMAXPROCS suffix not stripped?)")
	}
	if p.Runs != 1 || p.NsPerOp != 400000 || p.AllocsPerOp != 0 {
		t.Errorf("PredictAll = %+v", p)
	}
}

func TestParseNoBenchmem(t *testing.T) {
	snap, err := Parse(strings.NewReader("BenchmarkX\t10\t123 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	x := snap.Benchmarks["X"]
	if x.NsPerOp != 123 || x.BytesPerOp != 0 {
		t.Errorf("X = %+v", x)
	}
}

func TestLoadRejectsMissingAndCorrupt(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("Load accepted a missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("Load accepted non-JSON")
	}
}
