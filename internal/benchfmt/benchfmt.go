// Package benchfmt parses `go test -bench` text output into the stable
// snapshot schema the repo commits as BENCH_*.json. It is shared by
// cmd/benchjson (which writes snapshots) and cmd/benchdiff (which gates
// fresh measurements against a committed snapshot).
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated measurement.
type Result struct {
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Baseline join (present only when a baseline is given and names match).
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

// Snapshot is the whole JSON document.
type Snapshot struct {
	GOOS   string `json:"goos,omitempty"`
	GOARCH string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Pkg is the first benchmarked package; Pkgs lists every package when
	// one run spans several (e.g. the neural and tree kernels together).
	Pkg        string            `json:"pkg,omitempty"`
	Pkgs       []string          `json:"pkgs,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Load reads a snapshot JSON file.
func Load(path string) (*Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(buf, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// accum sums repeated runs of one benchmark before averaging.
type accum struct {
	runs   int
	ns     float64
	bytes  int64
	allocs int64
}

// Parse reads `go test -bench` output and aggregates benchmark lines.
// Repeated runs of the same benchmark (-count=N) are averaged; the
// Benchmark prefix and any -GOMAXPROCS suffix are stripped from names.
func Parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Benchmarks: map[string]Result{}}
	acc := map[string]*accum{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			snap.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg := strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			if snap.Pkg == "" {
				snap.Pkg = pkg
			}
			snap.Pkgs = append(snap.Pkgs, pkg)
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		a := acc[name]
		if a == nil {
			a = &accum{}
			acc[name] = a
		}
		a.runs++
		a.ns += ns
		// -benchmem columns are optional.
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				a.bytes = v
			case "allocs/op":
				a.allocs = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(acc))
	for name := range acc {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := acc[name]
		snap.Benchmarks[name] = Result{
			Runs:        a.runs,
			NsPerOp:     Round3(a.ns / float64(a.runs)),
			BytesPerOp:  a.bytes,
			AllocsPerOp: a.allocs,
		}
	}
	return snap, nil
}

// Round3 rounds to three decimal places, matching the committed
// snapshots.
func Round3(x float64) float64 {
	return float64(int64(x*1000+0.5)) / 1000
}
