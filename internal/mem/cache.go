// Package mem implements the memory-hierarchy substrate of the
// microprocessor study: set-associative LRU caches (the L1 instruction and
// data caches, the unified L2 and the optional L3 of paper Table 1),
// instruction and data TLBs, and a Hierarchy that chains them with
// per-level latencies the way SimpleScalar's sim-outorder does.
package mem

import (
	"errors"
	"fmt"
)

// CacheConfig describes one cache level, mirroring the Table 1 columns.
type CacheConfig struct {
	// SizeKB is the total capacity in kilobytes. Zero means the level is
	// absent (the Table 1 "0 MB" L3 option).
	SizeKB int
	// LineBytes is the block size in bytes.
	LineBytes int
	// Assoc is the set associativity.
	Assoc int
	// LatencyCycles is the hit latency of this level.
	LatencyCycles int
}

// Enabled reports whether the level exists.
func (c CacheConfig) Enabled() bool { return c.SizeKB > 0 }

// Validate checks the geometry: positive power-of-two size/line/assoc and
// at least one set.
func (c CacheConfig) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: line size %dB must be a positive power of two", c.LineBytes)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("mem: associativity %d must be positive", c.Assoc)
	}
	if c.LatencyCycles <= 0 {
		return fmt.Errorf("mem: latency %d must be positive", c.LatencyCycles)
	}
	bytes := c.SizeKB * 1024
	lines := bytes / c.LineBytes
	if lines*c.LineBytes != bytes {
		return fmt.Errorf("mem: size %dKB not a multiple of line %dB", c.SizeKB, c.LineBytes)
	}
	if lines%c.Assoc != 0 {
		return fmt.Errorf("mem: %d lines not divisible by associativity %d", lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets == 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("mem: set count %d must be a positive power of two", sets)
	}
	return nil
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg      CacheConfig
	sets     [][]uint64 // tags per way, LRU order: index 0 = MRU
	valid    [][]bool
	setMask  uint64
	lineBits uint
	accesses uint64
	misses   uint64
}

// NewCache builds a cache from a validated config. A disabled config
// yields an error; callers should skip absent levels.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if !cfg.Enabled() {
		return nil, errors.New("mem: cannot instantiate a disabled cache level")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := cfg.SizeKB * 1024 / cfg.LineBytes
	nsets := lines / cfg.Assoc
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]uint64, nsets),
		valid:   make([][]bool, nsets),
		setMask: uint64(nsets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]uint64, cfg.Assoc)
		c.valid[i] = make([]bool, cfg.Assoc)
	}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Access looks up addr, updating LRU state and filling on miss.
// It reports whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	tag := addr >> c.lineBits
	set := tag & c.setMask
	ways := c.sets[set]
	valid := c.valid[set]
	for w := range ways {
		if valid[w] && ways[w] == tag {
			// Move to MRU position.
			copy(ways[1:w+1], ways[:w])
			copy(valid[1:w+1], valid[:w])
			ways[0] = tag
			valid[0] = true
			return true
		}
	}
	c.misses++
	// Fill: evict LRU (last way), insert at MRU.
	copy(ways[1:], ways[:len(ways)-1])
	copy(valid[1:], valid[:len(valid)-1])
	ways[0] = tag
	valid[0] = true
	return false
}

// Install fills addr's line without recording an access or miss — the
// prefetch path, whose traffic must not perturb demand statistics. It
// reports whether the line was already present.
func (c *Cache) Install(addr uint64) bool {
	tag := addr >> c.lineBits
	set := tag & c.setMask
	ways := c.sets[set]
	valid := c.valid[set]
	for w := range ways {
		if valid[w] && ways[w] == tag {
			copy(ways[1:w+1], ways[:w])
			copy(valid[1:w+1], valid[:w])
			ways[0] = tag
			valid[0] = true
			return true
		}
	}
	copy(ways[1:], ways[:len(ways)-1])
	copy(valid[1:], valid[:len(valid)-1])
	ways[0] = tag
	valid[0] = true
	return false
}

// Accesses returns the number of lookups performed.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the number of lookups that missed.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses/accesses (0 before any access).
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		for w := range c.valid[i] {
			c.valid[i][w] = false
		}
	}
	c.accesses, c.misses = 0, 0
}
