package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCache(t *testing.T) *Cache {
	t.Helper()
	c, err := NewCache(CacheConfig{SizeKB: 1, LineBytes: 64, Assoc: 2, LatencyCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c // 16 lines, 8 sets, 2-way
}

func TestCacheConfigValidate(t *testing.T) {
	good := CacheConfig{SizeKB: 16, LineBytes: 32, Assoc: 4, LatencyCycles: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []CacheConfig{
		{SizeKB: 16, LineBytes: 48, Assoc: 4, LatencyCycles: 1},   // non-pow2 line
		{SizeKB: 16, LineBytes: 32, Assoc: 0, LatencyCycles: 1},   // zero assoc
		{SizeKB: 16, LineBytes: 32, Assoc: 4, LatencyCycles: 0},   // zero latency
		{SizeKB: 16, LineBytes: 32, Assoc: 3, LatencyCycles: 1},   // 512 lines %3 != 0... actually 512/3 no
		{SizeKB: 3, LineBytes: 32, Assoc: 4, LatencyCycles: 1},    // 96 lines / 4 = 24 sets, not pow2
		{SizeKB: 16, LineBytes: 32, Assoc: 512, LatencyCycles: 0}, // bad latency
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%+v): want error", i, c)
		}
	}
	disabled := CacheConfig{}
	if err := disabled.Validate(); err != nil {
		t.Fatal("disabled level should validate")
	}
	if disabled.Enabled() {
		t.Fatal("zero-size cache should be disabled")
	}
}

func TestNewCacheRejectsDisabled(t *testing.T) {
	if _, err := NewCache(CacheConfig{}); err == nil {
		t.Fatal("want error")
	}
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := smallCache(t)
	if c.Access(0x1000) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access should hit")
	}
	if !c.Access(0x1010) {
		t.Fatal("same-line access should hit")
	}
	if c.Accesses() != 3 || c.Misses() != 1 {
		t.Fatalf("stats %d/%d", c.Misses(), c.Accesses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache(t) // 8 sets, 2-way, 64B lines
	// Three addresses mapping to set 0: tags differ by 8 lines * 64B = 512B.
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a) // miss, set0 = [a]
	c.Access(b) // miss, set0 = [b, a]
	c.Access(a) // hit, set0 = [a, b]
	c.Access(d) // miss, evicts LRU=b → [d, a]
	if !c.Access(a) {
		t.Fatal("a should have survived (was MRU)")
	}
	if c.Access(b) {
		t.Fatal("b should have been evicted")
	}
}

func TestCacheFullyAssociative(t *testing.T) {
	c, err := NewCache(CacheConfig{SizeKB: 1, LineBytes: 64, Assoc: 16, LatencyCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 16 lines, 1 set: any 16 distinct lines all fit.
	for i := uint64(0); i < 16; i++ {
		c.Access(i * 64)
	}
	for i := uint64(0); i < 16; i++ {
		if !c.Access(i * 64) {
			t.Fatalf("line %d evicted in fully associative cache", i)
		}
	}
}

func TestCacheWorkingSetFitsVsSpills(t *testing.T) {
	// A working set equal to the cache hits after warm-up; double the
	// working set with a direct sweep thrashes.
	fit, _ := NewCache(CacheConfig{SizeKB: 4, LineBytes: 64, Assoc: 4, LatencyCycles: 1})
	lines := uint64(4 * 1024 / 64)
	for pass := 0; pass < 3; pass++ {
		for i := uint64(0); i < lines; i++ {
			fit.Access(i * 64)
		}
	}
	// After warm-up, passes 2-3 are all hits: misses == lines.
	if fit.Misses() != lines {
		t.Fatalf("fitting working set missed %d times, want %d", fit.Misses(), lines)
	}
	spill, _ := NewCache(CacheConfig{SizeKB: 4, LineBytes: 64, Assoc: 4, LatencyCycles: 1})
	for pass := 0; pass < 3; pass++ {
		for i := uint64(0); i < 2*lines; i++ {
			spill.Access(i * 64)
		}
	}
	// Cyclic sweep of 2× capacity under LRU misses every time.
	if spill.MissRate() < 0.99 {
		t.Fatalf("spilling working set miss rate %.3f, want ~1", spill.MissRate())
	}
}

func TestLargerCacheNeverWorseOnRandomStream(t *testing.T) {
	// Inclusion property check: a 2× cache (same line, same assoc per set
	// count scaled) should not miss more on any stream.
	gen := func(seed int64) []uint64 {
		r := rand.New(rand.NewSource(seed))
		addrs := make([]uint64, 20000)
		for i := range addrs {
			addrs[i] = uint64(r.Intn(1 << 16))
		}
		return addrs
	}
	small, _ := NewCache(CacheConfig{SizeKB: 8, LineBytes: 64, Assoc: 4, LatencyCycles: 1})
	big, _ := NewCache(CacheConfig{SizeKB: 32, LineBytes: 64, Assoc: 4, LatencyCycles: 1})
	for _, a := range gen(3) {
		small.Access(a)
		big.Access(a)
	}
	if big.Misses() > small.Misses() {
		t.Fatalf("bigger cache missed more: %d vs %d", big.Misses(), small.Misses())
	}
}

func TestCacheReset(t *testing.T) {
	c := smallCache(t)
	c.Access(0x40)
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 {
		t.Fatal("reset did not clear stats")
	}
	if c.Access(0x40) {
		t.Fatal("reset did not clear contents")
	}
}

func TestMissRateZeroBeforeAccess(t *testing.T) {
	c := smallCache(t)
	if c.MissRate() != 0 {
		t.Fatal("miss rate before any access should be 0")
	}
}

// Property: hits + misses == accesses, and re-access of the most recent
// address always hits.
func TestCacheInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		c, err := NewCache(CacheConfig{SizeKB: 2, LineBytes: 32, Assoc: 2, LatencyCycles: 1})
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		var last uint64
		for i := 0; i < 500; i++ {
			last = uint64(r.Intn(1 << 14))
			c.Access(last)
		}
		if !c.Access(last) {
			return false
		}
		return c.Accesses() == 501
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
