package mem

import "fmt"

// PageBytes is the virtual page size assumed by the TLB model (4 KiB,
// SimpleScalar's default).
const PageBytes = 4096

// TLBConfig describes a translation lookaside buffer by its coverage —
// Table 1 expresses TLB sizes as the kilobytes of address space covered
// (e.g. a 256 KB ITLB covers 64 pages).
type TLBConfig struct {
	CoverageKB int
	Assoc      int
	// MissPenaltyCycles is the page-walk cost charged per miss.
	MissPenaltyCycles int
}

// Entries returns the number of TLB entries implied by the coverage.
func (c TLBConfig) Entries() int { return c.CoverageKB * 1024 / PageBytes }

// Validate checks the TLB geometry.
func (c TLBConfig) Validate() error {
	e := c.Entries()
	if e <= 0 || e&(e-1) != 0 {
		return fmt.Errorf("mem: TLB coverage %dKB implies %d entries; need a positive power of two", c.CoverageKB, e)
	}
	if c.Assoc <= 0 || e%c.Assoc != 0 {
		return fmt.Errorf("mem: TLB associativity %d incompatible with %d entries", c.Assoc, e)
	}
	if c.MissPenaltyCycles <= 0 {
		return fmt.Errorf("mem: TLB miss penalty %d must be positive", c.MissPenaltyCycles)
	}
	return nil
}

// TLB is a set-associative translation cache over 4 KiB pages.
type TLB struct {
	cache   *Cache
	penalty int
}

// NewTLB builds a TLB from a validated config.
func NewTLB(cfg TLBConfig) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	entries := cfg.Entries()
	// Reuse the cache machinery: one "line" per page.
	inner, err := NewCache(CacheConfig{
		SizeKB:        entries * PageBytes / 1024,
		LineBytes:     PageBytes,
		Assoc:         cfg.Assoc,
		LatencyCycles: 1,
	})
	if err != nil {
		return nil, err
	}
	return &TLB{cache: inner, penalty: cfg.MissPenaltyCycles}, nil
}

// Access translates addr; it returns the page-walk penalty in cycles
// (0 on a TLB hit).
func (t *TLB) Access(addr uint64) int {
	if t.cache.Access(addr) {
		return 0
	}
	return t.penalty
}

// Misses returns the number of translations that missed.
func (t *TLB) Misses() uint64 { return t.cache.Misses() }

// Accesses returns the number of translations performed.
func (t *TLB) Accesses() uint64 { return t.cache.Accesses() }

// MissRate returns the TLB miss rate.
func (t *TLB) MissRate() float64 { return t.cache.MissRate() }

// Reset clears contents and statistics.
func (t *TLB) Reset() { t.cache.Reset() }
