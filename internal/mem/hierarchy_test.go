package mem

import (
	"math/rand"
	"testing"
)

func testTLB(cov int) TLBConfig {
	return TLBConfig{CoverageKB: cov, Assoc: 4, MissPenaltyCycles: 30}
}

func testHierCfg(l3 bool) HierarchyConfig {
	cfg := HierarchyConfig{
		L1I:           CacheConfig{SizeKB: 16, LineBytes: 32, Assoc: 4, LatencyCycles: 1},
		L1D:           CacheConfig{SizeKB: 16, LineBytes: 32, Assoc: 4, LatencyCycles: 1},
		L2:            CacheConfig{SizeKB: 256, LineBytes: 128, Assoc: 4, LatencyCycles: 12},
		ITLB:          testTLB(256),
		DTLB:          testTLB(512),
		MemLatencyCyc: 200,
	}
	if l3 {
		cfg.L3 = CacheConfig{SizeKB: 8192, LineBytes: 256, Assoc: 8, LatencyCycles: 40}
	}
	return cfg
}

func TestTLBConfig(t *testing.T) {
	cfg := testTLB(256)
	if cfg.Entries() != 64 {
		t.Fatalf("256KB coverage = %d entries, want 64", cfg.Entries())
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []TLBConfig{
		{CoverageKB: 0, Assoc: 4, MissPenaltyCycles: 30},
		{CoverageKB: 12, Assoc: 4, MissPenaltyCycles: 30}, // 3 entries
		{CoverageKB: 256, Assoc: 0, MissPenaltyCycles: 30},
		{CoverageKB: 256, Assoc: 4, MissPenaltyCycles: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad TLB case %d: want error", i)
		}
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb, err := NewTLB(testTLB(256))
	if err != nil {
		t.Fatal(err)
	}
	if got := tlb.Access(0x10000); got != 30 {
		t.Fatalf("cold TLB access penalty = %d, want 30", got)
	}
	if got := tlb.Access(0x10000 + 100); got != 0 {
		t.Fatalf("same-page access penalty = %d, want 0", got)
	}
	if tlb.Misses() != 1 || tlb.Accesses() != 2 {
		t.Fatalf("stats %d/%d", tlb.Misses(), tlb.Accesses())
	}
	tlb.Reset()
	if tlb.Accesses() != 0 {
		t.Fatal("reset failed")
	}
}

func TestHierarchyValidate(t *testing.T) {
	if err := testHierCfg(false).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := testHierCfg(true).Validate(); err != nil {
		t.Fatal(err)
	}
	noL2 := testHierCfg(false)
	noL2.L2 = CacheConfig{}
	if err := noL2.Validate(); err == nil {
		t.Fatal("missing L2: want error")
	}
	badMem := testHierCfg(false)
	badMem.MemLatencyCyc = 0
	if err := badMem.Validate(); err == nil {
		t.Fatal("zero memory latency: want error")
	}
	badTLB := testHierCfg(false)
	badTLB.ITLB.CoverageKB = 0
	if err := badTLB.Validate(); err == nil {
		t.Fatal("bad ITLB: want error")
	}
}

func TestHierarchyLatencyChain(t *testing.T) {
	h, err := NewHierarchy(testHierCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	// Cold data access: DTLB miss (30) + L1 (1) + L2 (12) + mem (200).
	if got := h.AccessData(0x100000); got != 30+1+12+200 {
		t.Fatalf("cold access latency = %d", got)
	}
	// Immediate re-access: all hits → just L1 latency.
	if got := h.AccessData(0x100000); got != 1 {
		t.Fatalf("hot access latency = %d", got)
	}
}

func TestHierarchyL3Interposes(t *testing.T) {
	h, err := NewHierarchy(testHierCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	// Cold: DTLB 30 + L1 1 + L2 12 + L3 40 + mem 200.
	if got := h.AccessData(0x200000); got != 30+1+12+40+200 {
		t.Fatalf("cold access with L3 = %d", got)
	}
	st := h.Stats()
	if st.L3Accesses != 1 || st.L3Misses != 1 || st.MemAccesses != 1 {
		t.Fatalf("L3 stats %+v", st)
	}
}

func TestHierarchyL3CatchesL2Evictions(t *testing.T) {
	// Working set larger than L2 but smaller than L3: with L3 present the
	// second sweep never goes to memory.
	cfgL3 := testHierCfg(true)
	h3, _ := NewHierarchy(cfgL3)
	h2, _ := NewHierarchy(testHierCfg(false))
	// 1 MB working set (L2 = 256KB, L3 = 8MB).
	var addrs []uint64
	for a := uint64(0); a < 1<<20; a += 128 {
		addrs = append(addrs, a)
	}
	for pass := 0; pass < 2; pass++ {
		for _, a := range addrs {
			h3.AccessData(a)
			h2.AccessData(a)
		}
	}
	if h3.Stats().MemAccesses >= h2.Stats().MemAccesses {
		t.Fatalf("L3 should cut memory trips: %d vs %d",
			h3.Stats().MemAccesses, h2.Stats().MemAccesses)
	}
}

func TestHierarchyInstVsDataSeparate(t *testing.T) {
	h, err := NewHierarchy(testHierCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	h.AccessInst(0x1000)
	h.AccessData(0x1000)
	st := h.Stats()
	if st.L1IAccesses != 1 || st.L1DAccesses != 1 {
		t.Fatalf("split L1 stats %+v", st)
	}
	// Both cold-missed into the shared L2.
	if st.L2Accesses != 2 {
		t.Fatalf("L2 accesses = %d, want 2 (unified)", st.L2Accesses)
	}
}

func TestHierarchyReset(t *testing.T) {
	h, err := NewHierarchy(testHierCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		h.AccessData(uint64(r.Intn(1 << 20)))
		h.AccessInst(uint64(r.Intn(1 << 16)))
	}
	h.Reset()
	st := h.Stats()
	if st.L1DAccesses != 0 || st.L2Accesses != 0 || st.L3Accesses != 0 || st.ITLBMisses != 0 {
		t.Fatalf("reset left stats %+v", st)
	}
}

func TestBiggerL1ReducesLatencyOnLoopingWorkload(t *testing.T) {
	small := testHierCfg(false)
	small.L1D.SizeKB = 16
	big := testHierCfg(false)
	big.L1D.SizeKB = 64
	hs, _ := NewHierarchy(small)
	hb, _ := NewHierarchy(big)
	// 32 KB circulating working set.
	totalS, totalB := 0, 0
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 32*1024; a += 32 {
			totalS += hs.AccessData(a)
			totalB += hb.AccessData(a)
		}
	}
	if totalB >= totalS {
		t.Fatalf("64KB L1 total latency %d not better than 16KB %d", totalB, totalS)
	}
}

func TestNextLinePrefetchHelpsStreaming(t *testing.T) {
	// A pure streaming sweep: with next-line prefetch most demand accesses
	// hit because the previous miss installed the line.
	base := testHierCfg(false)
	pf := base
	pf.NextLinePrefetch = true
	hBase, err := NewHierarchy(base)
	if err != nil {
		t.Fatal(err)
	}
	hPF, err := NewHierarchy(pf)
	if err != nil {
		t.Fatal(err)
	}
	// Stream 1 MB line by line (32B L1D lines).
	for a := uint64(0); a < 1<<20; a += 32 {
		hBase.AccessData(a)
		hPF.AccessData(a)
	}
	sb, sp := hBase.Stats(), hPF.Stats()
	if sp.Prefetches == 0 {
		t.Fatal("prefetcher issued nothing on a stream")
	}
	if sp.L1DMisses*3 > sb.L1DMisses*2 {
		t.Fatalf("prefetch should cut streaming L1D misses by ≥1/3: %d vs %d", sp.L1DMisses, sb.L1DMisses)
	}
	if sb.Prefetches != 0 {
		t.Fatal("disabled prefetcher counted prefetches")
	}
}

func TestNextLinePrefetchUselessOnRandom(t *testing.T) {
	base := testHierCfg(false)
	pf := base
	pf.NextLinePrefetch = true
	hBase, _ := NewHierarchy(base)
	hPF, _ := NewHierarchy(pf)
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 30000; i++ {
		a := uint64(r.Intn(1<<24)) &^ 31
		hBase.AccessData(a)
		hPF.AccessData(a)
	}
	sb, sp := hBase.Stats(), hPF.Stats()
	// Random pointers: prefetching buys (almost) nothing.
	if float64(sp.L1DMisses) < 0.95*float64(sb.L1DMisses) {
		t.Fatalf("prefetch should not help random accesses much: %d vs %d", sp.L1DMisses, sb.L1DMisses)
	}
}

func TestInstallDoesNotPerturbStats(t *testing.T) {
	c := smallCache(t)
	c.Access(0x40)
	c.Install(0x80)
	if c.Accesses() != 1 || c.Misses() != 1 {
		t.Fatalf("Install changed stats: %d/%d", c.Misses(), c.Accesses())
	}
	// But the installed line is resident.
	if !c.Access(0x80) {
		t.Fatal("installed line not resident")
	}
}
