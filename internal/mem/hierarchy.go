package mem

import "fmt"

// HierarchyConfig assembles the full memory subsystem of one design-space
// point: split L1s, a unified L2, an optional L3, the two TLBs and the
// main-memory latency.
type HierarchyConfig struct {
	L1I, L1D CacheConfig
	L2       CacheConfig
	// L3 may be disabled (SizeKB == 0), matching Table 1's "0 MB" option.
	L3             CacheConfig
	ITLB, DTLB     TLBConfig
	MemLatencyCyc  int
	MemLatencyBusy int // per-access occupancy added on memory trips
	// NextLinePrefetch enables a simple tagged next-line prefetcher on the
	// L1D: a demand miss also installs the following line. An extension
	// beyond the paper's Table 1 space — streaming workloads benefit,
	// pointer chases do not (see the ablation benchmark).
	NextLinePrefetch bool
}

// Validate checks every level.
func (c HierarchyConfig) Validate() error {
	if !c.L1I.Enabled() || !c.L1D.Enabled() || !c.L2.Enabled() {
		return fmt.Errorf("mem: L1I, L1D and L2 must all be present")
	}
	for _, lv := range []struct {
		name string
		cfg  CacheConfig
	}{{"L1I", c.L1I}, {"L1D", c.L1D}, {"L2", c.L2}, {"L3", c.L3}} {
		if err := lv.cfg.Validate(); err != nil {
			return fmt.Errorf("%s: %w", lv.name, err)
		}
	}
	if err := c.ITLB.Validate(); err != nil {
		return fmt.Errorf("ITLB: %w", err)
	}
	if err := c.DTLB.Validate(); err != nil {
		return fmt.Errorf("DTLB: %w", err)
	}
	if c.MemLatencyCyc <= 0 {
		return fmt.Errorf("mem: main-memory latency must be positive")
	}
	return nil
}

// AccessStats aggregates the counters of a hierarchy simulation.
type AccessStats struct {
	L1IAccesses, L1IMisses uint64
	L1DAccesses, L1DMisses uint64
	L2Accesses, L2Misses   uint64
	L3Accesses, L3Misses   uint64
	ITLBMisses, DTLBMisses uint64
	MemAccesses            uint64
	// Prefetches counts next-line prefetch fills issued (0 when the
	// prefetcher is disabled).
	Prefetches uint64
}

// Hierarchy simulates the configured cache/TLB stack.
type Hierarchy struct {
	cfg        HierarchyConfig
	l1i        *Cache
	l1d        *Cache
	l2         *Cache
	l3         *Cache // nil when disabled
	itlb       *TLB
	dtlb       *TLB
	prefetches uint64
}

// NewHierarchy instantiates the configured levels.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg}
	var err error
	if h.l1i, err = NewCache(cfg.L1I); err != nil {
		return nil, err
	}
	if h.l1d, err = NewCache(cfg.L1D); err != nil {
		return nil, err
	}
	if h.l2, err = NewCache(cfg.L2); err != nil {
		return nil, err
	}
	if cfg.L3.Enabled() {
		if h.l3, err = NewCache(cfg.L3); err != nil {
			return nil, err
		}
	}
	if h.itlb, err = NewTLB(cfg.ITLB); err != nil {
		return nil, err
	}
	if h.dtlb, err = NewTLB(cfg.DTLB); err != nil {
		return nil, err
	}
	return h, nil
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// beyondL1 charges the L2 → L3 → memory chain for an L1 miss, returning
// the added latency and whether the access went all the way to memory.
func (h *Hierarchy) beyondL1(addr uint64) (lat int, toMem bool) {
	lat = h.cfg.L2.LatencyCycles
	if h.l2.Access(addr) {
		return lat, false
	}
	if h.l3 != nil {
		lat += h.cfg.L3.LatencyCycles
		if h.l3.Access(addr) {
			return lat, false
		}
	}
	return lat + h.cfg.MemLatencyCyc + h.cfg.MemLatencyBusy, true
}

// AccessInstParts performs an instruction fetch at addr and returns the
// TLB page-walk penalty and the cache-path latency separately, plus
// whether the fetch went all the way to memory. The CPU model overlaps
// the parts differently: page walks serialize, on-chip cache misses hide
// inside the instruction window, and memory trips are limited by the
// workload's memory-level parallelism.
func (h *Hierarchy) AccessInstParts(addr uint64) (tlbCyc, cacheCyc int, toMem bool) {
	tlbCyc = h.itlb.Access(addr)
	cacheCyc = h.cfg.L1I.LatencyCycles
	if !h.l1i.Access(addr) {
		extra, mem := h.beyondL1(addr)
		cacheCyc += extra
		toMem = mem
	}
	return tlbCyc, cacheCyc, toMem
}

// AccessDataParts performs a load/store at addr with the same breakdown
// as AccessInstParts.
func (h *Hierarchy) AccessDataParts(addr uint64) (tlbCyc, cacheCyc int, toMem bool) {
	tlbCyc = h.dtlb.Access(addr)
	cacheCyc = h.cfg.L1D.LatencyCycles
	if !h.l1d.Access(addr) {
		extra, mem := h.beyondL1(addr)
		cacheCyc += extra
		toMem = mem
		if h.cfg.NextLinePrefetch {
			// Tagged next-line prefetch: the demand miss also installs the
			// following line (its latency overlaps the demand fill).
			next := addr + uint64(h.cfg.L1D.LineBytes)
			if !h.l1d.Install(next) {
				h.l2.Install(next)
				h.prefetches++
			}
		}
	}
	return tlbCyc, cacheCyc, toMem
}

// AccessInst performs an instruction fetch at addr and returns its total
// latency in cycles (L1 hit latency included).
func (h *Hierarchy) AccessInst(addr uint64) int {
	t, c, _ := h.AccessInstParts(addr)
	return t + c
}

// AccessData performs a load/store at addr and returns its total latency.
func (h *Hierarchy) AccessData(addr uint64) int {
	t, c, _ := h.AccessDataParts(addr)
	return t + c
}

// Stats snapshots all counters.
func (h *Hierarchy) Stats() AccessStats {
	s := AccessStats{
		L1IAccesses: h.l1i.Accesses(), L1IMisses: h.l1i.Misses(),
		L1DAccesses: h.l1d.Accesses(), L1DMisses: h.l1d.Misses(),
		L2Accesses: h.l2.Accesses(), L2Misses: h.l2.Misses(),
		ITLBMisses: h.itlb.Misses(), DTLBMisses: h.dtlb.Misses(),
	}
	if h.l3 != nil {
		s.L3Accesses = h.l3.Accesses()
		s.L3Misses = h.l3.Misses()
		s.MemAccesses = s.L3Misses
	} else {
		s.MemAccesses = s.L2Misses
	}
	s.Prefetches = h.prefetches
	return s
}

// Reset clears all levels and counters.
func (h *Hierarchy) Reset() {
	h.l1i.Reset()
	h.l1d.Reset()
	h.l2.Reset()
	if h.l3 != nil {
		h.l3.Reset()
	}
	h.itlb.Reset()
	h.dtlb.Reset()
	h.prefetches = 0
}
