// Package all links every in-tree model family into the registry, the
// way database/sql drivers are linked: each family package registers
// itself from init, and importing this package pulls them all in. Core
// blank-imports it, so every binary built on core sees the full zoo;
// adding a family is one new package plus one import line here.
package all

import (
	_ "perfpred/internal/linreg"
	_ "perfpred/internal/neural"
	_ "perfpred/internal/tree"
)
