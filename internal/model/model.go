// Package model defines the family-open seam of the predictor stack: a
// Model interface every trained surrogate implements, a Family
// descriptor declaring how one ModelKind trains, encodes, predicts and
// persists, and a process-wide registry mapping kinds to families.
//
// Everything above this package — training, cross-validated error
// estimation, the Select rule, serialization, importance reporting, and
// the serving daemon — dispatches through the registry, so adding a new
// model family is one new package that calls Register from its init
// (plus one import line in model/all). Core and serve never change.
package model

import (
	"context"

	"perfpred/internal/dataset"
	"perfpred/internal/engine"
)

// Scratch holds family-specific reusable prediction buffers. The concrete
// type is private to each family (e.g. the neural forward scratch);
// callers obtain one from Family.NewScratch, keep it worker-local, and
// pass it back on every PredictAllInto so steady-state batch scoring
// allocates nothing. Families that need no scratch return nil.
type Scratch any

// FitConfig carries the training knobs a family receives. Every
// stochastic choice must derive from Seed alone so a fit is bit-identical
// for any worker count or schedule.
type FitConfig struct {
	// Seed drives every stochastic choice of the fit.
	Seed int64
	// Workers bounds intra-fit parallelism (already resolved by the
	// caller; never zero).
	Workers int
	// EpochScale scales iterative training budgets (0 = 1.0).
	EpochScale float64
	// Hook, if non-nil, observes execution and kernel-time events.
	// Observability only; must never affect results.
	Hook engine.Hook
}

// Model is one trained model of any family, bound to encoded inputs (the
// caller owns the Encoder that produced them). Implementations must be
// safe for concurrent readers: prediction state lives in the caller's
// Scratch, never in the model.
type Model interface {
	// NumInputs returns the encoded input width the model expects;
	// loaders cross-check it against the artifact's encoder.
	NumInputs() int
	// PredictAllInto writes one prediction per row of x into dst
	// (len(dst) == len(x)), in model-space units. s comes from the
	// family's NewScratch (possibly nil); with a warmed scratch the call
	// must not allocate.
	PredictAllInto(dst []float64, x [][]float64, s Scratch)
	// Importance returns a relative importance score per encoded input
	// column (len == NumInputs), probed against (a sample of) the
	// training matrix. Scores are non-negative; 0 means no influence.
	Importance(x [][]float64) ([]float64, error)
	// Marshal serializes the model payload. Family.Unmarshal must invert
	// it bit-exactly: a round-tripped model predicts identically.
	Marshal() ([]byte, error)
}

// Selector is optionally implemented by models whose training performs
// input selection (stepwise regression drops predictors, pruned networks
// freeze inputs, trees never split on a column). SelectedColumns returns
// the retained encoded-column indices in ascending order.
type Selector interface {
	SelectedColumns() []int
}

// Family describes one registered model kind: how to encode its inputs,
// train it, allocate its prediction scratch, and decode its persisted
// payload. All fields are mandatory except where noted.
type Family struct {
	// Name is the model's display label, e.g. "LR-B", "NN-E", "TREE-B".
	// Names are unique across the registry and are the wire form of the
	// kind (CLI -models flags, reports, /v1/models).
	Name string
	// Tag is the versioned artifact payload identifier, e.g. "tree/v1".
	// It is written into every serialized predictor and checked on load,
	// so a payload can never be decoded by the wrong family or the wrong
	// generation of the same family.
	Tag string
	// Mode declares the dataset encoding the family's inputs require.
	// Encoders are declared here, not inferred from the kind.
	Mode dataset.Mode
	// Fit trains a model on the encoded design matrix x and target y.
	// names labels x's columns (for coefficient reports). Fit must honor
	// ctx cancellation promptly and derive all randomness from cfg.Seed.
	Fit func(ctx context.Context, x [][]float64, y []float64, names []string, cfg FitConfig) (Model, error)
	// NewScratch allocates the family's reusable prediction scratch
	// (nil if the family needs none).
	NewScratch func() Scratch
	// Unmarshal decodes a payload produced by Model.Marshal.
	Unmarshal func(data []byte) (Model, error)
}
