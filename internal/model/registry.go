package model

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind identifies one registered model kind. The integer value is part of
// the artifact format (serialized predictors store it), so a family must
// pin its kind number forever; the registry panics on collisions.
type Kind int

// The paper's model zoo occupies kinds 0–9 (four linear-regression
// selection methods, five neural training methods, plus the NN-S
// single-layer baseline). Families beyond the paper register kinds ≥ 10
// from their own packages; these constants exist so the paper workflows
// (figure orderings, golden runs) can name their models without knowing
// which package implements them.
const (
	// LRE is linear regression with the Enter method (all predictors).
	LRE Kind = iota
	// LRS is stepwise linear regression.
	LRS
	// LRB is backwards linear regression.
	LRB
	// LRF is forwards linear regression.
	LRF
	// NNQ is the Quick neural network.
	NNQ
	// NND is the Dynamic neural network.
	NND
	// NNM is the Multiple neural network.
	NNM
	// NNP is the Prune neural network.
	NNP
	// NNE is the Exhaustive Prune neural network.
	NNE
	// NNS is the single-layer constant-learning-rate network (the
	// Ipek-style baseline the paper compares against).
	NNS
)

// registry state. Registration happens in package inits (single-threaded,
// before main); lookups afterwards are read-only, so reads take no lock.
var (
	regMu    sync.Mutex
	families = map[Kind]Family{}
	byName   = map[string]Kind{}
)

// Register binds a kind to its family descriptor. It panics on a
// duplicate kind or name and on an incomplete descriptor — both are
// build-time wiring mistakes, never runtime conditions.
func Register(k Kind, f Family) {
	regMu.Lock()
	defer regMu.Unlock()
	if err := checkFamily(k, f); err != nil {
		panic(err)
	}
	if prev, ok := families[k]; ok {
		panic(fmt.Sprintf("model: kind %d registered twice (%q and %q)", int(k), prev.Name, f.Name))
	}
	if prev, ok := byName[f.Name]; ok {
		panic(fmt.Sprintf("model: name %q registered twice (kinds %d and %d)", f.Name, int(prev), int(k)))
	}
	families[k] = f
	byName[f.Name] = k
}

// checkFamily validates one descriptor's completeness.
func checkFamily(k Kind, f Family) error {
	switch {
	case f.Name == "":
		return fmt.Errorf("model: kind %d has no name", int(k))
	case f.Tag == "":
		return fmt.Errorf("model: family %q has no artifact tag", f.Name)
	case f.Fit == nil:
		return fmt.Errorf("model: family %q has no Fit", f.Name)
	case f.NewScratch == nil:
		return fmt.Errorf("model: family %q has no NewScratch", f.Name)
	case f.Unmarshal == nil:
		return fmt.Errorf("model: family %q has no Unmarshal", f.Name)
	}
	return nil
}

// Lookup resolves a kind's family descriptor.
func Lookup(k Kind) (Family, bool) {
	f, ok := families[k]
	return f, ok
}

// Kinds lists every registered kind in ascending order — the open
// counterpart of the paper's fixed model lists.
func Kinds() []Kind {
	out := make([]Kind, 0, len(families))
	for k := range families {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Parse converts a display label (e.g. "TREE-B") to its kind.
func Parse(s string) (Kind, error) {
	if k, ok := byName[s]; ok {
		return k, nil
	}
	return 0, fmt.Errorf("model: unknown model %q", s)
}

// CheckRegistry re-validates every registered descriptor — the
// registry-completeness gate CI runs. It fails if any declared paper kind
// lacks a family or any descriptor is incomplete.
func CheckRegistry() error {
	for k := LRE; k <= NNS; k++ {
		if _, ok := families[k]; !ok {
			return fmt.Errorf("model: paper kind %d has no registered family", int(k))
		}
	}
	for k, f := range families {
		if err := checkFamily(k, f); err != nil {
			return err
		}
	}
	return nil
}

// String returns the registered display label, or a diagnostic form for
// unregistered kinds.
func (k Kind) String() string {
	if f, ok := families[k]; ok {
		return f.Name
	}
	return fmt.Sprintf("ModelKind(%d)", int(k))
}

// Tag returns the registered artifact tag ("" for unregistered kinds).
func (k Kind) Tag() string { return families[k].Tag }

// IsNeural reports whether the kind belongs to the neural-network family
// — the paper's LR-versus-NN grouping (Figures 7–8). Families outside
// that dichotomy (trees, say) are neither.
func (k Kind) IsNeural() bool { return strings.HasPrefix(k.Tag(), "neural/") }
