package model_test

import (
	"strings"
	"testing"

	"perfpred/internal/model"
	_ "perfpred/internal/model/all"
)

// TestRegistryComplete is the registry-completeness gate CI runs: every
// paper kind has a family, every descriptor is complete, names and tags
// are unique and versioned, and labels parse back to their kinds.
func TestRegistryComplete(t *testing.T) {
	if err := model.CheckRegistry(); err != nil {
		t.Fatal(err)
	}
	kinds := model.Kinds()
	if len(kinds) < 11 {
		t.Fatalf("registry holds %d kinds, want the 10 paper kinds plus TREE-B", len(kinds))
	}
	for _, k := range kinds {
		fam, ok := model.Lookup(k)
		if !ok {
			t.Fatalf("Kinds lists %d but Lookup misses it", int(k))
		}
		if k.String() != fam.Name {
			t.Errorf("kind %d: String %q != family name %q", int(k), k.String(), fam.Name)
		}
		if k.Tag() != fam.Tag {
			t.Errorf("%s: Tag %q != family tag %q", fam.Name, k.Tag(), fam.Tag)
		}
		// Tags are versioned codec identifiers; kinds of one family share
		// theirs (all LR methods write "linreg/v1" payloads).
		if !strings.Contains(fam.Tag, "/v") {
			t.Errorf("%s: artifact tag %q is not versioned", fam.Name, fam.Tag)
		}
		back, err := model.Parse(fam.Name)
		if err != nil {
			t.Errorf("Parse(%q): %v", fam.Name, err)
		} else if back != k {
			t.Errorf("Parse(%q) = %v, want %v", fam.Name, back, k)
		}
	}
}

func TestNeuralGrouping(t *testing.T) {
	for _, k := range model.Kinds() {
		want := strings.HasPrefix(k.Tag(), "neural/")
		if k.IsNeural() != want {
			t.Errorf("%v: IsNeural = %v, want %v", k, k.IsNeural(), want)
		}
	}
}

func TestUnregisteredKind(t *testing.T) {
	const bogus model.Kind = 9999
	if _, ok := model.Lookup(bogus); ok {
		t.Fatal("Lookup(9999) succeeded")
	}
	if got := bogus.String(); got != "ModelKind(9999)" {
		t.Fatalf("String = %q", got)
	}
	if bogus.Tag() != "" || bogus.IsNeural() {
		t.Fatal("unregistered kind has a tag or neural grouping")
	}
	if _, err := model.Parse("NOPE"); err == nil {
		t.Fatal("Parse accepted an unknown label")
	}
}

// TestRegisterPanics pins the wiring mistakes Register refuses: kind and
// name collisions and incomplete descriptors. Each panics before mutating
// the registry, so these probes leave no residue for other tests.
func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		f()
	}
	complete := func(name, tag string) model.Family {
		fam, _ := model.Lookup(model.LRE)
		fam.Name, fam.Tag = name, tag
		return fam
	}
	mustPanic("duplicate kind", func() {
		model.Register(model.LRE, complete("X-DUP", "x/v1"))
	})
	mustPanic("duplicate name", func() {
		model.Register(model.Kind(9000), complete("LR-E", "x/v1"))
	})
	mustPanic("no name", func() {
		model.Register(model.Kind(9000), complete("", "x/v1"))
	})
	mustPanic("no tag", func() {
		model.Register(model.Kind(9000), complete("X-DUP", ""))
	})
	mustPanic("no fit", func() {
		fam := complete("X-DUP", "x/v1")
		fam.Fit = nil
		model.Register(model.Kind(9000), fam)
	})
}
