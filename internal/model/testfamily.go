package model

import (
	"context"
	"math"
	"testing"

	"perfpred/internal/stat"
)

// TestFamily is the registry conformance suite: every registered family
// must pass it (each family package runs it over its kinds). It pins the
// contracts the layers above rely on:
//
//   - determinism: one seed produces bit-identical models at any worker
//     count, and the fit draws randomness only from FitConfig.Seed;
//   - cancellation: Fit honors an already-cancelled context;
//   - persistence: Marshal→Unmarshal round-trips to bit-identical
//     predictions;
//   - scratch reuse: with a warmed family scratch, the batch predict
//     path allocates nothing and reuse never changes results;
//   - importance: one finite non-negative score per input column.
func TestFamily(t *testing.T, kind Kind) {
	t.Helper()
	fam, ok := Lookup(kind)
	if !ok {
		t.Fatalf("kind %d is not registered", int(kind))
	}
	x, y, names := conformanceData(96, 4)
	cfg := FitConfig{Seed: 17, Workers: 2, EpochScale: 0.2}
	ctx := context.Background()

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := fam.Fit(cancelled, x, y, names, cfg); err == nil {
		t.Errorf("%s: Fit with a cancelled context succeeded", fam.Name)
	}

	m, err := fam.Fit(ctx, x, y, names, cfg)
	if err != nil {
		t.Fatalf("%s: Fit: %v", fam.Name, err)
	}
	if got := m.NumInputs(); got != len(x[0]) {
		t.Fatalf("%s: NumInputs = %d, want %d", fam.Name, got, len(x[0]))
	}
	base := predictions(m, fam, x)

	// Same seed, different worker count: bit-identical model.
	wide := cfg
	wide.Workers = 4
	m2, err := fam.Fit(ctx, x, y, names, wide)
	if err != nil {
		t.Fatalf("%s: refit: %v", fam.Name, err)
	}
	for i, p := range predictions(m2, fam, x) {
		if p != base[i] {
			t.Fatalf("%s: row %d predicts %v with 2 workers, %v with 4 — fit is not deterministic", fam.Name, i, base[i], p)
		}
	}

	// A different seed must still train (divergence is allowed, not required).
	other := cfg
	other.Seed = 18
	if _, err := fam.Fit(ctx, x, y, names, other); err != nil {
		t.Fatalf("%s: fit with seed 18: %v", fam.Name, err)
	}

	// Persistence round-trip.
	data, err := m.Marshal()
	if err != nil {
		t.Fatalf("%s: Marshal: %v", fam.Name, err)
	}
	back, err := fam.Unmarshal(data)
	if err != nil {
		t.Fatalf("%s: Unmarshal: %v", fam.Name, err)
	}
	if back.NumInputs() != m.NumInputs() {
		t.Fatalf("%s: NumInputs changed across persistence", fam.Name)
	}
	for i, p := range predictions(back, fam, x) {
		if p != base[i] {
			t.Fatalf("%s: row %d predicts %v after round-trip, %v before", fam.Name, i, p, base[i])
		}
	}

	// Importance: one finite non-negative score per column.
	imp, err := m.Importance(x)
	if err != nil {
		t.Fatalf("%s: Importance: %v", fam.Name, err)
	}
	if len(imp) != len(x[0]) {
		t.Fatalf("%s: %d importance scores for %d columns", fam.Name, len(imp), len(x[0]))
	}
	for j, s := range imp {
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			t.Fatalf("%s: column %d importance %v", fam.Name, j, s)
		}
	}

	// Scratch reuse: warmed, the predict path allocates nothing and a
	// reused scratch scores exactly like a fresh one.
	s := fam.NewScratch()
	dst := make([]float64, len(x))
	m.PredictAllInto(dst, x, s)
	for i := range dst {
		if dst[i] != base[i] {
			t.Fatalf("%s: row %d differs under a reused scratch", fam.Name, i)
		}
	}
	allocs := testing.AllocsPerRun(20, func() { m.PredictAllInto(dst, x, s) })
	if allocs != 0 {
		t.Errorf("%s: PredictAllInto allocates %v/op with a warmed scratch, want 0", fam.Name, allocs)
	}
}

// predictions scores x with a fresh scratch.
func predictions(m Model, fam Family, x [][]float64) []float64 {
	out := make([]float64, len(x))
	m.PredictAllInto(out, x, fam.NewScratch())
	return out
}

// conformanceData builds a deterministic nonlinear regression problem on
// [0,1]-scaled inputs — the shape every family's encoder produces.
func conformanceData(n, p int) (x [][]float64, y []float64, names []string) {
	r := stat.NewRand(41)
	x = make([][]float64, n)
	y = make([]float64, n)
	for i := range x {
		row := make([]float64, p)
		for j := range row {
			row[j] = float64(r.Intn(9)) / 8
		}
		x[i] = row
		y[i] = 0.2 + 0.5*row[0] + 0.3*row[1]*row[1] - 0.2*row[0]*row[2] + 0.05*row[3]
	}
	names = make([]string, p)
	for j := range names {
		names[j] = "c" + string(rune('0'+j))
	}
	return x, y, names
}
