package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"perfpred/internal/dataset"
)

// EncodeJSON writes v in the daemon's wire encoding (two-space indent,
// trailing newline) so CLI output and HTTP bodies are byte-comparable.
func EncodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// valueToAny renders one dataset cell in the wire format RowFromAny
// accepts back.
func valueToAny(v dataset.Value) any {
	switch v.Kind() {
	case dataset.Numeric:
		return v.Float()
	case dataset.Flag:
		return v.Bool()
	default:
		return v.Label()
	}
}

// RequestFromDataset builds the wire-format predict request for the
// first n rows of a dataset (all rows when n <= 0 or exceeds the
// dataset) — how the predict CLI and the e2e smoke test derive real
// request bodies from specgen/WriteCSV data instead of hand-writing
// JSON.
func RequestFromDataset(model string, d *dataset.Dataset, n int) (*PredictRequest, error) {
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("serve: empty dataset")
	}
	if n <= 0 || n > d.Len() {
		n = d.Len()
	}
	if n > MaxRowsPerRequest {
		n = MaxRowsPerRequest
	}
	rows := make([][]any, n)
	for i := 0; i < n; i++ {
		src := d.Row(i)
		row := make([]any, len(src))
		for j, v := range src {
			row[j] = valueToAny(v)
		}
		rows[i] = row
	}
	if n == 1 {
		return &PredictRequest{Model: model, Row: rows[0]}, nil
	}
	return &PredictRequest{Model: model, Rows: rows}, nil
}

// ScoreRequest resolves and scores a wire-format request directly
// against a loaded model — the offline path the predict CLI shares with
// the daemon: identical decoding, identical validation, identical batch
// kernel (PredictRowsInto), so a request file scored locally and the
// same body POSTed to /v1/predict return bit-identical predictions.
func ScoreRequest(ctx context.Context, m *Model, req *PredictRequest) (*PredictResponse, error) {
	rows, err := req.Resolve(m.Pred.Encoder().Schema())
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(rows))
	if err := m.Pred.PredictRowsInto(ctx, out, rows); err != nil {
		return nil, err
	}
	for i, y := range out {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			return nil, fmt.Errorf("serve: row %d produced a non-finite prediction", i)
		}
	}
	resp := &PredictResponse{
		Model:       req.Model,
		Kind:        m.Pred.Kind().String(),
		N:           len(out),
		Predictions: out,
	}
	if req.Single() {
		resp.Prediction = &out[0]
	}
	return resp, nil
}
