package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"perfpred/internal/dataset"
	"perfpred/internal/faultinject"
	"perfpred/internal/obs"
)

// Config configures a serving daemon.
type Config struct {
	// ModelsDir is the directory of *.json predictor artifacts.
	ModelsDir string
	// Batcher sizes the micro-batcher.
	Batcher BatcherConfig
	// RequestTimeout is the per-request deadline applied to every
	// admitted prediction (propagated through the batcher via the
	// request context). 0 means 5s.
	RequestTimeout time.Duration
	// CacheEntries bounds the prediction cache; 0 (the default)
	// disables caching entirely, preserving the uncached serving path
	// byte for byte. The cache is bit-safe by construction — entries
	// verify row equality and are keyed by artifact generation — but it
	// is opt-in because it trades memory for latency and its win is
	// workload-dependent (it needs duplicate design points to pay off).
	CacheEntries int
	// Metrics is the registry to record into; nil creates a private one.
	Metrics *obs.Registry
}

// Server is the serving daemon: registry + micro-batcher + HTTP surface.
type Server struct {
	cfg     Config
	reg     *Registry
	met     *metrics
	bat     *Batcher
	cache   *cachedPredictor // nil unless cfg.CacheEntries > 0
	mux     *http.ServeMux
	started time.Time
	addr    atomic.Value // string; bound listen address, set by the daemon
	// fi and clock come from the fault injector active at construction
	// (the no-op singleton in production — see Batcher).
	fi    *faultinject.Injector
	clock faultinject.Clock
}

// New loads the model directory and starts the batch workers. The
// returned server's Handler can be mounted on any http.Server; call
// Close to drain.
func New(cfg Config) (*Server, error) {
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	reg, err := OpenRegistry(cfg.ModelsDir)
	if err != nil {
		return nil, err
	}
	fi := faultinject.Active()
	s := &Server{
		cfg:   cfg,
		reg:   reg,
		met:   newMetrics(cfg.Metrics),
		fi:    fi,
		clock: fi.Clock(),
	}
	s.started = s.clock.Now()
	s.bat = newBatcher(cfg.Batcher, s.met, scoreModel)
	if cfg.CacheEntries > 0 {
		s.cache = newCachedPredictor(cfg.CacheEntries, s.bat, s.met, fi)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("GET /v1/report", s.handleReport)
	s.mux.HandleFunc("POST /admin/reload", s.handleReload)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mh := obs.MetricsHandler(s.met.reg)
	s.mux.Handle("/metrics", mh)
	s.mux.Handle("/debug/", mh)
	return s, nil
}

// scoreModel is the production scoreFunc: the shared zero-allocation
// batch kernel entry.
func scoreModel(ctx context.Context, m *Model, rows [][]dataset.Value, out []float64) error {
	return m.Pred.PredictRowsInto(ctx, out, rows)
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the model registry (signal handlers trigger reloads
// through it).
func (s *Server) Registry() *Registry { return s.reg }

// MetricsRegistry exposes the metrics registry backing /metrics.
func (s *Server) MetricsRegistry() *obs.Registry { return s.met.reg }

// SetAddr records the bound listen address for reports.
func (s *Server) SetAddr(addr string) { s.addr.Store(addr) }

// Close drains the micro-batcher: admission stops and every queued
// request is answered before Close returns. Call after the HTTP server
// has stopped accepting requests.
func (s *Server) Close() { s.bat.Close() }

// Reload atomically swaps in a fresh catalog from the model directory,
// counting successful reloads. The reload fault point (plus artifact-
// load faults inside the registry's per-file loader) lets chaos runs
// fail reloads at will; either way a failed reload must leave the
// previous catalog serving, which the registry guarantees by swapping
// only a fully-built catalog.
func (s *Server) Reload() (int64, error) {
	if fired, err := s.fi.Hit(context.Background(), faultinject.ServeReload); fired {
		s.met.faults.Inc()
		if err != nil {
			return 0, err
		}
	}
	gen, err := s.reg.Reload()
	if err == nil {
		s.met.reloads.Inc()
		// Entries keyed by older generations are already unreachable (the
		// generation is part of the cache key); dropping them now reclaims
		// their memory instead of waiting on LRU pressure.
		if s.cache != nil {
			s.cache.cache.Invalidate(gen)
		}
	}
	return gen, err
}

// Report snapshots the daemon's lifetime into a ServeReport.
func (s *Server) Report() *obs.ServeReport {
	addr, _ := s.addr.Load().(string)
	return obs.BuildServeReport(obs.ServeMeta{
		Addr:       addr,
		ModelsDir:  s.reg.Dir(),
		Models:     s.reg.Names(),
		Generation: s.reg.Generation(),
		Uptime:     max(s.clock.Since(s.started), 0), // a skewed chaos clock may run backwards
	}, s.met.reg)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := s.clock.Now()
	defer func() { s.met.latency.Observe(s.clock.Since(start).Seconds()) }()

	req, err := DecodePredictRequest(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Resolve model and catalog generation from one atomic catalog load:
	// the cache keys entries by (model, generation), and resolving them
	// separately could straddle a reload.
	m, gen, ok := s.reg.Resolve(req.Model)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown model %q (see /v1/models)", req.Model))
		return
	}
	rows, err := req.Resolve(m.Pred.Encoder().Schema())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Full request validation happens before the batcher ever sees the
	// request: CheckRows covers everything the encode stage could reject
	// (row width vs the model's fitted schema and input width, unmapped
	// categories for numeric-coded models), so a bad row is a 400 here
	// instead of occupying a queue slot and surfacing later as a scoring
	// failure.
	if err := m.Pred.CheckRows(rows); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	s.met.requests.Inc()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	var out []float64
	if s.cache != nil {
		out = make([]float64, len(rows))
		err = s.cache.predictInto(ctx, m, gen, rows, out)
	} else {
		out, err = s.bat.Predict(ctx, m, rows)
	}
	if err != nil {
		s.writePredictError(w, err)
		return
	}
	for i, y := range out {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			writeError(w, http.StatusInternalServerError,
				fmt.Errorf("serve: row %d produced a non-finite prediction", i))
			return
		}
	}
	resp := PredictResponse{
		Model:       req.Model,
		Kind:        m.Pred.Kind().String(),
		N:           len(out),
		Predictions: out,
	}
	if req.Single() {
		resp.Prediction = &out[0]
	}
	writeJSON(w, http.StatusOK, resp)
}

// writePredictError maps batcher/scoring failures onto HTTP statuses:
// shed → 429 with Retry-After, drain → 503, deadline → 504. Anything
// else is a genuine server-side failure (client-caused errors are all
// rejected with 400s before admission by CheckRows) and reports 500 —
// injected batch-flush faults in chaos runs land here.
func (s *Server) writePredictError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		// Retry-After scales with the queue pressure observed at shed
		// time (see retryAfterSeconds); plain ErrOverloaded (tests,
		// non-batcher callers) falls back to the minimum back-off.
		retry := 1
		var oe *OverloadedError
		if errors.As(err, &oe) {
			retry = oe.RetryAfter
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusGatewayTimeout, fmt.Errorf("serve: request deadline exceeded"))
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	models := s.reg.Models()
	resp := ModelsResponse{Generation: s.reg.Generation(), Models: make([]ModelInfo, len(models))}
	for i, m := range models {
		resp.Models[i] = infoFor(m)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReport(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Report())
}

func (s *Server) handleReload(w http.ResponseWriter, _ *http.Request) {
	gen, err := s.Reload()
	if err != nil {
		writeError(w, http.StatusInternalServerError,
			fmt.Errorf("serve: reload failed, previous catalog still serving: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, ReloadResponse{Generation: gen, Models: s.reg.Names()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort: client may have gone
}

func writeError(w http.ResponseWriter, status int, err error) {
	msg := strings.TrimPrefix(err.Error(), "serve: ")
	writeJSON(w, status, ErrorResponse{Error: msg})
}
