package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"perfpred/internal/dataset"
	"perfpred/internal/engine"
	"perfpred/internal/faultinject"
)

// ErrOverloaded is returned (and mapped to 429 + Retry-After) when the
// admission queue is full: the daemon sheds the request instead of
// letting latency grow without bound. Shed errors are actually
// *OverloadedError values carrying a queue-pressure-derived Retry-After;
// errors.Is(err, ErrOverloaded) matches them.
var ErrOverloaded = errors.New("serve: admission queue full")

// OverloadedError is the concrete shed error: ErrOverloaded plus the
// Retry-After the HTTP layer should advertise, derived from how full
// the admission queue was at the moment of shedding.
type OverloadedError struct {
	// RetryAfter is the suggested client back-off in whole seconds,
	// between 1 (queue momentarily full but draining) and 5 (sustained
	// saturation).
	RetryAfter int
}

func (e *OverloadedError) Error() string { return ErrOverloaded.Error() }

// Is makes errors.Is(err, ErrOverloaded) match, so every existing
// caller and test keeps working against the sentinel.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// retryAfterSeconds maps observed queue pressure onto a client back-off:
// 1s at an empty-to-quarter-full queue up to 5s at or beyond capacity,
// in linear steps. Shedding happens when the enqueue attempt finds the
// channel full, but the observed length can lag concurrent dequeues —
// hence pressure, not a constant.
func retryAfterSeconds(queued, capacity int) int {
	if capacity <= 0 {
		return 1
	}
	if queued < 0 {
		queued = 0
	}
	if queued > capacity {
		queued = capacity
	}
	return 1 + 4*queued/capacity
}

// ErrDraining is returned (and mapped to 503) for requests arriving
// after shutdown began.
var ErrDraining = errors.New("serve: server draining")

// BatcherConfig sizes the micro-batcher.
type BatcherConfig struct {
	// QueueDepth bounds the admission queue (queued requests, not rows);
	// a full queue sheds with ErrOverloaded. Default 256.
	QueueDepth int
	// MaxBatch caps the rows coalesced into one kernel call. Default 64.
	MaxBatch int
	// MaxWait is how long an idle batch worker lingers for more requests
	// after picking up the first one, trading that bounded latency for
	// bigger kernel batches. 0 coalesces only already-queued requests.
	// Default 500µs.
	MaxWait time.Duration
	// Workers is the number of batch-executor goroutines, each owning
	// engine worker-local scratch. Default GOMAXPROCS.
	Workers int
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait < 0 {
		c.MaxWait = 0
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// scoreFunc scores rows of one model into out (len(out) == total rows).
// The production implementation is Predictor.PredictRowsInto; tests
// inject stubs to pin shed and drain behaviour.
type scoreFunc func(ctx context.Context, m *Model, rows [][]dataset.Value, out []float64) error

// request is one admitted prediction (single row or a whole batch body —
// either way it occupies one queue slot).
type request struct {
	ctx       context.Context
	m         *Model
	rows      [][]dataset.Value
	out       []float64
	done      chan error
	submitted time.Time
}

// Batcher funnels predictions through a bounded admission queue into
// coalescing batch workers. Each worker goroutine owns an engine
// worker-local context, so the encode buffers and neural scratch behind
// PredictRowsInto are allocated once per worker and reused for every
// batch it ever executes — the serving path stays on the PR-3
// zero-allocation kernels in steady state.
type Batcher struct {
	cfg      BatcherConfig
	score    scoreFunc
	met      *metrics
	queue    chan *request
	stop     chan struct{}
	wg       sync.WaitGroup
	draining atomic.Bool
	// fi and clock are snapshotted from the process-global fault
	// injector at construction: the production no-op makes every hook a
	// single branch and clock a plain time.Now, so the hot path gains no
	// allocations or locks. Chaos harnesses activate an injector before
	// building the daemon to arm them.
	fi    *faultinject.Injector
	clock faultinject.Clock
}

// newBatcher starts cfg.Workers batch executors.
func newBatcher(cfg BatcherConfig, met *metrics, score scoreFunc) *Batcher {
	cfg = cfg.withDefaults()
	fi := faultinject.Active()
	b := &Batcher{
		cfg:   cfg,
		score: score,
		met:   met,
		queue: make(chan *request, cfg.QueueDepth),
		stop:  make(chan struct{}),
		fi:    fi,
		clock: fi.Clock(),
	}
	for i := 0; i < cfg.Workers; i++ {
		b.wg.Add(1)
		go b.worker()
	}
	return b
}

// Predict admits rows for one model and blocks until the batch worker
// delivers the predictions, the request's context expires, or the
// request is shed. Admission is non-blocking: a full queue returns
// ErrOverloaded immediately. The returned slice is owned by the caller.
func (b *Batcher) Predict(ctx context.Context, m *Model, rows [][]dataset.Value) ([]float64, error) {
	if b.draining.Load() {
		return nil, ErrDraining
	}
	// Admission fault point: injected latency stalls the caller here (so
	// its deadline can expire before the request ever takes a queue
	// slot), a forced error rejects the request outright.
	if fired, err := b.fi.Hit(ctx, faultinject.ServeAdmit); fired {
		b.met.faults.Inc()
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req := &request{
		ctx:       ctx,
		m:         m,
		rows:      rows,
		out:       make([]float64, len(rows)),
		done:      make(chan error, 1),
		submitted: b.clock.Now(),
	}
	select {
	case b.queue <- req:
	default:
		b.met.shed.Inc()
		return nil, &OverloadedError{RetryAfter: retryAfterSeconds(len(b.queue), cap(b.queue))}
	}
	select {
	case err := <-req.done:
		if err != nil {
			return nil, err
		}
		return req.out, nil
	case <-ctx.Done():
		// The worker may still score the request; done is buffered so it
		// never blocks on an abandoned request.
		return nil, ctx.Err()
	}
}

// Close stops admission and waits until the workers have drained every
// queued request — nothing admitted before Close is left unanswered.
func (b *Batcher) Close() {
	if b.draining.CompareAndSwap(false, true) {
		close(b.stop)
	}
	b.wg.Wait()
}

// workerScratch is one worker's reusable batch-assembly buffers.
type workerScratch struct {
	batch []*request
	group []*request
	live  []*request
	rows  [][]dataset.Value
	out   []float64
}

func (b *Batcher) worker() {
	defer b.wg.Done()
	// One worker-local store per goroutine for the batcher's lifetime:
	// every PredictRowsInto this worker runs reuses the same encode
	// buffers and neural scratch.
	wctx := engine.NewWorkerContext(context.Background())
	ws := &workerScratch{}
	for {
		select {
		case req := <-b.queue:
			b.runBatch(wctx, ws, req)
		case <-b.stop:
			for {
				select {
				case req := <-b.queue:
					b.runBatch(wctx, ws, req)
				default:
					return
				}
			}
		}
	}
}

// runBatch coalesces queued requests behind first (up to MaxBatch total
// rows, lingering MaxWait for stragglers), then executes them grouped by
// model.
func (b *Batcher) runBatch(wctx context.Context, ws *workerScratch, first *request) {
	b.met.queueDepth.Set(float64(len(b.queue)))
	batch := append(ws.batch[:0], first)
	total := len(first.rows)
	var timer *time.Timer
gather:
	for total < b.cfg.MaxBatch {
		select {
		case req := <-b.queue:
			batch = append(batch, req)
			total += len(req.rows)
		default:
			if b.cfg.MaxWait <= 0 || b.draining.Load() {
				break gather
			}
			if timer == nil {
				timer = time.NewTimer(b.cfg.MaxWait)
			}
			select {
			case req := <-b.queue:
				batch = append(batch, req)
				total += len(req.rows)
			case <-timer.C:
				break gather
			case <-b.stop:
				break gather
			}
		}
	}
	if timer != nil {
		timer.Stop()
	}
	ws.batch = batch

	// Execute per-model groups: a stable partition keeps arrival order
	// within each group, so results are assigned by position.
	remaining := batch
	for len(remaining) > 0 {
		m := remaining[0].m
		group := ws.group[:0]
		// In-place filter: writes to keep never outrun the range reads.
		keep := remaining[:0]
		for _, req := range remaining {
			if req.m == m {
				group = append(group, req)
			} else {
				keep = append(keep, req)
			}
		}
		ws.group = group
		b.scoreGroup(wctx, ws, m, group)
		remaining = keep
	}
}

// scoreGroup flattens one model's requests into a single kernel call and
// fans the results back out. If the combined batch fails and held more
// than one request, each request is rescored alone so one bad row only
// fails its own request.
func (b *Batcher) scoreGroup(wctx context.Context, ws *workerScratch, m *Model, group []*request) {
	now := b.clock.Now()
	live := ws.live[:0]
	rows := ws.rows[:0]
	for _, req := range group {
		b.met.queueWait.Observe(now.Sub(req.submitted).Seconds())
		// Propagated per-request deadline: a request whose context
		// expired while queued is answered with its context error, not
		// scored.
		if err := req.ctx.Err(); err != nil {
			b.met.errors.Inc()
			req.done <- err
			continue
		}
		live = append(live, req)
		rows = append(rows, req.rows...)
	}
	ws.live, ws.rows = live, rows
	if len(live) == 0 {
		return
	}
	if cap(ws.out) < len(rows) {
		ws.out = make([]float64, len(rows))
	}
	out := ws.out[:len(rows)]

	// Flush fault point: injected latency slows the kernel flush (queue
	// pressure builds until admission sheds), a forced error fails the
	// combined batch — which, for multi-request batches, exercises the
	// per-request rescore path below.
	kstart := b.clock.Now()
	var err error
	if fired, ferr := b.fi.Hit(wctx, faultinject.ServeBatchFlush); fired {
		b.met.faults.Inc()
		err = ferr
	}
	if err == nil {
		err = b.score(wctx, m, rows, out)
	}
	b.met.kernel.Observe(b.clock.Since(kstart).Seconds())
	b.met.batches.Inc()
	b.met.batchSize.Observe(float64(len(rows)))

	if err != nil && len(live) > 1 {
		for _, req := range live {
			b.finish(req, b.score(wctx, req.m, req.rows, req.out))
		}
		return
	}
	off := 0
	for _, req := range live {
		if err == nil {
			copy(req.out, out[off:off+len(req.rows)])
		}
		off += len(req.rows)
		b.finish(req, err)
	}
}

// finish records the outcome and releases the waiting caller.
func (b *Batcher) finish(req *request, err error) {
	if err == nil {
		b.met.predictions.Add(int64(len(req.rows)))
	} else {
		b.met.errors.Inc()
	}
	req.done <- err
}
