package serve

import (
	"context"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perfpred/internal/core"
	"perfpred/internal/dataset"
)

// synthDataset builds a small synthetic design-space dataset covering
// all three field kinds.
func synthDataset(t testing.TB, n int, seed int64) *dataset.Dataset {
	t.Helper()
	s, err := dataset.NewSchema("cycles",
		dataset.Field{Name: "size", Kind: dataset.Numeric},
		dataset.Field{Name: "width", Kind: dataset.Numeric},
		dataset.Field{Name: "fast", Kind: dataset.Flag},
		dataset.Field{Name: "pred", Kind: dataset.Categorical, NumericLevels: map[string]float64{
			"weak": 1, "strong": 2,
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.New(s)
	r := rand.New(rand.NewSource(seed))
	preds := []string{"weak", "strong"}
	for i := 0; i < n; i++ {
		size := 16 + float64(r.Intn(5))*16
		width := float64(2 + r.Intn(4)*2)
		fast := r.Intn(2) == 0
		pk := preds[r.Intn(2)]
		y := 10000/width + 2000*math.Exp(-size/32)
		if fast {
			y *= 0.9
		}
		if pk == "strong" {
			y *= 0.85
		}
		err := d.Append([]dataset.Value{
			dataset.Num(size), dataset.Num(width), dataset.FlagVal(fast), dataset.Cat(pk),
		}, y)
		if err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// trainModel trains a quick model for serving tests.
func trainModel(t testing.TB, kind core.ModelKind, d *dataset.Dataset) *core.Predictor {
	t.Helper()
	p, err := core.Train(context.Background(), kind, d, core.TrainConfig{Seed: 3, Workers: 2, EpochScale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// saveModel writes a predictor artifact named name into dir.
func saveModel(t testing.TB, dir, name string, p *core.Predictor) string {
	t.Helper()
	path := filepath.Join(dir, name+".json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRegistryLoadAndGet(t *testing.T) {
	d := synthDataset(t, 64, 1)
	dir := t.TempDir()
	saveModel(t, dir, "lre", trainModel(t, core.LRE, d))
	saveModel(t, dir, "nns", trainModel(t, core.NNS, d))
	// Non-model files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Names(); len(got) != 2 || got[0] != "lre" || got[1] != "nns" {
		t.Fatalf("Names() = %v, want [lre nns]", got)
	}
	if r.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", r.Generation())
	}
	m, ok := r.Get("nns")
	if !ok || m.Pred.Kind() != core.NNS || m.Name != "nns" {
		t.Fatalf("Get(nns) = %+v, %v", m, ok)
	}
	if _, ok := r.Get("absent"); ok {
		t.Fatal("Get(absent) succeeded")
	}
}

func TestRegistryReloadAtomic(t *testing.T) {
	d := synthDataset(t, 64, 2)
	dir := t.TempDir()
	saveModel(t, dir, "a", trainModel(t, core.LRE, d))
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}

	// A new artifact appears on reload.
	saveModel(t, dir, "b", trainModel(t, core.LRB, d))
	gen, err := r.Reload()
	if err != nil || gen != 2 {
		t.Fatalf("Reload = %d, %v; want 2, nil", gen, err)
	}
	if _, ok := r.Get("b"); !ok {
		t.Fatal("reloaded model b missing")
	}

	// A corrupt artifact fails the reload and keeps the old catalog.
	if err := os.WriteFile(filepath.Join(dir, "broken.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Reload(); err == nil {
		t.Fatal("reload with corrupt artifact succeeded")
	}
	if r.Generation() != 2 {
		t.Fatalf("generation moved to %d after failed reload", r.Generation())
	}
	if _, ok := r.Get("a"); !ok {
		t.Fatal("old catalog lost after failed reload")
	}
}

func TestOpenRegistryRejectsEmpty(t *testing.T) {
	_, err := OpenRegistry(t.TempDir())
	if err == nil || !strings.Contains(err.Error(), "no *.json models") {
		t.Fatalf("empty dir: err = %v", err)
	}
	if _, err := OpenRegistry(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestLoadModelFileNamesAndValidates(t *testing.T) {
	d := synthDataset(t, 64, 3)
	dir := t.TempDir()
	path := saveModel(t, dir, "my-model", trainModel(t, core.LRE, d))
	m, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "my-model" || m.Path != path {
		t.Fatalf("LoadModelFile: %+v", m)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.json"), []byte(`{"version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelFile(filepath.Join(dir, "junk.json")); err == nil {
		t.Fatal("junk artifact accepted")
	}
}
