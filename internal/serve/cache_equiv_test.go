package serve

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"perfpred/internal/core"
	"perfpred/internal/obs"
)

// TestCacheOnOffBitEquivalence is the property test behind the cache's
// "invisible except in latency" claim: two in-process daemons over the
// same artifacts — one cache-armed, one not — replay an identical
// seeded, 8-goroutine, duplicate-heavy, mixed-model schedule, and every
// 200 must carry exactly equal float64 predictions from both daemons
// AND equal the offline PredictRowsInto golden. Halfway through, one
// artifact is retrained in place and both daemons reload: post-reload
// answers must be the new model's bits, so any stale cache hit across
// the generation boundary fails the golden comparison.
func TestCacheOnOffBitEquivalence(t *testing.T) {
	const (
		seed       = int64(41)
		goroutines = 8
		perPhase   = 120 // requests per goroutine per phase
		hotRows    = 4   // duplicate-heavy: most traffic lands on these
	)

	d := synthDataset(t, 64, 6)
	dir := t.TempDir()
	saveModel(t, dir, "lre", trainModel(t, core.LRE, d))
	saveModel(t, dir, "nns", trainModel(t, core.NNS, d))

	mk := func(entries int) *Server {
		s, err := New(Config{
			ModelsDir:    dir,
			Batcher:      BatcherConfig{Workers: 2, MaxWait: 0, QueueDepth: 4096},
			CacheEntries: entries,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s
	}
	cached, plain := mk(2048), mk(0)

	models := []string{"lre", "nns"}
	// goldens[phase][model][row index] — offline references computed from
	// freshly loaded artifacts, independent of either daemon's registry.
	golden := func() map[string][]float64 {
		out := make(map[string][]float64)
		for _, name := range models {
			m, err := LoadModelFile(dir + "/" + name + ".json")
			if err != nil {
				t.Fatal(err)
			}
			vals := make([]float64, d.Len())
			for i := 0; i < d.Len(); i++ {
				v, err := m.Pred.Predict(d.Row(i))
				if err != nil {
					t.Fatal(err)
				}
				vals[i] = v
			}
			out[name] = vals
		}
		return out
	}

	runPhase := func(phase int, goldens map[string][]float64) {
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(phase*1000+g)))
				for i := 0; i < perPhase; i++ {
					model := models[rng.Intn(len(models))]
					// Duplicate-heavy row choice: 70% hot pool, else anywhere.
					pick := func() int {
						if rng.Float64() < 0.7 {
							return rng.Intn(hotRows)
						}
						return rng.Intn(d.Len())
					}
					var body map[string]any
					var idxs []int
					if rng.Float64() < 0.6 {
						idxs = []int{pick()}
						body = map[string]any{"model": model, "row": rowJSON(d, idxs[0])}
					} else {
						n := 1 + rng.Intn(4)
						rows := make([][]any, n)
						idxs = make([]int, n)
						for j := range rows {
							idxs[j] = pick()
							rows[j] = rowJSON(d, idxs[j])
						}
						body = map[string]any{"model": model, "rows": rows}
					}
					wc := postPredict(t, cached.Handler(), body)
					wp := postPredict(t, plain.Handler(), body)
					if wc.Code != http.StatusOK || wp.Code != http.StatusOK {
						t.Errorf("phase %d g%d req %d: cached=%d plain=%d (%s | %s)",
							phase, g, i, wc.Code, wp.Code, wc.Body, wp.Body)
						return
					}
					var rc, rp PredictResponse
					if err := json.Unmarshal(wc.Body.Bytes(), &rc); err != nil {
						t.Errorf("cached body: %v", err)
						return
					}
					if err := json.Unmarshal(wp.Body.Bytes(), &rp); err != nil {
						t.Errorf("plain body: %v", err)
						return
					}
					if len(rc.Predictions) != len(idxs) || len(rp.Predictions) != len(idxs) {
						t.Errorf("phase %d: lengths %d/%d, want %d", phase, len(rc.Predictions), len(rp.Predictions), len(idxs))
						return
					}
					for j, idx := range idxs {
						want := goldens[model][idx]
						if rc.Predictions[j] != want {
							t.Errorf("phase %d %s row %d: cached %v != golden %v", phase, model, idx, rc.Predictions[j], want)
							return
						}
						if rp.Predictions[j] != want {
							t.Errorf("phase %d %s row %d: plain %v != golden %v", phase, model, idx, rp.Predictions[j], want)
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
	}

	runPhase(1, golden())

	// Mid-run boundary: retrain one model with a different seed, swap the
	// artifact, reload BOTH daemons, and replay against new goldens. The
	// retrain must actually move the predictions or the reload check
	// proves nothing.
	old := golden()["nns"][0]
	saveModel(t, dir, "nns", trainModelSeed(t, core.NNS, d, 99))
	next := golden()
	if next["nns"][0] == old {
		t.Fatal("retrained nns predicts identically; reload phase has no teeth")
	}
	if _, err := cached.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Reload(); err != nil {
		t.Fatal(err)
	}

	runPhase(2, next)

	// The cache must have actually been in play for the comparison to
	// mean anything, and its accounting must balance.
	snap := cached.MetricsRegistry().Snapshot()
	hits, misses, lookups := snap.Counters[obs.MetricCacheHits], snap.Counters[obs.MetricCacheMisses], snap.Counters[obs.MetricCacheLookups]
	if hits == 0 {
		t.Fatal("cached daemon recorded zero hits over a duplicate-heavy schedule")
	}
	if hits+misses != lookups {
		t.Fatalf("hits(%d)+misses(%d) != lookups(%d)", hits, misses, lookups)
	}
	if inv := snap.Counters[obs.MetricCacheInvalidations]; inv < 1 {
		t.Fatalf("invalidations = %d, want ≥ 1 after reload", inv)
	}
	// The plain daemon's cache counters must not have moved at all:
	// default-off means the cache code is fully out of the path.
	psnap := plain.MetricsRegistry().Snapshot()
	for _, name := range []string{obs.MetricCacheLookups, obs.MetricCacheHits, obs.MetricCacheMisses} {
		if v := psnap.Counters[name]; v != 0 {
			t.Fatalf("cache-off daemon counter %s = %d, want 0", name, v)
		}
	}
}
