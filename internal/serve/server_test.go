package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"perfpred/internal/core"
	"perfpred/internal/dataset"
	"perfpred/internal/obs"
)

// newTestServer trains two models into a fresh directory and builds a
// Server over them.
func newTestServer(t *testing.T) (*Server, *dataset.Dataset, string) {
	t.Helper()
	d := synthDataset(t, 64, 6)
	dir := t.TempDir()
	saveModel(t, dir, "lre", trainModel(t, core.LRE, d))
	saveModel(t, dir, "nns", trainModel(t, core.NNS, d))
	s, err := New(Config{ModelsDir: dir, Batcher: BatcherConfig{Workers: 2, MaxWait: 0}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, d, dir
}

// rowJSON renders dataset row i in the request wire format.
func rowJSON(d *dataset.Dataset, i int) []any {
	row := d.Row(i)
	out := make([]any, len(row))
	for j, v := range row {
		switch v.Kind() {
		case dataset.Numeric:
			out[j] = v.Float()
		case dataset.Flag:
			out[j] = v.Bool()
		default:
			out[j] = v.Label()
		}
	}
	return out
}

func postPredict(t *testing.T, h http.Handler, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	switch b := body.(type) {
	case string:
		buf.WriteString(b)
	default:
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", &buf)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestServerPredictSingleAndBatch(t *testing.T) {
	s, d, _ := newTestServer(t)
	h := s.Handler()
	m, _ := s.Registry().Get("nns")

	// Single-row body, bit-identical to the offline scalar path.
	want, err := m.Pred.Predict(d.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	w := postPredict(t, h, map[string]any{"model": "nns", "row": rowJSON(d, 0)})
	if w.Code != http.StatusOK {
		t.Fatalf("single predict: %d %s", w.Code, w.Body)
	}
	var resp PredictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.N != 1 || resp.Prediction == nil || *resp.Prediction != want || resp.Kind != "NN-S" {
		t.Fatalf("single predict: %+v, want prediction %v", resp, want)
	}

	// Batch body, bit-identical to offline PredictAll over the dataset.
	rows := make([][]any, d.Len())
	for i := range rows {
		rows[i] = rowJSON(d, i)
	}
	offline, err := m.Pred.PredictDataset(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	w = postPredict(t, h, map[string]any{"model": "nns", "rows": rows})
	if w.Code != http.StatusOK {
		t.Fatalf("batch predict: %d %s", w.Code, w.Body)
	}
	resp = PredictResponse{}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.N != d.Len() || resp.Prediction != nil {
		t.Fatalf("batch predict: n=%d prediction=%v", resp.N, resp.Prediction)
	}
	for i := range offline {
		if resp.Predictions[i] != offline[i] {
			t.Fatalf("batch row %d: served %v != offline %v", i, resp.Predictions[i], offline[i])
		}
	}
}

func TestServerPredictErrors(t *testing.T) {
	s, d, _ := newTestServer(t)
	h := s.Handler()
	good := rowJSON(d, 0)
	short := good[:2]
	cases := []struct {
		name string
		body any
		code int
		want string
	}{
		{"malformed json", `{"model": "nns", "row": [`, http.StatusBadRequest, "decoding"},
		{"no model", map[string]any{"row": good}, http.StatusBadRequest, "no model"},
		{"row and rows", map[string]any{"model": "nns", "row": good, "rows": [][]any{good}}, http.StatusBadRequest, "exactly one"},
		{"neither row nor rows", map[string]any{"model": "nns"}, http.StatusBadRequest, "exactly one"},
		{"empty rows", map[string]any{"model": "nns", "rows": [][]any{}}, http.StatusBadRequest, "empty"},
		{"unknown field", map[string]any{"model": "nns", "row": good, "extra": 1}, http.StatusBadRequest, "unknown field"},
		{"unknown model", map[string]any{"model": "nope", "row": good}, http.StatusNotFound, "unknown model"},
		{"wrong arity", map[string]any{"model": "nns", "row": short}, http.StatusBadRequest, "2 values"},
		{"wrong type", map[string]any{"model": "nns", "row": []any{"x", 4.0, true, "weak"}}, http.StatusBadRequest, "field"},
		{"inf literal", `{"model": "nns", "row": [1e999, 4, true, "weak"]}`, http.StatusBadRequest, "non-finite"},
		{"trailing data", `{"model": "nns", "row": [32, 4, true, "weak"]} junk`, http.StatusBadRequest, "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postPredict(t, h, tc.body)
			if w.Code != tc.code {
				t.Fatalf("code = %d, want %d (%s)", w.Code, tc.code, w.Body)
			}
			var e ErrorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
				t.Fatalf("non-JSON error body: %s", w.Body)
			}
			if !strings.Contains(e.Error, tc.want) {
				t.Errorf("error %q does not contain %q", e.Error, tc.want)
			}
		})
	}

	// GET on /v1/predict is rejected by the method-scoped route.
	req := httptest.NewRequest(http.MethodGet, "/v1/predict", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/predict = %d, want 405", w.Code)
	}
}

func TestServerModelsAndMetrics(t *testing.T) {
	s, d, _ := newTestServer(t)
	h := s.Handler()

	req := httptest.NewRequest(http.MethodGet, "/v1/models", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/models: %d", w.Code)
	}
	var mr ModelsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Generation != 1 || len(mr.Models) != 2 {
		t.Fatalf("/v1/models: %+v", mr)
	}
	if mr.Models[0].Name != "lre" || mr.Models[0].Kind != "LR-E" || mr.Models[0].Target != "cycles" {
		t.Fatalf("model info: %+v", mr.Models[0])
	}
	if len(mr.Models[0].Fields) != 4 || mr.Models[0].Fields[0].Name != "size" || mr.Models[0].Fields[0].Kind != "numeric" {
		t.Fatalf("schema fields: %+v", mr.Models[0].Fields)
	}

	// A prediction moves the serve counters visible on /metrics.
	postPredict(t, h, map[string]any{"model": "lre", "row": rowJSON(d, 1)})
	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", w.Code)
	}
	var snap obs.MetricsSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, w.Body)
	}
	if snap.Counters[obs.MetricServeRequests] != 1 || snap.Counters[obs.MetricServePredictions] != 1 {
		t.Fatalf("/metrics counters: %+v", snap.Counters)
	}
	if snap.Histograms[obs.MetricServeLatency].Count < 1 {
		t.Fatalf("/metrics latency histogram empty: %+v", snap.Histograms)
	}
}

func TestServerReloadEndpoint(t *testing.T) {
	s, d, dir := newTestServer(t)
	h := s.Handler()

	saveModel(t, dir, "extra", trainModel(t, core.LRB, d))
	req := httptest.NewRequest(http.MethodPost, "/admin/reload", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/admin/reload: %d %s", w.Code, w.Body)
	}
	var rr ReloadResponse
	if err := json.Unmarshal(w.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Generation != 2 || len(rr.Models) != 3 {
		t.Fatalf("reload: %+v", rr)
	}
	if _, ok := s.Registry().Get("extra"); !ok {
		t.Fatal("reloaded model not served")
	}

	// A failed reload reports 500 and keeps serving generation 2.
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("failed reload: %d", w.Code)
	}
	if s.Registry().Generation() != 2 {
		t.Fatalf("generation = %d after failed reload", s.Registry().Generation())
	}
}

func TestServerReportEndpoint(t *testing.T) {
	s, d, _ := newTestServer(t)
	h := s.Handler()
	s.SetAddr("127.0.0.1:0")
	postPredict(t, h, map[string]any{"model": "nns", "row": rowJSON(d, 2)})

	req := httptest.NewRequest(http.MethodGet, "/v1/report", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/report: %d", w.Code)
	}
	rep, err := obs.ReadServeReport(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 1 || rep.Predictions != 1 || rep.Addr != "127.0.0.1:0" || len(rep.Models) != 2 {
		t.Fatalf("report: %+v", rep)
	}
}

// TestServerShedMapsTo429 wires a blocking scorer behind the HTTP
// surface and pins the load-shedding contract: 429, Retry-After header,
// JSON error body.
func TestServerShedMapsTo429(t *testing.T) {
	s, d, _ := newTestServer(t)
	h := s.Handler()

	// Swap in a tiny batcher whose single worker blocks until released.
	s.bat.Close()
	release := make(chan struct{})
	entered := make(chan struct{}, 64)
	score := func(_ context.Context, _ *Model, rows [][]dataset.Value, out []float64) error {
		entered <- struct{}{}
		<-release
		for i := range out {
			out[i] = 1
		}
		return nil
	}
	s.bat = newBatcher(BatcherConfig{QueueDepth: 1, MaxBatch: 1, MaxWait: 0, Workers: 1}, s.met, score)
	defer func() { close(release); s.bat.Close() }()

	body := map[string]any{"model": "nns", "row": rowJSON(d, 0)}
	done := make(chan *httptest.ResponseRecorder, 2)
	// One request occupies the worker, one fills the queue.
	go func() { done <- postPredict(t, h, body) }()
	<-entered
	go func() { done <- postPredict(t, h, body) }()
	deadline := time.After(5 * time.Second)
	for len(s.bat.queue) < 1 {
		select {
		case <-deadline:
			t.Fatal("queue never filled")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// The next request is shed. The queue (capacity 1) is full at shed
	// time, so the derived Retry-After is pinned at the saturation value.
	w := postPredict(t, h, body)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded predict: %d %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") != "5" {
		t.Fatalf("Retry-After = %q, want 5", w.Header().Get("Retry-After"))
	}
	var e ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || !strings.Contains(e.Error, "queue full") {
		t.Fatalf("shed body: %s (%v)", w.Body, err)
	}
}

func TestServerHealthz(t *testing.T) {
	s, _, _ := newTestServer(t)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("/healthz: %d %s", w.Code, w.Body)
	}
}

// TestServerPreEnqueueValidation pins the client-error/server-error
// boundary: rows that cannot be scored against a *known* model — wrong
// width for the fitted schema, categories with no numeric mapping — are
// rejected with 400 by CheckRows before admission. The serve.requests
// counter only moves after validation, so an unchanged counter proves
// the bad request never occupied a queue slot or reached a kernel.
func TestServerPreEnqueueValidation(t *testing.T) {
	s, d, _ := newTestServer(t)
	h := s.Handler()
	good := rowJSON(d, 0)
	wide := append(append([]any{}, good...), 1.0)
	alien := append([]any{}, good...)
	alien[3] = "alien" // categorical field with NumericLevels {weak, strong}

	cases := []struct {
		name string
		body any
		want string
	}{
		{"single row too wide", map[string]any{"model": "nns", "row": wide}, "5 values"},
		{"batch row too wide", map[string]any{"model": "nns", "rows": [][]any{good, wide}}, "row 1"},
		{"unmapped category on LR model", map[string]any{"model": "lre", "row": alien}, "no numeric mapping"},
		{"unmapped category in batch", map[string]any{"model": "lre", "rows": [][]any{alien, good}}, "no numeric mapping"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := s.met.requests.Value()
			w := postPredict(t, h, tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("code = %d, want 400 (%s)", w.Code, w.Body)
			}
			var e ErrorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
				t.Fatalf("non-JSON error body: %s", w.Body)
			}
			if !strings.Contains(e.Error, tc.want) {
				t.Errorf("error %q does not contain %q", e.Error, tc.want)
			}
			if after := s.met.requests.Value(); after != before {
				t.Errorf("requests counter moved %d -> %d: invalid request was admitted", before, after)
			}
			if errs := s.met.errors.Value(); errs != 0 {
				t.Errorf("errors counter = %d: validation failure reached the scoring path", errs)
			}
		})
	}

	// The same category IS valid for the one-hot NN encoder (an unseen
	// category encodes as all-zero indicators), so the 400 above must be
	// the LR mapping check, not a blanket category whitelist.
	w := postPredict(t, h, map[string]any{"model": "nns", "row": alien})
	if w.Code != http.StatusOK {
		t.Fatalf("unseen category on one-hot model = %d, want 200 (%s)", w.Code, w.Body)
	}
}

// TestRetryAfterSeconds pins the queue-pressure → Retry-After mapping:
// 1s for a quiet queue rising linearly to 5s at saturation, clamped on
// both sides, with degenerate capacities falling back to the minimum.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		queued, capacity, want int
	}{
		{0, 256, 1},
		{63, 256, 1},
		{64, 256, 2},
		{128, 256, 3},
		{192, 256, 4},
		{255, 256, 4},
		{256, 256, 5},
		{300, 256, 5}, // over-reported depth clamps to capacity
		{-3, 256, 1},  // racy negative observation clamps to zero
		{1, 1, 5},
		{0, 1, 1},
		{0, 0, 1}, // degenerate capacity
		{5, -1, 1},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.queued, tc.capacity); got != tc.want {
			t.Errorf("retryAfterSeconds(%d, %d) = %d, want %d", tc.queued, tc.capacity, got, tc.want)
		}
	}
}

// TestWritePredictErrorRetryAfterHeader pins the exact Retry-After the
// HTTP layer emits for shed errors: the value carried by the batcher's
// OverloadedError, and the minimum back-off for a bare ErrOverloaded
// (which errors.Is still matches via OverloadedError.Is).
func TestWritePredictErrorRetryAfterHeader(t *testing.T) {
	cases := []struct {
		name  string
		err   error
		want  string
		wants int
	}{
		{"bare sentinel", ErrOverloaded, "1", http.StatusTooManyRequests},
		{"quiet queue", &OverloadedError{RetryAfter: 1}, "1", http.StatusTooManyRequests},
		{"half full", &OverloadedError{RetryAfter: 3}, "3", http.StatusTooManyRequests},
		{"saturated", &OverloadedError{RetryAfter: 5}, "5", http.StatusTooManyRequests},
		{"wrapped", fmt.Errorf("admit: %w", &OverloadedError{RetryAfter: 4}), "4", http.StatusTooManyRequests},
	}
	s := &Server{}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := httptest.NewRecorder()
			s.writePredictError(w, tc.err)
			if w.Code != tc.wants {
				t.Fatalf("code = %d, want %d", w.Code, tc.wants)
			}
			if got := w.Header().Get("Retry-After"); got != tc.want {
				t.Errorf("Retry-After = %q, want %q", got, tc.want)
			}
		})
	}
}
