package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"perfpred/internal/dataset"
)

// Limits on untrusted /v1/predict bodies. MaxRequestBytes bounds the
// JSON body the server will read; MaxRowsPerRequest bounds how many rows
// one batch body may carry (larger sweeps should be paginated — one
// request is one admission-queue slot, and an unbounded body would let a
// single client monopolize a batch worker).
const (
	MaxRequestBytes   = 8 << 20
	MaxRowsPerRequest = 4096
)

// PredictRequest is the /v1/predict body — the batch JSON schema shared
// verbatim by the daemon and the predict CLI. Exactly one of Row
// (single point) or Rows (batch) must be set. Feature values are listed
// in schema field order: numbers for numeric fields, booleans for flags,
// strings for categoricals — the same column convention as the CSVs
// written by specgen / Dataset.WriteCSV, minus the target column.
type PredictRequest struct {
	// Model names the registry model to score against.
	Model string `json:"model"`
	// Row is a single feature vector.
	Row []any `json:"row,omitempty"`
	// Rows is a batch of feature vectors.
	Rows [][]any `json:"rows,omitempty"`
}

// DecodePredictRequest strictly decodes a request body: unknown fields
// are rejected, numbers are kept as json.Number so overflowing literals
// (1e999) surface as validation errors instead of silently becoming
// ±Inf, and trailing garbage after the JSON value is an error. It
// performs the structural checks that need no schema (model name
// present, exactly one of row/rows, row-count bounds); per-field
// validation happens in [PredictRequest.Resolve] once the model — and
// therefore the schema — is known.
func DecodePredictRequest(r io.Reader) (*PredictRequest, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxRequestBytes+1))
	dec.UseNumber()
	dec.DisallowUnknownFields()
	var req PredictRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("serve: decoding predict request: %w", err)
	}
	if dec.More() {
		return nil, errors.New("serve: predict request has trailing data after the JSON body")
	}
	if req.Model == "" {
		return nil, errors.New("serve: predict request has no model")
	}
	if (req.Row == nil) == (req.Rows == nil) {
		return nil, errors.New("serve: predict request must set exactly one of row, rows")
	}
	if req.Rows != nil {
		if len(req.Rows) == 0 {
			return nil, errors.New("serve: predict request rows is empty")
		}
		if len(req.Rows) > MaxRowsPerRequest {
			return nil, fmt.Errorf("serve: predict request has %d rows (max %d)", len(req.Rows), MaxRowsPerRequest)
		}
	}
	return &req, nil
}

// Single reports whether the request used the single-row form.
func (q *PredictRequest) Single() bool { return q.Row != nil }

// Resolve validates the request's feature values against a model's
// schema and converts them into record rows. Every error is a client
// error: wrong arity, wrong types, non-finite numbers.
func (q *PredictRequest) Resolve(s *dataset.Schema) ([][]dataset.Value, error) {
	raw := q.Rows
	if q.Row != nil {
		raw = [][]any{q.Row}
	}
	rows := make([][]dataset.Value, len(raw))
	for i, vals := range raw {
		row, err := s.RowFromAny(vals)
		if err != nil {
			return nil, fmt.Errorf("serve: row %d: %w", i, err)
		}
		rows[i] = row
	}
	return rows, nil
}

// PredictResponse is the /v1/predict response body.
type PredictResponse struct {
	// Model and Kind identify what scored the request.
	Model string `json:"model"`
	Kind  string `json:"kind"`
	// N is the number of scored rows.
	N int `json:"n"`
	// Prediction is set for single-row requests.
	Prediction *float64 `json:"prediction,omitempty"`
	// Predictions lists one prediction per request row, in order, in
	// original target units.
	Predictions []float64 `json:"predictions"`
}

// FieldInfo describes one schema field in a ModelInfo.
type FieldInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// ModelInfo is one registry entry in the /v1/models response — enough
// schema for a client to build valid predict requests.
type ModelInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Family is the model's versioned family artifact tag (e.g.
	// "linreg/v1", "tree/v1") from the registry descriptor.
	Family   string      `json:"family"`
	Target   string      `json:"target"`
	Fields   []FieldInfo `json:"fields"`
	Columns  int         `json:"columns"`
	LoadedAt string      `json:"loaded_at"`
}

// ModelsResponse is the /v1/models response body.
type ModelsResponse struct {
	Generation int64       `json:"generation"`
	Models     []ModelInfo `json:"models"`
}

// ReloadResponse is the /admin/reload response body.
type ReloadResponse struct {
	Generation int64    `json:"generation"`
	Models     []string `json:"models"`
}

// ErrorResponse is the JSON error envelope for non-2xx responses.
type ErrorResponse struct {
	Error string `json:"error"`
}

// infoFor summarizes a registry model for /v1/models.
func infoFor(m *Model) ModelInfo {
	s := m.Pred.Encoder().Schema()
	fields := make([]FieldInfo, len(s.Fields))
	for i, f := range s.Fields {
		fields[i] = FieldInfo{Name: f.Name, Kind: f.Kind.String()}
	}
	return ModelInfo{
		Name:     m.Name,
		Kind:     m.Pred.Kind().String(),
		Family:   m.Pred.Kind().Tag(),
		Target:   s.Target,
		Fields:   fields,
		Columns:  m.Pred.Encoder().NumColumns(),
		LoadedAt: m.LoadedAt.UTC().Format("2006-01-02T15:04:05Z"),
	}
}
