package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"perfpred/internal/core"
)

// TestServeAllKindsConcurrent proves the registry seam end to end: every
// registered model kind — the paper zoo and TREE-B alike — is trained,
// persisted, loaded by the serving registry, and scored through the HTTP
// handler and micro-batcher under concurrent load, bit-identical to the
// offline predictor. Serve contains no per-family code, so this test is
// the gate that a newly registered family really serves unchanged.
func TestServeAllKindsConcurrent(t *testing.T) {
	d := synthDataset(t, 64, 17)
	dir := t.TempDir()
	kinds := core.AllModels()
	names := make([]string, len(kinds))
	for i, kind := range kinds {
		names[i] = strings.ToLower(strings.ReplaceAll(kind.String(), "-", ""))
		saveModel(t, dir, names[i], trainModel(t, kind, d))
	}
	s, err := New(Config{ModelsDir: dir, Batcher: BatcherConfig{Workers: 3, MaxBatch: 8}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	h := s.Handler()

	// Offline truth per kind, computed on the served (round-tripped)
	// predictors so this isolates the serving path.
	offline := make(map[string][]float64, len(names))
	for _, name := range names {
		m, ok := s.Registry().Get(name)
		if !ok {
			t.Fatalf("model %q not served", name)
		}
		preds, err := m.Pred.PredictDataset(context.Background(), d)
		if err != nil {
			t.Fatal(err)
		}
		offline[name] = preds
	}

	rows := make([][]any, d.Len())
	for i := range rows {
		rows[i] = rowJSON(d, i)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(names)*3)
	for _, name := range names {
		for rep := 0; rep < 3; rep++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				w := postPredict(t, h, map[string]any{"model": name, "rows": rows})
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("%s: HTTP %d: %s", name, w.Code, w.Body)
					return
				}
				var resp PredictResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					errs <- fmt.Errorf("%s: %v", name, err)
					return
				}
				for i, want := range offline[name] {
					if resp.Predictions[i] != want {
						errs <- fmt.Errorf("%s row %d: served %v != offline %v", name, i, resp.Predictions[i], want)
						return
					}
				}
			}(name)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// /v1/models reports each model's family tag from the registry.
	req := httptest.NewRequest(http.MethodGet, "/v1/models", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var mr ModelsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &mr); err != nil {
		t.Fatal(err)
	}
	families := make(map[string]string, len(mr.Models))
	for _, m := range mr.Models {
		families[m.Name] = m.Family
	}
	for i, kind := range kinds {
		if got := families[names[i]]; got != kind.Tag() {
			t.Errorf("%v: /v1/models family %q, want %q", kind, got, kind.Tag())
		}
	}
}
