package serve

import (
	"context"
	"sync"

	"perfpred/internal/dataset"
	"perfpred/internal/faultinject"
	"perfpred/internal/predcache"
)

// cachedPredictor sits between the HTTP handler and the micro-batcher
// when the daemon runs with CacheEntries > 0. Per request it encodes
// each row to its canonical form, probes the cache under the request's
// (model, generation) key, sends only the rows that must be scored to
// the batcher (leading their flights), and fills results back so
// concurrent identical rows ride one batcher slot.
//
// Correctness stance: the cache must be invisible except in latency.
// Hits return values the batcher produced for a float64-equal row under
// the same artifact generation; any failure (batcher error, injected
// fault, abandoned flight) falls back to scoring through the batcher
// exactly as the uncached path would.
type cachedPredictor struct {
	cache *predcache.Cache
	bat   *Batcher
	met   *metrics
	fi    *faultinject.Injector
	// scratch pools per-request assembly buffers so the all-hits path —
	// the steady state for duplicate-heavy traffic — allocates nothing.
	scratch sync.Pool
}

// cacheScratch is one request's reusable assembly state.
type cacheScratch struct {
	enc      []float64           // canonical-encoding buffer, one row at a time
	leadIdx  []int               // row positions this request must score
	leadFl   []*predcache.Flight // flights led, parallel to leadIdx
	leadRows [][]dataset.Value   // rows for the batcher, parallel to leadIdx
	waitIdx  []int               // row positions coalesced on other flights
	waitFl   []*predcache.Flight // flights waited on, parallel to waitIdx
	fbIdx    []int               // row positions needing fallback scoring
	fbRows   [][]dataset.Value   // rows for fallback, parallel to fbIdx
}

func newCachedPredictor(entries int, bat *Batcher, met *metrics, fi *faultinject.Injector) *cachedPredictor {
	cp := &cachedPredictor{
		cache: predcache.New(predcache.Config{
			MaxEntries: entries,
			Metrics:    predcache.NewMetrics(met.reg),
		}),
		bat: bat,
		met: met,
		fi:  fi,
	}
	cp.scratch.New = func() any { return &cacheScratch{} }
	return cp
}

// predictInto scores rows for m (resolved at generation gen) into out,
// serving what it can from the cache. len(out) == len(rows); rows must
// already have passed CheckRows, so encoding cannot fail.
func (cp *cachedPredictor) predictInto(ctx context.Context, m *Model, gen int64, rows [][]dataset.Value, out []float64) error {
	// Cache-lookup fault point: a forced error bypasses the cache for
	// this request (the fail-open path — answers must not change);
	// latency-only faults delay the probe, widening the window for
	// eviction and reload races while the rows are in flight.
	if fired, err := cp.fi.Hit(ctx, faultinject.ServeCacheLookup); fired {
		cp.met.faults.Inc()
		if err != nil {
			return cp.direct(ctx, m, rows, out)
		}
	}

	ws := cp.scratch.Get().(*cacheScratch)
	defer cp.scratch.Put(ws)
	enc := m.Pred.Encoder()
	if n := enc.NumColumns(); cap(ws.enc) < n {
		ws.enc = make([]float64, n)
	}
	buf := ws.enc[:enc.NumColumns()]
	leadIdx, leadFl, leadRows := ws.leadIdx[:0], ws.leadFl[:0], ws.leadRows[:0]
	waitIdx, waitFl := ws.waitIdx[:0], ws.waitFl[:0]

	for i, row := range rows {
		if err := enc.EncodeRowInto(buf, row); err != nil {
			// CheckRows precedes admission, so this is unreachable for
			// served requests; fail closed to the uncached path anyway.
			cp.putScratch(ws, leadIdx, leadFl, leadRows, waitIdx, waitFl)
			return cp.direct(ctx, m, rows, out)
		}
		key := predcache.Key{Model: m.Name, Gen: gen, Hash: predcache.HashRow(buf)}
		val, fl, outcome := cp.cache.Lookup(key, buf)
		switch outcome {
		case predcache.Hit:
			out[i] = val
		case predcache.Lead:
			leadIdx = append(leadIdx, i)
			leadFl = append(leadFl, fl)
			leadRows = append(leadRows, row)
		case predcache.Coalesce:
			waitIdx = append(waitIdx, i)
			waitFl = append(waitFl, fl)
		}
	}

	// Score led rows first — before waiting on anything — so a request
	// that both leads and coalesces the same row (duplicates within one
	// batch body) resolves its own flights before blocking on them, and
	// no two requests can ever wait on each other's unscored leads.
	if len(leadIdx) > 0 {
		res, err := cp.bat.Predict(ctx, m, leadRows)
		if err != nil {
			for _, fl := range leadFl {
				cp.cache.Abandon(fl)
			}
			// Predict can return (deadline, shed mid-queue) while the
			// enqueued batch still holds leadRows for a later flush; the
			// slice must go to the GC, not back into the pool.
			cp.putScratch(ws, leadIdx, leadFl, nil, waitIdx, waitFl)
			return err
		}
		for j, fl := range leadFl {
			out[leadIdx[j]] = res[j]
			cp.cache.Fill(fl, res[j])
		}
	}

	// Collect coalesced rows; a flight abandoned by its leader falls back
	// to one direct batcher call for exactly those rows.
	fbIdx, fbRows := ws.fbIdx[:0], ws.fbRows[:0]
	var waitErr error
	for j, fl := range waitFl {
		val, ok, err := fl.Wait(ctx)
		if err != nil {
			waitErr = err
			break
		}
		if ok {
			out[waitIdx[j]] = val
		} else {
			fbIdx = append(fbIdx, waitIdx[j])
			fbRows = append(fbRows, rows[waitIdx[j]])
		}
	}
	if waitErr == nil && len(fbIdx) > 0 {
		res, err := cp.bat.Predict(ctx, m, fbRows)
		if err != nil {
			waitErr = err
			// As with a failed lead scoring: the batch may still read
			// fbRows after this request unwinds, so drop the slice.
			fbRows = nil
		} else {
			for j, i := range fbIdx {
				out[i] = res[j]
			}
		}
	}
	cp.putScratch(ws, leadIdx, leadFl, leadRows, waitIdx, waitFl)
	for i := range fbRows {
		fbRows[i] = nil
	}
	ws.fbIdx, ws.fbRows = fbIdx[:0], fbRows[:0]
	return waitErr
}

// putScratch stores the (possibly regrown) slices back on the scratch
// and clears flight pointers so pooled scratch never pins dead entries.
func (cp *cachedPredictor) putScratch(ws *cacheScratch, leadIdx []int, leadFl []*predcache.Flight, leadRows [][]dataset.Value, waitIdx []int, waitFl []*predcache.Flight) {
	for i := range leadFl {
		leadFl[i] = nil
	}
	for i := range waitFl {
		waitFl[i] = nil
	}
	for i := range leadRows {
		leadRows[i] = nil
	}
	ws.leadIdx, ws.leadFl, ws.leadRows = leadIdx[:0], leadFl[:0], leadRows[:0]
	ws.waitIdx, ws.waitFl = waitIdx[:0], waitFl[:0]
}

// direct scores every row through the batcher, cache untouched — the
// fail-open path for injected cache faults.
func (cp *cachedPredictor) direct(ctx context.Context, m *Model, rows [][]dataset.Value, out []float64) error {
	res, err := cp.bat.Predict(ctx, m, rows)
	if err != nil {
		return err
	}
	copy(out, res)
	return nil
}
