package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"perfpred/internal/core"
)

// Model is one named predictor in the registry.
type Model struct {
	// Name is the registry name — the artifact's file name without its
	// .json extension.
	Name string
	// Path is the artifact file the model was loaded from.
	Path string
	// Pred is the loaded, validated predictor.
	Pred *core.Predictor
	// LoadedAt is when this artifact was (re)loaded.
	LoadedAt time.Time
}

// LoadModelFile loads and validates one serialized predictor file as a
// named model. It is the single loading path shared by the registry and
// the predict CLI, so both reject the same malformed artifacts with the
// same errors.
func LoadModelFile(path string) (*Model, error) {
	p, err := core.LoadPredictorFile(path)
	if err != nil {
		return nil, err
	}
	name := strings.TrimSuffix(filepath.Base(path), ".json")
	if name == "" {
		return nil, fmt.Errorf("serve: model file %s has an empty name", path)
	}
	return &Model{Name: name, Path: path, Pred: p, LoadedAt: time.Now()}, nil
}

// catalog is one immutable registry state. Readers resolve models
// against whichever catalog pointer they loaded; reloads build a whole
// new catalog and swap the pointer, so a lookup never sees a mix of old
// and new models.
type catalog struct {
	models map[string]*Model
	names  []string // sorted
	gen    int64
}

// Registry maps model names to loaded predictors, with atomic hot
// reload. Lookups are lock-free pointer loads; Reload serializes against
// itself, builds the next catalog from the directory, and installs it
// only if every artifact loads — a failed reload leaves the serving
// catalog untouched.
type Registry struct {
	dir string
	mu  sync.Mutex
	cur atomic.Pointer[catalog]
}

// OpenRegistry loads every *.json predictor in dir (generation 1). It
// fails if the directory cannot be read, any artifact is malformed, or
// no models are found — an empty serving daemon is a misconfiguration.
func OpenRegistry(dir string) (*Registry, error) {
	r := &Registry{dir: dir}
	if _, err := r.Reload(); err != nil {
		return nil, err
	}
	return r, nil
}

// Dir returns the registry's model directory.
func (r *Registry) Dir() string { return r.dir }

// Reload re-scans the directory and atomically swaps in the new catalog,
// returning the new generation. On any error the previous catalog keeps
// serving and the generation does not advance.
func (r *Registry) Reload() (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return 0, fmt.Errorf("serve: reading model directory: %w", err)
	}
	models := make(map[string]*Model)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		m, err := LoadModelFile(filepath.Join(r.dir, e.Name()))
		if err != nil {
			return 0, err
		}
		models[m.Name] = m
	}
	if len(models) == 0 {
		return 0, fmt.Errorf("serve: no *.json models in %s", r.dir)
	}
	names := make([]string, 0, len(models))
	for n := range models {
		names = append(names, n)
	}
	sort.Strings(names)
	gen := int64(1)
	if old := r.cur.Load(); old != nil {
		gen = old.gen + 1
	}
	r.cur.Store(&catalog{models: models, names: names, gen: gen})
	return gen, nil
}

// Get resolves a model by name against the current catalog.
func (r *Registry) Get(name string) (*Model, bool) {
	m, ok := r.cur.Load().models[name]
	return m, ok
}

// Resolve resolves a model together with the generation of the catalog
// it came from, in one atomic catalog load. The cache keys entries by
// (model, generation); resolving them separately (Get then Generation)
// could straddle a reload and pair an old model with a new generation —
// exactly the stale-value hazard the generation key exists to prevent.
func (r *Registry) Resolve(name string) (*Model, int64, bool) {
	c := r.cur.Load()
	m, ok := c.models[name]
	return m, c.gen, ok
}

// Names lists the current catalog's model names, sorted.
func (r *Registry) Names() []string {
	return append([]string(nil), r.cur.Load().names...)
}

// Models lists the current catalog's models in name order.
func (r *Registry) Models() []*Model {
	c := r.cur.Load()
	out := make([]*Model, 0, len(c.names))
	for _, n := range c.names {
		out = append(out, c.models[n])
	}
	return out
}

// Generation returns the current catalog's reload generation (1 = the
// initial load).
func (r *Registry) Generation() int64 { return r.cur.Load().gen }
