package serve

import (
	"bytes"
	"math"
	"testing"

	"perfpred/internal/dataset"
)

// FuzzDecodePredictRequest hardens the /v1/predict decoder against
// hostile bodies: whatever the bytes, decode+resolve must never panic,
// and anything they accept must satisfy the invariants the batcher and
// kernel rely on — non-empty row set, schema arity, finite numerics,
// correctly typed values. Seeds cover the malformed-JSON, NaN/Inf and
// wrong-arity corners; the committed corpus under testdata/fuzz replays
// past findings in CI's fuzz-regression step.
func FuzzDecodePredictRequest(f *testing.F) {
	seeds := []string{
		`{"model":"m","row":[32,true,"weak"]}`,
		`{"model":"m","rows":[[32,true,"weak"],[48.5,false,"strong"]]}`,
		`{"model":"m","row":[`,
		`{"model":"m","row":[1e999,true,"weak"]}`,
		`{"model":"m","row":["NaN",true,"weak"]}`,
		`{"model":"m","row":[32,true]}`,
		`{"model":"","row":[32,true,"weak"]}`,
		`{"model":"m","row":[32,true,"weak"],"rows":[[32,true,"weak"]]}`,
		`{"model":"m","rows":[]}`,
		`{"model":"m","row":[32,true,"weak"]} trailing`,
		`{"model":"m","row":[32,true,"weak"],"extra":1}`,
		`{"model":"m","row":[null,true,"weak"]}`,
		`{"model":"m","row":[[32],true,"weak"]}`,
		`[1,2,3]`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	schema, err := dataset.NewSchema("cycles",
		dataset.Field{Name: "size", Kind: dataset.Numeric},
		dataset.Field{Name: "fast", Kind: dataset.Flag},
		dataset.Field{Name: "pred", Kind: dataset.Categorical},
	)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodePredictRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if req.Model == "" {
			t.Fatal("decoder accepted a request without a model")
		}
		if (req.Row == nil) == (req.Rows == nil) {
			t.Fatal("decoder accepted a request without exactly one of row/rows")
		}
		rows, err := req.Resolve(schema)
		if err != nil {
			return
		}
		if len(rows) == 0 || len(rows) > MaxRowsPerRequest {
			t.Fatalf("resolve produced %d rows", len(rows))
		}
		if req.Single() != (len(rows) == 1 && req.Row != nil) {
			t.Fatalf("Single()=%v with %d rows", req.Single(), len(rows))
		}
		for _, row := range rows {
			if len(row) != len(schema.Fields) {
				t.Fatalf("resolved row has %d values for %d fields", len(row), len(schema.Fields))
			}
			for j, f := range schema.Fields {
				v := row[j]
				if v.Kind() != f.Kind {
					t.Fatalf("field %q resolved to kind %v", f.Name, v.Kind())
				}
				if f.Kind == dataset.Numeric {
					if x := v.Float(); math.IsNaN(x) || math.IsInf(x, 0) {
						t.Fatalf("field %q resolved to non-finite %v", f.Name, x)
					}
				}
			}
		}
	})
}
