package serve

import (
	"context"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"perfpred/internal/core"
	"perfpred/internal/dataset"
	"perfpred/internal/faultinject"
)

// rawRows collects a dataset's records as request rows.
func rawRows(d *dataset.Dataset) [][]dataset.Value {
	rows := make([][]dataset.Value, d.Len())
	for i := range rows {
		rows[i] = d.Row(i)
	}
	return rows
}

// TestBatcherSoakUnderInjectedFlushLatency is a short deterministic
// soak: every 3rd batch flush stalls on an injected delay while eight
// clients hammer two real models with seed-derived request streams.
// Coalescing under pressure must never change answers — every response
// is bit-compared against offline PredictRowsInto goldens computed
// before the injector was armed. Runs under the race CI step with the
// rest of this package.
func TestBatcherSoakUnderInjectedFlushLatency(t *testing.T) {
	d := synthDataset(t, 64, 9)
	dir := t.TempDir()
	names := []string{"lre", "nns"}
	kinds := map[string]core.ModelKind{"lre": core.LRE, "nns": core.NNS}

	// Train, save, and reload each artifact; golden-score every dataset
	// row offline before any fault injector exists.
	models := map[string]*Model{}
	golden := map[string][]float64{}
	for _, name := range names {
		saveModel(t, dir, name, trainModel(t, kinds[name], d))
		m, err := LoadModelFile(filepath.Join(dir, name+".json"))
		if err != nil {
			t.Fatal(err)
		}
		models[name] = m
		out := make([]float64, d.Len())
		if err := m.Pred.PredictRowsInto(context.Background(), out, rawRows(d)); err != nil {
			t.Fatal(err)
		}
		golden[name] = out
	}

	inj := faultinject.New(13, map[faultinject.Point]faultinject.Plan{
		faultinject.ServeBatchFlush: {Every: 3, Latency: 1500 * time.Microsecond},
	})
	restore := faultinject.Activate(inj)
	defer restore()

	met := newMetrics(nil)
	b := newBatcher(BatcherConfig{QueueDepth: 64, MaxBatch: 8, MaxWait: 100 * time.Microsecond, Workers: 2}, met, scoreModel)
	defer b.Close()

	const (
		clients          = 8
		requestsPer      = 40
		maxRowsPerSubmit = 3
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + g))) // per-client deterministic stream
			for i := 0; i < requestsPer; i++ {
				name := names[r.Intn(len(names))]
				n := 1 + r.Intn(maxRowsPerSubmit)
				idxs := make([]int, n)
				rows := make([][]dataset.Value, n)
				for j := 0; j < n; j++ {
					idxs[j] = r.Intn(d.Len())
					rows[j] = d.Row(idxs[j])
				}
				out, err := b.Predict(context.Background(), models[name], rows)
				if err != nil {
					errs <- err
					return
				}
				for j, idx := range idxs {
					if out[j] != golden[name][idx] {
						t.Errorf("client %d req %d: %s row %d predicted %v under flush faults, golden %v",
							g, i, name, idx, out[j], golden[name][idx])
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("soak request failed: %v", err)
	}

	stats := inj.Stats()["serve.batch_flush"]
	if stats.Fires == 0 {
		t.Fatal("flush latency fault never fired")
	}
	if got := met.faults.Value(); got != int64(stats.Fires) {
		t.Errorf("faults counter %d, injector recorded %d fires", got, stats.Fires)
	}
}
