// Package serve is the model-serving subsystem behind cmd/perfpredd: a
// stdlib-only HTTP daemon that turns trained surrogate predictors into a
// long-lived query service — the deployment shape the paper's Figure 1
// implies once a design team stops retraining per question and starts
// asking the surrogate for every point in a design space.
//
// The package is three cooperating pieces:
//
//   - [Registry]: loads a directory of predictors serialized by
//     core.Predictor.Save into named, versioned models and swaps the
//     whole catalog atomically on reload (SIGHUP or POST /admin/reload),
//     so lookups never observe a half-loaded state and a failed reload
//     keeps the previous catalog serving.
//   - [Batcher]: a micro-batcher that funnels every prediction through a
//     bounded admission queue. Worker goroutines coalesce concurrent
//     requests into one flat core.Predictor.PredictRowsInto kernel call
//     on engine worker-local scratch (the PR-3 zero-allocation batch
//     path), shed load with [ErrOverloaded] when the queue is full, and
//     drain the queue completely on shutdown.
//   - [Server]: the HTTP surface — POST /v1/predict (single row or
//     batch), GET /v1/models, GET /v1/report, POST /admin/reload,
//     GET /healthz — plus the obs metrics endpoints (/metrics JSON,
//     /debug/vars expvar, /debug/pprof) fed by the serve.* counters and
//     histograms named in the obs package.
//
// Batching never changes answers: the batched kernel is bit-identical to
// per-row Predict, so any coalescing of concurrent requests returns
// exactly the predictions a sequential client would have seen.
package serve

import (
	"perfpred/internal/obs"
)

// metrics bundles the registry entries the serving path records into,
// resolved once at startup so hot-path increments never take the
// registry lock. Names are the obs.MetricServe* constants, which
// BuildServeReport reads back out.
type metrics struct {
	reg         *obs.Registry
	requests    *obs.Counter
	predictions *obs.Counter
	batches     *obs.Counter
	shed        *obs.Counter
	errors      *obs.Counter
	reloads     *obs.Counter
	faults      *obs.Counter
	batchSize   *obs.Histogram
	queueWait   *obs.Histogram
	latency     *obs.Histogram
	kernel      *obs.Histogram
	queueDepth  *obs.Gauge
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &metrics{
		reg:         reg,
		requests:    reg.Counter(obs.MetricServeRequests),
		predictions: reg.Counter(obs.MetricServePredictions),
		batches:     reg.Counter(obs.MetricServeBatches),
		shed:        reg.Counter(obs.MetricServeShed),
		errors:      reg.Counter(obs.MetricServeErrors),
		reloads:     reg.Counter(obs.MetricServeReloads),
		faults:      reg.Counter(obs.MetricServeFaults),
		batchSize:   reg.Histogram(obs.MetricServeBatchSize),
		queueWait:   reg.Histogram(obs.MetricServeQueueWait),
		latency:     reg.Histogram(obs.MetricServeLatency),
		kernel:      reg.Histogram(obs.MetricServeKernel),
		queueDepth:  reg.Gauge(obs.MetricServeQueueDepth),
	}
}
