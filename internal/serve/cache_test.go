package serve

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"perfpred/internal/core"
	"perfpred/internal/dataset"
	"perfpred/internal/faultinject"
	"perfpred/internal/obs"
)

// newCachedTestServer is newTestServer with the prediction cache armed.
func newCachedTestServer(t testing.TB, entries int) (*Server, *dataset.Dataset, string) {
	t.Helper()
	d := synthDataset(t, 64, 6)
	dir := t.TempDir()
	saveModel(t, dir, "lre", trainModel(t, core.LRE, d))
	saveModel(t, dir, "nns", trainModel(t, core.NNS, d))
	s, err := New(Config{
		ModelsDir:    dir,
		Batcher:      BatcherConfig{Workers: 2, MaxWait: 0},
		CacheEntries: entries,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, d, dir
}

// trainModelSeed trains like trainModel but with a caller-chosen seed,
// so a retrained artifact genuinely predicts differently.
func trainModelSeed(t testing.TB, kind core.ModelKind, d *dataset.Dataset, seed int64) *core.Predictor {
	t.Helper()
	p, err := core.Train(context.Background(), kind, d, core.TrainConfig{Seed: seed, Workers: 2, EpochScale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCachedServingBitIdentical compares cached serving against the
// model's own offline scalar path on repeated rows: the first request
// misses and scores, every repeat hits, and all of them must be exactly
// the offline value.
func TestCachedServingBitIdentical(t *testing.T) {
	s, d, _ := newCachedTestServer(t, 256)
	m, _ := s.Registry().Get("nns")
	for i := 0; i < 8; i++ {
		want, err := m.Pred.Predict(d.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			out := make([]float64, 1)
			if err := s.cache.predictInto(context.Background(), m, s.reg.Generation(), [][]dataset.Value{d.Row(i)}, out); err != nil {
				t.Fatal(err)
			}
			if out[0] != want {
				t.Fatalf("row %d rep %d: cached %v != offline %v", i, rep, out[0], want)
			}
		}
	}
	snap := s.MetricsRegistry().Snapshot()
	// At least the 2 repeats of each row hit; the synthetic dataset may
	// also contain duplicate design points, which hit on first sight.
	if hits := snap.Counters[obs.MetricCacheHits]; hits < 16 {
		t.Fatalf("hits = %d, want ≥ 16 (2 repeats × 8 rows)", hits)
	}
	if lookups, hm := snap.Counters[obs.MetricCacheLookups], snap.Counters[obs.MetricCacheHits]+snap.Counters[obs.MetricCacheMisses]; lookups != hm {
		t.Fatalf("lookups=%d != hits+misses=%d", lookups, hm)
	}
}

// TestCacheMixedHitMissBatch posts a batch body that is part cached,
// part fresh, part duplicate-within-the-batch, and requires every
// position to match offline scoring — the partial-hit fill path.
func TestCacheMixedHitMissBatch(t *testing.T) {
	s, d, _ := newCachedTestServer(t, 256)
	m, _ := s.Registry().Get("lre")
	gen := s.reg.Generation()

	// Warm row 0 into the cache.
	warm := make([]float64, 1)
	if err := s.cache.predictInto(context.Background(), m, gen, [][]dataset.Value{d.Row(0)}, warm); err != nil {
		t.Fatal(err)
	}

	// hit, fresh, duplicate-of-fresh, hit, another fresh
	rows := [][]dataset.Value{d.Row(0), d.Row(1), d.Row(1), d.Row(0), d.Row(2)}
	out := make([]float64, len(rows))
	if err := s.cache.predictInto(context.Background(), m, gen, rows, out); err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		want, err := m.Pred.Predict(row)
		if err != nil {
			t.Fatal(err)
		}
		if out[i] != want {
			t.Fatalf("position %d: %v != offline %v", i, out[i], want)
		}
	}
	snap := s.MetricsRegistry().Snapshot()
	// Positions 0 and 3 hit; 1 leads; 2 coalesces on 1's flight; 4 leads.
	if hits, coal := snap.Counters[obs.MetricCacheHits], snap.Counters[obs.MetricCacheCoalesced]; hits != 2 || coal != 1 {
		t.Fatalf("hits=%d coalesced=%d, want 2, 1", hits, coal)
	}
}

// TestCacheInvalidationOnReload retrains an artifact in place, reloads,
// and requires the daemon to serve the NEW model's value — a cached
// value from the previous generation must be unreachable.
func TestCacheInvalidationOnReload(t *testing.T) {
	s, d, dir := newCachedTestServer(t, 256)
	h := s.Handler()
	body := map[string]any{"model": "nns", "row": rowJSON(d, 0)}

	w := postPredict(t, h, body)
	if w.Code != 200 {
		t.Fatalf("warm predict: %d %s", w.Code, w.Body)
	}
	var before PredictResponse
	mustDecode(t, w.Body.Bytes(), &before)

	// Same request again: a cache hit, identical bits.
	w = postPredict(t, h, body)
	var again PredictResponse
	mustDecode(t, w.Body.Bytes(), &again)
	if *again.Prediction != *before.Prediction {
		t.Fatalf("repeat diverged: %v != %v", *again.Prediction, *before.Prediction)
	}

	// Retrain nns with a different seed and swap the artifact on disk.
	retrained := trainModelSeed(t, core.NNS, d, 99)
	saveModel(t, dir, "nns", retrained)
	want, err := retrained.Predict(d.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	if want == *before.Prediction {
		t.Fatal("retrained model predicts identically; test has no teeth")
	}
	if _, err := s.Reload(); err != nil {
		t.Fatal(err)
	}

	// The daemon must now serve the retrained value, not the cached one.
	w = postPredict(t, h, body)
	if w.Code != 200 {
		t.Fatalf("post-reload predict: %d %s", w.Code, w.Body)
	}
	var after PredictResponse
	mustDecode(t, w.Body.Bytes(), &after)
	if *after.Prediction != want {
		t.Fatalf("post-reload served %v, want retrained %v (stale cache?)", *after.Prediction, want)
	}
	snap := s.MetricsRegistry().Snapshot()
	if inv := snap.Counters[obs.MetricCacheInvalidations]; inv < 1 {
		t.Fatalf("invalidations = %d, want ≥ 1", inv)
	}
}

// TestCachedPredictCoalesces holds the batcher's scorer open while N
// goroutines request the same row and pins that the kernel scored that
// row exactly once — the singleflight contract.
func TestCachedPredictCoalesces(t *testing.T) {
	s, d, _ := newCachedTestServer(t, 256)
	m, _ := s.Registry().Get("lre")
	gen := s.reg.Generation()

	// Swap in a scorer that counts kernel row-scorings and blocks until
	// released, so all goroutines pile onto one pending flight.
	s.bat.Close()
	release := make(chan struct{})
	var mu sync.Mutex
	scoredRows := 0
	entered := make(chan struct{}, 64)
	score := func(ctx context.Context, sm *Model, rows [][]dataset.Value, out []float64) error {
		mu.Lock()
		scoredRows += len(rows)
		mu.Unlock()
		entered <- struct{}{}
		<-release
		return scoreModel(ctx, sm, rows, out)
	}
	s.bat = newBatcher(BatcherConfig{QueueDepth: 64, MaxBatch: 64, MaxWait: 0, Workers: 1}, s.met, score)
	defer s.bat.Close()
	s.cache.bat = s.bat

	want, err := m.Pred.Predict(d.Row(3))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	results := make([]float64, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]float64, 1)
			errs[g] = s.cache.predictInto(context.Background(), m, gen, [][]dataset.Value{d.Row(3)}, out)
			results[g] = out[0]
		}(g)
	}
	<-entered // the single leader reached the scorer
	// Give followers time to coalesce onto the pending flight, then let
	// the leader finish.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if results[g] != want {
			t.Fatalf("goroutine %d: %v != offline %v", g, results[g], want)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if scoredRows != 1 {
		t.Fatalf("kernel scored %d rows for one identical row, want 1", scoredRows)
	}
	snap := s.MetricsRegistry().Snapshot()
	if coal := snap.Counters[obs.MetricCacheCoalesced]; coal != goroutines-1 {
		t.Fatalf("coalesced = %d, want %d", coal, goroutines-1)
	}
}

// TestCacheAbandonFallsBack fails the leader's scoring once and checks
// waiters fall back to scoring for themselves instead of inheriting the
// failure or a bogus value.
func TestCacheAbandonFallsBack(t *testing.T) {
	s, d, _ := newCachedTestServer(t, 256)
	m, _ := s.Registry().Get("lre")
	gen := s.reg.Generation()

	s.bat.Close()
	boom := errors.New("injected scorer failure")
	var mu sync.Mutex
	failed := false
	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	score := func(ctx context.Context, sm *Model, rows [][]dataset.Value, out []float64) error {
		mu.Lock()
		first := !failed
		failed = true
		mu.Unlock()
		if first {
			entered <- struct{}{}
			<-release
			return boom
		}
		return scoreModel(ctx, sm, rows, out)
	}
	s.bat = newBatcher(BatcherConfig{QueueDepth: 64, MaxBatch: 1, MaxWait: 0, Workers: 1}, s.met, score)
	defer s.bat.Close()
	s.cache.bat = s.bat

	want, err := m.Pred.Predict(d.Row(5))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	leaderErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		out := make([]float64, 1)
		leaderErr <- s.cache.predictInto(context.Background(), m, gen, [][]dataset.Value{d.Row(5)}, out)
	}()
	<-entered // leader is inside the failing scorer

	waiterDone := make(chan struct{})
	var waiterVal float64
	var waiterErr error
	go func() {
		defer close(waiterDone)
		out := make([]float64, 1)
		waiterErr = s.cache.predictInto(context.Background(), m, gen, [][]dataset.Value{d.Row(5)}, out)
		waiterVal = out[0]
	}()
	time.Sleep(20 * time.Millisecond) // waiter coalesces onto the flight
	close(release)                    // leader's scoring now fails
	wg.Wait()
	if err := <-leaderErr; !errors.Is(err, boom) {
		t.Fatalf("leader error = %v, want injected failure", err)
	}
	select {
	case <-waiterDone:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never resolved after leader abandoned")
	}
	if waiterErr != nil {
		t.Fatalf("waiter error: %v", waiterErr)
	}
	if waiterVal != want {
		t.Fatalf("waiter fallback value %v != offline %v", waiterVal, want)
	}
}

// TestCacheFaultBypassFailOpen arms the serve.cache_lookup fault point
// with an always-fire error and checks requests still succeed with
// bit-identical answers — the cache fails open to the direct path.
func TestCacheFaultBypassFailOpen(t *testing.T) {
	inj := faultinject.New(11, map[faultinject.Point]faultinject.Plan{
		faultinject.ServeCacheLookup: {Every: 1, Err: errors.New("injected cache fault")},
	})
	restore := faultinject.Activate(inj)
	defer restore()

	s, d, _ := newCachedTestServer(t, 256)
	h := s.Handler()
	m, _ := s.Registry().Get("nns")
	want, err := m.Pred.Predict(d.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w := postPredict(t, h, map[string]any{"model": "nns", "row": rowJSON(d, 0)})
		if w.Code != 200 {
			t.Fatalf("bypassed predict %d: %d %s", i, w.Code, w.Body)
		}
		var resp PredictResponse
		mustDecode(t, w.Body.Bytes(), &resp)
		if *resp.Prediction != want {
			t.Fatalf("bypassed predict %d: %v != offline %v", i, *resp.Prediction, want)
		}
	}
	snap := s.MetricsRegistry().Snapshot()
	// Every request bypassed: the cache saw no lookups, and each bypass
	// counted as an injected serve fault.
	if lookups := snap.Counters[obs.MetricCacheLookups]; lookups != 0 {
		t.Fatalf("lookups = %d, want 0 (all requests bypassed)", lookups)
	}
	if faults := snap.Counters[obs.MetricServeFaults]; faults < 3 {
		t.Fatalf("faults_injected = %d, want ≥ 3", faults)
	}
	if st := inj.Stats()[faultinject.ServeCacheLookup.String()]; st.Fires < 3 {
		t.Fatalf("cache_lookup fires = %d, want ≥ 3", st.Fires)
	}
}

// TestCachedPredictHitZeroAlloc pins the all-hits request path at zero
// allocations, same discipline as the kernel and batcher pins: the
// cache exists to be cheaper than scoring, so a hit must not pay the
// allocator.
func TestCachedPredictHitZeroAlloc(t *testing.T) {
	s, d, _ := newCachedTestServer(t, 256)
	m, _ := s.Registry().Get("lre")
	gen := s.reg.Generation()
	rows := [][]dataset.Value{d.Row(0), d.Row(1)}
	out := make([]float64, len(rows))
	ctx := context.Background()
	// Warm both rows to resolved entries.
	if err := s.cache.predictInto(ctx, m, gen, rows, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := s.cache.predictInto(ctx, m, gen, rows, out); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cached hit path allocates %.1f/op, want 0", allocs)
	}
}

func mustDecode(t testing.TB, b []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("decoding %s: %v", b, err)
	}
}

// BenchmarkCachedPredict measures the duplicate-heavy serving path with
// the cache armed: every iteration is a resolved hit. Compare against
// BenchmarkUncachedPredict (same rows through the micro-batcher) in
// BENCH_8.json — the committed snapshot pins the ≥5× latency win that
// justifies the cache.
func BenchmarkCachedPredict(b *testing.B) {
	s, d, _ := newCachedTestServer(b, 256)
	m, _ := s.Registry().Get("nns")
	gen := s.reg.Generation()
	rows := [][]dataset.Value{d.Row(0)}
	out := make([]float64, 1)
	ctx := context.Background()
	if err := s.cache.predictInto(ctx, m, gen, rows, out); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.cache.predictInto(ctx, m, gen, rows, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUncachedPredict is the identical workload through the plain
// micro-batcher — the baseline the cache must beat.
func BenchmarkUncachedPredict(b *testing.B) {
	s, d, _ := newCachedTestServer(b, 256)
	m, _ := s.Registry().Get("nns")
	rows := [][]dataset.Value{d.Row(0)}
	ctx := context.Background()
	if _, err := s.bat.Predict(ctx, m, rows); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.bat.Predict(ctx, m, rows); err != nil {
			b.Fatal(err)
		}
	}
}
