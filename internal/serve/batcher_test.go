package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"perfpred/internal/core"
	"perfpred/internal/dataset"
)

// goldenPredictions scores every row sequentially through the scalar
// Predict path — the reference the batcher must match bit-for-bit.
func goldenPredictions(t *testing.T, p *core.Predictor, d *dataset.Dataset) []float64 {
	t.Helper()
	want := make([]float64, d.Len())
	for i := range want {
		y, err := p.Predict(d.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = y
	}
	return want
}

// TestBatcherGoldenEquivalence is the serving analogue of the kernel
// equivalence harness in neural/reference_test.go: N goroutines with a
// mix of per-request deadlines hammer the micro-batcher with single-row
// and batch requests against two models at once, and every prediction
// must be bit-identical to the sequential scalar path — coalescing,
// grouping and scheduling must never change an answer.
func TestBatcherGoldenEquivalence(t *testing.T) {
	d := synthDataset(t, 96, 4)
	models := map[string]*Model{
		"nns": {Name: "nns", Pred: trainModel(t, core.NNS, d)},
		"lre": {Name: "lre", Pred: trainModel(t, core.LRE, d)},
	}
	golden := map[string][]float64{
		"nns": goldenPredictions(t, models["nns"].Pred, d),
		"lre": goldenPredictions(t, models["lre"].Pred, d),
	}
	rows := make([][]dataset.Value, d.Len())
	for i := range rows {
		rows[i] = d.Row(i)
	}

	b := newBatcher(BatcherConfig{QueueDepth: 1024, MaxBatch: 16, MaxWait: 200 * time.Microsecond, Workers: 4},
		newMetrics(nil), scoreModel)
	defer b.Close()

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := "nns"
			if g%2 == 1 {
				name = "lre"
			}
			m, want := models[name], golden[name]
			for i := range rows {
				// Deadline mix: half the goroutines run with a generous
				// per-request deadline, half with none.
				ctx := context.Background()
				if g%4 < 2 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, 30*time.Second)
					defer cancel()
				}
				out, err := b.Predict(ctx, m, rows[i:i+1])
				if err != nil {
					errs <- err
					return
				}
				if out[0] != want[i] {
					t.Errorf("%s row %d: concurrent %v != sequential %v", name, i, out[0], want[i])
					return
				}
			}
			// One whole-space batch body per goroutine, interleaved with
			// everyone else's single-row traffic.
			out, err := b.Predict(context.Background(), m, rows)
			if err != nil {
				errs <- err
				return
			}
			for i := range out {
				if out[i] != want[i] {
					t.Errorf("%s batch row %d: %v != %v", name, i, out[i], want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestBatcherShedsUnderLoad pins the 429 path: a full admission queue
// sheds immediately with ErrOverloaded and counts the shed, and every
// admitted request is still answered.
func TestBatcherShedsUnderLoad(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	score := func(_ context.Context, _ *Model, rows [][]dataset.Value, out []float64) error {
		once.Do(func() { entered <- struct{}{} })
		<-release
		for i := range out {
			out[i] = 42
		}
		return nil
	}
	met := newMetrics(nil)
	b := newBatcher(BatcherConfig{QueueDepth: 2, MaxBatch: 1, MaxWait: 0, Workers: 1}, met, score)
	m := &Model{Name: "stub"}
	row := [][]dataset.Value{{dataset.Num(1)}}

	type res struct {
		out []float64
		err error
	}
	results := make(chan res, 3)
	submit := func() {
		go func() {
			out, err := b.Predict(context.Background(), m, row)
			results <- res{out, err}
		}()
	}

	// First request occupies the single worker (blocked inside score)…
	submit()
	<-entered
	// …the next two fill the admission queue…
	submit()
	submit()
	deadline := time.After(5 * time.Second)
	for len(b.queue) < 2 {
		select {
		case <-deadline:
			t.Fatal("queue never filled")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	// …and the queue being full, the next is shed synchronously.
	if _, err := b.Predict(context.Background(), m, row); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded Predict err = %v, want ErrOverloaded", err)
	}
	if got := met.shed.Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	// Releasing the worker answers all three admitted requests.
	close(release)
	for i := 0; i < 3; i++ {
		r := <-results
		if r.err != nil || r.out[0] != 42 {
			t.Fatalf("admitted request %d: out=%v err=%v", i, r.out, r.err)
		}
	}
	b.Close()
	if got := met.predictions.Value(); got != 3 {
		t.Fatalf("predictions counter = %d, want 3", got)
	}
}

// TestBatcherDrain pins graceful shutdown: Close answers every admitted
// request before returning, and later requests get ErrDraining.
func TestBatcherDrain(t *testing.T) {
	release := make(chan struct{})
	score := func(_ context.Context, _ *Model, rows [][]dataset.Value, out []float64) error {
		<-release
		for i := range out {
			out[i] = 7
		}
		return nil
	}
	met := newMetrics(nil)
	b := newBatcher(BatcherConfig{QueueDepth: 16, MaxBatch: 1, MaxWait: 0, Workers: 1}, met, score)
	m := &Model{Name: "stub"}
	row := [][]dataset.Value{{dataset.Num(1)}}

	const n = 5
	results := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			out, err := b.Predict(context.Background(), m, row)
			if err == nil && out[0] != 7 {
				err = errors.New("wrong prediction")
			}
			results <- err
		}()
	}
	// Wait until all five are admitted (one may already be with the
	// worker, the rest queued).
	deadline := time.After(5 * time.Second)
	for len(b.queue) < n-1 {
		select {
		case <-deadline:
			t.Fatal("requests never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	b.Close()
	// Close returns only after the workers delivered every admitted
	// request — the counter is final by now.
	if got := met.predictions.Value(); got != n {
		t.Fatalf("predictions counter after Close = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Fatalf("drained request %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never answered", i)
		}
	}
	if _, err := b.Predict(context.Background(), m, row); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-Close Predict err = %v, want ErrDraining", err)
	}
}

// TestBatcherExpiredDeadline pins per-request deadline propagation: a
// request whose context expires while queued is answered with the
// context error, not scored.
func TestBatcherExpiredDeadline(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	var scored int
	var mu sync.Mutex
	score := func(_ context.Context, _ *Model, rows [][]dataset.Value, out []float64) error {
		once.Do(func() { entered <- struct{}{} })
		<-release
		mu.Lock()
		scored += len(rows)
		mu.Unlock()
		for i := range out {
			out[i] = 1
		}
		return nil
	}
	met := newMetrics(nil)
	b := newBatcher(BatcherConfig{QueueDepth: 16, MaxBatch: 1, MaxWait: 0, Workers: 1}, met, score)
	m := &Model{Name: "stub"}
	row := [][]dataset.Value{{dataset.Num(1)}}

	// Occupy the worker, then queue a request with a tiny deadline.
	go b.Predict(context.Background(), m, row) //nolint:errcheck // released below
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := b.Predict(ctx, m, row)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired request err = %v after %v, want DeadlineExceeded", err, time.Since(start))
	}
	close(release)
	b.Close()
	mu.Lock()
	defer mu.Unlock()
	if scored != 1 {
		t.Fatalf("scored %d rows, want 1 (expired request must not be scored)", scored)
	}
	if met.errors.Value() != 1 {
		t.Fatalf("errors counter = %d, want 1", met.errors.Value())
	}
}
