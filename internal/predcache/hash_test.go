package predcache

import "testing"

// TestHashStringSpreads pins the routing-key helper: deterministic,
// sensitive to every character, and distinct across realistic inputs
// (model names, replica addresses).
func TestHashStringSpreads(t *testing.T) {
	if HashString("lre") != HashString("lre") {
		t.Fatal("HashString is not deterministic")
	}
	inputs := []string{
		"", "lre", "lrE", "nns", "treeb",
		"127.0.0.1:8091", "127.0.0.1:8092", "127.0.0.1:9081",
		"replica-0", "replica-1",
	}
	seen := map[uint64]string{}
	for _, s := range inputs {
		h := HashString(s)
		if prev, dup := seen[h]; dup {
			t.Fatalf("HashString collision: %q and %q both hash to %#x", prev, s, h)
		}
		seen[h] = s
	}
}

// TestCombineComponentSensitivity pins the composite-key property the
// gateway relies on: with every other component fixed, changing any one
// component changes the combined key (Combine is bijective in each
// argument), and composition order matters.
func TestCombineComponentSensitivity(t *testing.T) {
	model := HashString("lre")
	rowA := HashRow([]float64{1, 2, 3})
	rowB := HashRow([]float64{1, 2, 4})

	keyA := Combine(model, rowA)
	keyB := Combine(model, rowB)
	if keyA == keyB {
		t.Fatal("changing the row component did not change the combined key")
	}
	if Combine(HashString("nns"), rowA) == keyA {
		t.Fatal("changing the model component did not change the combined key")
	}
	if Combine(rowA, model) == keyA && rowA != model {
		t.Fatal("Combine ignores argument order")
	}
	// Bijectivity in the second argument: distinct h values cannot
	// collide under a fixed accumulator.
	seen := map[uint64]uint64{}
	for h := uint64(0); h < 512; h++ {
		k := Combine(model, h)
		if prev, dup := seen[k]; dup {
			t.Fatalf("Combine(acc, %d) == Combine(acc, %d)", h, prev)
		}
		seen[k] = h
	}
}
