package predcache

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzRowKey checks the canonical row hash's two load-bearing
// properties over arbitrary rows:
//
//  1. Consistency: float64-equal rows (including -0.0 vs +0.0 in any
//     cell) hash equal — otherwise equal design points would occupy
//     separate cache entries and coalescing would silently stop.
//  2. Cell sensitivity: flipping any single bit of any single cell —
//     except a flip that only toggles the sign of zero or lands on a
//     NaN payload — changes the hash. The bijection argument in HashRow
//     promises this deterministically; the fuzzer hammers the promise
//     with arbitrary widths, cells and bit positions.
//
// Rows are decoded from raw bytes (8 per cell, little endian) so the
// fuzzer explores the full float64 bit space, not just values a JSON
// request could spell.
func FuzzRowKey(f *testing.F) {
	seedRow := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	f.Add(seedRow(), uint64(0), uint64(0))
	f.Add(seedRow(0), uint64(0), uint64(63))              // sign flip of +0.0
	f.Add(seedRow(1, 2.5, -3), uint64(1), uint64(0))      // low mantissa bit
	f.Add(seedRow(32, 4, 1, 0, 1), uint64(3), uint64(62)) // exponent bit
	f.Add(seedRow(1e308, -1e-308), uint64(0), uint64(52)) // exponent boundary
	f.Add(seedRow(0.1, 0.2, 0.3, 0.4), uint64(2), uint64(31))

	f.Fuzz(func(t *testing.T, data []byte, cell, bit uint64) {
		n := len(data) / 8
		if n == 0 || n > 512 {
			return
		}
		row := make([]float64, n)
		for i := range row {
			row[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
			if math.IsNaN(row[i]) {
				// NaN cells break the equality premise (NaN != NaN, so such
				// rows can never hit anyway) — skip them for both properties.
				return
			}
		}

		h := HashRow(row)

		// Consistency: a fresh copy hashes identically.
		if HashRow(append([]float64(nil), row...)) != h {
			t.Fatalf("copy of row hashes differently")
		}
		// Consistency across signed zero: flipping the sign of every zero
		// cell must not move the hash, because the rows compare ==.
		zeroFlipped := append([]float64(nil), row...)
		flippedAny := false
		for i, v := range zeroFlipped {
			if v == 0 {
				zeroFlipped[i] = math.Copysign(0, -math.Copysign(1, v))
				flippedAny = true
			}
		}
		if flippedAny && HashRow(zeroFlipped) != h {
			t.Fatalf("flipping zero signs changed the hash")
		}

		// Cell sensitivity: perturb one bit of one cell.
		i := int(cell % uint64(n))
		b := uint(bit % 64)
		mut := append([]float64(nil), row...)
		mut[i] = math.Float64frombits(math.Float64bits(mut[i]) ^ (1 << b))
		switch {
		case math.IsNaN(mut[i]):
			// Perturbed into NaN: no equality claim either way.
		case mut[i] == row[i]:
			// The flip toggled only the sign of zero: rows still compare
			// equal, so hashes must still be equal.
			if HashRow(mut) != h {
				t.Fatalf("row equal after zero-sign flip but hash changed (cell %d bit %d)", i, b)
			}
		default:
			if HashRow(mut) == h {
				t.Fatalf("cell %d bit %d flip left hash unchanged (%v -> %v)", i, b, row[i], mut[i])
			}
		}
	})
}
