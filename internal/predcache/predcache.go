// Package predcache is a sharded, generation-aware prediction cache
// with singleflight request coalescing for the serving path: the paper's
// whole premise is that surrogate predictions are cheap enough to query
// the entire design space repeatedly, and real DSE drivers hammer the
// same design points over and over — so the dominant waste in a hot
// serving daemon is recomputing identical rows.
//
// The cache is keyed per (model, artifact generation, canonical row
// hash). The hash is computed over the *encoded* feature row — the flat
// []float64 produced by dataset.Encoder.EncodeRowInto — not over the
// request JSON, so `1`, `1.0` and any other wire spellings of the same
// design point coalesce onto one entry, and rows for different models
// or different artifact generations can never alias each other.
//
// Bit-safety is unconditional, not probabilistic: every entry stores a
// copy of the encoded row it was keyed by, and a lookup only counts as
// a hit when the stored row is float64-equal to the probe. A hash
// collision therefore degrades to a miss (and evicts the colliding
// entry), never to a wrong answer — the cache is provably invisible in
// everything except latency.
//
// Concurrency: lookups that miss install a pending [Flight]; concurrent
// lookups of the same row ride that flight (one batcher slot for any
// number of identical in-flight rows) and wake when the leader calls
// [Cache.Fill] or [Cache.Abandon]. Shard-local mutexes bound contention;
// the resolved-hit path takes one shard lock, does one map probe plus a
// row compare, and allocates nothing.
package predcache

import (
	"container/list"
	"context"
	"sync"

	"perfpred/internal/obs"
)

// Config sizes a Cache.
type Config struct {
	// MaxEntries bounds the resolved entries held across all shards.
	// Pending flights are not evictable (their waiters hold references),
	// so momentary occupancy can exceed MaxEntries by the number of
	// in-flight misses — which the serving admission queue bounds.
	MaxEntries int
	// Shards is the number of lock shards, rounded up to a power of two.
	// Default 16.
	Shards int
	// Metrics receives the cache's counters; nil records into a private
	// registry (counted but unobservable — tests and tools that only
	// need behaviour).
	Metrics *Metrics
}

// Metrics bundles the obs counters the cache records into. Names are
// the obs.MetricCache* constants so live /metrics and the final
// ServeReport read the same entries.
type Metrics struct {
	Lookups       *obs.Counter
	Hits          *obs.Counter
	Misses        *obs.Counter
	Coalesced     *obs.Counter
	Evictions     *obs.Counter
	Invalidations *obs.Counter
}

// NewMetrics resolves the cache counters in reg (nil creates a private
// registry).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Metrics{
		Lookups:       reg.Counter(obs.MetricCacheLookups),
		Hits:          reg.Counter(obs.MetricCacheHits),
		Misses:        reg.Counter(obs.MetricCacheMisses),
		Coalesced:     reg.Counter(obs.MetricCacheCoalesced),
		Evictions:     reg.Counter(obs.MetricCacheEvictions),
		Invalidations: reg.Counter(obs.MetricCacheInvalidations),
	}
}

// Key identifies one cached prediction: a registry model name, the
// registry catalog generation that model was resolved from, and the
// canonical hash of the encoded feature row. Generation is part of the
// key, so an entry filled under one catalog can never answer a lookup
// resolved under another — a reload is a hard cache boundary by
// construction, not by bookkeeping.
type Key struct {
	Model string
	Gen   int64
	Hash  uint64
}

// Outcome classifies a Lookup.
type Outcome int

const (
	// Hit: the value was resolved in cache; no flight involved.
	Hit Outcome = iota
	// Lead: the caller installed a pending flight and owns scoring it —
	// it must call Fill (success) or Abandon (failure) exactly once.
	Lead
	// Coalesce: another caller is already scoring this row; wait on the
	// returned flight.
	Coalesce
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Lead:
		return "lead"
	case Coalesce:
		return "coalesce"
	default:
		return "outcome(?)"
	}
}

// Flight is one pending or resolved cache entry. Leaders resolve it via
// Cache.Fill/Abandon; coalesced callers block in Wait. The flight stays
// usable after eviction or invalidation — waiters hold the pointer, so
// removal from the cache index never strands them.
type Flight struct {
	key Key
	row []float64
	sh  *shard

	// done is closed exactly once when the flight resolves; val and ok
	// are written before the close, so waiters read them race-free.
	done     chan struct{}
	val      float64
	ok       bool
	resolved bool
	inMap    bool
	elem     *list.Element
}

// Wait blocks until the flight resolves or ctx is done. ok=false means
// the leader abandoned the flight (its scoring failed) — the caller
// should score the row itself, without the cache.
func (f *Flight) Wait(ctx context.Context) (val float64, ok bool, err error) {
	select {
	case <-f.done:
		return f.val, f.ok, nil
	case <-ctx.Done():
		return 0, false, ctx.Err()
	}
}

// shard is one lock-striped slice of the index: a map for probes and an
// LRU list (front = most recent) for bounded memory.
type shard struct {
	mu  sync.Mutex
	m   map[Key]*Flight
	lru *list.List
	cap int
}

// Cache is a sharded, bounded, generation-aware prediction cache.
type Cache struct {
	shards []shard
	mask   uint64
	met    *Metrics
}

// New builds a cache. MaxEntries must be positive.
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		panic("predcache: MaxEntries must be positive")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics(nil)
	}
	perShard := (cfg.MaxEntries + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{shards: make([]shard, n), mask: uint64(n - 1), met: cfg.Metrics}
	for i := range c.shards {
		c.shards[i] = shard{m: make(map[Key]*Flight), lru: list.New(), cap: perShard}
	}
	return c
}

// Lookup probes the cache for key, verifying the stored encoded row is
// float64-equal to row before trusting a hit. It returns exactly one of:
//
//   - (val, nil, Hit): resolved value, bit-identical to what scoring
//     the row would produce;
//   - (0, f, Coalesce): another caller is scoring this row — Wait on f;
//   - (0, f, Lead): the caller now owns the row — score it and Fill or
//     Abandon f.
//
// The row slice is copied on Lead; callers may reuse their buffer
// immediately.
func (c *Cache) Lookup(key Key, row []float64) (float64, *Flight, Outcome) {
	c.met.Lookups.Inc()
	sh := &c.shards[key.Hash&c.mask]
	sh.mu.Lock()
	if f, exists := sh.m[key]; exists {
		if equalRows(f.row, row) {
			if f.resolved {
				sh.lru.MoveToFront(f.elem)
				val := f.val
				sh.mu.Unlock()
				c.met.Hits.Inc()
				return val, nil, Hit
			}
			sh.mu.Unlock()
			c.met.Misses.Inc()
			c.met.Coalesced.Inc()
			return 0, f, Coalesce
		}
		// Hash collision: two distinct rows share a key. Never serve the
		// stored value — drop it and let the newcomer lead. (Pending
		// colliders keep their flight; removal only unlinks the index.)
		sh.removeLocked(f)
		c.met.Evictions.Inc()
	}
	f := &Flight{
		key:   key,
		row:   append([]float64(nil), row...),
		sh:    sh,
		done:  make(chan struct{}),
		inMap: true,
	}
	sh.m[key] = f
	f.elem = sh.lru.PushFront(f)
	evicted := sh.evictOverflowLocked()
	sh.mu.Unlock()
	if evicted > 0 {
		c.met.Evictions.Add(int64(evicted))
	}
	c.met.Misses.Inc()
	return 0, f, Lead
}

// Fill resolves a led flight with its scored value. If the entry is
// still indexed it becomes a servable hit; if it was evicted or
// invalidated meanwhile, waiters still receive the value but future
// lookups miss.
func (c *Cache) Fill(f *Flight, val float64) {
	f.sh.mu.Lock()
	if !f.resolved {
		f.val, f.ok, f.resolved = val, true, true
		close(f.done)
	}
	f.sh.mu.Unlock()
}

// Abandon resolves a led flight as failed: waiters wake with ok=false
// and must score the row themselves, and the entry leaves the index so
// the next lookup leads a fresh flight.
func (c *Cache) Abandon(f *Flight) {
	f.sh.mu.Lock()
	if !f.resolved {
		f.ok, f.resolved = false, true
		close(f.done)
	}
	if f.inMap {
		f.sh.removeLocked(f)
	}
	f.sh.mu.Unlock()
}

// Invalidate drops every entry whose generation differs from keepGen
// and returns how many were dropped. The serving daemon calls it after
// each successful reload; since generation is part of the key, stale
// entries were already unreachable — invalidation reclaims their memory
// promptly instead of waiting for LRU pressure.
func (c *Cache) Invalidate(keepGen int64) int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for key, f := range sh.m {
			if key.Gen != keepGen {
				sh.removeLocked(f)
				n++
			}
		}
		sh.mu.Unlock()
	}
	if n > 0 {
		c.met.Invalidations.Add(int64(n))
	}
	return n
}

// Len reports the total indexed entries (resolved + pending).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// removeLocked unlinks a flight from the shard index. Callers hold
// sh.mu. The flight itself stays resolvable — Fill/Abandon/Wait go
// through the pointer, not the index.
func (sh *shard) removeLocked(f *Flight) {
	delete(sh.m, f.key)
	sh.lru.Remove(f.elem)
	f.inMap = false
}

// evictOverflowLocked evicts least-recently-used *resolved* entries
// until the shard is within capacity, returning how many were dropped.
// Pending flights are skipped (their leaders and waiters hold them), so
// occupancy can transiently exceed cap by the pending count.
func (sh *shard) evictOverflowLocked() int {
	n := 0
	for len(sh.m) > sh.cap {
		victim := (*Flight)(nil)
		for el := sh.lru.Back(); el != nil; el = el.Prev() {
			if f := el.Value.(*Flight); f.resolved {
				victim = f
				break
			}
		}
		if victim == nil {
			break
		}
		sh.removeLocked(victim)
		n++
	}
	return n
}

// equalRows is exact float64 equality. -0 and +0 compare equal (they
// encode the same design point); NaN never matches anything, which
// degrades a (structurally impossible for validated requests) NaN row
// to a permanent miss rather than a wrong answer.
func equalRows(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
