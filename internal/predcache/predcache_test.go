package predcache

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func testCache(t *testing.T, entries int) (*Cache, *Metrics) {
	t.Helper()
	met := NewMetrics(nil)
	return New(Config{MaxEntries: entries, Metrics: met}), met
}

func key(model string, gen int64, row []float64) Key {
	return Key{Model: model, Gen: gen, Hash: HashRow(row)}
}

func TestLookupMissFillHit(t *testing.T) {
	c, met := testCache(t, 64)
	row := []float64{1, 2.5, 0, 1}
	k := key("m", 1, row)

	_, f, outcome := c.Lookup(k, row)
	if outcome != Lead || f == nil {
		t.Fatalf("first lookup: %v, want Lead", outcome)
	}
	c.Fill(f, 42.5)

	val, fl, outcome := c.Lookup(k, row)
	if outcome != Hit || fl != nil || val != 42.5 {
		t.Fatalf("second lookup: val=%v fl=%v outcome=%v, want Hit 42.5", val, fl, outcome)
	}
	if met.Lookups.Value() != 2 || met.Hits.Value() != 1 || met.Misses.Value() != 1 {
		t.Fatalf("counters: lookups=%d hits=%d misses=%d", met.Lookups.Value(), met.Hits.Value(), met.Misses.Value())
	}
	// A resolved flight's Wait returns immediately with the value.
	if v, ok, err := f.Wait(context.Background()); err != nil || !ok || v != 42.5 {
		t.Fatalf("Wait on filled flight: %v %v %v", v, ok, err)
	}
}

// TestLookupCopiesRow pins the Lead contract that makes encode-buffer
// reuse safe: the caller may overwrite its row buffer immediately after
// Lookup returns.
func TestLookupCopiesRow(t *testing.T) {
	c, _ := testCache(t, 64)
	buf := []float64{1, 2}
	k := key("m", 1, buf)
	_, f, _ := c.Lookup(k, buf)
	buf[0], buf[1] = 99, 99 // clobber the caller's buffer
	c.Fill(f, 7)
	if val, _, outcome := c.Lookup(k, []float64{1, 2}); outcome != Hit || val != 7 {
		t.Fatalf("lookup after buffer clobber: %v %v, want Hit 7", val, outcome)
	}
}

func TestCoalesceWaitsForLeader(t *testing.T) {
	c, met := testCache(t, 64)
	row := []float64{3, 1, 4}
	k := key("m", 1, row)

	_, leader, outcome := c.Lookup(k, row)
	if outcome != Lead {
		t.Fatalf("leader outcome: %v", outcome)
	}
	_, waiter, outcome := c.Lookup(k, row)
	if outcome != Coalesce {
		t.Fatalf("waiter outcome: %v", outcome)
	}
	if waiter != leader {
		t.Fatal("coalesced lookup returned a different flight")
	}

	got := make(chan float64, 1)
	go func() {
		v, ok, err := waiter.Wait(context.Background())
		if err != nil || !ok {
			t.Errorf("Wait: ok=%v err=%v", ok, err)
		}
		got <- v
	}()
	// The waiter must be blocked until Fill.
	select {
	case v := <-got:
		t.Fatalf("waiter resolved before Fill: %v", v)
	case <-time.After(20 * time.Millisecond):
	}
	c.Fill(leader, 2.71828)
	select {
	case v := <-got:
		if v != 2.71828 {
			t.Fatalf("waiter value: %v", v)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke")
	}
	if met.Coalesced.Value() != 1 || met.Misses.Value() != 2 {
		t.Fatalf("coalesced=%d misses=%d, want 1, 2", met.Coalesced.Value(), met.Misses.Value())
	}
}

func TestAbandonWakesWaitersWithNotOK(t *testing.T) {
	c, _ := testCache(t, 64)
	row := []float64{5}
	k := key("m", 1, row)
	_, leader, _ := c.Lookup(k, row)
	_, waiter, outcome := c.Lookup(k, row)
	if outcome != Coalesce {
		t.Fatalf("outcome: %v", outcome)
	}
	c.Abandon(leader)
	if _, ok, err := waiter.Wait(context.Background()); ok || err != nil {
		t.Fatalf("Wait after Abandon: ok=%v err=%v, want ok=false", ok, err)
	}
	// The abandoned entry left the index: the next lookup leads afresh.
	if _, _, outcome := c.Lookup(k, row); outcome != Lead {
		t.Fatalf("lookup after Abandon: %v, want Lead", outcome)
	}
	if c.Len() != 1 {
		t.Fatalf("Len after re-lead: %d", c.Len())
	}
}

func TestWaitHonorsContext(t *testing.T) {
	c, _ := testCache(t, 64)
	row := []float64{6}
	_, f, _ := c.Lookup(key("m", 1, row), row)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := f.Wait(ctx); err != context.Canceled {
		t.Fatalf("Wait with cancelled ctx: %v", err)
	}
	c.Abandon(f) // leave no pending flight behind
}

func TestLRUEviction(t *testing.T) {
	// Single shard so eviction order is global and deterministic.
	met := NewMetrics(nil)
	c := New(Config{MaxEntries: 3, Shards: 1, Metrics: met})

	rows := [][]float64{{1}, {2}, {3}, {4}}
	for i, r := range rows[:3] {
		_, f, _ := c.Lookup(key("m", 1, r), r)
		c.Fill(f, float64(i))
	}
	// Touch row 0 so row 1 becomes the LRU victim.
	if _, _, outcome := c.Lookup(key("m", 1, rows[0]), rows[0]); outcome != Hit {
		t.Fatalf("warm lookup: %v", outcome)
	}
	// Inserting a 4th entry evicts exactly one resolved entry: row 1.
	_, f, _ := c.Lookup(key("m", 1, rows[3]), rows[3])
	c.Fill(f, 3)
	if c.Len() != 3 {
		t.Fatalf("Len after eviction: %d", c.Len())
	}
	if met.Evictions.Value() != 1 {
		t.Fatalf("evictions = %d, want 1", met.Evictions.Value())
	}
	// rows[0], rows[2] and rows[3] survived.
	for _, r := range [][]float64{rows[0], rows[2], rows[3]} {
		if _, _, outcome := c.Lookup(key("m", 1, r), r); outcome != Hit {
			t.Fatalf("survivor %v should Hit, got %v", r, outcome)
		}
	}
	// Probing the victim leads a fresh flight (which itself displaces the
	// next LRU entry — probes insert).
	_, f, outcome := c.Lookup(key("m", 1, rows[1]), rows[1])
	if outcome != Lead {
		t.Fatalf("evicted row should Lead, got %v", outcome)
	}
	c.Abandon(f)
}

func TestPendingEntriesAreNotEvicted(t *testing.T) {
	c := New(Config{MaxEntries: 1, Shards: 1, Metrics: NewMetrics(nil)})
	rowA, rowB := []float64{1}, []float64{2}
	_, fa, _ := c.Lookup(key("m", 1, rowA), rowA)
	// Over capacity with only a pending entry: insertion must not evict
	// the pending flight (its waiters hold it); occupancy overflows.
	_, fb, _ := c.Lookup(key("m", 1, rowB), rowB)
	if c.Len() != 2 {
		t.Fatalf("Len with two pending: %d", c.Len())
	}
	c.Fill(fa, 1)
	c.Fill(fb, 2)
	// Next insert sees two resolved entries over a cap of 1 and evicts
	// down to capacity.
	rowC := []float64{3}
	_, fc, _ := c.Lookup(key("m", 1, rowC), rowC)
	c.Fill(fc, 3)
	if c.Len() != 1 {
		t.Fatalf("Len after resolving over-capacity shard: %d", c.Len())
	}
}

func TestInvalidateDropsOldGenerations(t *testing.T) {
	c, met := testCache(t, 64)
	row := []float64{1, 2}
	for gen := int64(1); gen <= 3; gen++ {
		_, f, _ := c.Lookup(key("m", gen, row), row)
		c.Fill(f, float64(gen))
	}
	if n := c.Invalidate(3); n != 2 {
		t.Fatalf("Invalidate dropped %d, want 2", n)
	}
	if met.Invalidations.Value() != 2 {
		t.Fatalf("invalidations = %d", met.Invalidations.Value())
	}
	// Generation 3 survives; 1 and 2 are gone.
	if val, _, outcome := c.Lookup(key("m", 3, row), row); outcome != Hit || val != 3 {
		t.Fatalf("gen-3 lookup: %v %v", val, outcome)
	}
	for gen := int64(1); gen <= 2; gen++ {
		_, f, outcome := c.Lookup(key("m", gen, row), row)
		if outcome != Lead {
			t.Fatalf("gen-%d lookup after invalidate: %v, want Lead", gen, outcome)
		}
		c.Abandon(f)
	}
}

// TestFillAfterInvalidate pins the reload-during-fill race: an entry
// invalidated while its leader is still scoring must deliver the value
// to waiters (it was computed under the old generation they asked for)
// without re-entering the index.
func TestFillAfterInvalidate(t *testing.T) {
	c, _ := testCache(t, 64)
	row := []float64{7}
	k := key("m", 1, row)
	_, leader, _ := c.Lookup(k, row)
	_, waiter, outcome := c.Lookup(k, row)
	if outcome != Coalesce {
		t.Fatalf("outcome: %v", outcome)
	}
	if n := c.Invalidate(2); n != 1 {
		t.Fatalf("Invalidate dropped %d, want 1", n)
	}
	c.Fill(leader, 9.5)
	if v, ok, err := waiter.Wait(context.Background()); err != nil || !ok || v != 9.5 {
		t.Fatalf("waiter after invalidate+fill: %v %v %v", v, ok, err)
	}
	// The filled value did not re-enter the index.
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
	if _, f, outcome := c.Lookup(k, row); outcome != Lead {
		t.Fatalf("lookup after invalidated fill: %v, want Lead", outcome)
	} else {
		c.Abandon(f)
	}
}

// TestHashCollisionNeverServesWrongValue hand-builds two distinct rows
// under one Key (simulating a full 64-bit hash collision) and verifies
// the stored value is never served for the other row.
func TestHashCollisionNeverServesWrongValue(t *testing.T) {
	c, met := testCache(t, 64)
	rowA, rowB := []float64{1, 2}, []float64{3, 4}
	k := Key{Model: "m", Gen: 1, Hash: 12345} // same forged hash for both
	_, fa, _ := c.Lookup(k, rowA)
	c.Fill(fa, 111)
	// Probing rowB under the same key must not hit rowA's value: the
	// collider is evicted and rowB leads.
	val, fb, outcome := c.Lookup(k, rowB)
	if outcome != Lead || val != 0 {
		t.Fatalf("collision lookup: val=%v outcome=%v, want Lead", val, outcome)
	}
	if met.Evictions.Value() != 1 {
		t.Fatalf("evictions = %d, want 1 (displaced collider)", met.Evictions.Value())
	}
	c.Fill(fb, 222)
	if val, _, outcome := c.Lookup(k, rowB); outcome != Hit || val != 222 {
		t.Fatalf("rowB after fill: %v %v", val, outcome)
	}
}

func TestConcurrentSingleflight(t *testing.T) {
	c, met := testCache(t, 1024)
	row := []float64{1, 2, 3}
	k := key("m", 1, row)
	const goroutines = 32
	var scored sync.Map
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			val, f, outcome := c.Lookup(k, row)
			switch outcome {
			case Lead:
				scored.Store(g, true)
				c.Fill(f, 77)
			case Coalesce:
				v, ok, err := f.Wait(context.Background())
				if err != nil || !ok || v != 77 {
					t.Errorf("waiter %d: %v %v %v", g, v, ok, err)
				}
			case Hit:
				if val != 77 {
					t.Errorf("hit %d: %v", g, val)
				}
			}
		}(g)
	}
	wg.Wait()
	leaders := 0
	scored.Range(func(_, _ any) bool { leaders++; return true })
	if leaders != 1 {
		t.Fatalf("%d goroutines led for one row, want exactly 1", leaders)
	}
	if got := met.Hits.Value() + met.Misses.Value(); got != met.Lookups.Value() {
		t.Fatalf("hits+misses=%d != lookups=%d", got, met.Lookups.Value())
	}
}

// TestLookupHitZeroAlloc pins the resolved-hit path at zero allocations:
// the whole point of the cache is to beat the batcher's per-request
// allocations, so a hit must cost a shard lock and a compare, nothing
// else.
func TestLookupHitZeroAlloc(t *testing.T) {
	c, _ := testCache(t, 64)
	row := []float64{1, 2, 3, 4, 5, 6}
	k := key("m", 1, row)
	_, f, _ := c.Lookup(k, row)
	c.Fill(f, 3.5)
	allocs := testing.AllocsPerRun(1000, func() {
		k := Key{Model: "m", Gen: 1, Hash: HashRow(row)}
		if val, _, outcome := c.Lookup(k, row); outcome != Hit || val != 3.5 {
			panic(fmt.Sprintf("not a hit: %v %v", val, outcome))
		}
	})
	if allocs != 0 {
		t.Fatalf("hit path allocates %.1f/op, want 0", allocs)
	}
}

func TestHashRowProperties(t *testing.T) {
	base := []float64{0, 1.5, -3, 1e9, 0.25}
	h := HashRow(base)
	if h != HashRow(append([]float64(nil), base...)) {
		t.Fatal("equal rows hash differently")
	}
	// -0.0 and +0.0 compare equal, so they must hash equal.
	neg := append([]float64(nil), base...)
	neg[0] = math.Copysign(0, -1)
	if HashRow(neg) != h {
		t.Fatal("-0.0 and +0.0 hash differently")
	}
	// Any single-cell change alters the hash (bijection argument; the
	// fuzz target hammers this with arbitrary perturbations).
	for i := range base {
		mut := append([]float64(nil), base...)
		mut[i] += 1
		if HashRow(mut) == h {
			t.Fatalf("perturbing cell %d left the hash unchanged", i)
		}
	}
	// Length is folded in: a prefix never hashes like the full row.
	if HashRow(base[:4]) == h {
		t.Fatal("prefix hashes like full row")
	}
	// Order matters.
	swapped := append([]float64(nil), base...)
	swapped[1], swapped[2] = swapped[2], swapped[1]
	if HashRow(swapped) == h {
		t.Fatal("swapped cells left the hash unchanged")
	}
}

func TestNewRoundsShardsAndSplitsCapacity(t *testing.T) {
	c := New(Config{MaxEntries: 100, Shards: 5})
	if len(c.shards) != 8 {
		t.Fatalf("shards = %d, want 8 (next power of two above 5)", len(c.shards))
	}
	if c.shards[0].cap != 13 { // ceil(100/8)
		t.Fatalf("per-shard cap = %d, want 13", c.shards[0].cap)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New with MaxEntries 0 did not panic")
		}
	}()
	New(Config{})
}
