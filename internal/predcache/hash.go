package predcache

import "math"

// hashSeed is an arbitrary odd constant folded with the row length so
// rows of different widths start from different states.
const hashSeed = 0x9e3779b97f4a7c15

// hashPrime is the 64-bit FNV prime — odd, so multiplication by it is a
// bijection on uint64.
const hashPrime = 1099511628211

// HashRow computes the canonical hash of an encoded feature row (the
// flat []float64 written by dataset.Encoder.EncodeRowInto). Two
// properties matter for the cache:
//
//  1. Equal rows hash equal, where "equal" is float64 == — so -0.0 is
//     normalized to +0.0 before hashing (they compare equal, they must
//     hash equal).
//  2. Any single-cell perturbation changes the hash. Each cell passes
//     through mix64 (a bijection), is XORed into the running state, and
//     the state is multiplied by an odd prime (another bijection). With
//     every other cell fixed, the final hash is a bijective function of
//     any one cell's bits — distinct values in that cell cannot
//     collide. (Cross-cell collisions remain possible; the cache stores
//     the row and compares on hit, so they only cost a miss.)
//
// Both properties are enforced by FuzzRowKey.
func HashRow(row []float64) uint64 {
	h := mix64(hashSeed ^ uint64(len(row)))
	for _, v := range row {
		if v == 0 {
			v = 0 // collapse -0.0 onto +0.0
		}
		h = (h ^ mix64(math.Float64bits(v))) * hashPrime
	}
	return h
}

// mix64 is the splitmix64 finalizer: a bijective avalanche on uint64.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// HashString hashes a label (a model name, a replica address) into the
// same keyspace HashRow uses — FNV-1a over the bytes, then the splitmix64
// avalanche so short strings still spread across the full 64 bits. The
// gateway keys its rendezvous routing with it.
func HashString(s string) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * hashPrime
	}
	return mix64(h)
}

// Combine folds h into acc with the same mix-XOR-multiply step HashRow
// applies per cell, so with acc fixed the result is a bijective function
// of h (and vice versa). Callers use it to build composite keys — e.g.
// the gateway's routing key over (model, row₀, row₁, …) — where any
// single component changing must change the key.
func Combine(acc, h uint64) uint64 {
	return (acc ^ mix64(h)) * hashPrime
}
