package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceWriteReadRoundTrip(t *testing.T) {
	p, _ := ProfileByName("gcc")
	tr, err := Generate(p, 10_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name || back.Len() != tr.Len() {
		t.Fatalf("meta mismatch: %s/%d", back.Name, back.Len())
	}
	for i := range tr.Instrs {
		if tr.Instrs[i] != back.Instrs[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	// The profile must survive (the simulator needs MLPCap etc.).
	if back.Profile() == nil || back.Profile().MLPCap != p.MLPCap {
		t.Fatal("profile lost in round trip")
	}
	if err := back.Profile().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Fatal("empty: want error")
	}
	if _, err := ReadTrace(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic: want error")
	}
	// Truncated after a valid header start.
	p, _ := ProfileByName("applu")
	tr, err := Generate(p, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated: want error")
	}
}

func TestWriteToRequiresProfile(t *testing.T) {
	bare := &Trace{Name: "x", Instrs: []Instr{{}}}
	var buf bytes.Buffer
	if _, err := bare.WriteTo(&buf); err == nil {
		t.Fatal("profile-less trace: want error")
	}
}
