package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Binary trace format (the analog of SimpleScalar's EIO traces): a small
// header with the benchmark profile, then fixed-width instruction records.
//
//	magic "PPTR" | version u32 | profile-JSON len u32 | profile JSON |
//	instr count u64 | records
//
// Each record: class u8 | taken u8 | dep i32 | bb i32 | pc u64 | addr u64
// (26 bytes, little endian).

var traceMagic = [4]byte{'P', 'P', 'T', 'R'}

const traceVersion = 1

// WriteTo serializes the trace (profile included) so a generated workload
// can be stored and replayed by other tools.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	if t.profile == nil {
		return 0, errors.New("trace: cannot serialize a trace without a profile")
	}
	bw := bufio.NewWriter(w)
	var n int64
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.Write(traceMagic[:])); err != nil {
		return n, err
	}
	profJSON, err := json.Marshal(t.profile)
	if err != nil {
		return n, err
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], traceVersion)
	if err := count(bw.Write(u32[:])); err != nil {
		return n, err
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(len(profJSON)))
	if err := count(bw.Write(u32[:])); err != nil {
		return n, err
	}
	if err := count(bw.Write(profJSON)); err != nil {
		return n, err
	}
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(len(t.Instrs)))
	if err := count(bw.Write(u64[:])); err != nil {
		return n, err
	}
	var rec [26]byte
	for i := range t.Instrs {
		ins := &t.Instrs[i]
		rec[0] = byte(ins.Class)
		rec[1] = 0
		if ins.Taken {
			rec[1] = 1
		}
		binary.LittleEndian.PutUint32(rec[2:6], uint32(ins.Dep))
		binary.LittleEndian.PutUint32(rec[6:10], uint32(ins.BB))
		binary.LittleEndian.PutUint64(rec[10:18], ins.PC)
		binary.LittleEndian.PutUint64(rec[18:26], ins.Addr)
		if err := count(bw.Write(rec[:])); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if magic != traceMagic {
		return nil, errors.New("trace: bad magic; not a trace file")
	}
	var u32 [4]byte
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint32(u32[:]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, err
	}
	profLen := binary.LittleEndian.Uint32(u32[:])
	if profLen > 1<<20 {
		return nil, fmt.Errorf("trace: implausible profile size %d", profLen)
	}
	profJSON := make([]byte, profLen)
	if _, err := io.ReadFull(br, profJSON); err != nil {
		return nil, err
	}
	prof := &Profile{}
	if err := json.Unmarshal(profJSON, prof); err != nil {
		return nil, fmt.Errorf("trace: decoding profile: %w", err)
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	var u64 [8]byte
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(u64[:])
	if n == 0 || n > 1<<31 {
		return nil, fmt.Errorf("trace: implausible instruction count %d", n)
	}
	instrs := make([]Instr, n)
	var rec [26]byte
	for i := range instrs {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
		}
		cls := Class(rec[0])
		if int(cls) >= numClasses {
			return nil, fmt.Errorf("trace: record %d has invalid class %d", i, rec[0])
		}
		instrs[i] = Instr{
			Class: cls,
			Taken: rec[1] != 0,
			Dep:   int32(binary.LittleEndian.Uint32(rec[2:6])),
			BB:    int32(binary.LittleEndian.Uint32(rec[6:10])),
			PC:    binary.LittleEndian.Uint64(rec[10:18]),
			Addr:  binary.LittleEndian.Uint64(rec[18:26]),
		}
	}
	return &Trace{Name: prof.Name, Instrs: instrs, profile: prof}, nil
}
