// Package trace generates synthetic instruction traces that stand in for
// the SPEC CPU2000 binaries the paper runs on SimpleScalar. Each benchmark
// is described by a statistical Profile — instruction mix, working-set
// structure, spatial locality, branch-site behaviour, dependence distances
// and memory-level-parallelism limits — and Generate expands a profile into
// a deterministic instruction stream.
//
// The predictive models in this repository never see microarchitectural
// internals, only (configuration → cycles) pairs, so what matters is that
// the traces make the simulated design space respond the way the paper's
// §4.1 statistics say the real benchmarks do: applu is compute-bound and
// almost configuration-insensitive (range 1.62), mcf is a pointer-chasing
// memory hog (range 6.38), gcc stresses the instruction cache and branch
// predictors (range 5.27), and so on. The profile parameters are calibrated
// against those published range/variance values (see the cpu package's
// calibration tests).
package trace

import (
	"errors"
	"fmt"
	"math"

	"perfpred/internal/stat"
)

// Class is an instruction category matching the SimpleScalar functional
// unit classes of Table 1 (ialu, imult, memport, fpalu, fpmult).
type Class int

const (
	// IntALU is a simple integer operation.
	IntALU Class = iota
	// IntMult is an integer multiply/divide.
	IntMult
	// FPALU is a floating-point add/compare.
	FPALU
	// FPMult is a floating-point multiply/divide.
	FPMult
	// Load reads memory.
	Load
	// Store writes memory.
	Store
	// Branch is a conditional branch.
	Branch
	numClasses = int(Branch) + 1
)

// String returns the class mnemonic.
func (c Class) String() string {
	switch c {
	case IntALU:
		return "ialu"
	case IntMult:
		return "imult"
	case FPALU:
		return "fpalu"
	case FPMult:
		return "fpmult"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classes lists every instruction class.
func Classes() []Class {
	return []Class{IntALU, IntMult, FPALU, FPMult, Load, Store, Branch}
}

// Instr is one dynamic instruction.
type Instr struct {
	Class Class
	// PC is the instruction address (4-byte instructions).
	PC uint64
	// Addr is the effective address of a Load/Store.
	Addr uint64
	// Taken is the outcome of a Branch.
	Taken bool
	// Dep is the distance (in dynamic instructions) back to the most
	// recent producer this instruction waits on; 0 means no tracked
	// dependence.
	Dep int32
	// BB identifies the static basic block, for SimPoint-style
	// basic-block-vector analysis.
	BB int32
}

// Trace is a generated instruction stream.
type Trace struct {
	Name    string
	Instrs  []Instr
	profile *Profile
}

// Profile returns the workload profile the trace was generated from.
func (t *Trace) Profile() *Profile { return t.profile }

// Len returns the number of dynamic instructions.
func (t *Trace) Len() int { return len(t.Instrs) }

// Slice returns a sub-trace covering instructions [start, start+n),
// sharing the parent's instruction storage and profile. SimPoint
// simulation points are simulated as slices of the full trace.
func (t *Trace) Slice(start, n int) (*Trace, error) {
	if start < 0 || n <= 0 || start+n > len(t.Instrs) {
		return nil, fmt.Errorf("trace: slice [%d, %d) out of range [0, %d)", start, start+n, len(t.Instrs))
	}
	return &Trace{Name: t.Name, Instrs: t.Instrs[start : start+n], profile: t.profile}, nil
}

// Mix returns the empirical class fractions of the trace.
func (t *Trace) Mix() map[Class]float64 {
	counts := make([]int, numClasses)
	for i := range t.Instrs {
		counts[t.Instrs[i].Class]++
	}
	out := make(map[Class]float64, numClasses)
	for c, n := range counts {
		if n > 0 {
			out[Class(c)] = float64(n) / float64(len(t.Instrs))
		}
	}
	return out
}

// MeanDepDistance returns the average non-zero dependence distance, a
// proxy for the available instruction-level parallelism.
func (t *Trace) MeanDepDistance() float64 {
	s, n := 0.0, 0
	for i := range t.Instrs {
		if d := t.Instrs[i].Dep; d > 0 {
			s += float64(d)
			n++
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return s / float64(n)
}

// Loop describes one reuse loop of the data-reference model: a cyclic
// visit sequence over Blocks distinct 64-byte blocks placed SpacingB bytes
// apart in the loop's own region. Because the visit order is a fixed
// cycle, every block has an LRU reuse distance equal to the loop's
// footprint: a cache level keeps the loop resident if and only if its
// capacity covers that footprint. That makes each loop a precise
// sensitivity knob for one hierarchy level, independent of trace length.
type Loop struct {
	// Blocks is the number of distinct 64-byte blocks in the working set.
	Blocks int
	// SpacingB is the byte distance between consecutive blocks (≥ 64).
	// Larger spacing spreads the footprint across more lines of the outer
	// caches (whose lines are bigger) and more TLB pages.
	SpacingB int
	// SubAccesses is how many consecutive 8-byte references each block
	// visit performs (spatial locality; 8 sweeps the whole block, 1 is a
	// single pointer dereference).
	SubAccesses int
	// Frac is the fraction of data references that target this loop.
	Frac float64
	// Chase, when true, visits blocks in a fixed pseudo-random cyclic
	// permutation (pointer chasing — defeats spatial prefetching across
	// blocks); otherwise blocks are visited in address order (streaming).
	Chase bool
}

// FootprintBytes returns the loop's working-set size as seen by a cache
// with the given line size.
func (l Loop) FootprintBytes(lineBytes int) int {
	if l.SpacingB < lineBytes {
		// Blocks share lines when spacing < line size.
		lines := (l.Blocks*l.SpacingB + lineBytes - 1) / lineBytes
		return lines * lineBytes
	}
	return l.Blocks * lineBytes
}

// Profile statistically describes one benchmark.
type Profile struct {
	// Name is the SPEC benchmark name (e.g. "mcf").
	Name string
	// FP marks floating-point benchmarks.
	FP bool
	// Mix gives the target instruction-class fractions; they must sum to 1.
	Mix map[Class]float64

	// Loops lists the reuse loops of the data-reference stream. The
	// fraction left over (1 - Σ Frac) streams through distant memory that
	// is never reused.
	Loops []Loop
	// DistantStrideB is the stride of the streaming never-reused
	// component.
	DistantStrideB int

	// CodeKB is the static code footprint (instruction-cache pressure).
	CodeKB int
	// BranchSites is the number of static conditional branch sites.
	BranchSites int
	// BiasAlpha shapes the per-site taken-probability distribution
	// Beta(α, α): small α pushes biases toward 0/1 (predictable), α≈1 is
	// uniform (hard).
	BiasAlpha float64
	// BiasPersistence is the probability a bias-driven branch repeats its
	// previous outcome (run-correlated data-dependent branches). Zero
	// selects the default of 0.65; higher values make branches easier for
	// every predictor.
	BiasPersistence float64
	// PatternFrac is the fraction of branch sites that follow short
	// periodic patterns (history predictors capture these; bimodal can't).
	PatternFrac float64

	// DepMean is the mean dependence distance (instruction-level
	// parallelism; larger = more parallel).
	DepMean float64
	// MLPCap bounds the memory-level parallelism the workload can expose
	// (1 ≈ serial pointer chasing).
	MLPCap float64

	// Phases is the number of distinct execution phases the trace cycles
	// through (SimPoint-style phase behaviour).
	Phases int

	// SimLen is the recommended dynamic instruction count for design-space
	// studies: long enough that every reuse loop completes multiple passes
	// (the paper simulates 100 M-instruction SimPoint intervals; these
	// traces are statistically stationary so far shorter runs converge).
	SimLen int
}

// Validate checks profile consistency.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return errors.New("trace: profile needs a name")
	}
	sum := 0.0
	for c, f := range p.Mix {
		if f < 0 {
			return fmt.Errorf("trace: %s: negative mix fraction for %v", p.Name, c)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("trace: %s: mix fractions sum to %v, want 1", p.Name, sum)
	}
	if len(p.Loops) == 0 {
		return fmt.Errorf("trace: %s: need at least one reuse loop", p.Name)
	}
	fracSum := 0.0
	for i, l := range p.Loops {
		if l.Blocks <= 0 {
			return fmt.Errorf("trace: %s: loop %d block count must be positive", p.Name, i)
		}
		if l.SpacingB < 64 {
			return fmt.Errorf("trace: %s: loop %d spacing %dB below the 64B block size", p.Name, i, l.SpacingB)
		}
		if l.SubAccesses < 1 || l.SubAccesses*8 > 64 {
			return fmt.Errorf("trace: %s: loop %d sub-access count %d outside [1,8]", p.Name, i, l.SubAccesses)
		}
		if l.Frac <= 0 {
			return fmt.Errorf("trace: %s: loop %d fraction must be positive", p.Name, i)
		}
		if uint64(l.Blocks)*uint64(l.SpacingB) > loopSpacing {
			return fmt.Errorf("trace: %s: loop %d spans %d bytes, beyond its address region", p.Name, i, l.Blocks*l.SpacingB)
		}
		fracSum += l.Frac
	}
	if fracSum > 1+1e-9 {
		return fmt.Errorf("trace: %s: loop fractions sum to %v > 1", p.Name, fracSum)
	}
	if p.DistantStrideB <= 0 {
		return fmt.Errorf("trace: %s: distant stride must be positive", p.Name)
	}
	if p.CodeKB <= 0 || p.BranchSites <= 0 {
		return fmt.Errorf("trace: %s: code footprint and branch sites must be positive", p.Name)
	}
	if p.BiasAlpha <= 0 {
		return fmt.Errorf("trace: %s: BiasAlpha must be positive", p.Name)
	}
	if p.PatternFrac < 0 || p.PatternFrac > 1 {
		return fmt.Errorf("trace: %s: PatternFrac out of [0,1]", p.Name)
	}
	if p.BiasPersistence < 0 || p.BiasPersistence >= 1 {
		return fmt.Errorf("trace: %s: BiasPersistence out of [0,1)", p.Name)
	}
	if p.DepMean < 1 {
		return fmt.Errorf("trace: %s: DepMean must be >= 1", p.Name)
	}
	if p.MLPCap < 1 {
		return fmt.Errorf("trace: %s: MLPCap must be >= 1", p.Name)
	}
	if p.Phases < 1 {
		return fmt.Errorf("trace: %s: need at least one phase", p.Name)
	}
	if p.SimLen < 1 {
		return fmt.Errorf("trace: %s: SimLen must be positive", p.Name)
	}
	return nil
}

// Address-space bases for the synthetic layout: code low, each reuse loop
// in its own gigabyte-aligned region, the streaming distant component high.
const (
	codeBase    = 0x0040_0000
	loopBase    = 0x1000_0000
	loopSpacing = 0x1000_0000
	distantBase = 0x20_0000_0000
)

// Generate expands a profile into n dynamic instructions, deterministically
// for a given seed.
func Generate(p *Profile, n int, seed int64) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, errors.New("trace: instruction count must be positive")
	}
	r := stat.NewRand(seed)

	// Static branch sites: bias or pattern per site. Bias-driven outcomes
	// are run-correlated (a Markov chain that keeps the previous outcome
	// with probability biasPersistence) the way real data-dependent
	// branches cluster, which also gives history predictors repeating
	// contexts to learn from.
	biasPersistence := p.BiasPersistence
	if biasPersistence == 0 {
		biasPersistence = 0.65
	}
	type site struct {
		bias    float64
		last    bool
		period  int // 0 = bias-driven
		pattern uint32
	}
	sites := make([]site, p.BranchSites)
	for i := range sites {
		s := site{bias: betaSample(r, p.BiasAlpha)}
		s.last = r.Float64() < s.bias
		if r.Float64() < p.PatternFrac {
			s.period = 2 + r.Intn(5)
			s.pattern = uint32(r.Int31())
		}
		sites[i] = s
	}

	// Static basic blocks: each ends in one branch site. Blocks are laid
	// out in clusters of adjacent blocks (fall-through paths share cache
	// lines, as in real code) and the clusters are spread across the code
	// footprint (taken branches and phase changes jump between pages —
	// instruction-cache and ITLB pressure).
	codeBytes := uint64(p.CodeKB) * 1024
	nBlocks := p.BranchSites
	blockStart := make([]uint64, nBlocks)
	blockLen := make([]int, nBlocks)
	branchFrac := p.Mix[Branch]
	meanBlock := 8
	if branchFrac > 0 {
		meanBlock = int(math.Round(1 / branchFrac))
	}
	const clusterBlocks = 8
	slotBytes := uint64(2*meanBlock) * 4 // room for the largest block
	nClusters := (nBlocks + clusterBlocks - 1) / clusterBlocks
	clusterSpacing := codeBytes / uint64(nClusters)
	if min := slotBytes * clusterBlocks; clusterSpacing < min {
		clusterSpacing = min
	}
	// Each cluster gets a pseudo-random sub-spacing offset so regularly
	// spaced clusters do not all alias into the same cache sets.
	clusterBytes := slotBytes * clusterBlocks
	for b := range blockStart {
		cluster := uint64(b / clusterBlocks)
		within := uint64(b % clusterBlocks)
		jitterRoom := clusterSpacing - clusterBytes
		var jitter uint64
		if jitterRoom >= 16 {
			jstate := cluster ^ 0x9e3779b97f4a7c15
			jstate *= 0xbf58476d1ce4e5b9
			jitter = (jstate % (jitterRoom / 16)) * 16
		}
		blockStart[b] = codeBase + cluster*clusterSpacing + jitter + within*slotBytes
		blockLen[b] = 2 + r.Intn(2*meanBlock-2)
	}

	// Per-loop visit state: block order (identity or a fixed random cycle
	// for pointer-chase loops), position in the cycle, and sub-access
	// progress within the current block.
	type loopState struct {
		order []int32 // visit order over block indices
		pos   int     // index into order
		sub   int     // sub-accesses already done at the current block
	}
	loops := make([]loopState, len(p.Loops))
	for i, l := range p.Loops {
		order := make([]int32, l.Blocks)
		for b := range order {
			order[b] = int32(b)
		}
		if l.Chase {
			r.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		}
		loops[i] = loopState{order: order}
	}
	loopCDF := make([]float64, len(p.Loops))
	{
		acc := 0.0
		for i, l := range p.Loops {
			acc += l.Frac
			loopCDF[i] = acc
		}
	}
	var distantCur uint64

	// Class sampling CDF (branches are emitted by block structure, so the
	// CDF covers the non-branch classes re-normalized).
	nonBranch := []Class{IntALU, IntMult, FPALU, FPMult, Load, Store}
	cdf := make([]float64, len(nonBranch))
	total := 0.0
	for i, c := range nonBranch {
		total += p.Mix[c]
		cdf[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("trace: %s: mix has no non-branch instructions", p.Name)
	}

	instrs := make([]Instr, 0, n)
	phaseLen := n / p.Phases
	if phaseLen < 1 {
		phaseLen = 1
	}
	block := 0
	pcInBlock := 0
	branchCount := make([]uint64, p.BranchSites)
	for len(instrs) < n {
		phase := (len(instrs) / phaseLen) % p.Phases
		// Each phase concentrates on a contiguous slice of blocks/sites and
		// shifts its hot region, producing clusterable BBV structure.
		phaseBlockLo := (nBlocks * phase) / p.Phases
		phaseBlockHi := (nBlocks * (phase + 1)) / p.Phases
		if block < phaseBlockLo || block >= phaseBlockHi {
			block = phaseBlockLo + r.Intn(maxInt(1, phaseBlockHi-phaseBlockLo))
			pcInBlock = 0
		}
		pc := blockStart[block] + uint64(pcInBlock)*4
		var ins Instr
		if pcInBlock == blockLen[block]-1 {
			// Block-terminating branch.
			s := &sites[block]
			var taken bool
			if s.period > 0 {
				k := branchCount[block] % uint64(s.period)
				taken = (s.pattern>>k)&1 == 1
			} else if r.Float64() < biasPersistence {
				taken = s.last
			} else {
				taken = r.Float64() < s.bias
			}
			s.last = taken
			branchCount[block]++
			ins = Instr{Class: Branch, PC: pc, Taken: taken, BB: int32(block)}
			// Next block: taken branches jump within the phase's blocks,
			// fall-through goes to the "next" block of the phase.
			if taken {
				block = phaseBlockLo + r.Intn(maxInt(1, phaseBlockHi-phaseBlockLo))
			} else {
				block++
				if block >= phaseBlockHi {
					block = phaseBlockLo
				}
			}
			pcInBlock = 0
		} else {
			u := r.Float64() * total
			cls := nonBranch[len(nonBranch)-1]
			for i, c := range cdf {
				if u <= c {
					cls = nonBranch[i]
					break
				}
			}
			ins = Instr{Class: cls, PC: pc, BB: int32(block)}
			if cls == Load || cls == Store {
				u := r.Float64()
				li := -1
				for i, c := range loopCDF {
					if u <= c {
						li = i
						break
					}
				}
				if li >= 0 {
					l := p.Loops[li]
					st := &loops[li]
					block := uint64(st.order[st.pos])
					ins.Addr = loopBase + uint64(li)*loopSpacing +
						block*uint64(l.SpacingB) + uint64(st.sub)*8
					st.sub++
					if st.sub >= l.SubAccesses {
						st.sub = 0
						st.pos++
						if st.pos >= len(st.order) {
							st.pos = 0
						}
					}
				} else {
					distantCur += uint64(p.DistantStrideB)
					ins.Addr = distantBase + distantCur
				}
			}
			// Geometric dependence distance with mean DepMean.
			if p.DepMean < math.Inf(1) {
				d := 1 + int32(geomSample(r, p.DepMean-0.0))
				if int(d) > len(instrs) {
					d = int32(len(instrs))
				}
				ins.Dep = d
			}
			pcInBlock++
		}
		instrs = append(instrs, ins)
	}
	return &Trace{Name: p.Name, Instrs: instrs, profile: p}, nil
}

// betaSample draws from Beta(α, α) via two gamma draws (Jöhnk for small α
// is overkill; the ratio-of-gammas construction is fine here).
func betaSample(r interface{ Float64() float64 }, alpha float64) float64 {
	a := gammaSample(r, alpha)
	b := gammaSample(r, alpha)
	if a+b == 0 {
		return 0.5
	}
	return a / (a + b)
}

// gammaSample draws from Gamma(shape, 1) using the Marsaglia–Tsang method
// with the standard boost for shape < 1.
func gammaSample(r interface{ Float64() float64 }, shape float64) float64 {
	if shape < 1 {
		u := r.Float64()
		if u == 0 {
			u = 1e-12
		}
		return gammaSample(r, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		// Normal draw via Box–Muller from two uniforms (keeps the
		// dependency surface to Float64 only).
		u1, u2 := r.Float64(), r.Float64()
		if u1 == 0 {
			u1 = 1e-12
		}
		x := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u == 0 {
			u = 1e-12
		}
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}

// geomSample draws a geometric-ish count with the given mean (>= 0).
func geomSample(r interface{ Float64() float64 }, mean float64) int {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	if u == 0 {
		u = 1e-12
	}
	p := 1 / (mean + 1)
	return int(math.Log(u) / math.Log(1-p))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
