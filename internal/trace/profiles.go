package trace

import "fmt"

// The twelve SPEC CPU2000 applications the paper selects following
// Phansalkar et al. (§4.1). The five whose figures the paper presents
// (applu, equake, gcc, mesa, mcf) carry carefully calibrated parameters;
// the rest are plausible companions built from the same machinery.
//
// Calibration targets from §4.1 (range = slowest/fastest cycles across the
// 4608-point space; variance of mean-normalized cycles):
//
//	applu  1.62 / 0.16    equake 1.73 / 0.19   gcc 5.27 / 0.33
//	mesa   2.22 / 0.19    mcf    6.38 / 0.71
//
// Loop placement against the Table 1 hierarchy (64 B blocks):
//
//	≤ 12 KB sweeps          fit every L1D option (16/32/64 KB)
//	~24–36 KB sweeps        fit 32/64 KB L1Ds but thrash 16 KB
//	~48–56 KB sweeps        fit only the 64 KB L1D
//	~2.5 k-block chases     (128 B spacing → 320 KB in L2 lines)
//	                        fit the 1 MB L2 but thrash 256 KB
//	~9 k-block chases       (128 B spacing → 1.1 MB in L2 lines, 2.25 MB
//	                        in L3 lines) fit only the 8 MB L3, and their
//	                        ~280 pages thrash the small DTLB
//	distant streaming       misses everywhere
//
// Per-loop traffic is budgeted so that (a) every reuse loop completes at
// least two passes within SimLen instructions and (b) the worst-case
// stall cycles it can add stay inside the benchmark's published range.
var profiles = []*Profile{
	{
		// applu: dense FP solver. Streaming loops over small working sets,
		// highly predictable loop branches, good ILP — the design space
		// barely matters (paper range 1.62).
		Name: "applu", FP: true,
		Mix: map[Class]float64{
			IntALU: 0.19, IntMult: 0.01, FPALU: 0.26, FPMult: 0.17,
			Load: 0.26, Store: 0.07, Branch: 0.04,
		},
		Loops: []Loop{
			{Blocks: 64, SpacingB: 64, SubAccesses: 8, Frac: 0.60},   // 4 KB stream
			{Blocks: 96, SpacingB: 64, SubAccesses: 8, Frac: 0.25},   // 6 KB stream
			{Blocks: 160, SpacingB: 64, SubAccesses: 8, Frac: 0.148}, // 10 KB stream
		},
		DistantStrideB: 64,
		CodeKB:         64, BranchSites: 48, BiasAlpha: 0.08, PatternFrac: 0.10,
		BiasPersistence: 0.85, DepMean: 3.8, MLPCap: 4.0, Phases: 3, SimLen: 600_000,
	},
	{
		// equake: FP earthquake simulation with sparse-matrix irregularity;
		// bigger inner working sets than applu (range 1.73).
		Name: "equake", FP: true,
		Mix: map[Class]float64{
			IntALU: 0.23, IntMult: 0.01, FPALU: 0.23, FPMult: 0.12,
			Load: 0.30, Store: 0.06, Branch: 0.05,
		},
		Loops: []Loop{
			{Blocks: 64, SpacingB: 64, SubAccesses: 8, Frac: 0.50},   // 4 KB stream
			{Blocks: 128, SpacingB: 64, SubAccesses: 8, Frac: 0.28},  // 8 KB stream
			{Blocks: 192, SpacingB: 64, SubAccesses: 8, Frac: 0.216}, // 12 KB stream
		},
		DistantStrideB: 64,
		CodeKB:         96, BranchSites: 64, BiasAlpha: 0.12, PatternFrac: 0.10,
		BiasPersistence: 0.85, DepMean: 3.6, MLPCap: 3.0, Phases: 3, SimLen: 600_000,
	},
	{
		// gcc: the compiler. Huge code footprint (instruction-cache
		// pressure), many hard data-dependent branches, pointer-heavy
		// moderate working set (range 5.27).
		Name: "gcc", FP: false,
		Mix: map[Class]float64{
			IntALU: 0.42, IntMult: 0.01, FPALU: 0, FPMult: 0,
			Load: 0.28, Store: 0.12, Branch: 0.17,
		},
		Loops: []Loop{
			{Blocks: 192, SpacingB: 64, SubAccesses: 8, Frac: 0.64},                 // 12 KB stream
			{Blocks: 448, SpacingB: 64, SubAccesses: 4, Frac: 0.295},                // 28 KB
			{Blocks: 2500, SpacingB: 128, SubAccesses: 1, Frac: 0.055, Chase: true}, // L2-band
		},
		DistantStrideB: 64,
		CodeKB:         1024, BranchSites: 2800, BiasAlpha: 1.0, PatternFrac: 0.05,
		BiasPersistence: 0.5, DepMean: 3.2, MLPCap: 2.0, Phases: 4, SimLen: 500_000,
	},
	{
		// mesa: software 3-D rendering; FP with moderate locality, a
		// mid-size code footprint and moderately hard branches (range 2.22).
		Name: "mesa", FP: true,
		Mix: map[Class]float64{
			IntALU: 0.27, IntMult: 0.02, FPALU: 0.16, FPMult: 0.10,
			Load: 0.27, Store: 0.10, Branch: 0.08,
		},
		Loops: []Loop{
			{Blocks: 128, SpacingB: 64, SubAccesses: 8, Frac: 0.52},  // 8 KB stream
			{Blocks: 192, SpacingB: 64, SubAccesses: 8, Frac: 0.26},  // 12 KB stream
			{Blocks: 256, SpacingB: 64, SubAccesses: 8, Frac: 0.214}, // 16 KB stream
		},
		DistantStrideB: 64,
		CodeKB:         384, BranchSites: 480, BiasAlpha: 0.18, PatternFrac: 0.10,
		BiasPersistence: 0.8, DepMean: 4.0, MLPCap: 3.0, Phases: 3, SimLen: 600_000,
	},
	{
		// mcf: single-depot vehicle scheduling; the classic pointer-chasing
		// memory-bound benchmark — working sets at every hierarchy level,
		// almost no MLP, very cache-sensitive (range 6.38, variance 0.71).
		Name: "mcf", FP: false,
		Mix: map[Class]float64{
			IntALU: 0.35, IntMult: 0.005, FPALU: 0, FPMult: 0,
			Load: 0.38, Store: 0.075, Branch: 0.19,
		},
		Loops: []Loop{
			{Blocks: 192, SpacingB: 64, SubAccesses: 8, Frac: 0.50},                 // 12 KB
			{Blocks: 384, SpacingB: 64, SubAccesses: 4, Frac: 0.403},                // 24 KB
			{Blocks: 2500, SpacingB: 128, SubAccesses: 1, Frac: 0.035, Chase: true}, // L2-band
			{Blocks: 9000, SpacingB: 128, SubAccesses: 1, Frac: 0.052, Chase: true}, // L3-band + DTLB
		},
		DistantStrideB: 64,
		CodeKB:         48, BranchSites: 96, BiasAlpha: 0.45, PatternFrac: 0.05,
		BiasPersistence: 0.6, DepMean: 2.2, MLPCap: 1.3, Phases: 2, SimLen: 1_500_000,
	},
	{
		// gzip: compression; small hot loops, biased branches.
		Name: "gzip", FP: false,
		Mix: map[Class]float64{
			IntALU: 0.46, IntMult: 0.01, FPALU: 0, FPMult: 0,
			Load: 0.26, Store: 0.11, Branch: 0.16,
		},
		Loops: []Loop{
			{Blocks: 256, SpacingB: 64, SubAccesses: 8, Frac: 0.66}, // 16 KB window
			{Blocks: 512, SpacingB: 64, SubAccesses: 8, Frac: 0.33}, // 32 KB window
		},
		DistantStrideB: 64,
		CodeKB:         64, BranchSites: 80, BiasAlpha: 0.40, PatternFrac: 0.15,
		DepMean: 3.5, MLPCap: 2.5, Phases: 2, SimLen: 400_000,
	},
	{
		// vpr: FPGA place & route; irregular graph walks.
		Name: "vpr", FP: false,
		Mix: map[Class]float64{
			IntALU: 0.38, IntMult: 0.01, FPALU: 0.06, FPMult: 0.03,
			Load: 0.30, Store: 0.08, Branch: 0.14,
		},
		Loops: []Loop{
			{Blocks: 192, SpacingB: 64, SubAccesses: 4, Frac: 0.56},
			{Blocks: 448, SpacingB: 64, SubAccesses: 2, Frac: 0.40},
			{Blocks: 2500, SpacingB: 128, SubAccesses: 1, Frac: 0.03, Chase: true},
		},
		DistantStrideB: 64,
		CodeKB:         256, BranchSites: 512, BiasAlpha: 0.60, PatternFrac: 0.12,
		DepMean: 3.0, MLPCap: 2.0, Phases: 3, SimLen: 500_000,
	},
	{
		// crafty: chess; branchy integer code, big code footprint.
		Name: "crafty", FP: false,
		Mix: map[Class]float64{
			IntALU: 0.48, IntMult: 0.01, FPALU: 0, FPMult: 0,
			Load: 0.26, Store: 0.08, Branch: 0.17,
		},
		Loops: []Loop{
			{Blocks: 256, SpacingB: 64, SubAccesses: 8, Frac: 0.64},
			{Blocks: 512, SpacingB: 64, SubAccesses: 4, Frac: 0.35},
		},
		DistantStrideB: 64,
		CodeKB:         512, BranchSites: 1200, BiasAlpha: 0.70, PatternFrac: 0.10,
		DepMean: 3.4, MLPCap: 2.2, Phases: 3, SimLen: 500_000,
	},
	{
		// art: neural-network image recognition; streaming FP over
		// mid-size matrices with an L2-band tail.
		Name: "art", FP: true,
		Mix: map[Class]float64{
			IntALU: 0.20, IntMult: 0.01, FPALU: 0.24, FPMult: 0.14,
			Load: 0.30, Store: 0.05, Branch: 0.06,
		},
		Loops: []Loop{
			{Blocks: 160, SpacingB: 64, SubAccesses: 8, Frac: 0.58},
			{Blocks: 512, SpacingB: 64, SubAccesses: 8, Frac: 0.38},
			{Blocks: 2500, SpacingB: 128, SubAccesses: 1, Frac: 0.03, Chase: true},
		},
		DistantStrideB: 32,
		CodeKB:         32, BranchSites: 40, BiasAlpha: 0.15, PatternFrac: 0.30,
		DepMean: 5.5, MLPCap: 3.5, Phases: 2, SimLen: 500_000,
	},
	{
		// swim: shallow-water FP stencil; very strided, streams hard.
		Name: "swim", FP: true,
		Mix: map[Class]float64{
			IntALU: 0.15, IntMult: 0.005, FPALU: 0.27, FPMult: 0.18,
			Load: 0.28, Store: 0.075, Branch: 0.04,
		},
		Loops: []Loop{
			{Blocks: 192, SpacingB: 64, SubAccesses: 8, Frac: 0.60},
			{Blocks: 512, SpacingB: 64, SubAccesses: 8, Frac: 0.39},
		},
		DistantStrideB: 32, // dense streaming through the grids
		CodeKB:         32, BranchSites: 32, BiasAlpha: 0.10, PatternFrac: 0.35,
		DepMean: 6.0, MLPCap: 4.0, Phases: 2, SimLen: 400_000,
	},
	{
		// lucas: FP number theory; compute-dominated with FFT-ish reuse.
		Name: "lucas", FP: true,
		Mix: map[Class]float64{
			IntALU: 0.18, IntMult: 0.02, FPALU: 0.27, FPMult: 0.20,
			Load: 0.24, Store: 0.05, Branch: 0.04,
		},
		Loops: []Loop{
			{Blocks: 192, SpacingB: 64, SubAccesses: 8, Frac: 0.62},
			{Blocks: 512, SpacingB: 64, SubAccesses: 8, Frac: 0.37},
		},
		DistantStrideB: 64,
		CodeKB:         48, BranchSites: 40, BiasAlpha: 0.12, PatternFrac: 0.30,
		DepMean: 5.8, MLPCap: 3.5, Phases: 2, SimLen: 300_000,
	},
	{
		// twolf: standard-cell place & route; irregular integer.
		Name: "twolf", FP: false,
		Mix: map[Class]float64{
			IntALU: 0.40, IntMult: 0.01, FPALU: 0.04, FPMult: 0.02,
			Load: 0.30, Store: 0.08, Branch: 0.15,
		},
		Loops: []Loop{
			{Blocks: 192, SpacingB: 64, SubAccesses: 4, Frac: 0.56},
			{Blocks: 448, SpacingB: 64, SubAccesses: 2, Frac: 0.40},
			{Blocks: 2500, SpacingB: 128, SubAccesses: 1, Frac: 0.03, Chase: true},
		},
		DistantStrideB: 64,
		CodeKB:         192, BranchSites: 448, BiasAlpha: 0.55, PatternFrac: 0.12,
		DepMean: 3.0, MLPCap: 2.0, Phases: 3, SimLen: 500_000,
	},
}

// Profiles returns all twelve benchmark profiles.
func Profiles() []*Profile {
	return append([]*Profile(nil), profiles...)
}

// FiguredProfiles returns the five benchmarks whose figures the paper
// presents (Figures 2–6): applu, equake, gcc, mesa, mcf.
func FiguredProfiles() []*Profile {
	names := []string{"applu", "equake", "gcc", "mesa", "mcf"}
	out := make([]*Profile, 0, len(names))
	for _, n := range names {
		p, err := ProfileByName(n)
		if err != nil {
			panic(err) // unreachable: the table above defines all five
		}
		out = append(out, p)
	}
	return out
}

// ProfileByName looks a profile up by benchmark name.
func ProfileByName(name string) (*Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("trace: unknown benchmark %q", name)
}
