package trace

import "perfpred/internal/stat"

// newTestRand returns a deterministic PRNG for sampler tests.
func newTestRand(seed int64) interface {
	Float64() float64
	Int63() int64
} {
	return stat.NewRand(seed)
}
