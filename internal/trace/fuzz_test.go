package trace

import (
	"bytes"
	"testing"
)

// FuzzReadTrace checks the binary trace decoder never panics and either
// returns a valid trace or an error, on arbitrary input.
func FuzzReadTrace(f *testing.F) {
	// Seed with a real trace and a few corruptions of it.
	p, err := ProfileByName("gzip")
	if err != nil {
		f.Fatal(err)
	}
	tr, err := Generate(p, 500, 1)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("PPTR"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	corrupt[10] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful decode must be internally consistent.
		if tr.Len() == 0 || tr.Profile() == nil {
			t.Fatal("decoder returned an invalid trace without error")
		}
		if err := tr.Profile().Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid profile: %v", err)
		}
	})
}
