package trace

import (
	"math"
	"testing"
)

func TestAllProfilesValidate(t *testing.T) {
	if len(Profiles()) != 12 {
		t.Fatalf("want 12 profiles, got %d", len(Profiles()))
	}
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestFiguredProfiles(t *testing.T) {
	fp := FiguredProfiles()
	want := []string{"applu", "equake", "gcc", "mesa", "mcf"}
	if len(fp) != len(want) {
		t.Fatalf("got %d figured profiles", len(fp))
	}
	for i, p := range fp {
		if p.Name != want[i] {
			t.Errorf("figured[%d] = %s, want %s", i, p.Name, want[i])
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("mcf")
	if err != nil || p.Name != "mcf" {
		t.Fatalf("%v, %v", p, err)
	}
	if _, err := ProfileByName("doom3"); err == nil {
		t.Fatal("unknown benchmark: want error")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	base := func() *Profile {
		p := *profiles[0]
		return &p
	}
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.Mix = map[Class]float64{IntALU: 0.5} },
		func(p *Profile) { p.Loops = nil },
		func(p *Profile) { p.Loops = []Loop{{Blocks: 0, SpacingB: 64, SubAccesses: 1, Frac: 0.5}} },
		func(p *Profile) { p.Loops = []Loop{{Blocks: 10, SpacingB: 32, SubAccesses: 1, Frac: 0.5}} },
		func(p *Profile) { p.Loops = []Loop{{Blocks: 10, SpacingB: 64, SubAccesses: 9, Frac: 0.5}} },
		func(p *Profile) { p.Loops = []Loop{{Blocks: 10, SpacingB: 64, SubAccesses: 1, Frac: 0}} },
		func(p *Profile) { p.Loops = []Loop{{Blocks: 10, SpacingB: 64, SubAccesses: 1, Frac: 1.5}} },
		func(p *Profile) {
			p.Loops = []Loop{{Blocks: 1 << 24, SpacingB: 1024, SubAccesses: 1, Frac: 0.5}}
		},
		func(p *Profile) { p.DistantStrideB = 0 },
		func(p *Profile) { p.CodeKB = 0 },
		func(p *Profile) { p.BiasAlpha = 0 },
		func(p *Profile) { p.PatternFrac = -0.1 },
		func(p *Profile) { p.DepMean = 0.5 },
		func(p *Profile) { p.MLPCap = 0.9 },
		func(p *Profile) { p.Phases = 0 },
	}
	for i, mutate := range cases {
		p := base()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestGenerateBasics(t *testing.T) {
	p, _ := ProfileByName("gcc")
	tr, err := Generate(p, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 20000 {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.Name != "gcc" || tr.Profile() != p {
		t.Fatal("metadata wrong")
	}
}

func TestGenerateErrors(t *testing.T) {
	p, _ := ProfileByName("gcc")
	if _, err := Generate(p, 0, 1); err == nil {
		t.Fatal("n=0: want error")
	}
	bad := *p
	bad.Phases = 0
	if _, err := Generate(&bad, 100, 1); err == nil {
		t.Fatal("invalid profile: want error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("mcf")
	a, err := Generate(p, 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Instrs {
		if a.Instrs[i] != b.Instrs[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	c, err := Generate(p, 5000, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Instrs {
		if a.Instrs[i] == c.Instrs[i] {
			same++
		}
	}
	if same == len(a.Instrs) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateMixMatchesProfile(t *testing.T) {
	for _, name := range []string{"applu", "gcc", "mcf"} {
		p, _ := ProfileByName(name)
		tr, err := Generate(p, 60000, 7)
		if err != nil {
			t.Fatal(err)
		}
		mix := tr.Mix()
		for _, c := range Classes() {
			want := p.Mix[c]
			got := mix[c]
			if math.Abs(got-want) > 0.05 {
				t.Errorf("%s: class %v fraction %.3f, profile says %.3f", name, c, got, want)
			}
		}
	}
}

func TestGenerateInstructionFields(t *testing.T) {
	p, _ := ProfileByName("equake")
	tr, err := Generate(p, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	codeLo := uint64(codeBase)
	codeHi := codeLo + uint64(p.CodeKB)*1024 + 4096
	for i, ins := range tr.Instrs {
		if ins.PC < codeLo || ins.PC > codeHi {
			t.Fatalf("instr %d: PC %#x outside code region", i, ins.PC)
		}
		if ins.PC%4 != 0 {
			t.Fatalf("instr %d: unaligned PC", i)
		}
		switch ins.Class {
		case Load, Store:
			if ins.Addr < loopBase {
				t.Fatalf("instr %d: data address %#x below data regions", i, ins.Addr)
			}
		case Branch:
			if ins.Addr != 0 {
				t.Fatalf("instr %d: branch with data address", i)
			}
		default:
			if ins.Addr != 0 {
				t.Fatalf("instr %d: non-memory op with address", i)
			}
		}
		if ins.Dep < 0 || int(ins.Dep) > i {
			t.Fatalf("instr %d: dep distance %d invalid", i, ins.Dep)
		}
		if ins.BB < 0 || int(ins.BB) >= p.BranchSites {
			t.Fatalf("instr %d: BB %d out of range", i, ins.BB)
		}
	}
}

func TestMeanDepDistanceTracksProfile(t *testing.T) {
	hi, _ := ProfileByName("applu") // DepMean 6.5
	lo, _ := ProfileByName("mcf")   // DepMean 2.2
	thi, err := Generate(hi, 40000, 5)
	if err != nil {
		t.Fatal(err)
	}
	tlo, err := Generate(lo, 40000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if thi.MeanDepDistance() <= tlo.MeanDepDistance() {
		t.Fatalf("applu dep %.2f should exceed mcf dep %.2f",
			thi.MeanDepDistance(), tlo.MeanDepDistance())
	}
}

func TestPhasesShiftBasicBlocks(t *testing.T) {
	p, _ := ProfileByName("gcc") // 4 phases
	tr, err := Generate(p, 40000, 9)
	if err != nil {
		t.Fatal(err)
	}
	quarter := tr.Len() / 4
	bbsIn := func(lo, hi int) map[int32]bool {
		s := map[int32]bool{}
		for _, ins := range tr.Instrs[lo:hi] {
			s[ins.BB] = true
		}
		return s
	}
	first := bbsIn(0, quarter)
	second := bbsIn(quarter, 2*quarter)
	overlap := 0
	for bb := range second {
		if first[bb] {
			overlap++
		}
	}
	// Phases concentrate on disjoint block slices: low overlap expected.
	if overlap > len(second)/4 {
		t.Fatalf("phase BB overlap %d of %d too high", overlap, len(second))
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		IntALU: "ialu", IntMult: "imult", FPALU: "fpalu",
		FPMult: "fpmult", Load: "load", Store: "store", Branch: "branch",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q", int(c), c.String())
		}
	}
	if len(Classes()) != 7 {
		t.Fatal("Classes() should list 7 classes")
	}
}

func TestBranchOutcomesHaveBothValues(t *testing.T) {
	p, _ := ProfileByName("gcc")
	tr, err := Generate(p, 30000, 11)
	if err != nil {
		t.Fatal(err)
	}
	taken, not := 0, 0
	for _, ins := range tr.Instrs {
		if ins.Class == Branch {
			if ins.Taken {
				taken++
			} else {
				not++
			}
		}
	}
	if taken == 0 || not == 0 {
		t.Fatalf("degenerate branch outcomes: %d taken, %d not", taken, not)
	}
}

func TestGammaBetaSamplers(t *testing.T) {
	r := newTestRand(13)
	// Beta(α,α) is symmetric with mean 1/2; check sample mean and bounds.
	s, n := 0.0, 2000
	for i := 0; i < n; i++ {
		v := betaSample(r, 0.2)
		if v < 0 || v > 1 {
			t.Fatalf("beta sample %v out of [0,1]", v)
		}
		s += v
	}
	if m := s / float64(n); math.Abs(m-0.5) > 0.05 {
		t.Fatalf("beta mean %v, want ~0.5", m)
	}
	// Gamma(k,1) has mean k.
	s = 0
	for i := 0; i < n; i++ {
		s += gammaSample(r, 3.0)
	}
	if m := s / float64(n); math.Abs(m-3) > 0.2 {
		t.Fatalf("gamma mean %v, want ~3", m)
	}
	// Geometric-ish sampler has roughly the requested mean.
	s = 0
	for i := 0; i < n; i++ {
		s += float64(geomSample(r, 4))
	}
	if m := s / float64(n); math.Abs(m-4) > 0.5 {
		t.Fatalf("geom mean %v, want ~4", m)
	}
	if geomSample(r, 0) != 0 {
		t.Fatal("geomSample(0) should be 0")
	}
}
