// Package bpred implements the branch predictors of the microprocessor
// study (paper Table 1): Perfect, Bimodal, 2-level adaptive and Combination
// (tournament). They mirror the SimpleScalar sim-outorder predictor
// configurations the paper's design space varies.
package bpred

import (
	"errors"
	"fmt"
)

// Kind selects a predictor style.
type Kind int

const (
	// Perfect always predicts correctly (an oracle; the design-space
	// upper bound).
	Perfect Kind = iota
	// Bimodal is a table of 2-bit saturating counters indexed by PC.
	Bimodal
	// TwoLevel is a gshare-style global-history predictor: the global
	// branch history register is XORed with the PC to index a pattern
	// history table of 2-bit counters.
	TwoLevel
	// Combination is a tournament predictor: a bimodal and a 2-level
	// component with a 2-bit chooser table that learns which component to
	// trust per branch.
	Combination
)

// String returns the configuration name used in reports and datasets.
func (k Kind) String() string {
	switch k {
	case Perfect:
		return "perfect"
	case Bimodal:
		return "bimodal"
	case TwoLevel:
		return "2level"
	case Combination:
		return "combination"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists all predictor kinds in Table 1 order.
func Kinds() []Kind { return []Kind{Perfect, Bimodal, TwoLevel, Combination} }

// ParseKind converts a configuration name back to a Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("bpred: unknown predictor kind %q", s)
}

// NumericLevel returns a monotone "predictor strength" scale used when a
// linear model needs a numeric coercion of the categorical predictor field
// (weakest to strongest: bimodal < 2level < combination < perfect).
func (k Kind) NumericLevel() float64 {
	switch k {
	case Bimodal:
		return 1
	case TwoLevel:
		return 2
	case Combination:
		return 3
	case Perfect:
		return 4
	default:
		return 0
	}
}

// Predictor consumes a stream of (pc, outcome) pairs and reports
// mispredictions.
type Predictor interface {
	// Observe predicts the branch at pc, updates internal state with the
	// actual outcome, and reports whether the prediction was wrong.
	Observe(pc uint64, taken bool) (mispredicted bool)
	// Kind returns the predictor's kind.
	Kind() Kind
}

// New creates a predictor of the given kind with the given table size
// (entries; must be a power of two, e.g. 2048).
func New(kind Kind, entries int) (Predictor, error) {
	if kind == Perfect {
		return perfect{}, nil
	}
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, errors.New("bpred: table entries must be a positive power of two")
	}
	switch kind {
	case Bimodal:
		return newBimodal(entries), nil
	case TwoLevel:
		return newTwoLevel(entries, 4), nil
	case Combination:
		return &combination{
			bim:     newBimodal(entries),
			gsh:     newTwoLevel(entries, 4),
			chooser: make([]uint8, entries),
			mask:    uint64(entries - 1),
		}, nil
	default:
		return nil, fmt.Errorf("bpred: unknown kind %v", kind)
	}
}

type perfect struct{}

func (perfect) Observe(uint64, bool) bool { return false }
func (perfect) Kind() Kind                { return Perfect }

// counterTaken reports a 2-bit counter's prediction.
func counterTaken(c uint8) bool { return c >= 2 }

// bump saturates a 2-bit counter toward the outcome.
func bump(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

type bimodal struct {
	table []uint8
	mask  uint64
}

func newBimodal(entries int) *bimodal {
	t := make([]uint8, entries)
	for i := range t {
		t[i] = 1 // weakly not-taken start, SimpleScalar's default bias
	}
	return &bimodal{table: t, mask: uint64(entries - 1)}
}

func (b *bimodal) Observe(pc uint64, taken bool) bool {
	i := (pc >> 2) & b.mask
	pred := counterTaken(b.table[i])
	b.table[i] = bump(b.table[i], taken)
	return pred != taken
}

func (b *bimodal) Kind() Kind { return Bimodal }

type twoLevel struct {
	table   []uint8
	mask    uint64
	history uint64
	histLen uint
}

func newTwoLevel(entries int, histLen uint) *twoLevel {
	t := make([]uint8, entries)
	for i := range t {
		t[i] = 1
	}
	return &twoLevel{table: t, mask: uint64(entries - 1), histLen: histLen}
}

func (t *twoLevel) index(pc uint64) uint64 {
	return ((pc >> 2) ^ t.history) & t.mask
}

func (t *twoLevel) Observe(pc uint64, taken bool) bool {
	i := t.index(pc)
	pred := counterTaken(t.table[i])
	t.table[i] = bump(t.table[i], taken)
	t.history = (t.history << 1) & ((1 << t.histLen) - 1)
	if taken {
		t.history |= 1
	}
	return pred != taken
}

func (t *twoLevel) Kind() Kind { return TwoLevel }

type combination struct {
	bim     *bimodal
	gsh     *twoLevel
	chooser []uint8
	mask    uint64
}

func (c *combination) Observe(pc uint64, taken bool) bool {
	i := (pc >> 2) & c.mask
	// Peek both component predictions before they update.
	bi := (pc >> 2) & c.bim.mask
	bPred := counterTaken(c.bim.table[bi])
	gi := c.gsh.index(pc)
	gPred := counterTaken(c.gsh.table[gi])

	useGshare := counterTaken(c.chooser[i])
	pred := bPred
	if useGshare {
		pred = gPred
	}
	// Update components (their own Observe also updates history).
	c.bim.Observe(pc, taken)
	c.gsh.Observe(pc, taken)
	// Train the chooser toward whichever component was right when they
	// disagree.
	if bPred != gPred {
		c.chooser[i] = bump(c.chooser[i], gPred == taken)
	}
	return pred != taken
}

func (c *combination) Kind() Kind { return Combination }

// MispredictRate runs the predictor over a branch stream and returns the
// fraction mispredicted.
func MispredictRate(p Predictor, pcs []uint64, outcomes []bool) (float64, error) {
	if len(pcs) != len(outcomes) {
		return 0, errors.New("bpred: pcs/outcomes length mismatch")
	}
	if len(pcs) == 0 {
		return 0, errors.New("bpred: empty branch stream")
	}
	miss := 0
	for i := range pcs {
		if p.Observe(pcs[i], outcomes[i]) {
			miss++
		}
	}
	return float64(miss) / float64(len(pcs)), nil
}
